# Convenience targets for the ICR reproduction. Everything is plain
# standard-library Go; the module is fully offline.

GO ?= go

.PHONY: all build test vet lint race fuzz bench evaluate figures ci clean

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# icrvet: the repo's own static analyzer (internal/lint). Enforces the
# determinism, concurrency, pooling, allocation, wire-coverage, and
# context invariants the parallel/distributed runner depends on; see
# DESIGN.md "Invariants". CI runs the same binary with -json to archive
# a machine-readable report (scripts/ci.sh).
lint:
	$(GO) run ./cmd/icrvet ./...

test: vet lint
	$(GO) test ./...

# Race-detector pass over the concurrency-bearing packages: the parallel
# runner, the experiment drivers that fan out through it, the persistent
# store, the HTTP serving layer, the cluster fleet, and the CLIs.
race:
	$(GO) test -race ./internal/runner ./internal/experiments ./internal/sim \
		./internal/store ./internal/serve ./internal/cliflag \
		./internal/cluster ./cmd/...

# Short fuzz pass over the memoization content-address hash.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzKeyFor -fuzztime=30s ./internal/runner

# Benchmark baseline: micro-benches over the hot packages (sim kernel,
# ICR cache, OoO core) plus the per-figure harness, captured as a
# machine-readable BENCH_<date>.json (ns/op, allocs/op, instr/s). Set
# BENCHTIME to trade precision for runtime; pass a previous file through
# scripts/bench.sh -baseline to embed speedups.
bench:
	./scripts/bench.sh -o BENCH_$$(date +%F).json

# Regenerate the paper's evaluation at the default budget (tables + CSV).
evaluate:
	$(GO) run ./cmd/icrbench -fig all -out results

# Regenerate tables, CSVs, and SVG figures.
figures:
	$(GO) run ./cmd/icrbench -fig all -out results -svg figures

# Full tier-1 verification in one command: build, vet, icrvet, tests,
# race, and the end-to-end icrd smoke test.
ci:
	./scripts/ci.sh

clean:
	rm -rf results figures test_output.txt bench_output.txt
