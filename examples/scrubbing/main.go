// Scrubbing + vulnerability demo: composes the paper's schemes with a
// Saleh-style background scrubber and the Kim & Somani duplication-cache
// baseline, then reports two complementary reliability views:
//
//  1. unrecoverable loads under aggressive random error injection, and
//  2. the injection-free vulnerability measure — the fraction of
//     line-cycles spent holding dirty data protected only by parity.
//
// Usage: go run ./examples/scrubbing [benchmark]
package main

import (
	"fmt"
	"os"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scrubbing:", err)
		os.Exit(1)
	}
}

func run() error {
	bench := "vortex"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	machine := config.Default()
	lines := machine.DL1Sets() * machine.DL1Assoc
	const instructions = 300_000

	type variant struct {
		label string
		mut   func(*config.Run)
	}
	icr := core.ICR(core.ParityProt, core.LookupSerial, core.ReplStores)
	variants := []variant{
		{"BaseP", func(r *config.Run) { r.Scheme = core.BaseP() }},
		{"BaseP + scrub(1k)", func(r *config.Run) {
			r.Scheme = core.BaseP()
			r.ScrubInterval = 1000
			r.ScrubLines = 4
		}},
		{"BaseP + 2KB r-cache", func(r *config.Run) {
			r.Scheme = core.BaseP()
			r.DupCacheKB = 2
		}},
		{"ICR-P-PS(S)", func(r *config.Run) { r.Scheme = icr }},
		{"ICR-P-PS(S) + scrub(1k)", func(r *config.Run) {
			r.Scheme = icr
			r.ScrubInterval = 1000
			r.ScrubLines = 4
		}},
		{"BaseECC", func(r *config.Run) { r.Scheme = core.BaseECC(false) }},
	}

	fmt.Printf("reliability composition on %s (P(err)=1e-3/cycle, random model)\n\n", bench)
	fmt.Printf("%-26s %10s %10s %10s %12s %12s\n",
		"variant", "lost", "scrubFix", "scrubLost", "vuln-frac", "cycles")
	for _, v := range variants {
		r := config.NewRun(bench, core.BaseP())
		r.Instructions = instructions
		r.Fault = config.FaultConfig{Model: fault.Random, Prob: 1e-3, Seed: 7}
		r.Repl.DecayWindow = 1000
		r.Repl.Victim = core.DeadFirst
		v.mut(&r)
		rep, err := sim.Simulate(machine, r)
		if err != nil {
			return err
		}
		fmt.Printf("%-26s %10d %10d %10d %12.6f %12d\n",
			v.label, rep.UnrecoverableLoads, rep.ScrubRepaired, rep.ScrubLost,
			rep.VulnerabilityPerLine(lines), rep.Cycles)
	}
	fmt.Println("\n'lost' counts demand loads that found dirty data destroyed;")
	fmt.Println("'scrubLost' is the same loss caught early by the sweeper. The")
	fmt.Println("vulnerability fraction is an injection-free view of the same risk:")
	fmt.Println("ICR shrinks it toward BaseECC's zero at parity-level load latency.")
	return nil
}
