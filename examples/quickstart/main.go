// Quickstart: build the paper's Table 1 machine, run one benchmark under
// the parity baseline and under ICR-P-PS(S), and compare the reliability
// and performance metrics — the smallest end-to-end use of the library.
package main

import (
	"fmt"
	"os"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	machine := config.Default() // the paper's Table 1 configuration

	// A baseline: parity-protected dL1, 1-cycle loads, no replication.
	base := config.NewRun("gzip", core.BaseP())
	base.Instructions = 500_000
	baseRep, err := sim.Simulate(machine, base)
	if err != nil {
		return err
	}

	// ICR-P-PS(S): replicate blocks into dead lines on every store; keep
	// parity everywhere; consult the replica only when parity fails.
	icr := config.NewRun("gzip", core.ICR(core.ParityProt, core.LookupSerial, core.ReplStores))
	icr.Instructions = 500_000
	icr.Repl = core.ReplConfig{
		Distances:   core.VerticalDistances(machine.DL1Sets()),
		Replicas:    1,
		Victim:      core.DeadOnly,
		DecayWindow: 0, // most aggressive: a block is dead right after its access
	}
	icrRep, err := sim.Simulate(machine, icr)
	if err != nil {
		return err
	}

	fmt.Println("=== BaseP ===")
	fmt.Print(baseRep.String())
	fmt.Println("\n=== ICR-P-PS(S) ===")
	fmt.Print(icrRep.String())

	slowdown := float64(icrRep.Cycles)/float64(baseRep.Cycles) - 1
	fmt.Printf("\nICR performance cost over BaseP: %+.1f%%\n", 100*slowdown)
	fmt.Printf("Read hits that had a replica available: %.1f%%\n", 100*icrRep.LoadsWithReplica())
	fmt.Println("\nThat is the paper's headline: near-baseline performance with a")
	fmt.Println("redundant in-cache copy standing behind most of the data loads.")
	return nil
}
