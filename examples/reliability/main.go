// Reliability demo: inject transient errors into the running data cache
// at a sweep of per-cycle probabilities (the §5.5 methodology) and watch
// how each protection scheme recovers — or fails to.
//
// Usage: go run ./examples/reliability [benchmark]
package main

import (
	"fmt"
	"os"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "reliability:", err)
		os.Exit(1)
	}
}

func run() error {
	bench := "vortex"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	machine := config.Default()
	schemes := []core.Scheme{
		core.BaseP(),
		core.BaseECC(false),
		core.ICR(core.ParityProt, core.LookupSerial, core.ReplStores),
		core.ICR(core.ECCProt, core.LookupSerial, core.ReplStores),
	}
	probs := []float64{1e-2, 1e-3, 1e-4}

	fmt.Printf("transient-error injection on %s (random model, 300k instructions)\n\n", bench)
	fmt.Printf("%-15s %12s %10s %10s %10s %10s %14s\n",
		"scheme", "P(err)/cyc", "injected", "detected", "recovered", "lost", "lost/loads")
	for _, scheme := range schemes {
		for _, p := range probs {
			r := config.NewRun(bench, scheme)
			r.Instructions = 300_000
			r.Fault = config.FaultConfig{Model: fault.Random, Prob: p, Seed: 7}
			if scheme.HasReplication() {
				r.Repl.DecayWindow = 1000
				r.Repl.Victim = core.DeadFirst
			}
			rep, err := sim.Simulate(machine, r)
			if err != nil {
				return err
			}
			recovered := rep.RecoveredByECC + rep.RecoveredByReplica + rep.RecoveredByL2
			fmt.Printf("%-15s %12g %10d %10d %10d %10d %14.6f\n",
				scheme.Name(), p, rep.ErrorsInjected, rep.ErrorsDetected,
				recovered, rep.UnrecoverableLoads, rep.UnrecoverableFrac())
		}
	}
	fmt.Println("\nBaseP loses dirty data on any detected error; BaseECC corrects all")
	fmt.Println("single-bit errors; the ICR schemes repair most errors from replicas")
	fmt.Println("while keeping BaseP-class load latency.")
	return nil
}
