// Write-policy comparison (§5.8): the other classical way to protect dirty
// L1 data is a write-through dL1 (as in IBM POWER4), so that L2 always
// holds a good copy. This example reproduces the paper's comparison of
// that approach against ICR with a write-back dL1, in both execution time
// and L1+L2 dynamic energy.
//
// Usage: go run ./examples/writepolicy
package main

import (
	"fmt"
	"os"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "writepolicy:", err)
		os.Exit(1)
	}
}

func run() error {
	machine := config.Default()
	const instructions = 300_000

	fmt.Println("write-through BaseP (8-entry coalescing buffer) vs write-back ICR-P-PS(S)")
	fmt.Printf("\n%-10s %12s %12s %14s %14s\n",
		"benchmark", "cyc WT/ICR", "L2acc ratio", "energy WT/ICR", "WB stalls")
	var cycRatios, enRatios []float64
	for _, bench := range workload.Names() {
		wt := config.NewRun(bench, core.BaseP())
		wt.Instructions = instructions
		wt.WriteThrough = true
		wtRep, err := sim.Simulate(machine, wt)
		if err != nil {
			return err
		}

		icr := config.NewRun(bench, core.ICR(core.ParityProt, core.LookupSerial, core.ReplStores))
		icr.Instructions = instructions
		icr.Repl.DecayWindow = 1000
		icr.Repl.Victim = core.DeadFirst
		icrRep, err := sim.Simulate(machine, icr)
		if err != nil {
			return err
		}

		cyc := float64(wtRep.Cycles) / float64(icrRep.Cycles)
		l2 := float64(wtRep.L2Accesses) / float64(icrRep.L2Accesses)
		en := (wtRep.EnergyL1 + wtRep.EnergyL2) / (icrRep.EnergyL1 + icrRep.EnergyL2)
		cycRatios = append(cycRatios, cyc)
		enRatios = append(enRatios, en)
		fmt.Printf("%-10s %12.3f %12.2f %14.2f %14d\n", bench, cyc, l2, en, wtRep.DL1Writes)
	}
	fmt.Printf("\ngeomean: cycles %.3f, energy %.2f\n",
		sim.GeoMean(cycRatios), sim.GeoMean(enRatios))
	fmt.Println("\nICR keeps redundancy inside the L1 instead of pushing every store to")
	fmt.Println("L2: same recoverability goal, far less traffic and energy (§5.8).")
	return nil
}
