// Design-space exploration: sweep the §3.1 replication axes — victim
// policy, decay window, placement distance, and replica count — for one
// benchmark, and print the resulting reliability/performance trade-offs.
// This is how a cache architect would use the library to pick a design
// point that is not one of the paper's named schemes.
//
// Usage: go run ./examples/designspace [benchmark]
package main

import (
	"fmt"
	"os"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "designspace:", err)
		os.Exit(1)
	}
}

func run() error {
	bench := "vpr"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	machine := config.Default()
	sets := machine.DL1Sets()
	const instructions = 300_000

	baseline := config.NewRun(bench, core.BaseP())
	baseline.Instructions = instructions
	baseRep, err := sim.Simulate(machine, baseline)
	if err != nil {
		return err
	}

	type point struct {
		label string
		repl  core.ReplConfig
	}
	points := []point{
		{"vertical,dead-only,w0", core.ReplConfig{
			Distances: core.VerticalDistances(sets), Victim: core.DeadOnly}},
		{"vertical,dead-first,w1000", core.ReplConfig{
			Distances: core.VerticalDistances(sets), Victim: core.DeadFirst, DecayWindow: 1000}},
		{"horizontal,dead-first,w1000", core.ReplConfig{
			Distances: core.HorizontalDistances(), Victim: core.DeadFirst, DecayWindow: 1000}},
		{"power2(4),dead-first,w1000", core.ReplConfig{
			Distances: core.Power2Distances(sets, 4), Victim: core.DeadFirst, DecayWindow: 1000}},
		{"2-replicas,dead-first,w1000", core.ReplConfig{
			Distances: []int{sets / 2, sets / 4}, Replicas: 2, Victim: core.DeadFirst, DecayWindow: 1000}},
		{"replica-first,w1000", core.ReplConfig{
			Distances: core.VerticalDistances(sets), Victim: core.ReplicaFirst, DecayWindow: 1000}},
		{"leave-replicas,w1000", core.ReplConfig{
			Distances: core.VerticalDistances(sets), Victim: core.DeadFirst, DecayWindow: 1000,
			LeaveReplicas: true}},
	}

	fmt.Printf("design-space sweep on %s, ICR-P-PS(S), normalized to BaseP\n\n", bench)
	fmt.Printf("%-30s %10s %10s %10s %10s\n",
		"configuration", "cycles", "missRate", "replAbil", "loadsWRep")
	fmt.Printf("%-30s %10.3f %10.4f %10s %10s\n",
		"BaseP", 1.0, baseRep.DL1MissRate(), "-", "-")
	for _, pt := range points {
		r := config.NewRun(bench, core.ICR(core.ParityProt, core.LookupSerial, core.ReplStores))
		r.Instructions = instructions
		r.Repl = pt.repl
		rep, err := sim.Simulate(machine, r)
		if err != nil {
			return err
		}
		fmt.Printf("%-30s %10.3f %10.4f %10.3f %10.3f\n",
			pt.label,
			float64(rep.Cycles)/float64(baseRep.Cycles),
			rep.DL1MissRate(), rep.ReplAbility(), rep.LoadsWithReplica())
	}
	fmt.Println("\nReading the table: cycles near 1.0 with high loads-with-replica is")
	fmt.Println("the sweet spot; aggressive settings buy coverage with miss-rate cost.")
	return nil
}
