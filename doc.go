// Package repro is a from-scratch Go reproduction of "ICR: In-Cache
// Replication for Enhancing Data Cache Reliability" (Zhang, Gurumurthi,
// Kandemir, Sivasubramaniam — DSN 2003).
//
// The library lives under internal/: the ICR replicating data cache
// (internal/core), the out-of-order superscalar timing model
// (internal/cpu), the memory hierarchy (internal/cache), real parity and
// SEC-DED codecs (internal/ecc), transient-fault injection
// (internal/fault), synthetic Spec2000-class workloads
// (internal/workload), and per-figure experiment drivers
// (internal/experiments). Executables are under cmd/ and runnable
// examples under examples/.
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation:
//
//	go test -bench=. -benchmem
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results.
package repro
