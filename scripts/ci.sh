#!/bin/sh
# ci.sh — the full tier-1 verification pipeline in one command:
#
#   build -> vet -> icrvet -> test -> race
#
# Each stage is announced and the script stops at the first failure, so CI
# logs read top-to-bottom. Everything is standard-library Go: no network,
# no external tools beyond the go toolchain.
set -eu

GO="${GO:-go}"
cd "$(dirname "$0")/.."

stage() {
    echo "==> $*"
}

stage build
$GO build ./...

stage vet
$GO vet ./...

stage icrvet
$GO run ./cmd/icrvet ./...

stage test
$GO test ./...

stage race
$GO test -race ./internal/runner ./internal/experiments ./internal/sim ./cmd/...

stage ok
