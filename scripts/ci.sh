#!/bin/sh
# ci.sh — the full tier-1 verification pipeline in one command:
#
#   build -> vet -> icrvet -> test -> bench -> race -> smoke -> shards -> adaptive -> twotier -> cluster
#
# Each stage is announced and the script stops at the first failure, so CI
# logs read top-to-bottom. Everything is standard-library Go: no network
# beyond loopback (the smoke stage drives icrd over 127.0.0.1), no
# external tools beyond the go toolchain and curl.
set -eu

GO="${GO:-go}"
cd "$(dirname "$0")/.."

stage() {
    echo "==> $*"
}

stage build
$GO build ./...

stage vet
$GO vet ./...

# icrvet emits its findings twice: human-readable for the log and as a
# versioned JSON artifact (archived by CI next to the bench baselines).
# The stage also enforces a wall-clock budget: the analyzer runs on every
# push, so a regression that drags whole-module type-checking past 30s
# fails the build rather than slowly taxing everyone.
stage icrvet
ICRVET_OUT="${ICRVET_OUT:-icrvet.json}"
ICRVET_BUDGET="${ICRVET_BUDGET:-30}"
icrvet_start=$(date +%s)
$GO run ./cmd/icrvet -json ./... >"$ICRVET_OUT"
icrvet_elapsed=$(($(date +%s) - icrvet_start))
echo "icrvet: clean, report in $ICRVET_OUT (${icrvet_elapsed}s)"
if [ "$icrvet_elapsed" -gt "$ICRVET_BUDGET" ]; then
    echo "icrvet: took ${icrvet_elapsed}s, budget is ${ICRVET_BUDGET}s" >&2
    exit 1
fi

stage test
$GO test ./...

# One iteration of every benchmark, converted to BENCH JSON, validated
# against the schema, and gated against the newest committed BENCH_*.json
# baseline: allocs/op may not grow past the tolerance (allocations are
# deterministic) and instr/s may not collapse below the floor fraction
# (single-iteration timings are noisy, so only order-of-magnitude
# regressions — e.g. the sim arena pool silently breaking — trip it).
stage bench
BENCH_TMP=$(mktemp)
BENCHTIME=1x ./scripts/bench.sh -o "$BENCH_TMP"
BENCH_BASE=$(ls BENCH_*.json 2>/dev/null | sort | tail -1)
if [ -n "$BENCH_BASE" ]; then
    $GO run ./cmd/benchjson -check "$BENCH_TMP" -against "$BENCH_BASE"
else
    echo "bench: no committed BENCH_*.json baseline to gate against" >&2
    exit 1
fi
rm -f "$BENCH_TMP"

stage race
# Explicit timeout: the detector is a 10-20x slowdown on the heavier
# packages (experiments, sim) and this may run on a single-core host.
$GO test -race -timeout 30m ./internal/runner ./internal/experiments ./internal/sim \
    ./internal/store ./internal/serve ./internal/cliflag ./internal/cluster \
    ./cmd/...

# End-to-end smoke test of the serving layer: build icrd, start it on a
# random port with a persistent store, run the same tiny experiment twice
# (the second must be served from cache, not re-simulated), drain it with
# SIGTERM, then restart on the same store and confirm the result survives
# on disk. Exercises the whole stack the unit tests cover piecewise.
stage smoke
SMOKE_DIR=$(mktemp -d)
SMOKE_PID=
smoke_cleanup() {
    [ -n "$SMOKE_PID" ] && kill "$SMOKE_PID" 2>/dev/null
    rm -rf "$SMOKE_DIR"
}
trap smoke_cleanup EXIT INT TERM

fail() {
    echo "smoke: $*" >&2
    echo "--- icrd stderr ---" >&2
    cat "$SMOKE_DIR/icrd.err" >&2 2>/dev/null
    exit 1
}

# Start icrd and scrape "listening on <addr>" from stdout.
smoke_start() {
    : >"$SMOKE_DIR/icrd.out"
    "$SMOKE_DIR/icrd" -addr localhost:0 -store "$SMOKE_DIR/results" \
        -parallel 2 >"$SMOKE_DIR/icrd.out" 2>"$SMOKE_DIR/icrd.err" &
    SMOKE_PID=$!
    i=0
    while ! grep -q '^listening on ' "$SMOKE_DIR/icrd.out" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && fail "server did not start"
        kill -0 "$SMOKE_PID" 2>/dev/null || fail "server exited early"
        sleep 0.1
    done
    SMOKE_ADDR=$(sed -n 's/^listening on //p' "$SMOKE_DIR/icrd.out")
}

# POST the run and echo the "source" field of the response.
smoke_post() {
    resp=$(curl -sS -X POST -d \
        '{"benchmark":"vpr","scheme":"ICR-P-PS(S)","instructions":20000,"seed":1}' \
        "http://$SMOKE_ADDR/v1/runs") || fail "POST /v1/runs failed"
    src=$(printf '%s' "$resp" | sed -n 's/.*"source":"\([a-z]*\)".*/\1/p')
    [ -n "$src" ] || fail "no source in response: $resp"
    echo "$src"
}

# SIGTERM must drain cleanly: exit status 0.
smoke_stop() {
    kill -TERM "$SMOKE_PID"
    if ! wait "$SMOKE_PID"; then
        SMOKE_PID=
        fail "SIGTERM drain exited non-zero"
    fi
    SMOKE_PID=
}

$GO build -o "$SMOKE_DIR/icrd" ./cmd/icrd
smoke_start
src=$(smoke_post)
[ "$src" = "simulated" ] || fail "first run source = $src, want simulated"
src=$(smoke_post)
[ "$src" = "simulated" ] && fail "second run was re-simulated, not cached"
smoke_stop

# Restart on the same store: the result must be served from disk.
smoke_start
src=$(smoke_post)
[ "$src" = "disk" ] || fail "post-restart source = $src, want disk"
smoke_stop
trap - EXIT INT TERM
smoke_cleanup

# End-to-end shard-fleet test: the same figure sweep run against a local
# disk store and then through a front end whose -store is a 3-shard icrd
# fleet — with one shard SIGKILLed mid-sweep — must produce byte-identical
# JSON: content addressing means a dead shard can only cost duplicate
# work, never wrong results. Before the sweep, a 10k-request icrload smoke
# exercises the raw /store/v1/ path against the healthy fleet and its
# artifact must pass -check, as must the committed LOAD_*.json baseline.
stage shards
SH_DIR=$(mktemp -d)
SH_S1_PID=
SH_S2_PID=
SH_S3_PID=
SH_FRONT_PID=
shards_cleanup() {
    for p in "$SH_S1_PID" "$SH_S2_PID" "$SH_S3_PID" "$SH_FRONT_PID"; do
        [ -n "$p" ] && kill -9 "$p" 2>/dev/null
    done
    rm -rf "$SH_DIR"
}
trap shards_cleanup EXIT INT TERM

shfail() {
    echo "shards: $*" >&2
    for f in s1.err s2.err s3.err front.err; do
        echo "--- $f ---" >&2
        cat "$SH_DIR/$f" >&2 2>/dev/null
    done
    exit 1
}

# Start an icrd (name, then flags), scrape its address into SH_ADDR and
# its pid into SH_PID.
shards_start_icrd() {
    sh_name=$1
    shift
    : >"$SH_DIR/$sh_name.out"
    "$SH_DIR/icrd" -addr localhost:0 -parallel 4 "$@" \
        >"$SH_DIR/$sh_name.out" 2>"$SH_DIR/$sh_name.err" &
    SH_PID=$!
    i=0
    while ! grep -q '^listening on ' "$SH_DIR/$sh_name.out" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && shfail "$sh_name did not start"
        kill -0 "$SH_PID" 2>/dev/null || shfail "$sh_name exited early"
        sleep 0.1
    done
    SH_ADDR=$(sed -n 's/^listening on //p' "$SH_DIR/$sh_name.out")
}

$GO build -o "$SH_DIR/icrd" ./cmd/icrd
$GO build -o "$SH_DIR/icrload" ./cmd/icrload

SH_FIG='fig2'
SH_BODY='{"instructions":2000000,"seed":1}'

# Single-node baseline on a local disk store.
shards_start_icrd base -store "disk:$SH_DIR/base"
SH_FRONT_PID=$SH_PID
curl -sS -X POST -d "$SH_BODY" "http://$SH_ADDR/v1/figures/$SH_FIG" \
    >"$SH_DIR/single.json" || shfail "single-node figure failed"
kill -TERM "$SH_FRONT_PID"
wait "$SH_FRONT_PID" || shfail "baseline icrd drain exited non-zero"
SH_FRONT_PID=

# The 3-shard fleet.
shards_start_icrd s1 -store "disk:$SH_DIR/s1"
SH_S1_PID=$SH_PID
SH_S1_ADDR=$SH_ADDR
shards_start_icrd s2 -store "disk:$SH_DIR/s2"
SH_S2_PID=$SH_PID
SH_S2_ADDR=$SH_ADDR
shards_start_icrd s3 -store "disk:$SH_DIR/s3"
SH_S3_PID=$SH_PID
SH_S3_ADDR=$SH_ADDR
SH_RING="shards:$SH_S1_ADDR,$SH_S2_ADDR,$SH_S3_ADDR"

# 10k-request icrload smoke against the healthy fleet, schema-checked.
"$SH_DIR/icrload" -store "$SH_RING" -clients 50 -requests 10000 -keys 256 \
    -out "$SH_DIR/load.json" 2>>"$SH_DIR/front.err" \
    || shfail "icrload smoke failed"
"$SH_DIR/icrload" -check "$SH_DIR/load.json" || shfail "icrload smoke artifact failed -check"
LOAD_BASE=$(ls LOAD_*.json 2>/dev/null | sort | tail -1)
if [ -n "$LOAD_BASE" ]; then
    "$SH_DIR/icrload" -check "$LOAD_BASE" || shfail "committed $LOAD_BASE failed -check"
else
    echo "shards: no committed LOAD_*.json baseline to validate" >&2
    exit 1
fi

# The same sweep through a front end backed by the fleet, with one shard
# SIGKILLed mid-sweep.
shards_start_icrd front -store "$SH_RING"
SH_FRONT_PID=$SH_PID
curl -sS -X POST -d "$SH_BODY" "http://$SH_ADDR/v1/figures/$SH_FIG" \
    >"$SH_DIR/fleet.json" &
SH_CURL_PID=$!
sleep 1
kill -9 "$SH_S2_PID" 2>/dev/null || shfail "shard s2 was not running mid-sweep"
SH_S2_PID=
wait "$SH_CURL_PID" || shfail "fleet figure request failed"

grep -q '"error"' "$SH_DIR/fleet.json" && shfail "fleet sweep errored: $(cat "$SH_DIR/fleet.json")"
cmp -s "$SH_DIR/single.json" "$SH_DIR/fleet.json" \
    || shfail "fleet figure JSON differs from single-node run"

# Drain the front and the surviving shards cleanly.
for p in "$SH_FRONT_PID" "$SH_S1_PID" "$SH_S3_PID"; do
    kill -TERM "$p"
    wait "$p" || shfail "drain exited non-zero (pid $p)"
done
SH_FRONT_PID=
SH_S1_PID=
SH_S3_PID=
trap - EXIT INT TERM
shards_cleanup

# End-to-end adaptive determinism test: the ICR-ADAPT shootout (runs whose
# replication knobs retune mid-flight) at a small budget, run single-node
# against a local disk store and then through a front end backed by a
# 3-shard fleet, must produce byte-identical JSON. Controller state lives
# entirely inside each simulation, so distribution, memoization, and shard
# placement must be invisible in the results.
stage adaptive
AD_DIR=$(mktemp -d)
AD_S1_PID=
AD_S2_PID=
AD_S3_PID=
AD_FRONT_PID=
adaptive_cleanup() {
    for p in "$AD_S1_PID" "$AD_S2_PID" "$AD_S3_PID" "$AD_FRONT_PID"; do
        [ -n "$p" ] && kill -9 "$p" 2>/dev/null
    done
    rm -rf "$AD_DIR"
}
trap adaptive_cleanup EXIT INT TERM

adfail() {
    echo "adaptive: $*" >&2
    for f in s1.err s2.err s3.err front.err; do
        echo "--- $f ---" >&2
        cat "$AD_DIR/$f" >&2 2>/dev/null
    done
    exit 1
}

adaptive_start_icrd() {
    ad_name=$1
    shift
    : >"$AD_DIR/$ad_name.out"
    "$AD_DIR/icrd" -addr localhost:0 -parallel 4 "$@" \
        >"$AD_DIR/$ad_name.out" 2>"$AD_DIR/$ad_name.err" &
    AD_PID=$!
    i=0
    while ! grep -q '^listening on ' "$AD_DIR/$ad_name.out" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && adfail "$ad_name did not start"
        kill -0 "$AD_PID" 2>/dev/null || adfail "$ad_name exited early"
        sleep 0.1
    done
    AD_ADDR=$(sed -n 's/^listening on //p' "$AD_DIR/$ad_name.out")
}

$GO build -o "$AD_DIR/icrd" ./cmd/icrd

# 200k instructions crosses flux's first (jittered) phase boundary, so the
# sweep exercises mid-run retuning, not just the start rung.
AD_BODY='{"instructions":200000,"seed":1}'

adaptive_start_icrd base -store "disk:$AD_DIR/base"
AD_FRONT_PID=$AD_PID
curl -sS -X POST -d "$AD_BODY" "http://$AD_ADDR/v1/figures/adaptive" \
    >"$AD_DIR/single.json" || adfail "single-node adaptive figure failed"
kill -TERM "$AD_FRONT_PID"
wait "$AD_FRONT_PID" || adfail "baseline icrd drain exited non-zero"
AD_FRONT_PID=

adaptive_start_icrd s1 -store "disk:$AD_DIR/s1"
AD_S1_PID=$AD_PID
AD_S1_ADDR=$AD_ADDR
adaptive_start_icrd s2 -store "disk:$AD_DIR/s2"
AD_S2_PID=$AD_PID
AD_S2_ADDR=$AD_ADDR
adaptive_start_icrd s3 -store "disk:$AD_DIR/s3"
AD_S3_PID=$AD_PID
AD_S3_ADDR=$AD_ADDR

adaptive_start_icrd front -store "shards:$AD_S1_ADDR,$AD_S2_ADDR,$AD_S3_ADDR"
AD_FRONT_PID=$AD_PID
curl -sS -X POST -d "$AD_BODY" "http://$AD_ADDR/v1/figures/adaptive" \
    >"$AD_DIR/fleet.json" || adfail "fleet adaptive figure failed"

grep -q '"error"' "$AD_DIR/fleet.json" && adfail "fleet sweep errored: $(cat "$AD_DIR/fleet.json")"
cmp -s "$AD_DIR/single.json" "$AD_DIR/fleet.json" \
    || adfail "adaptive fleet JSON differs from single-node run"

for p in "$AD_FRONT_PID" "$AD_S1_PID" "$AD_S2_PID" "$AD_S3_PID"; do
    kill -TERM "$p"
    wait "$p" || adfail "drain exited non-zero (pid $p)"
done
AD_FRONT_PID=
AD_S1_PID=
AD_S2_PID=
AD_S3_PID=
trap - EXIT INT TERM
adaptive_cleanup

# End-to-end two-tier determinism test: the twotier shootout (faults
# injected at both tiers, cross-tier replica traffic, memory-tier energy
# pricing) at a small budget, run single-node against a local disk store
# and then through a front end backed by a 3-shard fleet, must produce
# byte-identical JSON. The protected tier lives entirely inside each
# simulation, so sharding and memoization must be invisible in the
# results — including the schema-4 TwoTier report blocks round-tripping
# through the store and the wire codec.
stage twotier
TT_DIR=$(mktemp -d)
TT_S1_PID=
TT_S2_PID=
TT_S3_PID=
TT_FRONT_PID=
twotier_cleanup() {
    for p in "$TT_S1_PID" "$TT_S2_PID" "$TT_S3_PID" "$TT_FRONT_PID"; do
        [ -n "$p" ] && kill -9 "$p" 2>/dev/null
    done
    rm -rf "$TT_DIR"
}
trap twotier_cleanup EXIT INT TERM

ttfail() {
    echo "twotier: $*" >&2
    for f in s1.err s2.err s3.err front.err; do
        echo "--- $f ---" >&2
        cat "$TT_DIR/$f" >&2 2>/dev/null
    done
    exit 1
}

twotier_start_icrd() {
    tt_name=$1
    shift
    : >"$TT_DIR/$tt_name.out"
    "$TT_DIR/icrd" -addr localhost:0 -parallel 4 "$@" \
        >"$TT_DIR/$tt_name.out" 2>"$TT_DIR/$tt_name.err" &
    TT_PID=$!
    i=0
    while ! grep -q '^listening on ' "$TT_DIR/$tt_name.out" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && ttfail "$tt_name did not start"
        kill -0 "$TT_PID" 2>/dev/null || ttfail "$tt_name exited early"
        sleep 0.1
    done
    TT_ADDR=$(sed -n 's/^listening on //p' "$TT_DIR/$tt_name.out")
}

$GO build -o "$TT_DIR/icrd" ./cmd/icrd

TT_BODY='{"instructions":100000,"seed":1}'

twotier_start_icrd base -store "disk:$TT_DIR/base"
TT_FRONT_PID=$TT_PID
curl -sS -X POST -d "$TT_BODY" "http://$TT_ADDR/v1/figures/twotier" \
    >"$TT_DIR/single.json" || ttfail "single-node twotier figure failed"
kill -TERM "$TT_FRONT_PID"
wait "$TT_FRONT_PID" || ttfail "baseline icrd drain exited non-zero"
TT_FRONT_PID=

twotier_start_icrd s1 -store "disk:$TT_DIR/s1"
TT_S1_PID=$TT_PID
TT_S1_ADDR=$TT_ADDR
twotier_start_icrd s2 -store "disk:$TT_DIR/s2"
TT_S2_PID=$TT_PID
TT_S2_ADDR=$TT_ADDR
twotier_start_icrd s3 -store "disk:$TT_DIR/s3"
TT_S3_PID=$TT_PID
TT_S3_ADDR=$TT_ADDR

twotier_start_icrd front -store "shards:$TT_S1_ADDR,$TT_S2_ADDR,$TT_S3_ADDR"
TT_FRONT_PID=$TT_PID
curl -sS -X POST -d "$TT_BODY" "http://$TT_ADDR/v1/figures/twotier" \
    >"$TT_DIR/fleet.json" || ttfail "fleet twotier figure failed"

grep -q '"error"' "$TT_DIR/fleet.json" && ttfail "fleet sweep errored: $(cat "$TT_DIR/fleet.json")"
cmp -s "$TT_DIR/single.json" "$TT_DIR/fleet.json" \
    || ttfail "twotier fleet JSON differs from single-node run"

for p in "$TT_FRONT_PID" "$TT_S1_PID" "$TT_S2_PID" "$TT_S3_PID"; do
    kill -TERM "$p"
    wait "$p" || ttfail "drain exited non-zero (pid $p)"
done
TT_FRONT_PID=
TT_S1_PID=
TT_S2_PID=
TT_S3_PID=
trap - EXIT INT TERM
twotier_cleanup

# End-to-end cluster test: the same figure sweep run single-node and then
# through a coordinator with two workers — one of which is SIGKILLed
# mid-sweep — must produce byte-identical JSON. Exercises lease expiry and
# reassignment, at-least-once dedup, and fleet-wide SIGTERM drain with the
# real binaries over loopback HTTP.
stage cluster
CL_DIR=$(mktemp -d)
CL_ICRD_PID=
CL_W1_PID=
CL_W2_PID=
cluster_cleanup() {
    for p in "$CL_ICRD_PID" "$CL_W1_PID" "$CL_W2_PID"; do
        [ -n "$p" ] && kill -9 "$p" 2>/dev/null
    done
    rm -rf "$CL_DIR"
}
trap cluster_cleanup EXIT INT TERM

clfail() {
    echo "cluster: $*" >&2
    for f in icrd.err w1.err w2.err; do
        echo "--- $f ---" >&2
        cat "$CL_DIR/$f" >&2 2>/dev/null
    done
    exit 1
}

# Start icrd with the given extra flags and scrape its address.
cluster_start_icrd() {
    : >"$CL_DIR/icrd.out"
    "$CL_DIR/icrd" -addr localhost:0 -parallel 4 "$@" \
        >"$CL_DIR/icrd.out" 2>"$CL_DIR/icrd.err" &
    CL_ICRD_PID=$!
    i=0
    while ! grep -q '^listening on ' "$CL_DIR/icrd.out" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && clfail "icrd did not start"
        kill -0 "$CL_ICRD_PID" 2>/dev/null || clfail "icrd exited early"
        sleep 0.1
    done
    CL_ADDR=$(sed -n 's/^listening on //p' "$CL_DIR/icrd.out")
}

cluster_stop_icrd() {
    kill -TERM "$CL_ICRD_PID"
    if ! wait "$CL_ICRD_PID"; then
        CL_ICRD_PID=
        clfail "icrd SIGTERM drain exited non-zero"
    fi
    CL_ICRD_PID=
}

CL_FIG='fig2'
CL_BODY='{"instructions":2000000,"seed":1}'

$GO build -o "$CL_DIR/icrd" ./cmd/icrd
$GO build -o "$CL_DIR/icrworker" ./cmd/icrworker

# Single-node baseline.
cluster_start_icrd
curl -sS -X POST -d "$CL_BODY" "http://$CL_ADDR/v1/figures/$CL_FIG" \
    >"$CL_DIR/single.json" || clfail "single-node figure failed"
cluster_stop_icrd

# The same sweep through coordinator + 2 workers, one killed mid-sweep.
cluster_start_icrd -cluster -lease 2s
"$CL_DIR/icrworker" -coordinator "http://$CL_ADDR" -id w1 -parallel 2 \
    2>"$CL_DIR/w1.err" &
CL_W1_PID=$!
"$CL_DIR/icrworker" -coordinator "http://$CL_ADDR" -id w2 -parallel 2 \
    2>"$CL_DIR/w2.err" &
CL_W2_PID=$!

curl -sS -X POST -d "$CL_BODY" "http://$CL_ADDR/v1/figures/$CL_FIG" \
    >"$CL_DIR/fleet.json" &
CL_CURL_PID=$!
sleep 1
kill -9 "$CL_W1_PID" 2>/dev/null || clfail "worker w1 was not running mid-sweep"
CL_W1_PID=
wait "$CL_CURL_PID" || clfail "fleet figure request failed"

grep -q '"error"' "$CL_DIR/fleet.json" && clfail "fleet sweep errored: $(cat "$CL_DIR/fleet.json")"
cmp -s "$CL_DIR/single.json" "$CL_DIR/fleet.json" \
    || clfail "fleet figure JSON differs from single-node run"

# Fleet-wide drain: surviving worker and coordinator both exit 0.
kill -TERM "$CL_W2_PID"
if ! wait "$CL_W2_PID"; then
    CL_W2_PID=
    clfail "icrworker SIGTERM drain exited non-zero"
fi
CL_W2_PID=
cluster_stop_icrd
trap - EXIT INT TERM
cluster_cleanup

stage ok
