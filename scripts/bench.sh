#!/bin/sh
# bench.sh — run the simulator benchmark suite and emit a machine-readable
# BENCH_<date>.json (ns/op, allocs/op, instr/s per benchmark) so perf
# regressions are visible PR-over-PR.
#
# Usage:
#   scripts/bench.sh                   # full run -> BENCH_<today>.json
#   scripts/bench.sh -o out.json       # choose the output path
#   scripts/bench.sh -baseline b.json  # embed a prior run + speedup ratios
#   BENCHTIME=1x scripts/bench.sh      # smoke mode (CI): one iteration each
#
# Two suites run:
#   1. the per-package microbenchmarks (internal/sim BenchmarkSimulate*,
#      internal/core BenchmarkCoreAccess, internal/cpu BenchmarkCPURun,
#      plus the root-package micro benches) at BENCHTIME (default 1s);
#   2. the root-package figure benchmarks (BenchmarkFig*, plus the
#      adaptive and two-tier shootouts) at one iteration each — every
#      figure driver is a full sweep, so a single iteration is already a
#      meaningful (and expensive) sample.
set -eu

GO="${GO:-go}"
BENCHTIME="${BENCHTIME:-1s}"
cd "$(dirname "$0")/.."

OUT=""
BASELINE=""
while [ $# -gt 0 ]; do
    case "$1" in
    -o) OUT="$2"; shift 2 ;;
    -baseline) BASELINE="$2"; shift 2 ;;
    *) echo "usage: $0 [-o FILE] [-baseline FILE]" >&2; exit 2 ;;
    esac
done
[ -n "$OUT" ] || OUT="BENCH_$(date +%Y-%m-%d).json"

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT INT TERM

echo "==> micro benchmarks (benchtime=$BENCHTIME)"
$GO test -run=NONE -bench='BenchmarkSimulate|BenchmarkSampled|BenchmarkCoreAccess|BenchmarkCPURun' \
    -benchmem -benchtime="$BENCHTIME" \
    ./internal/sim ./internal/core ./internal/cpu | tee -a "$RAW"

echo "==> root micro benchmarks (benchtime=$BENCHTIME)"
$GO test -run=NONE -bench='BenchmarkSECDED|BenchmarkParity|BenchmarkICRCache|BenchmarkWorkload|BenchmarkTrace|BenchmarkEndToEnd' \
    -benchmem -benchtime="$BENCHTIME" . | tee -a "$RAW"

echo "==> figure benchmarks (benchtime=1x)"
$GO test -run=NONE -bench='BenchmarkFig|BenchmarkAdaptiveShootout|BenchmarkTwoTierShootout' -benchmem -benchtime=1x . | tee -a "$RAW"

if [ -n "$BASELINE" ]; then
    $GO run ./cmd/benchjson -baseline "$BASELINE" -o "$OUT" <"$RAW"
else
    $GO run ./cmd/benchjson -o "$OUT" <"$RAW"
fi
$GO run ./cmd/benchjson -check "$OUT"
