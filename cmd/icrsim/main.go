// Command icrsim runs a single benchmark under a single cache-protection
// scheme on the paper's Table 1 machine and prints the resulting metrics.
//
// Examples:
//
//	icrsim -bench vpr -scheme "ICR-P-PS(S)"
//	icrsim -bench mcf -scheme BaseECC -instructions 5000000
//	icrsim -bench vortex -scheme "ICR-ECC-PS(S)" -window 1000 -victim dead-first
//	icrsim -bench gzip -scheme BaseP -writethrough
//	icrsim -bench vortex -scheme "ICR-P-PS(S)" -fault-prob 1e-3 -fault-model random
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/internal/cliflag"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "icrsim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("icrsim", flag.ContinueOnError)
	var sf cliflag.Sim
	sf.Register(fs)
	var (
		bench        = fs.String("bench", "vpr", "benchmark: "+strings.Join(workload.Names(), ", "))
		schemeName   = fs.String("scheme", "ICR-P-PS(S)", "scheme name, e.g. BaseP, BaseECC, BaseECC-spec, ICR-ECC-PS(S)")
		window       = fs.Uint64("window", 0, "dead-block decay window in cycles (0 = dead immediately)")
		victim       = fs.String("victim", "dead-only", "replica victim policy: dead-only, dead-first, replica-first, replica-only")
		distances    = fs.String("distances", "", "comma-separated replica set offsets (default N/2)")
		replicas     = fs.Int("replicas", 1, "replicas maintained per block")
		leave        = fs.Bool("leave", false, "leave replicas resident when the primary is evicted (§5.6)")
		writeThrough = fs.Bool("writethrough", false, "write-through dL1 with 8-entry coalescing write buffer (§5.8)")
		faultProb    = fs.Float64("fault-prob", 0, "per-cycle error-injection probability (0 = off)")
		faultModel   = fs.String("fault-model", "random", "injection model: direct, adjacent, column, random")
		faultSeed    = fs.Int64("fault-seed", 7, "injection RNG seed")
		csv          = fs.Bool("csv", false, "emit a CSV row instead of the text report")
		all          = fs.Bool("all", false, "run every scheme on the benchmark and print a comparison table")
		showVersion  = cliflag.RegisterVersion(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Println(cliflag.Version("icrsim"))
		return nil
	}

	if *all {
		return runAllSchemes(ctx, sf, *bench, *window, *victim)
	}

	scheme, err := core.SchemeByName(*schemeName)
	if err != nil {
		return err
	}
	r := config.NewRun(*bench, scheme)
	r.Instructions = sf.Instructions
	r.Seed = sf.Seed
	if r.Sample, err = sf.SampleConfig(); err != nil {
		return err
	}
	if r.Adapt, err = sf.AdaptConfig(); err != nil {
		return err
	}
	if r.TwoTier, err = sf.TwoTierConfig(); err != nil {
		return err
	}
	r.WriteThrough = *writeThrough
	r.Repl.DecayWindow = *window
	r.Repl.Replicas = *replicas
	r.Repl.LeaveReplicas = *leave
	if r.Repl.Victim, err = core.ParseVictimPolicy(*victim); err != nil {
		return err
	}
	if *distances != "" {
		if r.Repl.Distances, err = cliflag.Ints(*distances); err != nil {
			return err
		}
	}
	if *faultProb > 0 {
		model, err := fault.ParseModel(*faultModel)
		if err != nil {
			return err
		}
		r.Fault = config.FaultConfig{Model: model, Prob: *faultProb, Seed: *faultSeed}
	}

	if sf.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, sf.Timeout)
		defer cancel()
	}
	report, err := sim.SimulateContext(ctx, config.Default(), r)
	if err != nil {
		return err
	}
	if *csv {
		fmt.Println(metrics.CSVHeader())
		fmt.Println(report.CSVRow())
		return nil
	}
	fmt.Print(report.String())
	return nil
}

// runAllSchemes prints a per-scheme comparison for one benchmark. The
// schemes are independent simulations, so they fan out across the runner's
// worker pool; rows print in scheme order regardless of completion order.
func runAllSchemes(ctx context.Context, sf cliflag.Sim, bench string, window uint64, victim string) error {
	vp, err := core.ParseVictimPolicy(victim)
	if err != nil {
		return err
	}
	sample, err := sf.SampleConfig()
	if err != nil {
		return err
	}
	eng := runner.New(runner.Options{Workers: sf.Parallel, Timeout: sf.Timeout})
	schemes := core.AllSchemes()
	runs := make([]config.Run, len(schemes))
	for i, scheme := range schemes {
		r := config.NewRun(bench, scheme)
		r.Instructions = sf.Instructions
		r.Seed = sf.Seed
		r.Sample = sample
		r.Repl.DecayWindow = window
		r.Repl.Victim = vp
		runs[i] = r
	}
	reports, err := eng.RunBatch(ctx, config.Default(), runs)
	if err != nil {
		return err
	}
	base := reports[0]
	fmt.Printf("%-16s %10s %10s %10s %10s %10s %12s\n",
		"scheme", "cycles", "normCyc", "missRate", "replAbil", "loadsWRep", "energy(uJ)")
	for i, scheme := range schemes {
		rep := reports[i]
		fmt.Printf("%-16s %10d %10.4f %10.4f %10.4f %10.4f %12.1f\n",
			scheme.Name(), rep.Cycles,
			float64(rep.Cycles)/float64(base.Cycles),
			rep.DL1MissRate(), rep.ReplAbility(), rep.LoadsWithReplica(),
			rep.TotalEnergy()/1000)
	}
	return nil
}
