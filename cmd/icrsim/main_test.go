package main

import (
	"context"
	"testing"

	"repro/internal/cliflag"
	"repro/internal/core"
)

func TestRunBasic(t *testing.T) {
	if err := run(context.Background(), []string{"-bench", "gzip", "-scheme", "BaseP", "-instructions", "20000"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunICRWithOptions(t *testing.T) {
	err := run(context.Background(), []string{
		"-bench", "vpr", "-scheme", "ICR-ECC-PS(S)", "-instructions", "20000",
		"-window", "1000", "-victim", "dead-first", "-distances", "32,16",
		"-replicas", "2", "-leave", "-csv",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunFaultInjection(t *testing.T) {
	err := run(context.Background(), []string{
		"-bench", "vortex", "-scheme", "BaseECC", "-instructions", "20000",
		"-fault-prob", "0.001", "-fault-model", "column",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	cases := [][]string{
		{"-scheme", "NotAScheme"},
		{"-bench", "swim", "-instructions", "1000"},
		{"-victim", "bogus"},
		{"-distances", "1,x"},
		{"-fault-prob", "0.1", "-fault-model", "bogus"},
	}
	for _, args := range cases {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestParseVictim(t *testing.T) {
	for _, name := range []string{"dead-only", "dead-first", "replica-first", "replica-only"} {
		v, err := core.ParseVictimPolicy(name)
		if err != nil || v.String() != name {
			t.Errorf("ParseVictimPolicy(%q) = %v, %v", name, v, err)
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := cliflag.Ints("32, 16,8")
	if err != nil || len(got) != 3 || got[0] != 32 || got[1] != 16 || got[2] != 8 {
		t.Errorf("Ints = %v, %v", got, err)
	}
}

func TestRunAllSchemes(t *testing.T) {
	if err := run(context.Background(), []string{"-all", "-bench", "gzip", "-instructions", "15000", "-window", "1000", "-victim", "dead-first"}); err != nil {
		t.Fatal(err)
	}
}
