package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGenInfoRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "t.trace")
	if err := run([]string{"gen", "-bench", "gzip", "-n", "5000", "-o", out}); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		t.Fatal("empty trace written")
	}
	if err := run([]string{"info", "-i", out}); err != nil {
		t.Fatal(err)
	}
}

func TestInfoFromBenchmark(t *testing.T) {
	if err := run([]string{"info", "-bench", "mcf", "-n", "5000"}); err != nil {
		t.Fatal(err)
	}
}

func TestBenchmarksSubcommand(t *testing.T) {
	if err := run([]string{"benchmarks"}); err != nil {
		t.Fatal(err)
	}
}

func TestBadUsage(t *testing.T) {
	cases := [][]string{
		{},
		{"frobnicate"},
		{"gen", "-bench", "gzip"}, // missing -o
		{"gen", "-bench", "swim", "-o", "/tmp/x.trace"},
		{"info"}, // neither -i nor -bench
		{"info", "-i", "/nonexistent/file.trace"},
		{"info", "-bench", "swim"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
