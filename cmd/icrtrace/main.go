// Command icrtrace generates, inspects, and summarizes workload traces.
//
// Examples:
//
//	icrtrace gen -bench mcf -n 1000000 -o mcf.trace
//	icrtrace info -i mcf.trace
//	icrtrace info -bench gzip -n 200000
//	icrtrace benchmarks
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "icrtrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: icrtrace <gen|info|benchmarks> [flags]")
	}
	switch args[0] {
	case "gen":
		return runGen(args[1:])
	case "info":
		return runInfo(args[1:])
	case "benchmarks":
		fmt.Println(strings.Join(workload.Names(), "\n"))
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q (want gen, info, or benchmarks)", args[0])
	}
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("icrtrace gen", flag.ContinueOnError)
	var (
		bench = fs.String("bench", "vpr", "benchmark to generate")
		n     = fs.Uint64("n", 1_000_000, "instructions to emit")
		seed  = fs.Int64("seed", 1, "workload seed")
		out   = fs.String("o", "", "output file (required)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("gen: -o output file is required")
	}
	profile, err := workload.ByName(*bench)
	if err != nil {
		return err
	}
	gen, err := workload.New(profile, *seed)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	stream := isa.Limit(gen, *n)
	for {
		in, ok := stream.Next()
		if !ok {
			break
		}
		if err := w.Write(in); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d instructions to %s\n", w.Count(), *out)
	return nil
}

func runInfo(args []string) error {
	fs := flag.NewFlagSet("icrtrace info", flag.ContinueOnError)
	var (
		in    = fs.String("i", "", "trace file to summarize")
		bench = fs.String("bench", "", "alternatively: summarize a generated benchmark stream")
		n     = fs.Uint64("n", 500_000, "instructions to summarize when using -bench")
		seed  = fs.Int64("seed", 1, "workload seed for -bench")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var stream isa.Stream
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			return err
		}
		defer func() {
			if r.Err() != nil {
				fmt.Fprintln(os.Stderr, "icrtrace: warning:", r.Err())
			}
		}()
		stream = r
		*n = 0 // whole file
	case *bench != "":
		profile, err := workload.ByName(*bench)
		if err != nil {
			return err
		}
		gen, err := workload.New(profile, *seed)
		if err != nil {
			return err
		}
		stream = gen
	default:
		return fmt.Errorf("info: need -i FILE or -bench NAME")
	}
	fmt.Println(trace.Summarize(stream, *n))
	return nil
}
