package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/serve"
	"repro/internal/store"
)

// fleetHosts starts n icrd shard nodes (disk store + /store/v1/
// endpoints over real HTTP) and returns their base URLs.
func fleetHosts(t *testing.T, n int) []string {
	t.Helper()
	hosts := make([]string, n)
	for i := 0; i < n; i++ {
		st, err := store.Open(t.TempDir(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		eng := runner.New(runner.Options{
			Simulate: func(ctx context.Context, m config.Machine, r config.Run) (*metrics.Report, error) {
				return &metrics.Report{Benchmark: r.Benchmark, Scheme: "test", Cycles: 1}, nil
			},
		})
		ts := httptest.NewServer(serve.New(serve.Options{Runner: eng, Backend: st, ShardAPI: true}).Handler())
		t.Cleanup(ts.Close)
		hosts[i] = ts.URL
	}
	return hosts
}

// testFleet wires a Sharded backend over a fresh n-node fleet.
func testFleet(t *testing.T, n int) *store.Sharded {
	t.Helper()
	hosts := fleetHosts(t, n)
	shards := make([]store.Shard, n)
	for i, h := range hosts {
		shards[i] = store.NewRemote(h, nil)
	}
	sh, err := store.NewSharded(shards, store.ShardedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

// TestReplayAgainstFleet runs a small load against a real 3-shard fleet
// and checks the counters, percentile ordering, and look-aside fill:
// every distinct key misses exactly once fleet-wide, then hits.
func TestReplayAgainstFleet(t *testing.T) {
	backend := testFleet(t, 3)
	cfg := loadConfig{clients: 8, requests: 2000, keys: 64, zipfS: 1.2, seed: 7}
	res, err := replay(context.Background(), backend, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Hits + res.Misses + res.Errors; got != cfg.requests {
		t.Errorf("hits+misses+errors = %d, want %d", got, cfg.requests)
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d against a healthy fleet", res.Errors)
	}
	// Look-aside fill: a key can miss once per racing client at worst
	// (concurrent Gets before any Put lands), so misses are bounded by
	// keys*clients and the vast majority of requests must be hits.
	if res.Misses == 0 || res.Misses > uint64(cfg.keys*cfg.clients) {
		t.Errorf("misses = %d, want in (0, %d]", res.Misses, cfg.keys*cfg.clients)
	}
	if res.Hits < cfg.requests/2 {
		t.Errorf("hits = %d of %d: look-aside fill not taking effect", res.Hits, cfg.requests)
	}
	if res.Puts+res.PutErrors != res.Misses {
		t.Errorf("puts+put_errors = %d, want %d (one fill attempt per miss)", res.Puts+res.PutErrors, res.Misses)
	}
	l := res.LatencyMS
	if l.P50 > l.P90 || l.P90 > l.P99 || l.P99 > l.Max || l.Max <= 0 {
		t.Errorf("latency percentiles out of order: %+v", l)
	}
	if res.ThroughputRPS <= 0 || res.ElapsedSec <= 0 {
		t.Errorf("throughput %f / elapsed %f not positive", res.ThroughputRPS, res.ElapsedSec)
	}

	// Every filled key must now be readable with the deterministic content.
	rep, err := backend.Get(context.Background(), loadKey(0))
	if err != nil {
		t.Fatalf("hot key after load: %v", err)
	}
	if rep.Benchmark != "icrload" || rep.Cycles != 1 {
		t.Errorf("key 0 content = %+v, want deterministic loadReport(0)", rep)
	}
}

// TestReplayDeterministicSequence verifies the seed contract: the same
// seed against equal fleets issues the identical request sequence. A
// single client has no fill races, so the counters must match exactly.
func TestReplayDeterministicSequence(t *testing.T) {
	cfg := loadConfig{clients: 1, requests: 400, keys: 32, zipfS: 1.3, seed: 42}
	a, err := replay(context.Background(), testFleet(t, 3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := replay(context.Background(), testFleet(t, 3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Misses != b.Misses || a.Hits != b.Hits || a.Puts != b.Puts {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

// TestReplayContextCancel counts undone work as errors instead of hanging.
func TestReplayContextCancel(t *testing.T) {
	backend := testFleet(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := replay(ctx, backend, loadConfig{clients: 2, requests: 100, keys: 8, zipfS: 1.2, seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 100 {
		t.Errorf("cancelled load errors = %d, want all 100", res.Errors)
	}
}

func TestLoadKeyIsValid(t *testing.T) {
	for _, i := range []int{0, 1, 4095} {
		if k := loadKey(i); !store.ValidKey(k) {
			t.Errorf("loadKey(%d) = %q rejected by store.ValidKey", i, k)
		}
	}
	if loadKey(1) == loadKey(2) {
		t.Error("distinct indices collided")
	}
}

// TestCheckFile exercises the -check validator on good and corrupted
// artifacts.
func TestCheckFile(t *testing.T) {
	good := Result{
		Schema: Schema, Date: "2026-08-08", Go: "go", Store: "shards:a,b,c",
		Shards: 3, Clients: 4, Requests: 100, Keys: 16, ZipfS: 1.1, Seed: 1,
		Hits: 90, Misses: 10, Puts: 10, Errors: 0,
		ElapsedSec: 1.5, ThroughputRPS: 66.7,
		LatencyMS: Latency{P50: 1, P90: 2, P99: 3, Max: 4},
	}
	write := func(t *testing.T, mutate func(*Result)) string {
		t.Helper()
		r := good
		if mutate != nil {
			mutate(&r)
		}
		buf, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(t.TempDir(), "load.json")
		if err := os.WriteFile(p, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	if err := checkFile(write(t, nil)); err != nil {
		t.Errorf("valid file rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Result)
		want   string
	}{
		{"wrong schema", func(r *Result) { r.Schema = 99 }, "schema"},
		{"missing date", func(r *Result) { r.Date = "" }, "date"},
		{"counter mismatch", func(r *Result) { r.Hits = 1 }, "hits+misses+errors"},
		{"puts don't cover misses", func(r *Result) { r.Puts = 50 }, "puts"},
		{"zero throughput", func(r *Result) { r.ThroughputRPS = 0 }, "throughput"},
		{"disordered percentiles", func(r *Result) { r.LatencyMS.P50 = 9 }, "percentiles"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkFile(write(t, tc.mutate))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestRunEndToEnd drives the binary's run() with real flags against a
// live fleet, then validates its own artifact with -check — the exact
// sequence scripts/ci.sh performs.
func TestRunEndToEnd(t *testing.T) {
	hosts := fleetHosts(t, 3)
	for i, h := range hosts {
		hosts[i] = strings.TrimPrefix(h, "http://")
	}
	out := filepath.Join(t.TempDir(), "LOAD_test.json")
	args := []string{
		"-store", "shards:" + strings.Join(hosts, ","),
		"-clients", "4", "-requests", "500", "-keys", "32",
		"-zipf", "1.2", "-seed", "3",
		"-timeout", time.Minute.String(),
		"-out", out,
	}
	if err := run(args); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := run([]string{"-check", out}); err != nil {
		t.Fatalf("-check rejected fresh artifact: %v", err)
	}
	var r Result
	buf, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf, &r); err != nil {
		t.Fatal(err)
	}
	if r.Shards != 3 || r.Requests != 500 {
		t.Errorf("artifact shards=%d requests=%d, want 3/500", r.Shards, r.Requests)
	}
}
