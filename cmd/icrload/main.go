// Command icrload replays a memcache-style load against a result-store
// fleet: thousands of synthetic clients issuing Zipf-distributed
// look-aside reads (Get; on miss, synthesize the report and Put it back),
// the same access pattern a farm of icrd front ends generates against a
// shard fleet, minus the simulations. It measures what the store path
// alone can sustain — request throughput and client-observed latency
// percentiles — and writes them as a LOAD_<date>.json artifact next to
// the BENCH files.
//
//	icrd -addr :8081 -store disk:/tmp/s1 &   # repeat for each shard
//	icrload -store shards:localhost:8081,localhost:8082,localhost:8083 \
//	        -clients 2000 -requests 1000000 -out LOAD_2026-08-08.json
//	icrload -check LOAD_2026-08-08.json
//
// The emitted schema (version 1):
//
//	{
//	  "schema": 1,
//	  "date": "2026-08-08",
//	  "go": "go1.24.0 linux/amd64",
//	  "store": "shards:localhost:8081,...",
//	  "shards": 3, "clients": 2000, "requests": 1000000,
//	  "keys": 4096, "zipf_s": 1.1, "seed": 1,
//	  "hits": 995904, "misses": 4096, "puts": 4096, "put_errors": 0,
//	  "retries": 112, "errors": 0,
//	  "elapsed_sec": 12.3, "throughput_rps": 81234.5,
//	  "latency_ms": {"p50": 1.2, "p90": 3.4, "p99": 9.8, "max": 31.0}
//	}
//
// -check validates that a file parses, carries schema 1, that the
// counters add up (hits+misses+errors = requests), and that the latency
// percentiles are ordered — the contract scripts/ci.sh enforces on the
// committed artifact and on every smoke run.
//
// Every client derives its keys and Zipf sampler from -seed, so two runs
// against equal fleets issue the identical request sequence; only the
// timings differ.
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cliflag"
	"repro/internal/metrics"
	"repro/internal/store"
)

// Schema is the LOAD file format version.
const Schema = 1

// Latency is the client-observed per-request latency summary, merged
// across every client and sorted before the percentiles are cut.
type Latency struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// Result is the LOAD_<date>.json payload.
type Result struct {
	Schema        int     `json:"schema"`
	Date          string  `json:"date"`
	Go            string  `json:"go"`
	Store         string  `json:"store"`
	Shards        int     `json:"shards"`
	Clients       int     `json:"clients"`
	Requests      uint64  `json:"requests"`
	Keys          int     `json:"keys"`
	ZipfS         float64 `json:"zipf_s"`
	Seed          int64   `json:"seed"`
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	Puts          uint64  `json:"puts"`
	PutErrors     uint64  `json:"put_errors"`
	Retries       uint64  `json:"retries"`
	Errors        uint64  `json:"errors"`
	ElapsedSec    float64 `json:"elapsed_sec"`
	ThroughputRPS float64 `json:"throughput_rps"`
	LatencyMS     Latency `json:"latency_ms"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "icrload:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("icrload", flag.ContinueOnError)
	var (
		storeSpec   = fs.String("store", "", `fleet to load: "shards:HOST1,HOST2,..." (or any -store backend)`)
		clients     = fs.Int("clients", 2000, "concurrent synthetic clients")
		requests    = fs.Uint64("requests", 1_000_000, "total requests across all clients")
		keys        = fs.Int("keys", 4096, "distinct keys in the synthetic keyspace")
		zipfS       = fs.Float64("zipf", 1.1, "Zipf skew s (> 1; larger = hotter head)")
		seed        = fs.Int64("seed", 1, "request-sequence seed")
		out         = fs.String("out", "", "output JSON path (empty = stdout)")
		check       = fs.String("check", "", "validate an existing LOAD json and exit")
		timeout     = fs.Duration("timeout", 10*time.Minute, "whole-load deadline")
		showVersion = cliflag.RegisterVersion(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Println(cliflag.Version("icrload"))
		return nil
	}
	if *check != "" {
		if err := checkFile(*check); err != nil {
			return fmt.Errorf("%s: %w", *check, err)
		}
		fmt.Printf("%s: ok\n", *check)
		return nil
	}

	spec, err := cliflag.ParseStore(*storeSpec)
	if err != nil {
		return err
	}
	if spec.Kind == "none" {
		return fmt.Errorf("-store is required (e.g. shards:h1:8080,h2:8080)")
	}
	backend, err := spec.Backend(metrics.NewProgress())
	if err != nil {
		return err
	}
	if *clients < 1 || *requests == 0 || *keys < 1 || *zipfS <= 1 {
		return fmt.Errorf("need -clients >= 1, -requests >= 1, -keys >= 1, -zipf > 1")
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	res, err := replay(ctx, backend, loadConfig{
		clients:  *clients,
		requests: *requests,
		keys:     *keys,
		zipfS:    *zipfS,
		seed:     *seed,
	})
	if err != nil {
		return err
	}
	res.Store = *storeSpec
	res.Shards = len(spec.Shards)
	if spec.Kind == "disk" {
		res.Shards = 1
	}
	res.Date = time.Now().Format("2006-01-02")
	res.Go = runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "icrload: %d requests, %.0f req/s, p50 %.2fms p99 %.2fms -> %s\n",
		res.Requests, res.ThroughputRPS, res.LatencyMS.P50, res.LatencyMS.P99, *out)
	return nil
}

type loadConfig struct {
	clients  int
	requests uint64
	keys     int
	zipfS    float64
	seed     int64
}

// loadKey derives the i-th synthetic key: sha256 hex, the same shape as
// runner.Key.String(), so it passes the shard protocol's key validation.
func loadKey(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("icrload-%d", i)))
	return hex.EncodeToString(sum[:])
}

// loadReport synthesizes the deterministic report stored under the i-th
// key: every field is a pure function of i, so concurrent writers of one
// key are idempotent (the content-addressing property the real store
// relies on) and any client can verify what it reads back.
func loadReport(i int) *metrics.Report {
	return &metrics.Report{
		Benchmark:    "icrload",
		Scheme:       "synthetic",
		Instructions: 1000,
		Cycles:       uint64(i)*1000 + 1,
		DL1Reads:     uint64(i),
	}
}

// replay fans cfg.clients goroutines over the fleet and merges their
// latency observations.
func replay(ctx context.Context, backend store.Backend, cfg loadConfig) (*Result, error) {
	perClient := cfg.requests / uint64(cfg.clients)
	extra := cfg.requests % uint64(cfg.clients)

	var hits, misses, puts, putErrs, retries, errs atomic.Uint64
	latencies := make([][]float64, cfg.clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.clients; c++ {
		n := perClient
		if uint64(c) < extra {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(c int, n uint64) {
			defer wg.Done()
			// Each client is an independent deterministic request stream.
			rng := rand.New(rand.NewSource(cfg.seed + int64(c)))
			zipf := rand.NewZipf(rng, cfg.zipfS, 1, uint64(cfg.keys-1))
			lat := make([]float64, 0, n)
			for i := uint64(0); i < n; i++ {
				if ctx.Err() != nil {
					errs.Add(n - i)
					break
				}
				idx := int(zipf.Uint64())
				key := loadKey(idx)
				t0 := time.Now()
				_, err := getWithRetry(ctx, backend, key, &retries)
				switch {
				case err == nil:
					hits.Add(1)
				case errorsIsMiss(err):
					// The Get missed either way; a failed fill (e.g. a 429
					// from an overloaded shard) is tracked separately so
					// hits+misses+errors still partitions the requests.
					misses.Add(1)
					if perr := backend.Put(ctx, key, loadReport(idx)); perr != nil {
						putErrs.Add(1)
					} else {
						puts.Add(1)
					}
				default:
					errs.Add(1)
				}
				lat = append(lat, float64(time.Since(t0).Microseconds())/1000.0)
			}
			latencies[c] = lat
		}(c, n)
	}
	wg.Wait()
	elapsed := time.Since(start)

	merged := make([]float64, 0, cfg.requests)
	for _, l := range latencies {
		merged = append(merged, l...)
	}
	sort.Float64s(merged)
	res := &Result{
		Schema:     Schema,
		Clients:    cfg.clients,
		Requests:   cfg.requests,
		Keys:       cfg.keys,
		ZipfS:      cfg.zipfS,
		Seed:       cfg.seed,
		Hits:       hits.Load(),
		Misses:     misses.Load(),
		Puts:       puts.Load(),
		PutErrors:  putErrs.Load(),
		Retries:    retries.Load(),
		Errors:     errs.Load(),
		ElapsedSec: elapsed.Seconds(),
		LatencyMS: Latency{
			P50: percentile(merged, 0.50),
			P90: percentile(merged, 0.90),
			P99: percentile(merged, 0.99),
			Max: percentile(merged, 1.00),
		},
	}
	if elapsed > 0 {
		res.ThroughputRPS = float64(len(merged)) / elapsed.Seconds()
	}
	return res, nil
}

func errorsIsMiss(err error) bool { return errors.Is(err, store.ErrMiss) }

// getWithRetry is the client's overload discipline: a Get that fails for
// a reason other than a miss (a 429 when the hot key's owner shard is
// over its admission queue, a transient transport error) is retried a few
// times with growing backoff before it counts as a request error. Misses
// and successes return immediately.
func getWithRetry(ctx context.Context, backend store.Backend, key string, retries *atomic.Uint64) (*metrics.Report, error) {
	const attempts = 4
	var rep *metrics.Report
	var err error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			retries.Add(1)
			t := time.NewTimer(time.Duration(a) * 25 * time.Millisecond)
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			case <-t.C:
			}
		}
		rep, err = backend.Get(ctx, key)
		if err == nil || errors.Is(err, store.ErrMiss) {
			return rep, err
		}
	}
	return nil, err
}

// percentile cuts p in [0,1] from a sorted slice (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// checkFile enforces the LOAD schema contract CI relies on.
func checkFile(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var r Result
	if err := json.Unmarshal(buf, &r); err != nil {
		return err
	}
	if r.Schema != Schema {
		return fmt.Errorf("schema %d, want %d", r.Schema, Schema)
	}
	if r.Date == "" || r.Store == "" {
		return fmt.Errorf("missing date or store field")
	}
	if r.Clients < 1 || r.Requests == 0 || r.Keys < 1 {
		return fmt.Errorf("non-positive clients/requests/keys")
	}
	if got := r.Hits + r.Misses + r.Errors; got != r.Requests {
		return fmt.Errorf("hits+misses+errors = %d, want requests = %d", got, r.Requests)
	}
	if r.Puts+r.PutErrors != r.Misses {
		return fmt.Errorf("puts+put_errors = %d, want misses = %d", r.Puts+r.PutErrors, r.Misses)
	}
	if r.ElapsedSec <= 0 || r.ThroughputRPS <= 0 {
		return fmt.Errorf("non-positive elapsed/throughput")
	}
	l := r.LatencyMS
	if l.P50 < 0 || l.P50 > l.P90 || l.P90 > l.P99 || l.P99 > l.Max {
		return fmt.Errorf("latency percentiles out of order: %+v", l)
	}
	return nil
}
