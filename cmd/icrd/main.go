// Command icrd serves the ICR experiment suite over HTTP: POST a run or a
// figure id, get back the versioned metrics JSON. Results are memoized in
// memory and — with -store — persisted to disk, so a sweep point simulated
// once (by this daemon, a previous incarnation of it, or an icrbench run
// sharing the directory) is never simulated again.
//
//	icrd -addr localhost:8080 -store /var/cache/icr -parallel 8
//
// With -cluster, icrd becomes the coordinator of a simulation fleet:
// remote icrworker processes register at /cluster/v1/, pull leased tasks,
// and upload results. Cache misses are then farmed out instead of
// simulated in-process, while caching, ordering, and output bytes stay
// identical to single-node mode:
//
//	icrd -addr :8080 -cluster -store /var/cache/icr
//	icrworker -coordinator http://host:8080   # on each fleet machine
//
// A disk-backed icrd also serves its store as a shard at /store/v1/
// (reads, write-through, and anti-stampede claims), so a fleet of icrd
// processes can pool their results memcache-style: point front ends at
// the fleet with -store shards:host1:8080,host2:8080,host3:8080 and keys
// are consistent-hashed across the shard ring — each result simulated
// once fleet-wide, hot results replicated for read spreading and
// survival of a shard loss.
//
// Overload is bounded: at most -queue requests are admitted concurrently
// and the rest get 429 immediately. SIGTERM/SIGINT drains gracefully —
// fleet-wide in cluster mode: leasing stops, workers finish and upload
// in-flight tasks — executing simulations finish and persist, queued ones
// are rejected, and the process exits 0 once in-flight responses are
// written.
//
// Observability: GET /debug/vars exposes cache-tier hit counters, queue
// state, and store stats; GET /debug/pprof serves the standard profilers.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliflag"
	"repro/internal/cluster"
	"repro/internal/runner"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "icrd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("icrd", flag.ContinueOnError)
	var sim cliflag.Sim
	sim.Register(fs)
	sim.RegisterCache(fs)
	var (
		addr        = fs.String("addr", "localhost:8080", "listen address (port 0 picks a free port, printed on stdout)")
		queue       = fs.Int("queue", 0, "max concurrently admitted requests before 429 (0 = 4x -parallel)")
		reqTimeout  = fs.Duration("request-timeout", 0, "per-request deadline cap (0 = none)")
		drainWait   = fs.Duration("drain-timeout", time.Minute, "max time to wait for in-flight requests on shutdown")
		clusterMode = fs.Bool("cluster", false, "coordinate a fleet of icrworker processes instead of simulating in-process")
		lease       = fs.Duration("lease", cluster.DefaultLeaseTTL, "cluster task lease duration before reassignment (with -cluster)")
		showVersion = cliflag.RegisterVersion(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Println(cliflag.Version("icrd"))
		return nil
	}

	var coord *cluster.Coordinator
	var exec runner.Executor
	if *clusterMode {
		coord = cluster.New(cluster.Options{LeaseTTL: *lease})
		defer coord.Close()
		exec = coord
	}
	eng, backend, err := sim.NewRunnerExecutor(nil, exec)
	if err != nil {
		return err
	}
	spec, err := cliflag.ParseStore(sim.Store)
	if err != nil {
		return err
	}
	srv := serve.New(serve.Options{
		Runner:         eng,
		Backend:        backend,
		// A disk-backed icrd doubles as a shard node: other fleet members
		// read, write, and claim through its /store/v1/ endpoints.
		ShardAPI:       backend != nil && spec.Kind == "disk",
		QueueDepth:     *queue,
		RequestTimeout: *reqTimeout,
		Cluster:        coord,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The actual address on stdout (and nothing else there), so scripts
	// using -addr localhost:0 can scrape the port.
	fmt.Printf("listening on %s\n", ln.Addr())
	if backend != nil {
		fmt.Fprintf(os.Stderr, "icrd: result store %s (%d results warm)\n", sim.Store, backend.Stats().Entries)
		if spec.Kind == "disk" {
			fmt.Fprintln(os.Stderr, "icrd: shard API on at /store/v1/")
		}
	}
	if coord != nil {
		fmt.Fprintf(os.Stderr, "icrd: cluster mode on (lease %s); workers register at /cluster/v1/\n", coord.LeaseTTL())
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "icrd: draining (executing simulations will finish and persist)")

	// Reject queued/new simulations, then wait for in-flight handlers.
	// Shutdown does not cancel request contexts, so running simulations
	// complete and their results reach the store before exit.
	srv.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "icrd: drained cleanly")
	return nil
}
