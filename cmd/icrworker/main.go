// Command icrworker is one machine of an ICR simulation fleet: it
// registers with an icrd coordinator (-cluster), pulls leased simulation
// tasks over HTTP/JSON, executes them with the ordinary local engine, and
// uploads the resulting reports.
//
//	icrworker -coordinator http://icrd-host:8080 -parallel 8
//
// Tasks are content-addressed, so a worker may share a -store directory
// with other local processes and serve repeated sweep points from disk
// instead of re-simulating. Leases are renewed while a task runs; if the
// coordinator reassigns one (this worker looked dead), the execution is
// cancelled and the result dropped — the other worker's upload wins.
//
// The first SIGTERM/SIGINT drains: no new leases, in-flight tasks finish
// and upload, then the process exits 0. A second signal aborts in-flight
// work immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/cliflag"
	"repro/internal/cluster"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "icrworker:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("icrworker", flag.ContinueOnError)
	var sim cliflag.Sim
	fs.IntVar(&sim.Parallel, "parallel", runtime.NumCPU(),
		"concurrent leased tasks (also advertised to the coordinator as capacity)")
	fs.DurationVar(&sim.Timeout, "timeout", 0,
		"per-simulation timeout; an expiry is reported transient so another worker may retry (0 = none)")
	sim.RegisterCache(fs)
	var (
		coordinator = fs.String("coordinator", "http://localhost:8080", "icrd coordinator base URL")
		id          = fs.String("id", "", "worker id in leases and coordinator stats (default host-pid)")
		poll        = fs.Duration("poll", 5*time.Second, "lease long-poll duration when the queue is empty")
		showVersion = cliflag.RegisterVersion(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Println(cliflag.Version("icrworker"))
		return nil
	}
	if *id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	eng, backend, err := sim.NewRunner(nil)
	if err != nil {
		return err
	}
	if backend != nil {
		fmt.Fprintf(os.Stderr, "icrworker: result store %s (%d results warm)\n", sim.Store, backend.Stats().Entries)
	}
	w, err := cluster.NewWorker(cluster.WorkerOptions{
		BaseURL:  *coordinator,
		ID:       *id,
		Runner:   eng,
		Slots:    sim.Parallel,
		PollWait: *poll,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "icrworker: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}

	// First signal: drain (finish and upload in-flight tasks, then exit 0).
	// Second signal: hard stop (cancel executions, upload nothing).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "icrworker: draining (in-flight tasks will finish and upload)")
		w.Drain()
		<-sigs
		fmt.Fprintln(os.Stderr, "icrworker: aborting")
		cancel()
	}()

	return w.Run(ctx)
}
