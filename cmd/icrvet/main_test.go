package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// runCLI invokes the CLI entry point and captures its streams.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut strings.Builder
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

// TestCLICleanTree is the acceptance smoke test: `icrvet ./...` over the
// live repository exits 0 with no output.
func TestCLICleanTree(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-C", filepath.Join("..", ".."), "./...")
	if code != 0 {
		t.Fatalf("exit %d on live tree\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("unexpected findings:\n%s", stdout)
	}
}

// TestCLIFixturesFail pins that each pass's fixture makes the CLI exit
// nonzero and name the right pass.
func TestCLIFixturesFail(t *testing.T) {
	cases := []struct {
		fixture string
		pass    string
	}{
		{"determinism", "[determinism]"},
		{"keycoverage", "[keycoverage]"},
		{"syncmisuse", "[syncmisuse]"},
		{"floatorder", "[floatorder]"},
		{"droppederr", "[droppederr]"},
		{"suppress", "[directive]"},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			dir := filepath.Join("..", "..", "internal", "lint", "testdata", tc.fixture)
			code, stdout, _ := runCLI(t, "-C", dir, "./...")
			if code != 1 {
				t.Fatalf("exit %d, want 1\nstdout:\n%s", code, stdout)
			}
			if !strings.Contains(stdout, tc.pass) {
				t.Errorf("output does not mention %s:\n%s", tc.pass, stdout)
			}
		})
	}
}

// TestCLIPatternFilter pins that a directory pattern narrows the report:
// the droppederr fixture has findings in both cmd/ and internal/runner,
// and asking for cmd/... must only show the former.
func TestCLIPatternFilter(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "lint", "testdata", "droppederr")
	code, stdout, _ := runCLI(t, "-C", dir, "cmd/...")
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s", code, stdout)
	}
	if strings.Contains(stdout, "internal/runner") {
		t.Errorf("pattern cmd/... leaked internal/runner findings:\n%s", stdout)
	}
	if !strings.Contains(stdout, "cmd/app/main.go") {
		t.Errorf("pattern cmd/... lost the cmd findings:\n%s", stdout)
	}
}

// TestCLIPassSubset pins -passes narrowing and unknown-pass rejection.
func TestCLIPassSubset(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "lint", "testdata", "determinism")
	code, stdout, _ := runCLI(t, "-C", dir, "-passes", "droppederr", "./...")
	if code != 0 || stdout != "" {
		t.Errorf("droppederr-only over determinism fixture: exit %d, out %q", code, stdout)
	}
	code, _, stderr := runCLI(t, "-C", dir, "-passes", "bogus", "./...")
	if code != 2 || !strings.Contains(stderr, "unknown pass") {
		t.Errorf("bogus pass: exit %d, stderr %q; want exit 2 naming the pass", code, stderr)
	}
}

// TestCLIList covers -list.
func TestCLIList(t *testing.T) {
	code, stdout, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("-list exit %d", code)
	}
	for _, pass := range []string{"determinism", "keycoverage", "syncmisuse", "floatorder", "droppederr"} {
		if !strings.Contains(stdout, pass) {
			t.Errorf("-list output missing %s:\n%s", pass, stdout)
		}
	}
}
