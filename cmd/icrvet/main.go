// Command icrvet statically enforces the repository's determinism and
// concurrency invariants. It is built entirely on the standard library
// (go/ast, go/parser, go/types): the module stays offline and
// dependency-free.
//
// Nine passes run over the module containing the given packages:
//
//	determinism    wall-clock time, global math/rand, and order-dependent
//	               map iteration in the simulation hot path
//	keycoverage    runner.KeyFor covers every exported config field
//	syncmisuse     copied locks/atomics; misaligned 64-bit atomics
//	floatorder     float accumulation in map-iteration order
//	droppederr     discarded errors in cmd/ and the error-critical layers
//	resetcoverage  //icrvet:pooled types Reset every field or declare it
//	               //icrvet:persistent
//	allocfree      no allocation in code reachable from the steady-state
//	               loop ((*cpu.Core).Run/RunWarming and //icrvet:hot roots)
//	wirecoverage   the key, cluster-wire, and metrics-schema codecs cover
//	               every config/report field
//	ctxflow        context.Context plumbing discipline
//
// Findings print as "path:line:col: [pass] message" and make the process
// exit 1; load or usage errors exit 2. With -json, findings are printed
// instead as one versioned JSON document (see lint.JSONReport) on stdout —
// exit codes are unchanged, so CI can both archive the artifact and gate
// on it. Suppress a finding with a justified directive on the flagged line
// or the line above:
//
//	//icrvet:ignore <pass>[,<pass>...] <reason>
//
// An ignore directive that suppresses nothing is itself a finding. The
// annotation directives //icrvet:pooled, //icrvet:persistent <reason>, and
// //icrvet:hot <reason> feed the resetcoverage and allocfree passes.
//
// Examples:
//
//	icrvet ./...
//	icrvet -passes determinism,droppederr ./...
//	icrvet -json ./... > icrvet.json
//	icrvet internal/sim/...
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("icrvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		passes  = fs.String("passes", "", "comma-separated pass subset (default: all)")
		list    = fs.Bool("list", false, "list passes and exit")
		dir     = fs.String("C", "", "change to this directory before resolving patterns")
		jsonOut = fs.Bool("json", false, "emit findings as a versioned JSON report on stdout")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, p := range lint.Passes() {
			fmt.Fprintf(stdout, "%-12s %s\n", p.Name, p.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	base := *dir
	if base == "" {
		base = "."
	}
	var opts lint.Options
	if *passes != "" {
		opts.Passes = strings.Split(*passes, ",")
	}
	findings, root, err := analyze(base, patterns, opts)
	if err != nil {
		fmt.Fprintln(stderr, "icrvet:", err)
		return 2
	}
	if *jsonOut {
		data, err := lint.NewJSONReport(root, opts.Passes, findings).Encode()
		if err != nil {
			fmt.Fprintln(stderr, "icrvet:", err)
			return 2
		}
		if _, err := stdout.Write(data); err != nil {
			fmt.Fprintln(stderr, "icrvet:", err)
			return 2
		}
		if len(findings) > 0 {
			fmt.Fprintf(stderr, "icrvet: %d finding(s)\n", len(findings))
			return 1
		}
		return 0
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f.Relative(root))
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "icrvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// analyze loads the module at or above base, runs the passes, and filters
// findings to files under the directories named by the patterns.
func analyze(base string, patterns []string, opts lint.Options) ([]lint.Finding, string, error) {
	mod, err := lint.Load(base)
	if err != nil {
		return nil, "", err
	}
	findings, err := lint.Run(mod, opts)
	if err != nil {
		return nil, "", err
	}

	// Resolve each pattern to an absolute directory prefix ("dir/..."
	// and "dir" both mean the subtree rooted at dir).
	var prefixes []string
	for _, p := range patterns {
		p = strings.TrimSuffix(p, "...")
		p = strings.TrimSuffix(p, "/")
		if p == "" || p == "." {
			prefixes = nil // whole module
			break
		}
		abs, err := filepath.Abs(filepath.Join(base, p))
		if err != nil {
			return nil, "", err
		}
		prefixes = append(prefixes, abs)
	}
	if prefixes == nil {
		return findings, mod.Root, nil
	}
	var kept []lint.Finding
	for _, f := range findings {
		for _, pre := range prefixes {
			if f.Pos.Filename == pre || strings.HasPrefix(f.Pos.Filename, pre+string(filepath.Separator)) {
				kept = append(kept, f)
				break
			}
		}
	}
	return kept, mod.Root, nil
}
