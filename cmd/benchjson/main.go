// Command benchjson converts `go test -bench` text output into the
// machine-readable BENCH_<date>.json files the repo uses to track
// simulator performance PR-over-PR (see scripts/bench.sh).
//
// Modes:
//
//	go test -bench=. -benchmem ./... | benchjson -o BENCH_2026-08-06.json
//	benchjson -baseline old.json -o BENCH_<date>.json < bench.txt
//	benchjson -check BENCH_2026-08-06.json
//
// The emitted schema (version 1):
//
//	{
//	  "schema": 1,
//	  "date": "2026-08-06",
//	  "go": "go1.24.0 linux/amd64",
//	  "benchmarks": [
//	    {"name": "BenchmarkSimulateBaseP", "package": "repro/internal/sim",
//	     "iterations": 12, "metrics": {"ns/op": 9.6e7, "allocs/op": 110921,
//	     "B/op": 9343013, "instr/s": 1.04e6}}
//	  ],
//	  "baseline": [ ...same shape, from -baseline... ],
//	  "speedup": {"BenchmarkSimulateBaseP": 1.62}   // baseline ns/op ÷ new ns/op
//	}
//
// -check validates that a file parses, carries schema 1, and that every
// benchmark has a name and an ns/op metric — the contract scripts/ci.sh
// enforces on every run. With -against BASELINE it additionally gates
// performance regressions: every benchmark present in both files must
// stay within -max-alloc-growth of the baseline's allocs/op (allocations
// are deterministic, so this bound is tight) and above -min-speed-frac of
// its instr/s (timing from CI's single-iteration smoke runs is noisy, so
// this bound only catches order-of-magnitude collapses, e.g. arena
// pooling silently breaking). A benchmark that exists in the baseline but
// not in the checked file fails the gate: renames must update the
// committed baseline.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Schema is the BENCH file format version.
const Schema = 1

// Benchmark is one `go test -bench` result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// File is the top-level BENCH_<date>.json document.
type File struct {
	Schema     int                `json:"schema"`
	Date       string             `json:"date"`
	Go         string             `json:"go"`
	Benchmarks []Benchmark        `json:"benchmarks"`
	Baseline   []Benchmark        `json:"baseline,omitempty"`
	Speedup    map[string]float64 `json:"speedup,omitempty"`
}

func main() {
	var (
		out       = flag.String("o", "", "output file (default stdout)")
		baseline  = flag.String("baseline", "", "prior BENCH json to embed and compute speedups against")
		check     = flag.String("check", "", "validate an existing BENCH json and exit")
		against   = flag.String("against", "", "with -check: committed BENCH json to gate regressions against")
		allocGrow = flag.Float64("max-alloc-growth", 0.25, "with -against: allowed fractional allocs/op growth")
		speedFrac = flag.Float64("min-speed-frac", 0.30, "with -against: required fraction of baseline instr/s")
		date      = flag.String("date", "", "date stamp (default today, YYYY-MM-DD)")
	)
	flag.Parse()

	if *check != "" {
		if err := checkFile(*check); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *check, err)
			os.Exit(1)
		}
		if *against != "" {
			if err := checkAgainst(*check, *against, *allocGrow, *speedFrac); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %s vs %s: %v\n", *check, *against, err)
				os.Exit(1)
			}
			fmt.Printf("%s: ok (no regression vs %s)\n", *check, *against)
			return
		}
		fmt.Printf("%s: ok\n", *check)
		return
	}
	if *against != "" {
		fmt.Fprintln(os.Stderr, "benchjson: -against requires -check")
		os.Exit(1)
	}

	benches, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	f := File{
		Schema:     Schema,
		Date:       *date,
		Go:         runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		Benchmarks: benches,
	}
	if f.Date == "" {
		f.Date = time.Now().Format("2006-01-02")
	}
	if *baseline != "" {
		if err := embedBaseline(&f, *baseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: baseline: %v\n", err)
			os.Exit(1)
		}
	}

	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(enc); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parse extracts benchmark result lines (and their owning package from the
// interleaved "pkg:" headers) from `go test -bench` output.
func parse(sc *bufio.Scanner) ([]Benchmark, error) {
	var (
		out []Benchmark
		pkg string
	)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// name iterations (value unit)+ — metric values pair with units.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix go test appends.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		b := Benchmark{Name: name, Package: pkg, Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value in %q", line)
			}
			b.Metrics[fields[i+1]] = v
		}
		if _, ok := b.Metrics["ns/op"]; !ok {
			return nil, fmt.Errorf("benchmark line without ns/op: %q", line)
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

// embedBaseline loads a prior BENCH file, embeds its benchmarks, and
// computes per-benchmark speedups (baseline ns/op ÷ current ns/op).
func embedBaseline(f *File, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base File
	if err := json.Unmarshal(raw, &base); err != nil {
		return err
	}
	if base.Schema != Schema {
		return fmt.Errorf("schema %d, want %d", base.Schema, Schema)
	}
	f.Baseline = base.Benchmarks
	f.Speedup = map[string]float64{}
	old := map[string]float64{}
	for _, b := range base.Benchmarks {
		old[b.Name] = b.Metrics["ns/op"]
	}
	for _, b := range f.Benchmarks {
		if o, ok := old[b.Name]; ok && b.Metrics["ns/op"] > 0 {
			f.Speedup[b.Name] = o / b.Metrics["ns/op"]
		}
	}
	return nil
}

// loadFile reads and validates one BENCH file.
func loadFile(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, err
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("schema = %d, want %d", f.Schema, Schema)
	}
	return &f, nil
}

// checkAgainst is the CI regression gate: compare the current run against
// a committed baseline. See compareBench for the rules.
func checkAgainst(current, baseline string, allocGrow, speedFrac float64) error {
	cur, err := loadFile(current)
	if err != nil {
		return err
	}
	base, err := loadFile(baseline)
	if err != nil {
		return err
	}
	return compareBench(cur.Benchmarks, base.Benchmarks, allocGrow, speedFrac)
}

// compareBench enforces the regression rules benchmark-by-benchmark:
// every baseline benchmark must exist in the current run, allocs/op may
// grow at most by the allocGrow fraction, and instr/s (where both sides
// report it) must stay at or above speedFrac of the baseline.
func compareBench(current, baseline []Benchmark, allocGrow, speedFrac float64) error {
	cur := make(map[string]Benchmark, len(current))
	for _, b := range current {
		cur[b.Name] = b
	}
	var failures []string
	for _, b := range baseline {
		c, ok := cur[b.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline but missing from current run", b.Name))
			continue
		}
		if ba, ca := b.Metrics["allocs/op"], c.Metrics["allocs/op"]; ba > 0 && ca > ba*(1+allocGrow) {
			failures = append(failures, fmt.Sprintf("%s: allocs/op %.0f > %.0f (+%.0f%% over baseline %.0f)",
				b.Name, ca, ba*(1+allocGrow), allocGrow*100, ba))
		}
		if bs, cs := b.Metrics["instr/s"], c.Metrics["instr/s"]; bs > 0 && cs > 0 && cs < bs*speedFrac {
			failures = append(failures, fmt.Sprintf("%s: instr/s %.0f < %.0f (%.0f%% of baseline %.0f)",
				b.Name, cs, bs*speedFrac, speedFrac*100, bs))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d regression(s):\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	return nil
}

// checkFile enforces the schema contract on an emitted BENCH file.
func checkFile(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return err
	}
	if f.Schema != Schema {
		return fmt.Errorf("schema = %d, want %d", f.Schema, Schema)
	}
	if f.Date == "" || f.Go == "" {
		return fmt.Errorf("missing date or go version")
	}
	if len(f.Benchmarks) == 0 {
		return fmt.Errorf("no benchmarks")
	}
	for _, b := range f.Benchmarks {
		if b.Name == "" {
			return fmt.Errorf("benchmark with empty name")
		}
		if b.Metrics["ns/op"] <= 0 {
			return fmt.Errorf("%s: missing ns/op", b.Name)
		}
	}
	return nil
}
