// Command benchjson converts `go test -bench` text output into the
// machine-readable BENCH_<date>.json files the repo uses to track
// simulator performance PR-over-PR (see scripts/bench.sh).
//
// Modes:
//
//	go test -bench=. -benchmem ./... | benchjson -o BENCH_2026-08-06.json
//	benchjson -baseline old.json -o BENCH_<date>.json < bench.txt
//	benchjson -check BENCH_2026-08-06.json
//
// The emitted schema (version 1):
//
//	{
//	  "schema": 1,
//	  "date": "2026-08-06",
//	  "go": "go1.24.0 linux/amd64",
//	  "benchmarks": [
//	    {"name": "BenchmarkSimulateBaseP", "package": "repro/internal/sim",
//	     "iterations": 12, "metrics": {"ns/op": 9.6e7, "allocs/op": 110921,
//	     "B/op": 9343013, "instr/s": 1.04e6}}
//	  ],
//	  "baseline": [ ...same shape, from -baseline... ],
//	  "speedup": {"BenchmarkSimulateBaseP": 1.62}   // baseline ns/op ÷ new ns/op
//	}
//
// -check validates that a file parses, carries schema 1, and that every
// benchmark has a name and an ns/op metric — the contract scripts/ci.sh
// enforces on every run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Schema is the BENCH file format version.
const Schema = 1

// Benchmark is one `go test -bench` result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// File is the top-level BENCH_<date>.json document.
type File struct {
	Schema     int                `json:"schema"`
	Date       string             `json:"date"`
	Go         string             `json:"go"`
	Benchmarks []Benchmark        `json:"benchmarks"`
	Baseline   []Benchmark        `json:"baseline,omitempty"`
	Speedup    map[string]float64 `json:"speedup,omitempty"`
}

func main() {
	var (
		out      = flag.String("o", "", "output file (default stdout)")
		baseline = flag.String("baseline", "", "prior BENCH json to embed and compute speedups against")
		check    = flag.String("check", "", "validate an existing BENCH json and exit")
		date     = flag.String("date", "", "date stamp (default today, YYYY-MM-DD)")
	)
	flag.Parse()

	if *check != "" {
		if err := checkFile(*check); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *check, err)
			os.Exit(1)
		}
		fmt.Printf("%s: ok\n", *check)
		return
	}

	benches, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	f := File{
		Schema:     Schema,
		Date:       *date,
		Go:         runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		Benchmarks: benches,
	}
	if f.Date == "" {
		f.Date = time.Now().Format("2006-01-02")
	}
	if *baseline != "" {
		if err := embedBaseline(&f, *baseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: baseline: %v\n", err)
			os.Exit(1)
		}
	}

	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(enc); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parse extracts benchmark result lines (and their owning package from the
// interleaved "pkg:" headers) from `go test -bench` output.
func parse(sc *bufio.Scanner) ([]Benchmark, error) {
	var (
		out []Benchmark
		pkg string
	)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// name iterations (value unit)+ — metric values pair with units.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix go test appends.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		b := Benchmark{Name: name, Package: pkg, Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value in %q", line)
			}
			b.Metrics[fields[i+1]] = v
		}
		if _, ok := b.Metrics["ns/op"]; !ok {
			return nil, fmt.Errorf("benchmark line without ns/op: %q", line)
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

// embedBaseline loads a prior BENCH file, embeds its benchmarks, and
// computes per-benchmark speedups (baseline ns/op ÷ current ns/op).
func embedBaseline(f *File, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base File
	if err := json.Unmarshal(raw, &base); err != nil {
		return err
	}
	if base.Schema != Schema {
		return fmt.Errorf("schema %d, want %d", base.Schema, Schema)
	}
	f.Baseline = base.Benchmarks
	f.Speedup = map[string]float64{}
	old := map[string]float64{}
	for _, b := range base.Benchmarks {
		old[b.Name] = b.Metrics["ns/op"]
	}
	for _, b := range f.Benchmarks {
		if o, ok := old[b.Name]; ok && b.Metrics["ns/op"] > 0 {
			f.Speedup[b.Name] = o / b.Metrics["ns/op"]
		}
	}
	return nil
}

// checkFile enforces the schema contract on an emitted BENCH file.
func checkFile(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return err
	}
	if f.Schema != Schema {
		return fmt.Errorf("schema = %d, want %d", f.Schema, Schema)
	}
	if f.Date == "" || f.Go == "" {
		return fmt.Errorf("missing date or go version")
	}
	if len(f.Benchmarks) == 0 {
		return fmt.Errorf("no benchmarks")
	}
	for _, b := range f.Benchmarks {
		if b.Name == "" {
			return fmt.Errorf("benchmark with empty name")
		}
		if b.Metrics["ns/op"] <= 0 {
			return fmt.Errorf("%s: missing ns/op", b.Name)
		}
	}
	return nil
}
