package main

import (
	"strings"
	"testing"
)

func bm(name string, allocs, instrs float64) Benchmark {
	m := map[string]float64{"ns/op": 1e6}
	if allocs >= 0 {
		m["allocs/op"] = allocs
	}
	if instrs > 0 {
		m["instr/s"] = instrs
	}
	return Benchmark{Name: name, Iterations: 1, Metrics: m}
}

func TestCompareBenchPasses(t *testing.T) {
	base := []Benchmark{bm("A", 100, 1e6), bm("B", 50, 2e6)}
	cur := []Benchmark{
		bm("A", 110, 0.9e6), // +10% allocs, slightly slower: within bounds
		bm("B", 50, 3e6),    // faster is always fine
		bm("C", 9999, 1),    // new benchmark: not gated
	}
	if err := compareBench(cur, base, 0.25, 0.30); err != nil {
		t.Errorf("compareBench = %v, want nil", err)
	}
}

func TestCompareBenchCatchesAllocGrowth(t *testing.T) {
	base := []Benchmark{bm("A", 100, 1e6)}
	cur := []Benchmark{bm("A", 200, 1e6)}
	err := compareBench(cur, base, 0.25, 0.30)
	if err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Errorf("compareBench = %v, want allocs/op regression", err)
	}
}

func TestCompareBenchCatchesSpeedCollapse(t *testing.T) {
	base := []Benchmark{bm("A", 100, 10e6)}
	cur := []Benchmark{bm("A", 100, 1e6)} // 10% of baseline speed
	err := compareBench(cur, base, 0.25, 0.30)
	if err == nil || !strings.Contains(err.Error(), "instr/s") {
		t.Errorf("compareBench = %v, want instr/s regression", err)
	}
}

func TestCompareBenchCatchesMissingBenchmark(t *testing.T) {
	base := []Benchmark{bm("A", 100, 1e6), bm("Gone", 10, 1e6)}
	cur := []Benchmark{bm("A", 100, 1e6)}
	err := compareBench(cur, base, 0.25, 0.30)
	if err == nil || !strings.Contains(err.Error(), "Gone") {
		t.Errorf("compareBench = %v, want missing-benchmark failure", err)
	}
}

func TestCompareBenchSkipsMetriclessSides(t *testing.T) {
	// Benchmarks without instr/s (figure sweeps) or allocs/op are only
	// gated on the metrics both sides report.
	base := []Benchmark{bm("Fig", -1, 0)}
	cur := []Benchmark{bm("Fig", -1, 0)}
	if err := compareBench(cur, base, 0.25, 0.30); err != nil {
		t.Errorf("compareBench = %v, want nil", err)
	}
}
