package main

import (
	"context"

	"os"
	"path/filepath"
	"testing"
)

func TestListExperiments(t *testing.T) {
	if err := run(context.Background(), []string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunOneFigure(t *testing.T) {
	if err := run(context.Background(), []string{"-fig", "fig10", "-instructions", "20000"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFigureCSVAndOut(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), []string{"-fig", "fig5", "-instructions", "15000", "-csv", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "fig5.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b) == 0 {
		t.Fatal("empty CSV written")
	}
}

func TestUnknownFigure(t *testing.T) {
	if err := run(context.Background(), []string{"-fig", "fig99"}); err == nil {
		t.Error("unknown figure should fail")
	}
}

func TestRunFigurePlotMode(t *testing.T) {
	if err := run(context.Background(), []string{"-fig", "fig10", "-instructions", "15000", "-plot"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFigureSVGOutput(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), []string{"-fig", "fig10", "-instructions", "15000", "-svg", dir}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "fig10.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b) == 0 {
		t.Fatal("empty SVG written")
	}
}

func TestRunMultiSeed(t *testing.T) {
	if err := run(context.Background(), []string{"-fig", "fig10", "-instructions", "10000", "-seeds", "1,2"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-fig", "fig10", "-seeds", "1,x"}); err == nil {
		t.Error("bad seed list should fail")
	}
}
