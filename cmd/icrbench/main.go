// Command icrbench regenerates the paper's evaluation: one experiment per
// table/figure of §5, printed as aligned tables (or CSV) on stdout.
//
// Simulations fan out across a worker pool (-parallel) with memoization of
// repeated sweep points; emitted rows are byte-identical at any worker
// count. With -store the memo cache is layered over a persistent on-disk
// result store, so a re-run (or the icrd daemon pointed at the same
// directory) serves finished sweep points without re-simulating. Ctrl-C
// cancels in-flight simulations promptly.
//
// Examples:
//
//	icrbench -list
//	icrbench -fig fig9
//	icrbench -fig all -instructions 2000000 -parallel 8 -progress
//	icrbench -fig fig14 -csv
//	icrbench -fig all -out results/ -store ~/.cache/icr
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cliflag"
	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "icrbench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("icrbench", flag.ContinueOnError)
	var sim cliflag.Sim
	sim.Register(fs)
	sim.RegisterCache(fs)
	var (
		fig         = fs.String("fig", "all", `experiment id ("fig1".."fig17", "faultmodels", "sensitivity", "victims") or "all"`)
		csv         = fs.Bool("csv", false, "emit CSV instead of text tables")
		plot        = fs.Bool("plot", false, "render ASCII bar charts instead of tables")
		seeds       = fs.String("seeds", "", "comma-separated seeds to average over (overrides -seed)")
		out         = fs.String("out", "", "directory to also write per-experiment CSV files into")
		svg         = fs.String("svg", "", "directory to also write per-experiment SVG figures into")
		list        = fs.Bool("list", false, "list experiment ids and exit")
		progress    = fs.Bool("progress", false, "print a live progress line to stderr")
		showVersion = cliflag.RegisterVersion(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		fmt.Println(cliflag.Version("icrbench"))
		return nil
	}
	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return nil
	}

	ids := experiments.IDs()
	if *fig != "all" {
		ids = strings.Split(*fig, ",")
		for i, id := range ids {
			ids[i] = strings.TrimSpace(id)
		}
	}
	seedList, err := cliflag.Seeds(*seeds)
	if err != nil {
		return err
	}
	prog := metrics.NewProgress()
	eng, _, err := sim.NewRunner(prog)
	if err != nil {
		return err
	}
	opts := experiments.Options{
		Instructions: sim.Instructions,
		Seed:         sim.Seed,
		Runner:       eng,
	}
	if opts.Sample, err = sim.SampleConfig(); err != nil {
		return err
	}
	if *progress {
		stopProgress := startProgressLine(prog)
		defer stopProgress()
	}
	for _, id := range ids {
		if !experiments.Valid(id) {
			return fmt.Errorf("unknown experiment %q (icrbench -list prints the ids)", id)
		}
		start := time.Now()
		before := prog.Snapshot()
		res, err := experiments.MultiSeed(ctx, id, opts, seedList)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		after := prog.Snapshot()
		switch {
		case *csv:
			fmt.Printf("# %s — %s\n%s\n", res.ID, res.Title, res.CSV())
		case *plot:
			fmt.Printf("%s\n", res.Chart())
		default:
			fmt.Printf("%s  [%.1fs, %d sims, %d memoized, %d disk]\n\n",
				res.Table(), time.Since(start).Seconds(),
				after.Completed-before.Completed,
				after.MemoHits-before.MemoHits,
				after.DiskHits-before.DiskHits)
		}
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*out, res.ID+".csv")
			if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
				return fmt.Errorf("writing %s: %w", path, err)
			}
		}
		if *svg != "" {
			if err := os.MkdirAll(*svg, 0o755); err != nil {
				return err
			}
			figure, err := res.SVG()
			if err != nil {
				return fmt.Errorf("rendering %s: %w", res.ID, err)
			}
			path := filepath.Join(*svg, res.ID+".svg")
			if err := os.WriteFile(path, []byte(figure), 0o644); err != nil {
				return fmt.Errorf("writing %s: %w", path, err)
			}
		}
	}
	return nil
}

// startProgressLine spawns a goroutine refreshing a one-line status on
// stderr twice a second; the returned func stops it and prints a final
// snapshot.
func startProgressLine(prog *metrics.Progress) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ticker := time.NewTicker(500 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				fmt.Fprintf(os.Stderr, "\r%s\n", prog.Snapshot())
				return
			case <-ticker.C:
				fmt.Fprintf(os.Stderr, "\r%s", prog.Snapshot())
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
