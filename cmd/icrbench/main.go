// Command icrbench regenerates the paper's evaluation: one experiment per
// table/figure of §5, printed as aligned tables (or CSV) on stdout.
//
// Simulations fan out across a worker pool (-parallel) with memoization of
// repeated sweep points; emitted rows are byte-identical at any worker
// count. Ctrl-C cancels in-flight simulations promptly.
//
// Examples:
//
//	icrbench -list
//	icrbench -fig fig9
//	icrbench -fig all -instructions 2000000 -parallel 8 -progress
//	icrbench -fig fig14 -csv
//	icrbench -fig all -out results/
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/runner"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "icrbench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("icrbench", flag.ContinueOnError)
	var (
		fig          = fs.String("fig", "all", `experiment id ("fig1".."fig17", "faultmodels", "sensitivity", "victims") or "all"`)
		instructions = fs.Uint64("instructions", config.DefaultInstructions, "committed instructions per simulation")
		seed         = fs.Int64("seed", 1, "workload seed")
		csv          = fs.Bool("csv", false, "emit CSV instead of text tables")
		plot         = fs.Bool("plot", false, "render ASCII bar charts instead of tables")
		seeds        = fs.String("seeds", "", "comma-separated seeds to average over (overrides -seed)")
		out          = fs.String("out", "", "directory to also write per-experiment CSV files into")
		svg          = fs.String("svg", "", "directory to also write per-experiment SVG figures into")
		list         = fs.Bool("list", false, "list experiment ids and exit")
		parallel     = fs.Int("parallel", runtime.NumCPU(), "concurrent simulations (1 = serial; results identical either way)")
		nocache      = fs.Bool("nocache", false, "disable memoization of repeated sweep points")
		timeout      = fs.Duration("timeout", 0, "per-simulation timeout (0 = none)")
		progress     = fs.Bool("progress", false, "print a live progress line to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return nil
	}

	ids := experiments.IDs()
	if *fig != "all" {
		ids = strings.Split(*fig, ",")
	}
	prog := metrics.NewProgress()
	cacheSize := 0
	if *nocache {
		cacheSize = -1
	}
	eng := runner.New(runner.Options{
		Workers:   *parallel,
		CacheSize: cacheSize,
		Timeout:   *timeout,
		Progress:  prog,
	})
	opts := experiments.Options{
		Instructions: *instructions,
		Seed:         *seed,
		Runner:       eng,
		Context:      ctx,
	}
	var seedList []int64
	if *seeds != "" {
		for _, part := range strings.Split(*seeds, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				return fmt.Errorf("bad seed %q: %w", part, err)
			}
			seedList = append(seedList, v)
		}
	}
	if *progress {
		stopProgress := startProgressLine(prog)
		defer stopProgress()
	}
	for _, id := range ids {
		expRunner, err := experiments.ByID(strings.TrimSpace(id))
		if err != nil {
			return err
		}
		start := time.Now()
		before := prog.Snapshot()
		res, err := experiments.MultiSeed(expRunner, opts, seedList)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		after := prog.Snapshot()
		switch {
		case *csv:
			fmt.Printf("# %s — %s\n%s\n", res.ID, res.Title, res.CSV())
		case *plot:
			fmt.Printf("%s\n", res.Chart())
		default:
			fmt.Printf("%s  [%.1fs, %d sims, %d memoized]\n\n",
				res.Table(), time.Since(start).Seconds(),
				after.Completed-before.Completed, after.MemoHits-before.MemoHits)
		}
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*out, res.ID+".csv")
			if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
				return fmt.Errorf("writing %s: %w", path, err)
			}
		}
		if *svg != "" {
			if err := os.MkdirAll(*svg, 0o755); err != nil {
				return err
			}
			figure, err := res.SVG()
			if err != nil {
				return fmt.Errorf("rendering %s: %w", res.ID, err)
			}
			path := filepath.Join(*svg, res.ID+".svg")
			if err := os.WriteFile(path, []byte(figure), 0o644); err != nil {
				return fmt.Errorf("writing %s: %w", path, err)
			}
		}
	}
	return nil
}

// startProgressLine spawns a goroutine refreshing a one-line status on
// stderr twice a second; the returned func stops it and prints a final
// snapshot.
func startProgressLine(prog *metrics.Progress) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ticker := time.NewTicker(500 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				fmt.Fprintf(os.Stderr, "\r%s\n", prog.Snapshot())
				return
			case <-ticker.C:
				fmt.Fprintf(os.Stderr, "\r%s", prog.Snapshot())
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
