// Command icrbench regenerates the paper's evaluation: one experiment per
// table/figure of §5, printed as aligned tables (or CSV) on stdout.
//
// Examples:
//
//	icrbench -list
//	icrbench -fig fig9
//	icrbench -fig all -instructions 2000000
//	icrbench -fig fig14 -csv
//	icrbench -fig all -out results/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "icrbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("icrbench", flag.ContinueOnError)
	var (
		fig          = fs.String("fig", "all", `experiment id ("fig1".."fig17", "faultmodels", "sensitivity", "victims") or "all"`)
		instructions = fs.Uint64("instructions", config.DefaultInstructions, "committed instructions per simulation")
		seed         = fs.Int64("seed", 1, "workload seed")
		csv          = fs.Bool("csv", false, "emit CSV instead of text tables")
		plot         = fs.Bool("plot", false, "render ASCII bar charts instead of tables")
		seeds        = fs.String("seeds", "", "comma-separated seeds to average over (overrides -seed)")
		out          = fs.String("out", "", "directory to also write per-experiment CSV files into")
		svg          = fs.String("svg", "", "directory to also write per-experiment SVG figures into")
		list         = fs.Bool("list", false, "list experiment ids and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return nil
	}

	ids := experiments.IDs()
	if *fig != "all" {
		ids = strings.Split(*fig, ",")
	}
	opts := experiments.Options{Instructions: *instructions, Seed: *seed}
	var seedList []int64
	if *seeds != "" {
		for _, part := range strings.Split(*seeds, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
			if err != nil {
				return fmt.Errorf("bad seed %q: %w", part, err)
			}
			seedList = append(seedList, v)
		}
	}
	for _, id := range ids {
		runner, err := experiments.ByID(strings.TrimSpace(id))
		if err != nil {
			return err
		}
		start := time.Now()
		res, err := experiments.MultiSeed(runner, opts, seedList)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		switch {
		case *csv:
			fmt.Printf("# %s — %s\n%s\n", res.ID, res.Title, res.CSV())
		case *plot:
			fmt.Printf("%s\n", res.Chart())
		default:
			fmt.Printf("%s  [%.1fs]\n\n", res.Table(), time.Since(start).Seconds())
		}
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*out, res.ID+".csv")
			if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
				return fmt.Errorf("writing %s: %w", path, err)
			}
		}
		if *svg != "" {
			if err := os.MkdirAll(*svg, 0o755); err != nil {
				return err
			}
			figure, err := res.SVG()
			if err != nil {
				return fmt.Errorf("rendering %s: %w", res.ID, err)
			}
			path := filepath.Join(*svg, res.ID+".svg")
			if err := os.WriteFile(path, []byte(figure), 0o644); err != nil {
				return fmt.Errorf("writing %s: %w", path, err)
			}
		}
	}
	return nil
}
