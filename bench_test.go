package repro

// One benchmark per table/figure of the paper's evaluation (§5), plus
// micro-benchmarks for the core data structures. Each figure bench runs
// the corresponding experiment driver end to end on a reduced instruction
// budget and reports the headline number the paper plots, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation in miniature; use cmd/icrbench for
// full-budget runs.

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchInstructions keeps a full figure regeneration tractable inside a
// testing.B iteration.
const benchInstructions = 100_000

func runFigure(b *testing.B, id string, metric func(*experiments.Result) float64, unit string) {
	b.Helper()
	if !experiments.Valid(id) {
		b.Fatalf("unknown experiment %q", id)
	}
	opts := experiments.Options{Instructions: benchInstructions, Seed: 1}
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(context.Background(), id, opts)
		if err != nil {
			b.Fatal(err)
		}
		last = metric(res)
	}
	b.ReportMetric(last, unit)
}

// geomeanOfSeries returns the last value (the appended geomean column) of
// series i.
func geomeanOfSeries(i int) func(*experiments.Result) float64 {
	return func(r *experiments.Result) float64 {
		s := r.Series[i].Values
		return s[len(s)-1]
	}
}

// meanOfSeries averages series i across the x-axis.
func meanOfSeries(i int) func(*experiments.Result) float64 {
	return func(r *experiments.Result) float64 {
		s := r.Series[i].Values
		var sum float64
		for _, v := range s {
			sum += v
		}
		return sum / float64(len(s))
	}
}

func BenchmarkFig01ReplicationAbilityAttempts(b *testing.B) {
	runFigure(b, "fig1", meanOfSeries(1), "mean-repl-ability")
}

func BenchmarkFig02LoadsWithReplicaAttempts(b *testing.B) {
	runFigure(b, "fig2", meanOfSeries(1), "mean-loads-with-replica")
}

func BenchmarkFig03TwoReplicaAbility(b *testing.B) {
	runFigure(b, "fig3", meanOfSeries(2), "mean-double-ability")
}

func BenchmarkFig04MissRateTwoReplicas(b *testing.B) {
	runFigure(b, "fig4", meanOfSeries(2), "mean-miss-rate")
}

func BenchmarkFig05VerticalVsHorizontal(b *testing.B) {
	runFigure(b, "fig5", meanOfSeries(1), "mean-loads-with-replica")
}

func BenchmarkFig06ReplicationAbilityLSvsS(b *testing.B) {
	runFigure(b, "fig6", meanOfSeries(0), "mean-LS-repl-ability")
}

func BenchmarkFig07LoadsWithReplicaLSvsS(b *testing.B) {
	runFigure(b, "fig7", meanOfSeries(0), "mean-LS-loads-with-replica")
}

func BenchmarkFig08MissRates(b *testing.B) {
	runFigure(b, "fig8", meanOfSeries(1), "mean-LS-miss-rate")
}

func BenchmarkFig09NormalizedCyclesAggressive(b *testing.B) {
	// Series 1 is BaseECC; its geomean column is the paper's "~30%".
	runFigure(b, "fig9", geomeanOfSeries(1), "baseecc-norm-cycles")
}

func BenchmarkFig10DecayWindowReplication(b *testing.B) {
	runFigure(b, "fig10", meanOfSeries(1), "mean-loads-with-replica")
}

func BenchmarkFig11DecayWindowCycles(b *testing.B) {
	runFigure(b, "fig11", meanOfSeries(0), "icr-p-ps-norm-cycles")
}

func BenchmarkFig12NormalizedCyclesRelaxed(b *testing.B) {
	runFigure(b, "fig12", geomeanOfSeries(1), "baseecc-norm-cycles")
}

func BenchmarkFig13WindowReplicationAllBench(b *testing.B) {
	runFigure(b, "fig13", meanOfSeries(3), "mean-loads-with-replica-w1000")
}

func BenchmarkFig14UnrecoverableLoads(b *testing.B) {
	// Series 0 is BaseP at the highest injection rate.
	runFigure(b, "fig14", func(r *experiments.Result) float64 {
		return r.Series[0].Values[0]
	}, "basep-unrecoverable-frac")
}

func BenchmarkFig15LeaveReplicas(b *testing.B) {
	runFigure(b, "fig15", geomeanOfSeries(2), "icr-p-ps-norm-cycles")
}

func BenchmarkFig16WriteThrough(b *testing.B) {
	runFigure(b, "fig16", geomeanOfSeries(1), "wt-energy-ratio")
}

func BenchmarkFig17SpeculativeECC(b *testing.B) {
	runFigure(b, "fig17", geomeanOfSeries(0), "spec-ecc-cycle-ratio")
}

func BenchmarkFaultModels(b *testing.B) {
	runFigure(b, "faultmodels", meanOfSeries(0), "basep-unrecoverable-frac")
}

func BenchmarkSensitivity(b *testing.B) {
	runFigure(b, "sensitivity", meanOfSeries(1), "mean-loads-with-replica")
}

func BenchmarkVictimPolicyAblation(b *testing.B) {
	runFigure(b, "victims", meanOfSeries(0), "deadonly-loads-with-replica")
}

func BenchmarkSoftwareHints(b *testing.B) {
	runFigure(b, "swhints", meanOfSeries(1), "hinted-miss-rate")
}

func BenchmarkRCacheBaseline(b *testing.B) {
	runFigure(b, "rcache", meanOfSeries(1), "rcache-loads-covered")
}

func BenchmarkScrubbing(b *testing.B) {
	runFigure(b, "scrub", func(r *experiments.Result) float64 {
		v := r.Series[0].Values
		return v[len(v)-1] // BaseP at the fastest scrub interval
	}, "basep-unrecoverable-frac")
}

func BenchmarkVulnerability(b *testing.B) {
	runFigure(b, "vulnerability", meanOfSeries(0), "basep-vuln-fraction")
}

func BenchmarkMTTFProjection(b *testing.B) {
	runFigure(b, "mttf", meanOfSeries(0), "basep-loss-FIT")
}

func BenchmarkDecayPredictors(b *testing.B) {
	runFigure(b, "decaypred", meanOfSeries(4), "adaptive-loads-with-replica")
}

func BenchmarkPrefetchAblation(b *testing.B) {
	runFigure(b, "prefetch", geomeanOfSeries(1), "basep-prefetch-norm-cycles")
}

func BenchmarkAdaptiveShootout(b *testing.B) {
	runFigure(b, "adaptive", meanOfSeries(10), "adapt-decay-score")
}

func BenchmarkTwoTierShootout(b *testing.B) {
	runFigure(b, "twotier", meanOfSeries(2), "icr-l1-twotier-score")
}

// ---------------------------------------------------------------------------
// Micro-benchmarks
// ---------------------------------------------------------------------------

func BenchmarkSECDEDEncode(b *testing.B) {
	var acc uint8
	for i := 0; i < b.N; i++ {
		acc ^= ecc.EncodeSECDED(uint64(i) * 0x9e3779b97f4a7c15)
	}
	_ = acc
}

func BenchmarkSECDEDCheckCorrect(b *testing.B) {
	word := uint64(0xdeadbeefcafebabe)
	check := ecc.EncodeSECDED(word)
	flipped := word ^ (1 << 17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, r := ecc.CheckSECDED(flipped, check); r != ecc.CorrectedSingle {
			b.Fatal("unexpected result")
		}
	}
}

func BenchmarkParityLine(b *testing.B) {
	data := make([]byte, 64)
	parity := make([]byte, ecc.ParityBytesPerLine(64))
	for i := range data {
		data[i] = byte(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ecc.EncodeParityLine(data, parity)
	}
}

func BenchmarkICRCacheLoadHit(b *testing.B) {
	mem := cache.NewMemory(6, 64)
	c := core.New(core.Config{
		Size: 16 << 10, Assoc: 4, BlockSize: 64,
		Scheme: core.ICR(core.ParityProt, core.LookupSerial, core.ReplStores),
		Next:   mem, Mem: mem,
	})
	c.Store(0, 0x1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Load(uint64(i), 0x1000)
	}
}

func BenchmarkICRCacheStoreReplicate(b *testing.B) {
	mem := cache.NewMemory(6, 64)
	c := core.New(core.Config{
		Size: 16 << 10, Assoc: 4, BlockSize: 64,
		Scheme: core.ICR(core.ParityProt, core.LookupSerial, core.ReplStores),
		Next:   mem, Mem: mem,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Store(uint64(i), uint64(i%256)*64)
	}
}

func BenchmarkWorkloadGeneration(b *testing.B) {
	g := workload.MustNew(workload.Gcc(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Next(); !ok {
			b.Fatal("stream ended")
		}
	}
}

func BenchmarkTraceRoundTrip(b *testing.B) {
	g := workload.MustNew(workload.Vpr(), 1)
	insts := make([]isa.Inst, 1000)
	for i := range insts {
		insts[i], _ = g.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w, err := trace.NewWriter(&buf)
		if err != nil {
			b.Fatal(err)
		}
		for _, in := range insts {
			if err := w.Write(in); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		r, err := trace.NewReader(&buf)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			if _, ok := r.Next(); !ok {
				break
			}
			n++
		}
		if n != len(insts) {
			b.Fatalf("round trip lost records: %d", n)
		}
	}
}

func BenchmarkEndToEndSimulation(b *testing.B) {
	// Whole-machine simulation throughput (instructions/op ≈ 50k).
	r := config.NewRun("gzip", core.ICR(core.ParityProt, core.LookupSerial, core.ReplStores))
	r.Instructions = 50_000
	// Untimed steady-state warm-up: populates the sim instance pool and
	// the memory's lazy block store so allocs/op is benchtime-independent.
	if _, err := sim.Simulate(config.Default(), r); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Simulate(config.Default(), r); err != nil {
			b.Fatal(err)
		}
	}
}
