// Package tier implements the protected second tier of two-tier ICR: a
// set-associative array standing where the plain timing L2 stands, but
// carrying real data bytes and real parity/SEC-DED check bits
// (internal/ecc), its own dead-block decay and in-tier replica placement,
// its own fault injection, and an extra-latency knob that turns it into a
// remote/CXL tier. It implements cache.Level, so the simulator wires it
// in place of the plain L2 without touching the L1, and core.ReplicaSink,
// so the ICR L1 and the tier can park replicas in each other's dead space
// (cross-tier placement).
//
// Content model: block bytes are held architecturally by cache.Memory,
// and every Write reaching this tier happens after Memory was updated
// (the L1 write-back and write-through paths both update Memory first).
// The tier therefore refreshes line content from Memory on write hits and
// fills, and its write-backs to memory are timing-only — corrupted tier
// data is never written into the architectural store, it is *counted*
// (SilentWritebacks) as the propagation a real system would have
// suffered.
package tier

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/energy"
	"repro/internal/fault"
)

// Config describes the protected tier.
type Config struct {
	// Geometry (the machine's L2 by default).
	Size, Assoc, BlockSize int

	// HitLatency is the base access latency; ExtraLatency is added to
	// every access (0 for an on-chip L2, larger to model a remote/CXL
	// tier). Cross-tier repairs from this tier also pay both.
	HitLatency   uint64
	ExtraLatency uint64

	// ECCCheckLatency is the extra latency of a SEC-DED verification on
	// the read path (defaults to 1, as in the L1).
	ECCCheckLatency uint64

	// PortOccupancy models a single bank/port exactly like cache.Config.
	PortOccupancy uint64

	// Protect selects the baseline protection of tier lines.
	Protect core.Protection

	// Replicate enables in-tier ICR: fills replicate into dead/invalid
	// ways at distance sets/2.
	Replicate bool

	// Victim is the replica-placement policy (defaults to DeadOnly).
	Victim core.VictimPolicy

	// DecayWindow is the dead-block decay window in cycles (0 = dead as
	// soon as the access completes).
	DecayWindow uint64

	// Next is the level below (memory).
	Next cache.Level

	// Mem holds architectural block content.
	Mem *cache.Memory

	// Meter, if non-nil, accumulates the tier's extra array traffic
	// (replica installs, repair reads) and check computations. Demand
	// accesses are priced post-run from CacheStats, exactly like the
	// plain L2.
	Meter *energy.Meter
}

// Stats counts the tier's reliability and replication events. The demand
// access counters live in the cache.Stats returned by CacheStats, so the
// simulator's L2 accounting is unchanged.
type Stats struct {
	ReplAttempts     uint64
	ReplSuccesses    uint64
	ReplicaEvictions uint64
	DeadEvictions    uint64

	ErrorsDetected     uint64
	RecoveredByReplica uint64
	RecoveredByECC     uint64
	RecoveredByCross   uint64 // repaired from a copy parked in the L1
	RecoveredByMem     uint64 // clean line refetched from memory
	UnrecoverableDirty uint64 // detected, uncorrectable, and dirty
	SilentWritebacks   uint64

	InjectedFlips       uint64
	InjectedIntoInvalid uint64

	// Cross is the tier's view of cross-tier traffic (client side:
	// offers to and repairs from the L1; host side: guests parked here).
	Cross core.CrossStats
}

// tline is one physical tier line.
type tline struct {
	valid   bool
	replica bool
	// guest marks a line hosted on behalf of the L1 (cross-tier): only
	// guests serve the L1's repairs or are dropped by its stores.
	guest bool
	// spilled marks a primary with a copy parked in the L1; rewriting it
	// must notify the L1 to drop the now-stale copy.
	spilled   bool
	dirty     bool
	blockAddr uint64
	lastTick  uint64
	lru       uint64

	data   []byte
	parity []byte
	eccb   []byte

	// idx is the line's fixed position in Protected.lines (set once at
	// New), so fault targeting never needs a search.
	idx int
}

// Protected is the protected tier array.
//
//icrvet:pooled
type Protected struct {
	cfg          Config           //icrvet:persistent construction input: the pool shape fingerprints the tier config wholesale
	sets         int              //icrvet:persistent geometry: derived from cfg at construction
	offsetBits   uint             //icrvet:persistent geometry: derived from cfg at construction
	indexMask    uint64           //icrvet:persistent geometry: derived from cfg at construction
	wordsPerLine int              //icrvet:persistent geometry: derived from cfg at construction
	tickPeriod   uint64           //icrvet:persistent decay tick length derived from cfg.DecayWindow at construction
	replDist     int              //icrvet:persistent replica placement distance (sets/2), derived at construction
	cross        core.ReplicaSink //icrvet:persistent hierarchy wiring: set once by SetCross, stable across pooled reuse

	lines    []tline
	clock    uint64
	portBusy uint64
	lastWord int
	stats    cache.Stats
	tstats   Stats
	crossBuf [8]byte
}

var (
	_ cache.Level      = (*Protected)(nil)
	_ core.ReplicaSink = (*Protected)(nil)
)

// New builds a protected tier. It panics on invalid geometry (programming
// error, as in cache.New).
func New(cfg Config) *Protected {
	if cfg.Size <= 0 || cfg.Assoc <= 0 || cfg.BlockSize <= 0 {
		panic("tier: size, assoc, and block size must be positive")
	}
	if cfg.BlockSize&(cfg.BlockSize-1) != 0 || cfg.BlockSize%8 != 0 {
		panic("tier: block size must be a power of two and a multiple of 8")
	}
	if cfg.Size%(cfg.Assoc*cfg.BlockSize) != 0 {
		panic("tier: size must be a multiple of assoc*blockSize")
	}
	sets := cfg.Size / (cfg.Assoc * cfg.BlockSize)
	if sets&(sets-1) != 0 {
		panic("tier: set count must be a power of two")
	}
	if cfg.Next == nil || cfg.Mem == nil {
		panic("tier: Next level and Mem are required")
	}
	if cfg.Protect == 0 {
		panic("tier: a protection (parity or ECC) is required")
	}
	if cfg.HitLatency == 0 {
		cfg.HitLatency = 1
	}
	if cfg.ECCCheckLatency == 0 {
		cfg.ECCCheckLatency = 1
	}
	if cfg.Replicate && cfg.Victim == 0 {
		cfg.Victim = core.DeadOnly
	}
	offsetBits := uint(0)
	for 1<<offsetBits < cfg.BlockSize {
		offsetBits++
	}
	t := &Protected{
		cfg:          cfg,
		sets:         sets,
		offsetBits:   offsetBits,
		indexMask:    uint64(sets) - 1,
		wordsPerLine: cfg.BlockSize / 8,
		replDist:     sets / 2,
		lines:        make([]tline, sets*cfg.Assoc),
		lastWord:     -1,
	}
	if cfg.DecayWindow > 0 {
		t.tickPeriod = cfg.DecayWindow / 4
		if t.tickPeriod == 0 {
			t.tickPeriod = 1
		}
	}
	parityLen := ecc.ParityBytesPerLine(cfg.BlockSize)
	eccLen := 0
	if cfg.Protect == core.ECCProt {
		eccLen = ecc.SECDEDBytesPerLine(cfg.BlockSize)
	}
	for i := range t.lines {
		t.lines[i].idx = i
		t.lines[i].data = make([]byte, cfg.BlockSize)
		t.lines[i].parity = make([]byte, parityLen)
		if eccLen > 0 {
			t.lines[i].eccb = make([]byte, eccLen)
		}
	}
	return t
}

// SetCross attaches the far tier that may host this tier's replicas (the
// ICR L1). Wiring is circular — the L1's config points back here — so it
// cannot be a construction parameter.
func (t *Protected) SetCross(sink core.ReplicaSink) { t.cross = sink }

// CacheStats returns the tier's demand-access counters in the same shape
// the plain timing L2 reports, so L2 accounting and energy pricing are
// unchanged.
func (t *Protected) CacheStats() cache.Stats { return t.stats }

// TierStats returns the tier's reliability and replication counters.
func (t *Protected) TierStats() Stats { return t.tstats }

// Sets returns the number of sets.
func (t *Protected) Sets() int { return t.sets }

func (t *Protected) blockAddr(addr uint64) uint64 { return addr >> t.offsetBits }
func (t *Protected) homeSet(ba uint64) int        { return int(ba & t.indexMask) }

func (t *Protected) tick(now uint64) uint64 {
	if t.tickPeriod == 0 {
		return 0
	}
	return now / t.tickPeriod
}

// dead reports whether the line is predicted dead at cycle now (fixed
// window; a zero window pronounces a line dead as soon as its access
// completes, the paper's most aggressive setting).
func (t *Protected) dead(ln *tline, now uint64) bool {
	if t.tickPeriod == 0 {
		return true
	}
	return t.tick(now)-ln.lastTick >= 4
}

func (t *Protected) touch(ln *tline, now uint64) {
	t.clock++
	ln.lru = t.clock
	ln.lastTick = t.tick(now)
}

// lookup finds the primary copy of a block in its home set. Replicas and
// guests never serve demand accesses directly.
func (t *Protected) lookup(ba uint64) *tline {
	base := t.homeSet(ba) * t.cfg.Assoc
	for w := 0; w < t.cfg.Assoc; w++ {
		ln := &t.lines[base+w]
		if ln.valid && !ln.replica && ln.blockAddr == ba {
			return ln
		}
	}
	return nil
}

func (t *Protected) recode(ln *tline) {
	ecc.EncodeParityLine(ln.data, ln.parity)
	if ln.eccb != nil {
		ecc.EncodeSECDEDLine(ln.data, ln.eccb)
	}
}

func (t *Protected) recodeWord(ln *tline, off int) {
	w := off &^ 7
	ln.parity[w/8] = ecc.EncodeParity64(ecc.Word64(ln.data, w))
	if ln.eccb != nil {
		ln.eccb[w/8] = ecc.EncodeSECDED(ecc.Word64(ln.data, w))
	}
}

// Access implements cache.Level.
func (t *Protected) Access(now uint64, addr uint64, kind cache.Kind) uint64 {
	ba := t.blockAddr(addr)
	t.clock++

	switch kind {
	case cache.Read:
		t.stats.Reads++
	case cache.Write:
		t.stats.Writes++
	case cache.Fetch:
		t.stats.Fetches++
	}

	// Port contention, exactly as in cache.Cache.
	var portDelay uint64
	if t.cfg.PortOccupancy > 0 {
		if t.portBusy > now {
			portDelay = t.portBusy - now
			t.stats.PortStallCycles += portDelay
		}
		t.portBusy = now + portDelay + t.cfg.PortOccupancy
		now += portDelay
	}

	if ln := t.lookup(ba); ln != nil {
		off := int(addr) & (t.cfg.BlockSize - 1)
		t.lastWord = ln.idx*t.wordsPerLine + off/8
		var extra uint64
		if kind == cache.Write {
			t.refreshFromMem(ln, now)
		} else {
			extra = t.verifyRead(now, ln, off)
		}
		t.touch(ln, now)
		return portDelay + t.cfg.HitLatency + t.cfg.ExtraLatency + extra
	}

	// Miss: count, fetch from memory, allocate (write-allocate, mirroring
	// the plain L2's timing shape).
	switch kind {
	case cache.Read:
		t.stats.ReadMisses++
	case cache.Write:
		t.stats.WriteMisses++
	case cache.Fetch:
		t.stats.FetchMisses++
	}
	lat := t.cfg.HitLatency + t.cfg.ExtraLatency +
		t.cfg.Next.Access(now+t.cfg.HitLatency, addr, cache.Read)
	v := t.evictFor(t.homeSet(ba), now)
	t.fill(v, ba, now)
	if kind == cache.Write {
		v.dirty = true
	}
	t.lastWord = v.idx*t.wordsPerLine + (int(addr)&(t.cfg.BlockSize-1))/8
	if t.cfg.Replicate {
		t.tstats.ReplAttempts++
		if t.replicate(v, now) {
			t.tstats.ReplSuccesses++
		}
	}
	return portDelay + lat
}

// refreshFromMem re-mirrors a line (and its in-tier replicas) from the
// architectural store after a write reached this tier: Memory was updated
// before the write was forwarded down (the L1 write-back and
// write-through paths both do so), so the architectural content is
// current by construction.
func (t *Protected) refreshFromMem(ln *tline, now uint64) {
	copy(ln.data, t.cfg.Mem.PeekBlock(ln.blockAddr))
	t.recode(ln)
	ln.dirty = true
	if t.cfg.Meter != nil {
		t.cfg.Meter.AddParity(1)
		if ln.eccb != nil {
			t.cfg.Meter.AddECC(1)
		}
	}
	// In-tier replicas are updated in place; a copy parked in the L1 is
	// stale and must be dropped.
	if t.cfg.Replicate {
		base := t.replicaSet(ln.blockAddr) * t.cfg.Assoc
		for w := 0; w < t.cfg.Assoc; w++ {
			rep := &t.lines[base+w]
			if rep.valid && rep.replica && !rep.guest && rep.blockAddr == ln.blockAddr {
				copy(rep.data, ln.data)
				copy(rep.parity, ln.parity)
				if rep.eccb != nil && ln.eccb != nil {
					copy(rep.eccb, ln.eccb)
				}
				t.touch(rep, now)
				if t.cfg.Meter != nil {
					t.cfg.Meter.AddL2Write(1)
				}
			}
		}
	}
	if ln.spilled {
		ln.spilled = false
		if t.cross != nil {
			t.cross.DropReplica(ln.blockAddr)
			t.tstats.Cross.Drops++
		}
	}
}

// verifyRead checks the accessed word of a read hit and recovers from
// detected errors. The ladder mirrors the L1 (§3.2), with memory standing
// in for "the level below": replica → cross-tier copy → ECC → refetch;
// dirty uncorrectable lines are lost data.
func (t *Protected) verifyRead(now uint64, ln *tline, off int) (extra uint64) {
	word := off &^ 7

	rep := t.findReplica(ln.blockAddr)
	useECC := t.cfg.Protect == core.ECCProt && rep == nil
	if t.cfg.Meter != nil {
		if useECC {
			t.cfg.Meter.AddECC(1)
		} else {
			t.cfg.Meter.AddParity(1)
		}
	}

	if useECC {
		return t.cfg.ECCCheckLatency + t.verifyECC(now, ln, word)
	}

	if ecc.CheckParityLineRange(ln.data, ln.parity, word, 8) == ecc.OK {
		return 0
	}
	t.tstats.ErrorsDetected++

	if rep != nil {
		if t.cfg.Meter != nil {
			t.cfg.Meter.AddL2Read(1)
			t.cfg.Meter.AddParity(1)
		}
		if ecc.CheckParityLineRange(rep.data, rep.parity, word, 8) == ecc.OK {
			copy(ln.data[word:word+8], rep.data[word:word+8])
			t.recodeWord(ln, word)
			t.tstats.RecoveredByReplica++
			if t.cfg.Meter != nil {
				t.cfg.Meter.AddL2Write(1)
			}
			return 1
		}
	}

	// A copy parked in the L1 (cross-tier) repairs the word at the L1's
	// probe cost before ECC or a memory refetch.
	if t.cross != nil {
		t.tstats.Cross.Repairs++
		if lat, ok := t.cross.RepairWord(now, ln.blockAddr, word, t.crossBuf[:]); ok {
			copy(ln.data[word:word+8], t.crossBuf[:])
			t.recodeWord(ln, word)
			t.tstats.Cross.Repaired++
			t.tstats.RecoveredByCross++
			return lat
		}
	}

	if t.cfg.Protect == core.ECCProt {
		if t.cfg.Meter != nil {
			t.cfg.Meter.AddECC(1)
		}
		return 1 + t.verifyECC(now, ln, word)
	}
	return 1 + t.refetchFromMem(now, ln)
}

func (t *Protected) verifyECC(now uint64, ln *tline, word int) (extra uint64) {
	switch ecc.CheckSECDEDLineWord(ln.data, ln.eccb, word) {
	case ecc.OK:
		return 0
	case ecc.CorrectedSingle:
		t.tstats.ErrorsDetected++
		t.tstats.RecoveredByECC++
		return 0
	case ecc.DetectedCheckBit:
		t.tstats.ErrorsDetected++
		t.tstats.RecoveredByECC++
		t.recodeWord(ln, word)
		return 0
	default: // DetectedDouble
		t.tstats.ErrorsDetected++
		return t.refetchFromMem(now, ln)
	}
}

// refetchFromMem restores a line from the architectural store after a
// detected-but-uncorrectable error. Clean lines are recoverable at memory
// cost; dirty lines have lost data (the write-back that would eventually
// have propagated them can no longer be trusted).
func (t *Protected) refetchFromMem(now uint64, ln *tline) (extra uint64) {
	if ln.dirty {
		t.tstats.UnrecoverableDirty++
	} else {
		t.tstats.RecoveredByMem++
	}
	extra = t.cfg.Next.Access(now, ln.blockAddr<<t.offsetBits, cache.Read)
	copy(ln.data, t.cfg.Mem.PeekBlock(ln.blockAddr))
	ln.dirty = false
	t.recode(ln)
	if t.cfg.Meter != nil {
		t.cfg.Meter.AddL2Write(1)
	}
	return extra
}

// fill installs block content from the architectural store.
func (t *Protected) fill(ln *tline, ba uint64, now uint64) {
	ln.valid = true
	ln.replica = false
	ln.guest = false
	ln.spilled = false
	ln.dirty = false
	ln.blockAddr = ba
	copy(ln.data, t.cfg.Mem.PeekBlock(ba))
	t.recode(ln)
	t.touch(ln, now)
}

// evictFor frees the LRU way of a set for a new primary. Dirty victims
// follow the buffered-writeback contract documented on cache.Cache: the
// write is counted below and occupies no demand latency, and the content
// is already architecturally current in Memory — but a victim whose
// parity no longer verifies is counted as a silent write-back, the
// propagation a real system would have suffered.
func (t *Protected) evictFor(set int, now uint64) *tline {
	base := set * t.cfg.Assoc
	victim := base
	for w := 0; w < t.cfg.Assoc; w++ {
		ln := &t.lines[base+w]
		if !ln.valid {
			victim = base + w
			break
		}
		if ln.lru < t.lines[victim].lru {
			victim = base + w
		}
	}
	v := &t.lines[victim]
	if v.valid {
		t.evictLine(v, now)
	}
	return v
}

// evictLine invalidates one line, performing the dirty write-back and
// replica/spill bookkeeping.
func (t *Protected) evictLine(v *tline, now uint64) {
	if v.replica {
		t.tstats.ReplicaEvictions++
		v.valid = false
		return
	}
	if v.dirty {
		if ecc.CheckParityLineRange(v.data, v.parity, 0, t.cfg.BlockSize) != ecc.OK {
			t.tstats.SilentWritebacks++
		}
		t.cfg.Next.Access(now, v.blockAddr<<t.offsetBits, cache.Write)
	}
	if t.cfg.Replicate {
		t.invalidateReplicas(v.blockAddr)
	}
	if v.spilled && t.cross != nil {
		t.cross.DropReplica(v.blockAddr)
	}
	v.valid = false
}

func (t *Protected) replicaSet(ba uint64) int {
	s := t.homeSet(ba) + t.replDist
	if s >= t.sets {
		s -= t.sets
	}
	return s
}

// findReplica returns the resident in-tier replica of a block, or nil.
func (t *Protected) findReplica(ba uint64) *tline {
	if !t.cfg.Replicate {
		return nil
	}
	base := t.replicaSet(ba) * t.cfg.Assoc
	for w := 0; w < t.cfg.Assoc; w++ {
		ln := &t.lines[base+w]
		if ln.valid && ln.replica && !ln.guest && ln.blockAddr == ba {
			return ln
		}
	}
	return nil
}

func (t *Protected) invalidateReplicas(ba uint64) {
	base := t.replicaSet(ba) * t.cfg.Assoc
	for w := 0; w < t.cfg.Assoc; w++ {
		ln := &t.lines[base+w]
		if ln.valid && ln.replica && !ln.guest && ln.blockAddr == ba {
			ln.valid = false
			t.tstats.ReplicaEvictions++
		}
	}
}

// replicate tries to place one in-tier replica of a just-filled primary
// at distance sets/2, spilling to the far tier on shortfall when
// cross-tier placement is wired.
func (t *Protected) replicate(primary *tline, now uint64) bool {
	ba := primary.blockAddr
	if t.findReplica(ba) != nil {
		return false
	}
	if v := t.replicaVictim(t.replicaSet(ba), now); v != nil {
		v.valid = true
		v.replica = true
		v.guest = false
		v.spilled = false
		v.dirty = false
		v.blockAddr = ba
		copy(v.data, primary.data)
		copy(v.parity, primary.parity)
		if v.eccb != nil && primary.eccb != nil {
			copy(v.eccb, primary.eccb)
		}
		t.touch(v, now)
		if t.cfg.Meter != nil {
			t.cfg.Meter.AddL2Write(1)
			t.cfg.Meter.AddParity(1)
		}
		return true
	}
	if t.cross != nil {
		t.tstats.Cross.Offers++
		if t.cross.OfferReplica(now, ba, primary.data) {
			t.tstats.Cross.Accepted++
			primary.spilled = true
		}
	}
	return false
}

// replicaVictim picks a way for a new in-tier replica under the
// configured victim policy. Live primaries are never displaced; existing
// replicas and guests are candidates under the replica-consuming
// policies.
func (t *Protected) replicaVictim(set int, now uint64) *tline {
	base := set * t.cfg.Assoc
	var deadLine, replicaLine *tline
	for w := 0; w < t.cfg.Assoc; w++ {
		ln := &t.lines[base+w]
		if !ln.valid {
			return ln
		}
		if !ln.replica && t.dead(ln, now) && (deadLine == nil || ln.lru < deadLine.lru) {
			deadLine = ln
		}
		if ln.replica && (replicaLine == nil || ln.lru < replicaLine.lru) {
			replicaLine = ln
		}
	}
	var v *tline
	switch t.cfg.Victim {
	case core.DeadOnly:
		v = deadLine
	case core.DeadFirst:
		v = deadLine
		if v == nil {
			v = replicaLine
		}
	case core.ReplicaFirst:
		v = replicaLine
		if v == nil {
			v = deadLine
		}
	case core.ReplicaOnly:
		v = replicaLine
	}
	if v == nil {
		return nil
	}
	if v.replica {
		t.tstats.ReplicaEvictions++
		v.valid = false
	} else {
		t.tstats.DeadEvictions++
		t.evictLine(v, now)
	}
	return v
}

// ---------------------------------------------------------------------------
// ReplicaSink (hosting the L1's blocks)
// ---------------------------------------------------------------------------

// OfferReplica implements core.ReplicaSink: the L1 proposes parking a
// copy of one of its blocks in this tier's dead space.
func (t *Protected) OfferReplica(now uint64, blockAddr uint64, data []byte) bool {
	t.tstats.Cross.HostOffers++
	if !t.cfg.Replicate || len(data) != t.cfg.BlockSize {
		return false
	}
	// A resident primary of the same block already mirrors the
	// architectural content; a guest would only duplicate it. (The L1's
	// copy may be dirtier, but the L1 drops guests on store, so a stale
	// guest cannot serve — declining merely loses a repair opportunity.)
	if t.lookup(blockAddr) != nil || t.findGuest(blockAddr) != nil {
		return false
	}
	v := t.hostVictim(t.homeSet(blockAddr), now)
	if v == nil {
		return false
	}
	v.valid = true
	v.replica = true
	v.guest = true
	v.spilled = false
	v.dirty = false
	v.blockAddr = blockAddr
	copy(v.data, data)
	t.recode(v)
	t.touch(v, now)
	if t.cfg.Meter != nil {
		t.cfg.Meter.AddL2Write(1)
		t.cfg.Meter.AddParity(1)
	}
	t.tstats.Cross.HostedLines++
	return true
}

// hostVictim picks a way for a guest: an invalid way first, else the LRU
// dead non-replica line.
func (t *Protected) hostVictim(set int, now uint64) *tline {
	base := set * t.cfg.Assoc
	var deadLine *tline
	for w := 0; w < t.cfg.Assoc; w++ {
		ln := &t.lines[base+w]
		if !ln.valid {
			return ln
		}
		if ln.replica {
			continue
		}
		if t.dead(ln, now) && (deadLine == nil || ln.lru < deadLine.lru) {
			deadLine = ln
		}
	}
	if deadLine == nil {
		return nil
	}
	t.tstats.DeadEvictions++
	t.evictLine(deadLine, now)
	return deadLine
}

func (t *Protected) findGuest(ba uint64) *tline {
	base := t.homeSet(ba) * t.cfg.Assoc
	for w := 0; w < t.cfg.Assoc; w++ {
		ln := &t.lines[base+w]
		if ln.valid && ln.guest && ln.blockAddr == ba {
			return ln
		}
	}
	return nil
}

// RepairWord implements core.ReplicaSink: supply one intact word of a
// guest copy to the L1. The latency is this tier's full reach — hit plus
// extra (remote) latency plus one transfer cycle — which is the paper's
// point about remote repair: it costs a far-tier access, not an L1 probe.
func (t *Protected) RepairWord(_ uint64, blockAddr uint64, off int, dst []byte) (uint64, bool) {
	if off < 0 || off+8 > t.cfg.BlockSize || len(dst) < 8 {
		return 0, false
	}
	ln := t.findGuest(blockAddr)
	if ln == nil {
		return 0, false
	}
	word := off &^ 7
	if ecc.CheckParityLineRange(ln.data, ln.parity, word, 8) != ecc.OK {
		ln.valid = false
		t.tstats.Cross.HostCorrupt++
		return 0, false
	}
	copy(dst[:8], ln.data[word:word+8])
	if t.cfg.Meter != nil {
		t.cfg.Meter.AddL2Read(1)
		t.cfg.Meter.AddParity(1)
	}
	t.tstats.Cross.HostRepairs++
	return t.cfg.HitLatency + t.cfg.ExtraLatency + 1, true
}

// DropReplica implements core.ReplicaSink: the L1 rewrote the block, so
// any guest copy here is stale.
func (t *Protected) DropReplica(blockAddr uint64) {
	if !t.cfg.Replicate {
		return
	}
	if ln := t.findGuest(blockAddr); ln != nil {
		ln.valid = false
		t.tstats.Cross.HostDrops++
	}
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

// WordCount returns the total number of 64-bit words in the data array.
func (t *Protected) WordCount() int { return len(t.lines) * t.wordsPerLine }

// LastAccessedWord returns the array word index of the most recent
// access, or -1.
func (t *Protected) LastAccessedWord() int { return t.lastWord }

// Inject applies one injection event from the given injector, mirroring
// the L1's semantics: flips landing in invalid lines are counted but have
// no architectural effect.
func (t *Protected) Inject(in *fault.Injector) {
	flips := in.Flips(t.WordCount(), t.lastWord)
	for _, f := range flips {
		li := f.Word / t.wordsPerLine
		ln := &t.lines[li]
		if !ln.valid {
			t.tstats.InjectedIntoInvalid++
			continue
		}
		off := (f.Word % t.wordsPerLine) * 8
		ln.data[off+f.Bit/8] ^= 1 << uint(f.Bit%8)
		t.tstats.InjectedFlips++
	}
}

// ---------------------------------------------------------------------------
// Reset (arena reuse)
// ---------------------------------------------------------------------------

// Reset restores the tier to its post-construction state without
// reallocating the per-line payload arrays. Stale payload bytes in
// invalid lines are unreachable: every fill copies the full block and
// recomputes check bits before the line turns valid.
func (t *Protected) Reset() {
	for i := range t.lines {
		l := &t.lines[i]
		data, parity, eccb := l.data, l.parity, l.eccb
		*l = tline{data: data, parity: parity, eccb: eccb, idx: i}
	}
	t.clock = 0
	t.portBusy = 0
	t.lastWord = -1
	t.stats = cache.Stats{}
	t.tstats = Stats{}
	t.crossBuf = [8]byte{}
}
