package tier

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fault"
)

// testTier builds a small protected tier over a shared Memory: 8 sets,
// 2-way, 64-byte blocks (replica distance sets/2 = 4), memory 100 cycles.
func testTier(t *testing.T, mutate func(*Config)) (*Protected, *cache.Memory) {
	t.Helper()
	mem := cache.NewMemory(100, 64)
	cfg := Config{
		Size: 1024, Assoc: 2, BlockSize: 64,
		HitLatency: 6,
		Protect:    core.ParityProt,
		Next:       mem, Mem: mem,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return New(cfg), mem
}

func addrOfBlock(k int) uint64 { return uint64(k) * 64 }

// sinkStub is a far tier (the L1) for the tier's client side.
type sinkStub struct {
	acceptOffers bool
	repairData   []byte
	repairLat    uint64
	offers       []uint64
	drops        []uint64
}

func (f *sinkStub) OfferReplica(_ uint64, blockAddr uint64, _ []byte) bool {
	f.offers = append(f.offers, blockAddr)
	return f.acceptOffers
}

func (f *sinkStub) RepairWord(_ uint64, _ uint64, off int, dst []byte) (uint64, bool) {
	if f.repairData == nil {
		return 0, false
	}
	copy(dst[:8], f.repairData[off:off+8])
	return f.repairLat, true
}

func (f *sinkStub) DropReplica(blockAddr uint64) { f.drops = append(f.drops, blockAddr) }

func TestTierHitMissLatencyAndKinds(t *testing.T) {
	tr, _ := testTier(t, func(cfg *Config) { cfg.ExtraLatency = 50 })
	if lat := tr.Access(0, addrOfBlock(1), cache.Read); lat != 156 {
		t.Errorf("cold miss latency = %d, want 156 (6 hit + 50 extra + 100 mem)", lat)
	}
	if lat := tr.Access(200, addrOfBlock(1), cache.Read); lat != 56 {
		t.Errorf("hit latency = %d, want 56 (6 hit + 50 extra)", lat)
	}
	tr.Access(300, addrOfBlock(1), cache.Write)
	tr.Access(400, addrOfBlock(2), cache.Fetch)
	s := tr.CacheStats()
	if s.Reads != 2 || s.ReadMisses != 1 || s.Writes != 1 || s.WriteMisses != 0 ||
		s.Fetches != 1 || s.FetchMisses != 1 {
		t.Errorf("demand stats = %+v", s)
	}
}

func TestTierContentMirrorsMemory(t *testing.T) {
	tr, mem := testTier(t, nil)
	tr.Access(0, addrOfBlock(3), cache.Read)
	ln := tr.lookup(3)
	if ln == nil {
		t.Fatal("block 3 not resident after fill")
	}
	if !bytes.Equal(ln.data, mem.PeekBlock(3)) {
		t.Error("fill did not mirror architectural content")
	}
	// A write that reaches the tier happens after Memory was updated; the
	// write hit must re-mirror the new content.
	mem.WriteWord(3, 8, 0xdeadbeefcafef00d)
	tr.Access(10, addrOfBlock(3)+8, cache.Write)
	if !bytes.Equal(ln.data, mem.PeekBlock(3)) {
		t.Error("write hit did not refresh content from Memory")
	}
	if !ln.dirty {
		t.Error("write hit left the line clean")
	}
}

func TestTierReplicaRecovery(t *testing.T) {
	tr, _ := testTier(t, func(cfg *Config) { cfg.Replicate = true })
	tr.Access(0, addrOfBlock(0), cache.Read) // fill + replicate (window 0: all dead)
	ts := tr.TierStats()
	if ts.ReplAttempts != 1 || ts.ReplSuccesses != 1 {
		t.Fatalf("replication stats = %+v, want 1/1", ts)
	}
	ln := tr.lookup(0)
	ln.data[9] ^= 0x04
	if lat := tr.Access(100, addrOfBlock(0)+8, cache.Read); lat != 7 {
		t.Errorf("repaired hit latency = %d, want 7 (6 hit + 1 replica read)", lat)
	}
	ts = tr.TierStats()
	if ts.ErrorsDetected != 1 || ts.RecoveredByReplica != 1 {
		t.Errorf("recovery stats = %+v, want detected/replica 1/1", ts)
	}
	// Healed: the next read of the same word is clean.
	tr.Access(200, addrOfBlock(0)+8, cache.Read)
	if tr.TierStats().ErrorsDetected != 1 {
		t.Error("line still corrupt after replica repair")
	}
}

func TestTierECCCorrectsSingle(t *testing.T) {
	tr, _ := testTier(t, func(cfg *Config) { cfg.Protect = core.ECCProt })
	tr.Access(0, addrOfBlock(0), cache.Read)
	if lat := tr.Access(100, addrOfBlock(0), cache.Read); lat != 7 {
		t.Errorf("ECC hit latency = %d, want 7 (6 hit + 1 check)", lat)
	}
	ln := tr.lookup(0)
	ln.data[3] ^= 0x20
	tr.Access(200, addrOfBlock(0), cache.Read)
	ts := tr.TierStats()
	if ts.ErrorsDetected != 1 || ts.RecoveredByECC != 1 {
		t.Errorf("ECC stats = %+v, want detected/corrected 1/1", ts)
	}
}

func TestTierCleanRefetchDirtyLoss(t *testing.T) {
	tr, _ := testTier(t, nil) // parity only, no replicas
	// Clean line: detected error refetches from memory.
	tr.Access(0, addrOfBlock(0), cache.Read)
	tr.lookup(0).data[1] ^= 0x01
	lat := tr.Access(100, addrOfBlock(0), cache.Read)
	if lat != 6+1+100 {
		t.Errorf("refetch hit latency = %d, want 107 (6 hit + 1 + 100 mem)", lat)
	}
	ts := tr.TierStats()
	if ts.ErrorsDetected != 1 || ts.RecoveredByMem != 1 || ts.UnrecoverableDirty != 0 {
		t.Errorf("clean-line stats = %+v", ts)
	}
	// Dirty line: the same error is lost data.
	tr.Access(200, addrOfBlock(1), cache.Write) // miss + write-allocate: dirty
	tr.lookup(1).data[1] ^= 0x01
	tr.Access(300, addrOfBlock(1), cache.Read)
	ts = tr.TierStats()
	if ts.UnrecoverableDirty != 1 {
		t.Errorf("dirty-line stats = %+v, want 1 unrecoverable", ts)
	}
}

func TestTierSilentWriteback(t *testing.T) {
	tr, mem := testTier(t, nil)
	tr.Access(0, addrOfBlock(0), cache.Write) // set 0, dirty
	tr.lookup(0).data[5] ^= 0x80              // corrupt, never read again
	archBefore := append([]byte(nil), mem.PeekBlock(0)...)
	// Two more blocks in set 0 (8 and 16 mod 8 = 0) evict the victim.
	tr.Access(10, addrOfBlock(8), cache.Read)
	tr.Access(20, addrOfBlock(16), cache.Read)
	ts := tr.TierStats()
	if ts.SilentWritebacks != 1 {
		t.Errorf("SilentWritebacks = %d, want 1", ts.SilentWritebacks)
	}
	// The corruption is counted, never propagated: Memory still holds the
	// architectural bytes.
	if !bytes.Equal(mem.PeekBlock(0), archBefore) {
		t.Error("corrupt write-back reached the architectural store")
	}
}

func TestTierCrossSpillAndDrop(t *testing.T) {
	sink := &sinkStub{acceptOffers: true}
	tr, mem := testTier(t, func(cfg *Config) {
		cfg.Replicate = true
		cfg.Victim = core.DeadOnly
		cfg.DecayWindow = 1 << 20 // nothing is dead: every in-tier attempt fails
	})
	tr.SetCross(sink)
	// Keep the replica set (4) fully live.
	tr.Access(0, addrOfBlock(4), cache.Read)
	tr.Access(1, addrOfBlock(12), cache.Read)
	tr.Access(10, addrOfBlock(0), cache.Read) // shortfall: spilled to the L1
	if len(sink.offers) != 1 || sink.offers[0] != 0 {
		t.Fatalf("L1 saw offers %v, want [0]", sink.offers)
	}
	ts := tr.TierStats()
	if ts.Cross.Offers != 1 || ts.Cross.Accepted != 1 {
		t.Fatalf("cross stats = %+v, want 1 offer / 1 accepted", ts.Cross)
	}
	if !tr.lookup(0).spilled {
		t.Fatal("primary not marked spilled")
	}
	// A write to the spilled block must drop the now-stale L1 copy.
	mem.WriteWord(0, 0, 42)
	tr.Access(20, addrOfBlock(0), cache.Write)
	if len(sink.drops) != 1 || sink.drops[0] != 0 {
		t.Errorf("L1 saw drops %v, want [0]", sink.drops)
	}
	if tr.TierStats().Cross.Drops != 1 {
		t.Errorf("Cross.Drops = %d, want 1", tr.TierStats().Cross.Drops)
	}
	if tr.lookup(0).spilled {
		t.Error("spilled flag survived the write")
	}
}

func TestTierCrossRepairRung(t *testing.T) {
	sink := &sinkStub{repairLat: 2}
	tr, mem := testTier(t, func(cfg *Config) {
		cfg.Replicate = true
		cfg.Victim = core.DeadOnly
		cfg.DecayWindow = 1 << 20
	})
	tr.SetCross(sink)
	tr.Access(0, addrOfBlock(4), cache.Read)
	tr.Access(1, addrOfBlock(12), cache.Read)
	tr.Access(10, addrOfBlock(0), cache.Read) // no in-tier replica possible
	sink.repairData = append([]byte(nil), mem.PeekBlock(0)...)

	tr.lookup(0).data[2] ^= 0x40
	if lat := tr.Access(20, addrOfBlock(0), cache.Read); lat != 6+2 {
		t.Errorf("cross-repaired hit latency = %d, want 8 (6 hit + 2 L1 probe)", lat)
	}
	ts := tr.TierStats()
	if ts.RecoveredByCross != 1 || ts.Cross.Repairs != 1 || ts.Cross.Repaired != 1 {
		t.Errorf("cross repair stats = %+v", ts)
	}
}

func TestTierHostsGuests(t *testing.T) {
	tr, mem := testTier(t, func(cfg *Config) {
		cfg.Replicate = true
		cfg.ExtraLatency = 50
	})
	blk := mem.PeekBlock(5)
	if !tr.OfferReplica(0, 5, blk) {
		t.Fatal("offer refused")
	}
	var buf [8]byte
	lat, ok := tr.RepairWord(1, 5, 24, buf[:])
	if !ok {
		t.Fatal("RepairWord missed the guest")
	}
	if lat != 6+50+1 {
		t.Errorf("remote repair latency = %d, want 57 (hit + extra + transfer)", lat)
	}
	if !bytes.Equal(buf[:], blk[24:32]) {
		t.Error("repair word mismatch")
	}
	tr.DropReplica(5)
	if _, ok := tr.RepairWord(2, 5, 24, buf[:]); ok {
		t.Error("guest served after DropReplica")
	}
	ts := tr.TierStats()
	if ts.Cross.HostOffers != 1 || ts.Cross.HostedLines != 1 ||
		ts.Cross.HostRepairs != 1 || ts.Cross.HostDrops != 1 {
		t.Errorf("host stats = %+v", ts.Cross)
	}

	// A non-replicating tier may hold no replica lines, guests included.
	plain, mem2 := testTier(t, nil)
	if plain.OfferReplica(0, 5, mem2.PeekBlock(5)) {
		t.Error("non-replicating tier accepted a guest")
	}
}

func TestTierGuestsNeverServeDemand(t *testing.T) {
	tr, mem := testTier(t, func(cfg *Config) { cfg.Replicate = true })
	if !tr.OfferReplica(0, 5, mem.PeekBlock(5)) {
		t.Fatal("offer refused")
	}
	// A demand read of the hosted block must still miss to memory: guests
	// are repair sources, not primaries.
	if lat := tr.Access(10, addrOfBlock(5), cache.Read); lat != 106 {
		t.Errorf("demand read of hosted block = %d, want 106 (a miss)", lat)
	}
	if tr.CacheStats().ReadMisses != 1 {
		t.Error("hosted block served a demand access")
	}
}

// exercise runs a fixed deterministic workload against the tier: fills,
// writes, injected faults, replica traffic.
func exercise(tr *Protected, mem *cache.Memory) {
	in := fault.NewInjector(fault.Random, 1e-2, 16, 99)
	now := uint64(0)
	for i := 0; i < 400; i++ {
		blk := (i * 7) % 32
		now += 13
		if i%5 == 2 {
			mem.WriteWord(uint64(blk), 0, uint64(i))
			tr.Access(now, addrOfBlock(blk), cache.Write)
		} else {
			tr.Access(now, addrOfBlock(blk)+uint64(i%8)*8, cache.Read)
		}
		if i%17 == 0 {
			tr.Inject(in)
		}
	}
}

// TestTierResetByteIdentical pins the pooled-reuse contract: a reset tier
// re-running the same workload produces exactly the counters of a freshly
// constructed one.
func TestTierResetByteIdentical(t *testing.T) {
	build := func() (*Protected, *cache.Memory) {
		return testTier(t, func(cfg *Config) {
			cfg.Replicate = true
			cfg.DecayWindow = 4096
			cfg.Protect = core.ECCProt
			cfg.PortOccupancy = 4
		})
	}
	fresh, memF := build()
	exercise(fresh, memF)
	want, wantTier := fresh.CacheStats(), fresh.TierStats()

	reused, memR := build()
	exercise(reused, memR)
	reused.Reset()
	memR.Reset()
	exercise(reused, memR)
	if got := reused.CacheStats(); got != want {
		t.Errorf("demand stats after Reset:\n got %+v\nwant %+v", got, want)
	}
	if got := reused.TierStats(); !reflect.DeepEqual(got, wantTier) {
		t.Errorf("tier stats after Reset:\n got %+v\nwant %+v", got, wantTier)
	}
}

func TestTierConfigPanics(t *testing.T) {
	mem := cache.NewMemory(100, 64)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no protection", Config{Size: 1024, Assoc: 2, BlockSize: 64, Next: mem, Mem: mem}},
		{"no next", Config{Size: 1024, Assoc: 2, BlockSize: 64, Protect: core.ParityProt, Mem: mem}},
		{"bad geometry", Config{Size: 1000, Assoc: 2, BlockSize: 64, Protect: core.ParityProt, Next: mem, Mem: mem}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("New did not panic")
				}
			}()
			New(tc.cfg)
		})
	}
}
