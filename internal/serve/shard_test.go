package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/store"
)

// newShardServer spins up one icrd shard: a disk store behind the
// /store/v1/ endpoints.
func newShardServer(t *testing.T) (*Server, *httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := stubSim()
	eng := runner.New(runner.Options{Simulate: fn})
	s := New(Options{Runner: eng, Backend: st, ShardAPI: true})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, st
}

func shardKey(n byte) string {
	return strings.Repeat("0", 63) + string([]byte{'a' + n%6})
}

func shardReport() *metrics.Report {
	return &metrics.Report{Benchmark: "vpr", Scheme: "BaseP", Instructions: 1000, Cycles: 1234}
}

// TestShardAPIRoundTrip drives the full protocol through real HTTP via
// the store.Remote client: miss, put, hit, claim lifecycle.
func TestShardAPIRoundTrip(t *testing.T) {
	_, ts, _ := newShardServer(t)
	rc := store.NewRemote(ts.URL, nil)
	ctx := context.Background()
	key := shardKey(0)

	if _, err := rc.Get(ctx, key); !errors.Is(err, store.ErrMiss) {
		t.Fatalf("cold Get = %v, want ErrMiss", err)
	}
	if err := rc.Put(ctx, key, shardReport()); err != nil {
		t.Fatal(err)
	}
	rep, err := rc.Get(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles != 1234 || rep.Benchmark != "vpr" {
		t.Errorf("round trip mangled the report: %+v", rep)
	}

	// Claim lifecycle on a second, cold key.
	key2 := shardKey(1)
	cr, err := rc.Claim(ctx, key2)
	if err != nil || cr.State != store.ClaimGranted {
		t.Fatalf("first claim = %+v, %v, want granted", cr, err)
	}
	cr, err = rc.Claim(ctx, key2)
	if err != nil || cr.State != store.ClaimWait || cr.RetryAfterMS <= 0 {
		t.Fatalf("second claim = %+v, %v, want wait with hint", cr, err)
	}
	if err := rc.Put(ctx, key2, shardReport()); err != nil {
		t.Fatal(err)
	}
	cr, err = rc.Claim(ctx, key2)
	if err != nil || cr.State != store.ClaimDone {
		t.Fatalf("claim after put = %+v, %v, want done", cr, err)
	}
}

// TestShardAPIRejectsBadKeysAndBodies: invalid keys 400, schema-invalid
// reports 400 (a shard never stores what it cannot serve).
func TestShardAPIRejectsBadKeysAndBodies(t *testing.T) {
	_, ts, st := newShardServer(t)
	resp, err := http.Get(ts.URL + store.StorePathPrefix + "not-a-key!")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad key GET = %d, want 400", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodPut,
		ts.URL+store.StorePathPrefix+shardKey(0), strings.NewReader(`{"schema":99}`))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("stale-schema PUT = %d, want 400", resp.StatusCode)
	}
	if st.Len() != 0 {
		t.Error("rejected PUT reached the store")
	}
}

// TestShardAPIDrainDiscipline: a draining shard answers 503 with
// Retry-After on every store endpoint, and the fleet client degrades
// (error, claim falls back to local simulation) instead of stalling.
func TestShardAPIDrainDiscipline(t *testing.T) {
	s, ts, _ := newShardServer(t)
	rc := store.NewRemote(ts.URL, nil)
	ctx := context.Background()
	s.Drain()

	resp, err := http.Get(ts.URL + store.StorePathPrefix + shardKey(0))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining GET = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining 503 missing Retry-After")
	}
	if _, err := rc.Get(ctx, shardKey(0)); err == nil || errors.Is(err, store.ErrMiss) {
		t.Errorf("client Get against draining shard = %v, want non-miss error", err)
	}

	// Claim trouble degrades to local simulation at the fleet level.
	sh, err := store.NewSharded([]store.Shard{rc}, store.ShardedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	owned, release, err := sh.Claim(ctx, shardKey(0))
	if err != nil || !owned {
		t.Fatalf("claim against draining shard: owned=%v err=%v, want local degradation", owned, err)
	}
	release()
}

// TestShardAPIStoreQueueBound: requests beyond StoreQueueDepth get 429 +
// Retry-After. The handler holds requests via a slow backend.
func TestShardAPIStoreQueueBound(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	entered := make(chan struct{}, 8)
	slow := &gatedBackend{Backend: st, gate: gate, entered: entered}
	fn, _ := stubSim()
	eng := runner.New(runner.Options{Simulate: fn})
	s := New(Options{Runner: eng, Backend: slow, ShardAPI: true, StoreQueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer close(gate)

	go func() {
		resp, err := http.Get(ts.URL + store.StorePathPrefix + shardKey(0))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered

	resp, err := http.Get(ts.URL + store.StorePathPrefix + shardKey(1))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow GET = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
		t.Error("429 body not a JSON error")
	}
}

// gatedBackend blocks every Get until the gate closes (admission tests).
type gatedBackend struct {
	store.Backend
	gate    chan struct{}
	entered chan struct{}
}

func (g *gatedBackend) Get(ctx context.Context, key string) (*metrics.Report, error) {
	g.entered <- struct{}{}
	<-g.gate
	return g.Backend.Get(ctx, key)
}

// TestFleetAntiStampede is the acceptance path: a 3-shard fleet over real
// HTTP, several front ends (each its own runner, memory cache, and
// flight group) hammering one cold key concurrently — exactly one
// simulation executes fleet-wide and every front end returns the result.
func TestFleetAntiStampede(t *testing.T) {
	const shards = 3
	shardList := make([]store.Shard, shards)
	for i := 0; i < shards; i++ {
		_, ts, _ := newShardServer(t)
		shardList[i] = store.NewRemote(ts.URL, nil)
	}

	var calls atomic.Int64
	slowSim := func(ctx context.Context, m config.Machine, r config.Run) (*metrics.Report, error) {
		calls.Add(1)
		time.Sleep(30 * time.Millisecond) // hold the claim long enough to race
		return &metrics.Report{Benchmark: r.Benchmark, Scheme: "BaseP",
			Instructions: r.Instructions, Cycles: 777}, nil
	}

	const fronts = 4
	var wg sync.WaitGroup
	errs := make([]error, fronts)
	for i := 0; i < fronts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fleet, err := store.NewSharded(shardList, store.ShardedOptions{})
			if err != nil {
				errs[i] = err
				return
			}
			eng := runner.New(runner.Options{
				Workers:  2,
				Simulate: slowSim,
				Cache: runner.NewTiered(
					runner.NewMemoryCache(0, nil),
					runner.NewStoreCache(fleet, runner.SourceShard),
				),
				Claimer: fleet,
			})
			run := config.NewRun("vpr", core.BaseP())
			run.Instructions = 1000
			rep, err := eng.Run(context.Background(), config.Default(), run)
			if err == nil && rep.Cycles != 777 {
				err = fmt.Errorf("front %d got wrong report: %+v", i, rep)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("front end %d: %v", i, err)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("%d simulations executed fleet-wide for one cold key, want exactly 1", got)
	}
}
