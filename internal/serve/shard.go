// shard.go is the server half of the shard protocol: the /store/v1/
// endpoints a fleet of front ends reads and writes through
// (internal/store.Remote is the client half, store.Sharded the fleet
// view). Mounted only with Options.ShardAPI.
//
// Admission is separate from the simulation queue: a store hit costs one
// disk read, not one simulation, so the bound is much deeper
// (StoreQueueDepth) — a load test replaying a million lookups must not
// starve, or be starved by, the simulation endpoints. The discipline is
// the same: queue full → 429 + Retry-After, draining → 503 + Retry-After.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/metrics"
	"repro/internal/store"
)

// claimRetryHintMS is the poll interval hint sent with "wait" claim
// responses. Simulations take tens of milliseconds to minutes; 50ms keeps
// waiters prompt without hammering the shard.
const claimRetryHintMS = 50

// tryAdmitStore is tryAdmit for the store endpoints: same discipline,
// separate (deeper) queue.
func (s *Server) tryAdmitStore(w http.ResponseWriter) (release func(), ok bool) {
	if s.eng.Draining() {
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, errors.New("shard draining"))
		return nil, false
	}
	select {
	case s.storeAdmit <- struct{}{}:
		s.storeInflight.Add(1)
		return func() {
			s.storeInflight.Add(-1)
			<-s.storeAdmit
		}, true
	default:
		s.storeRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("store queue full (%d in flight); retry later", cap(s.storeAdmit)))
		return nil, false
	}
}

// storeKey validates the {key} path segment once for every handler.
func storeKey(w http.ResponseWriter, r *http.Request) (string, bool) {
	key := r.PathValue("key")
	if !store.ValidKey(key) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid store key %q", key))
		return "", false
	}
	return key, true
}

// handleStoreGet serves GET /store/v1/{key}: the stored report, or 404
// for a miss. Real backend trouble (sick disk) is 500 — the client
// counts it instead of mistaking it for an empty shard.
func (s *Server) handleStoreGet(w http.ResponseWriter, r *http.Request) {
	release, ok := s.tryAdmitStore(w)
	if !ok {
		return
	}
	defer release()
	key, ok := storeKey(w, r)
	if !ok {
		return
	}
	rep, err := s.backend.Get(r.Context(), key)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, rep)
	case errors.Is(err, store.ErrMiss):
		writeError(w, http.StatusNotFound, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// handleStorePut serves PUT /store/v1/{key}: persist the report and clear
// any claim on the key — a landed result is the claim protocol's
// success path, so waiters' next poll answers "done".
func (s *Server) handleStorePut(w http.ResponseWriter, r *http.Request) {
	release, ok := s.tryAdmitStore(w)
	if !ok {
		return
	}
	defer release()
	key, ok := storeKey(w, r)
	if !ok {
		return
	}
	var rep metrics.Report
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&rep); err != nil {
		// Schema mismatches land here too: a shard must never store a
		// report it would refuse to serve.
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding report: %w", err))
		return
	}
	if err := s.backend.Put(r.Context(), key, &rep); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if s.claims != nil {
		s.claims.Release(key)
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleClaim serves POST /store/v1/claim/{key}: the fleet-wide
// anti-stampede election. If the result already exists the answer is
// "done" (re-Get it); otherwise the first claimant is "granted" and
// everyone else "wait"s with a poll hint. A granted claim is cleared by
// the winner's PUT, an explicit DELETE, or the claim TTL (crashed
// winner).
func (s *Server) handleClaim(w http.ResponseWriter, r *http.Request) {
	release, ok := s.tryAdmitStore(w)
	if !ok {
		return
	}
	defer release()
	key, ok := storeKey(w, r)
	if !ok {
		return
	}
	if _, err := s.backend.Get(r.Context(), key); err == nil {
		writeJSON(w, http.StatusOK, store.ClaimResponse{State: store.ClaimDone})
		return
	} else if !errors.Is(err, store.ErrMiss) {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	granted, _ := s.claims.Claim(key)
	if granted {
		writeJSON(w, http.StatusOK, store.ClaimResponse{State: store.ClaimGranted})
		return
	}
	writeJSON(w, http.StatusOK, store.ClaimResponse{
		State:        store.ClaimWait,
		RetryAfterMS: claimRetryHintMS,
	})
}

// handleUnclaim serves DELETE /store/v1/claim/{key}: the winner's
// simulation failed, free the waiters early.
func (s *Server) handleUnclaim(w http.ResponseWriter, r *http.Request) {
	release, ok := s.tryAdmitStore(w)
	if !ok {
		return
	}
	defer release()
	key, ok := storeKey(w, r)
	if !ok {
		return
	}
	s.claims.Release(key)
	w.WriteHeader(http.StatusNoContent)
}
