package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/store"
)

// stubSim is a deterministic, instant SimulateFunc counting executions.
func stubSim() (runner.SimulateFunc, *atomic.Int64) {
	var calls atomic.Int64
	fn := func(ctx context.Context, m config.Machine, r config.Run) (*metrics.Report, error) {
		calls.Add(1)
		return &metrics.Report{
			Benchmark:    r.Benchmark,
			Scheme:       r.Scheme.Name(),
			Instructions: r.Instructions,
			Cycles:       uint64(r.Seed)*1000 + r.Instructions,
			DL1Reads:     42,
			EnergyL1:     1.25,
		}, nil
	}
	return fn, &calls
}

// gatedSim blocks every simulation until the gate closes (or ctx ends).
func gatedSim(started chan<- struct{}, gate <-chan struct{}) runner.SimulateFunc {
	return func(ctx context.Context, m config.Machine, r config.Run) (*metrics.Report, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-gate:
			return &metrics.Report{Instructions: r.Instructions}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func newTestServer(t *testing.T, o Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(o)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

const runBody = `{"benchmark":"vpr","scheme":"ICR-P-PS(S)","instructions":50000,"seed":3}`

// runReply mirrors RunResponse but keeps the report raw so tests can
// compare the exact bytes the service emitted.
type runReply struct {
	Source string          `json:"source"`
	Report json.RawMessage `json:"report"`
}

func TestHealthz(t *testing.T) {
	fn, _ := stubSim()
	_, ts := newTestServer(t, Options{Runner: runner.New(runner.Options{Simulate: fn})})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || body.Status != "ok" || body.Draining {
		t.Errorf("healthz = %d %+v", resp.StatusCode, body)
	}
}

func TestRunCachedSecondCall(t *testing.T) {
	fn, calls := stubSim()
	_, ts := newTestServer(t, Options{Runner: runner.New(runner.Options{Simulate: fn})})

	resp1, data1 := postJSON(t, ts.URL+"/v1/runs", runBody)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first run: %d %s", resp1.StatusCode, data1)
	}
	var r1, r2 runReply
	if err := json.Unmarshal(data1, &r1); err != nil {
		t.Fatal(err)
	}
	if r1.Source != runner.SourceSimulated {
		t.Errorf("first run source = %q, want simulated", r1.Source)
	}
	if !bytes.Contains(r1.Report, []byte(`"schema":1`)) {
		t.Errorf("report JSON missing schema field: %s", r1.Report)
	}

	resp2, data2 := postJSON(t, ts.URL+"/v1/runs", runBody)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second run: %d %s", resp2.StatusCode, data2)
	}
	if err := json.Unmarshal(data2, &r2); err != nil {
		t.Fatal(err)
	}
	if r2.Source != runner.SourceMemory {
		t.Errorf("second run source = %q, want memory", r2.Source)
	}
	if !bytes.Equal(r1.Report, r2.Report) {
		t.Errorf("cached report JSON differs:\n%s\nvs\n%s", r1.Report, r2.Report)
	}
	if calls.Load() != 1 {
		t.Errorf("simulated %d times, want 1", calls.Load())
	}
}

// TestRunPersistsAcrossRestart is the durability acceptance path: a second
// server over a fresh runner but the same store directory serves the run
// from disk, byte-identical.
func TestRunPersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	newStack := func() (*runner.Runner, *store.Store, *atomic.Int64) {
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		fn, calls := stubSim()
		eng := runner.New(runner.Options{
			Simulate: fn,
			Cache:    runner.NewTiered(runner.NewMemoryCache(0, nil), runner.NewStoreCache(st, "")),
		})
		return eng, st, calls
	}

	eng1, _, calls1 := newStack()
	_, ts1 := newTestServer(t, Options{Runner: eng1})
	_, data1 := postJSON(t, ts1.URL+"/v1/runs", runBody)
	var r1 runReply
	if err := json.Unmarshal(data1, &r1); err != nil {
		t.Fatal(err)
	}
	if r1.Source != runner.SourceSimulated || calls1.Load() != 1 {
		t.Fatalf("first incarnation: source=%q calls=%d", r1.Source, calls1.Load())
	}
	ts1.Close()

	eng2, _, calls2 := newStack()
	_, ts2 := newTestServer(t, Options{Runner: eng2})
	resp, data2 := postJSON(t, ts2.URL+"/v1/runs", runBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restarted run: %d %s", resp.StatusCode, data2)
	}
	var r2 runReply
	if err := json.Unmarshal(data2, &r2); err != nil {
		t.Fatal(err)
	}
	if r2.Source != runner.SourceDisk {
		t.Errorf("restarted source = %q, want disk", r2.Source)
	}
	if calls2.Load() != 0 {
		t.Errorf("restarted server re-simulated %d times", calls2.Load())
	}
	if !bytes.Equal(r1.Report, r2.Report) {
		t.Errorf("report JSON changed across restart:\n%s\nvs\n%s", r1.Report, r2.Report)
	}
}

func TestQueueFullReturns429(t *testing.T) {
	started := make(chan struct{}, 1)
	gate := make(chan struct{})
	defer close(gate)
	eng := runner.New(runner.Options{Workers: 1, Simulate: gatedSim(started, gate)})
	_, ts := newTestServer(t, Options{Runner: eng, QueueDepth: 1})

	first := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/runs", runBody)
		first <- resp.StatusCode
	}()
	<-started

	resp, data := postJSON(t, ts.URL+"/v1/runs",
		`{"benchmark":"mcf","scheme":"BaseP","instructions":1000}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d (%s), want 429", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 response missing Retry-After header")
	}
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil || eb.Error == "" {
		t.Errorf("429 body not a JSON error: %s", data)
	}

	gate <- struct{}{}
	if code := <-first; code != http.StatusOK {
		t.Errorf("admitted request finished %d, want 200", code)
	}
}

func TestDrainRejectsNewFinishesRunning(t *testing.T) {
	started := make(chan struct{}, 1)
	gate := make(chan struct{})
	eng := runner.New(runner.Options{Workers: 1, Simulate: gatedSim(started, gate)})
	s, ts := newTestServer(t, Options{Runner: eng})

	first := make(chan *http.Response, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/runs", runBody)
		first <- resp
	}()
	<-started
	s.Drain()

	resp, data := postJSON(t, ts.URL+"/v1/runs", runBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain status = %d (%s), want 503", resp.StatusCode, data)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("drain 503 response missing Retry-After header")
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	var body struct {
		Draining bool `json:"draining"`
	}
	if err := json.NewDecoder(hz.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !body.Draining {
		t.Error("healthz should report draining")
	}

	gate <- struct{}{}
	close(gate)
	if code := (<-first).StatusCode; code != http.StatusOK {
		t.Errorf("in-flight request finished %d during drain, want 200", code)
	}
}

func TestRequestTimeoutPropagates(t *testing.T) {
	started := make(chan struct{}, 1)
	gate := make(chan struct{}) // never closed: only ctx can end the sim
	defer close(gate)
	eng := runner.New(runner.Options{Simulate: gatedSim(started, gate)})
	_, ts := newTestServer(t, Options{Runner: eng, RequestTimeout: 50 * time.Millisecond})

	resp, data := postJSON(t, ts.URL+"/v1/runs", runBody)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("timed-out run = %d (%s), want 504", resp.StatusCode, data)
	}
}

func TestFigureEndpoint(t *testing.T) {
	fn, _ := stubSim()
	eng := runner.New(runner.Options{Simulate: fn})
	_, ts := newTestServer(t, Options{Runner: eng})

	resp, data := postJSON(t, ts.URL+"/v1/figures/fig1", `{"instructions":1000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fig1: %d %s", resp.StatusCode, data)
	}
	var res struct {
		ID     string `json:"ID"`
		Series []struct {
			Label  string
			Values []float64
		}
	}
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.ID != "fig1" || len(res.Series) == 0 {
		t.Errorf("unexpected figure payload: %s", data)
	}

	resp, data = postJSON(t, ts.URL+"/v1/figures/nope", `{}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown figure = %d (%s), want 400", resp.StatusCode, data)
	}
}

func TestBadRequests(t *testing.T) {
	fn, _ := stubSim()
	_, ts := newTestServer(t, Options{Runner: runner.New(runner.Options{Simulate: fn})})
	cases := []struct {
		name, body string
	}{
		{"missing benchmark", `{"scheme":"BaseP"}`},
		{"missing scheme", `{"benchmark":"vpr"}`},
		{"unknown scheme", `{"benchmark":"vpr","scheme":"NotAScheme"}`},
		{"unknown victim", `{"benchmark":"vpr","scheme":"BaseP","victim":"bogus"}`},
		{"unknown fault model", `{"benchmark":"vpr","scheme":"BaseP","fault_prob":0.1,"fault_model":"bogus"}`},
		{"bad adapt spec", `{"benchmark":"vpr","scheme":"ICR-P-PS(S)","adapt":"bogus"}`},
		{"adapt without predictor", `{"benchmark":"vpr","scheme":"ICR-P-PS(S)","adapt":"epoch=5000"}`},
		{"unknown field", `{"benchmark":"vpr","scheme":"BaseP","bogus_field":1}`},
		{"malformed json", `{"benchmark":`},
	}
	for _, tc := range cases {
		resp, data := postJSON(t, ts.URL+"/v1/runs", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", tc.name, resp.StatusCode, data)
		}
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/runs = %d, want 405", resp.StatusCode)
	}
}

func TestExpvarAndPprofExposed(t *testing.T) {
	fn, _ := stubSim()
	_, ts := newTestServer(t, Options{Runner: runner.New(runner.Options{Simulate: fn})})
	if _, data := postJSON(t, ts.URL+"/v1/runs", runBody); len(data) == 0 {
		t.Fatal("priming run failed")
	}

	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var vars struct {
		ICRD map[string]any `json:"icrd"`
	}
	if err := json.Unmarshal(data, &vars); err != nil {
		t.Fatalf("expvar page is not JSON: %v", err)
	}
	if vars.ICRD == nil {
		t.Fatal("expvar page missing icrd map")
	}
	for _, key := range []string{"memory_hits", "disk_hits", "cache_misses", "inflight", "queue_depth", "rejected"} {
		if _, ok := vars.ICRD[key]; !ok {
			t.Errorf("icrd expvar missing %q (have %v)", key, vars.ICRD)
		}
	}

	pp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Errorf("pprof index = %d", pp.StatusCode)
	}
}

func TestStoreStatsInExpvar(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := stubSim()
	eng := runner.New(runner.Options{
		Simulate: fn,
		Cache:    runner.NewTiered(runner.NewMemoryCache(0, nil), runner.NewStoreCache(st, "")),
	})
	s, _ := newTestServer(t, Options{Runner: eng, Backend: st})
	stats := s.stats()
	if _, ok := stats["store"]; !ok {
		t.Errorf("stats missing store section: %v", stats)
	}
}

func TestTimeoutMSCapsServerTimeout(t *testing.T) {
	// timeout_ms shorter than the server cap wins.
	started := make(chan struct{}, 1)
	gate := make(chan struct{})
	defer close(gate)
	eng := runner.New(runner.Options{Simulate: gatedSim(started, gate)})
	_, ts := newTestServer(t, Options{Runner: eng, RequestTimeout: time.Hour})
	start := time.Now()
	resp, _ := postJSON(t, ts.URL+"/v1/runs",
		fmt.Sprintf(`{"benchmark":"vpr","scheme":"BaseP","timeout_ms":%d}`, 50))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status = %d, want 504", resp.StatusCode)
	}
	if time.Since(start) > 10*time.Second {
		t.Error("request did not respect timeout_ms")
	}
}
