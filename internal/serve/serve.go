// Package serve is icrd's HTTP layer: a small JSON API over the runner,
// the experiment registry, and the persistent result store.
//
// Endpoints:
//
//	POST /v1/runs          one simulation; responds with the versioned
//	                       metrics.Report JSON and the cache tier that
//	                       served it ("simulated", "memory", "disk")
//	POST /v1/figures/{id}  one experiment driver (experiments.IDs)
//	POST /cluster/v1/...   coordinator endpoints for icrworker fleets
//	                       (register, heartbeat, lease, renew, complete;
//	                       mounted only when Options.Cluster is set)
//	GET  /store/v1/{key}   shard read: the stored report or 404
//	PUT  /store/v1/{key}   shard write-through (also clears the claim)
//	POST /store/v1/claim/{key}   anti-stampede claim: granted|wait|done
//	DELETE /store/v1/claim/{key} claim release (simulation failed)
//	                       (store endpoints mounted only with
//	                       Options.ShardAPI; see internal/store.Remote for
//	                       the client half)
//	GET  /healthz          liveness + draining state
//	GET  /debug/vars       expvar counters (cache tiers, queue, store)
//	GET  /debug/pprof/...  standard profiling handlers
//
// Robustness model:
//
//   - Admission control: at most QueueDepth requests are inside the
//     simulation endpoints at once; the next one is rejected immediately
//     with 429 rather than queued without bound, so overload degrades to
//     fast failure instead of memory growth and timeout pileups. 429 and
//     the drain 503s carry a Retry-After hint for well-behaved clients.
//   - Deadlines: each request's context — including the optional
//     timeout_ms field and the server-wide RequestTimeout cap — flows
//     through the runner into sim.SimulateContext, so an abandoned or
//     over-deadline request stops burning CPU mid-simulation.
//   - Drain: Drain() moves the runner to shutdown mode. Simulations
//     already executing finish (and persist through the store); queued
//     ones settle with runner.ErrDraining, surfaced as 503. Pair it with
//     http.Server.Shutdown, which waits for in-flight handlers without
//     cancelling their contexts.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adapt"
	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/store"
)

// Options configure a Server.
type Options struct {
	// Runner executes the simulations (required). Build it with a
	// memory-over-disk cache (cliflag.Sim.NewRunner) to make results
	// durable.
	Runner *runner.Runner

	// Backend, when non-nil, contributes its stats to /debug/vars and —
	// with ShardAPI set — is what the /store/v1/ endpoints serve. The
	// simulation path never touches it directly; persistence rides the
	// runner's cache stack.
	Backend store.Backend

	// ShardAPI mounts the shard endpoints (GET/PUT /store/v1/{key},
	// POST/DELETE /store/v1/claim/{key}) over Backend, making this icrd a
	// shard node other fleet members can read through. Requires Backend.
	ShardAPI bool

	// QueueDepth bounds concurrently admitted simulation requests;
	// request QueueDepth+1 gets 429. <= 0 means 4 × the runner's worker
	// count.
	QueueDepth int

	// StoreQueueDepth bounds concurrently admitted /store/v1/ requests.
	// Store hits are orders of magnitude cheaper than simulations, so the
	// bound is separate and much deeper. <= 0 means 1024.
	StoreQueueDepth int

	// ClaimTTL bounds how long a granted claim blocks other claimants
	// when its holder vanishes without a Put or a release. <= 0 means
	// store.DefaultClaimTTL.
	ClaimTTL time.Duration

	// RequestTimeout caps every request's context (0 = no cap). A
	// request's own timeout_ms can only shorten it further.
	RequestTimeout time.Duration

	// Cluster, when non-nil, mounts the coordinator's /cluster/v1/...
	// endpoints, adds fleet stats to /debug/vars, and includes the
	// coordinator in Drain. Pair it with a Runner built over the
	// coordinator as its Executor (cliflag.Sim.NewRunnerExecutor).
	Cluster *cluster.Coordinator
}

// Server is the icrd HTTP service. Create with New, expose via Handler,
// shut down by calling Drain and then http.Server.Shutdown.
type Server struct {
	eng        *runner.Runner
	backend    store.Backend
	claims     *store.ClaimTable
	coord      *cluster.Coordinator
	admit      chan struct{}
	storeAdmit chan struct{}
	reqTimeout time.Duration
	mux        *http.ServeMux

	inflight      atomic.Int64
	admitted      atomic.Uint64
	rejected      atomic.Uint64
	storeInflight atomic.Int64
	storeRejected atomic.Uint64
}

// activeServer backs the process-wide expvar page. expvar registration is
// global and permanent, so the Func is published once and reads whichever
// server was created most recently (tests create many; a process runs one).
var (
	activeServer atomic.Pointer[Server]
	publishOnce  sync.Once
)

// New returns a Server wired to the given runner.
func New(o Options) *Server {
	if o.Runner == nil {
		panic("serve.New: Options.Runner is required")
	}
	depth := o.QueueDepth
	if depth <= 0 {
		depth = 4 * o.Runner.Workers()
	}
	storeDepth := o.StoreQueueDepth
	if storeDepth <= 0 {
		storeDepth = 1024
	}
	claimTTL := o.ClaimTTL
	if claimTTL <= 0 {
		claimTTL = store.DefaultClaimTTL
	}
	s := &Server{
		eng:        o.Runner,
		backend:    o.Backend,
		coord:      o.Cluster,
		admit:      make(chan struct{}, depth),
		storeAdmit: make(chan struct{}, storeDepth),
		reqTimeout: o.RequestTimeout,
		mux:        http.NewServeMux(),
	}
	if s.coord != nil {
		s.mux.Handle("POST /cluster/v1/", s.coord.Handler())
	}
	if o.ShardAPI {
		if s.backend == nil {
			panic("serve.New: Options.ShardAPI requires Options.Backend")
		}
		s.claims = store.NewClaimTable(claimTTL)
		s.mux.HandleFunc("GET "+store.StorePathPrefix+"{key}", s.handleStoreGet)
		s.mux.HandleFunc("PUT "+store.StorePathPrefix+"{key}", s.handleStorePut)
		s.mux.HandleFunc("POST "+store.ClaimPathPrefix+"{key}", s.handleClaim)
		s.mux.HandleFunc("DELETE "+store.ClaimPathPrefix+"{key}", s.handleUnclaim)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /v1/runs", s.handleRun)
	s.mux.HandleFunc("POST /v1/figures/{id}", s.handleFigure)
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)

	activeServer.Store(s)
	publishOnce.Do(func() {
		expvar.Publish("icrd", expvar.Func(func() any {
			if cur := activeServer.Load(); cur != nil {
				return cur.stats()
			}
			return nil
		}))
	})
	return s
}

// Handler returns the server's routing handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain moves the runner into shutdown mode: executing simulations finish
// and persist, queued ones are rejected. With a cluster coordinator, the
// drain is fleet-wide: leasing stops, queued tasks settle with
// ErrDraining, and workers finish and upload in-flight work. Safe to call
// more than once.
func (s *Server) Drain() {
	s.eng.Drain()
	if s.coord != nil {
		s.coord.Drain()
	}
	if s.backend != nil {
		// The disk store's Drain is a no-op by contract (executing
		// simulations must still persist); remote backends release their
		// idle connections.
		s.backend.Drain()
	}
}

// stats is the /debug/vars payload: runner progress per cache tier, the
// admission queue, and (when persistent) the disk store.
func (s *Server) stats() map[string]any {
	snap := s.eng.Progress().Snapshot()
	out := map[string]any{
		"submitted":    snap.Submitted,
		"completed":    snap.Completed,
		"failed":       snap.Failed,
		"memory_hits":  snap.MemoHits,
		"disk_hits":    snap.DiskHits,
		"shard_hits":   snap.ShardHits,
		"cache_misses": snap.CacheMisses,
		"cache_errors": snap.CacheErrors,
		"put_errors":   snap.PutErrors,
		"evictions":    snap.Evictions,
		"remote":       snap.Remote,
		"inflight":     s.inflight.Load(),
		"admitted":     s.admitted.Load(),
		"rejected":     s.rejected.Load(),
		"queue_depth":  cap(s.admit),
		"draining":     s.eng.Draining(),
	}
	if s.backend != nil {
		st := s.backend.Stats()
		out["store"] = map[string]any{
			"entries":      st.Entries,
			"bytes":        st.Bytes,
			"hits":         st.Hits,
			"misses":       st.Misses,
			"puts":         st.Puts,
			"dup_puts":     st.DupPuts,
			"evictions":    st.Evictions,
			"quarantined":  st.Quarantined,
			"schema_stale": st.SchemaStale,
			"read_errors":  st.ReadErrors,
			"put_errors":   st.PutErrors,
			"hot_keys":     st.HotKeys,
			"replica_ops":  st.ReplicaOps,
		}
	}
	if s.claims != nil {
		out["shard_api"] = map[string]any{
			"claims_held":    s.claims.Len(),
			"claims_granted": s.claims.Granted(),
			"claims_waited":  s.claims.Waited(),
			"inflight":       s.storeInflight.Load(),
			"rejected":       s.storeRejected.Load(),
			"queue_depth":    cap(s.storeAdmit),
		}
	}
	if s.coord != nil {
		out["cluster"] = s.coord.StatsSnapshot()
	}
	return out
}

// RunRequest is the POST /v1/runs body. Zero fields take the same
// defaults as the icrsim flags they mirror.
type RunRequest struct {
	Benchmark     string  `json:"benchmark"`
	Scheme        string  `json:"scheme"`
	Instructions  uint64  `json:"instructions,omitempty"`
	Seed          int64   `json:"seed,omitempty"`
	DecayWindow   uint64  `json:"decay_window,omitempty"`
	Victim        string  `json:"victim,omitempty"`
	Distances     []int   `json:"distances,omitempty"`
	Replicas      int     `json:"replicas,omitempty"`
	LeaveReplicas bool    `json:"leave_replicas,omitempty"`
	WriteThrough  bool    `json:"write_through,omitempty"`
	FaultModel    string  `json:"fault_model,omitempty"`
	FaultProb     float64 `json:"fault_prob,omitempty"`
	FaultSeed     int64   `json:"fault_seed,omitempty"`
	// Sample switches the run to SMARTS-style sampled simulation; the
	// value uses the -sample flag syntax (config.ParseSample): "on", or
	// "period=N[,detail=N][,warmup=N][,conf=95]".
	Sample string `json:"sample,omitempty"`
	// Adapt attaches the ICR-ADAPT runtime replication controller; the
	// value uses the -adapt flag syntax (adapt.Parse): "decay", "ehc", or
	// "predictor=decay|ehc[,epoch=N][,hysteresis=N][,maxreplicas=N]
	// [,minwindow=N][,maxwindow=N]".
	Adapt string `json:"adapt,omitempty"`
	// TwoTier protects the second tier of the hierarchy; the value uses
	// the -twotier flag syntax (config.ParseTwoTier): "parity", "ecc",
	// "icr", "icr-ecc", or "protect=P|ECC[,replicate=BOOL][,victim=NAME]
	// [,decay=N][,cross=BOOL][,latency=N][,fault=MODEL][,prob=F]
	// [,faultseed=N]".
	TwoTier string `json:"twotier,omitempty"`
	// TimeoutMS bounds this request (further capped by the server's
	// RequestTimeout).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// RunResponse is the POST /v1/runs reply. Report carries its own schema
// field (metrics.ReportSchemaVersion); Source names the cache tier that
// produced it.
type RunResponse struct {
	Source string          `json:"source"`
	Report *metrics.Report `json:"report"`
}

// FigureRequest is the POST /v1/figures/{id} body.
type FigureRequest struct {
	Instructions uint64  `json:"instructions,omitempty"`
	Seed         int64   `json:"seed,omitempty"`
	Seeds        []int64 `json:"seeds,omitempty"`
	// Sample switches every simulation behind the figure to sampled mode
	// (same syntax as RunRequest.Sample).
	Sample    string `json:"sample,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// errorBody is every non-2xx JSON payload.
type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"draining": s.eng.Draining(),
	})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	release, ok := s.tryAdmit(w)
	if !ok {
		return
	}
	defer release()
	var req RunRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	run, err := buildRun(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	p := s.eng.Submit(ctx, config.Default(), run)
	rep, err := p.Wait()
	if err != nil {
		writeRunError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, RunResponse{Source: p.Source(), Report: rep})
}

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	release, ok := s.tryAdmit(w)
	if !ok {
		return
	}
	defer release()
	id := r.PathValue("id")
	if !experiments.Valid(id) {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown figure %q (GET /healthz is alive; valid ids: see experiments.IDs)", id))
		return
	}
	var req FigureRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	sample, err := config.ParseSample(req.Sample)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := experiments.MultiSeed(ctx, id, experiments.Options{
		Instructions: req.Instructions,
		Seed:         req.Seed,
		Sample:       sample,
		Runner:       s.eng,
	}, req.Seeds)
	if err != nil {
		writeRunError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// tryAdmit claims an admission slot or rejects the request. On success
// the caller must invoke the returned release exactly once.
func (s *Server) tryAdmit(w http.ResponseWriter) (release func(), ok bool) {
	if s.eng.Draining() {
		// A drain usually precedes a restart or a failover; a few seconds
		// is the honest hint.
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, errors.New("server draining"))
		return nil, false
	}
	select {
	case s.admit <- struct{}{}:
		s.admitted.Add(1)
		s.inflight.Add(1)
		return func() {
			s.inflight.Add(-1)
			<-s.admit
		}, true
	default:
		s.rejected.Add(1)
		// Queue-full is transient at simulation timescales: slots free as
		// soon as the next run settles.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("admission queue full (%d in flight); retry later", cap(s.admit)))
		return nil, false
	}
}

// requestContext derives the simulation context: the client's context,
// bounded by the server cap and the request's own timeout_ms.
func (s *Server) requestContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.reqTimeout
	if t := time.Duration(timeoutMS) * time.Millisecond; t > 0 && (d == 0 || t < d) {
		d = t
	}
	if d > 0 {
		return context.WithTimeout(r.Context(), d)
	}
	return context.WithCancel(r.Context())
}

// buildRun translates a RunRequest into a config.Run, mirroring the
// icrsim flag semantics.
func buildRun(req RunRequest) (config.Run, error) {
	if req.Benchmark == "" {
		return config.Run{}, errors.New("benchmark is required")
	}
	if req.Scheme == "" {
		return config.Run{}, errors.New("scheme is required")
	}
	scheme, err := core.SchemeByName(req.Scheme)
	if err != nil {
		return config.Run{}, err
	}
	run := config.NewRun(req.Benchmark, scheme)
	if req.Instructions > 0 {
		run.Instructions = req.Instructions
	}
	if req.Seed != 0 {
		run.Seed = req.Seed
	}
	run.Repl.DecayWindow = req.DecayWindow
	if req.Victim != "" {
		if run.Repl.Victim, err = core.ParseVictimPolicy(req.Victim); err != nil {
			return config.Run{}, err
		}
	}
	if len(req.Distances) > 0 {
		run.Repl.Distances = req.Distances
	}
	if req.Replicas > 0 {
		run.Repl.Replicas = req.Replicas
	}
	run.Repl.LeaveReplicas = req.LeaveReplicas
	run.WriteThrough = req.WriteThrough
	if run.Sample, err = config.ParseSample(req.Sample); err != nil {
		return config.Run{}, err
	}
	if run.Adapt, err = adapt.Parse(req.Adapt); err != nil {
		return config.Run{}, err
	}
	if run.TwoTier, err = config.ParseTwoTier(req.TwoTier); err != nil {
		return config.Run{}, err
	}
	if req.FaultProb > 0 {
		if req.FaultModel == "" {
			req.FaultModel = "random" // the icrsim -fault-model default
		}
		model, err := fault.ParseModel(req.FaultModel)
		if err != nil {
			return config.Run{}, err
		}
		run.Fault = config.FaultConfig{Model: model, Prob: req.FaultProb, Seed: req.FaultSeed}
	}
	return run, nil
}

// decodeBody parses a bounded JSON body; unknown fields are errors so
// typos fail loudly instead of silently simulating the default.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

// writeRunError maps simulation failures onto status codes: drain → 503
// (retry elsewhere/later), deadline → 504, anything else → 500.
func writeRunError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, runner.ErrDraining):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, context.Canceled):
		// The client went away; the status code is a formality.
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		// Every payload type here marshals; reaching this is a bug.
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	//icrvet:ignore droppederr a failed write means the client is gone; nothing to do
	w.Write(buf)
}
