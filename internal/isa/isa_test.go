package isa

import "testing"

func TestOpString(t *testing.T) {
	if OpLoad.String() != "load" {
		t.Errorf("OpLoad.String() = %q", OpLoad.String())
	}
	if Op(200).String() == "" {
		t.Error("unknown op should have a non-empty string")
	}
}

func TestOpClassification(t *testing.T) {
	for _, o := range []Op{OpLoad, OpStore} {
		if !o.IsMem() {
			t.Errorf("%v should be memory op", o)
		}
		if o.IsCtrl() {
			t.Errorf("%v should not be control op", o)
		}
	}
	for _, o := range []Op{OpBranch, OpJump, OpCall, OpReturn} {
		if !o.IsCtrl() {
			t.Errorf("%v should be control op", o)
		}
		if o.IsMem() {
			t.Errorf("%v should not be memory op", o)
		}
	}
	if OpInvalid.Valid() {
		t.Error("OpInvalid should not be Valid")
	}
	if !OpIntALU.Valid() || !OpReturn.Valid() {
		t.Error("defined ops should be Valid")
	}
	if Op(100).Valid() {
		t.Error("out-of-range op should not be Valid")
	}
}

func TestNextPC(t *testing.T) {
	cases := []struct {
		in   Inst
		want uint64
	}{
		{Inst{PC: 100, Op: OpIntALU}, 104},
		{Inst{PC: 100, Op: OpBranch, Taken: false, Target: 200}, 104},
		{Inst{PC: 100, Op: OpBranch, Taken: true, Target: 200}, 200},
		{Inst{PC: 100, Op: OpJump, Taken: true, Target: 48}, 48},
		{Inst{PC: 100, Op: OpLoad, Taken: true, Target: 200}, 104}, // non-ctrl ignores Taken
	}
	for _, c := range cases {
		if got := c.in.NextPC(); got != c.want {
			t.Errorf("NextPC(%+v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestSliceStream(t *testing.T) {
	insts := []Inst{
		{PC: 0, Op: OpIntALU},
		{PC: 4, Op: OpLoad, Addr: 64},
		{PC: 8, Op: OpBranch, Taken: true, Target: 0},
	}
	s := NewSliceStream(insts)
	for i := range insts {
		got, ok := s.Next()
		if !ok {
			t.Fatalf("Next %d: stream ended early", i)
		}
		if got != insts[i] {
			t.Fatalf("Next %d: got %+v, want %+v", i, got, insts[i])
		}
	}
	if _, ok := s.Next(); ok {
		t.Error("stream should be exhausted")
	}
	s.Reset()
	if got, ok := s.Next(); !ok || got.PC != 0 {
		t.Error("Reset should rewind the stream")
	}
}

func TestLimitStream(t *testing.T) {
	base := make([]Inst, 10)
	for i := range base {
		base[i] = Inst{PC: uint64(4 * i), Op: OpIntALU}
	}
	s := Limit(NewSliceStream(base), 3)
	var n int
	for {
		_, ok := s.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Errorf("limited stream yielded %d instructions, want 3", n)
	}
	// A second Next after exhaustion stays exhausted.
	if _, ok := s.Next(); ok {
		t.Error("exhausted limit stream should stay exhausted")
	}

	// Limit larger than the underlying stream.
	s2 := Limit(NewSliceStream(base[:2]), 100)
	n = 0
	for {
		_, ok := s2.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Errorf("limit beyond underlying length yielded %d, want 2", n)
	}
}
