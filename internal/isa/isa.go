// Package isa defines the abstract instruction set consumed by the timing
// model. It deliberately carries no architectural semantics beyond what a
// cycle-level out-of-order simulator needs: an operation class, register
// dependence distances, a memory address for loads/stores, and the resolved
// outcome for control transfers.
//
// The representation follows the trace-driven style of SimpleScalar's
// sim-outorder: control-flow outcomes are pre-resolved in the stream, and
// the core models the *timing* consequences (mispredictions, cache misses,
// structural hazards) rather than re-executing data computation.
package isa

import "fmt"

// Op identifies the functional class of an instruction. The classes match
// the functional-unit mix in the paper's Table 1 configuration.
type Op uint8

// Operation classes. The zero value is invalid so that an accidentally
// zeroed instruction is caught early.
const (
	OpInvalid  Op = iota
	OpIntALU      // 1-cycle integer operation
	OpIntMul      // integer multiply
	OpIntDiv      // integer divide (non-pipelined)
	OpFPALU       // floating-point add/sub/compare
	OpFPMul       // floating-point multiply
	OpFPDiv       // floating-point divide (non-pipelined)
	OpLoad        // memory read
	OpStore       // memory write
	OpBranch      // conditional branch
	OpJump        // unconditional direct jump
	OpCall        // function call (pushes return address)
	OpReturn      // function return (pops return address)
	opSentinel    // number of op classes + 1
)

// NumOps is the number of valid operation classes.
const NumOps = int(opSentinel) - 1

var opNames = [...]string{
	OpInvalid: "invalid",
	OpIntALU:  "ialu",
	OpIntMul:  "imul",
	OpIntDiv:  "idiv",
	OpFPALU:   "falu",
	OpFPMul:   "fmul",
	OpFPDiv:   "fdiv",
	OpLoad:    "load",
	OpStore:   "store",
	OpBranch:  "branch",
	OpJump:    "jump",
	OpCall:    "call",
	OpReturn:  "return",
}

// String returns the mnemonic for the op class.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined operation class.
func (o Op) Valid() bool { return o > OpInvalid && o < opSentinel }

// IsMem reports whether the op accesses data memory.
func (o Op) IsMem() bool { return o == OpLoad || o == OpStore }

// IsCtrl reports whether the op is a control transfer.
func (o Op) IsCtrl() bool {
	return o == OpBranch || o == OpJump || o == OpCall || o == OpReturn
}

// Inst is one dynamic instruction.
//
// Register dependences are encoded as *distances*: SrcDist1 == d means the
// instruction reads a value produced by the instruction d positions earlier
// in the dynamic stream. A distance of 0 means "no dependence" (or a
// dependence old enough that the value is surely available).
type Inst struct {
	// PC is the instruction address. Consecutive static instructions are
	// 4 bytes apart, as on a fixed-width RISC.
	PC uint64

	// Op is the functional class.
	Op Op

	// SrcDist1 and SrcDist2 are dynamic dependence distances to the
	// producers of the two source operands (0 = none).
	SrcDist1, SrcDist2 uint16

	// Addr is the effective address for loads and stores (byte address).
	Addr uint64

	// Size is the access size in bytes for loads and stores (1..8).
	Size uint8

	// Taken is the resolved direction for conditional branches; it is
	// true for jumps, calls, and returns.
	Taken bool

	// Target is the resolved target address for taken control transfers.
	Target uint64
}

// NextPC returns the address of the dynamically next instruction.
func (in *Inst) NextPC() uint64 {
	if in.Op.IsCtrl() && in.Taken {
		return in.Target
	}
	return in.PC + 4
}

// Stream supplies dynamic instructions in program order.
//
// Next returns the next instruction and true, or a zero Inst and false once
// the stream is exhausted. Implementations must be deterministic for a
// given construction so that experiments are reproducible.
type Stream interface {
	Next() (Inst, bool)
}

// SliceStream adapts a slice of instructions into a Stream. It is primarily
// useful in tests.
type SliceStream struct {
	insts []Inst
	pos   int
}

var _ Stream = (*SliceStream)(nil)

// NewSliceStream returns a Stream that yields the given instructions in
// order. The slice is not copied; the caller must not mutate it while the
// stream is in use.
func NewSliceStream(insts []Inst) *SliceStream {
	return &SliceStream{insts: insts}
}

// Next implements Stream.
func (s *SliceStream) Next() (Inst, bool) {
	if s.pos >= len(s.insts) {
		return Inst{}, false
	}
	in := s.insts[s.pos]
	s.pos++
	return in, true
}

// Reset rewinds the stream to the beginning.
func (s *SliceStream) Reset() { s.pos = 0 }

// LimitStream wraps a Stream and stops after n instructions.
type LimitStream struct {
	inner Stream
	left  uint64
}

var _ Stream = (*LimitStream)(nil)

// Limit returns a Stream that yields at most n instructions from inner.
func Limit(inner Stream, n uint64) *LimitStream {
	return &LimitStream{inner: inner, left: n}
}

// Next implements Stream.
func (s *LimitStream) Next() (Inst, bool) {
	if s.left == 0 {
		return Inst{}, false
	}
	in, ok := s.inner.Next()
	if !ok {
		s.left = 0
		return Inst{}, false
	}
	s.left--
	return in, true
}
