package config

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
)

// TwoTier configures protection for the second tier of the hierarchy (the
// unified L2, or a remote/CXL tier when ExtraLatency models the longer
// reach). The zero value disables the protected tier entirely: the L2
// stays the plain timing model and every existing report is unchanged.
type TwoTier struct {
	// Protect selects the baseline protection of tier lines (parity or
	// SEC-DED). 0 disables the protected tier.
	Protect core.Protection

	// Replicate enables in-tier ICR: tier fills replicate into dead or
	// invalid ways at distance sets/2, and the tier's recovery ladder
	// consults replicas before ECC or a memory refetch.
	Replicate bool

	// Victim selects the replica-placement victim policy inside the tier
	// (defaults to DeadOnly).
	Victim core.VictimPolicy

	// DecayWindow is the tier's dead-block decay window in cycles
	// (0 = dead as soon as the access completes, as in the paper's most
	// aggressive setting).
	DecayWindow uint64

	// CrossTier enables two-way cross-tier placement: L1 replication
	// shortfalls may park copies in dead tier space and tier shortfalls
	// may park copies in dead L1 space, with repairs priced at the far
	// tier's access cost. Requires Replicate.
	CrossTier bool

	// ExtraLatency is added to every tier access, modeling a remote/CXL
	// tier instead of an on-chip L2. It also prices cross-tier repairs:
	// recovering a word from the far tier costs that tier's reach.
	ExtraLatency uint64

	// Fault enables the tier's own transient-error injection, independent
	// of the L1 injector.
	Fault FaultConfig
}

// Enabled reports whether the protected second tier is requested at all.
func (t TwoTier) Enabled() bool { return t.Protect != 0 }

// Normalized canonicalizes the config: a disabled tier collapses to the
// zero value (so equal-after-defaulting runs share a pool shape), an
// enabled replicating tier gets the default victim policy, and injection
// requested by probability alone gets the default model.
func (t TwoTier) Normalized() TwoTier {
	if !t.Enabled() {
		return TwoTier{}
	}
	if !t.Replicate {
		t.Victim = 0
		t.DecayWindow = 0
		t.CrossTier = false
	} else if t.Victim == 0 {
		t.Victim = core.DeadOnly
	}
	if t.Fault.Prob <= 0 {
		t.Fault = FaultConfig{}
	} else if t.Fault.Model == 0 {
		t.Fault.Model = fault.Random
	}
	return t
}

// Validate reports contradictions a Normalized config cannot express.
func (t TwoTier) Validate() error {
	if !t.Enabled() {
		if t.Replicate || t.CrossTier || t.ExtraLatency != 0 || t.Fault.Prob != 0 {
			return fmt.Errorf("config: two-tier options set without a tier protection (use protect=parity or protect=ecc)")
		}
		return nil
	}
	if t.CrossTier && !t.Replicate {
		return fmt.Errorf("config: cross-tier placement requires in-tier replication (replicate=true)")
	}
	return nil
}

// Name returns a stable short label for the tier configuration: "off",
// "P", "ECC", "ICR-P", "ICR-ECC", with "+x" appended when cross-tier
// placement is on.
func (t TwoTier) Name() string {
	if !t.Enabled() {
		return "off"
	}
	name := t.Protect.String()
	if t.Replicate {
		name = "ICR-" + name
	}
	if t.CrossTier {
		name += "+x"
	}
	return name
}

// ParseTwoTier parses a -twotier spec. "" and "off" disable the tier.
// The shortcuts "parity", "ecc", "icr" (parity + in-tier replication),
// and "icr-ecc" expand to common configurations; otherwise the spec is a
// comma-separated key=value list with keys protect (parity|ecc),
// replicate (bool), victim (core victim policy), decay (cycles), cross
// (bool), latency (extra cycles), fault (injection model), prob
// (per-cycle probability), and faultseed (int64).
func ParseTwoTier(s string) (TwoTier, error) {
	switch s {
	case "", "off":
		return TwoTier{}, nil
	case "parity":
		return TwoTier{Protect: core.ParityProt}.Normalized(), nil
	case "ecc":
		return TwoTier{Protect: core.ECCProt}.Normalized(), nil
	case "icr":
		return TwoTier{Protect: core.ParityProt, Replicate: true}.Normalized(), nil
	case "icr-ecc":
		return TwoTier{Protect: core.ECCProt, Replicate: true}.Normalized(), nil
	}
	var t TwoTier
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return TwoTier{}, fmt.Errorf("config: two-tier spec %q: %q is not key=value", s, part)
		}
		var err error
		switch key {
		case "protect":
			t.Protect, err = core.ParseProtection(val)
		case "replicate":
			t.Replicate, err = strconv.ParseBool(val)
		case "victim":
			t.Victim, err = core.ParseVictimPolicy(val)
		case "decay":
			t.DecayWindow, err = strconv.ParseUint(val, 10, 64)
		case "cross":
			t.CrossTier, err = strconv.ParseBool(val)
		case "latency":
			t.ExtraLatency, err = strconv.ParseUint(val, 10, 64)
		case "fault":
			t.Fault.Model, err = fault.ParseModel(val)
		case "prob":
			t.Fault.Prob, err = strconv.ParseFloat(val, 64)
		case "faultseed":
			t.Fault.Seed, err = strconv.ParseInt(val, 10, 64)
		default:
			return TwoTier{}, fmt.Errorf("config: two-tier spec %q: unknown key %q", s, key)
		}
		if err != nil {
			return TwoTier{}, fmt.Errorf("config: two-tier spec %q: key %q: %w", s, key, err)
		}
	}
	if err := t.Validate(); err != nil {
		return TwoTier{}, err
	}
	return t.Normalized(), nil
}
