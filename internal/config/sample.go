package config

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSample parses the textual sampling spec every entry point shares
// (the icrsim/icrbench/icrd -sample flag and the icrd request field).
// "" disables sampling; "on" (or "default") selects the validated default
// geometry; otherwise the value is comma-separated key=value pairs:
// period, detail, warmup (all instruction counts), conf (confidence
// percent: 90, 95, or 99).
func ParseSample(v string) (SampleConfig, error) {
	var sc SampleConfig
	switch v {
	case "":
		return sc, nil
	case "on", "default":
		sc.Period = DefaultSamplePeriod
		return sc, nil
	}
	for _, part := range strings.Split(v, ",") {
		key, val, found := strings.Cut(strings.TrimSpace(part), "=")
		if !found {
			return sc, fmt.Errorf(`bad sample element %q: want key=value (or "on")`, part)
		}
		n, err := strconv.ParseUint(strings.TrimSpace(val), 10, 64)
		if err != nil {
			return sc, fmt.Errorf("bad sample value %q: %w", part, err)
		}
		switch strings.TrimSpace(key) {
		case "period":
			sc.Period = n
		case "detail":
			sc.Detail = n
		case "warmup":
			sc.Warmup = n
		case "conf":
			if n != 90 && n != 95 && n != 99 {
				return sc, fmt.Errorf("bad sample confidence %d: want 90, 95, or 99", n)
			}
			sc.Confidence = int(n)
		default:
			return sc, fmt.Errorf("unknown sample key %q (want period, detail, warmup, conf)", key)
		}
	}
	if !sc.Enabled() {
		return sc, fmt.Errorf("sample spec %q sets no period: sampling needs period=N (or \"on\")", v)
	}
	return sc, nil
}
