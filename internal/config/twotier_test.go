package config

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
)

func TestParseTwoTier(t *testing.T) {
	cases := []struct {
		spec string
		want TwoTier
	}{
		{"", TwoTier{}},
		{"off", TwoTier{}},
		{"parity", TwoTier{Protect: core.ParityProt}},
		{"ecc", TwoTier{Protect: core.ECCProt}},
		{"icr", TwoTier{Protect: core.ParityProt, Replicate: true, Victim: core.DeadOnly}},
		{"icr-ecc", TwoTier{Protect: core.ECCProt, Replicate: true, Victim: core.DeadOnly}},
		{
			"protect=P,replicate=true,victim=dead-first,decay=1000,cross=true,latency=40",
			TwoTier{
				Protect: core.ParityProt, Replicate: true, Victim: core.DeadFirst,
				DecayWindow: 1000, CrossTier: true, ExtraLatency: 40,
			},
		},
		// Injection by probability alone gets the default model — the CLI
		// contract the L1's -fault-prob/-fault-model pair has always had.
		{
			"protect=ecc,prob=1e-3,faultseed=3",
			TwoTier{
				Protect: core.ECCProt,
				Fault:   FaultConfig{Model: fault.Random, Prob: 1e-3, Seed: 3},
			},
		},
	}
	for _, tc := range cases {
		got, err := ParseTwoTier(tc.spec)
		if err != nil {
			t.Errorf("ParseTwoTier(%q): %v", tc.spec, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseTwoTier(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
}

func TestParseTwoTierRejects(t *testing.T) {
	for _, spec := range []string{
		"bogus",                  // not a shortcut, not key=value
		"protect=quantum",        // unknown protection
		"replicate=true",         // replication without a detector
		"protect=P,cross=true",   // cross-tier without replication
		"prob=1e-3",              // injection into a disabled tier
		"protect=P,window=1000",  // unknown key (it is "decay")
		"protect=P,decay=plenty", // bad integer
		"protect=P,fault=gamma",  // unknown injection model
	} {
		if _, err := ParseTwoTier(spec); err == nil {
			t.Errorf("ParseTwoTier(%q) accepted", spec)
		}
	}
}

func TestTwoTierNames(t *testing.T) {
	cases := []struct {
		tt   TwoTier
		want string
	}{
		{TwoTier{}, "off"},
		{TwoTier{Protect: core.ParityProt}, "P"},
		{TwoTier{Protect: core.ECCProt}, "ECC"},
		{TwoTier{Protect: core.ParityProt, Replicate: true}, "ICR-P"},
		{TwoTier{Protect: core.ECCProt, Replicate: true, CrossTier: true}, "ICR-ECC+x"},
	}
	for _, tc := range cases {
		if got := tc.tt.Name(); got != tc.want {
			t.Errorf("Name(%+v) = %q, want %q", tc.tt, got, tc.want)
		}
	}
}

func TestTwoTierNormalizedCollapsesDisabled(t *testing.T) {
	tt := TwoTier{Victim: core.DeadFirst, DecayWindow: 500}
	if got := tt.Normalized(); got != (TwoTier{}) {
		t.Errorf("disabled tier normalized to %+v, want zero value", got)
	}
	// Injection settings without a probability are inert state the pool
	// shape must not see.
	tt = TwoTier{Protect: core.ParityProt, Fault: FaultConfig{Model: fault.Direct, Seed: 9}}
	if got := tt.Normalized().Fault; got != (FaultConfig{}) {
		t.Errorf("prob-0 injection normalized to %+v, want zero value", got)
	}
}
