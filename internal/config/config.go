// Package config centralizes the paper's Table 1 machine configuration and
// the per-run experiment parameters shared by the simulator, the benchmark
// harness, and the CLI tools.
package config

import (
	"fmt"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/energy"
	"repro/internal/fault"
)

// Machine describes the simulated processor and memory hierarchy.
type Machine struct {
	CPU cpu.Config

	// Instruction L1: 16KB, direct-mapped, 32-byte blocks, 1 cycle.
	IL1Size, IL1Assoc, IL1Block int
	IL1Latency                  uint64

	// Data L1: 16KB, 4-way, 64-byte blocks, 1 cycle.
	DL1Size, DL1Assoc, DL1Block int
	DL1Latency                  uint64

	// L2: 256KB unified, 4-way, 64-byte blocks, 6 cycles.
	L2Size, L2Assoc, L2Block int
	L2Latency                uint64

	// Memory: 100 cycles.
	MemLatency uint64
}

// Default returns the paper's Table 1 configuration.
func Default() Machine {
	return Machine{
		CPU:     cpu.DefaultConfig(),
		IL1Size: 16 << 10, IL1Assoc: 1, IL1Block: 32, IL1Latency: 1,
		DL1Size: 16 << 10, DL1Assoc: 4, DL1Block: 64, DL1Latency: 1,
		L2Size: 256 << 10, L2Assoc: 4, L2Block: 64, L2Latency: 6,
		MemLatency: 100,
	}
}

// Validate reports obviously broken machine parameters.
func (m *Machine) Validate() error {
	if m.DL1Size <= 0 || m.DL1Assoc <= 0 || m.DL1Block <= 0 {
		return fmt.Errorf("config: bad dL1 geometry")
	}
	if m.L2Size <= 0 || m.IL1Size <= 0 {
		return fmt.Errorf("config: bad cache sizes")
	}
	return nil
}

// DL1Sets returns the number of data-L1 sets.
func (m *Machine) DL1Sets() int { return m.DL1Size / (m.DL1Assoc * m.DL1Block) }

// FaultConfig enables transient-error injection for a run.
type FaultConfig struct {
	Model fault.Model
	// Prob is the per-cycle injection probability (0 disables).
	Prob float64
	Seed int64
}

// Run describes one simulation: a benchmark under a scheme with replication
// parameters, an instruction budget, and optional fault injection.
type Run struct {
	Benchmark string
	Scheme    core.Scheme
	Repl      core.ReplConfig

	// Instructions is the commit budget (the paper runs 500M; the
	// default harness uses a smaller budget that reaches steady state).
	Instructions uint64
	Seed         int64

	// WriteThrough switches the dL1 to write-through with a coalescing
	// write buffer (the §5.8 comparison).
	WriteThrough       bool
	WriteBufferEntries int

	Fault  FaultConfig
	Energy energy.Params

	// Hints, if non-nil, is the software replication-direction policy
	// (core.HintPolicy; the paper's §6 future work).
	Hints core.HintPolicy

	// DupCacheKB, when > 0, attaches a separate Kim & Somani-style
	// duplication cache of this many KB to the dL1 (the baseline the
	// paper positions ICR against; internal/rcache).
	DupCacheKB int

	// ScrubInterval, when > 0, runs a background scrubber that verifies
	// ScrubLines dL1 lines every ScrubInterval cycles (Saleh-style
	// scrubbing; the paper's reference [21]).
	ScrubInterval uint64
	// ScrubLines is the number of lines verified per scrub step
	// (default 1).
	ScrubLines int

	// Prefetch enables next-block prefetching into dead lines (the
	// competing use of dead real estate from the prefetching literature
	// the paper builds on).
	Prefetch bool

	// Sample, when enabled (Period > 0), switches the run to SMARTS-style
	// sampled simulation: detailed cycle-accurate windows alternate with
	// functional warming, and timing is extrapolated with confidence
	// intervals (metrics.SamplingStats). Zero value = exact simulation.
	Sample SampleConfig

	// Adapt, when enabled (a predictor is selected), attaches the
	// ICR-ADAPT runtime controller: replication knobs are retuned online
	// from epoch observations (internal/adapt) and the run reports under
	// the ICR-ADAPT-* scheme family with an metrics.AdaptiveStats block.
	// Zero value = static run.
	Adapt adapt.Config

	// TwoTier, when enabled (a tier protection is selected), protects the
	// second tier of the hierarchy — the unified L2, or a remote tier
	// when ExtraLatency is set — with its own parity/ECC, decay-based
	// in-tier replication, fault injection, and optional cross-tier
	// replica placement against the L1. Zero value = plain timing L2,
	// byte-identical to the single-tier simulator.
	TwoTier TwoTier
}

// SampleConfig parameterizes SMARTS-style sampled simulation. The run is
// tiled into units of Period instructions; each unit is functional warming
// (Period - Warmup - Detail instructions, updating caches, replication
// state, decay counters, and branch predictors but skipping out-of-order
// timing) followed by a detailed warm-up window of Warmup instructions
// (simulated cycle-accurately but discarded from timing estimates) and a
// measured detailed window of Detail instructions.
type SampleConfig struct {
	// Period is the sampling-unit length in instructions. 0 disables
	// sampling (exact simulation).
	Period uint64
	// Detail is the measured detailed-window length per unit
	// (0 = DefaultSampleDetail).
	Detail uint64
	// Warmup is the detailed warm-up run before each measured window,
	// excluded from timing estimates (0 = DefaultSampleWarmup).
	Warmup uint64
	// Confidence is the percent confidence level of the reported
	// intervals: 90, 95, or 99 (0 = 95).
	Confidence int
}

// Default sampling-window geometry: a 50K-instruction unit with a
// 1K-instruction measured window behind a 400-instruction detailed
// warm-up keeps the detailed fraction at 2.8% — small enough that
// throughput is dominated by the warming rate — while taking twice the
// windows of a 100K unit at the same cost, which is what bounds the
// sampling error against the workloads' phase structure (the validation
// table in EXPERIMENTS.md: worst-case IPC error 0.9% over an 8M-instruction
// budget, versus 2.3% for a 100K/2K/500 unit).
const (
	DefaultSamplePeriod = 50_000
	DefaultSampleDetail = 1_000
	DefaultSampleWarmup = 400
	DefaultSampleConf   = 95
)

// Enabled reports whether sampling is requested at all.
func (s SampleConfig) Enabled() bool { return s.Period > 0 }

// Normalized fills defaulted fields. It does not validate geometry; a
// period too short for its windows degrades to exact simulation (see
// sim.PlanWindows).
func (s SampleConfig) Normalized() SampleConfig {
	if !s.Enabled() {
		return SampleConfig{}
	}
	if s.Detail == 0 {
		s.Detail = DefaultSampleDetail
	}
	if s.Warmup == 0 {
		s.Warmup = DefaultSampleWarmup
	}
	if s.Confidence == 0 {
		s.Confidence = DefaultSampleConf
	}
	return s
}

// DefaultInstructions is the default per-run commit budget used by the
// harness: large enough for every benchmark's steady-state cache and
// predictor behaviour at a laptop-scale runtime. (The paper runs 500M
// instructions per configuration on SimpleScalar; pass a larger budget to
// reproduce that scale.)
const DefaultInstructions = 1_000_000

// NewRun returns a Run for the benchmark × scheme with harness defaults:
// the default instruction budget, seed 1, a single vertical replica with a
// dead-only victim policy and the aggressive (window 0) decay the paper
// uses for §5.1-5.2, and CACTI-class energy parameters.
func NewRun(benchmark string, scheme core.Scheme) Run {
	return Run{
		Benchmark:          benchmark,
		Scheme:             scheme,
		Instructions:       DefaultInstructions,
		Seed:               1,
		WriteBufferEntries: 8,
		Energy:             energy.DefaultParams(),
	}
}

// Name returns a stable label for the run ("benchmark/scheme").
func (r *Run) Name() string { return r.Benchmark + "/" + r.Scheme.Name() }
