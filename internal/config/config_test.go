package config

import (
	"testing"

	"repro/internal/core"
)

func TestDefaultMatchesTable1(t *testing.T) {
	m := Default()
	if m.IL1Size != 16<<10 || m.IL1Assoc != 1 || m.IL1Block != 32 {
		t.Errorf("iL1 geometry wrong: %+v", m)
	}
	if m.DL1Size != 16<<10 || m.DL1Assoc != 4 || m.DL1Block != 64 {
		t.Errorf("dL1 geometry wrong: %+v", m)
	}
	if m.L2Size != 256<<10 || m.L2Assoc != 4 || m.L2Block != 64 || m.L2Latency != 6 {
		t.Errorf("L2 geometry wrong: %+v", m)
	}
	if m.MemLatency != 100 {
		t.Errorf("memory latency = %d, want 100", m.MemLatency)
	}
	if m.CPU.IssueWidth != 4 || m.CPU.RUUSize != 16 || m.CPU.LSQSize != 8 {
		t.Errorf("core parameters wrong: %+v", m.CPU)
	}
	if m.CPU.IntALUs != 4 || m.CPU.IntMulDiv != 1 || m.CPU.FPALUs != 4 || m.CPU.FPMulDiv != 1 {
		t.Errorf("FU mix wrong: %+v", m.CPU)
	}
	if m.CPU.BranchPenalty != 3 {
		t.Errorf("misprediction penalty = %d, want 3", m.CPU.BranchPenalty)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("default machine invalid: %v", err)
	}
}

func TestDL1Sets(t *testing.T) {
	m := Default()
	if got := m.DL1Sets(); got != 64 {
		t.Errorf("DL1Sets = %d, want 64 (16KB / (4 * 64B))", got)
	}
}

func TestValidateRejectsBadGeometry(t *testing.T) {
	m := Default()
	m.DL1Size = 0
	if err := m.Validate(); err == nil {
		t.Error("zero dL1 size should be invalid")
	}
	m = Default()
	m.L2Size = -1
	if err := m.Validate(); err == nil {
		t.Error("negative L2 size should be invalid")
	}
}

func TestNewRunDefaults(t *testing.T) {
	r := NewRun("vpr", core.BaseP())
	if r.Benchmark != "vpr" || r.Scheme.Name() != "BaseP" {
		t.Errorf("run = %+v", r)
	}
	if r.Instructions != DefaultInstructions || r.Seed != 1 {
		t.Errorf("defaults wrong: %+v", r)
	}
	if r.WriteBufferEntries != 8 {
		t.Errorf("write buffer entries = %d, want 8 (§5.8)", r.WriteBufferEntries)
	}
	if r.Energy.L1Read == 0 {
		t.Error("energy params not defaulted")
	}
	if got := r.Name(); got != "vpr/BaseP" {
		t.Errorf("Name = %q", got)
	}
}
