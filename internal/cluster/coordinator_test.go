package cluster

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/runner"
)

// stubReport builds a deterministic report from the run, mimicking what a
// pure simulation does: same input, same output, on any worker.
func stubReport(r config.Run) *metrics.Report {
	return &metrics.Report{
		Benchmark:    r.Benchmark,
		Scheme:       r.Scheme.Name(),
		Instructions: r.Instructions,
		Cycles:       uint64(r.Seed)*1000 + r.Instructions,
	}
}

func newTestCoordinator(t *testing.T, o Options) *Coordinator {
	t.Helper()
	c := New(o)
	t.Cleanup(c.Close)
	return c
}

// leaseOne pulls a single task for workerID, failing the test on error or
// an empty grant within the wait.
func leaseOne(t *testing.T, c *Coordinator, workerID string, wait time.Duration) Task {
	t.Helper()
	task, ok, err := c.Lease(context.Background(), workerID, wait)
	if err != nil {
		t.Fatalf("lease: %v", err)
	}
	if !ok {
		t.Fatalf("lease: no task within %s", wait)
	}
	return task
}

// runInputs returns distinct wire-safe inputs per seed.
func runInputs(seed int64) (config.Machine, config.Run) {
	m := config.Default()
	r := config.NewRun("vpr", core.BaseP())
	r.Instructions = 50000
	r.Seed = seed
	return m, r
}

func TestCoordinatorExecuteRoundTrip(t *testing.T) {
	c := newTestCoordinator(t, Options{LeaseTTL: time.Second})
	m, r := runInputs(1)

	done := make(chan struct{})
	go func() {
		defer close(done)
		task := leaseOne(t, c, "w1", 2*time.Second)
		gotM, gotR, err := task.Spec.DecodeSpec()
		if err != nil {
			t.Errorf("decode: %v", err)
			return
		}
		key, _ := runner.KeyFor(gotM, gotR)
		if err := c.Complete(CompleteRequest{
			Worker: "w1", Task: task.ID, Key: key.String(), Report: stubReport(gotR),
		}); err != nil {
			t.Errorf("complete: %v", err)
		}
	}()

	rep, tier, err := c.Execute(context.Background(), m, r)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if tier != runner.SourceRemote {
		t.Errorf("tier = %q, want %q", tier, runner.SourceRemote)
	}
	if want := stubReport(r); rep == nil || *rep != *want {
		t.Errorf("report = %+v, want %+v", rep, want)
	}
	<-done

	stats := c.StatsSnapshot()
	if len(stats.Workers) != 1 || stats.Workers[0].Worker != "w1" {
		t.Fatalf("worker stats = %+v, want one row for w1", stats.Workers)
	}
	if got := stats.Workers[0].Progress.Completed; got != 1 {
		t.Errorf("w1 completed = %d, want 1", got)
	}
}

// TestCoordinatorReassignsExpiredLease: a worker that leases a task and
// goes silent must lose it; the task is re-leased to whoever asks next and
// the first worker's late upload is dropped as a duplicate.
func TestCoordinatorReassignsExpiredLease(t *testing.T) {
	c := newTestCoordinator(t, Options{
		LeaseTTL:  30 * time.Millisecond,
		RetryBase: time.Millisecond,
		RetryMax:  2 * time.Millisecond,
	})
	m, r := runInputs(2)

	var execErr error
	var rep *metrics.Report
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rep, _, execErr = c.Execute(context.Background(), m, r)
	}()

	dead := leaseOne(t, c, "zombie", time.Second)
	// zombie never renews; the lease expires and the sweeper re-queues it.
	task := leaseOne(t, c, "healthy", 2*time.Second)
	if task.ID != dead.ID {
		t.Fatalf("reassigned task %s, want %s", task.ID, dead.ID)
	}
	if task.Attempt != dead.Attempt+1 {
		t.Errorf("reassigned attempt = %d, want %d", task.Attempt, dead.Attempt+1)
	}
	if err := c.Complete(CompleteRequest{
		Worker: "healthy", Task: task.ID, Key: task.ID, Report: stubReport(r),
	}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if execErr != nil {
		t.Fatalf("Execute: %v", execErr)
	}
	if want := stubReport(r); *rep != *want {
		t.Errorf("report = %+v, want %+v", rep, want)
	}

	// The zombie wakes up and uploads anyway: acknowledged, dropped.
	if err := c.Complete(CompleteRequest{
		Worker: "zombie", Task: dead.ID, Key: dead.ID, Report: stubReport(r),
	}); err != nil {
		t.Fatalf("zombie upload: %v", err)
	}
	stats := c.StatsSnapshot()
	if stats.Reassigned == 0 {
		t.Error("Reassigned = 0, want > 0")
	}
	if stats.Duplicate == 0 {
		t.Error("Duplicate = 0 after zombie upload, want > 0")
	}
}

// TestCoordinatorRetriesTransientFailures: a transient failure re-queues
// with backoff until MaxAttempts, then surfaces; a permanent failure
// surfaces immediately.
func TestCoordinatorFailureHandling(t *testing.T) {
	t.Run("transient-then-success", func(t *testing.T) {
		c := newTestCoordinator(t, Options{
			LeaseTTL: time.Second, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
			MaxAttempts: 3,
		})
		m, r := runInputs(3)
		var wg sync.WaitGroup
		var rep *metrics.Report
		var execErr error
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep, _, execErr = c.Execute(context.Background(), m, r)
		}()
		task := leaseOne(t, c, "w1", time.Second)
		if err := c.Complete(CompleteRequest{
			Worker: "w1", Task: task.ID, Key: task.ID, Error: "overloaded", Transient: true,
		}); err != nil {
			t.Fatal(err)
		}
		retry := leaseOne(t, c, "w1", time.Second)
		if retry.Attempt != 2 {
			t.Errorf("retry attempt = %d, want 2", retry.Attempt)
		}
		if err := c.Complete(CompleteRequest{
			Worker: "w1", Task: retry.ID, Key: retry.ID, Report: stubReport(r),
		}); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		if execErr != nil || rep == nil {
			t.Fatalf("Execute after retry: rep=%v err=%v", rep, execErr)
		}
		if got := c.StatsSnapshot().Retried; got != 1 {
			t.Errorf("Retried = %d, want 1", got)
		}
	})

	t.Run("transient-exhausts-attempts", func(t *testing.T) {
		c := newTestCoordinator(t, Options{
			LeaseTTL: time.Second, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond,
			MaxAttempts: 2,
		})
		m, r := runInputs(4)
		var wg sync.WaitGroup
		var execErr error
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, execErr = c.Execute(context.Background(), m, r)
		}()
		for i := 0; i < 2; i++ {
			task := leaseOne(t, c, "w1", time.Second)
			if err := c.Complete(CompleteRequest{
				Worker: "w1", Task: task.ID, Key: task.ID, Error: "still overloaded", Transient: true,
			}); err != nil {
				t.Fatal(err)
			}
		}
		wg.Wait()
		if execErr == nil || !strings.Contains(execErr.Error(), "still overloaded") {
			t.Fatalf("Execute = %v, want the exhausted transient error", execErr)
		}
	})

	t.Run("permanent-fails-immediately", func(t *testing.T) {
		c := newTestCoordinator(t, Options{LeaseTTL: time.Second, MaxAttempts: 5})
		m, r := runInputs(5)
		var wg sync.WaitGroup
		var execErr error
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, execErr = c.Execute(context.Background(), m, r)
		}()
		task := leaseOne(t, c, "w1", time.Second)
		if err := c.Complete(CompleteRequest{
			Worker: "w1", Task: task.ID, Key: task.ID, Error: "bad scheme",
		}); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		if execErr == nil || !strings.Contains(execErr.Error(), "bad scheme") {
			t.Fatalf("Execute = %v, want the permanent error", execErr)
		}
	})
}

// TestCoordinatorDriftTripwire: an upload whose recomputed key differs
// from the task's content address fails the task loudly.
func TestCoordinatorDriftTripwire(t *testing.T) {
	c := newTestCoordinator(t, Options{LeaseTTL: time.Second})
	m, r := runInputs(6)
	var wg sync.WaitGroup
	var execErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, execErr = c.Execute(context.Background(), m, r)
	}()
	task := leaseOne(t, c, "w1", time.Second)
	if err := c.Complete(CompleteRequest{
		Worker: "w1", Task: task.ID,
		Key:    strings.Repeat("ab", 32), // a different hash: the decoded spec drifted
		Report: stubReport(r),
	}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if execErr == nil || !strings.Contains(execErr.Error(), "wire drift") {
		t.Fatalf("Execute = %v, want a wire-drift error", execErr)
	}
	if got := c.StatsSnapshot().DriftErrs; got != 1 {
		t.Errorf("DriftErrs = %d, want 1", got)
	}
}

// TestCoordinatorDrain: draining fails queued tasks with ErrDraining,
// rejects new submissions, refuses leases — but a task already leased may
// still complete and deliver its result.
func TestCoordinatorDrain(t *testing.T) {
	c := newTestCoordinator(t, Options{LeaseTTL: time.Second})
	mLeased, rLeased := runInputs(7)
	mQueued, rQueued := runInputs(8)

	var wg sync.WaitGroup
	var leasedRep *metrics.Report
	var leasedErr, queuedErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		leasedRep, _, leasedErr = c.Execute(context.Background(), mLeased, rLeased)
	}()
	task := leaseOne(t, c, "w1", time.Second) // rLeased is now in flight
	go func() {
		defer wg.Done()
		_, _, queuedErr = c.Execute(context.Background(), mQueued, rQueued)
	}()
	// Wait until the second task is queued before draining.
	for i := 0; c.StatsSnapshot().Queued == 0; i++ {
		if i > 1000 {
			t.Fatal("second task never queued")
		}
		time.Sleep(time.Millisecond)
	}

	c.Drain()

	if _, _, err := c.Execute(context.Background(), mQueued, rQueued); !errors.Is(err, runner.ErrDraining) {
		t.Errorf("Execute during drain = %v, want ErrDraining", err)
	}
	if _, _, err := c.Lease(context.Background(), "w1", 0); !errors.Is(err, runner.ErrDraining) {
		t.Errorf("Lease during drain = %v, want ErrDraining", err)
	}

	// The leased task still renews and uploads.
	if _, ok := c.Renew("w1", task.ID); !ok {
		t.Error("renew of an in-flight lease refused during drain")
	}
	if err := c.Complete(CompleteRequest{
		Worker: "w1", Task: task.ID, Key: task.ID, Report: stubReport(rLeased),
	}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if leasedErr != nil || leasedRep == nil {
		t.Errorf("in-flight task during drain: rep=%v err=%v, want success", leasedRep, leasedErr)
	}
	if !errors.Is(queuedErr, runner.ErrDraining) {
		t.Errorf("queued task during drain = %v, want ErrDraining", queuedErr)
	}
}

// TestCoordinatorLocalFallback: inputs that cannot be serialized execute
// through Options.Local instead of the fleet.
func TestCoordinatorLocalFallback(t *testing.T) {
	var localCalls int
	c := newTestCoordinator(t, Options{
		LeaseTTL: time.Second,
		Local: func(ctx context.Context, m config.Machine, r config.Run) (*metrics.Report, error) {
			localCalls++
			return stubReport(r), nil
		},
	})
	m, r := runInputs(9)
	m.CPU.EachCycle = func(uint64) {} // opaque: not wire-safe
	rep, tier, err := c.Execute(context.Background(), m, r)
	if err != nil {
		t.Fatal(err)
	}
	if tier != runner.SourceSimulated {
		t.Errorf("tier = %q, want %q", tier, runner.SourceSimulated)
	}
	if localCalls != 1 || rep == nil {
		t.Errorf("local fallback: calls=%d rep=%v", localCalls, rep)
	}
}

// TestCoordinatorCoalescesIdenticalSubmissions: two Executes of one key
// produce one task; both get the report (as distinct copies).
func TestCoordinatorCoalescesIdenticalSubmissions(t *testing.T) {
	c := newTestCoordinator(t, Options{LeaseTTL: time.Second})
	m, r := runInputs(10)

	var wg sync.WaitGroup
	reps := make([]*metrics.Report, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reps[i], _, errs[i] = c.Execute(context.Background(), m, r)
		}(i)
	}
	// Both submissions must be attached to the one task before it is
	// leased and settled; otherwise the latecomer enqueues a fresh task
	// with nobody left to serve it.
	bothAttached := func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		for _, tk := range c.tasks {
			if tk.waiters == 2 {
				return true
			}
		}
		return false
	}
	for i := 0; !bothAttached(); i++ {
		if i > 2000 {
			t.Fatal("submissions never coalesced onto one task")
		}
		time.Sleep(time.Millisecond)
	}
	task := leaseOne(t, c, "w1", 2*time.Second)
	if err := c.Complete(CompleteRequest{
		Worker: "w1", Task: task.ID, Key: task.ID, Report: stubReport(r),
	}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	// No second task may exist.
	if _, ok, err := c.Lease(context.Background(), "w1", 0); err != nil || ok {
		t.Fatalf("second lease: ok=%v err=%v, want empty queue", ok, err)
	}
	for i := 0; i < 2; i++ {
		if errs[i] != nil || reps[i] == nil {
			t.Fatalf("submission %d: rep=%v err=%v", i, reps[i], errs[i])
		}
	}
	if reps[0] == reps[1] {
		t.Error("coalesced submissions share one *Report; each needs its own copy")
	}
}
