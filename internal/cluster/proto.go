// Package cluster turns icrd into the coordinator of a simulation fleet:
// remote icrworker processes register over HTTP/JSON, pull leased tasks,
// execute them with the ordinary local engine, and upload the resulting
// metrics.Report. The coordinator plugs into internal/runner behind the
// Executor seam, so everything above it — experiment drivers, figure CSVs,
// the memo/disk cache tiers — behaves exactly as in single-node mode.
//
// Correctness model:
//
//   - Content addressing: a task's ID is runner.KeyFor's SHA-256 of the
//     full (Machine, Run) input. Workers recompute the key from the
//     decoded task and refuse on mismatch, so a wire-format field that
//     stops round-tripping turns into a loud error, never a silently
//     different simulation.
//   - At-least-once + idempotent: a lease that expires (worker crash,
//     partition, slow machine) is reassigned, so one task may execute on
//     several workers. Simulation is a pure function of its inputs, so
//     every execution yields the identical report; the first upload wins
//     and later ones are acknowledged and dropped. Results flow through
//     the runner's content-addressed cache tiers, so the disk store
//     persists a fleet result exactly once.
//   - Determinism: the coordinator returns reports to the runner, which
//     preserves submission-order collection; figure output is
//     byte-identical to a single-node run no matter which worker ran
//     which task or how many leases expired along the way.
//   - Backoff: transiently failed tasks (worker timeout, lease expiry)
//     are re-queued with exponential backoff plus jitter, capped at
//     MaxAttempts before the error is surfaced to the submitter.
//   - Drain: Coordinator.Drain stops granting leases and fails queued
//     tasks with runner.ErrDraining; leased tasks may still renew and
//     upload, so SIGTERM lets the fleet finish in-flight work.
package cluster

import (
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/metrics"
	"repro/internal/runner"
)

// Wire paths (mounted on icrd's mux; see Coordinator.Handler).
const (
	PathRegister  = "/cluster/v1/register"
	PathHeartbeat = "/cluster/v1/heartbeat"
	PathLease     = "/cluster/v1/lease"
	PathRenew     = "/cluster/v1/renew"
	PathComplete  = "/cluster/v1/complete"
)

// RegisterRequest announces a worker to the coordinator. Workers
// re-register freely (process restart, coordinator restart): registration
// is an upsert.
type RegisterRequest struct {
	Worker string `json:"worker"`
	// Slots is the worker's concurrent task capacity (informational,
	// surfaced in the coordinator's stats).
	Slots int `json:"slots,omitempty"`
}

// RegisterResponse tells the worker the coordinator's timing contract.
type RegisterResponse struct {
	// LeaseMS is the lease duration; workers must renew well within it.
	LeaseMS int64 `json:"lease_ms"`
	// HeartbeatMS is how often the worker should heartbeat.
	HeartbeatMS int64 `json:"heartbeat_ms"`
}

// HeartbeatRequest keeps a worker's registration alive between leases.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
}

// HeartbeatResponse carries coordinator state back on the heartbeat.
type HeartbeatResponse struct {
	// Draining is true once the coordinator stops granting leases; a
	// worker may use it to finish up and exit.
	Draining bool `json:"draining"`
}

// LeaseRequest asks for one task. The coordinator holds the request open
// for up to WaitMS when the queue is empty (long poll), so idle workers
// learn about new work without a tight poll loop.
type LeaseRequest struct {
	Worker string `json:"worker"`
	WaitMS int64  `json:"wait_ms,omitempty"`
}

// LeaseResponse carries the granted task. An empty queue is a 204, not a
// LeaseResponse.
type LeaseResponse struct {
	Task Task `json:"task"`
}

// Task is one leased unit of work.
type Task struct {
	// ID is the content address: runner.KeyFor(Machine, Run) in hex.
	ID string `json:"id"`
	// Attempt is the 1-based dispatch attempt (diagnostics; retries and
	// lease reassignments increment it).
	Attempt int `json:"attempt"`
	// LeaseMS is the lease duration granted with this task.
	LeaseMS int64 `json:"lease_ms"`
	// Spec is the serialized simulation input.
	Spec Spec `json:"spec"`
}

// RenewRequest extends a lease mid-execution.
type RenewRequest struct {
	Worker string `json:"worker"`
	Task   string `json:"task"`
}

// RenewResponse confirms the extension. A lost lease (expired and
// reassigned, or task settled) is a 410, telling the worker to abandon
// the execution.
type RenewResponse struct {
	LeaseMS int64 `json:"lease_ms"`
}

// CompleteRequest uploads a task result: exactly one of Report or Error
// is set.
type CompleteRequest struct {
	Worker string `json:"worker"`
	Task   string `json:"task"`
	// Key is the worker's recomputed content address of the decoded spec.
	// The coordinator rejects the result on mismatch — the wire-drift
	// tripwire.
	Key    string          `json:"key,omitempty"`
	Report *metrics.Report `json:"report,omitempty"`
	Error  string          `json:"error,omitempty"`
	// Transient marks an error worth retrying on another lease (worker
	// overload, local timeout) as opposed to a deterministic simulation
	// failure that would recur anywhere.
	Transient bool `json:"transient,omitempty"`
}

// CompleteResponse acknowledges the upload (idempotent: completing an
// already-settled or unknown task also acknowledges).
type CompleteResponse struct{}

// Spec serializes one (config.Machine, config.Run) pair. The wire structs
// embed the real configuration structs so every serializable field —
// including ones added after this package was written — rides along
// automatically; only the unserializable members (function hooks, the
// HintPolicy interface) are shadowed out and, where meaningful, re-encoded
// explicitly. The worker-side key recomputation (see Task.ID) guards the
// remaining drift surface at runtime.
type Spec struct {
	Machine wireMachine `json:"machine"`
	Run     wireRun     `json:"run"`
}

// wireCPU is cpu.Config with the function hooks shadowed out. The shadow
// fields reuse the embedded fields' names so encoding/json resolves the
// conflict to the (serializable) outer field at every depth.
type wireCPU struct {
	cpu.Config
	EachCycle *struct{} `json:"EachCycle,omitempty"`
	Halt      *struct{} `json:"Halt,omitempty"`
}

// wireMachine is config.Machine with the CPU replaced by its wire form.
type wireMachine struct {
	config.Machine
	CPU wireCPU `json:"CPU"`
}

// wireRun is config.Run with the HintPolicy interface replaced by a tagged
// union of the known implementations.
type wireRun struct {
	config.Run
	Hints *wireHints `json:"Hints,omitempty"`
}

// Hint-policy kinds on the wire.
const (
	hintsAll    = "all"
	hintsRanges = "ranges"
)

// wireHints encodes the known core.HintPolicy implementations.
type wireHints struct {
	Kind string `json:"kind"`
	// Ranges carries the *core.RangePolicy payload for Kind "ranges".
	Ranges *core.RangePolicy `json:"ranges,omitempty"`
}

// EncodeSpec serializes a simulation input and returns its content
// address. ok is false when the input cannot go on the wire — it carries a
// function hook or an unknown HintPolicy — exactly the runs runner.KeyFor
// refuses to fingerprint; such runs must execute locally.
func EncodeSpec(m config.Machine, r config.Run) (Spec, runner.Key, bool) {
	key, ok := runner.KeyFor(m, r)
	if !ok {
		return Spec{}, runner.Key{}, false
	}
	var hints *wireHints
	switch pol := r.Hints.(type) {
	case nil:
	case core.ReplicateAll:
		hints = &wireHints{Kind: hintsAll}
	case *core.RangePolicy:
		if pol != nil {
			hints = &wireHints{Kind: hintsRanges, Ranges: pol}
		}
	default:
		// Unreachable while KeyFor and this switch list the same
		// implementations, but a new policy added to one and not the
		// other must degrade to local execution, not a mis-encoded task.
		return Spec{}, runner.Key{}, false
	}
	return Spec{
		Machine: wireMachine{Machine: m, CPU: wireCPU{Config: m.CPU}},
		Run:     wireRun{Run: r, Hints: hints},
	}, key, true
}

// DecodeSpec reconstructs the simulation input from its wire form.
func (s Spec) DecodeSpec() (config.Machine, config.Run, error) {
	m := s.Machine.Machine
	m.CPU = s.Machine.CPU.Config
	r := s.Run.Run
	r.Hints = nil
	if h := s.Run.Hints; h != nil {
		switch h.Kind {
		case hintsAll:
			r.Hints = core.ReplicateAll{}
		case hintsRanges:
			if h.Ranges == nil {
				return config.Machine{}, config.Run{}, errProto("hints kind %q without payload", h.Kind)
			}
			r.Hints = h.Ranges
		default:
			return config.Machine{}, config.Run{}, errProto("unknown hints kind %q", h.Kind)
		}
	}
	return m, r, nil
}
