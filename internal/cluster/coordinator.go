package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/sim"
)

// Defaults for Options.
const (
	DefaultLeaseTTL    = 15 * time.Second
	DefaultMaxAttempts = 5
	DefaultRetryBase   = 250 * time.Millisecond
	DefaultRetryMax    = 10 * time.Second
	DefaultWorkerTTL   = time.Minute
)

// Options configure a Coordinator.
type Options struct {
	// LeaseTTL is how long a worker may hold a task without renewing
	// before it is reassigned. <= 0 means DefaultLeaseTTL.
	LeaseTTL time.Duration

	// MaxAttempts bounds dispatch attempts (first lease + reassignments +
	// transient-failure retries) before the task fails for good. <= 0
	// means DefaultMaxAttempts.
	MaxAttempts int

	// RetryBase and RetryMax shape the exponential backoff applied before
	// a task is eligible for re-lease after a transient failure or lease
	// expiry. <= 0 means the defaults.
	RetryBase time.Duration
	RetryMax  time.Duration

	// WorkerTTL is how long a silent worker (no lease, renew, heartbeat,
	// or upload) stays listed in Stats. <= 0 means DefaultWorkerTTL.
	WorkerTTL time.Duration

	// Local executes runs that cannot be serialized for the wire
	// (function hooks, unknown hint policies). Nil means
	// sim.SimulateContext.
	Local runner.SimulateFunc

	// Seed seeds the backoff jitter; 0 means 1. Jitter affects only
	// retry timing, never results.
	Seed int64

	// now substitutes the clock (tests). Nil means time.Now.
	now func() time.Time
}

type taskState int

const (
	taskQueued taskState = iota
	taskLeased
)

// task is one enqueued simulation, addressed by its content key.
type task struct {
	id        string
	spec      Spec
	state     taskState
	worker    string    // current lessee (taskLeased)
	deadline  time.Time // lease expiry (taskLeased)
	notBefore time.Time // backoff gate (taskQueued)
	attempt   int       // dispatch attempts so far
	waiters   int       // Execute calls waiting on done

	done chan struct{}
	rep  *metrics.Report
	err  error
}

// workerState tracks one registered worker.
type workerState struct {
	id       string
	slots    int
	lastSeen time.Time
	leased   int
	prog     *metrics.Progress
}

// Coordinator farms simulation tasks to remote workers. It implements
// runner.Executor: plug it into runner.Options.Executor and every cache
// miss becomes a leased task. Create with New, stop with Close.
type Coordinator struct {
	opts Options

	mu       sync.Mutex
	tasks    map[string]*task // all unsettled tasks, by content key
	queue    []*task          // dispatch order (FIFO among eligible)
	workers  map[string]*workerState
	draining bool
	wake     chan struct{} // closed+replaced to wake long-polling leases
	rng      *rand.Rand    // jitter; guarded by mu

	// Cumulative counters (guarded by mu).
	reassigned uint64 // leases expired and re-queued
	retried    uint64 // transient failures re-queued
	driftErrs  uint64 // key-mismatch uploads (wire drift tripwire)
	duplicate  uint64 // uploads for already-settled or unknown tasks

	closed chan struct{}
	wg     sync.WaitGroup
}

// New returns a running Coordinator (its lease-expiry sweeper is started;
// call Close to stop it).
func New(o Options) *Coordinator {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = DefaultLeaseTTL
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = DefaultMaxAttempts
	}
	if o.RetryBase <= 0 {
		o.RetryBase = DefaultRetryBase
	}
	if o.RetryMax <= 0 {
		o.RetryMax = DefaultRetryMax
	}
	if o.WorkerTTL <= 0 {
		o.WorkerTTL = DefaultWorkerTTL
	}
	if o.Local == nil {
		o.Local = sim.SimulateContext
	}
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	if o.now == nil {
		o.now = time.Now
	}
	c := &Coordinator{
		opts:    o,
		tasks:   make(map[string]*task),
		workers: make(map[string]*workerState),
		wake:    make(chan struct{}),
		rng:     rand.New(rand.NewSource(seed)),
		closed:  make(chan struct{}),
	}
	c.wg.Add(1)
	go c.sweeper()
	return c
}

// Close stops the background lease sweeper. It does not drain: call Drain
// first for a graceful shutdown.
func (c *Coordinator) Close() {
	select {
	case <-c.closed:
	default:
		close(c.closed)
	}
	c.wg.Wait()
}

// Drain stops granting leases and fails every queued (unleased) task with
// runner.ErrDraining. Tasks already leased may still renew and upload —
// workers finish in-flight work — and Execute rejects new submissions.
func (c *Coordinator) Drain() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return
	}
	c.draining = true
	for _, t := range c.queue {
		c.settleLocked(t, nil, fmt.Errorf("cluster: %w", runner.ErrDraining))
	}
	c.queue = nil
	c.wakeLocked()
}

// Draining reports whether Drain has been called.
func (c *Coordinator) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// Execute implements runner.Executor: it enqueues the run as a cluster
// task and blocks until a worker uploads the result, the task exhausts its
// attempts, ctx ends, or the coordinator drains. Runs that cannot be
// serialized fall back to local execution.
func (c *Coordinator) Execute(ctx context.Context, m config.Machine, r config.Run) (*metrics.Report, string, error) {
	spec, key, ok := EncodeSpec(m, r)
	if !ok {
		rep, err := c.opts.Local(ctx, m, r)
		return rep, runner.SourceSimulated, err
	}
	t, err := c.enqueue(key.String(), spec)
	if err != nil {
		return nil, "", err
	}
	select {
	case <-t.done:
		if t.err != nil {
			return nil, "", t.err
		}
		// Each waiter gets its own copy: the runner caches the returned
		// pointer, and no two cache stacks may share one mutable report.
		cp := *t.rep
		return &cp, runner.SourceRemote, nil
	case <-ctx.Done():
		c.abandon(t)
		return nil, "", ctx.Err()
	}
}

// enqueue registers a task for key, coalescing onto an identical
// unsettled task if one exists.
func (c *Coordinator) enqueue(id string, spec Spec) (*task, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return nil, fmt.Errorf("cluster: %w", runner.ErrDraining)
	}
	if t, ok := c.tasks[id]; ok {
		t.waiters++
		return t, nil
	}
	t := &task{
		id:      id,
		spec:    spec,
		state:   taskQueued,
		waiters: 1,
		done:    make(chan struct{}),
	}
	c.tasks[id] = t
	c.queue = append(c.queue, t)
	c.wakeLocked()
	return t, nil
}

// abandon drops one waiter; a queued task nobody waits for is removed so
// workers never execute work whose submitter gave up. A leased task stays:
// the in-flight execution settles it and the result is dropped.
func (c *Coordinator) abandon(t *task) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case <-t.done:
		return
	default:
	}
	t.waiters--
	if t.waiters <= 0 && t.state == taskQueued {
		delete(c.tasks, t.id)
		c.removeFromQueueLocked(t)
	}
}

// Lease grants the next eligible task to a worker, waiting up to wait for
// one to appear (long poll). It returns ok=false when nothing is eligible
// within the wait, and ErrDraining once the coordinator drains.
func (c *Coordinator) Lease(ctx context.Context, workerID string, wait time.Duration) (Task, bool, error) {
	deadline := c.opts.now().Add(wait)
	for {
		c.mu.Lock()
		now := c.opts.now()
		c.sweepLocked(now)
		if c.draining {
			c.mu.Unlock()
			return Task{}, false, fmt.Errorf("cluster: %w", runner.ErrDraining)
		}
		w := c.touchWorkerLocked(workerID, now)
		if t := c.nextEligibleLocked(now); t != nil {
			t.state = taskLeased
			t.worker = workerID
			t.attempt++
			t.deadline = now.Add(c.opts.LeaseTTL)
			c.removeFromQueueLocked(t)
			w.leased++
			w.prog.AddSubmitted(1)
			w.prog.AddStarted(1)
			lease := Task{
				ID:      t.id,
				Attempt: t.attempt,
				LeaseMS: c.opts.LeaseTTL.Milliseconds(),
				Spec:    t.spec,
			}
			c.mu.Unlock()
			return lease, true, nil
		}
		wake := c.wake
		c.mu.Unlock()
		remaining := deadline.Sub(c.opts.now())
		if remaining <= 0 {
			return Task{}, false, nil
		}
		timer := time.NewTimer(minDuration(remaining, c.opts.LeaseTTL/4))
		select {
		case <-wake:
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return Task{}, false, ctx.Err()
		case <-c.closed:
			timer.Stop()
			return Task{}, false, nil
		}
		timer.Stop()
	}
}

// Renew extends a lease. ok=false means the lease is lost — expired and
// reassigned, or already settled — and the worker should abandon the run.
func (c *Coordinator) Renew(workerID, taskID string) (time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.now()
	c.touchWorkerLocked(workerID, now)
	t, ok := c.tasks[taskID]
	if !ok || t.state != taskLeased || t.worker != workerID {
		return 0, false
	}
	t.deadline = now.Add(c.opts.LeaseTTL)
	return c.opts.LeaseTTL, true
}

// Heartbeat refreshes a worker's liveness and reports drain state.
func (c *Coordinator) Heartbeat(workerID string) (draining bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(workerID, c.opts.now())
	return c.draining
}

// Register upserts a worker.
func (c *Coordinator) Register(workerID string, slots int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.touchWorkerLocked(workerID, c.opts.now())
	if slots > 0 {
		w.slots = slots
	}
}

// LeaseTTL returns the configured lease duration.
func (c *Coordinator) LeaseTTL() time.Duration { return c.opts.LeaseTTL }

// Complete records a task result. Uploads are idempotent: a result for an
// unknown or already-settled task (a reassigned lease finishing late) is
// acknowledged and dropped. A key mismatch marks wire drift and fails the
// task loudly.
func (c *Coordinator) Complete(req CompleteRequest) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.now()
	w := c.touchWorkerLocked(req.Worker, now)
	t, ok := c.tasks[req.Task]
	if !ok {
		c.duplicate++
		return nil
	}
	if t.state == taskLeased && t.worker == req.Worker {
		w.leased--
	}
	switch {
	case req.Key != "" && req.Key != t.id:
		c.driftErrs++
		c.settleLocked(t, nil, fmt.Errorf(
			"cluster: wire drift: worker %s recomputed key %s for task %s; a config field does not round-trip",
			req.Worker, req.Key, t.id))
	case req.Report != nil:
		w.prog.AddCompleted(req.Report.Instructions)
		c.settleLocked(t, req.Report, nil)
	case req.Transient && t.attempt < c.opts.MaxAttempts:
		w.prog.AddFailed(1)
		c.retried++
		c.requeueLocked(t, now, req.Error)
	case req.Error != "":
		w.prog.AddFailed(1)
		c.settleLocked(t, nil, fmt.Errorf(
			"cluster: task %s failed on worker %s (attempt %d/%d): %s",
			t.id, req.Worker, t.attempt, c.opts.MaxAttempts, req.Error))
	default:
		c.settleLocked(t, nil, fmt.Errorf(
			"cluster: empty completion for task %s from worker %s", t.id, req.Worker))
	}
	return nil
}

// settleLocked finishes a task and wakes its waiters. Callers hold c.mu.
func (c *Coordinator) settleLocked(t *task, rep *metrics.Report, err error) {
	select {
	case <-t.done:
		c.duplicate++
		return
	default:
	}
	t.rep, t.err = rep, err
	delete(c.tasks, t.id)
	close(t.done)
}

// requeueLocked puts a leased task back in the queue behind an
// exponential-backoff-with-jitter gate. Callers hold c.mu.
func (c *Coordinator) requeueLocked(t *task, now time.Time, cause string) {
	if c.draining {
		c.settleLocked(t, nil, fmt.Errorf("cluster: %w", runner.ErrDraining))
		return
	}
	if t.waiters <= 0 {
		// Every submitter gave up while the task was leased.
		c.settleLocked(t, nil, fmt.Errorf("cluster: task %s abandoned (%s)", t.id, cause))
		return
	}
	t.state = taskQueued
	t.worker = ""
	t.notBefore = now.Add(c.backoffLocked(t.attempt))
	c.queue = append(c.queue, t)
	c.wakeLocked()
}

// backoffLocked returns RetryBase·2^(attempt-1) capped at RetryMax, plus
// up to 50% jitter so a burst of expired leases does not re-dispatch in
// lockstep. Callers hold c.mu.
func (c *Coordinator) backoffLocked(attempt int) time.Duration {
	d := c.opts.RetryBase
	for i := 1; i < attempt && d < c.opts.RetryMax; i++ {
		d *= 2
	}
	if d > c.opts.RetryMax {
		d = c.opts.RetryMax
	}
	return d + time.Duration(c.rng.Int63n(int64(d)/2+1))
}

// nextEligibleLocked returns the first queued task whose backoff gate has
// passed. Callers hold c.mu.
func (c *Coordinator) nextEligibleLocked(now time.Time) *task {
	for _, t := range c.queue {
		if !t.notBefore.After(now) {
			return t
		}
	}
	return nil
}

func (c *Coordinator) removeFromQueueLocked(t *task) {
	for i, q := range c.queue {
		if q == t {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return
		}
	}
}

// touchWorkerLocked upserts a worker's liveness. Callers hold c.mu.
func (c *Coordinator) touchWorkerLocked(id string, now time.Time) *workerState {
	w, ok := c.workers[id]
	if !ok {
		w = &workerState{id: id, prog: metrics.NewProgress()}
		c.workers[id] = w
	}
	w.lastSeen = now
	return w
}

// wakeLocked signals every long-polling Lease. Callers hold c.mu.
func (c *Coordinator) wakeLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

// sweeper periodically reclaims expired leases even when no worker is
// calling in — the case that matters most: every worker died.
func (c *Coordinator) sweeper() {
	defer c.wg.Done()
	tick := time.NewTicker(maxDuration(c.opts.LeaseTTL/4, 10*time.Millisecond))
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			c.mu.Lock()
			c.sweepLocked(c.opts.now())
			c.mu.Unlock()
		case <-c.closed:
			return
		}
	}
}

// sweepLocked re-queues tasks whose lease expired and expires silent
// workers. Callers hold c.mu.
func (c *Coordinator) sweepLocked(now time.Time) {
	for _, t := range c.tasks {
		if t.state != taskLeased || t.deadline.After(now) {
			continue
		}
		if w, ok := c.workers[t.worker]; ok {
			w.leased--
			w.prog.AddFailed(1)
		}
		c.reassigned++
		if t.attempt >= c.opts.MaxAttempts {
			c.settleLocked(t, nil, fmt.Errorf(
				"cluster: task %s: lease expired on attempt %d/%d (worker %s)",
				t.id, t.attempt, c.opts.MaxAttempts, t.worker))
			continue
		}
		c.requeueLocked(t, now, "lease expired on worker "+t.worker)
	}
	for id, w := range c.workers {
		if w.leased <= 0 && now.Sub(w.lastSeen) > c.opts.WorkerTTL {
			delete(c.workers, id)
		}
	}
}

// WorkerStats is one worker's row in Stats.
type WorkerStats struct {
	Worker   string                   `json:"worker"`
	Slots    int                      `json:"slots"`
	Leased   int                      `json:"leased"`
	IdleSecs float64                  `json:"idle_secs"`
	Progress metrics.ProgressSnapshot `json:"progress"`
}

// Stats is the coordinator's observability snapshot, shaped for expvar.
type Stats struct {
	Queued     int           `json:"queued"`
	Leased     int           `json:"leased"`
	Draining   bool          `json:"draining"`
	Reassigned uint64        `json:"reassigned"`
	Retried    uint64        `json:"retried"`
	DriftErrs  uint64        `json:"drift_errors"`
	Duplicate  uint64        `json:"duplicate_uploads"`
	Workers    []WorkerStats `json:"workers"`
}

// StatsSnapshot returns current queue/lease occupancy and per-worker
// progress counters, workers sorted by id for stable output.
func (c *Coordinator) StatsSnapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.now()
	s := Stats{
		Queued:     len(c.queue),
		Leased:     len(c.tasks) - len(c.queue),
		Draining:   c.draining,
		Reassigned: c.reassigned,
		Retried:    c.retried,
		DriftErrs:  c.driftErrs,
		Duplicate:  c.duplicate,
	}
	for _, w := range c.workers {
		//icrvet:ignore determinism collection order is irrelevant: sortWorkers orders the slice by id before it is returned
		s.Workers = append(s.Workers, WorkerStats{
			Worker:   w.id,
			Slots:    w.slots,
			Leased:   w.leased,
			IdleSecs: now.Sub(w.lastSeen).Seconds(),
			Progress: w.prog.Snapshot(),
		})
	}
	sortWorkers(s.Workers)
	return s
}

func sortWorkers(ws []WorkerStats) {
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].Worker < ws[j-1].Worker; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
}

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// errProto builds a protocol error.
func errProto(format string, args ...any) error {
	return fmt.Errorf("cluster: "+format, args...)
}
