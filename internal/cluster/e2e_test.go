package cluster

import (
	"context"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/runner"
)

// e2eSim is a deterministic stand-in for the simulator, slow enough
// (blockable via gate) that a worker killed mid-sweep is holding leases.
func e2eSim(gate <-chan struct{}) runner.SimulateFunc {
	return func(ctx context.Context, m config.Machine, r config.Run) (*metrics.Report, error) {
		if gate != nil {
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return stubReport(r), nil
	}
}

// startWorker builds a Worker over a stub-sim runner and runs it.
func startWorker(t *testing.T, baseURL, id string, slots int, sim runner.SimulateFunc) (*Worker, context.CancelFunc, *sync.WaitGroup) {
	t.Helper()
	eng := runner.New(runner.Options{Workers: slots, Simulate: sim})
	w, err := NewWorker(WorkerOptions{
		BaseURL:  baseURL,
		ID:       id,
		Runner:   eng,
		Slots:    slots,
		PollWait: 100 * time.Millisecond,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := w.Run(ctx); err != nil && ctx.Err() == nil {
			t.Errorf("worker %s: %v", id, err)
		}
	}()
	return w, cancel, &wg
}

// sweepRuns is a small figure-like sweep: one benchmark, several seeds.
func sweepRuns(n int) (config.Machine, []config.Run) {
	m := config.Default()
	runs := make([]config.Run, n)
	for i := range runs {
		_, r := runInputs(int64(i + 1))
		runs[i] = r
	}
	return m, runs
}

// reportCSV renders a batch the way figure drivers do — fixed column
// order, fixed float formatting — so "byte-identical" is testable at this
// level without dragging real simulations in.
func reportCSV(reps []*metrics.Report) string {
	var b strings.Builder
	b.WriteString("benchmark,scheme,instructions,cycles\n")
	for _, r := range reps {
		fmt.Fprintf(&b, "%s,%s,%d,%d\n", r.Benchmark, r.Scheme, r.Instructions, r.Cycles)
	}
	return b.String()
}

// TestE2EFleetSweepSurvivesWorkerKill is the acceptance scenario: a sweep
// dispatched through a coordinator with two workers, one worker killed
// hard mid-sweep, must still complete — expired leases are reassigned to
// the survivor — and produce results byte-identical to a single-node run.
func TestE2EFleetSweepSurvivesWorkerKill(t *testing.T) {
	coord := New(Options{
		LeaseTTL:  200 * time.Millisecond,
		RetryBase: 5 * time.Millisecond,
		RetryMax:  50 * time.Millisecond,
	})
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	// Worker "victim" executes nothing: its simulations block on the gate
	// until the worker is killed, so the leases it holds must expire and
	// move to "survivor".
	gate := make(chan struct{})
	_, killVictim, victimWG := startWorker(t, srv.URL, "victim", 2, e2eSim(gate))
	_, stopSurvivor, survivorWG := startWorker(t, srv.URL, "survivor", 2, e2eSim(nil))
	defer survivorWG.Wait() // runs after stopSurvivor (LIFO): no goroutines outlive the test
	defer stopSurvivor()

	// The front door: a normal runner whose executor is the coordinator —
	// exactly how icrd -cluster wires it.
	front := runner.New(runner.Options{Workers: 4, Executor: coord})
	m, runs := sweepRuns(10)

	// Kill the victim once it holds leases (its runner started sims that
	// are parked on the gate).
	go func() {
		deadline := time.After(10 * time.Second)
		for {
			stats := coord.StatsSnapshot()
			for _, w := range stats.Workers {
				if w.Worker == "victim" && w.Leased > 0 {
					killVictim()
					return
				}
			}
			select {
			case <-deadline:
				killVictim() // the test will fail on results; don't also hang
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	got, err := front.RunBatch(ctx, m, runs)
	if err != nil {
		t.Fatalf("fleet sweep: %v", err)
	}
	victimWG.Wait()

	// Single-node reference: same stub, plain local runner.
	local := runner.New(runner.Options{Workers: 4, Simulate: e2eSim(nil)})
	want, err := local.RunBatch(context.Background(), m, runs)
	if err != nil {
		t.Fatalf("local sweep: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fleet results differ from single-node:\n got %+v\nwant %+v", got, want)
	}
	if gotCSV, wantCSV := reportCSV(got), reportCSV(want); gotCSV != wantCSV {
		t.Fatalf("fleet CSV differs from single-node:\n got:\n%s\nwant:\n%s", gotCSV, wantCSV)
	}

	stats := coord.StatsSnapshot()
	if stats.Reassigned == 0 {
		t.Error("Reassigned = 0: the victim's leases were never reclaimed, so the kill was not exercised")
	}
	if snap := front.Progress().Snapshot(); snap.Remote == 0 {
		t.Errorf("front runner Remote = 0, want > 0 (results must have come from the fleet)")
	}
}

// TestE2EWorkerDrainFinishesInFlight: Drain on a worker lets in-flight
// tasks finish and upload (the submitter gets its result), while the
// worker stops pulling new leases and Run returns nil.
func TestE2EWorkerDrainFinishesInFlight(t *testing.T) {
	coord := New(Options{LeaseTTL: 500 * time.Millisecond})
	defer coord.Close()
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	gate := make(chan struct{})
	w, stop, wg := startWorker(t, srv.URL, "w1", 1, e2eSim(gate))
	defer stop()

	front := runner.New(runner.Options{Workers: 2, Executor: coord})
	m, runs := sweepRuns(1)
	pending := front.Submit(context.Background(), m, runs[0])

	// Wait until the worker actually holds the lease, then drain it while
	// the simulation is still parked on the gate.
	for i := 0; ; i++ {
		stats := coord.StatsSnapshot()
		if len(stats.Workers) > 0 && stats.Workers[0].Leased > 0 {
			break
		}
		if i > 2000 {
			t.Fatal("worker never leased the task")
		}
		time.Sleep(time.Millisecond)
	}
	w.Drain()
	close(gate) // let the in-flight simulation finish

	rep, err := pending.Wait()
	if err != nil {
		t.Fatalf("in-flight task across worker drain: %v", err)
	}
	if want := stubReport(runs[0]); *rep != *want {
		t.Fatalf("report = %+v, want %+v", rep, want)
	}
	wg.Wait() // Run must return (nil error checked inside startWorker)
}
