package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/runner"
)

// maxBodyBytes bounds request bodies. Reports are small; 4 MiB leaves
// generous headroom for future report fields.
const maxBodyBytes = 4 << 20

// maxLeaseWait caps a lease long poll regardless of the client's wait_ms,
// so a dead client cannot pin a handler forever.
const maxLeaseWait = 30 * time.Second

// Handler returns the coordinator's HTTP surface, routed at the absolute
// /cluster/v1/... paths so it can be mounted directly on icrd's mux.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathRegister, c.handleRegister)
	mux.HandleFunc("POST "+PathHeartbeat, c.handleHeartbeat)
	mux.HandleFunc("POST "+PathLease, c.handleLease)
	mux.HandleFunc("POST "+PathRenew, c.handleRenew)
	mux.HandleFunc("POST "+PathComplete, c.handleComplete)
	return mux
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !decodeReq(w, r, &req) || !requireWorker(w, req.Worker) {
		return
	}
	c.Register(req.Worker, req.Slots)
	writeJSON(w, http.StatusOK, RegisterResponse{
		LeaseMS:     c.opts.LeaseTTL.Milliseconds(),
		HeartbeatMS: (c.opts.WorkerTTL / 3).Milliseconds(),
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeReq(w, r, &req) || !requireWorker(w, req.Worker) {
		return
	}
	writeJSON(w, http.StatusOK, HeartbeatResponse{Draining: c.Heartbeat(req.Worker)})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decodeReq(w, r, &req) || !requireWorker(w, req.Worker) {
		return
	}
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait < 0 {
		wait = 0
	}
	if wait > maxLeaseWait {
		wait = maxLeaseWait
	}
	task, ok, err := c.Lease(r.Context(), req.Worker, wait)
	switch {
	case errors.Is(err, runner.ErrDraining):
		// Tell the worker to back off; drain means no more work here.
		w.Header().Set("Retry-After", "5")
		writeJSONError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		// The client went away mid-poll; the response is a formality.
		writeJSONError(w, http.StatusServiceUnavailable, err)
	case !ok:
		w.WriteHeader(http.StatusNoContent)
	default:
		writeJSON(w, http.StatusOK, LeaseResponse{Task: task})
	}
}

func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req RenewRequest
	if !decodeReq(w, r, &req) || !requireWorker(w, req.Worker) {
		return
	}
	ttl, ok := c.Renew(req.Worker, req.Task)
	if !ok {
		writeJSONError(w, http.StatusGone,
			fmt.Errorf("cluster: lease on task %s lost", req.Task))
		return
	}
	writeJSON(w, http.StatusOK, RenewResponse{LeaseMS: ttl.Milliseconds()})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decodeReq(w, r, &req) || !requireWorker(w, req.Worker) {
		return
	}
	if err := c.Complete(req); err != nil {
		writeJSONError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, CompleteResponse{})
}

// decodeReq parses a bounded JSON body, writing a 400 on failure.
func decodeReq(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Errorf("decoding request body: %w", err))
		return false
	}
	return true
}

// requireWorker writes a 400 when the request names no worker.
func requireWorker(w http.ResponseWriter, worker string) bool {
	if worker == "" {
		writeJSONError(w, http.StatusBadRequest, errors.New("worker is required"))
		return false
	}
	return true
}

func writeJSONError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		// Every payload type here marshals; reaching this is a bug.
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	//icrvet:ignore droppederr a failed write means the worker is gone; the lease layer recovers
	w.Write(buf)
}
