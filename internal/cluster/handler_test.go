package cluster

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// postBody POSTs raw JSON at a handler path and returns the response.
func postBody(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestHandlerStatusCodes pins the protocol's HTTP surface: 204 on an empty
// queue, 503 + Retry-After while draining, 410 for a lost lease, and 400
// for malformed or unknown-field bodies.
func TestHandlerStatusCodes(t *testing.T) {
	c := New(Options{})
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	if resp := postBody(t, srv.URL+PathLease, `{"worker":"w1","wait_ms":0}`); resp.StatusCode != http.StatusNoContent {
		t.Errorf("lease on empty queue = %d, want 204", resp.StatusCode)
	}
	if resp := postBody(t, srv.URL+PathRenew, `{"worker":"w1","task":"deadbeef"}`); resp.StatusCode != http.StatusGone {
		t.Errorf("renew of unknown lease = %d, want 410", resp.StatusCode)
	}
	if resp := postBody(t, srv.URL+PathLease, `{"worker":"w1","bogus":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown-field body = %d, want 400", resp.StatusCode)
	}
	if resp := postBody(t, srv.URL+PathLease, `{`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body = %d, want 400", resp.StatusCode)
	}

	c.Drain()
	resp := postBody(t, srv.URL+PathLease, `{"worker":"w1","wait_ms":0}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("lease while draining = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("draining 503 missing Retry-After header")
	}
}
