package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/runner"
)

// WorkerOptions configure a Worker.
type WorkerOptions struct {
	// BaseURL is the coordinator, e.g. "http://host:8080" (required).
	BaseURL string

	// ID names this worker in leases and stats (required).
	ID string

	// Runner executes leased tasks locally (required). Its cache tiers
	// apply: a task re-leased to the same worker is served from memo.
	Runner *runner.Runner

	// Slots is the number of concurrent leases this worker pulls.
	// <= 0 means the runner's worker-pool size.
	Slots int

	// Client performs the HTTP calls. Nil means a client with no overall
	// timeout (long polls and uploads are bounded per-request).
	Client *http.Client

	// PollWait is the lease long-poll duration. <= 0 means 5s.
	PollWait time.Duration

	// Logf, when non-nil, receives one line per lifecycle event
	// (registered, lease lost, upload retry). Nil discards.
	Logf func(format string, args ...any)
}

// Worker is the icrworker engine: it pulls leased tasks from a
// coordinator, executes them on a local runner, and uploads the results.
// Create with NewWorker, run with Run, stop gracefully with Drain.
type Worker struct {
	o         WorkerOptions
	drain     chan struct{}
	drainOnce sync.Once

	mu  sync.Mutex
	rng *rand.Rand // retry jitter; guarded by mu
}

// NewWorker validates options and returns a Worker.
func NewWorker(o WorkerOptions) (*Worker, error) {
	if o.BaseURL == "" {
		return nil, errors.New("cluster: worker needs a coordinator BaseURL")
	}
	if o.ID == "" {
		return nil, errors.New("cluster: worker needs an ID")
	}
	if o.Runner == nil {
		return nil, errors.New("cluster: worker needs a Runner")
	}
	if o.Slots <= 0 {
		o.Slots = o.Runner.Workers()
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.PollWait <= 0 {
		o.PollWait = 5 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	h := fnv.New64a()
	//icrvet:ignore droppederr hash.Hash.Write is documented to never return an error
	h.Write([]byte(o.ID))
	return &Worker{
		o:     o,
		drain: make(chan struct{}),
		rng:   rand.New(rand.NewSource(int64(h.Sum64()) | 1)),
	}, nil
}

// Drain stops pulling new leases, once. Tasks already executing finish
// and upload, then Run returns. Safe to call from a signal handler path.
func (w *Worker) Drain() {
	w.drainOnce.Do(func() { close(w.drain) })
}

// Progress returns the local runner's counters.
func (w *Worker) Progress() *metrics.Progress { return w.o.Runner.Progress() }

// Run registers with the coordinator and serves leases until ctx is
// cancelled (hard stop: in-flight executions abort, nothing uploads) or
// Drain is called (graceful: in-flight tasks finish and upload). A
// graceful stop returns nil.
func (w *Worker) Run(ctx context.Context) error {
	hb, err := w.register(ctx)
	if err != nil {
		return err
	}
	w.o.Logf("worker %s: registered with %s (lease %dms, %d slots)",
		w.o.ID, w.o.BaseURL, hb.LeaseMS, w.o.Slots)

	done := make(chan struct{})
	defer close(done)
	go w.heartbeatLoop(ctx, done, time.Duration(hb.HeartbeatMS)*time.Millisecond)

	var wg sync.WaitGroup
	for i := 0; i < w.o.Slots; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.leaseLoop(ctx)
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil && !w.draining() {
		return err
	}
	w.o.Logf("worker %s: drained cleanly", w.o.ID)
	return nil
}

func (w *Worker) draining() bool {
	select {
	case <-w.drain:
		return true
	default:
		return false
	}
}

// register announces the worker, retrying with backoff until the
// coordinator answers or the worker stops.
func (w *Worker) register(ctx context.Context) (RegisterResponse, error) {
	var resp RegisterResponse
	for attempt := 1; ; attempt++ {
		status, err := w.post(ctx, PathRegister,
			RegisterRequest{Worker: w.o.ID, Slots: w.o.Slots}, &resp)
		if err == nil && status == http.StatusOK {
			return resp, nil
		}
		if err == nil {
			err = fmt.Errorf("cluster: register: coordinator returned %d", status)
		}
		if attempt >= 8 {
			return RegisterResponse{}, err
		}
		w.o.Logf("worker %s: register attempt %d failed: %v", w.o.ID, attempt, err)
		if !w.sleep(ctx, w.backoff(attempt)) {
			return RegisterResponse{}, ctx.Err()
		}
	}
}

// heartbeatLoop keeps the registration warm until Run returns.
func (w *Worker) heartbeatLoop(ctx context.Context, done <-chan struct{}, every time.Duration) {
	if every <= 0 {
		every = 10 * time.Second
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			var resp HeartbeatResponse
			if _, err := w.post(ctx, PathHeartbeat, HeartbeatRequest{Worker: w.o.ID}, &resp); err == nil && resp.Draining {
				w.o.Logf("worker %s: coordinator is draining", w.o.ID)
			}
		case <-done:
			return
		case <-ctx.Done():
			return
		}
	}
}

// leaseLoop pulls and executes tasks until the worker stops.
func (w *Worker) leaseLoop(ctx context.Context) {
	errStreak := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-w.drain:
			return
		default:
		}
		var lease LeaseResponse
		status, err := w.post(ctx, PathLease,
			LeaseRequest{Worker: w.o.ID, WaitMS: w.o.PollWait.Milliseconds()}, &lease)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return
			}
			errStreak++
			w.o.Logf("worker %s: lease poll failed: %v", w.o.ID, err)
			if !w.sleep(ctx, w.backoff(errStreak)) {
				return
			}
		case status == http.StatusNoContent:
			errStreak = 0
		case status == http.StatusOK:
			errStreak = 0
			w.execute(ctx, lease.Task)
		default:
			// Draining coordinator (503) or anything unexpected: back off
			// and keep polling; the worker's own lifecycle decides exit.
			errStreak++
			if !w.sleep(ctx, w.backoff(errStreak)) {
				return
			}
		}
	}
}

// execute runs one leased task: decode, verify the content key, simulate
// on the local runner under a renewed lease, upload the result.
func (w *Worker) execute(ctx context.Context, task Task) {
	m, r, err := task.Spec.DecodeSpec()
	if err != nil {
		w.complete(ctx, CompleteRequest{
			Worker: w.o.ID, Task: task.ID, Error: err.Error(),
		})
		return
	}
	key, ok := runner.KeyFor(m, r)
	if !ok || key.String() != task.ID {
		// Never execute a spec whose decoded form does not hash back to
		// the task's content address: that would simulate a different
		// configuration than the coordinator asked for.
		w.complete(ctx, CompleteRequest{
			Worker: w.o.ID, Task: task.ID, Key: key.String(),
			Error: fmt.Sprintf("decoded spec hashes to %s, task is %s (wire drift)", key, task.ID),
		})
		return
	}

	execCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	leaseLost := make(chan struct{})
	renewDone := make(chan struct{})
	go w.renewLoop(execCtx, task, time.Duration(task.LeaseMS)*time.Millisecond, cancel, leaseLost, renewDone)

	rep, err := w.o.Runner.Run(execCtx, m, r)
	cancel()
	<-renewDone

	select {
	case <-leaseLost:
		// Someone else owns the task now; executing it twice is safe
		// (pure function), uploading twice is pointless.
		w.o.Logf("worker %s: lease lost on task %s (attempt %d); dropping result", w.o.ID, task.ID, task.Attempt)
		return
	default:
	}
	if ctx.Err() != nil {
		return // hard stop: nothing to upload
	}
	req := CompleteRequest{Worker: w.o.ID, Task: task.ID, Key: task.ID}
	switch {
	case err == nil:
		req.Report = rep
	case errors.Is(err, context.DeadlineExceeded):
		// The local per-run timeout tripped: a faster or idler worker may
		// still make it.
		req.Error = err.Error()
		req.Transient = true
	default:
		req.Error = err.Error()
	}
	w.complete(ctx, req)
}

// renewLoop extends the task's lease at a third of its TTL until the
// execution context ends. A refused renewal (410: lease reassigned or task
// settled) cancels the execution and marks the lease lost.
func (w *Worker) renewLoop(ctx context.Context, task Task, ttl time.Duration, cancel context.CancelFunc, leaseLost chan<- struct{}, done chan<- struct{}) {
	defer close(done)
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	tick := time.NewTicker(maxDuration(ttl/3, time.Millisecond))
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			var resp RenewResponse
			status, err := w.post(ctx, PathRenew,
				RenewRequest{Worker: w.o.ID, Task: task.ID}, &resp)
			if err != nil {
				continue // transient; the lease may still be alive
			}
			if status == http.StatusGone {
				close(leaseLost)
				cancel()
				return
			}
		case <-ctx.Done():
			return
		}
	}
}

// complete uploads a result, retrying transient failures: a result that
// took real simulation time is worth several attempts. Runs on the hard
// context only for cancellation — during drain uploads proceed.
func (w *Worker) complete(ctx context.Context, req CompleteRequest) {
	var resp CompleteResponse
	for attempt := 1; ; attempt++ {
		status, err := w.post(ctx, PathComplete, req, &resp)
		if err == nil && status == http.StatusOK {
			return
		}
		if ctx.Err() != nil || attempt >= 6 {
			w.o.Logf("worker %s: dropping result for task %s after %d upload attempts (%v, status %d)",
				w.o.ID, req.Task, attempt, err, status)
			return
		}
		if !w.sleep(ctx, w.backoff(attempt)) {
			return
		}
	}
}

// post sends one JSON request and decodes the JSON response (2xx bodies
// into out; non-2xx bodies are drained and discarded). 204 leaves out
// untouched.
func (w *Worker) post(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, fmt.Errorf("cluster: encoding %s request: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.o.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return 0, fmt.Errorf("cluster: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.o.Client.Do(req)
	if err != nil {
		return 0, fmt.Errorf("cluster: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(io.LimitReader(resp.Body, maxBodyBytes)).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("cluster: decoding %s response: %w", path, err)
		}
		return resp.StatusCode, nil
	}
	//icrvet:ignore droppederr draining the body only recycles the connection; failures are unactionable
	io.Copy(io.Discard, io.LimitReader(resp.Body, maxBodyBytes))
	return resp.StatusCode, nil
}

// backoff returns an exponential delay with jitter for retry attempt n.
func (w *Worker) backoff(n int) time.Duration {
	d := DefaultRetryBase
	for i := 1; i < n && d < DefaultRetryMax; i++ {
		d *= 2
	}
	if d > DefaultRetryMax {
		d = DefaultRetryMax
	}
	w.mu.Lock()
	j := time.Duration(w.rng.Int63n(int64(d)/2 + 1))
	w.mu.Unlock()
	return d + j
}

// sleep waits for d, interruptible by ctx and drain; false means stop.
func (w *Worker) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	case <-w.drain:
		return false
	}
}
