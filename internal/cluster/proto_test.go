package cluster

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/runner"
)

func baseInputs() (config.Machine, config.Run) {
	return config.Default(), config.NewRun("vpr", core.BaseP())
}

// fakePolicy is a HintPolicy the wire format does not know about.
type fakePolicy struct{}

func (fakePolicy) Hint(uint64) core.Hint { return core.Hint{} }

// TestSpecRoundTrip pushes representative inputs through the full wire
// path — EncodeSpec, JSON marshal, JSON unmarshal, DecodeSpec — and
// requires the decoded input to hash to the original content key and to
// reconstruct the original values. This is the property the whole cluster
// rests on: a spec that does not round-trip would simulate a different
// configuration than the coordinator addressed.
func TestSpecRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*config.Machine, *config.Run)
	}{
		{"default", func(*config.Machine, *config.Run) {}},
		{"scheme", func(m *config.Machine, r *config.Run) {
			r.Scheme = core.ICR(core.ECCProt, core.LookupParallel, core.ReplStores)
		}},
		{"replication", func(m *config.Machine, r *config.Run) {
			r.Repl.DecayWindow = 4096
			r.Repl.Distances = []int{32, 16, 8}
			r.Repl.Replicas = 2
			r.Repl.Victim = core.DeadFirst
			r.Repl.LeaveReplicas = true
		}},
		{"budget-and-seed", func(m *config.Machine, r *config.Run) {
			r.Instructions = 123456
			r.Seed = 99
		}},
		{"write-through", func(m *config.Machine, r *config.Run) {
			r.WriteThrough = true
			r.WriteBufferEntries = 16
		}},
		{"fault-injection", func(m *config.Machine, r *config.Run) {
			r.Fault = config.FaultConfig{Model: fault.Column, Prob: 1e-4, Seed: 42}
		}},
		{"machine-geometry", func(m *config.Machine, r *config.Run) {
			m.DL1Size *= 2
			m.DL1Assoc = 8
			m.L2Latency = 9
			m.CPU.IssueWidth = 2
		}},
		{"hints-replicate-all", func(m *config.Machine, r *config.Run) {
			r.Hints = core.ReplicateAll{}
		}},
		{"hints-ranges", func(m *config.Machine, r *config.Run) {
			r.Hints = core.NewRangePolicy(
				core.AddrRange{Start: 0, End: 1 << 20, Hint: core.Hint{Replicate: true, Replicas: 2}},
				core.AddrRange{Start: 1 << 20, End: 1 << 21},
			)
		}},
		{"extensions", func(m *config.Machine, r *config.Run) {
			r.DupCacheKB = 2
			r.ScrubInterval = 10000
			r.ScrubLines = 4
			r.Prefetch = true
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, r := baseInputs()
			tc.mut(&m, &r)
			wantKey, ok := runner.KeyFor(m, r)
			if !ok {
				t.Fatal("KeyFor rejected wire-safe inputs")
			}

			spec, key, ok := EncodeSpec(m, r)
			if !ok {
				t.Fatal("EncodeSpec rejected wire-safe inputs")
			}
			if key != wantKey {
				t.Fatalf("EncodeSpec key %s, KeyFor %s", key, wantKey)
			}

			buf, err := json.Marshal(spec)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			var decodedSpec Spec
			if err := json.Unmarshal(buf, &decodedSpec); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			gotM, gotR, err := decodedSpec.DecodeSpec()
			if err != nil {
				t.Fatalf("DecodeSpec: %v", err)
			}

			gotKey, ok := runner.KeyFor(gotM, gotR)
			if !ok {
				t.Fatal("KeyFor rejected the decoded inputs")
			}
			if gotKey != wantKey {
				t.Fatalf("decoded inputs hash to %s, want %s (wire drift)", gotKey, wantKey)
			}
			if !reflect.DeepEqual(gotM, m) {
				t.Errorf("machine did not round-trip:\n got %+v\nwant %+v", gotM, m)
			}
			if !reflect.DeepEqual(gotR, r) {
				t.Errorf("run did not round-trip:\n got %+v\nwant %+v", gotR, r)
			}
		})
	}
}

// TestEncodeSpecRefusesOpaqueInputs: inputs KeyFor cannot fingerprint
// (function hooks, unknown hint policies) must be refused, not mis-encoded
// — the coordinator falls back to local execution for them.
func TestEncodeSpecRefusesOpaqueInputs(t *testing.T) {
	t.Run("cpu-hook", func(t *testing.T) {
		m, r := baseInputs()
		m.CPU.EachCycle = func(uint64) {}
		if _, _, ok := EncodeSpec(m, r); ok {
			t.Fatal("EncodeSpec accepted a machine with a function hook")
		}
	})
	t.Run("unknown-hint-policy", func(t *testing.T) {
		m, r := baseInputs()
		r.Hints = fakePolicy{}
		if _, _, ok := EncodeSpec(m, r); ok {
			t.Fatal("EncodeSpec accepted an unknown HintPolicy implementation")
		}
	})
}

// TestDecodeSpecRejectsMalformedHints: a tampered or version-skewed hints
// union must decode to an error, never to a silently different policy.
func TestDecodeSpecRejectsMalformedHints(t *testing.T) {
	m, r := baseInputs()
	r.Hints = core.NewRangePolicy(core.AddrRange{Start: 0, End: 4096})
	spec, _, ok := EncodeSpec(m, r)
	if !ok {
		t.Fatal("EncodeSpec failed")
	}

	bad := spec
	bad.Run.Hints = &wireHints{Kind: "telepathy"}
	if _, _, err := bad.DecodeSpec(); err == nil {
		t.Error("unknown hints kind decoded without error")
	}

	bad = spec
	bad.Run.Hints = &wireHints{Kind: hintsRanges} // payload missing
	if _, _, err := bad.DecodeSpec(); err == nil {
		t.Error("ranges kind without payload decoded without error")
	}
}

// TestSpecWireShapeOmitsHooks pins the shadowing trick: the marshaled
// spec must not contain the function-hook fields at all (they cannot be
// marshaled) while still carrying the embedded config fields.
func TestSpecWireShapeOmitsHooks(t *testing.T) {
	m, r := baseInputs()
	spec, _, ok := EncodeSpec(m, r)
	if !ok {
		t.Fatal("EncodeSpec failed")
	}
	buf, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(buf, &top); err != nil {
		t.Fatal(err)
	}
	var machine map[string]json.RawMessage
	if err := json.Unmarshal(top["machine"], &machine); err != nil {
		t.Fatal(err)
	}
	var cpuFields map[string]json.RawMessage
	if err := json.Unmarshal(machine["CPU"], &cpuFields); err != nil {
		t.Fatal(err)
	}
	for _, hook := range []string{"EachCycle", "Halt"} {
		if _, present := cpuFields[hook]; present {
			t.Errorf("marshaled CPU config carries hook field %s", hook)
		}
	}
	if _, present := cpuFields["IssueWidth"]; !present {
		t.Error("marshaled CPU config lost its embedded data fields")
	}
}
