package core

import (
	"repro/internal/cache"
	"repro/internal/ecc"
)

// Load performs a data-cache read of the aligned 64-bit word containing
// addr and returns its latency in cycles, including any error-recovery
// cost. Scheme-dependent hit latencies follow §3.2:
//
//	BaseP                        1
//	BaseECC                      1 + ECCCheckLatency (1 if speculative)
//	ICR-P-PS                     1
//	ICR-P-PP    replicated       2 (parallel compare), else 1
//	ICR-ECC-PS  replicated       1 (parity), else 1 + ECCCheckLatency
//	ICR-ECC-PP                   2
func (c *Cache) Load(now uint64, addr uint64) uint64 {
	ba := c.blockAddr(addr)
	c.stats.Reads++
	c.noteAccess(ba, addr)
	if c.cfg.Meter != nil {
		c.cfg.Meter.AddL1Read(1)
	}

	if ln := c.lookupPrimary(ba); ln != nil {
		c.stats.ReadHits++
		if ln.prefetched {
			ln.prefetched = false
			c.stats.PrefetchHits++
		}
		replicas := c.findReplicas(ba)
		if len(replicas) > 0 {
			c.stats.ReadHitsWithReplica++
		}
		// The Kim & Somani r-cache is probed alongside every dL1 load;
		// that per-access lookup is exactly the energy ICR avoids.
		var dup []byte
		if c.cfg.Duplicates != nil {
			if d, ok := c.cfg.Duplicates.Get(ba); ok {
				dup = d
				c.stats.ReadHitsWithDuplicate++
			}
			if c.cfg.Meter != nil {
				c.cfg.Meter.AddRCacheRead(1)
			}
		}
		lat := c.loadHitLatency(len(replicas) > 0)
		lat += c.verifyLoad(now, ln, replicas, dup, addr)
		c.touch(ln, now)
		for _, rep := range replicas {
			if c.cur.Lookup == LookupParallel {
				// The parallel scheme reads the replica array too.
				if c.cfg.Meter != nil {
					c.cfg.Meter.AddL1Read(1)
				}
				c.touch(rep, now)
			}
		}
		return lat
	}

	// Primary miss.
	c.stats.ReadMisses++

	// §5.6 performance mode: a leftover replica can serve the miss with
	// one extra cycle instead of the L2 round trip — after its parity
	// verifies (a corrupted leftover must not silently serve).
	if c.cfg.Repl.LeaveReplicas {
		if rep := c.intactReplica(ba); rep != nil {
			c.stats.ReplicaServedMisses++
			v := c.evictFor(c.homeSet(ba), now)
			v.valid = true
			v.replica = false
			v.dirty = false
			v.blockAddr = ba
			copy(v.data, rep.data)
			copy(v.parity, rep.parity)
			if v.eccb != nil {
				ecc.EncodeSECDEDLine(v.data, v.eccb)
			}
			c.touch(v, now)
			if c.cfg.Meter != nil {
				c.cfg.Meter.AddL1Read(1)  // replica array read
				c.cfg.Meter.AddL1Write(1) // primary install
			}
			return c.cfg.HitLatency + 1
		}
	}

	// Full miss: fetch from L2/memory.
	lat := c.cfg.HitLatency + c.cfg.Next.Access(now+c.cfg.HitLatency, addr, cache.Read)
	v := c.evictFor(c.homeSet(ba), now)
	c.fill(v, ba, false, now)
	c.depositDuplicate(v)
	c.prefetchNext(ba, now)

	// LS schemes also replicate at fill time (§3.1 mechanism (i)).
	if c.cfg.Scheme.Trigger == ReplLoadsStores {
		c.stats.ReplAttempts++
		created := c.replicate(v, now)
		if created >= 1 {
			c.stats.ReplSuccesses++
		}
		if created >= 2 {
			c.stats.ReplDoubles++
		}
	}
	return lat
}

// Store performs a data-cache write of the aligned 64-bit word containing
// addr. Stores are buffered and always complete in one cycle for the
// pipeline (§3.2); miss handling proceeds in the background and is
// reflected in statistics and energy only.
func (c *Cache) Store(now uint64, addr uint64) uint64 {
	ba := c.blockAddr(addr)
	c.stats.Writes++
	c.noteAccess(ba, addr)
	c.storeSeq++
	value := storeValue(addr, c.storeSeq)

	if c.cfg.WritePolicy == cache.WriteThrough {
		return c.storeWriteThrough(now, addr, ba, value)
	}

	ln := c.lookupPrimary(ba)
	if ln != nil {
		c.stats.WriteHits++
		if ln.prefetched {
			ln.prefetched = false
			c.stats.PrefetchHits++
		}
	} else {
		c.stats.WriteMisses++
		// Write-allocate: fetch, then write.
		c.cfg.Next.Access(now+c.cfg.HitLatency, addr, cache.Read)
		ln = c.evictFor(c.homeSet(ba), now)
		c.fill(ln, ba, false, now)
	}
	c.writeWord(ln, addr, value)
	ln.dirty = true
	c.touch(ln, now)
	c.depositDuplicate(ln)

	// Two-tier ICR: a copy parked in the far tier no longer matches the
	// just-written block and must not serve future repairs.
	if c.cfg.CrossTier != nil {
		c.cfg.CrossTier.DropReplica(ba)
		c.cross.Drops++
	}

	if c.cfg.Scheme.HasReplication() {
		// Both S and LS replicate at writes (§3.1 mechanism (ii)); any
		// existing replicas are updated in place. Every write counts as a
		// replication attempt; the attempt succeeds only if it *creates*
		// a new replica. Stores to already-replicated hot blocks are thus
		// attempts that create nothing, which is what keeps the measured
		// replication ability "relatively low" even while loads-with-
		// replica stays high (§5.1): the hot data is already duplicated.
		replicas := c.findReplicas(ba)
		nrep := len(replicas) // replicate() below reuses the scratch buffer
		for _, rep := range replicas {
			c.writeWord(rep, addr, value)
			c.touch(rep, now)
		}
		c.stats.ReplAttempts++
		created := 0
		if nrep < c.replicaQuota(ba) {
			created = c.replicate(ln, now)
		}
		if created >= 1 {
			c.stats.ReplSuccesses++
			// A "double" is an attempt that achieved the full two-replica
			// state (Fig 3: "three copies of a block exist").
			if nrep+created >= 2 {
				c.stats.ReplDoubles++
			}
		}
	}
	c.revalVuln(ln, now)
	return c.cfg.HitLatency
}

// storeWriteThrough implements the §5.8 comparison point: every store is
// forwarded to the next level (through the coalescing write buffer when
// configured), lines never become dirty, and write misses do not allocate.
func (c *Cache) storeWriteThrough(now uint64, addr, ba, value uint64) uint64 {
	if ln := c.lookupPrimary(ba); ln != nil {
		c.stats.WriteHits++
		c.writeWord(ln, addr, value)
		c.touch(ln, now)
	} else {
		c.stats.WriteMisses++
	}
	// Architectural memory is updated immediately: read-modify-write of
	// the stored word, in place.
	c.cfg.Mem.WriteWord(ba, int(addr)&(c.cfg.BlockSize-1), value)

	if c.cfg.WriteBuf != nil {
		stall := c.cfg.WriteBuf.Add(now, ba)
		return c.cfg.HitLatency + stall
	}
	return c.cfg.HitLatency + c.cfg.Next.Access(now+c.cfg.HitLatency, addr, cache.Write)
}

// prefetchNext brings block ba+1 into a dead or invalid way of its home
// set (never displacing live primaries or replicas): the next-line
// prefetcher of the dead-block literature (refs [14], [7]), competing with
// replication for the same recycled space.
func (c *Cache) prefetchNext(ba uint64, now uint64) {
	if !c.cfg.PrefetchIntoDead {
		return
	}
	nb := ba + 1
	if c.lookupPrimary(nb) != nil {
		return
	}
	set := c.homeSet(nb)
	base := set * c.cfg.Assoc
	var victim *line
	for w := 0; w < c.cfg.Assoc; w++ {
		ln := &c.lines[base+w]
		if !ln.valid {
			victim = ln
			break
		}
		if ln.replica || !c.dead(ln, now) {
			continue
		}
		if victim == nil || ln.lru < victim.lru {
			victim = ln
		}
	}
	if victim == nil {
		return
	}
	if victim.valid {
		if victim.prefetched {
			c.stats.PrefetchUnused++
		}
		if victim.dirty {
			c.writeback(victim, now)
		}
		c.setVuln(victim, now, false)
		if c.cfg.Scheme.HasReplication() && !c.cfg.Repl.LeaveReplicas {
			c.invalidateReplicas(victim.blockAddr)
		}
		victim.valid = false
	}
	c.cfg.Next.Access(now, nb<<c.offsetBits, cache.Read)
	c.fill(victim, nb, false, now)
	victim.prefetched = true
	c.stats.PrefetchFills++
}

// intactReplica returns a resident replica of the block whose full-line
// parity verifies, or nil.
func (c *Cache) intactReplica(ba uint64) *line {
	for _, rep := range c.findReplicas(ba) {
		if ecc.CheckParityLineRange(rep.data, rep.parity, 0, c.cfg.BlockSize) == ecc.OK {
			return rep
		}
		c.stats.ErrorsDetected++
	}
	return nil
}

// depositDuplicate copies a line into the attached duplication cache.
func (c *Cache) depositDuplicate(ln *line) {
	if c.cfg.Duplicates == nil {
		return
	}
	c.cfg.Duplicates.Put(ln.blockAddr, ln.data)
	if c.cfg.Meter != nil {
		c.cfg.Meter.AddRCacheWrite(1)
	}
}

// noteAccess records the most recently touched word for the Direct fault
// model.
func (c *Cache) noteAccess(ba, addr uint64) {
	if ln := c.lookupPrimary(ba); ln != nil {
		c.lastWord = ln.idx*c.wordsPerLine + (int(addr)&(c.cfg.BlockSize-1))/8
	}
}

// loadHitLatency returns the scheme latency for an error-free load hit.
func (c *Cache) loadHitLatency(replicated bool) uint64 {
	s := c.cfg.Scheme
	switch {
	case !s.HasReplication():
		if s.Protection == ECCProt && !s.SpeculativeECC {
			return c.cfg.HitLatency + c.cfg.ECCCheckLatency
		}
		return c.cfg.HitLatency
	case c.cur.Lookup == LookupParallel:
		if replicated || s.Protection == ECCProt {
			return c.cfg.HitLatency + 1
		}
		return c.cfg.HitLatency
	default: // LookupSerial
		if !replicated && s.Protection == ECCProt {
			return c.cfg.HitLatency + c.cfg.ECCCheckLatency
		}
		return c.cfg.HitLatency
	}
}

// ---------------------------------------------------------------------------
// Replication engine
// ---------------------------------------------------------------------------

// replicate tries to create replicas for a primary line up to the
// configured count, walking the distance list in order (§3.1 "Where do we
// replicate?" / "How aggressively should we replicate?"). It returns the
// number of replicas created.
func (c *Cache) replicate(primary *line, now uint64) int {
	ba := primary.blockAddr
	existing := c.findReplicas(ba)
	want := c.replicaQuota(ba) - len(existing)
	if want <= 0 {
		return 0
	}
	// Sets already holding a replica of this block are skipped. The used
	// list is scratch on the Cache (the distance list is short, so a
	// linear membership scan beats a map and allocates nothing).
	used := c.usedSets[:0]
	for _, rep := range existing {
		used = append(used, rep.idx/c.cfg.Assoc)
	}
	created := 0
	for i := range c.replDistances {
		if created >= want {
			break
		}
		set := c.candidateSet(ba, i)
		skip := false
		for _, u := range used {
			if u == set {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		v := c.replicaVictim(set, primary, now)
		if v == nil {
			continue
		}
		c.installReplica(v, primary, now)
		used = append(used, set)
		created++
	}
	c.usedSets = used
	// Two-tier ICR: a shortfall is offered to the far tier, which may
	// park a copy in its own dead space. Cross-tier copies are counted
	// apart from ReplSuccesses — they protect the block but are not
	// in-cache replicas.
	if created < want && c.cfg.CrossTier != nil {
		c.cross.Offers++
		if c.cfg.CrossTier.OfferReplica(now, ba, primary.data) {
			c.cross.Accepted++
		}
	}
	return created
}

// replicaVictim picks a victim way in the given set for a new replica, or
// nil if the policy finds no eligible line. No policy ever evicts a live
// (non-dead) primary copy, and the block's own primary is never a victim.
func (c *Cache) replicaVictim(set int, primary *line, now uint64) *line {
	base := set * c.cfg.Assoc
	var invalid, deadLine, replicaLine *line
	for w := 0; w < c.cfg.Assoc; w++ {
		ln := &c.lines[base+w]
		if ln == primary {
			continue
		}
		if !ln.valid {
			if invalid == nil {
				invalid = ln
			}
			continue
		}
		if ln.replica && ln.blockAddr == primary.blockAddr {
			continue // never displace our own replica
		}
		// "Dead blocks" as victim candidates are dead *primaries*: the
		// dead-only policy never displaces a replica (that is what makes
		// it reliability-biased, §3.1), which is also why replication
		// ability drops once sets fill with replicas (§5.1).
		if !ln.replica && c.dead(ln, now) && (deadLine == nil || ln.lru < deadLine.lru) {
			deadLine = ln
		}
		if ln.replica && (replicaLine == nil || ln.lru < replicaLine.lru) {
			replicaLine = ln
		}
	}
	if invalid != nil {
		return invalid
	}
	switch c.cur.Victim {
	case DeadOnly:
		return c.evictReplicaSite(deadLine, now)
	case DeadFirst:
		if deadLine != nil {
			return c.evictReplicaSite(deadLine, now)
		}
		return c.evictReplicaSite(replicaLine, now)
	case ReplicaFirst:
		if replicaLine != nil {
			return c.evictReplicaSite(replicaLine, now)
		}
		return c.evictReplicaSite(deadLine, now)
	case ReplicaOnly:
		return c.evictReplicaSite(replicaLine, now)
	default:
		return nil
	}
}

// evictReplicaSite frees a chosen victim (nil-safe) and accounts for the
// eviction.
func (c *Cache) evictReplicaSite(v *line, now uint64) *line {
	if v == nil {
		return nil
	}
	if v.replica {
		c.stats.ReplicaEvictions++
		// The mirrored primary may have just lost its protection.
		defer c.revalVuln(c.lookupPrimary(v.blockAddr), now)
	} else {
		// A dead primary: write back if dirty, drop its replicas.
		c.stats.DeadEvictions++
		if v.dirty {
			c.writeback(v, now)
		}
		c.setVuln(v, now, false)
		if !c.cfg.Repl.LeaveReplicas {
			c.invalidateReplicas(v.blockAddr)
		}
	}
	v.valid = false
	return v
}

// installReplica copies a primary into a victim way as a replica.
func (c *Cache) installReplica(v *line, primary *line, now uint64) {
	v.valid = true
	v.replica = true
	v.guest = false
	v.dirty = false
	v.blockAddr = primary.blockAddr
	copy(v.data, primary.data)
	copy(v.parity, primary.parity)
	if v.eccb != nil && primary.eccb != nil {
		copy(v.eccb, primary.eccb)
	}
	c.touch(v, now)
	if c.cfg.Meter != nil {
		c.cfg.Meter.AddL1Write(1) // the duplicate write (§5.8 energy cost)
		c.cfg.Meter.AddParity(1)
	}
}
