package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/ecc"
	"repro/internal/fault"
)

// line is one physical cache line. In addition to the usual tag state, a
// line carries the paper's extra metadata: a replica bit (1 bit per line,
// §5.1) and a decay counter (2 bits per line, §2), plus real data bytes and
// real check bits.
type line struct {
	valid   bool
	replica bool
	// guest marks a replica hosted on behalf of the far tier (two-tier
	// ICR): only guest lines serve cross-tier repairs or are dropped by
	// the far tier's DropReplica.
	guest bool
	dirty bool
	// blockAddr is the full block address (addr >> offsetBits). Replicas
	// store the address of the block they mirror; because a replica may
	// live in a set the address does not map to, lookups must match the
	// full block address plus the replica bit.
	blockAddr uint64
	// lastTick is the decay tick of the most recent access (the lazy
	// equivalent of a 2-bit saturating counter reset on access and
	// incremented every tick; the line is dead when now's tick is at
	// least 4 beyond lastTick).
	lastTick uint64
	lru      uint64

	data   []byte // BlockSize bytes of real payload
	parity []byte // 1 bit per data byte, packed
	eccb   []byte // 1 SEC-DED byte per 64-bit word (ECC schemes only)

	// Vulnerability tracking: a line is vulnerable while it holds dirty
	// data whose only protection is parity (no SEC-DED, no replica).
	vuln      bool
	vulnSince uint64

	// Adaptive dead-block prediction (timekeeping-style): EWMA of the
	// line's inter-access gap and the cycle of its last access.
	lastAccess uint64
	avgGap     uint64

	// prefetched marks a line brought in by the next-block prefetcher and
	// not yet demanded.
	prefetched bool

	// idx is the line's fixed position in Cache.lines (set once at New),
	// so set/way arithmetic never needs a search.
	idx int
}

// Cache is the ICR L1 data cache.
type Cache struct {
	cfg        Config //icrvet:persistent construction input: the pool shape fingerprints Scheme and Repl wholesale
	sets       int    //icrvet:persistent geometry: derived from cfg at construction
	offsetBits uint   //icrvet:persistent geometry: derived from cfg at construction
	indexMask  uint64 //icrvet:persistent geometry: derived from cfg at construction
	lines      []line
	clock      uint64 // LRU clock

	// Runtime-tunable knobs (see tune.go): initialized from cfg by
	// initTune at New and Reset, changed only through Retune. Every hot-
	// path read of a tunable knob goes through these, never through cfg,
	// so a retuned cache and a freshly built one execute identical code.
	cur        TuneState
	tickPeriod uint64 // decay tick length in cycles derived from cur.DecayWindow (0 => window 0)

	stats    Stats
	storeSeq uint64 // deterministic store-value generator state
	lastWord int    // word index of the most recent access (fault targeting)

	wordsPerLine int //icrvet:persistent geometry: derived from cfg at construction

	// replDistances is cfg.Repl.Distances normalized modulo the set count
	// and deduplicated (order preserved): the candidate-set walk for any
	// block is home+d for each d, with no per-access slice or dedup pass.
	replDistances []int //icrvet:persistent derived from cfg.Repl at construction, part of the pool shape

	// Scratch buffers reused across accesses so the hot path allocates
	// nothing. replScratch backs findReplicas results (valid until the
	// next findReplicas call); usedSets backs replicate's used-set list.
	// Neither ever reaches a Report: they carry only intra-access state.
	replScratch []*line
	usedSets    []int

	scrubPos int
	scrub    ScrubStats

	// Cross-tier replication state (see crosstier.go). crossBuf is the
	// 8-byte landing zone for far-tier repair words, embedded so the
	// recovery path stays allocation-free.
	cross    CrossStats
	crossBuf [8]byte
}

// New builds an ICR cache. It panics on invalid geometry (programming
// error).
func New(cfg Config) *Cache {
	cfg = cfg.withDefaults()
	if cfg.Size <= 0 || cfg.Assoc <= 0 || cfg.BlockSize <= 0 {
		panic("core: size, assoc, and block size must be positive")
	}
	if cfg.BlockSize&(cfg.BlockSize-1) != 0 || cfg.BlockSize%8 != 0 {
		panic("core: block size must be a power of two and a multiple of 8")
	}
	if cfg.Size%(cfg.Assoc*cfg.BlockSize) != 0 {
		panic("core: size must be a multiple of assoc*blockSize")
	}
	sets := cfg.Size / (cfg.Assoc * cfg.BlockSize)
	if sets&(sets-1) != 0 {
		panic("core: set count must be a power of two")
	}
	if cfg.Next == nil || cfg.Mem == nil {
		panic("core: Next level and Mem are required")
	}
	if cfg.WritePolicy == cache.WriteThrough && cfg.Scheme.HasReplication() {
		// The paper's write-through point (§5.8) is a *baseline*: ICR's
		// replicas are maintained on the write-back path, and combining
		// the two would silently skip store-time replication.
		panic("core: replication requires a write-back dL1")
	}
	offsetBits := uint(0)
	for 1<<offsetBits < cfg.BlockSize {
		offsetBits++
	}
	c := &Cache{
		cfg:          cfg,
		sets:         sets,
		offsetBits:   offsetBits,
		indexMask:    uint64(sets) - 1,
		lines:        make([]line, sets*cfg.Assoc),
		lastWord:     -1,
		wordsPerLine: cfg.BlockSize / 8,
	}
	c.initTune()
	parityLen := ecc.ParityBytesPerLine(cfg.BlockSize)
	eccLen := 0
	if cfg.Scheme.Protection == ECCProt {
		eccLen = ecc.SECDEDBytesPerLine(cfg.BlockSize)
	}
	for i := range c.lines {
		c.lines[i].idx = i
		c.lines[i].data = make([]byte, cfg.BlockSize)
		c.lines[i].parity = make([]byte, parityLen)
		if eccLen > 0 {
			c.lines[i].eccb = make([]byte, eccLen)
		}
	}
	for _, d := range cfg.Repl.Distances {
		nd := d % sets
		if nd < 0 {
			nd += sets
		}
		dup := false
		for _, prev := range c.replDistances {
			if prev == nd {
				dup = true
				break
			}
		}
		if !dup {
			c.replDistances = append(c.replDistances, nd)
		}
	}
	c.replScratch = make([]*line, 0, len(c.replDistances)*cfg.Assoc)
	c.usedSets = make([]int, 0, len(c.replDistances))
	return c
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Scheme returns the configured scheme.
func (c *Cache) Scheme() Scheme { return c.cfg.Scheme }

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) blockAddr(addr uint64) uint64 { return addr >> c.offsetBits }
func (c *Cache) homeSet(blockAddr uint64) int { return int(blockAddr & c.indexMask) }

// tick converts a cycle count into a decay tick index.
func (c *Cache) tick(now uint64) uint64 {
	if c.tickPeriod == 0 {
		return 0
	}
	return now / c.tickPeriod
}

// dead reports whether the line is predicted dead at cycle now.
//
// FixedWindow: the decay counter has saturated (with a zero window every
// line is dead the moment its access completes — §5: "the block is
// immediately pronounced dead, as soon as the access for that block is
// complete"). Adaptive: the line has been idle for four times its observed
// inter-access gap.
func (c *Cache) dead(ln *line, now uint64) bool {
	if !c.cfg.Scheme.HasReplication() && !c.cfg.PrefetchIntoDead {
		return false
	}
	if c.cfg.Repl.Decay == Adaptive {
		gap := ln.avgGap
		if gap < 32 {
			gap = 32 // floor: back-to-back accesses are not a 0-cycle habit
		}
		return now-ln.lastAccess > 4*gap
	}
	if c.tickPeriod == 0 {
		return true
	}
	return c.tick(now)-ln.lastTick >= 4
}

// setVuln opens or closes a line's vulnerability interval.
func (c *Cache) setVuln(ln *line, now uint64, vuln bool) {
	if ln.vuln == vuln {
		return
	}
	if ln.vuln {
		c.stats.VulnerableLineCycles += now - ln.vulnSince
	} else {
		ln.vulnSince = now
	}
	ln.vuln = vuln
}

// revalVuln recomputes a primary line's vulnerability state: dirty data
// protected only by parity, with no replica standing behind it. (The
// separate r-cache is deliberately not counted: its duplicates can vanish
// silently, so they do not constitute a guarantee.)
func (c *Cache) revalVuln(ln *line, now uint64) {
	if ln == nil || !ln.valid || ln.replica {
		return
	}
	vuln := ln.dirty &&
		c.cfg.Scheme.Protection != ECCProt &&
		!c.hasReplica(ln.blockAddr)
	c.setVuln(ln, now, vuln)
}

// FinishVulnerability closes all open vulnerability intervals at the end
// of a run; call once before reading Stats.
func (c *Cache) FinishVulnerability(now uint64) {
	for i := range c.lines {
		ln := &c.lines[i]
		if ln.valid && !ln.replica {
			c.setVuln(ln, now, false)
		}
	}
}

// touch refreshes LRU and decay state for an accessed line.
func (c *Cache) touch(ln *line, now uint64) {
	c.clock++
	ln.lru = c.clock
	ln.lastTick = c.tick(now)
	if c.cfg.Repl.Decay == Adaptive {
		if gap := now - ln.lastAccess; gap > 0 && ln.lastAccess > 0 {
			// EWMA with 1/4 weight on the newest observation.
			ln.avgGap = (3*ln.avgGap + gap) / 4
		}
	}
	ln.lastAccess = now
}

// lookupPrimary finds the primary copy of a block in its home set.
func (c *Cache) lookupPrimary(blockAddr uint64) *line {
	base := c.homeSet(blockAddr) * c.cfg.Assoc
	for w := 0; w < c.cfg.Assoc; w++ {
		ln := &c.lines[base+w]
		if ln.valid && !ln.replica && ln.blockAddr == blockAddr {
			return ln
		}
	}
	return nil
}

// candidateSet returns the i-th set where replicas of a block may live, in
// attempt order. The distance list was normalized and deduplicated at New,
// so home+d needs at most one wrap.
func (c *Cache) candidateSet(blockAddr uint64, i int) int {
	s := c.homeSet(blockAddr) + c.replDistances[i]
	if s >= c.sets {
		s -= c.sets
	}
	return s
}

// findReplicas returns every resident replica of a block, searching the
// candidate sets the placement policy could have used (this mirrors the
// bounded parallel lookup real hardware would perform).
//
// The returned slice is backed by c.replScratch and is valid only until
// the next findReplicas call on this cache; callers that need a fact about
// the replicas across a nested call must capture it (e.g. the length)
// first. hasReplica is the clobber-free alternative for yes/no questions.
func (c *Cache) findReplicas(blockAddr uint64) []*line {
	if !c.cfg.Scheme.HasReplication() {
		return nil
	}
	out := c.replScratch[:0]
	for i := range c.replDistances {
		base := c.candidateSet(blockAddr, i) * c.cfg.Assoc
		for w := 0; w < c.cfg.Assoc; w++ {
			ln := &c.lines[base+w]
			if ln.valid && ln.replica && ln.blockAddr == blockAddr {
				out = append(out, ln)
			}
		}
	}
	c.replScratch = out
	return out
}

// hasReplica reports whether any resident replica of the block exists. It
// early-exits and never touches the shared scratch buffer, so it is safe
// inside deferred revalidation while a caller still holds a findReplicas
// result.
func (c *Cache) hasReplica(blockAddr uint64) bool {
	if !c.cfg.Scheme.HasReplication() {
		return false
	}
	for i := range c.replDistances {
		base := c.candidateSet(blockAddr, i) * c.cfg.Assoc
		for w := 0; w < c.cfg.Assoc; w++ {
			ln := &c.lines[base+w]
			if ln.valid && ln.replica && ln.blockAddr == blockAddr {
				return true
			}
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Content helpers
// ---------------------------------------------------------------------------

// recode rewrites all check bits of a line from its current data.
func (c *Cache) recode(ln *line) {
	ecc.EncodeParityLine(ln.data, ln.parity)
	if ln.eccb != nil {
		ecc.EncodeSECDEDLine(ln.data, ln.eccb)
	}
}

// recodeWord rewrites the check bits covering the aligned 64-bit word at
// byte offset off.
func (c *Cache) recodeWord(ln *line, off int) {
	w := off &^ 7
	// Parity bits for the word's 8 bytes live in parity[w/8].
	ln.parity[w/8] = ecc.EncodeParity64(ecc.Word64(ln.data, w))
	if ln.eccb != nil {
		ln.eccb[w/8] = ecc.EncodeSECDED(ecc.Word64(ln.data, off))
	}
}

// fill installs block content into a line from architectural memory.
func (c *Cache) fill(ln *line, blockAddr uint64, asReplica bool, now uint64) {
	ln.valid = true
	ln.replica = asReplica
	ln.guest = false
	ln.dirty = false
	ln.prefetched = false
	ln.blockAddr = blockAddr
	copy(ln.data, c.cfg.Mem.PeekBlock(blockAddr))
	c.recode(ln)
	c.touch(ln, now)
	if c.cfg.Meter != nil {
		c.cfg.Meter.AddL1Write(1)
	}
}

// storeValue produces the deterministic value written by the n-th store.
func storeValue(addr, seq uint64) uint64 {
	x := addr ^ (seq * 0x9e3779b97f4a7c15)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// writeWord writes an 8-byte value into a line at the word containing addr
// and refreshes that word's check bits.
func (c *Cache) writeWord(ln *line, addr uint64, value uint64) {
	off := int(addr) & (c.cfg.BlockSize - 1)
	ecc.PutWord64(ln.data, off, value)
	c.recodeWord(ln, off)
	if c.cfg.Meter != nil {
		c.cfg.Meter.AddL1WordWrite(1)
		c.cfg.Meter.AddParity(1)
		if ln.eccb != nil {
			c.cfg.Meter.AddECC(1)
		}
	}
}

// writeback flushes a dirty line's content to the architectural memory and
// charges the next-level write. Corruption that the line's own codes could
// have caught is counted as a silent writeback (it propagates to L2
// undetected, the hazard §3.1 describes for parity-protected dirty data).
func (c *Cache) writeback(ln *line, now uint64) {
	c.setVuln(ln, now, false)
	c.stats.Writebacks++
	if ecc.CheckParityLineRange(ln.data, ln.parity, 0, c.cfg.BlockSize) != ecc.OK {
		c.stats.SilentWritebacks++
	}
	c.cfg.Mem.WriteBlock(ln.blockAddr, ln.data)
	c.cfg.Next.Access(now, ln.blockAddr<<c.offsetBits, cache.Write)
}

// invalidateReplicas drops every replica of a block (used when the primary
// is evicted and LeaveReplicas is off).
func (c *Cache) invalidateReplicas(blockAddr uint64) {
	for _, rep := range c.findReplicas(blockAddr) {
		rep.valid = false
		c.stats.ReplicaEvictions++
	}
}

// evictFor frees the LRU way of a set for a new primary copy. Placement of
// primaries uses normal LRU "regardless of whether it is a dead, replica or
// another primary block" (§3.1).
func (c *Cache) evictFor(set int, now uint64) *line {
	base := set * c.cfg.Assoc
	victim := base
	for w := 0; w < c.cfg.Assoc; w++ {
		ln := &c.lines[base+w]
		if !ln.valid {
			victim = base + w
			break
		}
		if ln.lru < c.lines[victim].lru {
			victim = base + w
		}
	}
	v := &c.lines[victim]
	if v.valid {
		if v.replica {
			c.stats.ReplicaEvictions++
			// The mirrored primary may have just lost its protection.
			defer c.revalVuln(c.lookupPrimary(v.blockAddr), now)
		} else {
			if v.prefetched {
				c.stats.PrefetchUnused++
			}
			if v.dirty {
				c.writeback(v, now)
			}
			c.setVuln(v, now, false)
			if c.cfg.Scheme.HasReplication() && !c.cfg.Repl.LeaveReplicas {
				c.invalidateReplicas(v.blockAddr)
			}
		}
		v.valid = false
	}
	return v
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

// WordCount returns the total number of 64-bit words in the data array
// (valid or not); the injector draws word indices from this space.
func (c *Cache) WordCount() int { return len(c.lines) * c.wordsPerLine }

// LastAccessedWord returns the array word index of the most recent access,
// or -1.
func (c *Cache) LastAccessedWord() int { return c.lastWord }

// Inject applies one injection event from the given injector. Flips landing
// in invalid lines are counted but have no architectural effect (there is
// no data there to corrupt), matching injection into a physical array.
func (c *Cache) Inject(in *fault.Injector) {
	flips := in.Flips(c.WordCount(), c.lastWord)
	for _, f := range flips {
		li := f.Word / c.wordsPerLine
		ln := &c.lines[li]
		if !ln.valid {
			c.stats.InjectedIntoInvalid++
			continue
		}
		off := (f.Word % c.wordsPerLine) * 8
		ln.data[off+f.Bit/8] ^= 1 << uint(f.Bit%8)
		c.stats.InjectedFlips++
	}
}

// ---------------------------------------------------------------------------
// Debug / test introspection
// ---------------------------------------------------------------------------

// CorruptPrimary flips the given bit (0..7 within each byte) of the byte at
// addr in the block's resident primary copy. It returns false if the block
// has no primary copy. Intended for tests and demonstrations that need a
// deterministic error rather than a randomly injected one.
func (c *Cache) CorruptPrimary(addr uint64, bit uint) bool {
	ln := c.lookupPrimary(c.blockAddr(addr))
	if ln == nil {
		return false
	}
	ln.data[int(addr)&(c.cfg.BlockSize-1)] ^= 1 << (bit % 8)
	return true
}

// CorruptReplica flips the given bit of the byte at addr in the block's
// i-th resident replica. It returns false if no such replica exists.
func (c *Cache) CorruptReplica(addr uint64, i int, bit uint) bool {
	reps := c.findReplicas(c.blockAddr(addr))
	if i < 0 || i >= len(reps) {
		return false
	}
	reps[i].data[int(addr)&(c.cfg.BlockSize-1)] ^= 1 << (bit % 8)
	return true
}

// PrimaryDirty reports whether the block containing addr has a dirty
// resident primary copy.
func (c *Cache) PrimaryDirty(addr uint64) bool {
	ln := c.lookupPrimary(c.blockAddr(addr))
	return ln != nil && ln.dirty
}

// ReadWord returns the stored (possibly corrupted) 64-bit word containing
// addr from the primary copy, without updating any cache state.
func (c *Cache) ReadWord(addr uint64) (uint64, bool) {
	ln := c.lookupPrimary(c.blockAddr(addr))
	if ln == nil {
		return 0, false
	}
	return ecc.Word64(ln.data, int(addr)&(c.cfg.BlockSize-1)), true
}

// HasPrimary reports whether the block containing addr has a resident
// primary copy.
func (c *Cache) HasPrimary(addr uint64) bool {
	return c.lookupPrimary(c.blockAddr(addr)) != nil
}

// WouldHit reports whether a load of addr would be served without a miss:
// a resident primary, or (in §5.6 performance mode) a leftover replica.
// It changes no state; the core uses it to gate loads on MSHR capacity.
func (c *Cache) WouldHit(addr uint64) bool {
	ba := c.blockAddr(addr)
	if c.lookupPrimary(ba) != nil {
		return true
	}
	return c.cfg.Repl.LeaveReplicas && c.hasReplica(ba)
}

// ReplicaCount returns the number of resident replicas for the block
// containing addr.
func (c *Cache) ReplicaCount(addr uint64) int {
	return len(c.findReplicas(c.blockAddr(addr)))
}

// CheckInvariants validates internal consistency and returns an error
// describing the first violation found. It is exercised by tests and
// property checks:
//
//  1. at most one primary copy of any block, and it lives in its home set;
//  2. every replica belongs to a scheme with replication enabled;
//  3. check bits lengths match the geometry.
func (c *Cache) CheckInvariants() error {
	for i := range c.lines {
		ln := &c.lines[i]
		if !ln.valid {
			continue
		}
		set := i / c.cfg.Assoc
		if ln.replica {
			if !c.cfg.Scheme.HasReplication() {
				return fmt.Errorf("replica present in non-replicating scheme (line %d)", i)
			}
		} else {
			if got := c.homeSet(ln.blockAddr); got != set {
				return fmt.Errorf("primary of block %#x in set %d, home is %d", ln.blockAddr, set, got)
			}
			// A duplicate primary must share the home set, so scanning the
			// earlier ways of this set finds it without a map.
			for j := set * c.cfg.Assoc; j < i; j++ {
				dup := &c.lines[j]
				if dup.valid && !dup.replica && dup.blockAddr == ln.blockAddr {
					return fmt.Errorf("duplicate primary for block %#x", ln.blockAddr)
				}
			}
		}
		if len(ln.data) != c.cfg.BlockSize || len(ln.parity) != ecc.ParityBytesPerLine(c.cfg.BlockSize) {
			return fmt.Errorf("line %d: bad payload geometry", i)
		}
	}
	return nil
}

// Reset restores the cache to its post-construction state — every line
// invalid with zeroed metadata, counters and scrub state cleared — without
// reallocating the per-line data, parity, or ECC arrays. Stale payload
// bytes in invalid lines are unreachable: every fill copies the full block
// (and recomputes its check bits) before the line turns valid. Attached
// components (write buffer, duplicate cache, energy meter) have their own
// Reset methods; the caller resets them alongside.
func (c *Cache) Reset() {
	for i := range c.lines {
		l := &c.lines[i]
		data, parity, eccb := l.data, l.parity, l.eccb
		*l = line{data: data, parity: parity, eccb: eccb, idx: i}
	}
	c.clock = 0
	c.initTune()
	c.stats = Stats{}
	c.storeSeq = 0
	c.lastWord = -1
	c.replScratch = c.replScratch[:0]
	c.usedSets = c.usedSets[:0]
	c.scrubPos = 0
	c.scrub = ScrubStats{}
	c.cross = CrossStats{}
	c.crossBuf = [8]byte{}
}
