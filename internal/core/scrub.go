package core

import "repro/internal/ecc"

// Scrubbing (Saleh et al., cited as the paper's reference [21]): a
// background engine periodically sweeps the data array verifying check
// bits, repairing what it can before a demand load trips over the error.
// Scrubbing composes with every scheme: it uses the same recovery ladder
// as loads (replica -> ECC -> clean refill), and it is the natural
// companion to ICR because a replica that would repair a load can just as
// well repair proactively.

// ScrubStats counts scrubber activity.
type ScrubStats struct {
	Checks   uint64 // lines verified
	Errors   uint64 // lines found corrupted
	Repaired uint64 // lines restored (replica, ECC, duplicate, or refill)
	Lost     uint64 // dirty lines with no intact copy (data loss found early)
}

// ScrubStats returns a snapshot of the scrubber's counters.
func (c *Cache) ScrubStats() ScrubStats { return c.scrub }

// Scrub verifies the next n lines in round-robin order at cycle now,
// repairing corrupted lines where possible. Call it periodically (e.g.
// every k cycles from the cycle hook) to model a background scrubber.
func (c *Cache) Scrub(now uint64, n int) {
	for i := 0; i < n; i++ {
		ln := &c.lines[c.scrubPos]
		c.scrubPos = (c.scrubPos + 1) % len(c.lines)
		if !ln.valid {
			continue
		}
		c.scrub.Checks++
		if c.cfg.Meter != nil {
			// One parity verification per word of the line.
			c.cfg.Meter.AddParity(uint64(c.wordsPerLine))
		}
		if ecc.CheckParityLineRange(ln.data, ln.parity, 0, c.cfg.BlockSize) == ecc.OK {
			continue
		}
		c.scrub.Errors++
		if c.repairLine(ln, now) {
			c.scrub.Repaired++
		} else {
			c.scrub.Lost++
		}
	}
}

// repairLine restores every corrupted word of a line using the scheme's
// recovery ladder. It returns false when dirty data was lost (the line is
// refilled from memory regardless, so simulation proceeds).
func (c *Cache) repairLine(ln *line, now uint64) bool {
	var replicas []*line
	var one [1]*line
	if !ln.replica {
		replicas = c.findReplicas(ln.blockAddr)
	} else if p := c.lookupPrimary(ln.blockAddr); p != nil {
		// A corrupted replica heals from its primary.
		one[0] = p
		replicas = one[:]
	}
	ok := true
	for off := 0; off < c.cfg.BlockSize; off += 8 {
		if ecc.CheckParityLineRange(ln.data, ln.parity, off, 8) == ecc.OK {
			continue
		}
		if !c.repairWord(ln, replicas, off, now) {
			ok = false
		}
	}
	if !ok {
		// Unrecoverable content: refill from architectural memory so the
		// array is consistent again (the dirty update is lost).
		copy(ln.data, c.cfg.Mem.PeekBlock(ln.blockAddr))
		ln.dirty = false
		c.recode(ln)
		c.revalVuln(ln, now)
	}
	return ok
}

// repairWord restores one corrupted word; returns false if the data was
// dirty and no intact copy existed.
func (c *Cache) repairWord(ln *line, replicas []*line, off int, now uint64) bool {
	for _, rep := range replicas {
		if ecc.CheckParityLineRange(rep.data, rep.parity, off, 8) == ecc.OK {
			c.repairFrom(ln, rep, off)
			return true
		}
	}

	if ln.eccb != nil {
		if r := ecc.CheckSECDEDLineWord(ln.data, ln.eccb, off); r.DataIntact() {
			c.recodeWord(ln, off)
			return true
		}
	}
	if c.cfg.Duplicates != nil {
		if dup, ok := c.cfg.Duplicates.Get(ln.blockAddr); ok {
			copy(ln.data[off:off+8], dup[off:off+8])
			c.recodeWord(ln, off)
			return true
		}
	}
	if !ln.dirty {
		// Clean data refills from below at leisure. Scrubbing never
		// touches LRU or decay state: it is invisible to replacement.
		copy(ln.data, c.cfg.Mem.PeekBlock(ln.blockAddr))
		c.recode(ln)
		return true
	}
	return false
}
