package core

import "testing"

func TestAdaptiveDecayLearnsAccessRhythm(t *testing.T) {
	c, _ := testCache(t, func(cfg *Config) {
		cfg.Repl.Decay = Adaptive
		cfg.Repl.Victim = DeadOnly
	})
	// Train block 5 with a ~100-cycle access rhythm.
	for i := uint64(0); i < 20; i++ {
		c.Load(i*100, addrOfBlock(5))
		c.Load(i*100+1, addrOfBlock(13))
	}
	// 150 cycles after its last access (< 4x gap): still live, so a
	// replica targeting set 5 fails.
	c.Store(1901+150, addrOfBlock(1))
	if got := c.ReplicaCount(addrOfBlock(1)); got != 0 {
		t.Errorf("line within its rhythm must be live (replica count %d)", got)
	}
	// 1000 cycles after (> 4x gap): dead, replica succeeds.
	c.Store(1901+1000, addrOfBlock(1))
	if got := c.ReplicaCount(addrOfBlock(1)); got != 1 {
		t.Errorf("line idle past 4x its gap must be dead (replica count %d)", got)
	}
}

func TestAdaptiveDecayFastLinesDieFast(t *testing.T) {
	c, _ := testCache(t, func(cfg *Config) {
		cfg.Repl.Decay = Adaptive
	})
	// Back-to-back accesses: tiny gap, so the line dies quickly after use.
	c.Load(100, addrOfBlock(5))
	c.Load(101, addrOfBlock(5))
	c.Load(102, addrOfBlock(13))
	c.Load(103, addrOfBlock(13))
	// 500 cycles later both are long past 4x their (floored) gap.
	c.Store(600, addrOfBlock(1))
	if got := c.ReplicaCount(addrOfBlock(1)); got != 1 {
		t.Errorf("burst-accessed idle lines should be dead (replica count %d)", got)
	}
}

func TestPrefetchIntoDeadFillsNextBlock(t *testing.T) {
	c, _ := testCache(t, func(cfg *Config) {
		cfg.Scheme = BaseP()
		cfg.PrefetchIntoDead = true
	})
	c.Load(0, addrOfBlock(1))
	if !c.HasPrimary(addrOfBlock(2)) {
		t.Fatal("next block should have been prefetched")
	}
	s := c.Stats()
	if s.PrefetchFills != 1 {
		t.Errorf("PrefetchFills = %d, want 1", s.PrefetchFills)
	}
	// Demand hit on the prefetched block counts once.
	if lat := c.Load(1, addrOfBlock(2)); lat != 1 {
		t.Errorf("prefetched block should hit (lat %d)", lat)
	}
	s = c.Stats()
	if s.PrefetchHits != 1 {
		t.Errorf("PrefetchHits = %d, want 1", s.PrefetchHits)
	}
	c.Load(2, addrOfBlock(2))
	if got := c.Stats().PrefetchHits; got != 1 {
		t.Errorf("second demand access must not recount (got %d)", got)
	}
}

func TestPrefetchNeverEvictsLiveLines(t *testing.T) {
	c, _ := testCache(t, func(cfg *Config) {
		cfg.Scheme = BaseP()
		cfg.PrefetchIntoDead = true
		cfg.Repl.DecayWindow = 1 << 40 // nothing dies
	})
	// Fill set 2 with live primaries (blocks 2 and 10).
	c.Load(0, addrOfBlock(2))
	c.Load(1, addrOfBlock(10))
	// Miss on block 1 wants to prefetch block 2 — already present. Miss
	// on block 9 wants to prefetch block 10 — present. Miss on block 17
	// wants block 18 (set 2): both ways live, must not displace.
	c.Load(2, addrOfBlock(17))
	if c.HasPrimary(addrOfBlock(18)) {
		t.Error("prefetch must not displace live lines")
	}
	if !c.HasPrimary(addrOfBlock(2)) || !c.HasPrimary(addrOfBlock(10)) {
		t.Error("live primaries must survive prefetch pressure")
	}
}

func TestPrefetchUnusedCounted(t *testing.T) {
	c, _ := testCache(t, func(cfg *Config) {
		cfg.Scheme = BaseP()
		cfg.PrefetchIntoDead = true
	})
	c.Load(0, addrOfBlock(1)) // prefetches block 2 into set 2
	// Displace the unused prefetched line with demand fills in set 2.
	c.Load(1, addrOfBlock(10))
	c.Load(2, addrOfBlock(18))
	c.Load(3, addrOfBlock(26))
	if got := c.Stats().PrefetchUnused; got == 0 {
		t.Error("displaced unused prefetch not counted")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPrefetchComposesWithReplication(t *testing.T) {
	c, _ := testCache(t, func(cfg *Config) {
		cfg.PrefetchIntoDead = true // with ICR-P-PS(S)
	})
	for i := 0; i < 64; i++ {
		a := addrOfBlock(i % 16)
		if i%3 == 0 {
			c.Store(uint64(i*7), a)
		} else {
			c.Load(uint64(i*7), a)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
	s := c.Stats()
	if s.PrefetchFills == 0 || s.ReplSuccesses == 0 {
		t.Errorf("both mechanisms should be active: %+v", s)
	}
}

func TestCorruptedLeftoverReplicaNotServed(t *testing.T) {
	c, _ := testCache(t, func(cfg *Config) { cfg.Repl.LeaveReplicas = true })
	a := addrOfBlock(1)
	c.Store(0, a)
	c.Load(1, addrOfBlock(9))
	c.Load(2, addrOfBlock(17)) // primary evicted, replica remains
	if c.ReplicaCount(a) != 1 {
		t.Fatal("setup: leftover replica missing")
	}
	c.CorruptReplica(a, 0, 3)
	lat := c.Load(3, a)
	if lat < 7 {
		t.Errorf("corrupted leftover must not serve the miss (lat %d)", lat)
	}
	s := c.Stats()
	if s.ReplicaServedMisses != 0 {
		t.Errorf("served %d misses from a corrupted replica", s.ReplicaServedMisses)
	}
	if s.ErrorsDetected == 0 {
		t.Error("replica corruption should have been detected")
	}
}
