package core

// Software-directed replication (the paper's §6 future work): "controlling
// replication using software mechanisms that can direct how many replicas
// are needed for each line, when such replication should be initiated, and
// what blocks should not be replicated."
//
// The hardware analogue is a pair of range registers (or page-table bits)
// the software programs; the cache consults them before spending a
// replication attempt. This file implements that interface plus an
// address-range policy, which examples and the ablation harness use to
// exempt streaming data (which has no reuse worth protecting) and to give
// critical structures extra copies.

// Hint is a software directive for one block.
type Hint struct {
	// Replicate enables replication for the block. When false the block
	// is never replicated (it still gets the scheme's base protection).
	Replicate bool
	// Replicas overrides the configured replica count when > 0.
	Replicas int
}

// HintPolicy maps a block's base byte address to a Hint. Implementations
// must be deterministic and cheap: the cache consults the policy on every
// replication trigger.
type HintPolicy interface {
	Hint(addr uint64) Hint
}

// ReplicateAll is the default policy: replicate everything at the
// configured count.
type ReplicateAll struct{}

var _ HintPolicy = ReplicateAll{}

// Hint implements HintPolicy.
func (ReplicateAll) Hint(uint64) Hint { return Hint{Replicate: true} }

// AddrRange is a half-open byte-address range [Start, End).
type AddrRange struct {
	Start, End uint64
	Hint       Hint
}

// RangePolicy applies the first matching range's hint, falling back to a
// default. It models software-programmed range registers.
type RangePolicy struct {
	Ranges  []AddrRange
	Default Hint
}

var _ HintPolicy = (*RangePolicy)(nil)

// NewRangePolicy returns a RangePolicy that replicates by default.
func NewRangePolicy(ranges ...AddrRange) *RangePolicy {
	return &RangePolicy{Ranges: ranges, Default: Hint{Replicate: true}}
}

// Hint implements HintPolicy.
func (p *RangePolicy) Hint(addr uint64) Hint {
	for _, r := range p.Ranges {
		if addr >= r.Start && addr < r.End {
			return r.Hint
		}
	}
	return p.Default
}

// replicaQuota returns how many replicas the block may have, after
// consulting the software hint policy (nil means replicate-all).
func (c *Cache) replicaQuota(blockAddr uint64) int {
	if c.cfg.Hints == nil {
		return c.cur.Replicas
	}
	h := c.cfg.Hints.Hint(blockAddr << c.offsetBits)
	if !h.Replicate {
		return 0
	}
	if h.Replicas > 0 {
		return h.Replicas
	}
	return c.cur.Replicas
}
