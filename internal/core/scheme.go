// Package core implements the paper's contribution: ICR, in-cache
// replication for the L1 data cache. Blocks predicted dead by a decay
// mechanism are recycled to hold replicas of blocks in active use; a
// parity-detected error in a replicated block is then repaired from its
// replica instead of requiring SEC-DED on every line or a trip to L2.
//
// The cache stores real data bits with real parity/SEC-DED check bits
// (internal/ecc), so the reliability results are computed, not assumed:
// fault injection (internal/fault) flips stored bits and every protected
// access runs the actual codecs.
package core

import "fmt"

// Protection selects how unreplicated lines are protected.
type Protection uint8

// Protection options (§3.1 "How do we protect unreplicated cache blocks?").
const (
	// ParityProt maintains one parity bit per data byte. Detection only:
	// a detected error in a dirty unreplicated block is unrecoverable.
	ParityProt Protection = iota + 1
	// ECCProt maintains an 8-bit SEC-DED code per 64-bit word in addition
	// to byte parity, allowing single-bit correction on unreplicated lines.
	ECCProt
)

// String returns "P" or "ECC".
func (p Protection) String() string {
	switch p {
	case ParityProt:
		return "P"
	case ECCProt:
		return "ECC"
	default:
		return fmt.Sprintf("prot(%d)", uint8(p))
	}
}

// ParseProtection is the inverse of Protection.String — the shared parser
// behind per-tier protection knobs ("P"/"parity" and "ECC"/"ecc").
func ParseProtection(s string) (Protection, error) {
	switch s {
	case "P", "p", "parity":
		return ParityProt, nil
	case "ECC", "ecc":
		return ECCProt, nil
	default:
		return 0, fmt.Errorf("unknown protection %q (have parity, ecc)", s)
	}
}

// ReplTrigger selects when replicas are created (§3.1 "When do we
// replicate?").
type ReplTrigger uint8

// Replication triggers.
const (
	// ReplNone disables replication (the Base schemes).
	ReplNone ReplTrigger = iota + 1
	// ReplStores replicates only when a block is written in L1 ("S").
	ReplStores
	// ReplLoadsStores replicates both when a block is filled on a miss
	// and when it is written ("LS").
	ReplLoadsStores
)

// String returns "", "S", or "LS".
func (t ReplTrigger) String() string {
	switch t {
	case ReplNone:
		return ""
	case ReplStores:
		return "S"
	case ReplLoadsStores:
		return "LS"
	default:
		return fmt.Sprintf("trigger(%d)", uint8(t))
	}
}

// LookupMode selects how replicas participate in loads (§3.2).
type LookupMode uint8

// Lookup modes.
const (
	// LookupSerial ("PS": primary, then secondary) reads only the primary
	// copy on a load; the replica is consulted only if the primary's
	// parity check fails. Loads to replicated lines cost 1 cycle.
	LookupSerial LookupMode = iota + 1
	// LookupParallel ("PP") reads primary and replica in parallel and
	// compares before the load returns; loads to replicated lines cost
	// 2 cycles.
	LookupParallel
)

// String returns "PS" or "PP".
func (m LookupMode) String() string {
	switch m {
	case LookupSerial:
		return "PS"
	case LookupParallel:
		return "PP"
	default:
		return fmt.Sprintf("lookup(%d)", uint8(m))
	}
}

// VictimPolicy selects how a victim line is chosen at a replication site
// (§3.1 "How do we place a replica in a set?"). All policies share one
// rule: live (non-dead) primary copies are never evicted for a replica.
type VictimPolicy uint8

// Victim policies.
const (
	// DeadOnly picks the LRU line among dead lines only
	// (reliability-biased: replicas are not displaced).
	DeadOnly VictimPolicy = iota + 1
	// DeadFirst considers dead lines first, then replicas.
	DeadFirst
	// ReplicaFirst considers replicas first, then dead lines.
	ReplicaFirst
	// ReplicaOnly picks the LRU line among replicas only.
	ReplicaOnly
)

// String returns the policy name.
func (v VictimPolicy) String() string {
	switch v {
	case DeadOnly:
		return "dead-only"
	case DeadFirst:
		return "dead-first"
	case ReplicaFirst:
		return "replica-first"
	case ReplicaOnly:
		return "replica-only"
	default:
		return fmt.Sprintf("victim(%d)", uint8(v))
	}
}

// ParseVictimPolicy is the inverse of VictimPolicy.String — the shared
// parser behind every -victim flag and request field.
func ParseVictimPolicy(s string) (VictimPolicy, error) {
	switch s {
	case "dead-only":
		return DeadOnly, nil
	case "dead-first":
		return DeadFirst, nil
	case "replica-first":
		return ReplicaFirst, nil
	case "replica-only":
		return ReplicaOnly, nil
	default:
		return 0, fmt.Errorf("unknown victim policy %q (have dead-only, dead-first, replica-first, replica-only)", s)
	}
}

// Scheme identifies one of the paper's cache-protection schemes (§3.2).
type Scheme struct {
	// Trigger is ReplNone for the Base schemes.
	Trigger ReplTrigger
	// Protection covers unreplicated lines (and everything in the Base
	// schemes). Replicated lines are always verified by parity.
	Protection Protection
	// Lookup is how replicas are consulted on loads (ignored for Base).
	Lookup LookupMode
	// SpeculativeECC models BaseECC with speculative loads (§5.9): ECC
	// checks complete in the background so loads take 1 cycle, but each
	// load still pays the ECC verification energy.
	SpeculativeECC bool
}

// HasReplication reports whether the scheme creates replicas.
func (s Scheme) HasReplication() bool {
	return s.Trigger == ReplStores || s.Trigger == ReplLoadsStores
}

// Name returns the paper's name for the scheme, e.g. "BaseP",
// "ICR-ECC-PS(S)", "BaseECC-spec".
func (s Scheme) Name() string {
	if !s.HasReplication() {
		switch {
		case s.Protection == ECCProt && s.SpeculativeECC:
			return "BaseECC-spec"
		case s.Protection == ECCProt:
			return "BaseECC"
		default:
			return "BaseP"
		}
	}
	return fmt.Sprintf("ICR-%s-%s(%s)", s.Protection, s.Lookup, s.Trigger)
}

// String implements fmt.Stringer.
func (s Scheme) String() string { return s.Name() }

// BaseP returns the parity-only baseline: 1-cycle loads and stores, no
// replication, detected errors in dirty blocks are unrecoverable.
func BaseP() Scheme {
	return Scheme{Trigger: ReplNone, Protection: ParityProt, Lookup: LookupSerial}
}

// BaseECC returns the SEC-DED baseline: 2-cycle loads (1-cycle if
// speculative), 1-cycle stores, single-bit errors always corrected.
func BaseECC(speculative bool) Scheme {
	return Scheme{
		Trigger:        ReplNone,
		Protection:     ECCProt,
		Lookup:         LookupSerial,
		SpeculativeECC: speculative,
	}
}

// ICR returns an in-cache-replication scheme with the given protection for
// unreplicated lines, replica lookup mode, and replication trigger.
func ICR(prot Protection, lookup LookupMode, trigger ReplTrigger) Scheme {
	if trigger == ReplNone {
		panic("core: ICR scheme requires a replication trigger")
	}
	return Scheme{Trigger: trigger, Protection: prot, Lookup: lookup}
}

// AllSchemes returns the ten schemes of §3.2 in the paper's order:
// BaseP, BaseECC, then the eight ICR variants.
func AllSchemes() []Scheme {
	return []Scheme{
		BaseP(),
		BaseECC(false),
		ICR(ParityProt, LookupSerial, ReplLoadsStores),   // ICR-P-PS(LS)
		ICR(ParityProt, LookupSerial, ReplStores),        // ICR-P-PS(S)
		ICR(ParityProt, LookupParallel, ReplLoadsStores), // ICR-P-PP(LS)
		ICR(ParityProt, LookupParallel, ReplStores),      // ICR-P-PP(S)
		ICR(ECCProt, LookupSerial, ReplLoadsStores),      // ICR-ECC-PS(LS)
		ICR(ECCProt, LookupSerial, ReplStores),           // ICR-ECC-PS(S)
		ICR(ECCProt, LookupParallel, ReplLoadsStores),    // ICR-ECC-PP(LS)
		ICR(ECCProt, LookupParallel, ReplStores),         // ICR-ECC-PP(S)
	}
}

// SchemeByName resolves a paper scheme name (as produced by Scheme.Name).
func SchemeByName(name string) (Scheme, error) {
	if name == "BaseECC-spec" {
		return BaseECC(true), nil
	}
	for _, s := range AllSchemes() {
		if s.Name() == name {
			return s, nil
		}
	}
	return Scheme{}, fmt.Errorf("core: unknown scheme %q", name)
}
