package core

import "testing"

func TestReplicateAllPolicy(t *testing.T) {
	h := ReplicateAll{}.Hint(0x1234)
	if !h.Replicate || h.Replicas != 0 {
		t.Errorf("ReplicateAll hint = %+v", h)
	}
}

func TestRangePolicyMatching(t *testing.T) {
	p := NewRangePolicy(
		AddrRange{Start: 0x1000, End: 0x2000, Hint: Hint{Replicate: false}},
		AddrRange{Start: 0x2000, End: 0x3000, Hint: Hint{Replicate: true, Replicas: 2}},
	)
	cases := []struct {
		addr uint64
		want Hint
	}{
		{0x0fff, Hint{Replicate: true}},              // default
		{0x1000, Hint{Replicate: false}},             // first range start
		{0x1fff, Hint{Replicate: false}},             // first range end-1
		{0x2000, Hint{Replicate: true, Replicas: 2}}, // second range
		{0x3000, Hint{Replicate: true}},              // past second range
	}
	for _, c := range cases {
		if got := p.Hint(c.addr); got != c.want {
			t.Errorf("Hint(%#x) = %+v, want %+v", c.addr, got, c.want)
		}
	}
}

func TestHintExemptsBlocksFromReplication(t *testing.T) {
	noRepl := addrOfBlock(1)
	yesRepl := addrOfBlock(2)
	c, _ := testCache(t, func(cfg *Config) {
		cfg.Hints = NewRangePolicy(AddrRange{
			Start: noRepl, End: noRepl + 64, Hint: Hint{Replicate: false},
		})
	})
	c.Store(0, noRepl)
	c.Store(1, yesRepl)
	if got := c.ReplicaCount(noRepl); got != 0 {
		t.Errorf("exempted block replicated %d times", got)
	}
	if got := c.ReplicaCount(yesRepl); got != 1 {
		t.Errorf("non-exempt block replica count = %d, want 1", got)
	}
	// The exempted store still counts as an attempt that created nothing.
	s := c.Stats()
	if s.ReplAttempts != 2 || s.ReplSuccesses != 1 {
		t.Errorf("stats = attempts %d successes %d, want 2/1", s.ReplAttempts, s.ReplSuccesses)
	}
}

func TestHintRaisesReplicaQuota(t *testing.T) {
	a := addrOfBlock(1)
	c, _ := testCache(t, func(cfg *Config) {
		cfg.Repl.Distances = []int{4, 2} // room for two replicas
		cfg.Repl.Replicas = 1            // default quota 1
		cfg.Hints = NewRangePolicy(AddrRange{
			Start: a, End: a + 64, Hint: Hint{Replicate: true, Replicas: 2},
		})
	})
	c.Store(0, a)
	if got := c.ReplicaCount(a); got != 2 {
		t.Errorf("hinted block replica count = %d, want 2", got)
	}
	b := addrOfBlock(9) // same home set, default quota
	c.Store(1, b)
	if got := c.ReplicaCount(b); got != 1 {
		t.Errorf("default block replica count = %d, want 1", got)
	}
}

func TestHintedCacheInvariants(t *testing.T) {
	c, _ := testCache(t, func(cfg *Config) {
		cfg.Hints = NewRangePolicy(AddrRange{
			Start: 0, End: addrOfBlock(8), Hint: Hint{Replicate: false},
		})
	})
	for i := 0; i < 200; i++ {
		a := addrOfBlock(i % 24)
		if i%3 == 0 {
			c.Store(uint64(i), a)
		} else {
			c.Load(uint64(i), a)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
