package core

import "repro/internal/ecc"

// Cross-tier replication (two-tier ICR). The ICR L1 participates in both
// directions: as a *client* it offers replication shortfalls to
// cfg.CrossTier and consults it during load recovery, and as a *host* it
// implements ReplicaSink itself, letting a protected second tier park
// copies of its own blocks in dead L1 space. Hosted lines are ordinary
// replica lines with the guest bit set: every existing invariant —
// "replicas only under a replicating scheme", victim-policy behavior,
// write-path replica refresh — applies to them unchanged, but only guest
// lines serve cross-tier repairs or are dropped by the far tier (the
// cache's own replicas mirror its own primaries, which the far tier has
// no authority over).

// CrossStats counts cross-tier replication events, kept apart from Stats
// so the single-tier counters (pinned by the equivalence goldens) are
// untouched when cross-tier mode is off.
type CrossStats struct {
	// Client side: this cache pushing its blocks to the far tier.
	Offers   uint64 // replication shortfalls offered to the far tier
	Accepted uint64 // offers the far tier accepted
	Repairs  uint64 // recovery-ladder consultations of the far tier
	Repaired uint64 // consultations that supplied an intact word
	Drops    uint64 // drop notifications sent to the far tier on store

	// Host side: this cache hosting the far tier's blocks.
	HostOffers  uint64 // offers received
	HostedLines uint64 // offers accepted and installed
	HostRepairs uint64 // repair words served to the far tier
	HostCorrupt uint64 // hosted copies found corrupt and dropped
	HostDrops   uint64 // hosted copies invalidated by DropReplica
}

// Add accumulates another CrossStats into s.
func (s *CrossStats) Add(o CrossStats) {
	s.Offers += o.Offers
	s.Accepted += o.Accepted
	s.Repairs += o.Repairs
	s.Repaired += o.Repaired
	s.Drops += o.Drops
	s.HostOffers += o.HostOffers
	s.HostedLines += o.HostedLines
	s.HostRepairs += o.HostRepairs
	s.HostCorrupt += o.HostCorrupt
	s.HostDrops += o.HostDrops
}

// CrossTierStats returns a snapshot of the cache's cross-tier counters.
func (c *Cache) CrossTierStats() CrossStats { return c.cross }

var _ ReplicaSink = (*Cache)(nil)

// OfferReplica implements ReplicaSink: the far tier proposes parking a
// copy of one of its blocks here. The offer is accepted only when it can
// be hosted as a legal replica line — the scheme must replicate (a
// non-replicating scheme may hold no replica lines), the geometry must
// match, and the block's home set must have an invalid or dead
// non-replica way. Live primaries and existing replicas are never
// displaced for a guest.
func (c *Cache) OfferReplica(now uint64, blockAddr uint64, data []byte) bool {
	c.cross.HostOffers++
	if !c.cfg.Scheme.HasReplication() || len(data) != c.cfg.BlockSize {
		return false
	}
	if c.lookupPrimary(blockAddr) != nil || c.hasReplica(blockAddr) {
		// Already covered here: the resident copy is at least as fresh.
		return false
	}
	v := c.hostVictim(c.homeSet(blockAddr), now)
	if v == nil {
		return false
	}
	v.valid = true
	v.replica = true
	v.guest = true
	v.dirty = false
	v.prefetched = false
	v.blockAddr = blockAddr
	copy(v.data, data)
	c.recode(v)
	c.touch(v, now)
	if c.cfg.Meter != nil {
		c.cfg.Meter.AddL1Write(1)
		c.cfg.Meter.AddParity(1)
	}
	c.cross.HostedLines++
	return true
}

// hostVictim picks a way in the given set for a guest replica: an invalid
// way first, else the LRU dead non-replica line (which is evicted through
// the normal dead-eviction path, write-back included). It deliberately
// does not share replicaVictim, which dereferences a primary line this
// path does not have.
func (c *Cache) hostVictim(set int, now uint64) *line {
	base := set * c.cfg.Assoc
	var deadLine *line
	for w := 0; w < c.cfg.Assoc; w++ {
		ln := &c.lines[base+w]
		if !ln.valid {
			return ln
		}
		if ln.replica {
			continue
		}
		if c.dead(ln, now) && (deadLine == nil || ln.lru < deadLine.lru) {
			deadLine = ln
		}
	}
	return c.evictReplicaSite(deadLine, now)
}

// RepairWord implements ReplicaSink: supply the aligned 64-bit word at
// byte offset off of a hosted (guest) copy of blockAddr, if an intact one
// exists. Guests live in the block's home set, and the scan is inline and
// scratch-free — the far tier calls this from the middle of its own
// recovery, which may itself be nested inside an L1 access that still
// holds a findReplicas result. A corrupt guest found on the way is
// dropped. The latency is the cost of reaching this array from the far
// tier: a hit plus one transfer cycle.
func (c *Cache) RepairWord(_ uint64, blockAddr uint64, off int, dst []byte) (uint64, bool) {
	if off < 0 || off+8 > c.cfg.BlockSize || len(dst) < 8 {
		return 0, false
	}
	word := off &^ 7
	base := c.homeSet(blockAddr) * c.cfg.Assoc
	for w := 0; w < c.cfg.Assoc; w++ {
		ln := &c.lines[base+w]
		if !ln.valid || !ln.guest || ln.blockAddr != blockAddr {
			continue
		}
		if ecc.CheckParityLineRange(ln.data, ln.parity, word, 8) != ecc.OK {
			ln.valid = false
			c.cross.HostCorrupt++
			continue
		}
		copy(dst[:8], ln.data[word:word+8])
		if c.cfg.Meter != nil {
			c.cfg.Meter.AddL1Read(1)
			c.cfg.Meter.AddParity(1)
		}
		c.cross.HostRepairs++
		return c.cfg.HitLatency + 1, true
	}
	return 0, false
}

// DropReplica implements ReplicaSink: the far tier rewrote the block, so
// any guest copy parked here is stale and must not serve future repairs.
// The scan is inline for the same reentrancy reason as RepairWord — the
// far tier's write path runs inside this cache's own eviction handling.
func (c *Cache) DropReplica(blockAddr uint64) {
	if !c.cfg.Scheme.HasReplication() {
		return
	}
	base := c.homeSet(blockAddr) * c.cfg.Assoc
	for w := 0; w < c.cfg.Assoc; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.guest && ln.blockAddr == blockAddr {
			ln.valid = false
			c.cross.HostDrops++
		}
	}
}
