package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/energy"
	"repro/internal/fault"
)

// testCache builds a small ICR cache over a shared Memory: 8 sets, 2-way,
// 64-byte blocks (vertical distance N/2 = 4).
func testCache(t *testing.T, mutate func(*Config)) (*Cache, *cache.Memory) {
	t.Helper()
	mem := cache.NewMemory(6, 64) // next-level latency 6, like the paper's L2
	cfg := Config{
		Size: 1024, Assoc: 2, BlockSize: 64,
		Scheme: ICR(ParityProt, LookupSerial, ReplStores),
		Next:   mem, Mem: mem,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return New(cfg), mem
}

// addrOfBlock returns the base address of block index k.
func addrOfBlock(k int) uint64 { return uint64(k) * 64 }

func TestLoadMissThenHit(t *testing.T) {
	c, _ := testCache(t, func(cfg *Config) { cfg.Scheme = BaseP() })
	if lat := c.Load(0, addrOfBlock(1)); lat != 7 {
		t.Errorf("cold load latency = %d, want 7 (1 + 6)", lat)
	}
	if lat := c.Load(1, addrOfBlock(1)); lat != 1 {
		t.Errorf("hit load latency = %d, want 1", lat)
	}
	s := c.Stats()
	if s.Reads != 2 || s.ReadHits != 1 || s.ReadMisses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLoadHitLatencyPerScheme(t *testing.T) {
	// Latency of a load hit to a *replicated* and an *unreplicated* block
	// under every scheme (§3.2).
	cases := []struct {
		scheme         Scheme
		wantUnrepl     uint64
		wantReplicated uint64
	}{
		{BaseP(), 1, 1},
		{BaseECC(false), 2, 2},
		{BaseECC(true), 1, 1},
		{ICR(ParityProt, LookupSerial, ReplStores), 1, 1},
		{ICR(ParityProt, LookupParallel, ReplStores), 1, 2},
		{ICR(ECCProt, LookupSerial, ReplStores), 2, 1},
		{ICR(ECCProt, LookupParallel, ReplStores), 2, 2},
	}
	for _, tc := range cases {
		c, _ := testCache(t, func(cfg *Config) { cfg.Scheme = tc.scheme })
		// Unreplicated: load-miss fill then a load hit. (Trigger S never
		// replicates on loads.)
		a := addrOfBlock(1)
		c.Load(0, a)
		if lat := c.Load(1, a); lat != tc.wantUnrepl {
			t.Errorf("%s: unreplicated hit latency = %d, want %d", tc.scheme, lat, tc.wantUnrepl)
		}
		if !tc.scheme.HasReplication() {
			if lat := c.Load(2, a); lat != tc.wantReplicated {
				t.Errorf("%s: hit latency = %d, want %d", tc.scheme, lat, tc.wantReplicated)
			}
			continue
		}
		// Store creates a replica (decay window 0: everything dead, so a
		// site is always available); then measure a load hit.
		b := addrOfBlock(2)
		c.Store(3, b)
		if got := c.ReplicaCount(b); got != 1 {
			t.Fatalf("%s: replica count = %d, want 1", tc.scheme, got)
		}
		if lat := c.Load(4, b); lat != tc.wantReplicated {
			t.Errorf("%s: replicated hit latency = %d, want %d", tc.scheme, lat, tc.wantReplicated)
		}
	}
}

func TestStoreAlwaysOneCycle(t *testing.T) {
	for _, s := range AllSchemes() {
		c, _ := testCache(t, func(cfg *Config) { cfg.Scheme = s })
		if lat := c.Store(0, addrOfBlock(3)); lat != 1 {
			t.Errorf("%s: store miss latency = %d, want 1 (buffered)", s, lat)
		}
		if lat := c.Store(1, addrOfBlock(3)); lat != 1 {
			t.Errorf("%s: store hit latency = %d, want 1", s, lat)
		}
	}
}

func TestVerticalReplicaPlacement(t *testing.T) {
	c, _ := testCache(t, nil) // ICR-P-PS(S), distance N/2 = 4, window 0
	a := addrOfBlock(1)       // home set 1
	c.Store(0, a)
	if got := c.ReplicaCount(a); got != 1 {
		t.Fatalf("replica count = %d, want 1", got)
	}
	// The replica must live in set (1+4)%8 = 5: filling set 5 with
	// primaries must evict it, while filling other sets must not.
	s := c.Stats()
	if s.ReplAttempts != 1 || s.ReplSuccesses != 1 {
		t.Errorf("repl stats = %+v", s)
	}
	// Two primaries landing in set 5 (2-way) displace everything there.
	c.Load(1, addrOfBlock(5))
	c.Load(2, addrOfBlock(13))
	if got := c.ReplicaCount(a); got != 0 {
		t.Errorf("replica should have been evicted from set 5, count = %d", got)
	}
}

func TestHorizontalReplicaPlacement(t *testing.T) {
	c, _ := testCache(t, func(cfg *Config) {
		cfg.Repl.Distances = HorizontalDistances()
	})
	a := addrOfBlock(1)
	c.Store(0, a)
	if got := c.ReplicaCount(a); got != 1 {
		t.Fatalf("replica count = %d, want 1", got)
	}
	// Horizontal: primary and replica share set 1 (2 ways full). A load
	// of another block mapping to set 1 must still find its own data and
	// not confuse the replica for a primary of a different block.
	b := addrOfBlock(9) // also set 1
	c.Load(1, b)
	if !c.HasPrimary(b) {
		t.Error("new primary should be resident")
	}
	if !c.HasPrimary(a) {
		// LRU in set 1 was either the replica or the primary of a; with
		// window 0 the replica or primary could be the victim. The key
		// invariant: a's primary and replica cannot both survive.
		if c.ReplicaCount(a) > 0 {
			t.Error("replica without primary after LRU eviction in default mode")
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

func TestMultiAttemptFallback(t *testing.T) {
	// Make the single-attempt site unavailable by filling set 5 with live
	// primaries (decay window large so they are not dead).
	c, _ := testCache(t, func(cfg *Config) {
		cfg.Repl.DecayWindow = 1 << 40
		cfg.Repl.Distances = []int{4, 2} // N/2 then N/4
	})
	now := uint64(0)
	// Live primaries in set 5 (blocks 5, 13) and set 3 left free.
	c.Load(now, addrOfBlock(5))
	c.Load(now+1, addrOfBlock(13))
	a := addrOfBlock(1) // home set 1; tries set 5 (full of live primaries), then set 3
	c.Store(now+2, a)
	if got := c.ReplicaCount(a); got != 1 {
		t.Fatalf("multi-attempt should have placed a replica, count = %d", got)
	}
	// Single-attempt config must fail in the same situation.
	c2, _ := testCache(t, func(cfg *Config) {
		cfg.Repl.DecayWindow = 1 << 40
		cfg.Repl.Distances = []int{4}
	})
	c2.Load(now, addrOfBlock(5))
	c2.Load(now+1, addrOfBlock(13))
	c2.Store(now+2, a)
	if got := c2.ReplicaCount(a); got != 0 {
		t.Errorf("single attempt into a full live set should fail, count = %d", got)
	}
	st := c2.Stats()
	if st.ReplAttempts != 1 || st.ReplSuccesses != 0 {
		t.Errorf("repl stats = %+v, want attempt without success", st)
	}
}

func TestTwoReplicas(t *testing.T) {
	c, _ := testCache(t, func(cfg *Config) {
		cfg.Repl.Distances = []int{4, 2}
		cfg.Repl.Replicas = 2
	})
	a := addrOfBlock(1)
	c.Store(0, a)
	if got := c.ReplicaCount(a); got != 2 {
		t.Fatalf("replica count = %d, want 2", got)
	}
	s := c.Stats()
	if s.ReplDoubles != 1 {
		t.Errorf("ReplDoubles = %d, want 1", s.ReplDoubles)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

func TestLSReplicatesOnLoadMiss(t *testing.T) {
	cLS, _ := testCache(t, func(cfg *Config) {
		cfg.Scheme = ICR(ParityProt, LookupSerial, ReplLoadsStores)
	})
	a := addrOfBlock(1)
	cLS.Load(0, a) // miss fill: LS replicates
	if got := cLS.ReplicaCount(a); got != 1 {
		t.Errorf("LS: replica count after load fill = %d, want 1", got)
	}
	cS, _ := testCache(t, nil) // trigger S
	cS.Load(0, a)
	if got := cS.ReplicaCount(a); got != 0 {
		t.Errorf("S: replica count after load fill = %d, want 0", got)
	}
}

func TestStoreUpdatesReplica(t *testing.T) {
	c, _ := testCache(t, nil)
	a := addrOfBlock(1)
	c.Store(0, a) // creates replica
	c.Store(1, a) // updates primary and replica
	w1, ok1 := c.ReadWord(a)
	if !ok1 {
		t.Fatal("primary missing")
	}
	// Corrupt the primary; the replica must still hold the stored value,
	// proving it was updated at the second store.
	c.CorruptPrimary(a, 0)
	lat := c.Load(2, a)
	if lat != 2 {
		t.Errorf("recovery load latency = %d, want 2 (1 + 1 replica cycle)", lat)
	}
	w2, _ := c.ReadWord(a)
	if w2 != w1 {
		t.Errorf("replica repair restored %#x, want %#x", w2, w1)
	}
	s := c.Stats()
	if s.RecoveredByReplica != 1 || s.ErrorsDetected != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestDeadOnlyRefusesLivePrimaries(t *testing.T) {
	c, _ := testCache(t, func(cfg *Config) {
		cfg.Repl.DecayWindow = 1 << 40 // nothing ever dies
		cfg.Repl.Victim = DeadOnly
	})
	// Fill the replication site (set 5) with live primaries.
	c.Load(0, addrOfBlock(5))
	c.Load(1, addrOfBlock(13))
	c.Store(2, addrOfBlock(1))
	if got := c.ReplicaCount(addrOfBlock(1)); got != 0 {
		t.Errorf("dead-only must not evict live primaries, replica count = %d", got)
	}
}

func TestDeadFirstFallsBackToReplicas(t *testing.T) {
	c, _ := testCache(t, func(cfg *Config) {
		cfg.Repl.DecayWindow = 1 << 40
		cfg.Repl.Victim = DeadFirst
	})
	// Set 5 holds one live primary and one replica (of block 9, home set
	// 1, replicated into set 5).
	c.Load(0, addrOfBlock(5))  // live primary in set 5
	c.Store(1, addrOfBlock(9)) // primary in set 1, replica into set 5
	if c.ReplicaCount(addrOfBlock(9)) != 1 {
		t.Fatal("setup: block 9 replica missing")
	}
	// Now block 1 (also home set 1) wants a replica in set 5: no dead
	// lines, so dead-first must displace block 9's replica.
	c.Store(2, addrOfBlock(1))
	if got := c.ReplicaCount(addrOfBlock(1)); got != 1 {
		t.Errorf("dead-first should have used the replica slot, count = %d", got)
	}
	if got := c.ReplicaCount(addrOfBlock(9)); got != 0 {
		t.Errorf("block 9 replica should have been displaced, count = %d", got)
	}
	if c.Stats().ReplicaEvictions == 0 {
		t.Error("replica eviction not counted")
	}
}

func TestReplicaOnlyNeverTouchesDead(t *testing.T) {
	c, _ := testCache(t, func(cfg *Config) {
		cfg.Repl.DecayWindow = 1 // everything dies almost immediately
		cfg.Repl.Victim = ReplicaOnly
	})
	// Dead primaries in set 5, but no replicas: replica-only cannot place.
	c.Load(0, addrOfBlock(5))
	c.Load(1, addrOfBlock(13))
	c.Store(1000, addrOfBlock(1))
	if got := c.ReplicaCount(addrOfBlock(1)); got != 0 {
		t.Errorf("replica-only with no replicas resident should fail, count = %d", got)
	}
}

func TestDecayWindowKeepsRecentBlocksAlive(t *testing.T) {
	c, _ := testCache(t, func(cfg *Config) {
		cfg.Repl.DecayWindow = 1000
		cfg.Repl.Victim = DeadOnly
	})
	// Recently touched primaries in set 5: not dead at cycle 500.
	c.Load(400, addrOfBlock(5))
	c.Load(450, addrOfBlock(13))
	c.Store(500, addrOfBlock(1))
	if got := c.ReplicaCount(addrOfBlock(1)); got != 0 {
		t.Errorf("blocks touched 100 cycles ago must be alive, replica count = %d", got)
	}
	// After 2000+ cycles they are dead (window 1000 = 4 ticks of 250).
	c.Store(3000, addrOfBlock(1))
	if got := c.ReplicaCount(addrOfBlock(1)); got != 1 {
		t.Errorf("blocks idle past the window must be dead, replica count = %d", got)
	}
}

func TestPrimaryEvictionDropsReplicas(t *testing.T) {
	c, _ := testCache(t, nil)
	a := addrOfBlock(1)
	c.Store(0, a) // primary set 1, replica set 5
	// Evict the primary by filling set 1 with two other blocks.
	c.Load(1, addrOfBlock(9))
	c.Load(2, addrOfBlock(17))
	if c.HasPrimary(a) {
		t.Fatal("primary should have been evicted")
	}
	if got := c.ReplicaCount(a); got != 0 {
		t.Errorf("replicas must die with their primary (default mode), count = %d", got)
	}
}

func TestLeaveReplicasServesMiss(t *testing.T) {
	c, _ := testCache(t, func(cfg *Config) { cfg.Repl.LeaveReplicas = true })
	a := addrOfBlock(1)
	c.Store(0, a)
	c.Load(1, addrOfBlock(9))
	c.Load(2, addrOfBlock(17)) // primary of a evicted, replica stays
	if got := c.ReplicaCount(a); got != 1 {
		t.Fatalf("replica should survive primary eviction, count = %d", got)
	}
	lat := c.Load(3, a) // primary miss served by replica
	if lat != 2 {
		t.Errorf("replica-served miss latency = %d, want 2 (1 + 1)", lat)
	}
	if got := c.Stats().ReplicaServedMisses; got != 1 {
		t.Errorf("ReplicaServedMisses = %d, want 1", got)
	}
	if !c.HasPrimary(a) {
		t.Error("replica-served miss should reinstall a primary")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

func TestBasePCleanErrorRecoversFromL2(t *testing.T) {
	c, _ := testCache(t, func(cfg *Config) { cfg.Scheme = BaseP() })
	a := addrOfBlock(1)
	c.Load(0, a) // clean fill
	c.CorruptPrimary(a, 3)
	lat := c.Load(1, a)
	if lat < 7 {
		t.Errorf("clean recovery should pay the L2 trip, latency = %d", lat)
	}
	s := c.Stats()
	if s.RecoveredByL2 != 1 || s.UnrecoverableLoads != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestBasePDirtyErrorUnrecoverable(t *testing.T) {
	c, _ := testCache(t, func(cfg *Config) { cfg.Scheme = BaseP() })
	a := addrOfBlock(1)
	c.Store(0, a) // dirty line
	c.CorruptPrimary(a, 3)
	c.Load(1, a)
	s := c.Stats()
	if s.UnrecoverableLoads != 1 {
		t.Errorf("UnrecoverableLoads = %d, want 1", s.UnrecoverableLoads)
	}
	if s.RecoveredByL2 != 0 {
		t.Errorf("dirty loss must not count as recovery: %+v", s)
	}
}

func TestBaseECCCorrectsSingleBit(t *testing.T) {
	c, _ := testCache(t, func(cfg *Config) { cfg.Scheme = BaseECC(false) })
	a := addrOfBlock(1)
	c.Store(0, a)
	want, _ := c.ReadWord(a)
	c.CorruptPrimary(a, 5)
	c.Load(1, a)
	got, _ := c.ReadWord(a)
	if got != want {
		t.Errorf("ECC correction failed: %#x, want %#x", got, want)
	}
	s := c.Stats()
	if s.RecoveredByECC != 1 || s.UnrecoverableLoads != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestBaseECCDoubleBitDirtyUnrecoverable(t *testing.T) {
	c, _ := testCache(t, func(cfg *Config) { cfg.Scheme = BaseECC(false) })
	a := addrOfBlock(1)
	c.Store(0, a)
	// Two flips in the same 64-bit word: SEC-DED detects but cannot fix.
	c.CorruptPrimary(a, 0)
	c.CorruptPrimary(a+1, 1)
	c.Load(1, a)
	s := c.Stats()
	if s.UnrecoverableLoads != 1 {
		t.Errorf("double-bit dirty should be unrecoverable: %+v", s)
	}
}

func TestICRECCUnreplicatedStillCorrects(t *testing.T) {
	// ICR-ECC: an unreplicated line keeps full SEC-DED protection.
	c, _ := testCache(t, func(cfg *Config) {
		cfg.Scheme = ICR(ECCProt, LookupSerial, ReplStores)
		cfg.Repl.DecayWindow = 1 << 40 // replica creation will fail
	})
	c.Load(0, addrOfBlock(5)) // live primaries occupy the site
	c.Load(1, addrOfBlock(13))
	a := addrOfBlock(1)
	c.Store(2, a) // dirty, unreplicated
	if c.ReplicaCount(a) != 0 {
		t.Fatal("setup: expected no replica")
	}
	c.CorruptPrimary(a, 2)
	c.Load(3, a)
	s := c.Stats()
	if s.RecoveredByECC != 1 || s.UnrecoverableLoads != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestReplicaAlsoCorruptedFallsBack(t *testing.T) {
	c, _ := testCache(t, nil) // ICR-P-PS(S)
	a := addrOfBlock(1)
	c.Store(0, a) // dirty primary + replica
	c.CorruptPrimary(a, 3)
	c.CorruptReplica(a, 0, 4)
	c.Load(1, a)
	s := c.Stats()
	if s.UnrecoverableLoads != 1 {
		t.Errorf("both copies corrupted on dirty parity line: %+v", s)
	}
}

func TestParallelLookupScrubsCorruptReplica(t *testing.T) {
	c, _ := testCache(t, func(cfg *Config) {
		cfg.Scheme = ICR(ParityProt, LookupParallel, ReplStores)
	})
	a := addrOfBlock(1)
	c.Store(0, a)
	c.CorruptReplica(a, 0, 6)
	c.Load(1, a) // parallel compare catches the replica error
	s := c.Stats()
	if s.ErrorsDetected != 1 || s.RecoveredByReplica != 1 {
		t.Errorf("parallel scrub stats = %+v", s)
	}
	// The replica must now be intact: corrupt the primary and recover.
	c.CorruptPrimary(a, 6)
	c.Load(2, a)
	if got := c.Stats().UnrecoverableLoads; got != 0 {
		t.Errorf("scrubbed replica should enable recovery, unrecoverable = %d", got)
	}
}

func TestWriteThroughKeepsLinesClean(t *testing.T) {
	var mem *cache.Memory
	c, m := testCache(t, func(cfg *Config) {
		cfg.Scheme = BaseP()
		cfg.WritePolicy = cache.WriteThrough
	})
	mem = m
	a := addrOfBlock(1)
	c.Load(0, a)
	c.Store(1, a)
	if c.PrimaryDirty(a) {
		t.Error("write-through lines must stay clean")
	}
	// Clean line + parity error is always recoverable: the §5.8 argument.
	c.CorruptPrimary(a, 1)
	c.Load(2, a)
	s := c.Stats()
	if s.UnrecoverableLoads != 0 || s.RecoveredByL2 != 1 {
		t.Errorf("write-through recovery stats = %+v", s)
	}
	// And memory saw the stored value.
	blk := mem.FetchBlock(c.blockAddr(a))
	allZero := true
	for _, b := range blk {
		if b != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		t.Error("write-through should have updated memory content")
	}
}

func TestWriteThroughBufferStall(t *testing.T) {
	mem := cache.NewMemory(6, 64)
	wb := cache.NewWriteBuffer(2, 6, mem)
	cfg := Config{
		Size: 1024, Assoc: 2, BlockSize: 64,
		Scheme:      BaseP(),
		WritePolicy: cache.WriteThrough,
		WriteBuf:    wb,
		Next:        mem, Mem: mem,
	}
	c := New(cfg)
	// Three stores to distinct blocks at the same cycle: third must stall.
	if lat := c.Store(0, addrOfBlock(1)); lat != 1 {
		t.Errorf("store 1 latency = %d, want 1", lat)
	}
	if lat := c.Store(0, addrOfBlock(2)); lat != 1 {
		t.Errorf("store 2 latency = %d, want 1", lat)
	}
	if lat := c.Store(0, addrOfBlock(3)); lat <= 1 {
		t.Errorf("store 3 should stall on a full buffer, latency = %d", lat)
	}
}

func TestFaultInjectionEndToEnd(t *testing.T) {
	c, _ := testCache(t, nil)
	// Warm the cache.
	for i := 0; i < 16; i++ {
		c.Store(uint64(i), addrOfBlock(i))
	}
	in := fault.NewInjector(fault.Random, 1, c.wordsPerLine*c.cfg.Assoc, 1)
	for i := 0; i < 50; i++ {
		c.Inject(in)
	}
	s := c.Stats()
	if s.InjectedFlips+s.InjectedIntoInvalid != 50 {
		t.Errorf("injections unaccounted: %+v", s)
	}
	if s.InjectedFlips == 0 {
		t.Error("expected some flips to land in valid lines")
	}
	// Loads must never crash and stats must stay consistent.
	for i := 0; i < 16; i++ {
		c.Load(uint64(100+i), addrOfBlock(i))
	}
	if err := c.CheckInvariants(); err != nil {
		t.Errorf("invariants after injection: %v", err)
	}
}

func TestEnergyAccountingDiffersByScheme(t *testing.T) {
	run := func(s Scheme) *energy.Meter {
		m := energy.NewMeter(energy.DefaultParams())
		c, _ := testCache(t, func(cfg *Config) {
			cfg.Scheme = s
			cfg.Meter = m
		})
		for i := 0; i < 32; i++ {
			c.Store(uint64(2*i), addrOfBlock(i%8))
			c.Load(uint64(2*i+1), addrOfBlock(i%8))
		}
		return m
	}
	mp := run(BaseP())
	me := run(BaseECC(false))
	if mp.CheckEnergy() >= me.CheckEnergy() {
		t.Errorf("BaseP check energy %.2f should be below BaseECC %.2f",
			mp.CheckEnergy(), me.CheckEnergy())
	}
	micr := run(ICR(ParityProt, LookupSerial, ReplStores))
	if micr.Counts().L1Writes <= mp.Counts().L1Writes {
		t.Errorf("ICR must pay duplicate writes: %d vs %d",
			micr.Counts().L1Writes, mp.Counts().L1Writes)
	}
}

func TestRandomOperationInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		schemes := AllSchemes()
		s := schemes[rng.Intn(len(schemes))]
		c, _ := testCache(t, func(cfg *Config) {
			cfg.Scheme = s
			cfg.Repl.DecayWindow = uint64(rng.Intn(3)) * 500
			cfg.Repl.Victim = VictimPolicy(1 + rng.Intn(4))
			cfg.Repl.LeaveReplicas = rng.Intn(2) == 0
			if rng.Intn(2) == 0 {
				cfg.Repl.Distances = []int{4, 2}
				cfg.Repl.Replicas = 1 + rng.Intn(2)
			}
		})
		for i := 0; i < 400; i++ {
			a := addrOfBlock(rng.Intn(32)) + uint64(rng.Intn(8)*8)
			if rng.Intn(3) == 0 {
				c.Store(uint64(i*3), a)
			} else {
				c.Load(uint64(i*3), a)
			}
		}
		if err := c.CheckInvariants(); err != nil {
			t.Logf("seed %d scheme %s: %v", seed, s, err)
			return false
		}
		st := c.Stats()
		if st.ReadHits+st.ReadMisses != st.Reads || st.WriteHits+st.WriteMisses != st.Writes {
			t.Logf("seed %d: hit/miss accounting broken: %+v", seed, st)
			return false
		}
		if st.ReplSuccesses > st.ReplAttempts || st.ReplDoubles > st.ReplAttempts {
			t.Logf("seed %d: replication accounting broken: %+v", seed, st)
			return false
		}
		if st.ReadHitsWithReplica > st.ReadHits {
			t.Logf("seed %d: loads-with-replica exceeds read hits", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStatsRatios(t *testing.T) {
	s := Stats{
		Reads: 80, ReadHits: 60, ReadMisses: 20,
		Writes: 20, WriteMisses: 5,
		ReplAttempts: 10, ReplSuccesses: 6,
		ReadHitsWithReplica: 30,
	}
	if got := s.MissRate(); got != 0.25 {
		t.Errorf("MissRate = %g, want 0.25", got)
	}
	if got := s.ReplAbility(); got != 0.6 {
		t.Errorf("ReplAbility = %g, want 0.6", got)
	}
	if got := s.LoadsWithReplica(); got != 0.5 {
		t.Errorf("LoadsWithReplica = %g, want 0.5", got)
	}
	var zero Stats
	if zero.MissRate() != 0 || zero.ReplAbility() != 0 || zero.LoadsWithReplica() != 0 {
		t.Error("zero stats must not divide by zero")
	}
}
