package core

import (
	"repro/internal/cache"
	"repro/internal/energy"
)

// DecayMode selects the dead-block prediction mechanism.
type DecayMode uint8

// Decay modes.
const (
	// FixedWindow is the paper's mechanism (Kaxiras cache decay, ref
	// [10]): a 2-bit counter per line ticked every DecayWindow/4 cycles.
	FixedWindow DecayMode = iota
	// Adaptive is a timekeeping-style predictor (after Hu et al., ref
	// [7]): each line tracks an EWMA of its inter-access gap and is
	// declared dead once idle for several times that gap. It needs no
	// global window parameter.
	Adaptive
)

// String returns the mode name.
func (d DecayMode) String() string {
	if d == Adaptive {
		return "adaptive"
	}
	return "fixed-window"
}

// ReplConfig controls the replication design-space axes of §3.1.
type ReplConfig struct {
	// Distances is the ordered list of set offsets tried when looking for
	// a replication site: the paper's "distance-k" with an optional
	// multi-attempt fallback. Offsets are taken modulo the set count.
	// Nil defaults to a single attempt at N/2 ("vertical replication").
	Distances []int

	// Replicas is the maximum number of replicas maintained per block
	// (>= 1). With Replicas == 2 and Distances == [N/2, N/4], the first
	// replica tries N/2 and the second N/4, as in Figure 3.
	Replicas int

	// Victim selects the replacement policy at a replication site.
	// Defaults to DeadOnly.
	Victim VictimPolicy

	// DecayWindow is the number of cycles a line must go unreferenced to
	// be declared dead. 0 means a block is dead as soon as its access
	// completes (the paper's most aggressive setting, §5.1-5.2). The
	// mechanism is the Kaxiras-style 2-bit counter per line, ticked every
	// DecayWindow/4 cycles and reset on access; a line is dead when the
	// counter saturates.
	DecayWindow uint64

	// LeaveReplicas keeps replicas resident when their primary copy is
	// evicted (§5.6): a later miss on the block can then be served from
	// the replica with one extra cycle instead of an L2 access. When
	// false, evicting a primary invalidates its replicas.
	LeaveReplicas bool

	// Decay selects the dead-block predictor. FixedWindow (default) is
	// the paper's mechanism; Adaptive is the timekeeping-style
	// alternative (DecayWindow is then ignored).
	Decay DecayMode
}

// VerticalDistances returns the single-attempt distance-N/2 placement used
// for "vertical replication".
func VerticalDistances(sets int) []int { return []int{sets / 2} }

// HorizontalDistances returns distance-0 placement ("horizontal
// replication": replicas share the primary's set).
func HorizontalDistances() []int { return []int{0} }

// Power2Distances returns the paper's "power-2" multi-attempt fallback
// sequence starting at N/2: N/2, N/4, 3N/4, N/8, ... with the given number
// of attempts.
func Power2Distances(sets, attempts int) []int {
	if attempts <= 0 {
		return nil
	}
	out := make([]int, 0, attempts)
	out = append(out, sets/2)
	step := sets / 4
	for len(out) < attempts && step > 0 {
		out = append(out, step) // N/2 - N/4, then N/8 ... below
		if len(out) < attempts {
			out = append(out, sets/2+step) // N/2 + N/4, ...
		}
		step /= 2
	}
	return out[:min(len(out), attempts)]
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Config describes one ICR data cache.
type Config struct {
	// Geometry. The paper's dL1 is 16KB, 4-way, 64-byte blocks.
	Size      int
	Assoc     int
	BlockSize int

	// HitLatency is the base access latency (1 cycle in Table 1).
	HitLatency uint64

	// ECCCheckLatency is the extra latency of a SEC-DED verification on
	// the load path (1 extra cycle in the paper: ECC loads take 2).
	ECCCheckLatency uint64

	// Scheme selects the protection/replication scheme.
	Scheme Scheme

	// Repl configures the replication design space (ignored for Base
	// schemes).
	Repl ReplConfig

	// WritePolicy is WriteBack for every scheme in the paper except the
	// §5.8 write-through comparison. Defaults to WriteBack.
	WritePolicy cache.WritePolicy

	// WriteBuf, if set with WriteThrough, buffers stores on their way to
	// the next level (the paper uses an 8-entry coalescing buffer).
	WriteBuf *cache.WriteBuffer

	// Next is the timing model of the next level (L2).
	Next cache.Level

	// Mem holds architectural block content (the bottom of the
	// hierarchy; assumed error-free, as in the paper).
	Mem *cache.Memory

	// Meter, if non-nil, accumulates L1-side dynamic energy events
	// (array accesses and parity/ECC computations).
	Meter *energy.Meter

	// Hints, if non-nil, lets software direct replication per block: which
	// blocks to exempt and how many replicas to keep (the paper's §6
	// future work). Nil replicates everything at Repl.Replicas.
	Hints HintPolicy

	// PrefetchIntoDead enables the competing use of dead lines from the
	// prefetching literature the paper builds on (refs [14], [7]): a miss
	// fill also fetches the next sequential block into a dead/invalid way
	// of its home set. Composable with replication, which then competes
	// for the same dead real estate.
	PrefetchIntoDead bool

	// Duplicates, if non-nil, attaches a separate duplication cache in
	// the style of Kim & Somani (the paper's reference [11], implemented
	// in internal/rcache): dL1 fills and stores deposit copies, and a
	// parity error with no in-cache replica is repaired from it. This is
	// the baseline ICR is positioned against.
	Duplicates DuplicateStore

	// CrossTier, if non-nil, is another protected tier willing to host
	// replicas of this cache's blocks in its own dead space (two-tier
	// ICR). Replication shortfalls are offered to it, the recovery ladder
	// consults it after in-cache replicas and duplicates but before
	// ECC/refetch, and stores drop its stale copies. Nil (the default)
	// changes nothing.
	CrossTier ReplicaSink
}

// ReplicaSink is a protected tier that can host replicas of another
// tier's blocks in space it considers dead. Both the ICR L1 (Cache) and
// the protected second tier (internal/tier) implement it, so replicas can
// flow in either direction. Implementations must be allocation-free on
// every method: all three sit on the simulated access path.
type ReplicaSink interface {
	// OfferReplica proposes hosting a copy of a block. The sink copies
	// data (one full line) if it accepts and reports whether it did;
	// declining is always legal (no dead space, block already resident).
	OfferReplica(now uint64, blockAddr uint64, data []byte) bool
	// RepairWord attempts to supply the aligned 64-bit word at byte
	// offset off of a hosted replica, copying 8 bytes into dst. It
	// returns the repair latency in cycles (the cost of reaching this
	// tier, not an L1 probe) and whether an intact replica was found.
	// Corrupt replicas are dropped, not returned.
	RepairWord(now uint64, blockAddr uint64, off int, dst []byte) (latency uint64, ok bool)
	// DropReplica invalidates any hosted replica of the block (called
	// when the owning tier rewrites it, making remote copies stale).
	DropReplica(blockAddr uint64)
}

// DuplicateStore is a separate structure holding protected copies of dL1
// blocks (the Kim & Somani r-cache). Implementations are assumed
// internally error-free (small enough to afford full ECC).
type DuplicateStore interface {
	// Put deposits a copy of a block (data is copied by the callee).
	Put(blockAddr uint64, data []byte)
	// Get returns the stored duplicate's bytes, if present. The slice may
	// alias the store's internal buffers: it is valid only until the next
	// Put and the caller must not retain or mutate it.
	Get(blockAddr uint64) ([]byte, bool)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.HitLatency == 0 {
		out.HitLatency = 1
	}
	if out.ECCCheckLatency == 0 {
		out.ECCCheckLatency = 1
	}
	if out.WritePolicy == 0 {
		out.WritePolicy = cache.WriteBack
	}
	if out.Scheme.HasReplication() {
		sets := out.Size / (out.Assoc * out.BlockSize)
		if out.Repl.Distances == nil {
			out.Repl.Distances = VerticalDistances(sets)
		}
		if out.Repl.Replicas <= 0 {
			out.Repl.Replicas = 1
		}
		if out.Repl.Victim == 0 {
			out.Repl.Victim = DeadOnly
		}
	}
	return out
}

// Stats counts every event the ICR cache produces. The simulator folds
// these into a metrics.Report.
type Stats struct {
	Reads       uint64
	ReadHits    uint64
	ReadMisses  uint64
	Writes      uint64
	WriteHits   uint64
	WriteMisses uint64
	Writebacks  uint64

	ReplAttempts        uint64
	ReplSuccesses       uint64
	ReplDoubles         uint64
	ReadHitsWithReplica uint64
	ReplicaServedMisses uint64
	ReplicaEvictions    uint64
	DeadEvictions       uint64

	ErrorsDetected        uint64
	RecoveredByECC        uint64
	RecoveredByReplica    uint64
	RecoveredByDuplicate  uint64 // repaired from the separate r-cache
	RecoveredByL2         uint64
	ReadHitsWithDuplicate uint64 // read hits with an r-cache duplicate resident
	UnrecoverableLoads    uint64
	SilentWritebacks      uint64

	InjectedFlips       uint64
	InjectedIntoInvalid uint64

	// VulnerableLineCycles accumulates line-cycles spent holding dirty
	// data whose only protection was parity (no ECC, no replica) — an
	// injection-free architectural-vulnerability measure.
	VulnerableLineCycles uint64

	// Prefetching (PrefetchIntoDead).
	PrefetchFills  uint64 // next-block fills placed into dead/invalid lines
	PrefetchHits   uint64 // demand accesses that landed on a prefetched line
	PrefetchUnused uint64 // prefetched lines displaced before any use
}

// MissRate returns (read+write misses) / (reads+writes).
func (s *Stats) MissRate() float64 {
	a := s.Reads + s.Writes
	if a == 0 {
		return 0
	}
	return float64(s.ReadMisses+s.WriteMisses) / float64(a)
}

// ReplAbility returns ReplSuccesses / ReplAttempts.
func (s *Stats) ReplAbility() float64 {
	if s.ReplAttempts == 0 {
		return 0
	}
	return float64(s.ReplSuccesses) / float64(s.ReplAttempts)
}

// LoadsWithReplica returns ReadHitsWithReplica / ReadHits.
func (s *Stats) LoadsWithReplica() float64 {
	if s.ReadHits == 0 {
		return 0
	}
	return float64(s.ReadHitsWithReplica) / float64(s.ReadHits)
}
