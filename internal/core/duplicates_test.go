package core

import (
	"testing"

	"repro/internal/energy"
	"repro/internal/rcache"
)

func dupCache(t *testing.T, scheme Scheme) (*Cache, *rcache.Cache) {
	t.Helper()
	d := rcache.New(512, 2, 64) // 4 sets of duplicates
	c, _ := testCache(t, func(cfg *Config) {
		cfg.Scheme = scheme
		cfg.Duplicates = d
	})
	return c, d
}

func TestDuplicateDepositedOnFillAndStore(t *testing.T) {
	c, d := dupCache(t, BaseP())
	a := addrOfBlock(1)
	c.Load(0, a) // fill deposits
	if !d.Contains(1) {
		t.Error("fill should deposit a duplicate")
	}
	b := addrOfBlock(2)
	c.Store(1, b) // store (after write-allocate) deposits
	if !d.Contains(2) {
		t.Error("store should deposit a duplicate")
	}
}

func TestDuplicateRecoversDirtyParityError(t *testing.T) {
	// The Kim & Somani baseline: BaseP alone loses dirty data, BaseP with
	// an r-cache recovers it.
	c, _ := dupCache(t, BaseP())
	a := addrOfBlock(1)
	c.Store(0, a)
	want, _ := c.ReadWord(a)
	c.CorruptPrimary(a, 3)
	lat := c.Load(1, a)
	if lat != 2 {
		t.Errorf("duplicate recovery latency = %d, want 2", lat)
	}
	got, _ := c.ReadWord(a)
	if got != want {
		t.Errorf("recovered %#x, want %#x", got, want)
	}
	s := c.Stats()
	if s.RecoveredByDuplicate != 1 || s.UnrecoverableLoads != 0 {
		t.Errorf("stats = %+v", s)
	}
	if s.ReadHitsWithDuplicate == 0 {
		t.Error("duplicate coverage not counted")
	}
}

func TestDuplicateEvictedMeansLoss(t *testing.T) {
	c, d := dupCache(t, BaseP())
	a := addrOfBlock(1)
	c.Store(0, a)
	// Push the duplicate out of its r-cache set (4-set, 2-way r-cache:
	// blocks 1, 5, 9 share r-set 1).
	c.Store(1, addrOfBlock(5))
	c.Store(2, addrOfBlock(9))
	if d.Contains(1) {
		t.Fatal("setup: duplicate of block 1 should be evicted")
	}
	c.CorruptPrimary(a, 3)
	c.Load(3, a)
	if got := c.Stats().UnrecoverableLoads; got != 1 {
		t.Errorf("without a duplicate the dirty loss stands, got %d", got)
	}
}

func TestICRBeatsDuplicateCacheOnEnergy(t *testing.T) {
	// The paper's §5.2 argument against [11]: ICR achieves duplication
	// without a separate array probed on every load.
	runMeter := func(withDup bool) *energy.Meter {
		m := energy.NewMeter(energy.DefaultParams())
		var d *rcache.Cache
		if withDup {
			d = rcache.New(512, 2, 64)
		}
		c, _ := testCache(t, func(cfg *Config) {
			if withDup {
				cfg.Scheme = BaseP()
				cfg.Duplicates = d
			}
			cfg.Meter = m
		})
		for i := 0; i < 64; i++ {
			c.Store(uint64(2*i), addrOfBlock(i%6))
			c.Load(uint64(2*i+1), addrOfBlock(i%6))
		}
		return m
	}
	icr := runMeter(false)
	dup := runMeter(true)
	if dup.RCacheEnergy() == 0 {
		t.Fatal("r-cache energy not accounted")
	}
	if icr.RCacheEnergy() != 0 {
		t.Fatal("ICR should not pay r-cache energy")
	}
}
