package core

import (
	"testing"

	"repro/internal/cache"
)

// benchCache builds a paper-geometry dL1 over a plain Memory bottom.
func benchCache(scheme Scheme) *Cache {
	mem := cache.NewMemory(6, 64)
	return New(Config{
		Size: 16 << 10, Assoc: 4, BlockSize: 64,
		Scheme: scheme,
		Next:   mem, Mem: mem,
	})
}

// BenchmarkCoreAccess is the per-access cost of the ICR kernel under the
// three access shapes the simulator issues constantly: a load hit on a
// replicated line, a store to a hot block (replica update + quota check),
// and a load-miss/fill/replicate sweep over a working set larger than the
// cache.
func BenchmarkCoreAccess(b *testing.B) {
	b.Run("load-hit", func(b *testing.B) {
		c := benchCache(ICR(ParityProt, LookupSerial, ReplStores))
		c.Store(0, 0x1000)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Load(uint64(i), 0x1000)
		}
	})
	b.Run("store-hot", func(b *testing.B) {
		c := benchCache(ICR(ParityProt, LookupSerial, ReplStores))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Store(uint64(i), uint64(i%64)*64)
		}
	})
	b.Run("miss-fill", func(b *testing.B) {
		c := benchCache(ICR(ParityProt, LookupSerial, ReplLoadsStores))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// 4096 blocks of 64B = 256KB working set over a 16KB cache.
			c.Load(uint64(i), uint64(i%4096)*64)
		}
	})
}
