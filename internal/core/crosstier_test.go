package core

import (
	"bytes"
	"testing"
)

// fakeSink records the client-side cross-tier calls the cache makes and
// plays a far tier with configurable behaviour.
type fakeSink struct {
	acceptOffers bool
	repairData   []byte // when non-nil, RepairWord serves from this block
	repairLat    uint64

	offers  []uint64
	repairs []uint64
	drops   []uint64
}

func (f *fakeSink) OfferReplica(_ uint64, blockAddr uint64, data []byte) bool {
	f.offers = append(f.offers, blockAddr)
	return f.acceptOffers
}

func (f *fakeSink) RepairWord(_ uint64, blockAddr uint64, off int, dst []byte) (uint64, bool) {
	f.repairs = append(f.repairs, blockAddr)
	if f.repairData == nil {
		return 0, false
	}
	copy(dst[:8], f.repairData[off:off+8])
	return f.repairLat, true
}

func (f *fakeSink) DropReplica(blockAddr uint64) { f.drops = append(f.drops, blockAddr) }

// livePrimaries fills the given set with recently-touched primaries so no
// way in it is dead or invalid (8-set 2-way geometry: blocks s and s+8).
func livePrimaries(c *Cache, now uint64, set int) {
	c.Load(now, addrOfBlock(set))
	c.Load(now+1, addrOfBlock(set+8))
}

// TestCrossTierOfferOnShortfall: when in-cache replication cannot place a
// replica (every candidate way is live under DeadOnly), the shortfall is
// offered to the far tier instead.
func TestCrossTierOfferOnShortfall(t *testing.T) {
	sink := &fakeSink{acceptOffers: true}
	c, _ := testCache(t, func(cfg *Config) {
		cfg.Repl = ReplConfig{DecayWindow: 1 << 20, Victim: DeadOnly}
		cfg.CrossTier = sink
	})
	// Vertical distance is 4: block 0's replica set is 4. Keep it live.
	livePrimaries(c, 0, 4)
	c.Load(10, addrOfBlock(0))
	c.Store(11, addrOfBlock(0)) // ReplStores trigger; in-cache attempt fails

	if len(sink.offers) != 1 || sink.offers[0] != 0 {
		t.Fatalf("far tier saw offers %v, want [0]", sink.offers)
	}
	cs := c.CrossTierStats()
	if cs.Offers != 1 || cs.Accepted != 1 {
		t.Errorf("client stats = %+v, want 1 offer / 1 accepted", cs)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestCrossTierNoOfferWhenReplicaPlaced: a successful in-cache replica
// leaves nothing to offer — the far tier is a spillway, not a mirror.
func TestCrossTierNoOfferWhenReplicaPlaced(t *testing.T) {
	sink := &fakeSink{acceptOffers: true}
	c, _ := testCache(t, func(cfg *Config) { cfg.CrossTier = sink })
	c.Load(0, addrOfBlock(0))
	c.Store(1, addrOfBlock(0)) // default window-0 decay: replica placed in-cache
	if len(sink.offers) != 0 {
		t.Errorf("far tier saw offers %v, want none", sink.offers)
	}
}

// TestCrossTierStoreSendsDrop: every store notifies the far tier that any
// parked copy is stale, whether or not one exists.
func TestCrossTierStoreSendsDrop(t *testing.T) {
	sink := &fakeSink{}
	c, _ := testCache(t, func(cfg *Config) { cfg.CrossTier = sink })
	c.Store(0, addrOfBlock(3))
	if len(sink.drops) != 1 || sink.drops[0] != 3 {
		t.Fatalf("far tier saw drops %v, want [3]", sink.drops)
	}
	if cs := c.CrossTierStats(); cs.Drops != 1 {
		t.Errorf("Drops = %d, want 1", cs.Drops)
	}
}

// TestCrossTierRepairRung: a detected error with no in-cache replica and
// no duplicate falls through to the far tier, whose intact word repairs
// the line at the far tier's quoted latency.
func TestCrossTierRepairRung(t *testing.T) {
	sink := &fakeSink{repairLat: 9}
	c, mem := testCache(t, func(cfg *Config) {
		cfg.Repl = ReplConfig{DecayWindow: 1 << 20, Victim: DeadOnly}
		cfg.CrossTier = sink
	})
	livePrimaries(c, 0, 4) // block 0's replica set stays live: no in-cache replica
	addr := addrOfBlock(0)
	c.Load(10, addr)
	sink.repairData = append([]byte(nil), mem.PeekBlock(0)...)

	if !c.CorruptPrimary(addr, 3) {
		t.Fatal("primary not resident")
	}
	lat := c.Load(20, addr)
	if lat != 1+9 {
		t.Errorf("repaired load latency = %d, want 10 (hit + far-tier repair)", lat)
	}
	s := c.Stats()
	if s.ErrorsDetected != 1 {
		t.Fatalf("ErrorsDetected = %d, want 1", s.ErrorsDetected)
	}
	cs := c.CrossTierStats()
	if cs.Repairs != 1 || cs.Repaired != 1 {
		t.Errorf("client repair stats = %+v, want 1/1", cs)
	}
	// The line is healed: a later load sees no error.
	before := c.Stats().ErrorsDetected
	c.Load(30, addr)
	if c.Stats().ErrorsDetected != before {
		t.Error("line still corrupt after far-tier repair")
	}
}

// TestCrossTierRepairMissFallsThrough: when the far tier has nothing, the
// ladder continues (clean line: refetch from below recovers).
func TestCrossTierRepairMissFallsThrough(t *testing.T) {
	sink := &fakeSink{} // repairData nil: every repair misses
	c, _ := testCache(t, func(cfg *Config) {
		cfg.Repl = ReplConfig{DecayWindow: 1 << 20, Victim: DeadOnly}
		cfg.CrossTier = sink
	})
	livePrimaries(c, 0, 4)
	addr := addrOfBlock(0)
	c.Load(10, addr)
	c.CorruptPrimary(addr, 5)
	c.Load(20, addr)
	s := c.Stats()
	if s.ErrorsDetected != 1 || s.RecoveredByL2 != 1 {
		t.Errorf("stats = detected %d / fromL2 %d, want 1/1", s.ErrorsDetected, s.RecoveredByL2)
	}
	if cs := c.CrossTierStats(); cs.Repairs != 1 || cs.Repaired != 0 {
		t.Errorf("client repair stats = %+v, want 1 consult / 0 repaired", cs)
	}
}

// TestHostOfferInstallsGuest: the host side accepts a far-tier block into
// a dead way of its home set as a guest replica line, and serves its
// words back until dropped.
func TestHostOfferInstallsGuest(t *testing.T) {
	c, mem := testCache(t, nil) // window-0 decay: ways are dead immediately
	blk := mem.PeekBlock(5)
	if !c.OfferReplica(0, 5, blk) {
		t.Fatal("offer refused")
	}
	cs := c.CrossTierStats()
	if cs.HostOffers != 1 || cs.HostedLines != 1 {
		t.Fatalf("host stats = %+v, want 1 offer / 1 hosted", cs)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}

	var buf [8]byte
	lat, ok := c.RepairWord(1, 5, 16, buf[:])
	if !ok {
		t.Fatal("RepairWord missed a hosted guest")
	}
	if want := c.cfg.HitLatency + 1; lat != want {
		t.Errorf("repair latency = %d, want %d", lat, want)
	}
	if !bytes.Equal(buf[:], blk[16:24]) {
		t.Error("repair word does not match the offered block")
	}

	c.DropReplica(5)
	if _, ok := c.RepairWord(2, 5, 16, buf[:]); ok {
		t.Error("guest served a repair after DropReplica")
	}
	if cs := c.CrossTierStats(); cs.HostDrops != 1 {
		t.Errorf("HostDrops = %d, want 1", cs.HostDrops)
	}
}

// TestHostOfferRefusals: offers are refused when the scheme cannot hold
// replicas, when the geometry mismatches, when the block is already
// resident, and when no dead or invalid way exists.
func TestHostOfferRefusals(t *testing.T) {
	blk := make([]byte, 64)

	c, _ := testCache(t, func(cfg *Config) { cfg.Scheme = BaseP() })
	if c.OfferReplica(0, 5, blk) {
		t.Error("non-replicating scheme accepted a guest")
	}

	c, _ = testCache(t, nil)
	if c.OfferReplica(0, 5, blk[:32]) {
		t.Error("size-mismatched offer accepted")
	}
	c.Load(0, addrOfBlock(5))
	if c.OfferReplica(1, 5, blk) {
		t.Error("offer accepted for a block already resident as a primary")
	}

	c, _ = testCache(t, func(cfg *Config) {
		cfg.Repl = ReplConfig{DecayWindow: 1 << 20, Victim: DeadOnly}
	})
	livePrimaries(c, 0, 5%8)
	if c.OfferReplica(10, 5, blk) {
		t.Error("offer accepted into a set with no dead or invalid way")
	}
}

// TestDropReplicaSparesOwnReplicas: DropReplica has authority over guests
// only — the cache's own replicas mirror its own primaries, which the far
// tier did not write.
func TestDropReplicaSparesOwnReplicas(t *testing.T) {
	c, _ := testCache(t, nil)
	addr := addrOfBlock(0)
	c.Load(0, addr)
	c.Store(1, addr) // places an in-cache replica (window-0 decay)
	if len(c.findReplicas(0)) != 1 {
		t.Fatal("setup: no in-cache replica placed")
	}
	c.DropReplica(0)
	if len(c.findReplicas(0)) != 1 {
		t.Error("DropReplica invalidated the cache's own replica")
	}
	if cs := c.CrossTierStats(); cs.HostDrops != 0 {
		t.Errorf("HostDrops = %d, want 0", cs.HostDrops)
	}
}

// TestHostGuestCorruptionDropped: a corrupt guest must never serve a
// repair — it is detected by its own parity and invalidated on the spot.
func TestHostGuestCorruptionDropped(t *testing.T) {
	c, mem := testCache(t, nil)
	if !c.OfferReplica(0, 5, mem.PeekBlock(5)) {
		t.Fatal("offer refused")
	}
	// Flip a bit in the hosted copy directly (guests have no primary, so
	// the Corrupt* helpers do not reach them).
	base := c.homeSet(5) * c.cfg.Assoc
	var guest *line
	for w := 0; w < c.cfg.Assoc; w++ {
		if ln := &c.lines[base+w]; ln.valid && ln.guest {
			guest = ln
		}
	}
	if guest == nil {
		t.Fatal("no guest line installed")
	}
	guest.data[17] ^= 0x10

	var buf [8]byte
	if _, ok := c.RepairWord(1, 5, 16, buf[:]); ok {
		t.Error("corrupt guest served a repair")
	}
	cs := c.CrossTierStats()
	if cs.HostCorrupt != 1 {
		t.Errorf("HostCorrupt = %d, want 1", cs.HostCorrupt)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
