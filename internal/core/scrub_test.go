package core

import "testing"

func TestScrubRepairsCleanLine(t *testing.T) {
	c, _ := testCache(t, func(cfg *Config) { cfg.Scheme = BaseP() })
	a := addrOfBlock(1)
	c.Load(0, a) // clean fill
	c.CorruptPrimary(a, 2)
	// One full sweep (16 lines).
	c.Scrub(10, 16)
	s := c.ScrubStats()
	if s.Errors != 1 || s.Repaired != 1 || s.Lost != 0 {
		t.Errorf("scrub stats = %+v", s)
	}
	// The subsequent load must be clean.
	c.Load(11, a)
	if got := c.Stats().ErrorsDetected; got != 0 {
		t.Errorf("load after scrub still detected an error (%d)", got)
	}
}

func TestScrubRepairsFromReplica(t *testing.T) {
	c, _ := testCache(t, nil) // ICR-P-PS(S)
	a := addrOfBlock(1)
	c.Store(0, a) // dirty + replica
	want, _ := c.ReadWord(a)
	c.CorruptPrimary(a, 5)
	c.Scrub(10, 16)
	s := c.ScrubStats()
	if s.Errors != 1 || s.Repaired != 1 {
		t.Errorf("scrub stats = %+v", s)
	}
	got, _ := c.ReadWord(a)
	if got != want {
		t.Errorf("scrub restored %#x, want %#x", got, want)
	}
}

func TestScrubFindsDirtyLossEarly(t *testing.T) {
	c, _ := testCache(t, func(cfg *Config) { cfg.Scheme = BaseP() })
	a := addrOfBlock(1)
	c.Store(0, a) // dirty, parity only
	c.CorruptPrimary(a, 5)
	c.Scrub(10, 16)
	s := c.ScrubStats()
	if s.Lost != 1 {
		t.Errorf("scrub should report the dirty loss: %+v", s)
	}
	// The array was restored from memory, so execution can continue.
	c.Load(11, a)
	if got := c.Stats().UnrecoverableLoads; got != 0 {
		t.Errorf("line should have been reset after scrub loss (unrecoverable=%d)", got)
	}
}

func TestScrubRepairsCorruptedReplicaFromPrimary(t *testing.T) {
	c, _ := testCache(t, nil)
	a := addrOfBlock(1)
	c.Store(0, a)
	c.CorruptReplica(a, 0, 3)
	c.Scrub(10, 16)
	if s := c.ScrubStats(); s.Repaired != 1 {
		t.Errorf("replica should heal from its primary: %+v", s)
	}
	// Now corrupt the primary: recovery through the healed replica works.
	c.CorruptPrimary(a, 6)
	c.Load(11, a)
	st := c.Stats()
	if st.RecoveredByReplica != 1 || st.UnrecoverableLoads != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestScrubRoundRobinCoversArray(t *testing.T) {
	c, _ := testCache(t, func(cfg *Config) { cfg.Scheme = BaseP() })
	for i := 0; i < 16; i++ {
		c.Load(uint64(i), addrOfBlock(i))
	}
	c.Scrub(100, 8)
	c.Scrub(101, 8)
	if got := c.ScrubStats().Checks; got != 16 {
		t.Errorf("two half sweeps should check 16 lines, got %d", got)
	}
}

func TestVulnerabilityAccounting(t *testing.T) {
	// BaseP: a dirty line is vulnerable from the store until writeback or
	// the end of the run.
	c, _ := testCache(t, func(cfg *Config) { cfg.Scheme = BaseP() })
	a := addrOfBlock(1)
	c.Store(100, a)
	c.FinishVulnerability(600)
	if got := c.Stats().VulnerableLineCycles; got != 500 {
		t.Errorf("BaseP vulnerable cycles = %d, want 500", got)
	}
}

func TestVulnerabilityClosedByReplica(t *testing.T) {
	// ICR: the store creates a replica immediately, so no vulnerable time
	// accrues.
	c, _ := testCache(t, nil)
	c.Store(100, addrOfBlock(1))
	c.FinishVulnerability(600)
	if got := c.Stats().VulnerableLineCycles; got != 0 {
		t.Errorf("replicated dirty line should not be vulnerable, got %d", got)
	}
}

func TestVulnerabilityReopensWhenReplicaEvicted(t *testing.T) {
	c, _ := testCache(t, nil)
	a := addrOfBlock(1)
	c.Store(100, a) // replica in set 5
	// Displace the replica with primaries at cycle 200.
	c.Load(200, addrOfBlock(5))
	c.Load(200, addrOfBlock(13))
	if c.ReplicaCount(a) != 0 {
		t.Fatal("setup: replica should be gone")
	}
	c.FinishVulnerability(700)
	got := c.Stats().VulnerableLineCycles
	if got != 500 {
		t.Errorf("vulnerable cycles = %d, want 500 (from replica eviction at 200 to 700)", got)
	}
}

func TestVulnerabilityZeroForECC(t *testing.T) {
	c, _ := testCache(t, func(cfg *Config) { cfg.Scheme = BaseECC(false) })
	c.Store(100, addrOfBlock(1))
	c.FinishVulnerability(600)
	if got := c.Stats().VulnerableLineCycles; got != 0 {
		t.Errorf("ECC-protected dirty data is not parity-vulnerable, got %d", got)
	}
}

func TestVulnerabilityClosedByWriteback(t *testing.T) {
	c, _ := testCache(t, func(cfg *Config) { cfg.Scheme = BaseP() })
	a := addrOfBlock(1)
	c.Store(100, a)
	// Evict the dirty line (write back) at cycle 300.
	c.Load(300, addrOfBlock(9))
	c.Load(300, addrOfBlock(17))
	if c.HasPrimary(a) {
		t.Fatal("setup: line should be evicted")
	}
	c.FinishVulnerability(900)
	if got := c.Stats().VulnerableLineCycles; got != 200 {
		t.Errorf("vulnerable cycles = %d, want 200 (store@100 .. writeback@300)", got)
	}
}
