package core

import "testing"

func TestSchemeNames(t *testing.T) {
	cases := []struct {
		s    Scheme
		want string
	}{
		{BaseP(), "BaseP"},
		{BaseECC(false), "BaseECC"},
		{BaseECC(true), "BaseECC-spec"},
		{ICR(ParityProt, LookupSerial, ReplStores), "ICR-P-PS(S)"},
		{ICR(ParityProt, LookupSerial, ReplLoadsStores), "ICR-P-PS(LS)"},
		{ICR(ParityProt, LookupParallel, ReplStores), "ICR-P-PP(S)"},
		{ICR(ECCProt, LookupSerial, ReplStores), "ICR-ECC-PS(S)"},
		{ICR(ECCProt, LookupParallel, ReplLoadsStores), "ICR-ECC-PP(LS)"},
	}
	for _, c := range cases {
		if got := c.s.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

func TestAllSchemesCount(t *testing.T) {
	all := AllSchemes()
	if len(all) != 10 {
		t.Fatalf("AllSchemes returned %d schemes, want 10 (§3.2)", len(all))
	}
	seen := map[string]bool{}
	for _, s := range all {
		name := s.Name()
		if seen[name] {
			t.Errorf("duplicate scheme %q", name)
		}
		seen[name] = true
	}
	if !seen["BaseP"] || !seen["BaseECC"] || !seen["ICR-P-PS(S)"] || !seen["ICR-ECC-PP(LS)"] {
		t.Errorf("missing expected schemes: %v", seen)
	}
}

func TestSchemeByName(t *testing.T) {
	for _, s := range AllSchemes() {
		got, err := SchemeByName(s.Name())
		if err != nil {
			t.Errorf("SchemeByName(%q): %v", s.Name(), err)
			continue
		}
		if got != s {
			t.Errorf("SchemeByName(%q) = %+v, want %+v", s.Name(), got, s)
		}
	}
	if s, err := SchemeByName("BaseECC-spec"); err != nil || !s.SpeculativeECC {
		t.Errorf("BaseECC-spec lookup failed: %+v, %v", s, err)
	}
	if _, err := SchemeByName("nope"); err == nil {
		t.Error("unknown scheme should error")
	}
}

func TestHasReplication(t *testing.T) {
	if BaseP().HasReplication() || BaseECC(false).HasReplication() {
		t.Error("base schemes must not replicate")
	}
	if !ICR(ParityProt, LookupSerial, ReplStores).HasReplication() {
		t.Error("ICR schemes must replicate")
	}
}

func TestICRRequiresTrigger(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ICR with ReplNone should panic")
		}
	}()
	ICR(ParityProt, LookupSerial, ReplNone)
}

func TestDistanceHelpers(t *testing.T) {
	if got := VerticalDistances(64); len(got) != 1 || got[0] != 32 {
		t.Errorf("VerticalDistances(64) = %v", got)
	}
	if got := HorizontalDistances(); len(got) != 1 || got[0] != 0 {
		t.Errorf("HorizontalDistances() = %v", got)
	}
	got := Power2Distances(64, 4)
	want := []int{32, 16, 48, 8}
	if len(got) != len(want) {
		t.Fatalf("Power2Distances(64,4) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Power2Distances[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if got := Power2Distances(64, 2); len(got) != 2 || got[0] != 32 || got[1] != 16 {
		t.Errorf("Power2Distances(64,2) = %v, want [32 16]", got)
	}
	if got := Power2Distances(64, 0); got != nil {
		t.Errorf("Power2Distances(64,0) = %v, want nil", got)
	}
}

func TestEnumStrings(t *testing.T) {
	if ParityProt.String() != "P" || ECCProt.String() != "ECC" {
		t.Error("Protection strings wrong")
	}
	if ReplStores.String() != "S" || ReplLoadsStores.String() != "LS" || ReplNone.String() != "" {
		t.Error("ReplTrigger strings wrong")
	}
	if LookupSerial.String() != "PS" || LookupParallel.String() != "PP" {
		t.Error("LookupMode strings wrong")
	}
	for v, want := range map[VictimPolicy]string{
		DeadOnly: "dead-only", DeadFirst: "dead-first",
		ReplicaFirst: "replica-first", ReplicaOnly: "replica-only",
	} {
		if v.String() != want {
			t.Errorf("VictimPolicy %d = %q, want %q", v, v.String(), want)
		}
	}
}
