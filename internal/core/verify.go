package core

import (
	"repro/internal/cache"
	"repro/internal/ecc"
)

// verifyLoad runs the scheme's integrity check over the accessed word of a
// hitting load and performs recovery when an error is found. It returns
// the extra latency incurred beyond the error-free hit latency.
//
// Recovery ladder (§3.2):
//
//   - replicated line, parity fails  -> check the replica's parity; if it
//     is intact, repair from the replica (+1 cycle). If the replica is
//     also corrupted, fall through to the unreplicated handling.
//   - unreplicated, ECC protection   -> SEC-DED corrects single-bit
//     errors in place; double-bit errors detect and fall back to L2 for
//     clean lines, and are unrecoverable for dirty lines.
//   - unreplicated, parity only      -> clean lines are refetched from
//     L2/memory; dirty lines are unrecoverable (the data is lost).
//
// After an unrecoverable error the line is re-filled from architectural
// memory so the simulation can proceed deterministically; the lost dirty
// data is exactly what the counter records.
func (c *Cache) verifyLoad(now uint64, ln *line, replicas []*line, dup []byte, addr uint64) (extra uint64) {
	off := int(addr) & (c.cfg.BlockSize - 1)
	word := off &^ 7

	useECC := c.cfg.Scheme.Protection == ECCProt && len(replicas) == 0
	if c.cfg.Meter != nil {
		if useECC {
			c.cfg.Meter.AddECC(1)
		} else {
			c.cfg.Meter.AddParity(1)
			if c.cur.Lookup == LookupParallel && len(replicas) > 0 {
				// Parallel compare verifies the replica copy too.
				c.cfg.Meter.AddParity(1)
			}
		}
	}

	if useECC {
		return c.verifyECC(now, ln, off)
	}

	// Parity path (Base-P, and every replicated line in ICR schemes).
	if ecc.CheckParityLineRange(ln.data, ln.parity, word, 8) == ecc.OK {
		// With a parallel lookup an error confined to the *replica* is
		// also caught (and discarded) now; serial lookups never see it.
		if c.cur.Lookup == LookupParallel {
			for _, rep := range replicas {
				if ecc.CheckParityLineRange(rep.data, rep.parity, word, 8) != ecc.OK {
					c.stats.ErrorsDetected++
					c.repairFrom(rep, ln, word)
					c.stats.RecoveredByReplica++
				}
			}
		}
		return 0
	}

	// Primary word is corrupted.
	c.stats.ErrorsDetected++
	for _, rep := range replicas {
		if c.cfg.Meter != nil && c.cur.Lookup == LookupSerial {
			c.cfg.Meter.AddL1Read(1) // serial schemes read the replica only now
			c.cfg.Meter.AddParity(1)
		}
		if ecc.CheckParityLineRange(rep.data, rep.parity, word, 8) == ecc.OK {
			c.repairFrom(ln, rep, word)
			c.stats.RecoveredByReplica++
			return 1 // one extra cycle to read the replica (§3.2)
		}
		// This replica is corrupted too (much rarer); try the next, if any.
	}

	// A duplicate in the separate r-cache (Kim & Somani baseline) repairs
	// the word before falling back to L2 or declaring loss.
	if dup != nil {
		off2 := off &^ 7
		copy(ln.data[off2:off2+8], dup[off2:off2+8])
		c.recodeWord(ln, off2)
		c.stats.RecoveredByDuplicate++
		if c.cfg.Meter != nil {
			c.cfg.Meter.AddL1Write(1)
		}
		return 1
	}

	// Two-tier ICR: a copy parked in the far tier repairs the word at
	// that tier's access cost — reaching the far array is a remote
	// access, not an L1 probe — before falling back to ECC or refetch.
	if c.cfg.CrossTier != nil {
		c.cross.Repairs++
		if lat, ok := c.cfg.CrossTier.RepairWord(now, ln.blockAddr, word, c.crossBuf[:]); ok {
			copy(ln.data[word:word+8], c.crossBuf[:])
			c.recodeWord(ln, word)
			c.cross.Repaired++
			return lat
		}
	}

	// No intact replica: default to the unreplicated actions (§3.2).
	if c.cfg.Scheme.Protection == ECCProt {
		// Replicated line in an ICR-ECC scheme whose replicas all failed:
		// the ECC bits are still maintained, so try correction.
		if c.cfg.Meter != nil {
			c.cfg.Meter.AddECC(1)
		}
		return 1 + c.verifyECC(now, ln, off)
	}
	return 1 + c.recoverFromBelow(now, ln, addr)
}

// verifyECC checks and, where possible, corrects the accessed word using
// the line's SEC-DED bits.
func (c *Cache) verifyECC(now uint64, ln *line, off int) (extra uint64) {
	switch ecc.CheckSECDEDLineWord(ln.data, ln.eccb, off) {
	case ecc.OK:
		return 0
	case ecc.CorrectedSingle:
		c.stats.ErrorsDetected++
		c.stats.RecoveredByECC++
		// Correction restored the original word, so the parity bits
		// (computed over the original data) are consistent again.
		return 0
	case ecc.DetectedCheckBit:
		c.stats.ErrorsDetected++
		c.stats.RecoveredByECC++
		c.recodeWord(ln, off)
		return 0
	default: // DetectedDouble
		c.stats.ErrorsDetected++
		return c.recoverFromBelow(now, ln, ln.blockAddr<<c.offsetBits|uint64(off))
	}
}

// recoverFromBelow handles a detected-but-uncorrectable error: clean lines
// are refetched from the next level (recoverable, at miss cost); dirty
// lines have lost data (unrecoverable). Either way the line is restored
// from architectural memory so execution can continue.
func (c *Cache) recoverFromBelow(now uint64, ln *line, addr uint64) (extra uint64) {
	if ln.dirty {
		c.stats.UnrecoverableLoads++
	} else {
		c.stats.RecoveredByL2++
	}
	extra = c.cfg.Next.Access(now, addr, cache.Read)
	copy(ln.data, c.cfg.Mem.PeekBlock(ln.blockAddr))
	ln.dirty = false
	c.setVuln(ln, now, false)
	c.recode(ln)
	if c.cfg.Meter != nil {
		c.cfg.Meter.AddL1Write(1)
	}
	return extra
}

// repairFrom copies the aligned word at byte offset `word` from src into
// dst, refreshing dst's check bits for that word.
func (c *Cache) repairFrom(dst, src *line, word int) {
	copy(dst.data[word:word+8], src.data[word:word+8])
	dst.parity[word/8] = src.parity[word/8]
	if dst.eccb != nil {
		dst.eccb[word/8] = ecc.EncodeSECDED(ecc.Word64(dst.data, word))
	}
	if c.cfg.Meter != nil {
		c.cfg.Meter.AddL1WordWrite(1)
	}
}
