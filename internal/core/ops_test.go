package core

import (
	"testing"

	"repro/internal/cache"
)

func TestWriteThroughWithReplicationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("write-through + replication should panic")
		}
	}()
	mem := cache.NewMemory(6, 64)
	New(Config{
		Size: 1024, Assoc: 2, BlockSize: 64,
		Scheme:      ICR(ParityProt, LookupSerial, ReplStores),
		WritePolicy: cache.WriteThrough,
		Next:        mem, Mem: mem,
	})
}

func TestPrimeDistanceReplication(t *testing.T) {
	// §5.1: "experiments with Distance-7 (a prime number) ... not any
	// different from Distance-N/2." With 8 sets, distance 7 wraps to the
	// set just before the home set.
	c, _ := testCache(t, func(cfg *Config) {
		cfg.Repl.Distances = []int{7}
	})
	a := addrOfBlock(1) // home set 1, replica set (1+7)%8 = 0
	c.Store(0, a)
	if got := c.ReplicaCount(a); got != 1 {
		t.Fatalf("replica count = %d, want 1", got)
	}
	// Verify it landed in set 0 by flushing set 0 with primaries.
	c.Load(1, addrOfBlock(0))
	c.Load(2, addrOfBlock(8))
	if got := c.ReplicaCount(a); got != 0 {
		t.Errorf("replica should have been in set 0; count = %d", got)
	}
}

func TestDistanceWrapsAroundSets(t *testing.T) {
	c, _ := testCache(t, func(cfg *Config) {
		cfg.Repl.Distances = []int{4}
	})
	a := addrOfBlock(6) // home set 6, replica set (6+4)%8 = 2
	c.Store(0, a)
	if got := c.ReplicaCount(a); got != 1 {
		t.Fatalf("replica count = %d, want 1", got)
	}
	c.Load(1, addrOfBlock(2))
	c.Load(2, addrOfBlock(10))
	if got := c.ReplicaCount(a); got != 0 {
		t.Errorf("replica should have wrapped to set 2; count = %d", got)
	}
}

func TestDecayTickBoundary(t *testing.T) {
	// Window 1000 => tick period 250; a line is dead only once 4 full
	// ticks have elapsed since its access tick.
	c, _ := testCache(t, func(cfg *Config) {
		cfg.Repl.DecayWindow = 1000
		cfg.Repl.Victim = DeadOnly
	})
	c.Load(0, addrOfBlock(5)) // accessed at tick 0
	c.Load(1, addrOfBlock(13))
	// At cycle 999 (tick 3) the lines are still live: replication fails.
	c.Store(999, addrOfBlock(1))
	if got := c.ReplicaCount(addrOfBlock(1)); got != 0 {
		t.Errorf("line declared dead before the window elapsed (count %d)", got)
	}
	// At cycle 1000 (tick 4) they are dead.
	c.Store(1000, addrOfBlock(1))
	if got := c.ReplicaCount(addrOfBlock(1)); got != 1 {
		t.Errorf("line should be dead at exactly one window (count %d)", got)
	}
}

func TestTouchResetsDecay(t *testing.T) {
	c, _ := testCache(t, func(cfg *Config) {
		cfg.Repl.DecayWindow = 1000
		cfg.Repl.Victim = DeadOnly
	})
	c.Load(0, addrOfBlock(5))
	c.Load(0, addrOfBlock(13))
	c.Load(900, addrOfBlock(5)) // refresh one way of set 5
	c.Load(900, addrOfBlock(13))
	c.Store(1100, addrOfBlock(1)) // 200 cycles after refresh: both live
	if got := c.ReplicaCount(addrOfBlock(1)); got != 0 {
		t.Errorf("touched lines must not be dead (count %d)", got)
	}
}

func TestStoreMissAllocatesAndReplicates(t *testing.T) {
	c, _ := testCache(t, nil)
	a := addrOfBlock(3)
	if lat := c.Store(0, a); lat != 1 {
		t.Errorf("store miss latency = %d, want 1 (buffered)", lat)
	}
	if !c.HasPrimary(a) {
		t.Error("store miss should write-allocate")
	}
	if !c.PrimaryDirty(a) {
		t.Error("allocated line should be dirty")
	}
	if got := c.ReplicaCount(a); got != 1 {
		t.Errorf("store-miss fill should replicate under S trigger, count = %d", got)
	}
	s := c.Stats()
	if s.WriteMisses != 1 {
		t.Errorf("write misses = %d", s.WriteMisses)
	}
}

func TestPower2FallbackUsesLaterSites(t *testing.T) {
	// Fill the first two candidate sets with live primaries; the third
	// candidate must receive the replica.
	c, _ := testCache(t, func(cfg *Config) {
		cfg.Repl.DecayWindow = 1 << 40
		cfg.Repl.Distances = Power2Distances(8, 3) // {4, 2, 6}
	})
	for _, blk := range []int{5, 13, 3, 11} { // sets 5 and 3 live
		c.Load(0, addrOfBlock(blk))
	}
	c.Store(1, addrOfBlock(1)) // home 1; candidates 5, 3, 7
	if got := c.ReplicaCount(addrOfBlock(1)); got != 1 {
		t.Fatalf("third candidate should have been used; count = %d", got)
	}
	// Confirm set 7 holds it.
	c.Load(2, addrOfBlock(7))
	c.Load(3, addrOfBlock(15))
	if got := c.ReplicaCount(addrOfBlock(1)); got != 0 {
		t.Errorf("replica expected in set 7; count = %d", got)
	}
}

func TestSilentWritebackCounted(t *testing.T) {
	c, _ := testCache(t, func(cfg *Config) { cfg.Scheme = BaseP() })
	a := addrOfBlock(1)
	c.Store(0, a)              // dirty
	c.CorruptPrimary(a, 2)     // corrupt without a load noticing
	c.Load(1, addrOfBlock(9))  // fill set 1
	c.Load(2, addrOfBlock(17)) // evict the dirty corrupted line
	s := c.Stats()
	if s.Writebacks == 0 {
		t.Fatal("expected a writeback")
	}
	if s.SilentWritebacks != 1 {
		t.Errorf("silent writebacks = %d, want 1", s.SilentWritebacks)
	}
}

func TestECCSchemeLinesCarryECC(t *testing.T) {
	// In ICR-ECC schemes even replicated lines keep their SEC-DED bits
	// maintained, so losing the replica does not strand stale ECC.
	c, _ := testCache(t, func(cfg *Config) {
		cfg.Scheme = ICR(ECCProt, LookupSerial, ReplStores)
	})
	a := addrOfBlock(1)
	c.Store(0, a) // creates replica; ECC maintained on write
	// Kill the replica by filling its set with primaries.
	c.Load(1, addrOfBlock(5))
	c.Load(2, addrOfBlock(13))
	if c.ReplicaCount(a) != 0 {
		t.Fatal("setup: replica should be gone")
	}
	// Now the line is unreplicated: a single-bit error must be corrected
	// by its (still current) ECC.
	c.CorruptPrimary(a, 4)
	c.Load(3, a)
	s := c.Stats()
	if s.RecoveredByECC != 1 || s.UnrecoverableLoads != 0 {
		t.Errorf("stats = %+v: stale ECC after replica eviction?", s)
	}
}
