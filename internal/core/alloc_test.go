package core

import (
	"testing"

	"repro/internal/cache"
)

// The simulator's throughput rests on the dL1 kernel allocating nothing
// per access: every scratch need (replica candidate walks, used-set lists,
// memory-block synthesis) is served from buffers owned by the Cache or the
// Memory. These tests pin that property so a regression shows up as a test
// failure, not as a slow profile three PRs later.

func allocsPerAccess(t *testing.T, warm, body func(i uint64)) float64 {
	t.Helper()
	for i := uint64(0); i < 8192; i++ {
		warm(i)
	}
	var i uint64
	return testing.AllocsPerRun(1000, func() {
		body(i)
		i++
	})
}

func TestLoadHitAllocFree(t *testing.T) {
	c := benchCache(ICR(ParityProt, LookupSerial, ReplStores))
	c.Store(0, 0x1000) // primary + replica resident
	got := allocsPerAccess(t,
		func(i uint64) { c.Load(i, 0x1000) },
		func(i uint64) { c.Load(8192+i, 0x1000) })
	if got != 0 {
		t.Errorf("replicated load hit allocates %.1f objects per access, want 0", got)
	}
}

func TestStoreHitAllocFree(t *testing.T) {
	c := benchCache(ICR(ParityProt, LookupSerial, ReplStores))
	// Hot stores: replica update, quota check, replicate attempt each time.
	got := allocsPerAccess(t,
		func(i uint64) { c.Store(i, i%64*64) },
		func(i uint64) { c.Store(8192+i, i%64*64) })
	if got != 0 {
		t.Errorf("hot store allocates %.1f objects per access, want 0", got)
	}
}

func TestMissFillAllocFree(t *testing.T) {
	// A 256KB working set over a 16KB cache: every access is a miss, an
	// eviction (often a dirty writeback), a fill, and a replicate attempt.
	// After the warmup pass has touched every block once, the memory
	// bottom reuses its stored block buffers and the steady state holds
	// zero allocations.
	c := benchCache(ICR(ParityProt, LookupSerial, ReplLoadsStores))
	touch := func(i uint64) {
		c.Store(i, i%4096*64)
		c.Load(i, (i+1)%4096*64)
	}
	got := allocsPerAccess(t, touch, func(i uint64) { touch(8192 + i) })
	if got != 0 {
		t.Errorf("miss/fill/writeback allocates %.1f objects per access, want 0", got)
	}
}

func TestScrubAllocFree(t *testing.T) {
	mem := cache.NewMemory(6, 64)
	c := New(Config{
		Size: 16 << 10, Assoc: 4, BlockSize: 64,
		Scheme: ICR(ParityProt, LookupSerial, ReplStores),
		Next:   mem, Mem: mem,
	})
	for i := uint64(0); i < 512; i++ {
		c.Store(i, i*64)
	}
	var now uint64 = 1 << 20
	got := testing.AllocsPerRun(100, func() {
		c.Scrub(now, 8)
		now++
	})
	if got != 0 {
		t.Errorf("scrub pass allocates %.1f objects, want 0", got)
	}
}
