package core

// Runtime retuning (the adaptive controller's seam, internal/adapt).
//
// Every scheme in the paper fixes its replication knobs at construction;
// the adaptive ICR-ADAPT-* family instead retunes them between observation
// epochs. The knobs that may move at runtime — replica count, victim
// policy, replica lookup mode, decay window — live in a TuneState the
// cache initializes from its Config at construction (and again on Reset),
// so a cache that is never retuned behaves byte-identically to one built
// before this seam existed. Replica placement distances are deliberately
// not tunable: they size the replica-lookup scratch buffers at
// construction and are part of the pool shape.

// TuneState is the runtime-tunable subset of a cache's configuration.
type TuneState struct {
	// Replicas is the per-block replica quota. 0 pauses replication:
	// attempts fail immediately, but resident replicas remain valid,
	// continue to absorb errors, and are still updated by stores.
	Replicas int
	// Victim is the replacement policy at replication sites.
	Victim VictimPolicy
	// Lookup selects serial (PS) or parallel (PP) replica lookup.
	Lookup LookupMode
	// DecayWindow is the dead-block decay window in cycles (0 = a block
	// is dead as soon as its access completes).
	DecayWindow uint64
}

// initTune derives the runtime knob state from the construction config;
// New and Reset both run it, so a pooled cache always starts a run at its
// configured state no matter what a previous run's controller did.
func (c *Cache) initTune() {
	c.cur = TuneState{
		Replicas:    c.cfg.Repl.Replicas,
		Victim:      c.cfg.Repl.Victim,
		Lookup:      c.cfg.Scheme.Lookup,
		DecayWindow: c.cfg.Repl.DecayWindow,
	}
	c.tickPeriod = tickPeriodFor(c.cfg.Repl.DecayWindow)
}

// tickPeriodFor converts a decay window into the 2-bit counter's tick
// length (window/4, with 0 meaning "immediately dead").
func tickPeriodFor(window uint64) uint64 {
	if window == 0 {
		return 0
	}
	p := window / 4
	if p == 0 {
		p = 1
	}
	return p
}

// Tune returns the current runtime knob state.
func (c *Cache) Tune() TuneState { return c.cur }

// Retune changes the runtime knobs mid-run. Zero-valued Victim or Lookup
// fields keep their current setting (the zero values are not valid
// policies); a negative replica count is clamped to 0. Changing the decay
// window re-bases the tick period from the next access on: lines keep
// their recorded last-access ticks, which under the new period may make
// them look older or younger by up to one window — acceptable, and
// deterministic, for a mechanism that is itself a heuristic.
func (c *Cache) Retune(t TuneState) {
	if t.Victim == 0 {
		t.Victim = c.cur.Victim
	}
	if t.Lookup == 0 {
		t.Lookup = c.cur.Lookup
	}
	if t.Replicas < 0 {
		t.Replicas = 0
	}
	c.cur = t
	c.tickPeriod = tickPeriodFor(t.DecayWindow)
}

// LineCount returns the total number of lines in the data array (the
// normalizer for per-line vulnerability rates).
func (c *Cache) LineCount() int { return len(c.lines) }

// LivenessSurvey is a point-in-time census of the data array, filled by
// SurveyLiveness into a caller-provided struct so the epoch hook that
// polls it stays allocation-free.
type LivenessSurvey struct {
	// Valid counts valid lines (primaries and replicas).
	Valid uint64
	// DeadPrimaries counts valid primary lines the decay mechanism
	// currently predicts dead — the supply of replication real estate.
	DeadPrimaries uint64
	// Replicas counts resident replica lines.
	Replicas uint64
	// Vulnerable counts lines currently holding dirty data whose only
	// protection is parity (no SEC-DED, no replica) — the demand side.
	Vulnerable uint64
}

// SurveyLiveness fills out with the array's current liveness census. It
// reads line metadata only (no data-array traffic, no LRU or decay
// updates), so it models the controller reading the status bits a real
// implementation would already maintain.
func (c *Cache) SurveyLiveness(now uint64, out *LivenessSurvey) {
	*out = LivenessSurvey{}
	for i := range c.lines {
		ln := &c.lines[i]
		if !ln.valid {
			continue
		}
		out.Valid++
		if ln.replica {
			out.Replicas++
			continue
		}
		if c.dead(ln, now) {
			out.DeadPrimaries++
		}
		if ln.vuln {
			out.Vulnerable++
		}
	}
}
