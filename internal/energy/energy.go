// Package energy models the dynamic energy of the L1/L2 data hierarchy the
// way the paper does (§4.1, §5.8, §5.9): a per-access energy for each cache
// level — the paper obtains these from CACTI 3.0 — plus the cost of parity
// and SEC-DED computations expressed as a fraction of an L1 access (the
// paper evaluates parity:ECC ratios of 15%:30% and 10%:30%).
//
// All values are parameters: the defaults are CACTI-3-class figures for the
// Table 1 geometry (16KB 4-way L1, 256KB 4-way L2, 0.18um-era technology),
// and every experiment reports *relative* energy, which is what the paper
// plots.
package energy

// Params holds per-event energies in nanojoules, plus the check-computation
// cost fractions.
type Params struct {
	// L1Read and L1Write are the dynamic energy of one full-line L1
	// access (a fill, an install, a line read).
	L1Read, L1Write float64
	// L1WordWrite is the energy of writing a single 64-bit word into a
	// known way (a store, or a replica word update): far fewer bitlines
	// switch than on a line operation.
	L1WordWrite float64
	// L2Read and L2Write are the dynamic energy of one L2 access.
	L2Read, L2Write float64
	// ParityFrac is the cost of one parity computation/verification as a
	// fraction of L1Read.
	ParityFrac float64
	// ECCFrac is the cost of one SEC-DED computation/verification as a
	// fraction of L1Read.
	ECCFrac float64

	// RCacheRead and RCacheWrite price accesses to the separate
	// duplication cache (the Kim & Somani r-cache baseline), a small
	// (~2KB) array.
	RCacheRead, RCacheWrite float64

	// MemRead and MemWrite price one memory-tier (DRAM/remote/CXL)
	// access per direction. The defaults are zero — the paper's energy
	// study stops at the L2 — so schema-1/2 reports are unchanged; the
	// two-tier experiments opt in via WithMemoryCosts.
	MemRead, MemWrite float64
}

// DefaultParams returns CACTI-3-class energies for the paper's cache
// geometry with the paper's baseline check-cost ratios (parity 15%, ECC 30%
// of an L1 access; Figure 17(b)).
func DefaultParams() Params {
	return Params{
		L1Read:      0.45, // nJ, 16KB 4-way 64B-line SRAM read (0.18um class)
		L1Write:     0.48,
		L2Read:      3.40, // nJ, 256KB 4-way (CACTI-3 class, 0.18um)
		L2Write:     3.70,
		ParityFrac:  0.15,
		ECCFrac:     0.30,
		RCacheRead:  0.12, // nJ, ~2KB side array
		RCacheWrite: 0.13,
	}
}

// WithCheckCosts returns a copy of p with the parity and ECC computation
// fractions replaced. Used for the Figure 17(b)/(c) sensitivity points.
func (p Params) WithCheckCosts(parityFrac, eccFrac float64) Params {
	p.ParityFrac = parityFrac
	p.ECCFrac = eccFrac
	return p
}

// WithMemoryCosts returns a copy of p with the memory-tier per-access
// energies replaced. Used by the two-tier experiments, which care about
// traffic that escapes the protected hierarchy.
func (p Params) WithMemoryCosts(memRead, memWrite float64) Params {
	p.MemRead = memRead
	p.MemWrite = memWrite
	return p
}

// Counts tallies energy-relevant events.
type Counts struct {
	L1Reads      uint64
	L1Writes     uint64
	L1WordWrites uint64
	L2Reads      uint64
	L2Writes     uint64
	// ParityOps counts parity computations (on writes) and verifications
	// (on reads).
	ParityOps uint64
	// ECCOps counts SEC-DED computations and verifications.
	ECCOps uint64
	// RCacheReads and RCacheWrites count duplication-cache probes and
	// deposits.
	RCacheReads, RCacheWrites uint64
	// MemReads and MemWrites count memory-tier accesses per direction.
	MemReads, MemWrites uint64
}

// Add accumulates another Counts into c.
func (c *Counts) Add(o Counts) {
	c.L1Reads += o.L1Reads
	c.L1Writes += o.L1Writes
	c.L1WordWrites += o.L1WordWrites
	c.L2Reads += o.L2Reads
	c.L2Writes += o.L2Writes
	c.ParityOps += o.ParityOps
	c.ECCOps += o.ECCOps
	c.RCacheReads += o.RCacheReads
	c.RCacheWrites += o.RCacheWrites
	c.MemReads += o.MemReads
	c.MemWrites += o.MemWrites
}

// Meter accumulates events and evaluates them against a Params table.
// The zero value is not useful; construct with NewMeter.
type Meter struct {
	params Params
	counts Counts
}

// NewMeter returns a Meter using the given parameters.
func NewMeter(p Params) *Meter {
	return &Meter{params: p}
}

// Params returns the meter's energy parameters.
func (m *Meter) Params() Params { return m.params }

// Counts returns a snapshot of the accumulated event counts.
func (m *Meter) Counts() Counts { return m.counts }

// AddL1Read records n L1 read accesses.
func (m *Meter) AddL1Read(n uint64) { m.counts.L1Reads += n }

// AddL1Write records n full-line L1 write accesses.
func (m *Meter) AddL1Write(n uint64) { m.counts.L1Writes += n }

// AddL1WordWrite records n single-word L1 writes.
func (m *Meter) AddL1WordWrite(n uint64) { m.counts.L1WordWrites += n }

// AddL2Read records n L2 read accesses.
func (m *Meter) AddL2Read(n uint64) { m.counts.L2Reads += n }

// AddL2Write records n L2 write accesses.
func (m *Meter) AddL2Write(n uint64) { m.counts.L2Writes += n }

// AddParity records n parity computations/verifications.
func (m *Meter) AddParity(n uint64) { m.counts.ParityOps += n }

// AddECC records n SEC-DED computations/verifications.
func (m *Meter) AddECC(n uint64) { m.counts.ECCOps += n }

// AddRCacheRead records n duplication-cache probes.
func (m *Meter) AddRCacheRead(n uint64) { m.counts.RCacheReads += n }

// AddRCacheWrite records n duplication-cache deposits.
func (m *Meter) AddRCacheWrite(n uint64) { m.counts.RCacheWrites += n }

// AddMemRead records n memory-tier reads (demand fills and fetches).
func (m *Meter) AddMemRead(n uint64) { m.counts.MemReads += n }

// AddMemWrite records n memory-tier writes (write-backs and buffered
// write-throughs).
func (m *Meter) AddMemWrite(n uint64) { m.counts.MemWrites += n }

// RCacheEnergy returns the duplication-cache energy in nJ.
func (m *Meter) RCacheEnergy() float64 {
	return float64(m.counts.RCacheReads)*m.params.RCacheRead +
		float64(m.counts.RCacheWrites)*m.params.RCacheWrite
}

// L1Energy returns the L1 array energy in nJ.
func (m *Meter) L1Energy() float64 {
	return float64(m.counts.L1Reads)*m.params.L1Read +
		float64(m.counts.L1Writes)*m.params.L1Write +
		float64(m.counts.L1WordWrites)*m.params.L1WordWrite
}

// L2Energy returns the L2 array energy in nJ.
func (m *Meter) L2Energy() float64 {
	return float64(m.counts.L2Reads)*m.params.L2Read + float64(m.counts.L2Writes)*m.params.L2Write
}

// CheckEnergy returns the parity/ECC computation energy in nJ.
func (m *Meter) CheckEnergy() float64 {
	unit := m.params.L1Read
	return float64(m.counts.ParityOps)*m.params.ParityFrac*unit +
		float64(m.counts.ECCOps)*m.params.ECCFrac*unit
}

// MemEnergy returns the memory-tier energy in nJ (zero under the default
// parameters, which price only the on-chip hierarchy).
func (m *Meter) MemEnergy() float64 {
	return float64(m.counts.MemReads)*m.params.MemRead +
		float64(m.counts.MemWrites)*m.params.MemWrite
}

// Total returns the total dynamic energy (L1 + L2 + checks + r-cache +
// memory tier) in nJ.
func (m *Meter) Total() float64 {
	return m.L1Energy() + m.L2Energy() + m.CheckEnergy() + m.RCacheEnergy() + m.MemEnergy()
}

// Reset zeroes the accumulated counts and installs new parameters, making
// the meter indistinguishable from NewMeter(p) (arena reuse).
func (m *Meter) Reset(p Params) {
	m.params = p
	m.counts = Counts{}
}
