package energy

import (
	"math"
	"testing"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeterAccumulation(t *testing.T) {
	p := Params{L1Read: 1, L1Write: 2, L2Read: 4, L2Write: 8, ParityFrac: 0.1, ECCFrac: 0.3}
	m := NewMeter(p)
	m.AddL1Read(10)
	m.AddL1Write(5)
	m.AddL2Read(3)
	m.AddL2Write(2)
	m.AddParity(100)
	m.AddECC(50)

	if got := m.L1Energy(); !almostEqual(got, 10*1+5*2) {
		t.Errorf("L1Energy = %g, want 20", got)
	}
	if got := m.L2Energy(); !almostEqual(got, 3*4+2*8) {
		t.Errorf("L2Energy = %g, want 28", got)
	}
	// Checks priced against L1Read: 100*0.1*1 + 50*0.3*1 = 25.
	if got := m.CheckEnergy(); !almostEqual(got, 25) {
		t.Errorf("CheckEnergy = %g, want 25", got)
	}
	if got := m.Total(); !almostEqual(got, 20+28+25) {
		t.Errorf("Total = %g, want 73", got)
	}
}

func TestDefaultParamsSane(t *testing.T) {
	p := DefaultParams()
	if p.L1Read <= 0 || p.L2Read <= p.L1Read {
		t.Errorf("defaults should have 0 < L1Read < L2Read: %+v", p)
	}
	if p.ParityFrac >= p.ECCFrac {
		t.Errorf("parity must be cheaper than ECC: %+v", p)
	}
}

func TestWithCheckCosts(t *testing.T) {
	p := DefaultParams().WithCheckCosts(0.10, 0.30)
	if p.ParityFrac != 0.10 || p.ECCFrac != 0.30 {
		t.Errorf("WithCheckCosts not applied: %+v", p)
	}
	// Original default untouched.
	if DefaultParams().ParityFrac != 0.15 {
		t.Error("WithCheckCosts must not mutate the default")
	}
}

func TestCountsAdd(t *testing.T) {
	a := Counts{L1Reads: 1, L1Writes: 2, L2Reads: 3, L2Writes: 4, ParityOps: 5, ECCOps: 6}
	b := Counts{L1Reads: 10, L1Writes: 20, L2Reads: 30, L2Writes: 40, ParityOps: 50, ECCOps: 60}
	a.Add(b)
	want := Counts{L1Reads: 11, L1Writes: 22, L2Reads: 33, L2Writes: 44, ParityOps: 55, ECCOps: 66}
	if a != want {
		t.Errorf("Add = %+v, want %+v", a, want)
	}
}

func TestECCCostsMoreThanParity(t *testing.T) {
	// The paper's central energy argument: ECC verification costs more
	// than parity per operation.
	mp := NewMeter(DefaultParams())
	me := NewMeter(DefaultParams())
	mp.AddParity(1000)
	me.AddECC(1000)
	if mp.CheckEnergy() >= me.CheckEnergy() {
		t.Errorf("parity energy %g should be below ECC energy %g",
			mp.CheckEnergy(), me.CheckEnergy())
	}
}
