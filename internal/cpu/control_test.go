package cpu

import (
	"testing"

	"repro/internal/isa"
)

// callReturnStream builds repeated call/return pairs to one callee.
func callReturnStream(pairs int) []isa.Inst {
	var insts []isa.Inst
	const callerPC, calleePC = 0x400000, 0x500000
	for i := 0; i < pairs; i++ {
		insts = append(insts,
			isa.Inst{PC: callerPC, Op: isa.OpIntALU},
			isa.Inst{PC: callerPC + 4, Op: isa.OpCall, Taken: true, Target: calleePC},
			isa.Inst{PC: calleePC, Op: isa.OpIntALU},
			isa.Inst{PC: calleePC + 4, Op: isa.OpReturn, Taken: true, Target: callerPC + 8},
			isa.Inst{PC: callerPC + 8, Op: isa.OpJump, Taken: true, Target: callerPC},
		)
	}
	return insts
}

func TestRASPredictsReturns(t *testing.T) {
	c := newTestCore(callReturnStream(500), &fixedDCache{loadLat: 1, storeLat: 1})
	s := c.Run(1 << 20)
	if s.Branches == 0 {
		t.Fatal("no control instructions")
	}
	// After warmup (BTB learns call/jump targets, RAS pairs returns),
	// the stream is almost perfectly predictable.
	rate := float64(s.Mispredicts) / float64(s.Branches)
	if rate > 0.05 {
		t.Errorf("call/return mispredict rate %.3f, want < 0.05", rate)
	}
}

func TestReturnWithoutRASEntryMispredicts(t *testing.T) {
	// A bare return with an empty RAS must count as a misprediction but
	// still execute correctly.
	insts := []isa.Inst{
		{PC: 0x400000, Op: isa.OpIntALU},
		{PC: 0x400004, Op: isa.OpReturn, Taken: true, Target: 0x600000},
		{PC: 0x600000, Op: isa.OpIntALU},
	}
	c := newTestCore(insts, &fixedDCache{loadLat: 1, storeLat: 1})
	s := c.Run(100)
	if s.Instructions != 3 {
		t.Fatalf("committed %d, want 3", s.Instructions)
	}
	if s.Mispredicts == 0 {
		t.Error("cold return should mispredict")
	}
}

func TestLSQFullStalls(t *testing.T) {
	// A long miss-latency load stream overwhelms the 8-entry LSQ.
	insts := make([]isa.Inst, 200)
	for i := range insts {
		insts[i] = isa.Inst{PC: uint64(4 * i), Op: isa.OpLoad, Addr: uint64(0x1000000 + i*64), Size: 8}
	}
	c := newTestCore(insts, &fixedDCache{loadLat: 40, storeLat: 1})
	s := c.Run(1 << 20)
	if s.LSQFull == 0 {
		t.Error("expected LSQ-full dispatch stalls with 40-cycle loads")
	}
	if s.Instructions != 200 {
		t.Errorf("committed %d, want 200", s.Instructions)
	}
}

func TestFPOpsUseFPUnits(t *testing.T) {
	// 8 independent FP divides on the single non-pipelined FP divider
	// must take at least 8*FPDivLat cycles.
	insts := make([]isa.Inst, 8)
	for i := range insts {
		insts[i] = isa.Inst{PC: uint64(4 * i), Op: isa.OpFPDiv}
	}
	c := newTestCore(insts, &fixedDCache{loadLat: 1, storeLat: 1})
	s := c.Run(1 << 20)
	min := 8 * DefaultConfig().FPDivLat
	if s.Cycles < min/2 {
		t.Errorf("cycles = %d, want >= %d for serialized FP divides", s.Cycles, min/2)
	}
	// Mixed FP ALU ops are pipelined: much higher throughput.
	insts2 := make([]isa.Inst, 400)
	for i := range insts2 {
		insts2[i] = isa.Inst{PC: uint64(4 * i), Op: isa.OpFPALU}
	}
	c2 := newTestCore(insts2, &fixedDCache{loadLat: 1, storeLat: 1})
	s2 := c2.Run(1 << 20)
	if ipc := s2.IPC(); ipc < 2 {
		t.Errorf("pipelined FP ALU IPC = %.2f, want >= 2", ipc)
	}
}

func TestJumpTargetsLearnedByBTB(t *testing.T) {
	// A repeated indirect-style jump to a fixed target becomes
	// predictable once the BTB warms.
	var insts []isa.Inst
	for i := 0; i < 300; i++ {
		insts = append(insts,
			isa.Inst{PC: 0x400000, Op: isa.OpIntALU},
			isa.Inst{PC: 0x400004, Op: isa.OpJump, Taken: true, Target: 0x400000},
		)
	}
	c := newTestCore(insts, &fixedDCache{loadLat: 1, storeLat: 1})
	s := c.Run(1 << 20)
	if s.Mispredicts > 3 {
		t.Errorf("stable jump should be learned; mispredicts = %d", s.Mispredicts)
	}
}

func TestBranchTargetChangeMispredicts(t *testing.T) {
	// Same branch PC, alternating targets: the BTB can never settle, so
	// taken predictions keep missing on the target.
	var insts []isa.Inst
	for i := 0; i < 200; i++ {
		target := uint64(0x500000)
		if i%2 == 1 {
			target = 0x600000
		}
		insts = append(insts,
			isa.Inst{PC: 0x400000, Op: isa.OpIntALU},
			isa.Inst{PC: 0x400004, Op: isa.OpJump, Taken: true, Target: target},
			isa.Inst{PC: target, Op: isa.OpJump, Taken: true, Target: 0x400000},
		)
	}
	c := newTestCore(insts, &fixedDCache{loadLat: 1, storeLat: 1})
	s := c.Run(1 << 20)
	if s.Mispredicts < 10 {
		t.Errorf("alternating targets should keep mispredicting, got %d", s.Mispredicts)
	}
}

// mshrDCache misses everything with a long latency and reports misses.
type mshrDCache struct{ loads int }

func (m *mshrDCache) Load(_ uint64, _ uint64) uint64  { m.loads++; return 60 }
func (m *mshrDCache) Store(_ uint64, _ uint64) uint64 { return 1 }
func (m *mshrDCache) WouldHit(_ uint64) bool          { return false }

func TestMSHRLimitThrottlesMisses(t *testing.T) {
	insts := make([]isa.Inst, 400)
	for i := range insts {
		insts[i] = isa.Inst{PC: uint64(4 * i), Op: isa.OpLoad, Addr: uint64(0x1000000 + i*64), Size: 8}
	}
	run := func(mshrs int) (uint64, uint64) {
		cfg := DefaultConfig()
		cfg.MSHRs = mshrs
		cfg.MemPorts = 4
		c := New(cfg, isa.NewSliceStream(insts), perfectICache{}, &mshrDCache{})
		s := c.Run(1 << 20)
		return s.Cycles, s.MSHRStalls
	}
	cyc1, stalls1 := run(1)
	cyc8, _ := run(8)
	if stalls1 == 0 {
		t.Error("MSHR=1 should record stalls on an all-miss stream")
	}
	if cyc1 <= cyc8 {
		t.Errorf("MSHR=1 (%d cycles) must be slower than MSHR=8 (%d)", cyc1, cyc8)
	}
	// Unlimited mode (0) must not stall at all.
	cfg := DefaultConfig()
	cfg.MSHRs = 0
	c := New(cfg, isa.NewSliceStream(insts), perfectICache{}, &mshrDCache{})
	if s := c.Run(1 << 20); s.MSHRStalls != 0 {
		t.Errorf("unlimited MSHRs recorded %d stalls", s.MSHRStalls)
	}
}
