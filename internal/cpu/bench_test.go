package cpu

import (
	"testing"

	"repro/internal/workload"
)

// BenchmarkCPURun measures the out-of-order engine alone: a fixed-latency
// data cache isolates the per-cycle pipeline cost (fetch, dispatch, issue
// wakeup scans, commit) from the memory hierarchy.
func BenchmarkCPURun(b *testing.B) {
	const instrs = 50_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		gen := workload.MustNew(workload.Gcc(), 1)
		c := New(DefaultConfig(), gen, perfectICache{}, &fixedDCache{loadLat: 2, storeLat: 1})
		b.StartTimer()
		s := c.Run(instrs)
		if s.Instructions != instrs {
			b.Fatalf("committed %d, want %d", s.Instructions, instrs)
		}
	}
	b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
}
