// Package cpu is a cycle-level timing model of the multiple-issue
// out-of-order superscalar processor in the paper's Table 1, in the style
// of SimpleScalar's sim-outorder: 4-wide fetch/issue/commit, a 16-entry
// register update unit (RUU), an 8-entry load/store queue (LSQ), the
// Table 1 functional-unit mix, a combined branch predictor with a 4-way
// 512-entry BTB, and a 3-cycle misprediction penalty.
//
// The model is trace-driven: instruction streams carry resolved branch
// outcomes and memory addresses (internal/isa), and the core models the
// timing consequences — dependence stalls, structural hazards, cache
// latencies, and misprediction bubbles. Wrong-path instructions are not
// simulated; a mispredicted branch stalls fetch until it resolves plus the
// redirect penalty, the standard trace-driven treatment.
package cpu

import (
	"math"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/isa"
)

// DataCache is the data-side memory interface: the ICR cache implements it.
type DataCache interface {
	// Load returns the full latency of a data read at addr.
	Load(now uint64, addr uint64) uint64
	// Store returns the latency a store holds the pipeline (1 cycle when
	// buffered; more when a write-through buffer stalls).
	Store(now uint64, addr uint64) uint64
}

// HitPredictor is an optional DataCache extension: when implemented, the
// core uses it to enforce the MSHR limit (loads that would miss cannot
// issue while all miss registers are busy).
type HitPredictor interface {
	// WouldHit reports whether a load of addr would hit without changing
	// any cache state.
	WouldHit(addr uint64) bool
}

// Config holds the core's structural parameters. ZeroValue fields default
// to the paper's Table 1 machine via DefaultConfig.
type Config struct {
	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	RUUSize     int
	LSQSize     int
	FetchQueue  int

	IntALUs   int // pipelined, 1-cycle
	IntMulDiv int // 1 multiplier/divider (mul pipelined, div not)
	FPALUs    int // pipelined, 2-cycle
	FPMulDiv  int // 1 multiplier/divider

	IntMulLat, IntDivLat uint64
	FPALULat             uint64
	FPMulLat, FPDivLat   uint64

	MemPorts      int    // cache ports available to loads per cycle
	MSHRs         int    // outstanding load misses supported (0 = unlimited)
	BranchPenalty uint64 // redirect cycles after a mispredict resolves

	RASDepth int

	// EachCycle, if non-nil, is invoked once per simulated cycle (used by
	// the fault-injection scheduler).
	EachCycle func(now uint64)

	// Halt, if non-nil, is polled once per cycle; when it reports true the
	// run stops early with whatever has committed so far. The cancellable
	// simulator entry point (sim.SimulateContext) installs an atomic-flag
	// check here; the flag is set when the run's context is cancelled.
	Halt func() bool
}

// DefaultConfig returns the Table 1 core: 4-wide, RUU 16, LSQ 8, 4 integer
// ALUs + 1 mul/div, 4 FP ALUs + 1 mul/div, 3-cycle misprediction penalty.
// Functional-unit latencies follow SimpleScalar's defaults.
func DefaultConfig() Config {
	return Config{
		FetchWidth:  4,
		IssueWidth:  4,
		CommitWidth: 4,
		RUUSize:     16,
		LSQSize:     8,
		FetchQueue:  8,
		IntALUs:     4,
		IntMulDiv:   1,
		FPALUs:      4,
		FPMulDiv:    1,
		IntMulLat:   3, IntDivLat: 20,
		FPALULat: 2,
		FPMulLat: 4, FPDivLat: 12,
		// A single dL1 port: the integrity-verification latency occupies
		// the port, which is the paper's premise for why multi-cycle
		// checks are costly on loads.
		MemPorts:      1,
		MSHRs:         8, // SimpleScalar-era non-blocking cache depth
		BranchPenalty: 3,
		RASDepth:      8,
	}
}

// Stats counts core-side events for one run.
type Stats struct {
	Cycles       uint64
	Instructions uint64
	Branches     uint64 // control-transfer instructions seen
	Mispredicts  uint64
	Loads        uint64
	Stores       uint64
	FetchStalls  uint64 // cycles fetch was blocked (icache or redirect)
	RUUFull      uint64 // dispatch stalls due to a full RUU
	LSQFull      uint64 // dispatch stalls due to a full LSQ
	MSHRStalls   uint64 // load issues blocked on miss-register exhaustion
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

const neverDone = math.MaxUint64

// entry is one RUU slot.
type entry struct {
	valid    bool
	inst     isa.Inst
	seq      uint64
	issued   bool
	doneAt   uint64 // cycle the result is available (neverDone until issued)
	mispred  bool
	resolved bool // mispredict redirect accounted
}

// Core is the out-of-order engine.
type Core struct {
	cfg    Config
	stream isa.Stream
	icache cache.Level //icrvet:persistent aliases the pool owner's il1, which the owner resets directly
	dcache DataCache   //icrvet:persistent aliases the pool owner's dl1, which the owner resets directly

	pred *branch.Combined
	btb  *branch.BTB
	ras  *branch.RAS

	now   uint64
	stats Stats

	// Fetch state. The fetch queue is a fixed ring (head/count over a
	// cfg.FetchQueue-sized array) and the one-instruction peek buffer is
	// held by value: both would otherwise allocate on every fetched
	// instruction (slice growth after re-slicing; &inst escaping to the
	// heap), the dominant allocation source in the whole simulator.
	fetchQ       []fqEntry // ring buffer, len == cfg.FetchQueue
	fqHead       int
	fqCount      int
	fetchStall   uint64 // fetch blocked until this cycle
	pendingInst  isa.Inst
	havePending  bool
	streamDone   bool
	lastFetchBlk uint64 // last icache block fetched (to count per-block accesses)
	seqCounter   uint64

	// Window.
	ruu      []entry
	ruuHead  int
	ruuCount int
	lsqCount int
	// unissued lists the RUU slots of not-yet-issued entries in dispatch
	// (= sequence) order, so issue() visits exactly the entries the full
	// head-to-tail scan would have attempted, without walking the issued
	// majority every cycle. Entries leave only by issuing (there is no
	// wrong-path squash), so the list never needs rebuilding.
	unissued []int
	// storesInWindow counts not-yet-committed stores in the RUU so the
	// per-load disambiguation scan can be skipped entirely when no store
	// is in flight (the common case).
	storesInWindow int

	// Non-pipelined FU reservation.
	intDivBusy uint64
	fpDivBusy  uint64

	// Data-cache port reservation: a load occupies a port for the L1-side
	// portion of its latency (a 2-cycle checked access holds the port for
	// 2 cycles — the integrity check is not pipelined), and stores take a
	// port for one cycle at commit.
	portFreeAt []uint64

	// missBusyUntil holds the completion cycles of in-flight load misses
	// (MSHR occupancy).
	missBusyUntil []uint64

	commitStall uint64 // commit blocked until this cycle (write-buffer stalls)
	maxInstrs   uint64 // commit budget for the current Run
}

type fqEntry struct {
	inst    isa.Inst
	seq     uint64
	readyAt uint64
	mispred bool
}

// New builds a core over the given instruction stream and memory
// hierarchy. Predictor state is created fresh per core.
func New(cfg Config, stream isa.Stream, icache cache.Level, dcache DataCache) *Core {
	if cfg.FetchWidth <= 0 {
		cfg = DefaultConfig()
	}
	if cfg.FetchQueue <= 0 {
		// A zero-capacity queue could never feed dispatch; default to two
		// fetch groups, as in DefaultConfig.
		cfg.FetchQueue = 2 * cfg.FetchWidth
	}
	return &Core{
		cfg:           cfg,
		stream:        stream,
		icache:        icache,
		dcache:        dcache,
		pred:          branch.NewCombined(branch.DefaultConfig()),
		btb:           branch.NewBTB(512, 4),
		ras:           branch.NewRAS(cfg.RASDepth),
		fetchQ:        make([]fqEntry, cfg.FetchQueue),
		ruu:           make([]entry, cfg.RUUSize),
		unissued:      make([]int, 0, cfg.RUUSize),
		portFreeAt:    make([]uint64, cfg.MemPorts),
		missBusyUntil: make([]uint64, 0, cfg.MSHRs),
	}
}

// Stats returns a snapshot of the core's counters.
func (c *Core) Stats() Stats { return c.stats }

// Now returns the current cycle.
func (c *Core) Now() uint64 { return c.now }

// Run simulates until maxInstructions have committed or the stream ends,
// and returns the final statistics.
func (c *Core) Run(maxInstructions uint64) Stats {
	c.maxInstrs = maxInstructions
	for c.stats.Instructions < maxInstructions {
		if c.streamDone && c.ruuCount == 0 && c.fqCount == 0 && !c.havePending {
			break
		}
		if c.cfg.Halt != nil && c.cfg.Halt() {
			break
		}
		c.commit()
		c.issue()
		c.dispatch()
		c.fetch()
		if c.cfg.EachCycle != nil {
			c.cfg.EachCycle(c.now)
		}
		c.now++
		c.stats.Cycles = c.now
	}
	return c.stats
}

// ---------------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------------

// nextInst peeks/consumes the stream through a one-instruction buffer.
func (c *Core) nextInst() (isa.Inst, bool) {
	if c.havePending {
		c.havePending = false
		return c.pendingInst, true
	}
	if c.streamDone {
		return isa.Inst{}, false
	}
	in, ok := c.stream.Next()
	if !ok {
		c.streamDone = true
		return isa.Inst{}, false
	}
	return in, true
}

// fqPush appends to the fetch-queue ring; the caller has checked capacity.
func (c *Core) fqPush(fe fqEntry) {
	c.fetchQ[(c.fqHead+c.fqCount)%len(c.fetchQ)] = fe
	c.fqCount++
}

func (c *Core) fetch() {
	if c.now < c.fetchStall {
		c.stats.FetchStalls++
		return
	}
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.fqCount >= len(c.fetchQ) {
			return
		}
		in, ok := c.nextInst()
		if !ok {
			return
		}
		// Instruction-cache access once per new block.
		blk := in.PC / 32 // Table 1: 32-byte iL1 blocks
		if blk != c.lastFetchBlk {
			c.lastFetchBlk = blk
			lat := c.icache.Access(c.now, in.PC, cache.Fetch)
			if lat > 1 {
				// Miss: this instruction arrives when the fill completes.
				c.fetchStall = c.now + lat
				c.pendingInst = in
				c.havePending = true
				return
			}
		}
		c.seqCounter++
		fe := fqEntry{inst: in, seq: c.seqCounter, readyAt: c.now + 1}
		if in.Op.IsCtrl() {
			fe.mispred = c.predict(&in)
			if fe.mispred {
				c.stats.Mispredicts++
				// Trace-driven: stall fetch; the redirect is released
				// when the branch resolves (see issue()).
				c.fetchStall = neverDone
				c.fqPush(fe)
				return
			}
			if in.Taken {
				// Can't fetch past a predicted-taken branch this cycle.
				c.fqPush(fe)
				return
			}
		}
		c.fqPush(fe)
	}
}

// predict runs the front-end predictors for a control instruction and
// reports whether it is mispredicted. Predictor tables train at resolve
// time; the RAS is speculatively updated at fetch, as in real front ends.
func (c *Core) predict(in *isa.Inst) bool {
	c.stats.Branches++
	switch in.Op {
	case isa.OpBranch:
		dir := c.pred.Predict(in.PC)
		if dir != in.Taken {
			return true
		}
		if !in.Taken {
			return false
		}
		tgt, hit := c.btb.Lookup(in.PC)
		return !hit || tgt != in.Target
	case isa.OpJump:
		tgt, hit := c.btb.Lookup(in.PC)
		return !hit || tgt != in.Target
	case isa.OpCall:
		c.ras.Push(in.PC + 4)
		tgt, hit := c.btb.Lookup(in.PC)
		return !hit || tgt != in.Target
	case isa.OpReturn:
		tgt, ok := c.ras.Pop()
		return !ok || tgt != in.Target
	default:
		return false
	}
}

// resolveBranch trains the predictors when a control instruction executes
// and releases a pending redirect.
func (c *Core) resolveBranch(e *entry) {
	in := &e.inst
	switch in.Op {
	case isa.OpBranch:
		c.pred.Update(in.PC, in.Taken)
		if in.Taken {
			c.btb.Update(in.PC, in.Target)
		}
	case isa.OpJump, isa.OpCall:
		c.btb.Update(in.PC, in.Target)
	}
	if e.mispred && !e.resolved {
		e.resolved = true
		// Redirect: fetch resumes after resolution plus the penalty.
		c.fetchStall = e.doneAt + c.cfg.BranchPenalty
	}
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

func (c *Core) dispatch() {
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.fqCount == 0 || c.fetchQ[c.fqHead].readyAt > c.now {
			return
		}
		if c.ruuCount >= c.cfg.RUUSize {
			c.stats.RUUFull++
			return
		}
		fe := c.fetchQ[c.fqHead]
		if fe.inst.Op.IsMem() && c.lsqCount >= c.cfg.LSQSize {
			c.stats.LSQFull++
			return
		}
		c.fqHead = (c.fqHead + 1) % len(c.fetchQ)
		c.fqCount--
		idx := (c.ruuHead + c.ruuCount) % c.cfg.RUUSize
		c.ruu[idx] = entry{
			valid:   true,
			inst:    fe.inst,
			seq:     fe.seq,
			doneAt:  neverDone,
			mispred: fe.mispred,
		}
		c.ruuCount++
		c.unissued = append(c.unissued, idx)
		if fe.inst.Op.IsMem() {
			c.lsqCount++
			if fe.inst.Op == isa.OpStore {
				c.storesInWindow++
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Issue / execute
// ---------------------------------------------------------------------------

// producerDone reports whether the producer `dist` instructions before seq
// has its result available. Producers no longer in the window have
// committed and are surely done.
//
// The RUU holds a contiguous seq range (sequence numbers are assigned at
// fetch, dispatched in order, and retired only from the head), so the
// producer's slot — if it is still in the window — is at a fixed offset
// from the head: an O(1) index computation instead of the O(RUU) scan
// that used to dominate the whole simulator's profile.
func (c *Core) producerDone(seq uint64, dist uint16) bool {
	if dist == 0 || c.ruuCount == 0 {
		return true
	}
	p := seq - uint64(dist) // may wrap; a wrapped p falls outside the window
	head := c.ruu[c.ruuHead].seq
	if p < head || p-head >= uint64(c.ruuCount) {
		// Not in the window: committed long ago (or predates the stream).
		return true
	}
	e := &c.ruu[(c.ruuHead+int(p-head))%c.cfg.RUUSize]
	return e.doneAt <= c.now
}

// earlierStoreConflict reports whether an older, not-yet-committed store
// overlaps the load's word (conservative same-word disambiguation). With
// no store in the window — the common case, tracked by storesInWindow —
// the scan is skipped outright; otherwise only the entries older than the
// load are examined (the window is in seq order from the head).
func (c *Core) earlierStoreConflict(loadIdx int) bool {
	if c.storesInWindow == 0 {
		return false
	}
	word := c.ruu[loadIdx].inst.Addr &^ 7
	pos := loadIdx - c.ruuHead
	if pos < 0 {
		pos += c.cfg.RUUSize
	}
	for i := 0; i < pos; i++ {
		e := &c.ruu[(c.ruuHead+i)%c.cfg.RUUSize]
		if e.inst.Op == isa.OpStore && e.inst.Addr&^7 == word {
			return true
		}
	}
	return false
}

// opLatency returns the execution latency of a non-memory op and whether a
// non-pipelined unit must be reserved.
func (c *Core) opLatency(op isa.Op) (lat uint64, div bool) {
	switch op {
	case isa.OpIntMul:
		return c.cfg.IntMulLat, false
	case isa.OpIntDiv:
		return c.cfg.IntDivLat, true
	case isa.OpFPALU:
		return c.cfg.FPALULat, false
	case isa.OpFPMul:
		return c.cfg.FPMulLat, false
	case isa.OpFPDiv:
		return c.cfg.FPDivLat, true
	default:
		return 1, false
	}
}

// mshrsFull reports whether every miss register is occupied, retiring
// completed entries first. The occupancy list is bounded by cfg.MSHRs
// (checked before every append), so when it is not even full there is
// nothing to decide — and nothing to compact.
func (c *Core) mshrsFull() bool {
	if len(c.missBusyUntil) < c.cfg.MSHRs {
		return false
	}
	live := c.missBusyUntil[:0]
	for _, t := range c.missBusyUntil {
		if t > c.now {
			live = append(live, t)
		}
	}
	c.missBusyUntil = live
	return len(live) >= c.cfg.MSHRs
}

// freePort returns an available data-cache port index, or -1.
func (c *Core) freePort() int {
	for i, t := range c.portFreeAt {
		if t <= c.now {
			return i
		}
	}
	return -1
}

func (c *Core) issue() {
	issued := 0
	intALU, fpALU := c.cfg.IntALUs, c.cfg.FPALUs
	intMD, fpMD := c.cfg.IntMulDiv, c.cfg.FPMulDiv

	// Walk only the unissued entries (in sequence order); entries that
	// stay unissued this cycle are compacted back into the list in place.
	keep := c.unissued[:0]
	for li, idx := range c.unissued {
		if issued >= c.cfg.IssueWidth {
			keep = append(keep, c.unissued[li:]...)
			break
		}
		e := &c.ruu[idx]
		if !c.producerDone(e.seq, e.inst.SrcDist1) || !c.producerDone(e.seq, e.inst.SrcDist2) {
			keep = append(keep, idx)
			continue
		}
		op := e.inst.Op
		switch {
		case op == isa.OpLoad:
			if c.earlierStoreConflict(idx) {
				keep = append(keep, idx)
				continue
			}
			port := c.freePort()
			if port < 0 {
				keep = append(keep, idx)
				continue
			}
			if c.cfg.MSHRs > 0 && c.mshrsFull() {
				// A load that would miss cannot allocate a miss register.
				if hp, ok := c.dcache.(HitPredictor); ok && !hp.WouldHit(e.inst.Addr) {
					c.stats.MSHRStalls++
					keep = append(keep, idx)
					continue
				}
			}
			lat := c.dcache.Load(c.now, e.inst.Addr)
			// The port is held for the L1-side check latency (capped at
			// 2: longer latencies are miss service, handled by MSHRs).
			occ := lat
			if occ > 2 {
				occ = 2
			}
			c.portFreeAt[port] = c.now + occ
			if c.cfg.MSHRs > 0 && lat > occ {
				c.missBusyUntil = append(c.missBusyUntil, c.now+lat)
			}
			e.issued = true
			e.doneAt = c.now + lat
			c.stats.Loads++
		case op == isa.OpStore:
			// Stores "execute" (address/data ready) in one cycle; the
			// cache write happens at commit.
			e.issued = true
			e.doneAt = c.now + 1
		case op == isa.OpIntALU || op == isa.OpIntMul || op == isa.OpIntDiv:
			lat, isDiv := c.opLatency(op)
			if op == isa.OpIntALU {
				if intALU == 0 {
					keep = append(keep, idx)
					continue
				}
				intALU--
			} else {
				if intMD == 0 || (isDiv && c.intDivBusy > c.now) {
					keep = append(keep, idx)
					continue
				}
				intMD--
				if isDiv {
					c.intDivBusy = c.now + lat
				}
			}
			e.issued = true
			e.doneAt = c.now + lat
		case op == isa.OpFPALU || op == isa.OpFPMul || op == isa.OpFPDiv:
			lat, isDiv := c.opLatency(op)
			if op == isa.OpFPALU {
				if fpALU == 0 {
					keep = append(keep, idx)
					continue
				}
				fpALU--
			} else {
				if fpMD == 0 || (isDiv && c.fpDivBusy > c.now) {
					keep = append(keep, idx)
					continue
				}
				fpMD--
				if isDiv {
					c.fpDivBusy = c.now + lat
				}
			}
			e.issued = true
			e.doneAt = c.now + lat
		default: // control
			if intALU == 0 {
				keep = append(keep, idx)
				continue
			}
			intALU--
			e.issued = true
			e.doneAt = c.now + 1
			c.resolveBranch(e)
		}
		issued++
	}
	c.unissued = keep
}

// ---------------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------------

func (c *Core) commit() {
	if c.now < c.commitStall {
		return
	}
	for n := 0; n < c.cfg.CommitWidth; n++ {
		if c.ruuCount == 0 || c.stats.Instructions >= c.maxInstrs {
			return
		}
		e := &c.ruu[c.ruuHead]
		if !e.issued || e.doneAt > c.now {
			return
		}
		if e.inst.Op == isa.OpStore {
			lat := c.dcache.Store(c.now, e.inst.Addr)
			c.stats.Stores++
			// Buffered stores don't stall commit, but they do consume
			// cache write bandwidth: queue one cycle on the least-busy
			// port.
			p := 0
			for i, t := range c.portFreeAt {
				if t < c.portFreeAt[p] {
					p = i
				}
			}
			if c.portFreeAt[p] < c.now {
				c.portFreeAt[p] = c.now
			}
			c.portFreeAt[p]++
			if lat > 1 {
				// A stalled store (full write-through buffer) holds the
				// commit stage.
				c.commitStall = c.now + lat - 1
			}
			c.lsqCount--
			c.storesInWindow--
		} else if e.inst.Op == isa.OpLoad {
			c.lsqCount--
		}
		e.valid = false
		c.ruuHead = (c.ruuHead + 1) % c.cfg.RUUSize
		c.ruuCount--
		c.stats.Instructions++
		if c.now < c.commitStall {
			return
		}
	}
}

// Reset restores the core to its post-construction state for a new run —
// new per-run configuration (hooks differ run to run), new stream — while
// reusing every internal array: the fetch ring, RUU, issue list, port and
// MSHR reservations, and the branch predictor tables. Structure sizes are
// taken from cfg exactly as New takes them; an array whose configured size
// changed is reallocated, so Reset is correct (just not allocation-free)
// across machine geometries. Stale entries beyond the reset ring counts
// are unreachable: fetch and dispatch fully overwrite a slot before the
// counts make it visible.
func (c *Core) Reset(cfg Config, stream isa.Stream) {
	if cfg.FetchWidth <= 0 {
		cfg = DefaultConfig()
	}
	if cfg.FetchQueue <= 0 {
		cfg.FetchQueue = 2 * cfg.FetchWidth
	}
	c.cfg = cfg
	c.stream = stream

	c.pred.Reset()
	c.btb.Reset()
	if c.ras.Cap() != cfg.RASDepth {
		c.ras = branch.NewRAS(cfg.RASDepth)
	} else {
		c.ras.Reset()
	}

	c.now = 0
	c.stats = Stats{}

	if len(c.fetchQ) != cfg.FetchQueue {
		c.fetchQ = make([]fqEntry, cfg.FetchQueue)
	}
	c.fqHead = 0
	c.fqCount = 0
	c.fetchStall = 0
	c.pendingInst = isa.Inst{}
	c.havePending = false
	c.streamDone = false
	c.lastFetchBlk = 0
	c.seqCounter = 0

	if len(c.ruu) != cfg.RUUSize {
		c.ruu = make([]entry, cfg.RUUSize)
		c.unissued = make([]int, 0, cfg.RUUSize)
	}
	c.ruuHead = 0
	c.ruuCount = 0
	c.lsqCount = 0
	c.unissued = c.unissued[:0]
	c.storesInWindow = 0

	c.intDivBusy = 0
	c.fpDivBusy = 0
	if len(c.portFreeAt) != cfg.MemPorts {
		c.portFreeAt = make([]uint64, cfg.MemPorts)
	} else {
		clear(c.portFreeAt)
	}
	if cap(c.missBusyUntil) < cfg.MSHRs {
		c.missBusyUntil = make([]uint64, 0, cfg.MSHRs)
	}
	c.missBusyUntil = c.missBusyUntil[:0]
	c.commitStall = 0
	c.maxInstrs = 0
}
