package cpu

import (
	"repro/internal/cache"
	"repro/internal/isa"
)

// WarmStream is an optional isa.Stream extension for sampled simulation: a
// stream that can produce instructions without drawing the parameters that
// only matter to out-of-order timing (dependence distances, load-use
// chains). The warmed stream must be statistically identical to the
// detailed one — same control flow, same address distributions — but need
// not be the same realization. workload.Generator implements it.
type WarmStream interface {
	NextWarm() (isa.Inst, bool)
}

// RunWarming functionally executes the stream until `target` cumulative
// committed instructions, updating every structure whose state carries
// across sampling windows — instruction and data caches (and through them
// replication state, decay counters, integrity codes, and the energy
// meter), branch predictors, BTB, and RAS — while skipping out-of-order
// issue and timing entirely.
//
// The pipeline is first drained in place (commit/issue/dispatch with fetch
// stopped) so no instruction is half-simulated across the mode switch;
// drained instructions count toward the target. The clock then advances at
// the estimated CPI (cpiNum cycles per cpiDen instructions, a fixed-point
// pace; callers pass the cumulative cycles/instructions of the detailed
// windows measured so far, or 0/0 for the 1.0 default before the first
// measurement) so cycle-driven machinery — fault injection, scrubbing,
// decay, replica-cache timestamps — sees a clock consistent with the
// timing estimate. Both hooks installed by sim.SimulateContext handle
// jumped clocks.
func (c *Core) RunWarming(target, cpiNum, cpiDen uint64) Stats {
	c.maxInstrs = target
	for c.ruuCount > 0 || c.fqCount > 0 {
		if c.stats.Instructions >= target {
			return c.stats
		}
		if c.cfg.Halt != nil && c.cfg.Halt() {
			return c.stats
		}
		c.commit()
		c.issue()
		c.dispatch()
		if c.cfg.EachCycle != nil {
			c.cfg.EachCycle(c.now)
		}
		c.now++
		c.stats.Cycles = c.now
	}

	if cpiDen == 0 || cpiNum == 0 {
		cpiNum, cpiDen = 1, 1
	}
	ws, _ := c.stream.(WarmStream)
	var acc uint64 // fixed-point cycle accumulator, in units of 1/cpiDen
	haltCheck := 0
	for c.stats.Instructions < target {
		if c.cfg.Halt != nil {
			if haltCheck++; haltCheck >= 256 {
				haltCheck = 0
				if c.cfg.Halt() {
					break
				}
			}
		}
		var in isa.Inst
		var ok bool
		switch {
		case c.havePending:
			in, ok = c.pendingInst, true
			c.havePending = false
		case c.streamDone:
		case ws != nil:
			in, ok = ws.NextWarm()
			c.streamDone = !ok
		default:
			in, ok = c.stream.Next()
			c.streamDone = !ok
		}
		if !ok {
			break
		}

		// Instruction-cache access once per new 32-byte block, as fetch()
		// does; the fill latency is timing and is ignored.
		blk := in.PC / 32
		if blk != c.lastFetchBlk {
			c.lastFetchBlk = blk
			c.icache.Access(c.now, in.PC, cache.Fetch)
		}

		switch {
		case in.Op == isa.OpLoad:
			c.dcache.Load(c.now, in.Addr)
			c.stats.Loads++
		case in.Op == isa.OpStore:
			c.dcache.Store(c.now, in.Addr)
			c.stats.Stores++
		case in.Op.IsCtrl():
			// Run the front-end predictors (counting branches and
			// mispredicts exactly as fetch() would) and train them
			// immediately — in-order retirement resolves every branch on
			// the spot.
			if c.predict(&in) {
				c.stats.Mispredicts++
			}
			switch in.Op {
			case isa.OpBranch:
				c.pred.Update(in.PC, in.Taken)
				if in.Taken {
					c.btb.Update(in.PC, in.Target)
				}
			case isa.OpJump, isa.OpCall:
				c.btb.Update(in.PC, in.Target)
			}
		}
		c.stats.Instructions++

		acc += cpiNum
		if acc >= cpiDen {
			d := acc / cpiDen
			acc -= d * cpiDen
			c.now += d
			if c.cfg.EachCycle != nil {
				// Hooks are written for jumped clocks: the fault hook
				// catches up every injection due in the skipped range, the
				// scrub ticker fires once per jump.
				c.cfg.EachCycle(c.now - 1)
			}
		}
	}
	c.stats.Cycles = c.now
	return c.stats
}
