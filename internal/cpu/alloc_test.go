package cpu

import (
	"testing"

	"repro/internal/workload"
)

// The pipeline allocates everything it needs at New: the fetch ring, the
// RUU, the unissued list, and the MSHR slice are all fixed-capacity. A
// steady-state run therefore performs zero allocations per cycle — pinned
// here so an accidental append-growth or escaping temporary fails fast.
func TestRunSteadyStateAllocFree(t *testing.T) {
	gen := workload.MustNew(workload.Gcc(), 1)
	c := New(DefaultConfig(), gen, perfectICache{}, &fixedDCache{loadLat: 2, storeLat: 1})

	// Warm up: fill the window, grow any lazily-sized internals.
	c.Run(20_000)

	target := c.Stats().Instructions
	got := testing.AllocsPerRun(20, func() {
		target += 1_000
		if s := c.Run(target); s.Instructions != target {
			t.Fatalf("committed %d, want %d", s.Instructions, target)
		}
	})
	// One run spans ~1000 instructions; even a single per-cycle allocation
	// would show up as hundreds per run. The workload generator may
	// allocate a handful of objects internally (rand internals), so allow
	// a small constant, not a per-cycle budget.
	if got > 3 {
		t.Errorf("steady-state run of 1000 instructions allocates %.0f objects, want <= 3", got)
	}
}
