package cpu

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/workload"
)

// fixedDCache is a DataCache with constant latencies.
type fixedDCache struct {
	loadLat, storeLat uint64
	loads, stores     int
}

func (f *fixedDCache) Load(_ uint64, _ uint64) uint64 {
	f.loads++
	return f.loadLat
}

func (f *fixedDCache) Store(_ uint64, _ uint64) uint64 {
	f.stores++
	return f.storeLat
}

// perfectICache never misses.
type perfectICache struct{}

func (perfectICache) Access(_ uint64, _ uint64, _ cache.Kind) uint64 { return 1 }

func newTestCore(insts []isa.Inst, d DataCache) *Core {
	return New(DefaultConfig(), isa.NewSliceStream(insts), perfectICache{}, d)
}

// seqInsts builds n independent 1-cycle ALU instructions.
func seqInsts(n int) []isa.Inst {
	out := make([]isa.Inst, n)
	for i := range out {
		out[i] = isa.Inst{PC: 0x400000 + uint64(4*i), Op: isa.OpIntALU}
	}
	return out
}

func TestRunsToCompletion(t *testing.T) {
	c := newTestCore(seqInsts(100), &fixedDCache{loadLat: 1, storeLat: 1})
	s := c.Run(1000)
	if s.Instructions != 100 {
		t.Fatalf("committed %d, want 100", s.Instructions)
	}
	if s.Cycles == 0 {
		t.Fatal("no cycles elapsed")
	}
}

func TestMaxInstructionsBound(t *testing.T) {
	c := newTestCore(seqInsts(1000), &fixedDCache{loadLat: 1, storeLat: 1})
	s := c.Run(100)
	if s.Instructions != 100 {
		t.Fatalf("committed %d, want exactly 100", s.Instructions)
	}
}

func TestIndependentALUIPC(t *testing.T) {
	// 4-wide machine on independent 1-cycle ops: IPC should approach the
	// commit width (bounded by the pipeline fill).
	c := newTestCore(seqInsts(4000), &fixedDCache{loadLat: 1, storeLat: 1})
	s := c.Run(1 << 20)
	if ipc := s.IPC(); ipc < 3.0 {
		t.Errorf("IPC = %.2f, want near 4 for independent ALU ops", ipc)
	}
}

func TestSerialDependenceChainIPC(t *testing.T) {
	// Every op depends on its predecessor: IPC cannot exceed ~1.
	insts := seqInsts(2000)
	for i := range insts {
		insts[i].SrcDist1 = 1
	}
	c := newTestCore(insts, &fixedDCache{loadLat: 1, storeLat: 1})
	s := c.Run(1 << 20)
	if ipc := s.IPC(); ipc > 1.05 {
		t.Errorf("IPC = %.2f, serialized chain must not exceed 1", ipc)
	}
}

func TestLoadLatencySlowsDependentChain(t *testing.T) {
	// A fully serialized load -> ALU -> load -> ... chain: each load
	// depends on the previous ALU result (address computation), so the
	// load latency sits on the critical path. This is the BaseP (1-cycle
	// loads) vs BaseECC (2-cycle loads) effect.
	mk := func(lat uint64) uint64 {
		insts := make([]isa.Inst, 3000)
		for i := range insts {
			if i%2 == 0 {
				insts[i] = isa.Inst{PC: uint64(4 * i), Op: isa.OpLoad, Addr: 0x1000000 + uint64(i*8), Size: 8, SrcDist1: 1}
			} else {
				insts[i] = isa.Inst{PC: uint64(4 * i), Op: isa.OpIntALU, SrcDist1: 1}
			}
		}
		c := newTestCore(insts, &fixedDCache{loadLat: lat, storeLat: 1})
		return c.Run(1 << 20).Cycles
	}
	c1, c2 := mk(1), mk(2)
	if c2 <= c1 {
		t.Errorf("2-cycle loads (%d cycles) must be slower than 1-cycle (%d)", c2, c1)
	}
	slowdown := float64(c2) / float64(c1)
	if slowdown < 1.2 || slowdown > 2.1 {
		t.Errorf("slowdown %.2f out of plausible band", slowdown)
	}
}

func TestIndependentLoadsHideLatency(t *testing.T) {
	// Independent loads overlap: a 1-cycle latency increase must cost far
	// less than on the serialized chain above (latency tolerance of the
	// out-of-order window — why the paper's ICR-*-PP schemes are not 2x
	// slower despite 2-cycle loads). Give the core enough dL1 ports that
	// bandwidth is not the limiter.
	mk := func(lat uint64) uint64 {
		insts := make([]isa.Inst, 3000)
		for i := range insts {
			if i%2 == 0 {
				insts[i] = isa.Inst{PC: uint64(4 * i), Op: isa.OpLoad, Addr: 0x1000000 + uint64(i*8), Size: 8}
			} else {
				insts[i] = isa.Inst{PC: uint64(4 * i), Op: isa.OpIntALU}
			}
		}
		cfg := DefaultConfig()
		cfg.MemPorts = 4
		c := New(cfg, isa.NewSliceStream(insts), perfectICache{}, &fixedDCache{loadLat: lat, storeLat: 1})
		return c.Run(1 << 20).Cycles
	}
	c1, c2 := mk(1), mk(2)
	overhead := float64(c2)/float64(c1) - 1
	if overhead > 0.25 {
		t.Errorf("independent loads should hide most latency, overhead %.2f", overhead)
	}
}

func TestMispredictionPenalty(t *testing.T) {
	// A loop whose branch direction is pseudo-random must run slower than
	// the same loop always taken: the predictors learn the biased case
	// (stable PC and target) but not the random one.
	mk := func(random bool) (cycles uint64, mispredicts uint64) {
		insts := make([]isa.Inst, 0, 4000)
		const bodyPC, brPC = 0x400000, 0x400004
		for i := 0; i < 2000; i++ {
			insts = append(insts, isa.Inst{PC: bodyPC, Op: isa.OpIntALU})
			taken := true
			if random {
				taken = (i*2654435761)%7 < 3
			}
			target := uint64(bodyPC)
			if !taken {
				target = 0
			}
			insts = append(insts, isa.Inst{PC: brPC, Op: isa.OpBranch, Taken: taken, Target: target})
		}
		c := newTestCore(insts, &fixedDCache{loadLat: 1, storeLat: 1})
		s := c.Run(1 << 20)
		if s.Branches == 0 {
			t.Fatal("no branches counted")
		}
		return s.Cycles, s.Mispredicts
	}
	randCycles, randMiss := mk(true)
	biasCycles, biasMiss := mk(false)
	if randCycles <= biasCycles {
		t.Errorf("unpredictable branches (%d cycles) must cost more than biased (%d)", randCycles, biasCycles)
	}
	if biasMiss*10 >= randMiss {
		t.Errorf("biased mispredicts (%d) should be far below random (%d)", biasMiss, randMiss)
	}
}

func TestStoreStallHoldsCommit(t *testing.T) {
	// storeLat > 1 models a full write-through buffer: it must stretch
	// execution.
	mk := func(lat uint64) uint64 {
		insts := make([]isa.Inst, 2000)
		for i := range insts {
			if i%4 == 0 {
				insts[i] = isa.Inst{PC: uint64(4 * i), Op: isa.OpStore, Addr: uint64(0x2000000 + i*64), Size: 8}
			} else {
				insts[i] = isa.Inst{PC: uint64(4 * i), Op: isa.OpIntALU}
			}
		}
		c := newTestCore(insts, &fixedDCache{loadLat: 1, storeLat: lat})
		return c.Run(1 << 20).Cycles
	}
	fast, slow := mk(1), mk(8)
	if slow <= fast {
		t.Errorf("stalling stores (%d cycles) must be slower than buffered (%d)", slow, fast)
	}
}

func TestLoadWaitsForConflictingStore(t *testing.T) {
	// store to X, then load from X: the load must not issue before the
	// store commits. We detect ordering via the data cache call counts.
	d := &orderTrackingDCache{}
	insts := []isa.Inst{
		{PC: 0, Op: isa.OpStore, Addr: 0x1000, Size: 8},
		{PC: 4, Op: isa.OpLoad, Addr: 0x1000, Size: 8},
	}
	c := newTestCore(insts, d)
	c.Run(100)
	if len(d.events) != 2 {
		t.Fatalf("expected 2 cache events, got %d", len(d.events))
	}
	if d.events[0] != "store" || d.events[1] != "load" {
		t.Errorf("events = %v, want store before load", d.events)
	}
}

type orderTrackingDCache struct{ events []string }

func (o *orderTrackingDCache) Load(_ uint64, _ uint64) uint64 {
	o.events = append(o.events, "load")
	return 1
}

func (o *orderTrackingDCache) Store(_ uint64, _ uint64) uint64 {
	o.events = append(o.events, "store")
	return 1
}

func TestDivNotPipelined(t *testing.T) {
	// Back-to-back independent divides must serialize on the single
	// divider: >= divLat apart.
	insts := make([]isa.Inst, 20)
	for i := range insts {
		insts[i] = isa.Inst{PC: uint64(4 * i), Op: isa.OpIntDiv}
	}
	c := newTestCore(insts, &fixedDCache{loadLat: 1, storeLat: 1})
	s := c.Run(1 << 20)
	minCycles := uint64(len(insts)) * DefaultConfig().IntDivLat
	if s.Cycles < minCycles/2 {
		t.Errorf("cycles = %d, want >= %d for serialized divides", s.Cycles, minCycles/2)
	}
}

func TestICacheMissesStallFetch(t *testing.T) {
	mem := cache.NewMemory(50, 32)
	il1 := cache.New(cache.Config{
		Name: "il1", Size: 512, Assoc: 1, BlockSize: 32,
		HitLatency: 1, Next: mem,
	})
	// Code footprint far beyond 512B: constant icache misses.
	insts := make([]isa.Inst, 3000)
	for i := range insts {
		insts[i] = isa.Inst{PC: 0x400000 + uint64(4*i), Op: isa.OpIntALU}
	}
	c := New(DefaultConfig(), isa.NewSliceStream(insts), il1, &fixedDCache{loadLat: 1, storeLat: 1})
	s := c.Run(1 << 20)

	c2 := newTestCore(insts, &fixedDCache{loadLat: 1, storeLat: 1})
	s2 := c2.Run(1 << 20)
	if s.Cycles <= s2.Cycles {
		t.Errorf("icache misses (%d cycles) must cost more than perfect icache (%d)", s.Cycles, s2.Cycles)
	}
	if il1.Stats().FetchMisses == 0 {
		t.Error("expected icache misses")
	}
}

func TestWorkloadDrivenSmoke(t *testing.T) {
	// Run every benchmark profile briefly through the core: no panics,
	// sane IPC, nonzero memory traffic.
	for _, p := range workload.Profiles() {
		g := workload.MustNew(p, 1)
		d := &fixedDCache{loadLat: 1, storeLat: 1}
		c := New(DefaultConfig(), g, perfectICache{}, d)
		s := c.Run(20000)
		if s.Instructions != 20000 {
			t.Errorf("%s: committed %d, want 20000", p.Name, s.Instructions)
		}
		ipc := s.IPC()
		if ipc < 0.1 || ipc > 4.0 {
			t.Errorf("%s: IPC %.2f out of range", p.Name, ipc)
		}
		if d.loads == 0 || d.stores == 0 {
			t.Errorf("%s: no memory traffic (loads=%d stores=%d)", p.Name, d.loads, d.stores)
		}
		if s.Branches == 0 {
			t.Errorf("%s: no branches", p.Name)
		}
		mr := float64(s.Mispredicts) / float64(s.Branches)
		if mr > 0.5 {
			t.Errorf("%s: mispredict rate %.2f implausible", p.Name, mr)
		}
	}
}

func TestEachCycleHook(t *testing.T) {
	cfg := DefaultConfig()
	var calls uint64
	cfg.EachCycle = func(now uint64) { calls++ }
	c := New(cfg, isa.NewSliceStream(seqInsts(100)), perfectICache{}, &fixedDCache{loadLat: 1, storeLat: 1})
	s := c.Run(1 << 20)
	if calls != s.Cycles {
		t.Errorf("hook called %d times for %d cycles", calls, s.Cycles)
	}
}

func TestStatsIPCZeroSafe(t *testing.T) {
	var s Stats
	if s.IPC() != 0 {
		t.Error("IPC on zero stats should be 0")
	}
}
