// Package runner is the parallel experiment engine: it fans independent
// sim.Simulate calls across a bounded pool of workers while keeping every
// result observably identical to the serial path.
//
// Guarantees:
//
//   - Determinism: each simulation is a pure function of its
//     (config.Machine, config.Run) inputs — every run builds its own RNGs,
//     caches, and meters — so results do not depend on goroutine
//     scheduling, and batch results are returned in submission order.
//     Output derived from a batch is byte-for-byte identical at any worker
//     count.
//   - Cancellation: Submit honours context cancellation and per-run
//     timeouts. In-flight simulations abort promptly (the core polls a
//     stop flag once per simulated cycle), queued ones never start, and
//     batch collection reports whatever completed (partial results).
//   - Memoization: results are content-addressed by a stable hash of the
//     full input (see KeyFor), so a sweep point shared between figures —
//     e.g. the BaseP baseline — simulates once per process. Cached reports
//     are copied on return; callers can never corrupt each other.
//   - Observability: progress and throughput counters are exposed via
//     internal/metrics.Progress for CLI progress lines.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// SimulateFunc executes one simulation. The default is
// sim.SimulateContext; tests substitute stubs.
type SimulateFunc func(ctx context.Context, m config.Machine, r config.Run) (*metrics.Report, error)

// Options configure a Runner.
type Options struct {
	// Workers bounds the number of concurrently executing simulations.
	// <= 0 means runtime.GOMAXPROCS(0).
	Workers int

	// CacheSize is the memoization capacity in settled reports: 0 means
	// DefaultCacheSize, negative disables memoization entirely.
	CacheSize int

	// Timeout, when > 0, bounds each individual simulation.
	Timeout time.Duration

	// Progress, when non-nil, receives submission/completion/throughput
	// counts. Nil allocates a private one (readable via Progress()).
	Progress *metrics.Progress

	// Simulate substitutes the simulation function (tests). Nil means
	// sim.SimulateContext.
	Simulate SimulateFunc
}

// Runner executes simulations on a bounded worker pool with memoization.
// It is safe for concurrent use and needs no shutdown: workers are
// goroutines that exist only while work is in flight.
type Runner struct {
	slots   chan struct{}
	memo    *memoCache
	timeout time.Duration
	prog    *metrics.Progress
	simFn   SimulateFunc
}

// New returns a Runner with the given options.
func New(o Options) *Runner {
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var memo *memoCache
	if o.CacheSize >= 0 {
		size := o.CacheSize
		if size == 0 {
			size = DefaultCacheSize
		}
		memo = newMemoCache(size)
	}
	prog := o.Progress
	if prog == nil {
		prog = metrics.NewProgress()
	}
	simFn := o.Simulate
	if simFn == nil {
		simFn = sim.SimulateContext
	}
	return &Runner{
		slots:   make(chan struct{}, workers),
		memo:    memo,
		timeout: o.Timeout,
		prog:    prog,
		simFn:   simFn,
	}
}

// Workers returns the worker-pool size.
func (r *Runner) Workers() int { return cap(r.slots) }

// Progress returns the runner's counters.
func (r *Runner) Progress() *metrics.Progress { return r.prog }

// Pending is a handle to a submitted simulation.
type Pending struct {
	done chan struct{}
	rep  *metrics.Report
	err  error
}

// Wait blocks until the simulation settles and returns its result. It is
// safe to call from multiple goroutines and more than once.
func (p *Pending) Wait() (*metrics.Report, error) {
	<-p.done
	return p.rep, p.err
}

// Submit enqueues one simulation and returns immediately. The run starts
// as soon as a worker slot frees up; a context cancelled before then
// settles the Pending without the simulation ever starting.
func (r *Runner) Submit(ctx context.Context, m config.Machine, run config.Run) *Pending {
	if ctx == nil {
		ctx = context.Background()
	}
	p := &Pending{done: make(chan struct{})}
	r.prog.AddSubmitted(1)
	go func() {
		defer close(p.done)
		// An explicit pre-check: when the context is already cancelled the
		// select below could still win the slot branch by chance, and a
		// cancelled run must never start.
		if err := ctx.Err(); err != nil {
			p.err = fmt.Errorf("runner: %s: %w", run.Name(), err)
			r.prog.AddFailed(1)
			return
		}
		select {
		case r.slots <- struct{}{}:
			defer func() { <-r.slots }()
		case <-ctx.Done():
			p.err = fmt.Errorf("runner: %s: %w", run.Name(), ctx.Err())
			r.prog.AddFailed(1)
			return
		}
		rep, err := r.simulate(ctx, m, run)
		if err != nil {
			p.err = fmt.Errorf("runner: %s: %w", run.Name(), err)
			r.prog.AddFailed(1)
			return
		}
		p.rep = rep
	}()
	return p
}

// Run submits one simulation and waits for it.
func (r *Runner) Run(ctx context.Context, m config.Machine, run config.Run) (*metrics.Report, error) {
	return r.Submit(ctx, m, run).Wait()
}

// RunBatch submits every run and waits for all of them. Results are in
// submission order regardless of completion order. On failure the error
// of the lowest-index failing run is returned (a deterministic choice)
// and the result slice still carries every run that did complete —
// partial results under cancellation. RunBatch returns only after every
// submitted run has settled, so no work leaks past it.
func (r *Runner) RunBatch(ctx context.Context, m config.Machine, runs []config.Run) ([]*metrics.Report, error) {
	pendings := make([]*Pending, len(runs))
	for i, run := range runs {
		pendings[i] = r.Submit(ctx, m, run)
	}
	return Collect(pendings)
}

// Collect waits for every pending and returns results in order, with the
// lowest-index error (if any). Entries that failed are nil.
func Collect(pendings []*Pending) ([]*metrics.Report, error) {
	reports := make([]*metrics.Report, len(pendings))
	var firstErr error
	for i, p := range pendings {
		rep, err := p.Wait()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		reports[i] = rep
	}
	return reports, firstErr
}

// simulate executes one run through the memo cache (when eligible).
func (r *Runner) simulate(ctx context.Context, m config.Machine, run config.Run) (*metrics.Report, error) {
	if r.memo == nil {
		return r.exec(ctx, m, run)
	}
	key, ok := KeyFor(m, run)
	if !ok {
		// Opaque inputs (function hooks, unknown hint policies) cannot be
		// content-addressed; run uncached.
		return r.exec(ctx, m, run)
	}
	for {
		e, owner := r.memo.claim(key)
		if owner {
			rep, err := r.exec(ctx, m, run)
			r.memo.settle(key, e, rep, err)
			if err != nil {
				return nil, err
			}
			// The cache keeps its own copy; hand the caller another so
			// later hits never observe caller mutations.
			return copyReport(rep), nil
		}
		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if e.err == nil {
			r.prog.AddMemoHit(1)
			return copyReport(e.rep), nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// The owner failed — possibly its own caller's cancellation, which
		// must not poison this caller. The entry was dropped at settle;
		// loop to claim ownership and retry.
	}
}

// exec runs the simulation function with the per-run timeout applied.
func (r *Runner) exec(ctx context.Context, m config.Machine, run config.Run) (*metrics.Report, error) {
	if r.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.timeout)
		defer cancel()
	}
	r.prog.AddStarted(1)
	rep, err := r.simFn(ctx, m, run)
	if err != nil {
		return nil, err
	}
	r.prog.AddCompleted(rep.Instructions)
	return rep, nil
}
