// Package runner is the parallel experiment engine: it fans independent
// sim.Simulate calls across a bounded pool of workers while keeping every
// result observably identical to the serial path.
//
// Guarantees:
//
//   - Determinism: each simulation is a pure function of its
//     (config.Machine, config.Run) inputs — every run builds its own RNGs,
//     caches, and meters — so results do not depend on goroutine
//     scheduling, and batch results are returned in submission order.
//     Output derived from a batch is byte-for-byte identical at any worker
//     count.
//   - Cancellation: Submit honours context cancellation and per-run
//     timeouts. In-flight simulations abort promptly (the core polls a
//     stop flag once per simulated cycle), queued ones never start, and
//     batch collection reports whatever completed (partial results).
//   - Caching: results are content-addressed by a stable hash of the
//     full input (see KeyFor) and served through a pluggable Cache stack —
//     by default an in-memory LRU, optionally layered over a persistent
//     disk store (internal/store) so repeated sweep points survive process
//     restarts. A singleflight layer coalesces concurrent identical
//     submissions either way. Cached reports are copied on return; callers
//     can never corrupt each other.
//   - Draining: Drain moves the runner into shutdown mode — runs already
//     holding a worker slot finish (and persist), runs still queued settle
//     immediately with ErrDraining. The serving layer uses this for
//     graceful SIGTERM handling.
//   - Observability: progress, throughput, and per-tier cache counters are
//     exposed via internal/metrics.Progress for CLI progress lines and the
//     daemon's expvar page.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/store"
)

// ErrDraining is the settlement error for runs that were still queued
// (waiting for a worker slot) when Drain was called, and for runs
// submitted after it.
var ErrDraining = errors.New("runner draining: queued run rejected")

// SimulateFunc executes one simulation. The default is
// sim.SimulateContext; tests substitute stubs.
type SimulateFunc func(ctx context.Context, m config.Machine, r config.Run) (*metrics.Report, error)

// Executor is the seam between the runner and whatever actually executes a
// simulation that missed every cache tier. The tier result names where the
// work happened (SourceSimulated for in-process execution, SourceRemote for
// a cluster worker) and becomes the Pending's Source. Implementations must
// be safe for concurrent use; the runner's worker pool bounds how many
// Execute calls are in flight at once.
type Executor interface {
	Execute(ctx context.Context, m config.Machine, r config.Run) (*metrics.Report, string, error)
}

// simExecutor adapts a SimulateFunc to the Executor seam: plain in-process
// execution.
type simExecutor struct{ fn SimulateFunc }

func (e simExecutor) Execute(ctx context.Context, m config.Machine, r config.Run) (*metrics.Report, string, error) {
	rep, err := e.fn(ctx, m, r)
	return rep, SourceSimulated, err
}

// Options configure a Runner.
type Options struct {
	// Workers bounds the number of concurrently executing simulations.
	// <= 0 means runtime.GOMAXPROCS(0).
	Workers int

	// CacheSize is the in-memory cache capacity in settled reports: 0
	// means DefaultCacheSize, negative disables caching (and singleflight
	// coalescing) entirely.
	CacheSize int

	// Cache overrides the cache stack built from CacheSize. Use
	// NewTiered(NewMemoryCache(...), NewStoreCache(...)) to layer the
	// in-memory cache over a persistent disk store. When Cache is non-nil
	// CacheSize is ignored (except that a negative CacheSize still
	// disables caching outright).
	Cache Cache

	// Timeout, when > 0, bounds each individual simulation.
	Timeout time.Duration

	// Progress, when non-nil, receives submission/completion/throughput
	// counts. Nil allocates a private one (readable via Progress()).
	Progress *metrics.Progress

	// Simulate substitutes the simulation function (tests). Nil means
	// sim.SimulateContext. Ignored when Executor is set.
	Simulate SimulateFunc

	// Executor substitutes the whole execution seam — cache misses are
	// handed to it instead of the in-process simulator. The cluster
	// coordinator plugs in here to dispatch runs to remote workers. Nil
	// means in-process execution via Simulate.
	Executor Executor

	// Claimer, when non-nil, extends the in-process singleflight across a
	// fleet: before executing a cache miss, the flight owner asks the
	// Claimer (the sharded store) who should simulate the key. A cold
	// popular key then triggers exactly one simulation fleet-wide, not one
	// per front end. Nil keeps coalescing process-local.
	Claimer store.Claimer
}

// Runner executes simulations on a bounded worker pool with memoization.
// It is safe for concurrent use and needs no shutdown: workers are
// goroutines that exist only while work is in flight.
type Runner struct {
	slots     chan struct{}
	cache     Cache
	flight    *flightGroup
	claimer   store.Claimer
	timeout   time.Duration
	prog      *metrics.Progress
	executor  Executor
	drain     chan struct{}
	drainOnce sync.Once
}

// New returns a Runner with the given options.
func New(o Options) *Runner {
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	prog := o.Progress
	if prog == nil {
		prog = metrics.NewProgress()
	}
	var cache Cache
	if o.CacheSize >= 0 {
		if o.Cache != nil {
			cache = o.Cache
		} else {
			cache = NewMemoryCache(o.CacheSize, prog)
		}
	}
	var flight *flightGroup
	if cache != nil {
		flight = newFlightGroup()
	}
	executor := o.Executor
	if executor == nil {
		simFn := o.Simulate
		if simFn == nil {
			simFn = sim.SimulateContext
		}
		executor = simExecutor{fn: simFn}
	}
	var claimer store.Claimer
	if cache != nil {
		claimer = o.Claimer
	}
	return &Runner{
		slots:    make(chan struct{}, workers),
		cache:    cache,
		flight:   flight,
		claimer:  claimer,
		timeout:  o.Timeout,
		prog:     prog,
		executor: executor,
		drain:    make(chan struct{}),
	}
}

// Drain moves the runner into shutdown mode, once: submissions that have
// not yet acquired a worker slot — queued now or submitted later — settle
// immediately with ErrDraining, while runs already executing are
// unaffected and finish normally (persisting their results through the
// cache stack). Waiters coalesced onto an executing run still receive its
// result.
func (r *Runner) Drain() {
	r.drainOnce.Do(func() { close(r.drain) })
}

// Draining reports whether Drain has been called.
func (r *Runner) Draining() bool {
	select {
	case <-r.drain:
		return true
	default:
		return false
	}
}

// Workers returns the worker-pool size.
func (r *Runner) Workers() int { return cap(r.slots) }

// Progress returns the runner's counters.
func (r *Runner) Progress() *metrics.Progress { return r.prog }

// Pending is a handle to a submitted simulation.
type Pending struct {
	done chan struct{}
	rep  *metrics.Report
	err  error
	src  string
}

// Wait blocks until the simulation settles and returns its result. It is
// safe to call from multiple goroutines and more than once.
func (p *Pending) Wait() (*metrics.Report, error) {
	<-p.done
	return p.rep, p.err
}

// Source reports where a successful result came from: SourceSimulated,
// SourceRemote, SourceMemory, or SourceDisk. It blocks until the
// simulation settles and returns "" for failed runs.
func (p *Pending) Source() string {
	<-p.done
	return p.src
}

// Submit enqueues one simulation and returns immediately. The run starts
// as soon as a worker slot frees up; a context cancelled before then
// settles the Pending without the simulation ever starting.
func (r *Runner) Submit(ctx context.Context, m config.Machine, run config.Run) *Pending {
	if ctx == nil {
		ctx = context.Background() //icrvet:ignore ctxflow nil-ctx compatibility seam: Submit's documented default for non-cancellable callers
	}
	p := &Pending{done: make(chan struct{})}
	r.prog.AddSubmitted(1)
	go func() {
		defer close(p.done)
		// Explicit pre-checks: when the context is already cancelled (or
		// the runner already draining) the select below could still win
		// the slot branch by chance, and such a run must never start.
		if err := ctx.Err(); err != nil {
			p.err = fmt.Errorf("runner: %s: %w", run.Name(), err)
			r.prog.AddFailed(1)
			return
		}
		if r.Draining() {
			p.err = fmt.Errorf("runner: %s: %w", run.Name(), ErrDraining)
			r.prog.AddFailed(1)
			return
		}
		select {
		case r.slots <- struct{}{}:
			defer func() { <-r.slots }()
		case <-ctx.Done():
			p.err = fmt.Errorf("runner: %s: %w", run.Name(), ctx.Err())
			r.prog.AddFailed(1)
			return
		case <-r.drain:
			p.err = fmt.Errorf("runner: %s: %w", run.Name(), ErrDraining)
			r.prog.AddFailed(1)
			return
		}
		rep, src, err := r.simulate(ctx, m, run)
		if err != nil {
			p.err = fmt.Errorf("runner: %s: %w", run.Name(), err)
			r.prog.AddFailed(1)
			return
		}
		p.rep, p.src = rep, src
	}()
	return p
}

// Run submits one simulation and waits for it.
func (r *Runner) Run(ctx context.Context, m config.Machine, run config.Run) (*metrics.Report, error) {
	return r.Submit(ctx, m, run).Wait()
}

// RunBatch submits every run and waits for all of them. Results are in
// submission order regardless of completion order. On failure the error
// of the lowest-index failing run is returned (a deterministic choice)
// and the result slice still carries every run that did complete —
// partial results under cancellation. RunBatch returns only after every
// submitted run has settled, so no work leaks past it.
func (r *Runner) RunBatch(ctx context.Context, m config.Machine, runs []config.Run) ([]*metrics.Report, error) {
	pendings := make([]*Pending, len(runs))
	for i, run := range runs {
		pendings[i] = r.Submit(ctx, m, run)
	}
	return Collect(pendings)
}

// Collect waits for every pending and returns results in order, with the
// lowest-index error (if any). Entries that failed are nil.
func Collect(pendings []*Pending) ([]*metrics.Report, error) {
	reports := make([]*metrics.Report, len(pendings))
	var firstErr error
	for i, p := range pendings {
		rep, err := p.Wait()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		reports[i] = rep
	}
	return reports, firstErr
}

// simulate executes one run through the cache stack (when eligible),
// reporting where the result came from.
func (r *Runner) simulate(ctx context.Context, m config.Machine, run config.Run) (*metrics.Report, string, error) {
	if r.cache == nil {
		return r.exec(ctx, m, run)
	}
	key, ok := KeyFor(m, run)
	if !ok {
		// Opaque inputs (function hooks, unknown hint policies) cannot be
		// content-addressed; run uncached.
		return r.exec(ctx, m, run)
	}
	for {
		e, owner := r.flight.claim(key)
		if owner {
			if rep, tier, err := r.cacheGet(ctx, key); err == nil {
				r.flight.settle(key, e, rep, nil)
				// The cache keeps its own copy; hand the caller another
				// so later hits never observe caller mutations.
				return copyReport(rep), tier, nil
			} else if !errors.Is(err, store.ErrMiss) {
				// A sick layer (disk I/O trouble, dead shard) degrades to
				// execution — visible in the counter, fatal to nothing.
				r.prog.AddCacheError(1)
			}
			r.prog.AddCacheMiss(1)

			// Fleet-wide anti-stampede: ask the sharded store who should
			// simulate this key. Only the flight owner gets here, so one
			// process issues at most one claim per key.
			var release func()
			if r.claimer != nil {
				owned, rel, cerr := r.claimer.Claim(ctx, key.String())
				switch {
				case cerr != nil:
					// Claim errors only surface for caller cancellation
					// (shard trouble degrades to owned=true inside the
					// claimer).
					r.flight.settle(key, e, nil, cerr)
					return nil, "", cerr
				case !owned:
					// Another fleet member simulated it; its result should
					// now be one Get away.
					if rep, tier, err := r.cacheGet(ctx, key); err == nil {
						r.flight.settle(key, e, rep, nil)
						return copyReport(rep), tier, nil
					}
					// Not visible (replica lag, shard loss): simulate
					// locally — duplicate work, never wrong results.
				default:
					release = rel
				}
			}

			rep, tier, err := r.exec(ctx, m, run)
			if err == nil {
				if perr := r.cache.Put(ctx, key, rep); perr != nil {
					r.prog.AddPutError(1)
					if release != nil {
						// The Put that would have cleared the fleet claim
						// never landed; free the waiters explicitly.
						release()
					}
				}
			} else if release != nil {
				release()
			}
			r.flight.settle(key, e, rep, err)
			if err != nil {
				return nil, "", err
			}
			return copyReport(rep), tier, nil
		}
		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, "", ctx.Err()
		}
		if e.err == nil {
			// Coalesced onto the owner's in-memory result.
			r.prog.AddMemoHit(1)
			return copyReport(e.rep), SourceMemory, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, "", err
		}
		// The owner failed — possibly its own caller's cancellation, which
		// must not poison this caller. The entry was dropped at settle;
		// loop to claim ownership and retry.
	}
}

// cacheGet reads the cache stack and accounts the hit to its tier.
func (r *Runner) cacheGet(ctx context.Context, key Key) (*metrics.Report, string, error) {
	rep, tier, err := r.cache.Get(ctx, key)
	if err != nil {
		return nil, "", err
	}
	switch tier {
	case SourceDisk:
		r.prog.AddDiskHit(1)
	case SourceShard:
		r.prog.AddShardHit(1)
	default:
		r.prog.AddMemoHit(1)
	}
	return rep, tier, nil
}

// exec hands one run to the executor with the per-run timeout applied.
func (r *Runner) exec(ctx context.Context, m config.Machine, run config.Run) (*metrics.Report, string, error) {
	if r.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.timeout)
		defer cancel()
	}
	r.prog.AddStarted(1)
	rep, tier, err := r.executor.Execute(ctx, m, run)
	if err != nil {
		return nil, "", err
	}
	if tier == SourceRemote {
		r.prog.AddRemote(1)
	}
	r.prog.AddCompleted(rep.Instructions)
	return rep, tier, nil
}
