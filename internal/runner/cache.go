package runner

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// DefaultCacheSize is the default number of settled reports the in-memory
// cache retains. Reports are small flat structs (~400 bytes), so even the
// full §5 evaluation fits comfortably.
const DefaultCacheSize = 4096

// Cache tiers, as reported by Cache.Get and Pending.Source.
const (
	// SourceMemory marks a run served from the in-memory cache (or
	// coalesced onto an identical in-flight run).
	SourceMemory = "memory"
	// SourceDisk marks a run served from the persistent disk store.
	SourceDisk = "disk"
	// SourceSimulated marks a run that actually executed in this process.
	SourceSimulated = "simulated"
	// SourceRemote marks a run executed by a remote worker through a
	// cluster executor (internal/cluster).
	SourceRemote = "remote"
)

// Cache is a pluggable content-addressed report store consulted by the
// runner before executing a simulation. Implementations must be safe for
// concurrent use and must never mutate a stored report after Put (the
// runner copies on return, so callers cannot either).
//
// Get's tier names the layer that satisfied the lookup (SourceMemory,
// SourceDisk) so the runner can account hits per layer.
type Cache interface {
	Get(key Key) (rep *metrics.Report, tier string, ok bool)
	Put(key Key, rep *metrics.Report)
}

// MemoryCache is the in-memory Cache: a bounded LRU over settled reports.
// It is what the pre-disk-store memo map became; a Runner builds one by
// default (Options.CacheSize).
type MemoryCache struct {
	mu      sync.Mutex
	cap     int
	entries map[Key]*list.Element
	lru     *list.List // front = most recently used; values are *memEntry
	prog    *metrics.Progress
}

type memEntry struct {
	key Key
	rep *metrics.Report
}

// NewMemoryCache returns an LRU cache holding at most capacity reports
// (<= 0 means DefaultCacheSize). Evictions are reported to prog when it
// is non-nil.
func NewMemoryCache(capacity int, prog *metrics.Progress) *MemoryCache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &MemoryCache{
		cap:     capacity,
		entries: make(map[Key]*list.Element),
		lru:     list.New(),
		prog:    prog,
	}
}

// Get returns the cached report and refreshes its recency.
func (c *MemoryCache) Get(key Key) (*metrics.Report, string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	elem, ok := c.entries[key]
	if !ok {
		return nil, "", false
	}
	c.lru.MoveToFront(elem)
	return elem.Value.(*memEntry).rep, SourceMemory, true
}

// Put inserts (or refreshes) a report, evicting the least-recently-used
// entries beyond capacity.
func (c *MemoryCache) Put(key Key, rep *metrics.Report) {
	var evicted uint64
	c.mu.Lock()
	if elem, ok := c.entries[key]; ok {
		elem.Value.(*memEntry).rep = rep
		c.lru.MoveToFront(elem)
	} else {
		c.entries[key] = c.lru.PushFront(&memEntry{key: key, rep: rep})
		for c.lru.Len() > c.cap {
			back := c.lru.Back()
			delete(c.entries, back.Value.(*memEntry).key)
			c.lru.Remove(back)
			evicted++
		}
	}
	c.mu.Unlock()
	if evicted > 0 && c.prog != nil {
		c.prog.AddEviction(evicted)
	}
}

// Len returns the number of resident reports.
func (c *MemoryCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// ReportStore is the slice of internal/store.Store the runner needs: a
// string-keyed persistent report store. It is an interface here so the
// runner does not depend on the disk package (and tests can stub it).
type ReportStore interface {
	Get(key string) (*metrics.Report, bool)
	Put(key string, rep *metrics.Report) error
}

// StoreCache adapts a ReportStore (the disk layer) to the Cache
// interface, translating Keys to their hex form. Put failures do not fail
// the run — the report is still returned to the caller — but they are
// counted (PutErrors) so the daemon can expose them.
type StoreCache struct {
	st        ReportStore
	putErrors atomic.Uint64
}

// NewStoreCache wraps a persistent store as a runner Cache layer.
func NewStoreCache(st ReportStore) *StoreCache {
	return &StoreCache{st: st}
}

// Get consults the disk store.
func (c *StoreCache) Get(key Key) (*metrics.Report, string, bool) {
	rep, ok := c.st.Get(key.String())
	if !ok {
		return nil, "", false
	}
	return rep, SourceDisk, true
}

// Put persists the report; failures are counted, not fatal.
func (c *StoreCache) Put(key Key, rep *metrics.Report) {
	if err := c.st.Put(key.String(), rep); err != nil {
		c.putErrors.Add(1)
	}
}

// PutErrors returns how many persists have failed since construction.
func (c *StoreCache) PutErrors() uint64 { return c.putErrors.Load() }

// Tiered layers caches fastest-first (memory, then disk). A hit in a
// lower layer is promoted into every layer above it, so a disk hit after
// a restart warms the memory cache. Puts write through to all layers.
type Tiered struct {
	layers []Cache
}

// NewTiered composes cache layers in lookup order; nil layers are
// skipped.
func NewTiered(layers ...Cache) *Tiered {
	t := &Tiered{}
	for _, l := range layers {
		if l != nil {
			t.layers = append(t.layers, l)
		}
	}
	return t
}

// Get consults each layer in order, promoting hits upward.
func (t *Tiered) Get(key Key) (*metrics.Report, string, bool) {
	for i, l := range t.layers {
		rep, tier, ok := l.Get(key)
		if !ok {
			continue
		}
		for j := 0; j < i; j++ {
			t.layers[j].Put(key, rep)
		}
		return rep, tier, true
	}
	return nil, "", false
}

// Put writes through to every layer.
func (t *Tiered) Put(key Key, rep *metrics.Report) {
	for _, l := range t.layers {
		l.Put(key, rep)
	}
}

// copyReport returns an independent copy of a cached report, so no caller
// can mutate the cached value another caller sees. metrics.Report is a
// flat value struct except for the optional Sampling block, which is
// itself flat, so one struct copy per level is a deep copy; the
// compile-time-adjacent test in memo_test.go guards that assumption
// against future reference-typed fields.
func copyReport(r *metrics.Report) *metrics.Report {
	if r == nil {
		return nil
	}
	cp := *r
	if r.Sampling != nil {
		s := *r.Sampling
		cp.Sampling = &s
	}
	return &cp
}
