package runner

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/store"
)

// DefaultCacheSize is the default number of settled reports the in-memory
// cache retains. Reports are small flat structs (~400 bytes), so even the
// full §5 evaluation fits comfortably.
const DefaultCacheSize = 4096

// Cache tiers, as reported by Cache.Get and Pending.Source.
const (
	// SourceMemory marks a run served from the in-memory cache (or
	// coalesced onto an identical in-flight run).
	SourceMemory = "memory"
	// SourceDisk marks a run served from the persistent disk store.
	SourceDisk = "disk"
	// SourceShard marks a run served from a remote store shard (a
	// store.Remote or store.Sharded backend).
	SourceShard = "shard"
	// SourceSimulated marks a run that actually executed in this process.
	SourceSimulated = "simulated"
	// SourceRemote marks a run executed by a remote worker through a
	// cluster executor (internal/cluster).
	SourceRemote = "remote"
)

// Cache is a pluggable content-addressed report store consulted by the
// runner before executing a simulation. Implementations must be safe for
// concurrent use and must never mutate a stored report after Put (the
// runner copies on return, so callers cannot either).
//
// Get's tier names the layer that satisfied the lookup (SourceMemory,
// SourceDisk, SourceShard) so the runner can account hits per layer. A
// clean miss is store.ErrMiss; any other error is real trouble (sick
// disk, unreachable shard) — the runner counts it and degrades to
// execution rather than failing the run.
type Cache interface {
	Get(ctx context.Context, key Key) (rep *metrics.Report, tier string, err error)
	Put(ctx context.Context, key Key, rep *metrics.Report) error
}

// MemoryCache is the in-memory Cache: a bounded LRU over settled reports.
// It is what the pre-disk-store memo map became; a Runner builds one by
// default (Options.CacheSize). It never returns an error other than
// store.ErrMiss.
type MemoryCache struct {
	mu      sync.Mutex
	cap     int
	entries map[Key]*list.Element
	lru     *list.List // front = most recently used; values are *memEntry
	prog    *metrics.Progress
}

type memEntry struct {
	key Key
	rep *metrics.Report
}

// NewMemoryCache returns an LRU cache holding at most capacity reports
// (<= 0 means DefaultCacheSize). Evictions are reported to prog when it
// is non-nil.
func NewMemoryCache(capacity int, prog *metrics.Progress) *MemoryCache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &MemoryCache{
		cap:     capacity,
		entries: make(map[Key]*list.Element),
		lru:     list.New(),
		prog:    prog,
	}
}

// Get returns the cached report and refreshes its recency.
func (c *MemoryCache) Get(ctx context.Context, key Key) (*metrics.Report, string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	elem, ok := c.entries[key]
	if !ok {
		return nil, "", store.ErrMiss
	}
	c.lru.MoveToFront(elem)
	return elem.Value.(*memEntry).rep, SourceMemory, nil
}

// Put inserts (or refreshes) a report, evicting the least-recently-used
// entries beyond capacity. It never fails.
func (c *MemoryCache) Put(ctx context.Context, key Key, rep *metrics.Report) error {
	var evicted uint64
	c.mu.Lock()
	if elem, ok := c.entries[key]; ok {
		elem.Value.(*memEntry).rep = rep
		c.lru.MoveToFront(elem)
	} else {
		c.entries[key] = c.lru.PushFront(&memEntry{key: key, rep: rep})
		for c.lru.Len() > c.cap {
			back := c.lru.Back()
			delete(c.entries, back.Value.(*memEntry).key)
			c.lru.Remove(back)
			evicted++
		}
	}
	c.mu.Unlock()
	if evicted > 0 && c.prog != nil {
		c.prog.AddEviction(evicted)
	}
	return nil
}

// Len returns the number of resident reports.
func (c *MemoryCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// StoreCache adapts a store.Backend (the disk store, a remote shard, or
// the sharded fleet view) to the Cache interface, translating Keys to
// their hex form. The tier names the layer in Pending.Source and the
// per-tier hit counters: SourceDisk for a local store, SourceShard for a
// remote one.
type StoreCache struct {
	st        store.Backend
	tier      string
	putErrors atomic.Uint64
}

// NewStoreCache wraps a persistent backend as a runner Cache layer.
// An empty tier defaults to SourceDisk.
func NewStoreCache(st store.Backend, tier string) *StoreCache {
	if tier == "" {
		tier = SourceDisk
	}
	return &StoreCache{st: st, tier: tier}
}

// Get consults the backend. Misses and errors pass through untouched; the
// tier tags hits with this layer's identity.
func (c *StoreCache) Get(ctx context.Context, key Key) (*metrics.Report, string, error) {
	rep, err := c.st.Get(ctx, key.String())
	if err != nil {
		return nil, "", err
	}
	return rep, c.tier, nil
}

// Put persists the report, counting failures (the runner also counts them
// and keeps the run alive — the report is already in hand).
func (c *StoreCache) Put(ctx context.Context, key Key, rep *metrics.Report) error {
	if err := c.st.Put(ctx, key.String(), rep); err != nil {
		c.putErrors.Add(1)
		return err
	}
	return nil
}

// PutErrors returns how many persists have failed since construction.
func (c *StoreCache) PutErrors() uint64 { return c.putErrors.Load() }

// Tiered layers caches fastest-first (memory, then disk, then shards). A
// hit in a lower layer is promoted into every layer above it, so a disk
// hit after a restart warms the memory cache. Puts write through to all
// layers.
type Tiered struct {
	layers []Cache
}

// NewTiered composes cache layers in lookup order; nil layers are
// skipped.
func NewTiered(layers ...Cache) *Tiered {
	t := &Tiered{}
	for _, l := range layers {
		if l != nil {
			t.layers = append(t.layers, l)
		}
	}
	return t
}

// Get consults each layer in order, promoting hits upward. A layer
// returning a real error (not a miss) does not stop the search — a lower
// layer may still hold the report; the first such error is returned only
// when every layer comes up empty, so the caller can distinguish "miss"
// from "miss, and a layer is sick".
func (t *Tiered) Get(ctx context.Context, key Key) (*metrics.Report, string, error) {
	var firstErr error
	for i, l := range t.layers {
		rep, tier, err := l.Get(ctx, key)
		if err != nil {
			if !errors.Is(err, store.ErrMiss) && firstErr == nil {
				firstErr = err
			}
			continue
		}
		for j := 0; j < i; j++ {
			t.layers[j].Put(ctx, key, rep) //icrvet:ignore droppederr best-effort upward promotion; the hit is already in hand
		}
		return rep, tier, nil
	}
	if firstErr != nil {
		return nil, "", firstErr
	}
	return nil, "", store.ErrMiss
}

// Put writes through to every layer. The first failure is returned, but
// every layer still sees the write — a sick disk must not stop the shard
// write-through or vice versa.
func (t *Tiered) Put(ctx context.Context, key Key, rep *metrics.Report) error {
	var firstErr error
	for _, l := range t.layers {
		if err := l.Put(ctx, key, rep); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// copyReport returns an independent copy of a cached report, so no caller
// can mutate the cached value another caller sees. metrics.Report is a
// flat value struct except for the optional Sampling, Adaptive, and
// TwoTier blocks (and Adaptive's Trajectory slice), which are deep-copied
// explicitly; the compile-time-adjacent test in memo_test.go guards that
// assumption against future reference-typed fields.
func copyReport(r *metrics.Report) *metrics.Report {
	if r == nil {
		return nil
	}
	cp := *r
	if r.Sampling != nil {
		s := *r.Sampling
		cp.Sampling = &s
	}
	if r.Adaptive != nil {
		a := *r.Adaptive
		if a.Trajectory != nil {
			a.Trajectory = append([]metrics.AdaptiveMove(nil), a.Trajectory...)
		}
		cp.Adaptive = &a
	}
	if r.TwoTier != nil {
		tt := *r.TwoTier
		cp.TwoTier = &tt
	}
	return &cp
}
