package runner

import (
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
)

func baseInputs() (config.Machine, config.Run) {
	m := config.Default()
	r := config.NewRun("vpr", core.BaseP())
	return m, r
}

func mustKey(t *testing.T, m config.Machine, r config.Run) Key {
	t.Helper()
	k, ok := KeyFor(m, r)
	if !ok {
		t.Fatal("KeyFor reported inputs non-memoizable")
	}
	return k
}

func TestKeyForDeterministic(t *testing.T) {
	m, r := baseInputs()
	r.Repl.Distances = []int{32, 16}
	r.Hints = core.NewRangePolicy(core.AddrRange{Start: 0, End: 4096})

	k1 := mustKey(t, m, r)

	// Rebuild the run from scratch (fresh slice/policy allocations): the key
	// must depend on values, never on pointer identity.
	m2, r2 := baseInputs()
	r2.Repl.Distances = []int{32, 16}
	r2.Hints = core.NewRangePolicy(core.AddrRange{Start: 0, End: 4096})
	if k2 := mustKey(t, m2, r2); k1 != k2 {
		t.Errorf("identical inputs hashed differently:\n%s\n%s", k1, k2)
	}
}

// TestKeyForGolden pins the hash of the default machine × a plain BaseP run.
// It fails when the serialization changes, which is exactly when it should:
// the key is a content address and must be stable across processes, so any
// format change has to be deliberate (update the constant when it is).
func TestKeyForGolden(t *testing.T) {
	m, r := baseInputs()
	const want = "b7cf86bb16f7149d2f6c24ccd9bb8aea8c3f696e37a365f0c81ef8df70080cc0"
	if got := mustKey(t, m, r).String(); got != want {
		t.Errorf("golden key changed:\n got %s\nwant %s\n(update the constant only for a deliberate serialization change)", got, want)
	}
}

// TestKeyForFieldSensitivity walks every hashable field of config.Machine
// and config.Run by reflection, bumps each one in isolation, and asserts
// the key changes — and that no two single-field mutations collide. Because
// the walk enumerates struct fields dynamically, adding a field to any of
// the hashed structs without teaching KeyFor about it fails this test.
func TestKeyForFieldSensitivity(t *testing.T) {
	baseM, baseR := baseInputs()
	baseKey := mustKey(t, baseM, baseR)
	seen := map[Key]string{baseKey: "base"}

	check := func(name string, k Key) {
		t.Helper()
		if prev, dup := seen[k]; dup {
			t.Errorf("mutating %s produced the same key as %s", name, prev)
			return
		}
		seen[k] = name
	}

	for _, l := range structLeaves(reflect.TypeOf(baseM), "Machine", nil) {
		m, r := baseInputs()
		bumpField(reflect.ValueOf(&m).Elem().FieldByIndex(l.path))
		check(l.name, mustKey(t, m, r))
	}
	for _, l := range structLeaves(reflect.TypeOf(baseR), "Run", nil) {
		m, r := baseInputs()
		bumpField(reflect.ValueOf(&r).Elem().FieldByIndex(l.path))
		check(l.name, mustKey(t, m, r))
	}
}

type fieldLeaf struct {
	name string
	path []int
}

// structLeaves enumerates the primitive (hashable) fields of a struct type,
// recursing into nested structs. Func and interface fields are skipped —
// they are covered by the non-memoizable and hint-policy tests below.
func structLeaves(t reflect.Type, prefix string, base []int) []fieldLeaf {
	var out []fieldLeaf
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		path := append(append([]int(nil), base...), i)
		name := prefix + "." + f.Name
		switch f.Type.Kind() {
		case reflect.Struct:
			out = append(out, structLeaves(f.Type, name, path)...)
		case reflect.Func, reflect.Interface:
		default:
			out = append(out, fieldLeaf{name: name, path: path})
		}
	}
	return out
}

// bumpField changes a field's value minimally: +1 for numbers, flip for
// bools, append for strings and slices.
func bumpField(v reflect.Value) {
	switch v.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 1)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(v.Float() + 0.5)
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.String:
		v.SetString(v.String() + "x")
	case reflect.Slice:
		v.Set(reflect.Append(v, reflect.Zero(v.Type().Elem())))
	default:
		panic("bumpField: unhandled kind " + v.Kind().String())
	}
}

func TestKeyForDistancesOrderAndLength(t *testing.T) {
	m, r := baseInputs()
	r.Repl.Distances = []int{32, 16}
	k1 := mustKey(t, m, r)
	r.Repl.Distances = []int{16, 32}
	k2 := mustKey(t, m, r)
	if k1 == k2 {
		t.Error("distance order must affect the key")
	}
	// A length-prefix guard: [32] followed by other fields must not collide
	// with [32,16] via concatenation ambiguity.
	r.Repl.Distances = []int{32}
	if k3 := mustKey(t, m, r); k3 == k1 || k3 == k2 {
		t.Error("distance length must affect the key")
	}
}

func TestKeyForHintPolicies(t *testing.T) {
	m, r := baseInputs()
	kNil := mustKey(t, m, r)

	r.Hints = core.ReplicateAll{}
	kAll := mustKey(t, m, r)
	if kAll == kNil {
		t.Error("ReplicateAll must hash differently from nil hints")
	}

	r.Hints = core.NewRangePolicy(core.AddrRange{Start: 0, End: 64, Hint: core.Hint{Replicate: false}})
	kRange := mustKey(t, m, r)
	if kRange == kNil || kRange == kAll {
		t.Error("RangePolicy must hash differently from nil/ReplicateAll")
	}

	r.Hints = core.NewRangePolicy(core.AddrRange{Start: 0, End: 128, Hint: core.Hint{Replicate: false}})
	if k := mustKey(t, m, r); k == kRange {
		t.Error("range bounds must affect the key")
	}

	// Same policy content in a fresh allocation: same key.
	r.Hints = core.NewRangePolicy(core.AddrRange{Start: 0, End: 64, Hint: core.Hint{Replicate: false}})
	if k := mustKey(t, m, r); k != kRange {
		t.Error("equal RangePolicy contents must produce equal keys")
	}
}

// opaqueHints is a HintPolicy implementation KeyFor has never heard of; its
// behaviour cannot be fingerprinted, so runs carrying it must not memoize.
type opaqueHints struct{}

func (opaqueHints) Hint(uint64) core.Hint { return core.Hint{} }

func TestKeyForNonMemoizableInputs(t *testing.T) {
	cases := []struct {
		name string
		prep func(*config.Machine, *config.Run)
	}{
		{"EachCycle hook", func(m *config.Machine, r *config.Run) {
			m.CPU.EachCycle = func(uint64) {}
		}},
		{"Halt hook", func(m *config.Machine, r *config.Run) {
			m.CPU.Halt = func() bool { return false }
		}},
		{"unknown hint policy", func(m *config.Machine, r *config.Run) {
			r.Hints = opaqueHints{}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, r := baseInputs()
			tc.prep(&m, &r)
			if _, ok := KeyFor(m, r); ok {
				t.Error("inputs with opaque behaviour must not be memoizable")
			}
		})
	}
}

// TestCPUConfigHookFieldsKnown pins the set of func-typed fields on
// cpu.Config. KeyFor refuses to fingerprint a machine whose hooks are
// non-nil; if a new hook field appears it must be added both to KeyFor's
// guard and to this list.
func TestCPUConfigHookFieldsKnown(t *testing.T) {
	known := map[string]bool{"EachCycle": true, "Halt": true}
	ct := reflect.TypeOf(cpu.Config{})
	for i := 0; i < ct.NumField(); i++ {
		f := ct.Field(i)
		if f.Type.Kind() == reflect.Func && !known[f.Name] {
			t.Errorf("new cpu.Config hook %s: teach KeyFor to reject it when non-nil", f.Name)
		}
	}
}
