package runner

import (
	"sync"

	"repro/internal/metrics"
)

// DefaultCacheSize is the default number of settled reports the memo
// cache retains. Reports are small flat structs (~400 bytes), so even the
// full §5 evaluation fits comfortably.
const DefaultCacheSize = 4096

// memoEntry is one in-flight or settled simulation. The owner that
// claimed the key runs the simulation and closes done; everyone else
// waits on done and reads rep/err afterwards.
type memoEntry struct {
	done chan struct{}
	rep  *metrics.Report
	err  error
}

// memoCache is a content-addressed, singleflight memoization cache:
// claiming a key either makes the caller the owner (it must simulate and
// settle) or hands back the existing entry to wait on. Identical sweep
// points therefore simulate exactly once per process, no matter how many
// figures share them or how many workers race to submit them.
type memoCache struct {
	mu      sync.Mutex
	cap     int
	entries map[Key]*memoEntry
	// order tracks settled keys in insertion order for FIFO eviction.
	order []Key
}

func newMemoCache(capacity int) *memoCache {
	return &memoCache{cap: capacity, entries: make(map[Key]*memoEntry)}
}

// claim returns the entry for key and whether the caller became its
// owner. An owner MUST call settle exactly once.
func (c *memoCache) claim(key Key) (*memoEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		return e, false
	}
	e := &memoEntry{done: make(chan struct{})}
	c.entries[key] = e
	return e, true
}

// settle records the owner's result and wakes all waiters. Errors are not
// cached: the entry is dropped so a later submission retries, which keeps
// one batch's cancellation from poisoning another batch's identical run.
func (c *memoCache) settle(key Key, e *memoEntry, rep *metrics.Report, err error) {
	c.mu.Lock()
	e.rep, e.err = rep, err
	if err != nil {
		delete(c.entries, key)
	} else {
		c.order = append(c.order, key)
		for c.cap > 0 && len(c.order) > c.cap {
			oldest := c.order[0]
			c.order = c.order[1:]
			delete(c.entries, oldest)
		}
	}
	c.mu.Unlock()
	close(e.done)
}

// len returns the number of resident entries (in-flight + settled).
func (c *memoCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// copyReport returns an independent copy of a cached report, so no caller
// can mutate the cached value another caller sees. metrics.Report is a
// flat value struct (no pointers, slices, or maps), so a struct copy is a
// deep copy; the compile-time-adjacent test in memo_test.go guards that
// assumption against future reference-typed fields.
func copyReport(r *metrics.Report) *metrics.Report {
	if r == nil {
		return nil
	}
	cp := *r
	return &cp
}
