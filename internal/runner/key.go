package runner

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"

	"repro/internal/config"
	"repro/internal/core"
)

// Key is the content address of one simulation: a SHA-256 over a canonical
// serialization of (config.Machine, config.Run). Two runs share a Key iff
// they are observationally identical inputs to sim.Simulate, so a Key is
// safe to use for memoization and is stable across processes (no pointer,
// map-order, or per-run state leaks into it).
type Key [sha256.Size]byte

// String returns the key as hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// KeyFor fingerprints a (machine, run) pair. The second result is false
// when the pair cannot be fingerprinted — a behavioural input hides behind
// an opaque value (a non-nil function hook, or a HintPolicy implementation
// the hasher doesn't know) — in which case the run must not be memoized.
func KeyFor(m config.Machine, r config.Run) (Key, bool) {
	h := newHasher()

	// Machine. Function hooks cannot be fingerprinted: a machine carrying
	// one is not memoizable.
	if m.CPU.EachCycle != nil || m.CPU.Halt != nil {
		return Key{}, false
	}
	h.section("machine.cpu")
	h.ints(m.CPU.FetchWidth, m.CPU.IssueWidth, m.CPU.CommitWidth,
		m.CPU.RUUSize, m.CPU.LSQSize, m.CPU.FetchQueue,
		m.CPU.IntALUs, m.CPU.IntMulDiv, m.CPU.FPALUs, m.CPU.FPMulDiv,
		m.CPU.MemPorts, m.CPU.MSHRs, m.CPU.RASDepth)
	h.u64s(m.CPU.IntMulLat, m.CPU.IntDivLat, m.CPU.FPALULat,
		m.CPU.FPMulLat, m.CPU.FPDivLat, m.CPU.BranchPenalty)
	h.section("machine.hierarchy")
	h.ints(m.IL1Size, m.IL1Assoc, m.IL1Block,
		m.DL1Size, m.DL1Assoc, m.DL1Block,
		m.L2Size, m.L2Assoc, m.L2Block)
	h.u64s(m.IL1Latency, m.DL1Latency, m.L2Latency, m.MemLatency)

	// Run.
	h.section("run")
	h.str(r.Benchmark)
	h.ints(int(r.Scheme.Trigger), int(r.Scheme.Protection), int(r.Scheme.Lookup))
	h.bool(r.Scheme.SpeculativeECC)
	h.section("run.repl")
	h.intSlice(r.Repl.Distances)
	h.ints(r.Repl.Replicas, int(r.Repl.Victim), int(r.Repl.Decay))
	h.u64s(r.Repl.DecayWindow)
	h.bool(r.Repl.LeaveReplicas)
	h.section("run.budget")
	h.u64s(r.Instructions)
	h.i64(r.Seed)
	h.bool(r.WriteThrough)
	h.ints(r.WriteBufferEntries)
	h.section("run.sample")
	h.u64s(r.Sample.Period, r.Sample.Detail, r.Sample.Warmup)
	h.ints(r.Sample.Confidence)
	h.section("run.fault")
	h.ints(int(r.Fault.Model))
	h.f64(r.Fault.Prob)
	h.i64(r.Fault.Seed)
	h.section("run.energy")
	h.f64s(r.Energy.L1Read, r.Energy.L1Write, r.Energy.L1WordWrite,
		r.Energy.L2Read, r.Energy.L2Write,
		r.Energy.MemRead, r.Energy.MemWrite,
		r.Energy.ParityFrac, r.Energy.ECCFrac,
		r.Energy.RCacheRead, r.Energy.RCacheWrite)
	h.section("run.extensions")
	if !h.hints(r.Hints) {
		return Key{}, false
	}
	h.ints(r.DupCacheKB, r.ScrubLines)
	h.u64s(r.ScrubInterval)
	h.bool(r.Prefetch)
	h.section("run.adapt")
	h.ints(int(r.Adapt.Predictor), r.Adapt.Hysteresis, r.Adapt.MaxReplicas)
	h.u64s(r.Adapt.Epoch, r.Adapt.MinWindow, r.Adapt.MaxWindow)
	h.section("run.twotier")
	h.ints(int(r.TwoTier.Protect), int(r.TwoTier.Victim))
	h.bool(r.TwoTier.Replicate)
	h.bool(r.TwoTier.CrossTier)
	h.u64s(r.TwoTier.DecayWindow, r.TwoTier.ExtraLatency)
	h.ints(int(r.TwoTier.Fault.Model))
	h.f64(r.TwoTier.Fault.Prob)
	h.i64(r.TwoTier.Fault.Seed)

	return h.sum(), true
}

// hasher serializes typed fields into a SHA-256. Every value is written
// with a fixed width and every section with a length-prefixed tag, so no
// two distinct field sequences can collide by concatenation ambiguity.
type hasher struct {
	h   hash.Hash
	buf [8]byte
}

func newHasher() *hasher { return &hasher{h: sha256.New()} }

func (h *hasher) sum() Key {
	var k Key
	h.h.Sum(k[:0])
	return k
}

func (h *hasher) section(name string) { h.str(name) }

func (h *hasher) u64(v uint64) {
	binary.LittleEndian.PutUint64(h.buf[:], v)
	h.h.Write(h.buf[:]) //icrvet:ignore droppederr hash.Hash.Write is documented to never return an error
}

func (h *hasher) u64s(vs ...uint64) {
	for _, v := range vs {
		h.u64(v)
	}
}

func (h *hasher) i64(v int64) { h.u64(uint64(v)) }

func (h *hasher) ints(vs ...int) {
	for _, v := range vs {
		h.u64(uint64(int64(v)))
	}
}

func (h *hasher) f64(v float64) { h.u64(math.Float64bits(v)) }

func (h *hasher) f64s(vs ...float64) {
	for _, v := range vs {
		h.f64(v)
	}
}

func (h *hasher) bool(v bool) {
	if v {
		h.u64(1)
	} else {
		h.u64(0)
	}
}

func (h *hasher) str(s string) {
	h.u64(uint64(len(s)))
	h.h.Write([]byte(s)) //icrvet:ignore droppederr hash.Hash.Write is documented to never return an error
}

func (h *hasher) intSlice(vs []int) {
	h.u64(uint64(len(vs)))
	h.ints(vs...)
}

// hints fingerprints the known HintPolicy implementations. An unknown
// implementation (user code with arbitrary behaviour) is not hashable, so
// the run is reported non-memoizable.
func (h *hasher) hints(p core.HintPolicy) bool {
	switch pol := p.(type) {
	case nil:
		h.u64(0)
	case core.ReplicateAll:
		h.u64(1)
	case *core.RangePolicy:
		if pol == nil {
			h.u64(0)
			return true
		}
		h.u64(2)
		h.u64(uint64(len(pol.Ranges)))
		for _, rr := range pol.Ranges {
			h.u64s(rr.Start, rr.End)
			h.bool(rr.Hint.Replicate)
			h.ints(rr.Hint.Replicas)
		}
		h.bool(pol.Default.Replicate)
		h.ints(pol.Default.Replicas)
	default:
		return false
	}
	return true
}
