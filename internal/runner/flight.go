package runner

import (
	"sync"

	"repro/internal/metrics"
)

// flightEntry is one in-flight simulation. The owner that claimed the key
// runs it and closes done; everyone else waits on done and reads rep/err
// afterwards. Settled results live in the Runner's Cache, not here.
type flightEntry struct {
	done chan struct{}
	rep  *metrics.Report
	err  error
}

// flightGroup is the singleflight layer in front of the cache: concurrent
// submissions of one key elect an owner and everyone else waits, so an
// identical sweep point never executes twice concurrently — no matter how
// many figures share it or how many workers race to submit it.
type flightGroup struct {
	mu       sync.Mutex
	inflight map[Key]*flightEntry
}

func newFlightGroup() *flightGroup {
	return &flightGroup{inflight: make(map[Key]*flightEntry)}
}

// claim returns the entry for key and whether the caller became its
// owner. An owner MUST call settle exactly once.
func (g *flightGroup) claim(key Key) (*flightEntry, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if e, ok := g.inflight[key]; ok {
		return e, false
	}
	e := &flightEntry{done: make(chan struct{})}
	g.inflight[key] = e
	return e, true
}

// settle records the owner's result and wakes all waiters. The entry
// leaves the in-flight map either way: successes are in the cache by the
// time settle runs, and failures must not be cached — a later submission
// retries, which keeps one batch's cancellation from poisoning another
// batch's identical run.
func (g *flightGroup) settle(key Key, e *flightEntry, rep *metrics.Report, err error) {
	g.mu.Lock()
	e.rep, e.err = rep, err
	delete(g.inflight, key)
	g.mu.Unlock()
	close(e.done)
}

// len returns the number of in-flight entries.
func (g *flightGroup) len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.inflight)
}
