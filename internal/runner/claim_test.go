package runner

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/metrics"
)

// fakeClaimer is an in-process store.Claimer: first claimant per key owns
// the simulation until the key appears in the shared backend (Put clears
// the claim, as a real shard does) or release is called.
type fakeClaimer struct {
	mu     sync.Mutex
	st     *fakeStore
	owners map[string]bool

	granted atomic.Int64
}

func newFakeClaimer(st *fakeStore) *fakeClaimer {
	return &fakeClaimer{st: st, owners: make(map[string]bool)}
}

func (c *fakeClaimer) Claim(ctx context.Context, key string) (bool, func(), error) {
	for {
		c.mu.Lock()
		if _, err := c.st.Get(ctx, key); err == nil {
			c.mu.Unlock()
			return false, nil, nil // done: result exists
		}
		if !c.owners[key] {
			c.owners[key] = true
			c.mu.Unlock()
			c.granted.Add(1)
			release := func() {
				c.mu.Lock()
				delete(c.owners, key)
				c.mu.Unlock()
			}
			return true, release, nil
		}
		c.mu.Unlock()
		select {
		case <-time.After(time.Millisecond):
		case <-ctx.Done():
			return false, nil, ctx.Err()
		}
	}
}

// TestFleetClaimExactlyOneSimulation: several runners (distinct processes
// in real life) sharing a store backend and a claimer race on one cold
// key; exactly one simulation executes fleet-wide, everyone gets the
// result.
func TestFleetClaimExactlyOneSimulation(t *testing.T) {
	st := newFakeStore()
	claimer := newFakeClaimer(st)
	var calls atomic.Int64
	slow := func(ctx context.Context, m config.Machine, r config.Run) (*metrics.Report, error) {
		calls.Add(1)
		time.Sleep(20 * time.Millisecond) // hold the claim long enough to race
		return &metrics.Report{Instructions: r.Instructions, Cycles: 7}, nil
	}
	m, run := baseInputs()

	const fleet = 4
	var wg sync.WaitGroup
	errs := make([]error, fleet)
	for i := 0; i < fleet; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each "process" has its own runner, memory cache, and flight
			// group; only the shared store and claimer span the fleet.
			r := New(Options{
				Workers:  2,
				Simulate: slow,
				Cache:    NewStoreCache(st, SourceShard),
				Claimer:  claimer,
			})
			rep, err := r.Run(context.Background(), m, run)
			if err == nil && rep.Cycles != 7 {
				err = errors.New("wrong report")
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("fleet member %d: %v", i, err)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("%d simulations executed fleet-wide, want exactly 1", got)
	}
	if got := claimer.granted.Load(); got != 1 {
		t.Errorf("%d claims granted, want 1", got)
	}
}

// TestClaimReleasedOnFailure: a failed simulation releases the fleet
// claim so the next submission can retry instead of waiting out a TTL.
func TestClaimReleasedOnFailure(t *testing.T) {
	st := newFakeStore()
	claimer := newFakeClaimer(st)
	boom := errors.New("boom")
	var calls atomic.Int64
	fn := func(ctx context.Context, m config.Machine, r config.Run) (*metrics.Report, error) {
		if calls.Add(1) == 1 {
			return nil, boom
		}
		return &metrics.Report{Instructions: r.Instructions}, nil
	}
	r := New(Options{Workers: 1, Simulate: fn, Cache: NewStoreCache(st, ""), Claimer: claimer})
	m, run := baseInputs()
	if _, err := r.Run(context.Background(), m, run); !errors.Is(err, boom) {
		t.Fatalf("first run err = %v, want boom", err)
	}
	claimer.mu.Lock()
	held := len(claimer.owners)
	claimer.mu.Unlock()
	if held != 0 {
		t.Fatal("failed simulation left its fleet claim held")
	}
	if _, err := r.Run(context.Background(), m, run); err != nil {
		t.Fatalf("retry after released claim: %v", err)
	}
}
