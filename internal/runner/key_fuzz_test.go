package runner

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fault"
)

// FuzzKeyFor drives the content-address hash with fuzzer-chosen inputs and
// single-field mutations, asserting the two properties memoization rests
// on: equal inputs always hash equal (stability), and any observable input
// difference hashes different (no collisions that would serve one run's
// report for another's configuration).
func FuzzKeyFor(f *testing.F) {
	// One seed per mutation selector so the corpus exercises every arm.
	for sel := uint8(0); sel < 24; sel++ {
		f.Add(uint64(1_000_000), int64(1), sel, uint64(1))
	}
	f.Add(uint64(0), int64(-5), uint8(3), uint64(0))          // delta 0: no-op mutation
	f.Add(uint64(1<<63), int64(1<<40), uint8(9), uint64(255)) // extreme values

	f.Fuzz(func(t *testing.T, instructions uint64, seed int64, sel uint8, delta uint64) {
		m1 := config.Default()
		r1 := config.NewRun("vpr", core.BaseP())
		r1.Instructions = instructions
		r1.Seed = seed

		k1, ok := KeyFor(m1, r1)
		if !ok {
			t.Fatal("base inputs must be memoizable")
		}
		if k2, _ := KeyFor(m1, cloneRun(r1)); k1 != k2 {
			t.Fatalf("same inputs, different keys: %s vs %s", k1, k2)
		}

		m2, r2 := m1, cloneRun(r1)
		mutateInput(&m2, &r2, sel, delta)
		k2, ok := KeyFor(m2, r2)
		if !ok {
			t.Fatal("mutated inputs must stay memoizable")
		}
		same := reflect.DeepEqual(m1, m2) && reflect.DeepEqual(r1, r2)
		if same && k1 != k2 {
			t.Errorf("sel=%d delta=%d: equal inputs hashed differently", sel, delta)
		}
		if !same && k1 == k2 {
			t.Errorf("sel=%d delta=%d: distinct inputs collided on %s", sel, delta, k1)
		}
	})
}

// cloneRun deep-copies a Run including its reference-typed fields, so a
// mutation to the copy can never alias the original.
func cloneRun(r config.Run) config.Run {
	cp := r
	cp.Repl.Distances = append([]int(nil), r.Repl.Distances...)
	return cp
}

// mutateInput applies one fuzzer-selected single-field change. delta == 0
// leaves numeric fields untouched (the equal-inputs arm of the property);
// boolean/enum arms derive their change from delta so the fuzzer controls
// both directions.
func mutateInput(m *config.Machine, r *config.Run, sel uint8, delta uint64) {
	switch sel % 24 {
	case 0:
		r.Instructions += delta
	case 1:
		r.Seed += int64(delta)
	case 2:
		r.WriteBufferEntries += int(delta % 1024)
	case 3:
		r.Fault.Prob += float64(delta%1000) / 1000
	case 4:
		r.Fault.Seed += int64(delta)
	case 5:
		r.Fault.Model = fault.Model(delta % 4)
	case 6:
		r.Repl.DecayWindow += delta
	case 7:
		r.Repl.Replicas += int(delta % 8)
	case 8:
		r.Repl.Victim = core.VictimPolicy(delta % 4)
	case 9:
		r.Repl.Decay = core.DecayMode(delta % 2)
	case 10:
		if delta%2 == 1 {
			r.Repl.LeaveReplicas = !r.Repl.LeaveReplicas
		}
	case 11:
		r.Repl.Distances = append(r.Repl.Distances, int(delta%512))
	case 12:
		r.Benchmark += strings.Repeat("x", int(delta%4))
	case 13:
		schemes := core.AllSchemes()
		r.Scheme = schemes[int(delta)%len(schemes)]
	case 14:
		if delta%2 == 1 {
			r.WriteThrough = !r.WriteThrough
		}
	case 15:
		if delta%2 == 1 {
			r.Prefetch = !r.Prefetch
		}
	case 16:
		r.Energy.L1Read += float64(delta%4096) / 256
	case 17:
		r.Energy.ECCFrac += float64(delta%100) / 100
	case 18:
		r.DupCacheKB += int(delta % 64)
	case 19:
		r.ScrubInterval += delta
	case 20:
		r.ScrubLines += int(delta % 16)
	case 21:
		m.DL1Assoc += int(delta % 8)
	case 22:
		m.MemLatency += delta
	case 23:
		m.CPU.RUUSize += int(delta % 64)
	}
}
