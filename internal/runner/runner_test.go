package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// jitterSim is deterministic in its results but deliberately erratic in its
// timing: completion order scrambles under concurrency, which is exactly
// what result ordering must be immune to.
func jitterSim(ctx context.Context, m config.Machine, r config.Run) (*metrics.Report, error) {
	time.Sleep(time.Duration(r.Seed%5) * time.Millisecond)
	return &metrics.Report{
		Benchmark:    r.Benchmark,
		Scheme:       r.Scheme.Name(),
		Instructions: r.Instructions,
		Cycles:       uint64(r.Seed)*7919 + r.Instructions,
	}, nil
}

func makeRuns(n int) []config.Run {
	runs := make([]config.Run, n)
	for i := range runs {
		r := config.NewRun("vpr", core.BaseP())
		r.Seed = int64(n - i) // later submissions tend to finish first
		runs[i] = r
	}
	return runs
}

// TestRunBatchDeterministicAcrossWorkerCounts is the core guarantee: the
// result slice is identical at any worker count, in submission order,
// regardless of completion order.
func TestRunBatchDeterministicAcrossWorkerCounts(t *testing.T) {
	m := config.Default()
	runs := makeRuns(24)

	var golden []*metrics.Report
	for _, workers := range []int{1, 2, 8} {
		r := New(Options{Workers: workers, CacheSize: -1, Simulate: jitterSim})
		reports, err := r.RunBatch(context.Background(), m, runs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, rep := range reports {
			if want := uint64(runs[i].Seed)*7919 + runs[i].Instructions; rep.Cycles != want {
				t.Fatalf("workers=%d: slot %d holds the wrong run's report", workers, i)
			}
		}
		if golden == nil {
			golden = reports
			continue
		}
		for i := range reports {
			if *reports[i] != *golden[i] {
				t.Errorf("workers=%d: report %d diverged from workers=1", workers, i)
			}
		}
	}
}

func TestCollectReportsLowestIndexError(t *testing.T) {
	fail := map[int64]bool{3: true, 7: true}
	fn := func(ctx context.Context, m config.Machine, r config.Run) (*metrics.Report, error) {
		if fail[r.Seed] {
			return nil, fmt.Errorf("seed %d exploded", r.Seed)
		}
		return jitterSim(ctx, m, r)
	}
	r := New(Options{Workers: 8, CacheSize: -1, Simulate: fn})
	m := config.Default()
	runs := make([]config.Run, 10)
	for i := range runs {
		run := config.NewRun("vpr", core.BaseP())
		run.Seed = int64(i)
		runs[i] = run
	}
	reports, err := r.RunBatch(context.Background(), m, runs)
	if err == nil || !strings.Contains(err.Error(), "seed 3") {
		t.Errorf("err = %v, want the lowest failing index (seed 3)", err)
	}
	for i, rep := range reports {
		failed := fail[int64(i)]
		if failed && rep != nil {
			t.Errorf("failed run %d has a report", i)
		}
		if !failed && rep == nil {
			t.Errorf("succeeded run %d lost its report (partial results broken)", i)
		}
	}
}

func TestWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	if got, want := New(Options{}).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("Workers() = %d, want GOMAXPROCS %d", got, want)
	}
	if got := New(Options{Workers: 3}).Workers(); got != 3 {
		t.Errorf("Workers() = %d, want 3", got)
	}
}

func TestPerRunTimeout(t *testing.T) {
	fn := func(ctx context.Context, m config.Machine, r config.Run) (*metrics.Report, error) {
		<-ctx.Done() // a well-behaved simulation observes cancellation
		return nil, ctx.Err()
	}
	r := New(Options{Workers: 2, Timeout: 20 * time.Millisecond, Simulate: fn})
	m, run := baseInputs()
	start := time.Now()
	_, err := r.Run(context.Background(), m, run)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("timeout took %v to fire", elapsed)
	}
}

func TestSubmitErrorsNameTheRun(t *testing.T) {
	fn := func(ctx context.Context, m config.Machine, r config.Run) (*metrics.Report, error) {
		return nil, errors.New("boom")
	}
	r := New(Options{Workers: 1, Simulate: fn})
	m := config.Default()
	run := config.NewRun("mcf", core.BaseECC(false))
	_, err := r.Run(context.Background(), m, run)
	if err == nil || !strings.Contains(err.Error(), "mcf/") {
		t.Errorf("err = %v, want the run name in the message", err)
	}
}

// waitGoroutines polls until the goroutine count drops back to (or below)
// the baseline, tolerating runtime background goroutines.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}

// TestCancellationMidSweep is the satellite requirement in full: cancelling
// a sweep mid-flight returns promptly (<1s), reports the runs that did
// complete (partial results), and leaks no goroutines.
func TestCancellationMidSweep(t *testing.T) {
	baseline := runtime.NumGoroutine()

	const fastRuns, blockedRuns = 4, 6
	blockedStarted := make(chan struct{}, blockedRuns)
	fn := func(ctx context.Context, m config.Machine, r config.Run) (*metrics.Report, error) {
		if r.Seed < fastRuns {
			return jitterSim(ctx, m, r)
		}
		blockedStarted <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	r := New(Options{Workers: 2, CacheSize: -1, Simulate: fn})
	m := config.Default()
	runs := make([]config.Run, fastRuns+blockedRuns)
	for i := range runs {
		run := config.NewRun("vpr", core.BaseP())
		run.Seed = int64(i)
		runs[i] = run
	}

	ctx, cancel := context.WithCancel(context.Background())
	pendings := make([]*Pending, len(runs))
	// Submit and finish the fast half before the blocked half exists:
	// goroutine start order is not submission order, so interleaving
	// them could let blocked runs take both worker slots and starve the
	// fast half forever (observed as a 600s race-mode timeout on a
	// single-core machine).
	for i := 0; i < fastRuns; i++ {
		pendings[i] = r.Submit(ctx, m, runs[i])
	}
	for i := 0; i < fastRuns; i++ {
		if _, err := pendings[i].Wait(); err != nil {
			t.Fatalf("fast run %d: %v", i, err)
		}
	}
	// Now cancel with the blocked half in flight: both worker slots
	// provably parked on ctx.Done() and the rest still queued.
	for i := fastRuns; i < len(runs); i++ {
		pendings[i] = r.Submit(ctx, m, runs[i])
	}
	<-blockedStarted
	<-blockedStarted
	cancel()

	start := time.Now()
	reports, err := Collect(pendings)
	elapsed := time.Since(start)
	if elapsed >= time.Second {
		t.Errorf("cancelled sweep took %v to return, want <1s", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	for i, rep := range reports {
		if i < fastRuns && rep == nil {
			t.Errorf("completed run %d missing from partial results", i)
		}
		if i >= fastRuns && rep != nil {
			t.Errorf("cancelled run %d produced a report", i)
		}
	}
	snap := r.Progress().Snapshot()
	if snap.Completed != fastRuns || snap.Failed != blockedRuns {
		t.Errorf("progress: completed=%d failed=%d, want %d/%d",
			snap.Completed, snap.Failed, fastRuns, blockedRuns)
	}
	waitGoroutines(t, baseline)
}

// TestCancelBeforeStart: a context cancelled before submission settles the
// pending without the simulation ever starting.
func TestCancelBeforeStart(t *testing.T) {
	var calls atomic.Int64
	fn := func(ctx context.Context, m config.Machine, r config.Run) (*metrics.Report, error) {
		calls.Add(1)
		return jitterSim(ctx, m, r)
	}
	r := New(Options{Workers: 1, Simulate: fn})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, run := baseInputs()
	if _, err := r.Run(ctx, m, run); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if got := calls.Load(); got != 0 {
		t.Errorf("cancelled submit executed %d times, want 0", got)
	}
}

// TestRealSimulationCancellation exercises the production SimulateFunc: an
// effectively unbounded run must abort within the cancellation latency of
// the per-cycle halt poll, not run to completion.
func TestRealSimulationCancellation(t *testing.T) {
	baseline := runtime.NumGoroutine()
	r := New(Options{Workers: 1}) // default Simulate: sim.SimulateContext
	m := config.Default()
	run := config.NewRun("vpr", core.BaseP())
	run.Instructions = 1 << 62 // would take years

	ctx, cancel := context.WithCancel(context.Background())
	p := r.Submit(ctx, m, run)
	time.Sleep(100 * time.Millisecond) // let the simulation get going
	cancel()
	start := time.Now()
	rep, err := p.Wait()
	if elapsed := time.Since(start); elapsed >= time.Second {
		t.Errorf("real simulation took %v to abort, want <1s", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if rep != nil {
		t.Error("aborted simulation returned a report")
	}
	waitGoroutines(t, baseline)
}

// TestSerialEquivalence: the runner with the default simulate function
// produces exactly what a direct sim.Simulate call produces — the pooled
// path introduces no behavioural difference.
func TestSerialEquivalence(t *testing.T) {
	m := config.Default()
	run := config.NewRun("gzip", core.ICR(core.ParityProt, core.LookupSerial, core.ReplStores))
	run.Instructions = 20_000
	run.Repl = core.ReplConfig{
		Distances: core.VerticalDistances(m.DL1Sets()),
		Replicas:  1,
	}

	r := New(Options{Workers: 4})
	pooled, err := r.Run(context.Background(), m, run)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sim.Simulate(m, run)
	if err != nil {
		t.Fatal(err)
	}
	if *pooled != *direct {
		t.Errorf("pooled run diverged from direct sim.Simulate:\npooled %+v\ndirect %+v", pooled, direct)
	}
}
