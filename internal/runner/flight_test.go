package runner

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/config"
	"repro/internal/metrics"
)

// TestFlightGroupErrorFansOutToAllWaiters exercises the singleflight layer
// directly: one owner, many waiters, the owner settles with an error. Every
// waiter must observe that same error, and the key must leave the in-flight
// map so the next claim elects a fresh owner (failures are not cached).
func TestFlightGroupErrorFansOutToAllWaiters(t *testing.T) {
	g := newFlightGroup()
	m, run := baseInputs()
	key := mustKey(t, m, run)

	owner, isOwner := g.claim(key)
	if !isOwner {
		t.Fatal("first claim did not become owner")
	}

	const waiters = 16
	errs := make(chan error, waiters)
	var ready sync.WaitGroup
	ready.Add(waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			e, isOwner := g.claim(key)
			ready.Done()
			if isOwner {
				t.Error("waiter became owner while the key was in flight")
				g.settle(key, e, nil, nil)
				return
			}
			<-e.done
			errs <- e.err
		}()
	}
	ready.Wait()

	wantErr := errors.New("owner failed")
	g.settle(key, owner, nil, wantErr)

	for i := 0; i < waiters; i++ {
		if err := <-errs; !errors.Is(err, wantErr) {
			t.Fatalf("waiter %d saw %v, want the owner's error", i, err)
		}
	}
	if g.len() != 0 {
		t.Fatalf("in-flight map holds %d entries after settle, want 0", g.len())
	}
	if _, isOwner := g.claim(key); !isOwner {
		t.Fatal("claim after a failed flight did not re-elect an owner: the error was cached")
	}
}

// TestFlightErrorThenRetryThroughRunner drives the contract end to end:
// N concurrent submissions of one key while the first execution fails.
// The runner's singleflight does NOT fan a failure out to coalesced
// waiters — the error belongs to the owner's caller alone, and the entry
// leaves the flight map unsettled-as-failure so a waiter re-claims
// ownership and retries. With N concurrent submissions and a fail-once
// simulation, exactly one caller sees the error, everyone else gets the
// retry's report, and the simulation executes exactly twice (the retry is
// itself singleflighted, never a stampede).
func TestFlightErrorThenRetryThroughRunner(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	wantErr := errors.New("injected simulation failure")
	fn := func(ctx context.Context, m config.Machine, r config.Run) (*metrics.Report, error) {
		n := calls.Add(1)
		if n == 1 {
			<-release // hold the first execution in flight until all submissions are in
			return nil, wantErr
		}
		return &metrics.Report{Benchmark: r.Benchmark, Scheme: r.Scheme.Name(), Cycles: 42}, nil
	}
	r := newTestRunner(t, Options{Simulate: fn, Workers: 8})
	m, run := baseInputs()

	const submits = 8
	pending := make([]*Pending, submits)
	for i := 0; i < submits; i++ {
		pending[i] = r.Submit(context.Background(), m, run)
	}
	close(release)

	var failures, successes int
	for i, p := range pending {
		rep, err := p.Wait()
		switch {
		case errors.Is(err, wantErr):
			failures++
		case err != nil:
			t.Fatalf("submission %d: unexpected error %v", i, err)
		case rep == nil || rep.Cycles != 42:
			t.Fatalf("submission %d: wrong report %+v", i, rep)
		default:
			successes++
		}
	}
	if failures != 1 {
		t.Fatalf("%d submissions saw the injected error, want exactly 1 (the owner's caller)", failures)
	}
	if successes != submits-1 {
		t.Fatalf("%d submissions succeeded, want %d (waiters must retry, not inherit the failure)", successes, submits-1)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("simulation executed %d times, want 2 (fail once, one singleflighted retry)", got)
	}

	// The retry's success is cached like any other.
	if _, err := r.Run(context.Background(), m, run); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("post-retry run executed again (%d total), want memo hit", got)
	}
	if g := r.flight.len(); g != 0 {
		t.Fatalf("flight group holds %d entries at rest, want 0", g)
	}
}
