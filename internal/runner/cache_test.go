package runner

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/store"
)

// fakeStore is an in-memory store.Backend standing in for internal/store.
type fakeStore struct {
	mu      sync.Mutex
	reports map[string]*metrics.Report
	getErr  error
	putErr  error
	gets    int
	puts    int
}

func newFakeStore() *fakeStore {
	return &fakeStore{reports: make(map[string]*metrics.Report)}
}

func (s *fakeStore) Get(ctx context.Context, key string) (*metrics.Report, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	if s.getErr != nil {
		return nil, s.getErr
	}
	rep, ok := s.reports[key]
	if !ok {
		return nil, store.ErrMiss
	}
	cp := *rep
	return &cp, nil
}

func (s *fakeStore) Put(ctx context.Context, key string, rep *metrics.Report) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	if s.putErr != nil {
		return s.putErr
	}
	cp := *rep
	s.reports[key] = &cp
	return nil
}

func (s *fakeStore) Stats() store.Stats { return store.Stats{} }

func (s *fakeStore) Drain() {}

func (s *fakeStore) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.reports)
}

// tieredOptions builds the memory-over-disk stack icrbench/icrd use.
func tieredOptions(fn SimulateFunc, st *fakeStore) Options {
	return Options{
		Workers:  4,
		Simulate: fn,
		Cache:    NewTiered(NewMemoryCache(0, nil), NewStoreCache(st, "")),
	}
}

// TestStoreCachePersistsAndServes: a simulated run is written through to
// the disk layer, and a fresh runner (cold memory cache) over the same
// store serves it as a disk hit without executing.
func TestStoreCachePersistsAndServes(t *testing.T) {
	st := newFakeStore()
	fn, calls := countingSim()
	m, run := baseInputs()

	r1 := New(tieredOptions(fn, st))
	p := r1.Submit(context.Background(), m, run)
	if _, err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if src := p.Source(); src != SourceSimulated {
		t.Errorf("first run Source = %q, want %q", src, SourceSimulated)
	}
	if st.len() != 1 {
		t.Fatalf("store holds %d reports after write-through, want 1", st.len())
	}

	// Fresh runner: memory cache is cold, the disk layer is warm.
	r2 := New(tieredOptions(fn, st))
	p2 := r2.Submit(context.Background(), m, run)
	rep, err := p2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles != uint64(run.Seed)*1000+run.Instructions {
		t.Errorf("disk hit returned wrong report: %+v", rep)
	}
	if src := p2.Source(); src != SourceDisk {
		t.Errorf("restart run Source = %q, want %q", src, SourceDisk)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("disk-cached run executed %d times, want 1", got)
	}
	snap := r2.Progress().Snapshot()
	if snap.DiskHits != 1 || snap.MemoHits != 0 {
		t.Errorf("snapshot = %+v, want 1 disk hit, 0 memo hits", snap)
	}

	// The disk hit was promoted into memory: a third run hits memory.
	p3 := r2.Submit(context.Background(), m, run)
	if _, err := p3.Wait(); err != nil {
		t.Fatal(err)
	}
	if src := p3.Source(); src != SourceMemory {
		t.Errorf("post-promotion Source = %q, want %q", src, SourceMemory)
	}
	if calls.Load() != 1 {
		t.Error("promoted entry re-executed")
	}
}

// TestStoreCachePutFailureIsNotFatal: a failing persist is counted but
// the run still returns its report.
func TestStoreCachePutFailureIsNotFatal(t *testing.T) {
	st := newFakeStore()
	st.putErr = errors.New("disk full")
	sc := NewStoreCache(st, "")
	fn, _ := countingSim()
	r := New(Options{
		Workers:  2,
		Simulate: fn,
		Cache:    NewTiered(NewMemoryCache(0, nil), sc),
	})
	m, run := baseInputs()
	rep, err := r.Run(context.Background(), m, run)
	if err != nil || rep == nil {
		t.Fatalf("run failed because persist failed: rep=%v err=%v", rep, err)
	}
	if got := sc.PutErrors(); got != 1 {
		t.Errorf("PutErrors = %d, want 1", got)
	}
}

// TestCacheMissCounter: only cacheable runs count as misses.
func TestCacheMissCounter(t *testing.T) {
	fn, _ := countingSim()
	r := newTestRunner(t, Options{Simulate: fn})
	m, run := baseInputs()
	if _, err := r.Run(context.Background(), m, run); err != nil {
		t.Fatal(err)
	}
	mOpaque, runOpaque := baseInputs()
	mOpaque.CPU.EachCycle = func(uint64) {}
	if _, err := r.Run(context.Background(), mOpaque, runOpaque); err != nil {
		t.Fatal(err)
	}
	if snap := r.Progress().Snapshot(); snap.CacheMisses != 1 {
		t.Errorf("CacheMisses = %d, want 1 (opaque run must not count)", snap.CacheMisses)
	}
}

// TestDrainRejectsQueuedKeepsRunning: Drain lets the executing run finish
// (and persist) while the queued run settles with ErrDraining, and later
// submissions are rejected outright.
func TestDrainRejectsQueuedKeepsRunning(t *testing.T) {
	st := newFakeStore()
	started := make(chan struct{})
	gate := make(chan struct{})
	var calls atomic.Int64
	fn := func(ctx context.Context, m config.Machine, r config.Run) (*metrics.Report, error) {
		if calls.Add(1) == 1 {
			close(started)
			<-gate
		}
		return &metrics.Report{Instructions: r.Instructions}, nil
	}
	r := New(Options{
		Workers:  1,
		Simulate: fn,
		Cache:    NewTiered(NewMemoryCache(0, nil), NewStoreCache(st, "")),
	})
	m, run := baseInputs()
	m2, run2 := baseInputs()
	run2.Seed++

	running := r.Submit(context.Background(), m, run)
	<-started
	queued := r.Submit(context.Background(), m2, run2)

	r.Drain()
	if !r.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	if _, err := queued.Wait(); !errors.Is(err, ErrDraining) {
		t.Fatalf("queued run err = %v, want ErrDraining", err)
	}

	close(gate)
	rep, err := running.Wait()
	if err != nil || rep == nil {
		t.Fatalf("executing run did not finish cleanly: rep=%v err=%v", rep, err)
	}
	if st.len() != 1 {
		t.Errorf("in-flight run's result not persisted during drain: store has %d entries", st.len())
	}

	late := r.Submit(context.Background(), m2, run2)
	if _, err := late.Wait(); !errors.Is(err, ErrDraining) {
		t.Errorf("post-drain submission err = %v, want ErrDraining", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("%d simulations executed, want 1 (queued and late runs must not start)", got)
	}
}

// TestPendingSourceTiers: Source reports simulated, then memory on the
// rerun, and "" for failures.
func TestPendingSourceTiers(t *testing.T) {
	fn, _ := countingSim()
	r := newTestRunner(t, Options{Simulate: fn})
	m, run := baseInputs()

	p1 := r.Submit(context.Background(), m, run)
	if _, err := p1.Wait(); err != nil {
		t.Fatal(err)
	}
	if src := p1.Source(); src != SourceSimulated {
		t.Errorf("first Source = %q, want %q", src, SourceSimulated)
	}
	p2 := r.Submit(context.Background(), m, run)
	if _, err := p2.Wait(); err != nil {
		t.Fatal(err)
	}
	if src := p2.Source(); src != SourceMemory {
		t.Errorf("second Source = %q, want %q", src, SourceMemory)
	}

	boom := errors.New("boom")
	rf := newTestRunner(t, Options{Simulate: func(context.Context, config.Machine, config.Run) (*metrics.Report, error) {
		return nil, boom
	}})
	pf := rf.Submit(context.Background(), m, run)
	if _, err := pf.Wait(); !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if src := pf.Source(); src != "" {
		t.Errorf("failed Source = %q, want empty", src)
	}
}

// TestTieredSkipsNilLayers: composing with nil layers (e.g. no -store
// flag) must behave like the remaining layers alone.
func TestTieredSkipsNilLayers(t *testing.T) {
	ctx := context.Background()
	tiered := NewTiered(nil, NewMemoryCache(4, nil), nil)
	key := Key{1, 2, 3}
	if err := tiered.Put(ctx, key, &metrics.Report{Cycles: 9}); err != nil {
		t.Fatal(err)
	}
	rep, tier, err := tiered.Get(ctx, key)
	if err != nil || rep.Cycles != 9 || tier != SourceMemory {
		t.Errorf("Get = (%+v, %q, %v), want memory hit", rep, tier, err)
	}
	if _, _, err := tiered.Get(ctx, Key{4}); !errors.Is(err, store.ErrMiss) {
		t.Errorf("absent key error = %v, want store.ErrMiss", err)
	}
}

// TestTieredSickLayerDegrades: a layer failing with a real error must not
// hide a hit in a lower layer, and an all-miss lookup surfaces that error
// instead of a plain miss.
func TestTieredSickLayerDegrades(t *testing.T) {
	ctx := context.Background()
	sick := newFakeStore()
	sick.getErr = errors.New("input/output error")
	warm := newFakeStore()
	key := Key{1, 2, 3}
	if err := warm.Put(ctx, key.String(), &metrics.Report{Cycles: 9}); err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(NewStoreCache(sick, ""), NewStoreCache(warm, SourceShard))
	rep, tier, err := tiered.Get(ctx, key)
	if err != nil || rep.Cycles != 9 || tier != SourceShard {
		t.Errorf("Get = (%+v, %q, %v), want shard hit past the sick layer", rep, tier, err)
	}
	if _, _, err := tiered.Get(ctx, Key{4}); err == nil || errors.Is(err, store.ErrMiss) {
		t.Errorf("all-miss with a sick layer = %v, want its error surfaced", err)
	}
}

// TestRunnerCacheErrorDegradesToExecution: a sick cache stack must not
// fail runs — the runner executes and counts the degradation.
func TestRunnerCacheErrorDegradesToExecution(t *testing.T) {
	st := newFakeStore()
	st.getErr = errors.New("input/output error")
	fn, calls := countingSim()
	r := New(Options{Workers: 2, Simulate: fn, Cache: NewStoreCache(st, "")})
	m, run := baseInputs()
	rep, err := r.Run(context.Background(), m, run)
	if err != nil || rep == nil {
		t.Fatalf("run failed because the cache is sick: rep=%v err=%v", rep, err)
	}
	if calls.Load() != 1 {
		t.Errorf("executions = %d, want 1", calls.Load())
	}
	if snap := r.Progress().Snapshot(); snap.CacheErrors != 1 {
		t.Errorf("CacheErrors = %d, want 1", snap.CacheErrors)
	}
}
