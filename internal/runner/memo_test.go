package runner

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/metrics"
)

// countingSim returns a deterministic stub SimulateFunc and the counter of
// how many times it actually executed (memo hits bypass it).
func countingSim() (SimulateFunc, *atomic.Int64) {
	var calls atomic.Int64
	fn := func(ctx context.Context, m config.Machine, r config.Run) (*metrics.Report, error) {
		calls.Add(1)
		rep := &metrics.Report{
			Benchmark:    r.Benchmark,
			Scheme:       r.Scheme.Name(),
			Instructions: r.Instructions,
			Cycles:       uint64(r.Seed)*1000 + r.Instructions,
		}
		return rep, nil
	}
	return fn, &calls
}

func newTestRunner(t *testing.T, o Options) *Runner {
	t.Helper()
	if o.Workers == 0 {
		o.Workers = 4
	}
	return New(o)
}

func TestMemoHitOnIdenticalInputs(t *testing.T) {
	fn, calls := countingSim()
	r := newTestRunner(t, Options{Simulate: fn})
	m, run := baseInputs()

	for i := 0; i < 3; i++ {
		rep, err := r.Run(context.Background(), m, run)
		if err != nil {
			t.Fatal(err)
		}
		if rep == nil || rep.Cycles != uint64(run.Seed)*1000+run.Instructions {
			t.Fatalf("iteration %d: wrong report %+v", i, rep)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("identical runs executed %d times, want 1", got)
	}
	if snap := r.Progress().Snapshot(); snap.MemoHits != 2 {
		t.Errorf("MemoHits = %d, want 2", snap.MemoHits)
	}
}

// TestMemoMissOnFieldChange mutates one field at a time and expects a fresh
// execution for each — the cache must never serve a report for a different
// configuration.
func TestMemoMissOnFieldChange(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*config.Machine, *config.Run)
	}{
		{"Instructions", func(m *config.Machine, r *config.Run) { r.Instructions++ }},
		{"Seed", func(m *config.Machine, r *config.Run) { r.Seed++ }},
		{"Benchmark", func(m *config.Machine, r *config.Run) { r.Benchmark = "mcf" }},
		{"Scheme", func(m *config.Machine, r *config.Run) { r.Scheme = core.BaseECC(false) }},
		{"Repl.DecayWindow", func(m *config.Machine, r *config.Run) { r.Repl.DecayWindow = 1000 }},
		{"Repl.Distances", func(m *config.Machine, r *config.Run) { r.Repl.Distances = []int{8} }},
		{"WriteThrough", func(m *config.Machine, r *config.Run) { r.WriteThrough = true }},
		{"Fault.Prob", func(m *config.Machine, r *config.Run) { r.Fault.Prob = 1e-3 }},
		{"Energy.ParityFrac", func(m *config.Machine, r *config.Run) { r.Energy.ParityFrac += 0.01 }},
		{"Hints", func(m *config.Machine, r *config.Run) { r.Hints = core.ReplicateAll{} }},
		{"DupCacheKB", func(m *config.Machine, r *config.Run) { r.DupCacheKB = 2 }},
		{"ScrubInterval", func(m *config.Machine, r *config.Run) { r.ScrubInterval = 100 }},
		{"Prefetch", func(m *config.Machine, r *config.Run) { r.Prefetch = true }},
		{"Machine.DL1Size", func(m *config.Machine, r *config.Run) { m.DL1Size *= 2 }},
		{"Machine.CPU.LSQSize", func(m *config.Machine, r *config.Run) { m.CPU.LSQSize++ }},
	}

	fn, calls := countingSim()
	r := newTestRunner(t, Options{Simulate: fn})
	baseM, baseRun := baseInputs()
	if _, err := r.Run(context.Background(), baseM, baseRun); err != nil {
		t.Fatal(err)
	}

	for _, tc := range mutations {
		t.Run(tc.name, func(t *testing.T) {
			before := calls.Load()
			m, run := baseInputs()
			tc.mut(&m, &run)
			if _, err := r.Run(context.Background(), m, run); err != nil {
				t.Fatal(err)
			}
			if after := calls.Load(); after != before+1 {
				t.Errorf("mutated run executed %d new sims, want 1 (stale cache hit)", after-before)
			}
			// The unmutated configuration must still be cached.
			if _, err := r.Run(context.Background(), baseM, baseRun); err != nil {
				t.Fatal(err)
			}
			if final := calls.Load(); final != before+1 {
				t.Error("base configuration re-executed; cache lost the entry")
			}
		})
	}
}

// TestMemoCopyOnReturn: a caller scribbling on a returned report must never
// corrupt what later cache hits observe.
func TestMemoCopyOnReturn(t *testing.T) {
	fn, _ := countingSim()
	r := newTestRunner(t, Options{Simulate: fn})
	m, run := baseInputs()

	first, err := r.Run(context.Background(), m, run)
	if err != nil {
		t.Fatal(err)
	}
	wantCycles := first.Cycles
	first.Cycles = 0xDEAD
	first.Benchmark = "corrupted"

	second, err := r.Run(context.Background(), m, run)
	if err != nil {
		t.Fatal(err)
	}
	if second.Cycles != wantCycles || second.Benchmark != run.Benchmark {
		t.Errorf("cache hit observed caller mutation: %+v", second)
	}
	if first == second {
		t.Error("cache returned the same pointer twice")
	}

	second.Instructions = 0
	third, err := r.Run(context.Background(), m, run)
	if err != nil {
		t.Fatal(err)
	}
	if third.Instructions != run.Instructions {
		t.Error("second mutation leaked into the cache")
	}
}

// TestReportIsFlatValueStruct guards the assumption copyReport rests on:
// metrics.Report is a flat value struct apart from the reference-typed
// fields copyReport explicitly deep-copies (Sampling, Adaptive, and
// Adaptive's Trajectory slice). Any other reference-typed field (pointer,
// slice, map) would alias cached state and must come with its own
// deep-copy step here and in copyReport.
func TestReportIsFlatValueStruct(t *testing.T) {
	deepCopied := map[string]bool{
		"Report.Sampling":              true,
		"Report.Adaptive":              true,
		"Report.Adaptive.*.Trajectory": true,
		"Report.TwoTier":               true,
	}
	var check func(tp reflect.Type, path string)
	check = func(tp reflect.Type, path string) {
		switch tp.Kind() {
		case reflect.Ptr:
			if deepCopied[path] {
				check(tp.Elem(), path+".*")
				return
			}
			t.Errorf("%s is reference-typed (%s): copyReport's struct copy is no longer a deep copy", path, tp.Kind())
		case reflect.Slice:
			if deepCopied[path] {
				check(tp.Elem(), path+"[]")
				return
			}
			t.Errorf("%s is reference-typed (%s): copyReport's struct copy is no longer a deep copy", path, tp.Kind())
		case reflect.Map, reflect.Chan, reflect.Func, reflect.Interface:
			t.Errorf("%s is reference-typed (%s): copyReport's struct copy is no longer a deep copy", path, tp.Kind())
		case reflect.Struct:
			for i := 0; i < tp.NumField(); i++ {
				f := tp.Field(i)
				check(f.Type, path+"."+f.Name)
			}
		case reflect.Array:
			check(tp.Elem(), path+"[]")
		}
	}
	check(reflect.TypeOf(metrics.Report{}), "Report")
}

// TestCopyReportDeepCopiesSampling pins the explicit deep-copy branch: a
// cached report's sampling block must not be aliased by the copies handed
// to callers.
func TestCopyReportDeepCopiesSampling(t *testing.T) {
	orig := &metrics.Report{Sampling: &metrics.SamplingStats{Windows: 10, IPCMean: 1.5}}
	cp := copyReport(orig)
	if cp.Sampling == orig.Sampling {
		t.Fatal("copyReport aliased the Sampling block")
	}
	cp.Sampling.IPCMean = 9
	if orig.Sampling.IPCMean != 1.5 {
		t.Error("mutating the copy's Sampling reached the cached report")
	}
}

// TestCopyReportDeepCopiesAdaptive pins the same invariant for the
// adaptive block, including its trajectory slice.
func TestCopyReportDeepCopiesAdaptive(t *testing.T) {
	orig := &metrics.Report{Adaptive: &metrics.AdaptiveStats{
		Epochs:     4,
		Trajectory: []metrics.AdaptiveMove{{Epoch: 1, Level: 2}},
	}}
	cp := copyReport(orig)
	if cp.Adaptive == orig.Adaptive {
		t.Fatal("copyReport aliased the Adaptive block")
	}
	cp.Adaptive.Epochs = 99
	cp.Adaptive.Trajectory[0].Level = 0
	if orig.Adaptive.Epochs != 4 || orig.Adaptive.Trajectory[0].Level != 2 {
		t.Error("mutating the copy's Adaptive reached the cached report")
	}
}

// TestCopyReportDeepCopiesTwoTier pins the same invariant for the
// two-tier block.
func TestCopyReportDeepCopiesTwoTier(t *testing.T) {
	orig := &metrics.Report{TwoTier: &metrics.TwoTierStats{Tier: "ICR-P+x", ReplAttempts: 7}}
	cp := copyReport(orig)
	if cp.TwoTier == orig.TwoTier {
		t.Fatal("copyReport aliased the TwoTier block")
	}
	cp.TwoTier.ReplAttempts = 99
	if orig.TwoTier.ReplAttempts != 7 {
		t.Error("mutating the copy's TwoTier reached the cached report")
	}
}

// TestMemoSingleflight: concurrent submissions of the same key execute the
// simulation exactly once; everyone else waits for the owner.
func TestMemoSingleflight(t *testing.T) {
	var calls atomic.Int64
	gate := make(chan struct{})
	fn := func(ctx context.Context, m config.Machine, r config.Run) (*metrics.Report, error) {
		calls.Add(1)
		<-gate // hold the owner until all duplicates are submitted
		return &metrics.Report{Instructions: r.Instructions}, nil
	}
	r := newTestRunner(t, Options{Workers: 8, Simulate: fn})
	m, run := baseInputs()

	const dup = 8
	pendings := make([]*Pending, dup)
	for i := range pendings {
		pendings[i] = r.Submit(context.Background(), m, run)
	}
	close(gate)
	reports, err := Collect(pendings)
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("%d duplicate submissions executed %d times, want 1", dup, got)
	}
	for i, rep := range reports {
		if rep == nil || rep.Instructions != run.Instructions {
			t.Fatalf("report %d: %+v", i, rep)
		}
		for j := i + 1; j < dup; j++ {
			if rep == reports[j] {
				t.Fatal("two waiters received the same report pointer")
			}
		}
	}
	if snap := r.Progress().Snapshot(); snap.MemoHits != dup-1 {
		t.Errorf("MemoHits = %d, want %d", snap.MemoHits, dup-1)
	}
}

// TestMemoErrorsNotCached: a failed owner must not poison the key — the
// next submission retries, and a success after the failure is cached.
func TestMemoErrorsNotCached(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("injected failure")
	fn := func(ctx context.Context, m config.Machine, r config.Run) (*metrics.Report, error) {
		if calls.Add(1) == 1 {
			return nil, boom
		}
		return &metrics.Report{Instructions: r.Instructions}, nil
	}
	r := newTestRunner(t, Options{Simulate: fn})
	m, run := baseInputs()

	if _, err := r.Run(context.Background(), m, run); !errors.Is(err, boom) {
		t.Fatalf("first run: err = %v, want injected failure", err)
	}
	if rep, err := r.Run(context.Background(), m, run); err != nil || rep == nil {
		t.Fatalf("retry after failure: rep=%v err=%v", rep, err)
	}
	if _, err := r.Run(context.Background(), m, run); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("executed %d times, want 2 (fail, succeed, then cache hit)", got)
	}
}

// TestMemoErrorRetryUnblocksWaiters: waiters queued behind a failing owner
// re-claim the key instead of inheriting the owner's error.
func TestMemoErrorRetryUnblocksWaiters(t *testing.T) {
	var calls atomic.Int64
	gate := make(chan struct{})
	boom := errors.New("owner failure")
	fn := func(ctx context.Context, m config.Machine, r config.Run) (*metrics.Report, error) {
		n := calls.Add(1)
		if n == 1 {
			<-gate
			return nil, boom
		}
		return &metrics.Report{Instructions: r.Instructions}, nil
	}
	r := newTestRunner(t, Options{Workers: 4, Simulate: fn})
	m, run := baseInputs()

	// Four concurrent identical submissions: whichever claims ownership
	// first hits the injected failure; the rest must retry to success
	// rather than inherit it.
	const n = 4
	var wg sync.WaitGroup
	errs := make([]error, n)
	reps := make([]*metrics.Report, n)
	pendings := make([]*Pending, n)
	for i := 0; i < n; i++ {
		pendings[i] = r.Submit(context.Background(), m, run)
	}
	close(gate)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reps[i], errs[i] = pendings[i].Wait()
		}(i)
	}
	wg.Wait()
	var failures, successes int
	for i := range errs {
		switch {
		case errors.Is(errs[i], boom):
			failures++
		case errs[i] == nil && reps[i] != nil:
			successes++
		default:
			t.Errorf("submission %d: rep=%v err=%v", i, reps[i], errs[i])
		}
	}
	if failures != 1 || successes != n-1 {
		t.Errorf("failures=%d successes=%d, want exactly the owner to fail (1/%d)",
			failures, successes, n-1)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("executed %d times, want 2 (failing owner + one retry)", got)
	}
}

func TestMemoEvictionLRU(t *testing.T) {
	fn, calls := countingSim()
	r := newTestRunner(t, Options{CacheSize: 2, Simulate: fn})
	m, run := baseInputs()

	for seed := int64(1); seed <= 3; seed++ {
		run.Seed = seed
		if _, err := r.Run(context.Background(), m, run); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.cache.(*MemoryCache).Len(); got > 2 {
		t.Errorf("cache holds %d entries, cap 2", got)
	}
	// Seed 1 was the least recently used; it must have been evicted.
	run.Seed = 1
	if _, err := r.Run(context.Background(), m, run); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 4 {
		t.Errorf("evicted entry not re-executed: %d calls, want 4", got)
	}
	if snap := r.Progress().Snapshot(); snap.Evictions == 0 {
		t.Error("evictions not reported to Progress")
	}
	run.Seed = 3
	if _, err := r.Run(context.Background(), m, run); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 4 {
		t.Errorf("resident entry re-executed: %d calls, want 4", got)
	}
}

// TestMemoLRURecencyRefresh: a Get keeps an entry warm, unlike the old
// FIFO memo — re-reading the oldest entry must save it from eviction.
func TestMemoLRURecencyRefresh(t *testing.T) {
	fn, calls := countingSim()
	r := newTestRunner(t, Options{CacheSize: 2, Simulate: fn})
	m, run := baseInputs()

	for seed := int64(1); seed <= 2; seed++ {
		run.Seed = seed
		if _, err := r.Run(context.Background(), m, run); err != nil {
			t.Fatal(err)
		}
	}
	// Touch seed 1 so seed 2 becomes the LRU victim.
	run.Seed = 1
	if _, err := r.Run(context.Background(), m, run); err != nil {
		t.Fatal(err)
	}
	run.Seed = 3
	if _, err := r.Run(context.Background(), m, run); err != nil {
		t.Fatal(err)
	}
	run.Seed = 1
	if _, err := r.Run(context.Background(), m, run); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("recently-read entry evicted: %d executions, want 3", got)
	}
}

func TestMemoDisabled(t *testing.T) {
	fn, calls := countingSim()
	r := newTestRunner(t, Options{CacheSize: -1, Simulate: fn})
	m, run := baseInputs()
	for i := 0; i < 3; i++ {
		if _, err := r.Run(context.Background(), m, run); err != nil {
			t.Fatal(err)
		}
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("with memoization disabled, executed %d times, want 3", got)
	}
}

// TestMemoBypassForOpaqueInputs: runs whose behaviour hides behind a hook
// or unknown policy execute every time rather than risking a wrong hit.
func TestMemoBypassForOpaqueInputs(t *testing.T) {
	fn, calls := countingSim()
	r := newTestRunner(t, Options{Simulate: fn})
	m, run := baseInputs()
	m.CPU.EachCycle = func(uint64) {}
	for i := 0; i < 2; i++ {
		if _, err := r.Run(context.Background(), m, run); err != nil {
			t.Fatal(err)
		}
	}
	m2, run2 := baseInputs()
	run2.Hints = opaqueHints{}
	for i := 0; i < 2; i++ {
		if _, err := r.Run(context.Background(), m2, run2); err != nil {
			t.Fatal(err)
		}
	}
	if got := calls.Load(); got != 4 {
		t.Errorf("opaque inputs executed %d times, want 4 (no memoization)", got)
	}
}
