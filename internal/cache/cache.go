// Package cache provides the memory-hierarchy substrate beneath the ICR
// data cache: a generic set-associative timing cache with LRU replacement
// and write-back or write-through policies, a coalescing write buffer (for
// the paper's write-through comparison, §5.8), and a latency+content main
// memory.
//
// Only the ICR L1 data cache (internal/core) carries real, corruptible data
// bits. The levels in this package model timing and access counts; block
// content is held architecturally by Memory, which both the L2 timing model
// and the ICR cache sit above.
package cache

import "fmt"

// Kind is the type of a cache access.
type Kind uint8

// Access kinds.
const (
	Read  Kind = iota + 1 // data load
	Write                 // data store / write-back from above
	Fetch                 // instruction fetch
)

// String returns a short name for the access kind.
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case Fetch:
		return "fetch"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Level is one level of the memory hierarchy. Access requests the block
// containing addr and returns the total latency in cycles, including any
// latency incurred at lower levels on a miss.
type Level interface {
	Access(now uint64, addr uint64, kind Kind) (latency uint64)
}

// WritePolicy selects how writes propagate to the next level.
type WritePolicy uint8

// Write policies.
const (
	// WriteBack marks lines dirty and writes them to the next level only
	// on eviction. Writes allocate on miss.
	WriteBack WritePolicy = iota + 1
	// WriteThrough forwards every write to the next level (through the
	// configured write buffer if present). Writes do not allocate on miss.
	WriteThrough
)

// Config describes one cache level.
type Config struct {
	Name       string
	Size       int    // total bytes
	Assoc      int    // ways per set
	BlockSize  int    // bytes per line
	HitLatency uint64 // cycles for a hit
	Policy     WritePolicy
	Next       Level        // lower level (required)
	WriteBuf   *WriteBuffer // optional; used by WriteThrough

	// PortOccupancy, when nonzero, models a single bank/port: each access
	// holds the array for this many cycles, and an access arriving while
	// the port is busy is delayed (the delay is added to its latency).
	// This is what makes heavy write-through traffic to an L2 expensive
	// (§5.8): write-buffer drains and demand fills contend for the same
	// port.
	PortOccupancy uint64
}

// Stats counts cache events. All fields are cumulative.
type Stats struct {
	Reads, ReadMisses    uint64
	Writes, WriteMisses  uint64
	Fetches, FetchMisses uint64
	Writebacks           uint64 // dirty evictions written to the next level
	WriteThroughs        uint64 // writes forwarded by the write-through policy
	PortStallCycles      uint64 // cycles accesses waited for a busy port
}

// Accesses returns the total number of accesses of all kinds.
func (s *Stats) Accesses() uint64 { return s.Reads + s.Writes + s.Fetches }

// Misses returns the total number of misses of all kinds.
func (s *Stats) Misses() uint64 { return s.ReadMisses + s.WriteMisses + s.FetchMisses }

// MissRate returns misses/accesses, or 0 for an untouched cache.
func (s *Stats) MissRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.Misses()) / float64(a)
}

type line struct {
	valid bool
	dirty bool
	tag   uint64
	lru   uint64
}

// Cache is a set-associative timing cache with LRU replacement.
type Cache struct {
	cfg        Config //icrvet:persistent construction input: pooled reuse keys on the same geometry
	sets       int    //icrvet:persistent geometry: derived from cfg at construction
	offsetBits uint   //icrvet:persistent geometry: derived from cfg at construction
	indexMask  uint64 //icrvet:persistent geometry: derived from cfg at construction
	lines      []line // sets*assoc, way-major within a set
	clock      uint64
	stats      Stats
	portBusy   uint64 // cycle the port frees (PortOccupancy > 0 only)
}

var _ Level = (*Cache)(nil)

// New builds a cache from cfg. It panics on invalid geometry (a
// programming error, not a runtime condition).
func New(cfg Config) *Cache {
	if cfg.Size <= 0 || cfg.Assoc <= 0 || cfg.BlockSize <= 0 {
		panic("cache: size, assoc, and block size must be positive")
	}
	if cfg.BlockSize&(cfg.BlockSize-1) != 0 {
		panic("cache: block size must be a power of two")
	}
	if cfg.Size%(cfg.Assoc*cfg.BlockSize) != 0 {
		panic("cache: size must be a multiple of assoc*blockSize")
	}
	sets := cfg.Size / (cfg.Assoc * cfg.BlockSize)
	if sets&(sets-1) != 0 {
		panic("cache: set count must be a power of two")
	}
	if cfg.Next == nil {
		panic("cache: next level is required")
	}
	if cfg.Policy == 0 {
		cfg.Policy = WriteBack
	}
	offsetBits := uint(0)
	for 1<<offsetBits < cfg.BlockSize {
		offsetBits++
	}
	return &Cache{
		cfg:        cfg,
		sets:       sets,
		offsetBits: offsetBits,
		indexMask:  uint64(sets) - 1,
		lines:      make([]line, sets*cfg.Assoc),
	}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// BlockSize returns the line size in bytes.
func (c *Cache) BlockSize() int { return c.cfg.BlockSize }

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() Stats { return c.stats }

// blockAddr strips the offset bits.
func (c *Cache) blockAddr(addr uint64) uint64 { return addr >> c.offsetBits }

func (c *Cache) setIndex(blockAddr uint64) int { return int(blockAddr & c.indexMask) }

// lookup returns the way holding blockAddr in its set, or -1.
func (c *Cache) lookup(blockAddr uint64) int {
	base := c.setIndex(blockAddr) * c.cfg.Assoc
	for w := 0; w < c.cfg.Assoc; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == blockAddr {
			return base + w
		}
	}
	return -1
}

// Contains reports whether the block holding addr is resident. It does not
// update LRU state and is intended for tests and introspection.
func (c *Cache) Contains(addr uint64) bool { return c.lookup(c.blockAddr(addr)) >= 0 }

// Access implements Level.
func (c *Cache) Access(now uint64, addr uint64, kind Kind) uint64 {
	ba := c.blockAddr(addr)
	c.clock++

	switch kind {
	case Read:
		c.stats.Reads++
	case Write:
		c.stats.Writes++
	case Fetch:
		c.stats.Fetches++
	}

	// Port contention: wait for the array to free, then occupy it.
	var portDelay uint64
	if c.cfg.PortOccupancy > 0 {
		if c.portBusy > now {
			portDelay = c.portBusy - now
			c.stats.PortStallCycles += portDelay
		}
		c.portBusy = now + portDelay + c.cfg.PortOccupancy
		now += portDelay
	}

	if c.cfg.Policy == WriteThrough && kind == Write {
		return portDelay + c.accessWriteThrough(now, addr, ba)
	}

	if i := c.lookup(ba); i >= 0 {
		ln := &c.lines[i]
		ln.lru = c.clock
		if kind == Write {
			ln.dirty = true
		}
		return portDelay + c.cfg.HitLatency
	}

	// Miss: count, fetch from below, allocate.
	switch kind {
	case Read:
		c.stats.ReadMisses++
	case Write:
		c.stats.WriteMisses++
	case Fetch:
		c.stats.FetchMisses++
	}
	lat := c.cfg.HitLatency + c.cfg.Next.Access(now+c.cfg.HitLatency, addr, Read)
	c.allocate(now, ba, kind == Write)
	return portDelay + lat
}

// accessWriteThrough handles a store under the write-through policy:
// update the line if present (no allocate on miss) and forward the write
// to the next level, through the write buffer when configured.
func (c *Cache) accessWriteThrough(now uint64, addr, ba uint64) uint64 {
	if i := c.lookup(ba); i >= 0 {
		c.lines[i].lru = c.clock
		// Line stays clean: the next level is updated immediately.
	} else {
		c.stats.WriteMisses++
	}
	c.stats.WriteThroughs++
	if c.cfg.WriteBuf != nil {
		stall := c.cfg.WriteBuf.Add(now, ba)
		return c.cfg.HitLatency + stall
	}
	return c.cfg.HitLatency + c.cfg.Next.Access(now+c.cfg.HitLatency, addr, Write)
}

// allocate installs blockAddr, evicting the LRU way.
//
// Buffered-writeback contract: a dirty victim is forwarded to the next
// level as a Write at the demand miss's timestamp, so the victim (a) is
// counted in the next level's write statistics, (b) occupies the next
// level's port (PortOccupancy) and thereby delays later demand traffic,
// and (c) updates no content (block bytes are held architecturally by
// Memory, which data-carrying levels update before their eviction reaches
// this path). The returned latency is deliberately discarded: write-backs
// ride a dedicated eviction buffer in real hardware, so their latency is
// never charged to the demand miss that displaced them — only the port
// pressure they create is modeled. This contract is pinned by
// TestDirtyEvictionBufferedWritebackContract.
func (c *Cache) allocate(now uint64, blockAddr uint64, dirty bool) {
	base := c.setIndex(blockAddr) * c.cfg.Assoc
	victim := base
	for w := 0; w < c.cfg.Assoc; w++ {
		ln := &c.lines[base+w]
		if !ln.valid {
			victim = base + w
			break
		}
		if ln.lru < c.lines[victim].lru {
			victim = base + w
		}
	}
	v := &c.lines[victim]
	if v.valid && v.dirty {
		c.stats.Writebacks++
		// Timing: buffered; content: architecturally handled by Memory.
		c.cfg.Next.Access(now, v.tag<<c.offsetBits, Write)
	}
	*v = line{valid: true, dirty: dirty, tag: blockAddr, lru: c.clock}
}

// ---------------------------------------------------------------------------
// Write buffer
// ---------------------------------------------------------------------------

// WriteBufferStats counts write-buffer events.
type WriteBufferStats struct {
	Adds        uint64 // entries enqueued
	Coalesced   uint64 // writes merged into an existing entry
	Retired     uint64 // entries drained to the next level
	Stalls      uint64 // adds that found the buffer full
	StallCycles uint64 // total cycles stalled waiting for space
}

// WriteBuffer is a coalescing write buffer between a write-through L1 and
// the next level (the paper uses an 8-entry coalescing buffer, after
// Skadron & Clark). Entries retire in FIFO order, one per next-level
// access latency; a store that finds the buffer full stalls until the
// front entry retires.
type WriteBuffer struct {
	entries   int      //icrvet:persistent capacity: fixed at construction
	interval  uint64   //icrvet:persistent cycles per retirement (next-level write latency), fixed at construction
	next      Level    //icrvet:persistent hierarchy wiring: the next level is itself reset by the pool owner
	queue     []uint64 // block addresses, FIFO
	frontDone uint64   // cycle the front entry finishes retiring
	// clock is the high-water mark of every `now` the buffer has observed.
	// Overdue entries (frontDone long in the past because the buffer sat
	// idle) retire at this clock, never at their stale frontDone: the next
	// level must see non-decreasing timestamps even when drains interleave
	// with demand misses issued at later cycles.
	clock     uint64
	lastIssue uint64 // last timestamp handed to next.Access (monotonicity check)
	stats     WriteBufferStats
}

// NewWriteBuffer returns a write buffer with the given capacity that
// retires one entry per interval cycles into next.
func NewWriteBuffer(entries int, interval uint64, next Level) *WriteBuffer {
	if entries <= 0 {
		panic("cache: write buffer needs at least one entry")
	}
	if next == nil {
		panic("cache: write buffer needs a next level")
	}
	if interval == 0 {
		interval = 1
	}
	return &WriteBuffer{entries: entries, interval: interval, next: next}
}

// Stats returns a snapshot of the buffer's counters.
func (w *WriteBuffer) Stats() WriteBufferStats { return w.stats }

// Len returns the number of queued entries. It never mutates the buffer;
// call Drain first when retirement up to the current cycle should be
// modeled before counting.
func (w *WriteBuffer) Len() int { return len(w.queue) }

// Drain retires every entry whose turn has come by cycle now, forwarding
// each to the next level.
func (w *WriteBuffer) Drain(now uint64) {
	w.observe(now)
	w.drain(now)
}

// observe advances the buffer's monotonic clock to now.
func (w *WriteBuffer) observe(now uint64) {
	if now > w.clock {
		w.clock = now
	}
}

func (w *WriteBuffer) drain(now uint64) {
	for len(w.queue) > 0 && w.frontDone <= now {
		ba := w.queue[0]
		// Shift down rather than re-slice: the queue is tiny (8 entries in
		// the paper's configuration) and keeping the backing array intact
		// keeps Add allocation-free forever.
		copy(w.queue, w.queue[1:])
		w.queue = w.queue[:len(w.queue)-1]
		w.stats.Retired++
		// Overdue retirements are clamped to the observed clock so the
		// next level's timeline never runs backwards.
		at := w.frontDone
		if at < w.clock {
			at = w.clock
		}
		if at < w.lastIssue {
			panic("cache: write buffer issued a non-monotonic timestamp")
		}
		w.lastIssue = at
		w.next.Access(at, ba, Write) // count the L2 write
		if len(w.queue) > 0 {
			w.frontDone += w.interval
		}
	}
}

// Add enqueues a write of the given block and returns the stall cycles the
// store suffers (zero unless the buffer is full and cannot coalesce).
func (w *WriteBuffer) Add(now uint64, blockAddr uint64) (stall uint64) {
	w.observe(now)
	w.drain(now)
	for _, ba := range w.queue {
		if ba == blockAddr {
			w.stats.Coalesced++
			return 0
		}
	}
	if len(w.queue) >= w.entries {
		// Stall until the front entry retires, then take its slot. The
		// stalled store experiences time now+stall, so the clock advances
		// with it.
		w.stats.Stalls++
		stall = w.frontDone - now
		w.stats.StallCycles += stall
		w.observe(now + stall)
		w.drain(w.frontDone)
	}
	if len(w.queue) == 0 {
		w.frontDone = now + stall + w.interval
	}
	w.queue = append(w.queue, blockAddr)
	w.stats.Adds++
	return stall
}

// ---------------------------------------------------------------------------
// Main memory
// ---------------------------------------------------------------------------

// Memory is the bottom of the hierarchy: fixed latency, plus the
// architectural content store for every block. Blocks that have never been
// written read as a deterministic pseudo-random pattern derived from their
// address, so simulations are reproducible and data-carrying levels can be
// verified against ground truth.
type Memory struct {
	Latency   uint64 //icrvet:persistent construction parameter, identical for every run sharing the pool shape
	BlockSize int
	blocks    map[uint64][]byte
	reads     uint64
	writes    uint64
	fetches   uint64
	scratch   []byte //icrvet:persistent PeekBlock's synthesis buffer for never-written blocks, fully overwritten before each use
}

var _ Level = (*Memory)(nil)

// NewMemory returns a Memory with the given access latency and block size.
func NewMemory(latency uint64, blockSize int) *Memory {
	if blockSize <= 0 {
		panic("cache: memory block size must be positive")
	}
	return &Memory{Latency: latency, BlockSize: blockSize, blocks: make(map[uint64][]byte)}
}

// Access implements Level. Reads, writes, and instruction fetches are
// counted separately so memory-tier traffic can be priced per direction
// (DRAM/CXL write energy differs from read energy); the latency model is
// direction-independent.
func (m *Memory) Access(_ uint64, _ uint64, kind Kind) uint64 {
	switch kind {
	case Write:
		m.writes++
	case Fetch:
		m.fetches++
	default:
		m.reads++
	}
	return m.Latency
}

// Accesses returns how many requests reached memory, of all kinds.
func (m *Memory) Accesses() uint64 { return m.reads + m.writes + m.fetches }

// Reads returns how many data reads (and unclassified requests) reached
// memory.
func (m *Memory) Reads() uint64 { return m.reads }

// Writes returns how many writes (write-backs and buffered write-throughs)
// reached memory.
func (m *Memory) Writes() uint64 { return m.writes }

// Fetches returns how many instruction fetches reached memory.
func (m *Memory) Fetches() uint64 { return m.fetches }

// splitmix64 is a tiny, high-quality mixing function used to synthesize
// deterministic block contents.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// synthesize fills out with the deterministic content of a never-written
// block.
func (m *Memory) synthesize(out []byte, blockAddr uint64) {
	for i := 0; i < m.BlockSize; i += 8 {
		v := splitmix64(blockAddr*uint64(m.BlockSize/8) + uint64(i/8))
		for j := 0; j < 8 && i+j < m.BlockSize; j++ {
			out[i+j] = byte(v >> (8 * j))
		}
	}
}

// FetchBlock returns the architectural content of the block with the given
// block address (addr >> log2(BlockSize)). The returned slice is a copy.
func (m *Memory) FetchBlock(blockAddr uint64) []byte {
	out := make([]byte, m.BlockSize)
	if b, ok := m.blocks[blockAddr]; ok {
		copy(out, b)
		return out
	}
	m.synthesize(out, blockAddr)
	return out
}

// PeekBlock returns the architectural content of a block without copying:
// the allocation-free read path for callers that only copy the bytes out
// (cache fills, scrub refills). The returned slice is owned by the Memory
// and must be treated as read-only; it is valid only until the next
// PeekBlock, WriteBlock, or WriteWord call (never-written blocks are
// synthesized into a single reusable scratch buffer).
func (m *Memory) PeekBlock(blockAddr uint64) []byte {
	if b, ok := m.blocks[blockAddr]; ok {
		return b
	}
	if m.scratch == nil {
		//icrvet:ignore allocfree one-time lazy scratch allocation, reused for every subsequent peek
		m.scratch = make([]byte, m.BlockSize)
	}
	m.synthesize(m.scratch, blockAddr)
	return m.scratch
}

// WriteBlock stores new architectural content for a block. The data is
// copied (into the block's existing buffer when one exists, so steady-state
// write-backs do not allocate).
func (m *Memory) WriteBlock(blockAddr uint64, data []byte) {
	b, ok := m.blocks[blockAddr]
	if !ok {
		//icrvet:ignore allocfree amortized lazy allocation: each block is materialized once on first write-back, then reused
		b = make([]byte, m.BlockSize)
		m.blocks[blockAddr] = b
	}
	copy(b, data)
}

// WriteWord updates the aligned 64-bit word containing byte offset off of
// a block in place — the read-modify-write a write-through store performs,
// without materializing a full block copy per store. First touch of a
// block synthesizes its deterministic content.
func (m *Memory) WriteWord(blockAddr uint64, off int, value uint64) {
	b, ok := m.blocks[blockAddr]
	if !ok {
		//icrvet:ignore allocfree amortized lazy allocation: each block is materialized once on first touch, then reused
		b = make([]byte, m.BlockSize)
		m.synthesize(b, blockAddr)
		m.blocks[blockAddr] = b
	}
	w := off &^ 7
	for i := 0; i < 8 && w+i < len(b); i++ {
		b[w+i] = byte(value >> (8 * i))
	}
}

// ---------------------------------------------------------------------------
// Reset (arena reuse)
// ---------------------------------------------------------------------------

// Reset restores the cache to its post-construction state — every line
// invalid, counters zeroed — without reallocating the line array.
func (c *Cache) Reset() {
	clear(c.lines)
	c.clock = 0
	c.stats = Stats{}
	c.portBusy = 0
}

// Reset empties the buffer and zeroes its counters without reallocating
// the queue.
func (w *WriteBuffer) Reset() {
	w.queue = w.queue[:0]
	w.frontDone = 0
	w.clock = 0
	w.lastIssue = 0
	w.stats = WriteBufferStats{}
}

// Reset restores the memory to its post-construction state without
// releasing the block map: every retained block is re-synthesized to the
// deterministic never-written pattern for its address, which is exactly
// what a fresh Memory would return for it, so steady-state reuse
// allocates nothing.
func (m *Memory) Reset() {
	for addr, b := range m.blocks {
		m.synthesize(b, addr)
	}
	m.reads = 0
	m.writes = 0
	m.fetches = 0
}
