package cache

import (
	"math/rand"
	"testing"
)

// refCache is an executable specification of a set-associative LRU cache:
// per-set slices ordered most-recent-first. The real implementation must
// produce the identical hit/miss sequence.
type refCache struct {
	sets      int
	assoc     int
	blockBits uint
	content   [][]uint64 // per set, MRU first
}

func newRefCache(size, assoc, block int) *refCache {
	sets := size / (assoc * block)
	bits := uint(0)
	for 1<<bits < block {
		bits++
	}
	return &refCache{
		sets: sets, assoc: assoc, blockBits: bits,
		content: make([][]uint64, sets),
	}
}

func (r *refCache) access(addr uint64) (hit bool) {
	ba := addr >> r.blockBits
	set := int(ba % uint64(r.sets))
	s := r.content[set]
	for i, tag := range s {
		if tag == ba {
			// Move to front.
			copy(s[1:i+1], s[:i])
			s[0] = ba
			return true
		}
	}
	// Miss: insert at front, evict LRU if full.
	if len(s) >= r.assoc {
		s = s[:r.assoc-1]
	}
	r.content[set] = append([]uint64{ba}, s...)
	return false
}

func TestCacheMatchesReferenceModel(t *testing.T) {
	for _, geom := range []struct{ size, assoc, block int }{
		{16 << 10, 4, 64},
		{1 << 10, 1, 32},
		{4 << 10, 8, 64},
		{2 << 10, 2, 128},
	} {
		next := &fixedLevel{latency: 6}
		c := New(Config{
			Name: "dut", Size: geom.size, Assoc: geom.assoc, BlockSize: geom.block,
			HitLatency: 1, Policy: WriteBack, Next: next,
		})
		ref := newRefCache(geom.size, geom.assoc, geom.block)
		rng := rand.New(rand.NewSource(int64(geom.size)))

		var prev Stats
		for i := 0; i < 20000; i++ {
			// Mix of hot and cold addresses to exercise all transitions.
			var addr uint64
			if rng.Intn(2) == 0 {
				addr = uint64(rng.Intn(64)) * uint64(geom.block) // hot
			} else {
				addr = uint64(rng.Intn(1 << 16))
			}
			kind := Read
			if rng.Intn(4) == 0 {
				kind = Write
			}
			lat := c.Access(uint64(i), addr, kind)
			wantHit := ref.access(addr)
			gotHit := lat == 1
			if kind == Write {
				// Write-back writes are hits when no new miss was counted.
				s := c.Stats()
				gotHit = s.WriteMisses == prev.WriteMisses
			}
			if gotHit != wantHit {
				t.Fatalf("geom %+v op %d addr %#x: dut hit=%v, reference hit=%v",
					geom, i, addr, gotHit, wantHit)
			}
			prev = c.Stats()
		}
	}
}
