package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// fixedLevel is a test double for the next level with a constant latency.
type fixedLevel struct {
	latency  uint64
	accesses []Kind
	addrs    []uint64
}

func (f *fixedLevel) Access(_ uint64, addr uint64, kind Kind) uint64 {
	f.accesses = append(f.accesses, kind)
	f.addrs = append(f.addrs, addr)
	return f.latency
}

func newTestCache(size, assoc, block int, next Level) *Cache {
	return New(Config{
		Name: "t", Size: size, Assoc: assoc, BlockSize: block,
		HitLatency: 1, Policy: WriteBack, Next: next,
	})
}

func TestHitAndMissLatency(t *testing.T) {
	next := &fixedLevel{latency: 6}
	c := newTestCache(1024, 2, 64, next)
	if lat := c.Access(0, 0x100, Read); lat != 7 {
		t.Errorf("cold miss latency = %d, want 7 (1 + 6)", lat)
	}
	if lat := c.Access(1, 0x100, Read); lat != 1 {
		t.Errorf("hit latency = %d, want 1", lat)
	}
	if lat := c.Access(2, 0x13f, Read); lat != 1 {
		t.Errorf("same-block hit latency = %d, want 1", lat)
	}
	s := c.Stats()
	if s.Reads != 3 || s.ReadMisses != 1 {
		t.Errorf("stats = %+v, want 3 reads / 1 miss", s)
	}
}

func TestLRUReplacement(t *testing.T) {
	next := &fixedLevel{latency: 6}
	// 2-way, 64B blocks, 2 sets: set = blockAddr % 2.
	c := newTestCache(256, 2, 64, next)
	// Three blocks in set 0: 0x000, 0x100, 0x200.
	c.Access(0, 0x000, Read)
	c.Access(1, 0x100, Read)
	c.Access(2, 0x000, Read) // refresh 0x000; 0x100 becomes LRU
	c.Access(3, 0x200, Read) // evicts 0x100
	if !c.Contains(0x000) {
		t.Error("0x000 should survive (recently used)")
	}
	if c.Contains(0x100) {
		t.Error("0x100 should have been evicted (LRU)")
	}
	if !c.Contains(0x200) {
		t.Error("0x200 should be resident")
	}
}

func TestWriteBackDirtyEviction(t *testing.T) {
	next := &fixedLevel{latency: 6}
	c := newTestCache(128, 1, 64, next) // direct-mapped, 2 sets
	c.Access(0, 0x000, Write)           // miss, allocate dirty
	next.accesses = nil
	c.Access(1, 0x100, Read) // same set, evicts dirty 0x000
	s := c.Stats()
	if s.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", s.Writebacks)
	}
	// Next level saw the demand fill (Read) and the writeback (Write).
	var reads, writes int
	for _, k := range next.accesses {
		switch k {
		case Read:
			reads++
		case Write:
			writes++
		}
	}
	if reads != 1 || writes != 1 {
		t.Errorf("next-level traffic reads=%d writes=%d, want 1/1", reads, writes)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	next := &fixedLevel{latency: 6}
	c := newTestCache(128, 1, 64, next)
	c.Access(0, 0x000, Read)
	c.Access(1, 0x100, Read) // evicts clean line
	if s := c.Stats(); s.Writebacks != 0 {
		t.Errorf("writebacks = %d, want 0", s.Writebacks)
	}
}

func TestWriteThroughForwardsWrites(t *testing.T) {
	next := &fixedLevel{latency: 6}
	c := New(Config{
		Name: "wt", Size: 256, Assoc: 2, BlockSize: 64,
		HitLatency: 1, Policy: WriteThrough, Next: next,
	})
	c.Access(0, 0x000, Read) // fill
	next.accesses = nil
	// Write hit: forwarded, line not dirtied.
	if lat := c.Access(1, 0x000, Write); lat != 7 {
		t.Errorf("write-through write latency = %d, want 7", lat)
	}
	if len(next.accesses) != 1 || next.accesses[0] != Write {
		t.Errorf("next-level should see exactly the forwarded write, got %v", next.accesses)
	}
	// Write miss: no allocate.
	c.Access(2, 0x400, Write)
	if c.Contains(0x400) {
		t.Error("write-through should not allocate on write miss")
	}
	// Evictions never write back (nothing is dirty).
	s := c.Stats()
	if s.Writebacks != 0 {
		t.Errorf("write-through writebacks = %d, want 0", s.Writebacks)
	}
	if s.WriteThroughs != 2 {
		t.Errorf("writeThroughs = %d, want 2", s.WriteThroughs)
	}
}

func TestWriteThroughWithBufferNoStallWhenEmpty(t *testing.T) {
	next := &fixedLevel{latency: 6}
	wb := NewWriteBuffer(8, 6, next)
	c := New(Config{
		Name: "wt", Size: 256, Assoc: 2, BlockSize: 64,
		HitLatency: 1, Policy: WriteThrough, Next: next, WriteBuf: wb,
	})
	if lat := c.Access(0, 0x000, Write); lat != 1 {
		t.Errorf("buffered write latency = %d, want 1", lat)
	}
}

func TestWriteBufferCoalescing(t *testing.T) {
	next := &fixedLevel{latency: 6}
	wb := NewWriteBuffer(8, 6, next)
	wb.Add(0, 42)
	wb.Add(0, 42) // same block: coalesces
	s := wb.Stats()
	if s.Adds != 1 || s.Coalesced != 1 {
		t.Errorf("stats = %+v, want 1 add / 1 coalesced", s)
	}
	wb.Drain(0)
	if wb.Len() != 1 {
		t.Errorf("pending = %d, want 1", wb.Len())
	}
}

func TestWriteBufferDrains(t *testing.T) {
	next := &fixedLevel{latency: 6}
	wb := NewWriteBuffer(8, 10, next)
	wb.Add(0, 1)
	wb.Add(0, 2)
	wb.Drain(5)
	if wb.Len() != 2 {
		t.Errorf("pending@5 = %d, want 2", wb.Len())
	}
	wb.Drain(10)
	if wb.Len() != 1 {
		t.Errorf("pending@10 = %d, want 1", wb.Len())
	}
	wb.Drain(20)
	if wb.Len() != 0 {
		t.Errorf("pending@20 = %d, want 0", wb.Len())
	}
	if got := wb.Stats().Retired; got != 2 {
		t.Errorf("retired = %d, want 2", got)
	}
	if len(next.accesses) != 2 {
		t.Errorf("next level saw %d writes, want 2", len(next.accesses))
	}
}

// monotonicLevel fails the test if it ever sees time run backwards across
// Access calls, regardless of which component issued them.
type monotonicLevel struct {
	t       *testing.T
	latency uint64
	last    uint64
	seen    int
}

func (m *monotonicLevel) Access(now uint64, addr uint64, kind Kind) uint64 {
	if now < m.last {
		m.t.Errorf("next level saw time run backwards: %d after %d (addr %#x, kind %v)",
			now, m.last, addr, kind)
	}
	m.last = now
	m.seen++
	return m.latency
}

// Regression test: a write buffer left idle long enough accumulates overdue
// retirements (frontDone far in the past). Before the monotonic clamp, a
// later Add or Drain would forward those entries to the next level at their
// stale frontDone timestamps — *earlier* than demand misses the same next
// level had already served — so the shared L2 timeline ran backwards.
func TestWriteBufferDrainTimestampsMonotonic(t *testing.T) {
	next := &monotonicLevel{t: t, latency: 6}
	wb := NewWriteBuffer(8, 10, next)

	// Enqueue a few writes early; their retirement slots are cycles 10,
	// 20, 30, all long overdue by the time anything drains them.
	wb.Add(0, 1)
	wb.Add(1, 2)
	wb.Add(2, 3)

	// A demand miss stream hits the same next level at much later cycles.
	next.Access(500, 0x1000, Read)
	next.Access(600, 0x2000, Read)

	// Now the overdue entries drain: every forwarded timestamp must be
	// >= 600, not the stale 10/20/30.
	wb.Add(700, 4)
	if next.last < 600 {
		t.Fatalf("drain rewound the clock to %d", next.last)
	}

	// And interleave once more: idle again, demand misses advance time,
	// then an explicit Drain retires the leftovers.
	next.Access(900, 0x3000, Read)
	wb.Drain(950)
	if wb.Len() != 0 {
		t.Fatalf("pending = %d, want 0 after drain", wb.Len())
	}
	if next.seen < 7 {
		t.Fatalf("next level saw %d accesses, want >= 7", next.seen)
	}
}

// An Add that stalls on a full buffer must also respect monotonicity: the
// freed slot's retirement is issued no earlier than anything already seen.
func TestWriteBufferStallDrainMonotonic(t *testing.T) {
	next := &monotonicLevel{t: t, latency: 6}
	wb := NewWriteBuffer(2, 10, next)
	wb.Add(0, 1) // front retires at 10
	wb.Add(0, 2) // queued behind it
	next.Access(5, 0x1000, Read)
	if stall := wb.Add(0, 3); stall != 10 {
		t.Errorf("stall = %d, want 10", stall)
	}
}

func TestWriteBufferFullStalls(t *testing.T) {
	next := &fixedLevel{latency: 6}
	wb := NewWriteBuffer(2, 10, next)
	wb.Add(0, 1) // front retires at 10
	wb.Add(0, 2)
	stall := wb.Add(0, 3) // full: waits for front
	if stall != 10 {
		t.Errorf("stall = %d, want 10", stall)
	}
	s := wb.Stats()
	if s.Stalls != 1 || s.StallCycles != 10 {
		t.Errorf("stats = %+v, want 1 stall / 10 cycles", s)
	}
}

func TestMemoryDeterministicContent(t *testing.T) {
	m := NewMemory(100, 64)
	a := m.FetchBlock(7)
	b := m.FetchBlock(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("FetchBlock should be deterministic")
		}
	}
	c := m.FetchBlock(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different blocks should have different synthesized content")
	}
}

func TestMemoryWriteReadBack(t *testing.T) {
	m := NewMemory(100, 64)
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i * 3)
	}
	m.WriteBlock(5, data)
	data[0] = 0xff // caller mutation must not leak in
	got := m.FetchBlock(5)
	if got[0] != 0 || got[1] != 3 {
		t.Errorf("read back = %v...", got[:2])
	}
	got[1] = 0xee // returned slice mutation must not leak back
	again := m.FetchBlock(5)
	if again[1] != 3 {
		t.Error("FetchBlock must return a copy")
	}
}

func TestMemoryAccessLatency(t *testing.T) {
	m := NewMemory(100, 64)
	if lat := m.Access(0, 0, Read); lat != 100 {
		t.Errorf("latency = %d, want 100", lat)
	}
	if m.Accesses() != 1 {
		t.Errorf("accesses = %d, want 1", m.Accesses())
	}
}

// Property: a cache never reports more misses than accesses, and residency
// after an access always holds for the accessed block (write-back policy).
func TestCacheInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		next := &fixedLevel{latency: 6}
		c := newTestCache(1024, 4, 64, next)
		for i := 0; i < 500; i++ {
			addr := uint64(rng.Intn(1 << 14))
			kind := Read
			if rng.Intn(3) == 0 {
				kind = Write
			}
			c.Access(uint64(i), addr, kind)
			if !c.Contains(addr) {
				return false
			}
		}
		s := c.Stats()
		return s.Misses() <= s.Accesses() && s.MissRate() >= 0 && s.MissRate() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestConfigValidation(t *testing.T) {
	next := &fixedLevel{}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("zero size", func() {
		New(Config{Size: 0, Assoc: 1, BlockSize: 64, Next: next})
	})
	mustPanic("non-pow2 block", func() {
		New(Config{Size: 1024, Assoc: 1, BlockSize: 48, Next: next})
	})
	mustPanic("nil next", func() {
		New(Config{Size: 1024, Assoc: 1, BlockSize: 64})
	})
	mustPanic("non-pow2 sets", func() {
		New(Config{Size: 3 * 64, Assoc: 1, BlockSize: 64, Next: next})
	})
	mustPanic("membloc", func() { NewMemory(1, 0) })
	mustPanic("wb entries", func() { NewWriteBuffer(0, 1, next) })
	mustPanic("wb next", func() { NewWriteBuffer(1, 1, nil) })
}

func TestKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" || Fetch.String() != "fetch" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should stringify")
	}
}
