package cache

import "testing"

// recordingLevel records every access it sees: kind, block-aligned
// address, and timestamp, returning a fixed latency.
type recordingLevel struct {
	latency uint64
	kinds   []Kind
	addrs   []uint64
	times   []uint64
}

func (r *recordingLevel) Access(now uint64, addr uint64, kind Kind) uint64 {
	r.kinds = append(r.kinds, kind)
	r.addrs = append(r.addrs, addr)
	r.times = append(r.times, now)
	return r.latency
}

// TestMemoryAccessKindSplit pins the memory-tier accounting fix: Access
// must bucket traffic by Kind (reads, writes, fetches) instead of one
// undifferentiated counter, with Accesses() staying the total so existing
// reports are unchanged.
func TestMemoryAccessKindSplit(t *testing.T) {
	m := NewMemory(100, 64)
	for i := 0; i < 2; i++ {
		if lat := m.Access(uint64(i), 0x40, Read); lat != 100 {
			t.Fatalf("read latency = %d, want 100", lat)
		}
	}
	for i := 0; i < 3; i++ {
		if lat := m.Access(uint64(i), 0x80, Write); lat != 100 {
			t.Fatalf("write latency = %d, want 100", lat)
		}
	}
	if lat := m.Access(9, 0xc0, Fetch); lat != 100 {
		t.Fatalf("fetch latency = %d, want 100", lat)
	}
	if m.Reads() != 2 || m.Writes() != 3 || m.Fetches() != 1 {
		t.Errorf("split = %d/%d/%d reads/writes/fetches, want 2/3/1",
			m.Reads(), m.Writes(), m.Fetches())
	}
	if m.Accesses() != 6 {
		t.Errorf("Accesses() = %d, want 6 (the total must stay the sum)", m.Accesses())
	}
	m.Reset()
	if m.Reads() != 0 || m.Writes() != 0 || m.Fetches() != 0 || m.Accesses() != 0 {
		t.Errorf("Reset left counters: %d/%d/%d", m.Reads(), m.Writes(), m.Fetches())
	}
}

// TestDirtyEvictionBufferedWritebackContract pins the buffered-writeback
// contract documented on Cache.allocate: a dirty victim is forwarded to
// the next level as a Write at the demand miss's timestamp — counted in
// the next level's write statistics — and its latency is deliberately
// discarded (write-backs ride a dedicated eviction buffer, so only the
// demand fill is charged to the miss).
func TestDirtyEvictionBufferedWritebackContract(t *testing.T) {
	next := &recordingLevel{latency: 40}
	c := newTestCache(128, 1, 64, next) // direct-mapped, 2 sets
	c.Access(0, 0x000, Write)           // miss, allocate dirty
	next.kinds, next.addrs, next.times = nil, nil, nil

	lat := c.Access(100, 0x100, Read) // same set: evicts dirty 0x000
	if lat != 41 {
		t.Errorf("demand miss latency = %d, want 41 (1 + 40 fill): the write-back's latency must be discarded", lat)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
	if len(next.kinds) != 2 {
		t.Fatalf("next level saw %d accesses (%v), want fill + write-back", len(next.kinds), next.kinds)
	}
	// Call order is fill first (it determines the miss latency), then the
	// buffered write-back stamped at the demand miss's own timestamp.
	if next.kinds[0] != Read || next.addrs[0] != 0x100 || next.times[0] != 101 {
		t.Errorf("fill = %v %#x @%d, want Read 0x100 @101", next.kinds[0], next.addrs[0], next.times[0])
	}
	if next.kinds[1] != Write || next.addrs[1] != 0x000 || next.times[1] != 100 {
		t.Errorf("write-back = %v %#x @%d, want Write 0x000 @100 (the demand miss's timestamp)",
			next.kinds[1], next.addrs[1], next.times[1])
	}
}

// TestDirtyEvictionOccupiesNextLevelPort pins the port half of the
// contract: the write-back is free for the evicting miss but occupies the
// next level's port, so demand traffic right behind it stalls.
func TestDirtyEvictionOccupiesNextLevelPort(t *testing.T) {
	mem := &recordingLevel{latency: 100}
	next := New(Config{
		Name: "l2", Size: 4096, Assoc: 4, BlockSize: 64,
		HitLatency: 6, Policy: WriteBack, Next: mem,
		PortOccupancy: 4,
	})
	c := New(Config{
		Name: "l1", Size: 128, Assoc: 1, BlockSize: 64,
		HitLatency: 1, Policy: WriteBack, Next: next,
	})
	// Warm the next level so later fills hit there.
	next.Access(0, 0x100, Read)
	next.Access(10, 0x200, Read)

	c.Access(1000, 0x000, Write) // miss, allocate dirty
	// Evicting miss: fill at 2001 (next port until 2005), write-back at
	// 2000 queues behind it (port until 2009).
	c.Access(2000, 0x100, Read)
	// A demand miss right behind the write-back waits for the port: fill
	// issued at 2003 stalls 6 cycles, then hits in 6 more.
	if lat := c.Access(2002, 0x200, Read); lat != 13 {
		t.Errorf("post-write-back miss latency = %d, want 13 (1 + 6 port stall + 6 hit)", lat)
	}
	if stalls := next.Stats().PortStallCycles; stalls == 0 {
		t.Error("write-back occupied no next-level port time")
	}
}
