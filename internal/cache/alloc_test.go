package cache

import "testing"

// The generic cache level (iL1/L2 modeling) must stay allocation-free per
// access once warmed: its tag array is fixed at New and hits/misses only
// update in-place state.
func TestAccessAllocFree(t *testing.T) {
	next := &fixedLevel{latency: 10}
	c := newTestCache(1<<14, 4, 64, next)
	// Working set twice the cache: a steady mix of hits and miss/evict.
	const blocks = 512
	for i := uint64(0); i < 4*blocks; i++ {
		c.Access(i, i%blocks*64, Write)
	}
	var i uint64
	got := testing.AllocsPerRun(1000, func() {
		c.Access(4*blocks+i, i%blocks*64, Read)
		c.Access(4*blocks+i, (i+3)%blocks*64, Write)
		i++
	})
	if got != 0 {
		t.Errorf("cache access allocates %.1f objects per access, want 0", got)
	}
}

// The coalescing write buffer reaches a steady state where adds reuse the
// queue's capacity and drains shrink it in place.
func TestWriteBufferAllocFree(t *testing.T) {
	next := &fixedLevel{latency: 6}
	// fixedLevel.Access appends to its log slices; pre-grow them so the
	// spy itself does not count against the buffer.
	next.accesses = make([]Kind, 0, 1<<20)
	next.addrs = make([]uint64, 0, 1<<20)
	wb := NewWriteBuffer(8, 6, next)
	for i := uint64(0); i < 64; i++ {
		wb.Add(i*3, i%16)
	}
	var now uint64 = 1 << 10
	got := testing.AllocsPerRun(1000, func() {
		wb.Add(now, now%16)
		wb.Drain(now + 2)
		now += 3
	})
	if got != 0 {
		t.Errorf("write buffer allocates %.1f objects per add/drain, want 0", got)
	}
}
