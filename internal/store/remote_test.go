package store

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/metrics"
)

// shardHandler is a minimal in-test server speaking the /store/v1
// protocol, the same contract internal/serve implements for icrd.
type shardHandler struct {
	mu     sync.Mutex
	data   map[string][]byte
	claims map[string]bool
}

func newShardHandler() *shardHandler {
	return &shardHandler{data: make(map[string][]byte), claims: make(map[string]bool)}
}

func (h *shardHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch {
	case strings.HasPrefix(r.URL.Path, ClaimPathPrefix):
		key := strings.TrimPrefix(r.URL.Path, ClaimPathPrefix)
		switch r.Method {
		case http.MethodPost:
			cr := ClaimResponse{State: ClaimGranted}
			if _, ok := h.data[key]; ok {
				cr = ClaimResponse{State: ClaimDone}
			} else if h.claims[key] {
				cr = ClaimResponse{State: ClaimWait, RetryAfterMS: 5}
			} else {
				h.claims[key] = true
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(cr) //nolint // test server
		case http.MethodDelete:
			delete(h.claims, key)
			w.WriteHeader(http.StatusNoContent)
		default:
			w.WriteHeader(http.StatusMethodNotAllowed)
		}
	case strings.HasPrefix(r.URL.Path, StorePathPrefix):
		key := strings.TrimPrefix(r.URL.Path, StorePathPrefix)
		switch r.Method {
		case http.MethodGet:
			body, ok := h.data[key]
			if !ok {
				http.Error(w, "miss", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(body) //nolint // test server
		case http.MethodPut:
			var rep metrics.Report
			if err := json.NewDecoder(r.Body).Decode(&rep); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			body, _ := json.Marshal(&rep)
			h.data[key] = body
			delete(h.claims, key)
			w.WriteHeader(http.StatusNoContent)
		default:
			w.WriteHeader(http.StatusMethodNotAllowed)
		}
	default:
		http.NotFound(w, r)
	}
}

func TestRemoteRoundTrip(t *testing.T) {
	srv := httptest.NewServer(newShardHandler())
	defer srv.Close()
	r := NewRemote(srv.URL, srv.Client())
	key := keyN(0)

	if _, err := r.Get(ctx, key); !errors.Is(err, ErrMiss) {
		t.Fatalf("cold Get = %v, want ErrMiss", err)
	}
	want := testReport(42)
	if err := r.Put(ctx, key, want); err != nil {
		t.Fatal(err)
	}
	got, err := r.Get(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != want.Cycles || got.Benchmark != want.Benchmark {
		t.Errorf("round trip mangled the report: got %+v", got)
	}
	st := r.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.ReadErrors != 0 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 put", st)
	}
}

func TestRemoteClaimProtocol(t *testing.T) {
	srv := httptest.NewServer(newShardHandler())
	defer srv.Close()
	r := NewRemote(srv.URL, srv.Client())
	key := keyN(1)

	cr, err := r.Claim(ctx, key)
	if err != nil || cr.State != ClaimGranted {
		t.Fatalf("first claim = %+v, %v; want granted", cr, err)
	}
	cr, err = r.Claim(ctx, key)
	if err != nil || cr.State != ClaimWait {
		t.Fatalf("second claim = %+v, %v; want wait", cr, err)
	}
	if cr.RetryAfterMS <= 0 {
		t.Error("wait response carried no retry hint")
	}
	// The result landing clears the claim: claims now answer done.
	if err := r.Put(ctx, key, testReport(1)); err != nil {
		t.Fatal(err)
	}
	cr, err = r.Claim(ctx, key)
	if err != nil || cr.State != ClaimDone {
		t.Fatalf("claim after result = %+v, %v; want done", cr, err)
	}
	// Unclaim releases an orphaned claim.
	key2 := keyN(2)
	if cr, _ := r.Claim(ctx, key2); cr.State != ClaimGranted {
		t.Fatal("setup claim not granted")
	}
	if err := r.Unclaim(ctx, key2); err != nil {
		t.Fatal(err)
	}
	if cr, _ := r.Claim(ctx, key2); cr.State != ClaimGranted {
		t.Error("released claim not re-granted")
	}
}

// TestRemoteServerErrorsSurface: a 5xx shard answer is an error with the
// shard's identity in it — never a silent miss.
func TestRemoteServerErrorsSurface(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "draining", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	r := NewRemote(srv.URL, srv.Client())
	key := keyN(3)

	if _, err := r.Get(ctx, key); err == nil || errors.Is(err, ErrMiss) {
		t.Fatalf("Get against 503 = %v, want a non-miss error", err)
	}
	if err := r.Put(ctx, key, testReport(1)); err == nil {
		t.Fatal("Put against 503 succeeded")
	}
	if _, err := r.Claim(ctx, key); err == nil {
		t.Fatal("Claim against 503 succeeded")
	}
	st := r.Stats()
	if st.ReadErrors != 1 || st.PutErrors != 1 {
		t.Errorf("stats = %+v, want 1 read error and 1 put error", st)
	}
}

// TestRemoteDeadShard: connection refused surfaces as an error.
func TestRemoteDeadShard(t *testing.T) {
	srv := httptest.NewServer(newShardHandler())
	srv.Close() // immediately: the port now refuses connections
	r := NewRemote(srv.URL, nil)
	if _, err := r.Get(ctx, keyN(4)); err == nil || errors.Is(err, ErrMiss) {
		t.Fatalf("Get against dead shard = %v, want a non-miss error", err)
	}
}

// TestRemoteName: bare host:port normalizes to a scheme-qualified ring
// identity, so "h1:8080" and "http://h1:8080" hash identically.
func TestRemoteName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"host:9000", "http://host:9000"},
		{"http://host:9000", "http://host:9000"},
		{"http://host:9000/", "http://host:9000"},
		{"https://host:9000", "https://host:9000"},
	} {
		if got := NewRemote(tc.in, nil).Name(); got != tc.want {
			t.Errorf("NewRemote(%q).Name() = %q, want %q", tc.in, got, tc.want)
		}
	}
}
