package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

// shardNames is the canonical 3-shard fleet used across the ring tests.
var shardNames = []string{
	"http://10.0.0.1:8080",
	"http://10.0.0.2:8080",
	"http://10.0.0.3:8080",
}

// syntheticKey derives a store-shaped key (sha256 hex) from an index, the
// same way icrload builds its keyspace.
func syntheticKey(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return hex.EncodeToString(sum[:])
}

// TestRingPlacementGolden pins key→shard placement: the ring is a pure
// function of (nodes, vnodes, key), and every client in a fleet — and
// every future build — must agree on it, or the fleet silently loses its
// cache. If this golden changes, placement changed, and a deployed fleet
// would re-simulate its whole working set.
func TestRingPlacementGolden(t *testing.T) {
	r, err := NewRing(shardNames, 0)
	if err != nil {
		t.Fatal(err)
	}
	golden := map[string]string{
		syntheticKey(0): "http://10.0.0.2:8080",
		syntheticKey(1): "http://10.0.0.2:8080",
		syntheticKey(2): "http://10.0.0.3:8080",
		syntheticKey(3): "http://10.0.0.1:8080",
		syntheticKey(4): "http://10.0.0.3:8080",
		syntheticKey(5): "http://10.0.0.3:8080",
		syntheticKey(6): "http://10.0.0.1:8080",
		syntheticKey(7): "http://10.0.0.3:8080",
	}
	for key, want := range golden {
		if got := r.Owner(key); got != want {
			t.Errorf("Owner(%s) = %s, want %s", key[:12], got, want)
		}
	}
}

// TestRingPlacementOrderIndependent: construction order must not affect
// placement — clients receive the shard list from flags in whatever order
// the operator typed it.
func TestRingPlacementOrderIndependent(t *testing.T) {
	a, err := NewRing(shardNames, 0)
	if err != nil {
		t.Fatal(err)
	}
	reversed := []string{shardNames[2], shardNames[1], shardNames[0]}
	b, err := NewRing(reversed, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := syntheticKey(i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("placement depends on construction order at key %d", i)
		}
	}
}

// TestRingBalance: with default vnodes, no shard of 3 owns a share wildly
// off 1/3 (the consistent-hash load guarantee the fleet sizing relies
// on).
func TestRingBalance(t *testing.T) {
	r, err := NewRing(shardNames, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 30000
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		counts[r.Owner(syntheticKey(i))]++
	}
	for node, c := range counts {
		share := float64(c) / n
		if share < 0.20 || share > 0.47 {
			t.Errorf("node %s owns %.1f%% of keys, want near 33%%", node, share*100)
		}
	}
}

// TestRingRebalanceBound is the consistent-hashing contract: adding or
// removing one shard moves at most ~1/N of the keyspace (≤ 2/N with
// vnode variance), never a full reshuffle.
func TestRingRebalanceBound(t *testing.T) {
	const n = 20000
	for _, tc := range []struct {
		name   string
		before []string
		after  []string
	}{
		{
			name:   "add-fourth-shard",
			before: shardNames,
			after:  append(append([]string{}, shardNames...), "http://10.0.0.4:8080"),
		},
		{
			name:   "remove-third-shard",
			before: shardNames,
			after:  shardNames[:2],
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rb, err := NewRing(tc.before, 0)
			if err != nil {
				t.Fatal(err)
			}
			ra, err := NewRing(tc.after, 0)
			if err != nil {
				t.Fatal(err)
			}
			moved := 0
			for i := 0; i < n; i++ {
				key := syntheticKey(i)
				if rb.Owner(key) != ra.Owner(key) {
					moved++
				}
			}
			// N is the larger fleet size in both directions.
			bigger := len(tc.before)
			if len(tc.after) > bigger {
				bigger = len(tc.after)
			}
			bound := int(2.0 / float64(bigger) * n)
			if moved > bound {
				t.Errorf("%d/%d keys moved, bound 2/N = %d", moved, n, bound)
			}
			if moved == 0 {
				t.Error("no keys moved; the ring change was not observed")
			}
		})
	}
}

// TestRingReplicas: the replica set starts at the owner, holds distinct
// nodes, and clamps to the fleet size.
func TestRingReplicas(t *testing.T) {
	r, err := NewRing(shardNames, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		key := syntheticKey(i)
		reps := r.Replicas(key, 2)
		if len(reps) != 2 {
			t.Fatalf("Replicas(2) returned %d nodes", len(reps))
		}
		if reps[0] != r.Owner(key) {
			t.Errorf("Replicas[0] = %s, Owner = %s", reps[0], r.Owner(key))
		}
		if reps[0] == reps[1] {
			t.Error("duplicate node in replica set")
		}
		all := r.Replicas(key, 99)
		if len(all) != len(shardNames) {
			t.Errorf("Replicas(99) = %d nodes, want fleet size %d", len(all), len(shardNames))
		}
	}
}

// TestRingRejectsBadConfigs: empty fleets, empty names, duplicates.
func TestRingRejectsBadConfigs(t *testing.T) {
	for _, nodes := range [][]string{
		nil,
		{},
		{""},
		{"a", "a"},
	} {
		if _, err := NewRing(nodes, 0); err == nil {
			t.Errorf("NewRing(%q) accepted a bad config", nodes)
		}
	}
}
