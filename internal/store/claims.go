package store

import (
	"sync"
	"time"
)

// DefaultClaimTTL bounds how long a granted simulation claim shields a
// key from other claimants. A claimant that crashes (or loses its
// network) simply lets the claim expire, and the next claimant takes
// over — the fleet can stall on a key for at most one TTL.
const DefaultClaimTTL = 2 * time.Minute

// ClaimTable is the shard-server side of the fleet-wide anti-stampede
// protocol: at most one unexpired claim exists per key, so of all the
// clients that miss on a cold popular key, exactly one simulates it and
// the rest wait for the result to appear. It is the cross-fleet
// generalization of the runner's in-process singleflight.
//
// The table is in-memory and per-shard: a claim is only meaningful on the
// key's owning shard, and losing it on restart is safe (duplicate
// simulation, never wrong results).
type ClaimTable struct {
	ttl time.Duration
	now func() time.Time

	mu     sync.Mutex
	claims map[string]time.Time // key -> expiry
	ops    int                  // Claim calls since the last expired-entry sweep
	stats  struct {
		granted uint64
		waited  uint64
	}
}

// NewClaimTable returns a table whose claims expire after ttl (<= 0 means
// DefaultClaimTTL).
func NewClaimTable(ttl time.Duration) *ClaimTable {
	return NewClaimTableClock(ttl, time.Now)
}

// NewClaimTableClock is NewClaimTable with an injectable clock (tests).
func NewClaimTableClock(ttl time.Duration, now func() time.Time) *ClaimTable {
	if ttl <= 0 {
		ttl = DefaultClaimTTL
	}
	return &ClaimTable{ttl: ttl, now: now, claims: make(map[string]time.Time)}
}

// Claim attempts to claim key. It returns granted=true when the caller
// now holds the claim (no other unexpired claim existed), or
// granted=false with the time remaining on the current holder's claim.
func (t *ClaimTable) Claim(key string) (granted bool, remaining time.Duration) {
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ops++
	if t.ops >= 1024 {
		t.ops = 0
		for k, exp := range t.claims {
			if !exp.After(now) {
				delete(t.claims, k)
			}
		}
	}
	if exp, ok := t.claims[key]; ok && exp.After(now) {
		t.stats.waited++
		return false, exp.Sub(now)
	}
	t.claims[key] = now.Add(t.ttl)
	t.stats.granted++
	return true, 0
}

// Release drops the claim on key, if any. Called when the result lands
// (Put) or the claimant gives up; releasing an absent or expired claim is
// a no-op.
func (t *ClaimTable) Release(key string) {
	t.mu.Lock()
	delete(t.claims, key)
	t.mu.Unlock()
}

// Len returns the number of claims in the table, counting expired ones
// not yet swept.
func (t *ClaimTable) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.claims)
}

// Granted and Waited report cumulative grant/wait counts.
func (t *ClaimTable) Granted() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats.granted
}

// Waited reports how many Claim calls found the key already claimed.
func (t *ClaimTable) Waited() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats.waited
}
