package store

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVnodes is how many points each node contributes to the ring.
// 128 virtual nodes keep the per-node load imbalance within a few percent
// for small fleets while the ring stays tiny (N*128 uint64s).
const DefaultVnodes = 128

// Ring is a consistent-hash ring: keys map to nodes such that adding or
// removing one node moves only ~1/N of the keyspace. Placement is a pure
// function of (node names, vnodes, key), so every client of a fleet —
// across processes and machines — computes the same owner without
// coordination.
//
// A Ring is immutable after New and safe for concurrent use.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // construction order, deduplicated
}

type ringPoint struct {
	hash uint64
	node int // index into nodes
}

// NewRing builds a ring over the given node names with vnodes virtual
// points per node (<= 0 means DefaultVnodes). Node names must be unique
// and non-empty.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("ring: no nodes")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{
		points: make([]ringPoint, 0, len(nodes)*vnodes),
		nodes:  make([]string, 0, len(nodes)),
	}
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("ring: empty node name")
		}
		if seen[n] {
			return nil, fmt.Errorf("ring: duplicate node %q", n)
		}
		seen[n] = true
		idx := len(r.nodes)
		r.nodes = append(r.nodes, n)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: hash64(fmt.Sprintf("%s#%d", n, v)),
				node: idx,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A full 64-bit hash collision between vnode labels is vanishingly
		// rare; break it by node name so placement stays deterministic
		// regardless of construction order.
		return r.nodes[r.points[i].node] < r.nodes[r.points[j].node]
	})
	return r, nil
}

// Nodes returns the node names in construction order. Callers must not
// mutate the returned slice.
func (r *Ring) Nodes() []string { return r.nodes }

// Owner returns the node responsible for key: the first ring point at or
// after the key's hash, wrapping around.
func (r *Ring) Owner(key string) string {
	return r.nodes[r.points[r.search(key)].node]
}

// Replicas returns n distinct nodes for key, starting with the owner and
// walking the ring to successive distinct nodes. n is clamped to the node
// count. The first element is always Owner(key).
func (r *Ring) Replicas(key string, n int) []string {
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	if n <= 0 {
		n = 1
	}
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	i := r.search(key)
	for len(out) < n {
		p := r.points[i]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.nodes[p.node])
		}
		i++
		if i == len(r.points) {
			i = 0
		}
	}
	return out
}

// search returns the index of the first point with hash >= hash64(key),
// wrapping to 0 past the last point.
func (r *Ring) search(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// hash64 is FNV-1a, the ring's placement hash. The result keys are
// already uniform SHA-256 hex, but the ring also hashes arbitrary node
// labels, so it hashes everything the same way.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //icrvet:ignore droppederr hash.Hash.Write never returns an error
	return h.Sum64()
}
