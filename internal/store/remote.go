// remote.go is the client half of the shard protocol: a Backend that
// forwards Get/Put/Claim to one icrd shard's /store/v1/ endpoints. The
// server half lives in internal/serve.
//
// Protocol (all bodies JSON):
//
//	GET    /store/v1/{key}        200 report | 404 miss | 503 draining
//	PUT    /store/v1/{key}        204 stored (also clears any claim)
//	POST   /store/v1/claim/{key}  200 {"state":"granted"|"wait"|"done",
//	                                   "retry_after_ms":N}
//	DELETE /store/v1/claim/{key}  204 released
//
// 429/503 responses carry Retry-After, the same admission discipline as
// the simulation and cluster endpoints.
package store

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"

	"repro/internal/metrics"
)

// StorePathPrefix is where the shard endpoints mount.
const StorePathPrefix = "/store/v1/"

// ClaimPathPrefix is where the claim endpoint mounts.
const ClaimPathPrefix = "/store/v1/claim/"

// ClaimState is the claim endpoint's verdict.
type ClaimState string

const (
	// ClaimGranted: the caller now owns the simulation for this key.
	ClaimGranted ClaimState = "granted"
	// ClaimWait: another client holds the claim; poll again after
	// RetryAfterMS.
	ClaimWait ClaimState = "wait"
	// ClaimDone: the result already exists; re-Get instead of simulating.
	ClaimDone ClaimState = "done"
)

// ClaimResponse is the POST /store/v1/claim/{key} reply body.
type ClaimResponse struct {
	State        ClaimState `json:"state"`
	RetryAfterMS int64      `json:"retry_after_ms,omitempty"`
}

// maxReportBody bounds report and claim response bodies, mirroring the
// serve layer's request bound.
const maxReportBody = 1 << 20

// Remote is the Backend view of one remote shard. It is stateless beyond
// counters; every operation is one HTTP round trip. Safe for concurrent
// use.
type Remote struct {
	base string // http://host:port, no trailing slash
	hc   *http.Client

	hits       atomic.Uint64
	misses     atomic.Uint64
	puts       atomic.Uint64
	readErrors atomic.Uint64
	putErrors  atomic.Uint64
}

// Backend conformance.
var _ Backend = (*Remote)(nil)

// defaultRemoteClient is shared by every Remote built without an explicit
// client: one transport with a deep idle-connection pool, so thousands of
// synthetic load-test clients multiplex over a bounded connection set.
var defaultRemoteClient = &http.Client{
	Transport: &http.Transport{
		MaxIdleConns:        512,
		MaxIdleConnsPerHost: 256,
	},
}

// NewRemote returns a client for the shard at base (scheme://host:port;
// a bare host:port gets http://). hc may be nil for a shared default
// tuned for many concurrent callers.
func NewRemote(base string, hc *http.Client) *Remote {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	if hc == nil {
		hc = defaultRemoteClient
	}
	return &Remote{base: base, hc: hc}
}

// Name returns the shard's base URL: its identity on the ring.
func (r *Remote) Name() string { return r.base }

// Get fetches the report for key from the shard. 404 is ErrMiss; any
// transport failure or non-2xx status is surfaced (and counted) so a dead
// shard is never mistaken for an empty one.
func (r *Remote) Get(ctx context.Context, key string) (*metrics.Report, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+StorePathPrefix+key, nil)
	if err != nil {
		return nil, fmt.Errorf("store: shard %s: %w", r.base, err)
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		r.readErrors.Add(1)
		return nil, fmt.Errorf("store: shard %s: %w", r.base, err)
	}
	defer drainClose(resp.Body)
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		r.misses.Add(1)
		return nil, ErrMiss
	default:
		r.readErrors.Add(1)
		return nil, fmt.Errorf("store: shard %s: GET %s: status %d", r.base, key, resp.StatusCode)
	}
	var rep metrics.Report
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxReportBody)).Decode(&rep); err != nil {
		if errors.Is(err, metrics.ErrReportSchema) {
			// A shard running an older build served a stale-schema report:
			// invalid, not sick. Degrade to a miss so the caller
			// re-simulates under the current schema.
			r.misses.Add(1)
			return nil, fmt.Errorf("%w: %v", ErrMiss, err)
		}
		r.readErrors.Add(1)
		return nil, fmt.Errorf("store: shard %s: decoding report: %w", r.base, err)
	}
	r.hits.Add(1)
	return &rep, nil
}

// Put uploads the report for key to the shard.
func (r *Remote) Put(ctx context.Context, key string, rep *metrics.Report) error {
	if rep == nil {
		return errors.New("store: nil report")
	}
	body, err := json.Marshal(rep)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, r.base+StorePathPrefix+key, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("store: shard %s: %w", r.base, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.hc.Do(req)
	if err != nil {
		r.putErrors.Add(1)
		return fmt.Errorf("store: shard %s: %w", r.base, err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		r.putErrors.Add(1)
		return fmt.Errorf("store: shard %s: PUT %s: status %d", r.base, key, resp.StatusCode)
	}
	r.puts.Add(1)
	return nil
}

// Claim asks the shard's claim endpoint who should simulate key.
func (r *Remote) Claim(ctx context.Context, key string) (ClaimResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+ClaimPathPrefix+key, nil)
	if err != nil {
		return ClaimResponse{}, fmt.Errorf("store: shard %s: %w", r.base, err)
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return ClaimResponse{}, fmt.Errorf("store: shard %s: %w", r.base, err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return ClaimResponse{}, fmt.Errorf("store: shard %s: claim %s: status %d", r.base, key, resp.StatusCode)
	}
	var cr ClaimResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxReportBody)).Decode(&cr); err != nil {
		return ClaimResponse{}, fmt.Errorf("store: shard %s: decoding claim: %w", r.base, err)
	}
	return cr, nil
}

// Unclaim releases a previously granted claim (the simulation failed and
// no Put will clear it). Best-effort: an error just means waiters ride
// out the claim TTL.
func (r *Remote) Unclaim(ctx context.Context, key string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, r.base+ClaimPathPrefix+key, nil)
	if err != nil {
		return fmt.Errorf("store: shard %s: %w", r.base, err)
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return fmt.Errorf("store: shard %s: %w", r.base, err)
	}
	drainClose(resp.Body)
	return nil
}

// Stats reports the client-side counters for this shard. Entries/Bytes
// stay zero: occupancy lives on the shard, visible in its /debug/vars.
func (r *Remote) Stats() Stats {
	return Stats{
		Hits:       r.hits.Load(),
		Misses:     r.misses.Load(),
		Puts:       r.puts.Load(),
		ReadErrors: r.readErrors.Load(),
		PutErrors:  r.putErrors.Load(),
	}
}

// Drain implements Backend: the client has no background work, so it just
// releases idle connections.
func (r *Remote) Drain() { r.hc.CloseIdleConnections() }

// drainClose consumes and closes a response body so the connection is
// reusable.
func drainClose(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, maxReportBody)) //icrvet:ignore droppederr best-effort drain for connection reuse
	body.Close()                                             //icrvet:ignore droppederr response body close has nothing actionable to report
}
