// sharded.go is the fleet view of the result store: a Backend that
// consistent-hashes keys over a static ring of shard nodes, in the style
// of a memcache deployment.
//
//   - Look-aside reads: Get consults the key's owner shard (and, for hot
//     keys, its replicas); a miss means the caller simulates and writes
//     the result back through Put.
//   - Write-through: Put always lands on the owner; hot keys are also
//     written to R-1 ring successors, so popular results survive a shard
//     loss and their read load spreads over R nodes.
//   - Hot-key tracking: a windowed, decaying hit counter promotes the
//     top-most-requested keys into the hot set (promotion at
//     PromoteHits, demotion at the lower DemoteHits — hysteresis, so a
//     key does not flap at the threshold).
//   - Anti-stampede: Claim coordinates "who simulates this key" through
//     the owning shard's claim endpoint, generalizing the runner's
//     in-process singleflight to the whole fleet: a cold popular key
//     triggers exactly one simulation no matter how many front ends miss
//     on it concurrently.
//
// Failure model: a dead or draining shard degrades service, never
// correctness. Gets surface an error (the runner counts it and
// re-simulates), Puts to the owner fail loudly, claim trouble falls back
// to local simulation — and because keys are content-addressed, duplicate
// simulation is wasted work, not wrong results.
package store

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Shard is one node of the fleet as the Sharded backend sees it:
// *Remote, or an in-process fake in tests.
type Shard interface {
	Name() string
	Get(ctx context.Context, key string) (*metrics.Report, error)
	Put(ctx context.Context, key string, rep *metrics.Report) error
	Claim(ctx context.Context, key string) (ClaimResponse, error)
	Unclaim(ctx context.Context, key string) error
}

var _ Shard = (*Remote)(nil)

// ShardedOptions tune the fleet view. The zero value is usable.
type ShardedOptions struct {
	// Vnodes per shard on the ring (<= 0 = DefaultVnodes).
	Vnodes int
	// Replicas is how many nodes (owner included) serve a hot key.
	// <= 1 disables hot-key replication. Default 2.
	Replicas int
	// HotCapacity caps the hot set (<= 0 = 64).
	HotCapacity int
	// PromoteHits: windowed hits at which a key becomes hot (<= 0 = 8).
	PromoteHits uint64
	// DemoteHits: decayed hits at or below which a hot key is demoted.
	// Must stay below PromoteHits for hysteresis (<= 0 = 2).
	DemoteHits uint64
	// WindowOps: accesses between decay sweeps, which halve every
	// counter (<= 0 = 4096).
	WindowOps uint64
	// ClaimBackoff is the poll interval while waiting on another
	// client's claim when the server supplies no hint (<= 0 = 25ms).
	ClaimBackoff time.Duration
}

func (o *ShardedOptions) setDefaults() {
	if o.Replicas == 0 {
		o.Replicas = 2
	}
	if o.HotCapacity <= 0 {
		o.HotCapacity = 64
	}
	if o.PromoteHits == 0 {
		o.PromoteHits = 8
	}
	if o.DemoteHits == 0 {
		o.DemoteHits = 2
	}
	if o.WindowOps == 0 {
		o.WindowOps = 4096
	}
	if o.ClaimBackoff <= 0 {
		o.ClaimBackoff = 25 * time.Millisecond
	}
}

// Sharded is the Backend over a fleet of shards. Safe for concurrent use.
type Sharded struct {
	ring   *Ring
	shards map[string]Shard
	opts   ShardedOptions
	hot    *hotTracker
	rr     atomic.Uint64 // round-robin cursor for hot-key replica reads

	hits       atomic.Uint64
	misses     atomic.Uint64
	puts       atomic.Uint64
	readErrors atomic.Uint64
	putErrors  atomic.Uint64
	replicaOps atomic.Uint64
	claims     atomic.Uint64
	claimWaits atomic.Uint64
}

// Backend and Claimer conformance.
var (
	_ Backend = (*Sharded)(nil)
	_ Claimer = (*Sharded)(nil)
)

// NewSharded builds the fleet view over the given shards. Shard names
// must be unique; they are the ring identities, so every client built
// from the same shard list agrees on placement.
func NewSharded(shards []Shard, o ShardedOptions) (*Sharded, error) {
	if len(shards) == 0 {
		return nil, errors.New("store: sharded backend needs at least one shard")
	}
	o.setDefaults()
	if o.DemoteHits >= o.PromoteHits {
		return nil, fmt.Errorf("store: demote threshold %d must stay below promote threshold %d (hysteresis)",
			o.DemoteHits, o.PromoteHits)
	}
	names := make([]string, len(shards))
	byName := make(map[string]Shard, len(shards))
	for i, sh := range shards {
		names[i] = sh.Name()
		byName[sh.Name()] = sh
	}
	ring, err := NewRing(names, o.Vnodes)
	if err != nil {
		return nil, err
	}
	return &Sharded{
		ring:   ring,
		shards: byName,
		opts:   o,
		hot:    newHotTracker(o),
	}, nil
}

// Ring exposes the placement ring (icrload reporting, tests).
func (s *Sharded) Ring() *Ring { return s.ring }

// readSet returns the shards to consult for key, owner first; hot keys
// get their full replica set.
func (s *Sharded) readSet(key string, hot bool) []string {
	if hot && s.opts.Replicas > 1 {
		return s.ring.Replicas(key, s.opts.Replicas)
	}
	return s.ring.Replicas(key, 1)
}

// Get implements Backend: look-aside read from the key's owner, spread
// over the replica set when the key is hot. A replica miss falls through
// to the other copies; a clean miss everywhere is ErrMiss; transport
// trouble with no copy found is surfaced.
func (s *Sharded) Get(ctx context.Context, key string) (*metrics.Report, error) {
	hot := s.hot.touch(key)
	nodes := s.readSet(key, hot)
	// Rotate the starting replica so hot-key read load spreads across the
	// replica set instead of hammering the owner.
	start := 0
	if len(nodes) > 1 {
		start = int(s.rr.Add(1)) % len(nodes)
	}
	var firstErr error
	for i := 0; i < len(nodes); i++ {
		name := nodes[(start+i)%len(nodes)]
		rep, err := s.shards[name].Get(ctx, key)
		switch {
		case err == nil:
			s.hits.Add(1)
			if name != nodes[0] {
				s.replicaOps.Add(1)
			}
			return rep, nil
		case errors.Is(err, ErrMiss):
			continue
		case ctx.Err() != nil:
			return nil, ctx.Err()
		default:
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if firstErr != nil {
		s.readErrors.Add(1)
		return nil, firstErr
	}
	s.misses.Add(1)
	return nil, ErrMiss
}

// Put implements Backend: write-through to the owner, plus best-effort
// replication to the rest of the replica set when the key is hot. The
// owner write's error is the caller's; replica failures are only counted.
func (s *Sharded) Put(ctx context.Context, key string, rep *metrics.Report) error {
	nodes := s.readSet(key, s.hot.isHot(key))
	var ownerErr error
	for i, name := range nodes {
		err := s.shards[name].Put(ctx, key, rep)
		switch {
		case i == 0:
			ownerErr = err
		case err != nil:
			s.putErrors.Add(1)
		default:
			s.replicaOps.Add(1)
		}
	}
	if ownerErr != nil {
		s.putErrors.Add(1)
		return fmt.Errorf("store: put %s to owner: %w", key, ownerErr)
	}
	s.puts.Add(1)
	return nil
}

// Claim implements Claimer: ask the owning shard who simulates key, and
// wait out other claimants. See the Claimer contract for the return
// shape. An unreachable or draining owner degrades to owned=true with a
// no-op release — local simulation beats a stalled fleet.
func (s *Sharded) Claim(ctx context.Context, key string) (bool, func(), error) {
	owner := s.shards[s.ring.Owner(key)]
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		resp, err := owner.Claim(ctx, key)
		if err != nil {
			if ctx.Err() != nil {
				return false, nil, ctx.Err()
			}
			s.readErrors.Add(1)
			return true, func() {}, nil
		}
		switch resp.State {
		case ClaimGranted:
			s.claims.Add(1)
			var once sync.Once
			release := func() {
				once.Do(func() {
					// The simulation failed; free waiters early instead of
					// letting them ride out the claim TTL. Detached context:
					// the failed run's ctx may already be cancelled.
					rctx, cancel := context.WithTimeout(context.Background(), 2*time.Second) //icrvet:ignore ctxflow claim release must outlive the failed run's cancelled context
					defer cancel()
					owner.Unclaim(rctx, key) //icrvet:ignore droppederr best-effort release; waiters fall back to the claim TTL
				})
			}
			return true, release, nil
		case ClaimDone:
			return false, nil, nil
		case ClaimWait:
			s.claimWaits.Add(1)
			d := time.Duration(resp.RetryAfterMS) * time.Millisecond
			if d <= 0 {
				d = s.opts.ClaimBackoff
			}
			if timer == nil {
				timer = time.NewTimer(d)
			} else {
				timer.Reset(d)
			}
			select {
			case <-timer.C:
			case <-ctx.Done():
				return false, nil, ctx.Err()
			}
		default:
			// A newer server speaking an unknown state: simulate locally.
			return true, func() {}, nil
		}
	}
}

// Stats implements Backend: the client-side fleet counters.
func (s *Sharded) Stats() Stats {
	return Stats{
		Hits:       s.hits.Load(),
		Misses:     s.misses.Load(),
		Puts:       s.puts.Load(),
		ReadErrors: s.readErrors.Load(),
		PutErrors:  s.putErrors.Load(),
		HotKeys:    s.hot.len(),
		ReplicaOps: s.replicaOps.Load(),
		Claims:     s.claims.Load(),
		ClaimWaits: s.claimWaits.Load(),
	}
}

// Drain implements Backend: drains every shard client.
func (s *Sharded) Drain() {
	for _, sh := range s.shards {
		if b, ok := sh.(interface{ Drain() }); ok {
			b.Drain()
		}
	}
}

// hotTracker is the windowed decaying hit counter behind hot-key
// replication. All state transitions are driven by access counts, not
// wall time, so tests are deterministic.
type hotTracker struct {
	promote uint64
	demote  uint64
	window  uint64
	cap     int

	mu     sync.Mutex
	counts map[string]uint64
	hot    map[string]bool
	ops    uint64
}

func newHotTracker(o ShardedOptions) *hotTracker {
	return &hotTracker{
		promote: o.PromoteHits,
		demote:  o.DemoteHits,
		window:  o.WindowOps,
		cap:     o.HotCapacity,
		counts:  make(map[string]uint64),
		hot:     make(map[string]bool),
	}
}

// touch records one access and returns whether key is hot afterwards.
// Every WindowOps accesses, all counters halve: a key must sustain
// traffic to stay above the demotion threshold.
func (t *hotTracker) touch(key string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.counts[key]++
	if !t.hot[key] && t.counts[key] >= t.promote && len(t.hot) < t.cap {
		t.hot[key] = true
	}
	t.ops++
	if t.ops >= t.window {
		t.ops = 0
		for k, c := range t.counts {
			c /= 2
			if c == 0 {
				delete(t.counts, k)
			} else {
				t.counts[k] = c
			}
			if t.hot[k] && c <= t.demote {
				delete(t.hot, k)
			}
		}
	}
	return t.hot[key]
}

// isHot reports hotness without recording an access (the write path).
func (t *hotTracker) isHot(key string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hot[key]
}

// len returns the hot-set size.
func (t *hotTracker) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.hot)
}
