package store

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for claim-expiry tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestClaimTableSingleWinner(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	tab := NewClaimTableClock(time.Minute, clk.now)
	key := keyN(0)

	granted, _ := tab.Claim(key)
	if !granted {
		t.Fatal("first claim not granted")
	}
	granted, remaining := tab.Claim(key)
	if granted {
		t.Fatal("second claim granted while the first is live")
	}
	if remaining <= 0 || remaining > time.Minute {
		t.Errorf("remaining = %v, want (0, 1m]", remaining)
	}
	// A different key is independent.
	if granted, _ := tab.Claim(keyN(1)); !granted {
		t.Error("claim on an unrelated key blocked")
	}
	if g, w := tab.Granted(), tab.Waited(); g != 2 || w != 1 {
		t.Errorf("granted=%d waited=%d, want 2 and 1", g, w)
	}
}

// TestClaimExpiry: a crashed claimant's claim lapses after the TTL and
// the next claimant takes over — the fleet stalls for at most one TTL.
func TestClaimExpiry(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	tab := NewClaimTableClock(time.Minute, clk.now)
	key := keyN(0)
	if granted, _ := tab.Claim(key); !granted {
		t.Fatal("first claim not granted")
	}
	clk.advance(59 * time.Second)
	if granted, _ := tab.Claim(key); granted {
		t.Fatal("claim lapsed before its TTL")
	}
	clk.advance(2 * time.Second)
	if granted, _ := tab.Claim(key); !granted {
		t.Fatal("expired claim not retaken")
	}
}

// TestClaimRelease: an explicit release (failed simulation) frees the key
// immediately.
func TestClaimRelease(t *testing.T) {
	tab := NewClaimTable(time.Minute)
	key := keyN(0)
	if granted, _ := tab.Claim(key); !granted {
		t.Fatal("first claim not granted")
	}
	tab.Release(key)
	if granted, _ := tab.Claim(key); !granted {
		t.Fatal("released claim not retaken")
	}
	// Releasing an absent claim is a no-op.
	tab.Release(keyN(1))
}

// TestClaimSweep: expired entries are swept so the table does not grow
// with the keyspace.
func TestClaimSweep(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	tab := NewClaimTableClock(time.Second, clk.now)
	for i := 0; i < 100; i++ {
		tab.Claim(syntheticKey(i))
	}
	clk.advance(2 * time.Second)
	// Drive past the sweep threshold.
	for i := 0; i < 1024; i++ {
		tab.Claim(syntheticKey(200 + i))
	}
	clk.advance(2 * time.Second)
	for i := 0; i < 1024; i++ {
		tab.Claim(syntheticKey(2000 + i))
	}
	if n := tab.Len(); n > 1100 {
		t.Errorf("table holds %d entries after sweeps; expired claims not collected", n)
	}
}
