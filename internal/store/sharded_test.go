package store

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
)

// fakeShard is an in-process shard node: a map plus a claim table, with
// switchable failure injection. It speaks the same protocol a real icrd
// shard does — including "PUT clears the claim" and "claim on a present
// key answers done".
type fakeShard struct {
	name string

	mu     sync.Mutex
	data   map[string]*metrics.Report
	claims map[string]bool

	down atomic.Bool // every call fails (SIGKILLed shard)

	gets      atomic.Int64
	puts      atomic.Int64
	claimReqs atomic.Int64
}

func newFakeShard(name string) *fakeShard {
	return &fakeShard{
		name:   name,
		data:   make(map[string]*metrics.Report),
		claims: make(map[string]bool),
	}
}

var errShardDown = errors.New("fake shard: connection refused")

func (f *fakeShard) Name() string { return f.name }

func (f *fakeShard) Get(ctx context.Context, key string) (*metrics.Report, error) {
	f.gets.Add(1)
	if f.down.Load() {
		return nil, errShardDown
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	rep, ok := f.data[key]
	if !ok {
		return nil, ErrMiss
	}
	return rep, nil
}

func (f *fakeShard) Put(ctx context.Context, key string, rep *metrics.Report) error {
	f.puts.Add(1)
	if f.down.Load() {
		return errShardDown
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.data[key] = rep
	delete(f.claims, key) // a landed result releases the claim server-side
	return nil
}

func (f *fakeShard) Claim(ctx context.Context, key string) (ClaimResponse, error) {
	f.claimReqs.Add(1)
	if f.down.Load() {
		return ClaimResponse{}, errShardDown
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.data[key]; ok {
		return ClaimResponse{State: ClaimDone}, nil
	}
	if f.claims[key] {
		return ClaimResponse{State: ClaimWait, RetryAfterMS: 1}, nil
	}
	f.claims[key] = true
	return ClaimResponse{State: ClaimGranted}, nil
}

func (f *fakeShard) Unclaim(ctx context.Context, key string) error {
	if f.down.Load() {
		return errShardDown
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.claims, key)
	return nil
}

func (f *fakeShard) has(key string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.data[key]
	return ok
}

// testFleet builds a Sharded over n fake shards named like real URLs.
func testFleet(t *testing.T, n int, o ShardedOptions) (*Sharded, []*fakeShard) {
	t.Helper()
	fakes := make([]*fakeShard, n)
	shards := make([]Shard, n)
	for i := range fakes {
		fakes[i] = newFakeShard(fmt.Sprintf("http://10.0.0.%d:8080", i+1))
		shards[i] = fakes[i]
	}
	s, err := NewSharded(shards, o)
	if err != nil {
		t.Fatal(err)
	}
	return s, fakes
}

// byName maps the fakes by ring identity for placement assertions.
func byName(fakes []*fakeShard) map[string]*fakeShard {
	m := make(map[string]*fakeShard, len(fakes))
	for _, f := range fakes {
		m[f.name] = f
	}
	return m
}

// TestShardedRoutesToOwner: a cold Put lands on exactly the ring owner,
// and the following Get reads it back from there.
func TestShardedRoutesToOwner(t *testing.T) {
	s, fakes := testFleet(t, 3, ShardedOptions{})
	nodes := byName(fakes)
	for i := 0; i < 50; i++ {
		key := syntheticKey(i)
		if err := s.Put(ctx, key, testReport(uint64(i))); err != nil {
			t.Fatal(err)
		}
		owner := s.Ring().Owner(key)
		for name, f := range nodes {
			if got, want := f.has(key), name == owner; got != want {
				t.Fatalf("key %d on %s: present=%v, owner=%s", i, name, got, owner)
			}
		}
		rep, err := s.Get(ctx, key)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Cycles != uint64(i) {
			t.Fatalf("key %d read back wrong report", i)
		}
	}
	st := s.Stats()
	if st.Puts != 50 || st.Hits != 50 || st.ReplicaOps != 0 {
		t.Errorf("stats = %+v, want 50 puts, 50 hits, 0 replica ops", st)
	}
}

// TestShardedMissIsTyped: a key nobody holds is ErrMiss, counted once.
func TestShardedMissIsTyped(t *testing.T) {
	s, _ := testFleet(t, 3, ShardedOptions{})
	if _, err := s.Get(ctx, syntheticKey(0)); !errors.Is(err, ErrMiss) {
		t.Fatalf("cold fleet Get = %v, want ErrMiss", err)
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Errorf("Misses = %d, want 1", st.Misses)
	}
}

// TestHotKeyPromotionAndReplication: PromoteHits touches make a key hot;
// the next Put fans out to the full replica set, and reads then succeed
// even with the owner down.
func TestHotKeyPromotionAndReplication(t *testing.T) {
	opts := ShardedOptions{PromoteHits: 8, DemoteHits: 2, WindowOps: 1 << 20}
	s, fakes := testFleet(t, 3, opts)
	nodes := byName(fakes)
	key := syntheticKey(0)

	// Cold phase: the key stays owner-only.
	if err := s.Put(ctx, key, testReport(7)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, err := s.Get(ctx, key); err != nil {
			t.Fatal(err)
		}
	}
	if s.hot.isHot(key) {
		t.Fatal("key hot before reaching the promotion threshold")
	}
	// The 8th access promotes.
	if _, err := s.Get(ctx, key); err != nil {
		t.Fatal(err)
	}
	if !s.hot.isHot(key) {
		t.Fatal("key not hot after PromoteHits accesses")
	}
	if st := s.Stats(); st.HotKeys != 1 {
		t.Errorf("HotKeys = %d, want 1", st.HotKeys)
	}

	// A hot Put replicates to the whole replica set (owner + 1).
	if err := s.Put(ctx, key, testReport(7)); err != nil {
		t.Fatal(err)
	}
	reps := s.Ring().Replicas(key, 2)
	for _, name := range reps {
		if !nodes[name].has(key) {
			t.Fatalf("hot key missing from replica %s", name)
		}
	}
	if st := s.Stats(); st.ReplicaOps == 0 {
		t.Error("ReplicaOps = 0 after a replicated put")
	}

	// Owner SIGKILLed: hot reads survive off the replica.
	nodes[reps[0]].down.Store(true)
	for i := 0; i < 4; i++ {
		if _, err := s.Get(ctx, key); err != nil {
			t.Fatalf("hot read with owner down: %v", err)
		}
	}
}

// TestHotKeyDemotionHysteresis: decay halves counters every window; a key
// promoted at 8 stays hot while its decayed count exceeds DemoteHits and
// drops out only when traffic fades — and it must NOT flap at the
// promotion boundary.
func TestHotKeyDemotionHysteresis(t *testing.T) {
	opts := ShardedOptions{PromoteHits: 8, DemoteHits: 2, WindowOps: 16}
	s, _ := testFleet(t, 3, opts)
	key := syntheticKey(0)
	filler := syntheticKey(1)

	// 8 touches promote (window not yet full: 8 < 16).
	for i := 0; i < 8; i++ {
		s.hot.touch(key)
	}
	if !s.hot.isHot(key) {
		t.Fatal("not promoted at 8 touches")
	}
	// Fill the window with other traffic to force one decay sweep:
	// count 8 → 4, still above DemoteHits=2 → stays hot.
	for i := 0; i < 8; i++ {
		s.hot.touch(filler)
	}
	if !s.hot.isHot(key) {
		t.Fatal("demoted after one decay window with count 4 > 2 (no hysteresis)")
	}
	// Second idle window: 4 → 2 ≤ DemoteHits → demoted.
	for i := 0; i < 16; i++ {
		s.hot.touch(filler)
	}
	if s.hot.isHot(key) {
		t.Fatal("still hot after decaying to the demotion threshold")
	}
	// Hysteresis: the decayed count (2) plus a few touches must not
	// instantly re-promote below the full promotion threshold.
	for i := 0; i < 3; i++ {
		s.hot.touch(key)
	}
	if s.hot.isHot(key) {
		t.Fatal("re-promoted below PromoteHits: thresholds are flapping")
	}
}

// TestHotSetCapacity: the hot set never exceeds HotCapacity.
func TestHotSetCapacity(t *testing.T) {
	opts := ShardedOptions{PromoteHits: 2, DemoteHits: 1, HotCapacity: 4, WindowOps: 1 << 20}
	s, _ := testFleet(t, 3, opts)
	for i := 0; i < 32; i++ {
		key := syntheticKey(i)
		s.hot.touch(key)
		s.hot.touch(key)
	}
	if n := s.hot.len(); n > 4 {
		t.Errorf("hot set holds %d keys, capacity 4", n)
	}
}

// TestClaimExactlyOneWinner is the fleet-wide anti-stampede guarantee:
// N concurrent claimants for one cold key get exactly one owned=true.
func TestClaimExactlyOneWinner(t *testing.T) {
	s, _ := testFleet(t, 3, ShardedOptions{})
	key := syntheticKey(0)
	const n = 32

	var owners atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			owned, release, err := s.Claim(cctx, key)
			if err != nil {
				t.Errorf("Claim: %v", err)
				return
			}
			if owned {
				owners.Add(1)
				// Simulate, then Put — which releases the claim
				// server-side and turns the waiters' polls into done.
				if err := s.Put(cctx, key, testReport(1)); err != nil {
					t.Errorf("winner Put: %v", err)
				}
				_ = release // success path: the Put released the claim
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := owners.Load(); got != 1 {
		t.Fatalf("%d claimants owned the simulation, want exactly 1", got)
	}
	if st := s.Stats(); st.Claims != 1 {
		t.Errorf("Claims = %d, want 1", st.Claims)
	}
}

// TestClaimDoneAfterResult: once the result exists, claimants are told
// done immediately — they re-Get instead of simulating.
func TestClaimDoneAfterResult(t *testing.T) {
	s, _ := testFleet(t, 3, ShardedOptions{})
	key := syntheticKey(0)
	if err := s.Put(ctx, key, testReport(1)); err != nil {
		t.Fatal(err)
	}
	owned, _, err := s.Claim(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	if owned {
		t.Fatal("claim granted for a key whose result already exists")
	}
}

// TestClaimReleaseFreesWaiters: a winner whose simulation fails releases,
// and the next claimant is granted instead of waiting out the TTL.
func TestClaimReleaseFreesWaiters(t *testing.T) {
	s, _ := testFleet(t, 3, ShardedOptions{})
	key := syntheticKey(0)
	owned, release, err := s.Claim(ctx, key)
	if err != nil || !owned {
		t.Fatalf("first claim: owned=%v err=%v", owned, err)
	}
	release()
	release() // idempotent
	owned, _, err = s.Claim(ctx, key)
	if err != nil || !owned {
		t.Fatalf("claim after release: owned=%v err=%v, want granted", owned, err)
	}
}

// TestClaimOwnerDownDegrades: an unreachable owner must not stall the
// fleet — the claimant simulates locally (owned=true, no-op release).
func TestClaimOwnerDownDegrades(t *testing.T) {
	s, fakes := testFleet(t, 3, ShardedOptions{})
	nodes := byName(fakes)
	key := syntheticKey(0)
	nodes[s.Ring().Owner(key)].down.Store(true)

	owned, release, err := s.Claim(ctx, key)
	if err != nil {
		t.Fatalf("claim with owner down errored: %v", err)
	}
	if !owned {
		t.Fatal("claim with owner down did not degrade to local simulation")
	}
	release() // must not panic
}

// TestClaimHonoursContext: a cancelled context ends a claim wait.
func TestClaimHonoursContext(t *testing.T) {
	s, _ := testFleet(t, 3, ShardedOptions{ClaimBackoff: time.Minute})
	key := syntheticKey(0)
	if owned, _, err := s.Claim(ctx, key); err != nil || !owned {
		t.Fatalf("first claim: owned=%v err=%v", owned, err)
	}
	cctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := s.Claim(cctx, key)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiting claim returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiting claim ignored cancellation")
	}
}

// TestShardedPutOwnerFailureSurfaces: the owner write's error belongs to
// the caller (the runner re-tries or counts it), not the void.
func TestShardedPutOwnerFailureSurfaces(t *testing.T) {
	s, fakes := testFleet(t, 3, ShardedOptions{})
	nodes := byName(fakes)
	key := syntheticKey(0)
	nodes[s.Ring().Owner(key)].down.Store(true)
	if err := s.Put(ctx, key, testReport(1)); !errors.Is(err, errShardDown) {
		t.Fatalf("Put with owner down = %v, want the shard error", err)
	}
	if st := s.Stats(); st.PutErrors != 1 {
		t.Errorf("PutErrors = %d, want 1", st.PutErrors)
	}
}

// TestShardedGetErrorSurfaces: transport trouble on a cold key is an
// error, not a silent miss (which would hide a dead shard behind
// re-simulation).
func TestShardedGetErrorSurfaces(t *testing.T) {
	s, fakes := testFleet(t, 3, ShardedOptions{})
	nodes := byName(fakes)
	key := syntheticKey(0)
	nodes[s.Ring().Owner(key)].down.Store(true)
	if _, err := s.Get(ctx, key); !errors.Is(err, errShardDown) {
		t.Fatalf("Get with owner down = %v, want the shard error", err)
	}
	if st := s.Stats(); st.ReadErrors != 1 || st.Misses != 0 {
		t.Errorf("stats = %+v, want 1 read error and no miss", st)
	}
}

// TestShardedRejectsBadHysteresis: demote >= promote is a config error.
func TestShardedRejectsBadHysteresis(t *testing.T) {
	shards := []Shard{newFakeShard("a")}
	if _, err := NewSharded(shards, ShardedOptions{PromoteHits: 4, DemoteHits: 4}); err == nil {
		t.Error("demote == promote accepted")
	}
	if _, err := NewSharded(nil, ShardedOptions{}); err == nil {
		t.Error("empty fleet accepted")
	}
}
