package store

import (
	"context"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// ctx is the do-not-care context for store calls in tests.
var ctx = context.Background()

// getOK adapts the error-returning Get to the hit/miss shape most tests
// assert on: a clean miss (ErrMiss) is (nil, false) and any other error —
// which no test here expects — fails the test.
func getOK(t *testing.T, s Backend, key string) (*metrics.Report, bool) {
	t.Helper()
	rep, err := s.Get(ctx, key)
	if err == nil {
		return rep, true
	}
	if errors.Is(err, ErrMiss) {
		return nil, false
	}
	t.Fatalf("Get(%s): unexpected non-miss error: %v", key, err)
	return nil, false
}

func testReport(cycles uint64) *metrics.Report {
	return &metrics.Report{
		Benchmark:    "vpr",
		Scheme:       "ICR-P-PS(S)",
		Instructions: 100_000,
		Cycles:       cycles,
		DL1Reads:     123,
		EnergyL1:     41.5,
	}
}

// keyN returns a distinct valid 64-hex key.
func keyN(n byte) string {
	return strings.Repeat("0", 62) + strings.Repeat(string([]byte{'a' + n%6}), 2)
}

func mustOpen(t *testing.T, dir string, o Options) *Store {
	t.Helper()
	s, err := Open(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	key := keyN(0)
	want := testReport(777)
	if err := s.Put(ctx, key, want); err != nil {
		t.Fatal(err)
	}
	got, ok := getOK(t, s, key)
	if !ok {
		t.Fatal("Get missed a just-Put key")
	}
	if *got != *want {
		t.Errorf("round trip changed the report: got %+v want %+v", got, want)
	}
	if _, ok := getOK(t, s, keyN(1)); ok {
		t.Error("Get hit an absent key")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 put, 1 entry", st)
	}
}

// TestPersistsAcrossReopen is the durability core: a report written by one
// Store is served by a fresh Store over the same directory — the restart
// path of the icrd acceptance test.
func TestPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	key := keyN(0)
	want := testReport(42)
	s1 := mustOpen(t, dir, Options{})
	if err := s1.Put(ctx, key, want); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	got, ok := getOK(t, s2, key)
	if !ok {
		t.Fatal("reopened store missed a persisted key")
	}
	if *got != *want {
		t.Errorf("reopened store returned %+v, want %+v", got, want)
	}
}

func TestCorruptEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	key := keyN(0)
	s := mustOpen(t, dir, Options{})
	if err := s.Put(ctx, key, testReport(1)); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte on disk.
	path := filepath.Join(dir, key+entrySuffix)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := getOK(t, s, key); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if _, err := os.Stat(path + quarantineSuffix); err != nil {
		t.Errorf("corrupt entry not quarantined: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupt entry still in place: %v", err)
	}
	if st := s.Stats(); st.Quarantined != 1 || st.Entries != 0 {
		t.Errorf("stats = %+v, want 1 quarantined, 0 entries", st)
	}
	// A quarantined file is invisible to a reopened store.
	s2 := mustOpen(t, dir, Options{})
	if _, ok := getOK(t, s2, key); ok {
		t.Error("reopened store served a quarantined entry")
	}
}

func TestTruncatedEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	key := keyN(0)
	s := mustOpen(t, dir, Options{})
	if err := s.Put(ctx, key, testReport(1)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key+entrySuffix)
	if err := os.Truncate(path, headerSize-5); err != nil {
		t.Fatal(err)
	}
	if _, ok := getOK(t, s, key); ok {
		t.Fatal("truncated entry served as a hit")
	}
}

// TestStaleSchemaIsMiss writes an entry whose header carries an older
// report-schema version: it must degrade to a miss (re-simulate), and the
// file is removed rather than quarantined (stale, not corrupt).
func TestStaleSchemaIsMiss(t *testing.T) {
	dir := t.TempDir()
	key := keyN(0)
	s := mustOpen(t, dir, Options{})
	if err := s.Put(ctx, key, testReport(1)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key+entrySuffix)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(data[8:12], metrics.ReportSchemaVersion-1)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := getOK(t, s, key); ok {
		t.Fatal("stale-schema entry served as a hit")
	}
	if st := s.Stats(); st.SchemaStale != 1 || st.Quarantined != 0 {
		t.Errorf("stats = %+v, want 1 schema-stale, 0 quarantined", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("stale entry not removed: %v", err)
	}
	// Re-put under the current schema works again.
	if err := s.Put(ctx, key, testReport(2)); err != nil {
		t.Fatal(err)
	}
	if _, ok := getOK(t, s, key); !ok {
		t.Error("re-put after stale drop missed")
	}
}

// sampledReport is testReport plus the schema-2 Sampling block a sampled
// run attaches.
func sampledReport(cycles uint64) *metrics.Report {
	r := testReport(cycles)
	r.Sampling = &metrics.SamplingStats{
		Period: 50_000, Detail: 1_000, Warmup: 400, Confidence: 95,
		Windows:            40,
		WarmedInstructions: 1_900_000, WarmupDiscarded: 16_000,
		MeasuredInstructions: 40_000, MeasuredCycles: 52_000,
		IPCMean: 0.77, IPCHalfCI: 0.012,
		MissRateMean: 0.031, MissRateHalfCI: 0.004,
	}
	return r
}

// TestSampledReportRoundTrip: a schema-2 report (Sampling block attached)
// survives Put/Get — including across a reopen — with a byte-identical
// payload, the durability guarantee the runner's memoization relies on.
func TestSampledReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	key := keyN(0)
	want := sampledReport(999)
	wantJSON, err := want.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir, Options{})
	if err := s.Put(ctx, key, want); err != nil {
		t.Fatal(err)
	}
	for name, st := range map[string]*Store{"same": s, "reopened": mustOpen(t, dir, Options{})} {
		got, ok := getOK(t, st, key)
		if !ok {
			t.Fatalf("%s store missed the sampled entry", name)
		}
		if got.Sampling == nil {
			t.Fatalf("%s store dropped the Sampling block", name)
		}
		gotJSON, err := got.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(gotJSON) != string(wantJSON) {
			t.Errorf("%s store round trip not byte-identical:\n got: %s\nwant: %s", name, gotJSON, wantJSON)
		}
	}
}

// TestPreSamplingEntryIsMiss pins the migration story for entries written
// before the sampling schema bump: their header carries report schema 1,
// which the current store treats as stale — a miss that forces
// resimulation — rather than serving a payload the current decoder only
// half-understands.
func TestPreSamplingEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	key := keyN(0)
	s := mustOpen(t, dir, Options{})
	if err := s.Put(ctx, key, testReport(1)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key+entrySuffix)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(data[8:12], 1) // pre-sampling schema
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := getOK(t, s, key); ok {
		t.Fatal("pre-sampling entry served as a hit")
	}
	if st := s.Stats(); st.SchemaStale != 1 {
		t.Errorf("stats = %+v, want 1 schema-stale", st)
	}
}

// adaptiveReport is testReport plus the schema-3 Adaptive block an
// ICR-ADAPT run attaches.
func adaptiveReport(cycles uint64) *metrics.Report {
	r := testReport(cycles)
	r.Adaptive = &metrics.AdaptiveStats{
		Predictor: "decay", EpochCycles: 20_000, Epochs: 48,
		MovesUp: 3, MovesDown: 2, PredHits: 4, PredMisses: 1,
		FinalLevel: 2, FinalReplicas: 1, FinalDecayWindow: 0,
		FinalVictim: "dead-only", FinalLookup: "PS",
		Trajectory: []metrics.AdaptiveMove{{Epoch: 5, Level: 2}, {Epoch: 11, Level: 3}},
	}
	return r
}

// TestAdaptiveReportRoundTrip: a schema-3 report (Adaptive block attached)
// survives Put/Get — including across a reopen — with a byte-identical
// payload.
func TestAdaptiveReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	key := keyN(0)
	want := adaptiveReport(1234)
	wantJSON, err := want.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir, Options{})
	if err := s.Put(ctx, key, want); err != nil {
		t.Fatal(err)
	}
	for name, st := range map[string]*Store{"same": s, "reopened": mustOpen(t, dir, Options{})} {
		got, ok := getOK(t, st, key)
		if !ok {
			t.Fatalf("%s store missed the adaptive entry", name)
		}
		if got.Adaptive == nil {
			t.Fatalf("%s store dropped the Adaptive block", name)
		}
		gotJSON, err := got.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(gotJSON) != string(wantJSON) {
			t.Errorf("%s store round trip not byte-identical:\n got: %s\nwant: %s", name, gotJSON, wantJSON)
		}
	}
}

// TestPreAdaptiveEntryIsMiss pins the migration story for the adaptive
// schema bump: an entry written under report schema 2 (the pre-adaptive
// store format) degrades to a SchemaStale miss and is deleted, never
// served.
func TestPreAdaptiveEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	key := keyN(0)
	s := mustOpen(t, dir, Options{})
	if err := s.Put(ctx, key, sampledReport(1)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key+entrySuffix)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(data[8:12], 2) // pre-adaptive schema
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := getOK(t, s, key); ok {
		t.Fatal("pre-adaptive entry served as a hit")
	}
	if st := s.Stats(); st.SchemaStale != 1 || st.Quarantined != 0 {
		t.Errorf("stats = %+v, want 1 schema-stale, 0 quarantined", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("pre-adaptive entry not removed: %v", err)
	}
}

func TestStaleContainerFormatIsMiss(t *testing.T) {
	dir := t.TempDir()
	key := keyN(0)
	s := mustOpen(t, dir, Options{})
	if err := s.Put(ctx, key, testReport(1)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key+entrySuffix)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(data[4:8], FormatVersion+1)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := getOK(t, s, key); ok {
		t.Fatal("future-format entry served as a hit")
	}
}

// TestLRUEviction: the byte cap evicts least-recently-used entries, and a
// Get refreshes recency so warm entries survive.
func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	// Size the cap to hold roughly two entries.
	one := testReport(1)
	payload, err := one.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var evicted int
	s := mustOpen(t, dir, Options{
		MaxBytes: int64(len(payload))*2 + 10,
		OnEvict:  func(n int) { evicted += n },
	})
	k0, k1, k2 := keyN(0), keyN(1), keyN(2)
	for _, k := range []string{k0, k1} {
		if err := s.Put(ctx, k, one); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k0 so k1 is the LRU victim.
	if _, ok := getOK(t, s, k0); !ok {
		t.Fatal("k0 missing before eviction")
	}
	if err := s.Put(ctx, k2, one); err != nil {
		t.Fatal(err)
	}
	if _, ok := getOK(t, s, k1); ok {
		t.Error("LRU entry survived the cap")
	}
	if _, ok := getOK(t, s, k0); !ok {
		t.Error("recently-used entry was evicted")
	}
	if _, ok := getOK(t, s, k2); !ok {
		t.Error("just-put entry was evicted")
	}
	if evicted != 1 {
		t.Errorf("OnEvict reported %d, want 1", evicted)
	}
	if st := s.Stats(); st.Evictions != 1 {
		t.Errorf("stats evictions = %d, want 1", st.Evictions)
	}
}

// TestEvictionOrderSurvivesReopen: mtimes order the LRU list at Open.
func TestEvictionOrderSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	one := testReport(1)
	payload, err := one.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	s1 := mustOpen(t, dir, Options{MaxBytes: -1})
	k0, k1 := keyN(0), keyN(1)
	if err := s1.Put(ctx, k0, one); err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(ctx, k1, one); err != nil {
		t.Fatal(err)
	}
	// Make k0 clearly newer than k1 without relying on Put timing.
	old := filepath.Join(dir, k1+entrySuffix)
	info, err := os.Stat(old)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(old, info.ModTime().Add(-time.Hour), info.ModTime().Add(-time.Hour)); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{MaxBytes: int64(len(payload))*2 + 10})
	if err := s2.Put(ctx, keyN(2), one); err != nil {
		t.Fatal(err)
	}
	if _, ok := getOK(t, s2, k1); ok {
		t.Error("older entry (by mtime) survived; LRU order not rebuilt from mtimes")
	}
	if _, ok := getOK(t, s2, k0); !ok {
		t.Error("newer entry (by mtime) evicted first")
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	for _, bad := range []string{"", "UPPER", "with/slash", "..", "z-not-hex", strings.Repeat("a", 200)} {
		if err := s.Put(ctx, bad, testReport(1)); err == nil {
			t.Errorf("Put accepted invalid key %q", bad)
		}
		if _, ok := getOK(t, s, bad); ok {
			t.Errorf("Get hit invalid key %q", bad)
		}
	}
}

func TestTempFilesCleanedAtOpen(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, tmpPrefix+"deadbeef")
	if err := os.WriteFile(tmp, []byte("partial write"), 0o644); err != nil {
		t.Fatal(err)
	}
	mustOpen(t, dir, Options{})
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("leftover temp file survived Open: %v", err)
	}
}

func TestPutOverwriteRefreshesEntry(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	key := keyN(0)
	if err := s.Put(ctx, key, testReport(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ctx, key, testReport(2)); err != nil {
		t.Fatal(err)
	}
	got, ok := getOK(t, s, key)
	if !ok || got.Cycles != 2 {
		t.Errorf("overwrite not visible: ok=%v rep=%+v", ok, got)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d after overwrite, want 1", s.Len())
	}
}

// TestPutIdenticalBytesSkipsRewrite: re-putting the same report (the
// at-least-once cluster case: two workers execute one content-addressed
// task and both upload) must not rewrite the file — only refresh recency —
// while a genuinely different payload still overwrites.
func TestPutIdenticalBytesSkipsRewrite(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	key := keyN(0)
	if err := s.Put(ctx, key, testReport(7)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key+entrySuffix)
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	if err := s.Put(ctx, key, testReport(7)); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("identical re-put changed the file contents")
	}
	st := s.Stats()
	if st.DupPuts != 1 {
		t.Errorf("DupPuts = %d, want 1", st.DupPuts)
	}
	if st.Puts != 1 {
		t.Errorf("Puts = %d after duplicate, want 1 (the duplicate must not count as a write)", st.Puts)
	}
	// Recency refreshed: the mtime moved (or at least did not go backwards).
	info2, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info2.ModTime().Before(info.ModTime()) {
		t.Error("duplicate put moved the mtime backwards")
	}
	if got, ok := getOK(t, s, key); !ok || got.Cycles != 7 {
		t.Errorf("entry unreadable after duplicate put: ok=%v rep=%+v", ok, got)
	}

	// A different report for the same key still overwrites.
	if err := s.Put(ctx, key, testReport(8)); err != nil {
		t.Fatal(err)
	}
	if got, ok := getOK(t, s, key); !ok || got.Cycles != 8 {
		t.Errorf("changed payload not written: ok=%v rep=%+v", ok, got)
	}
	if st := s.Stats(); st.Puts != 2 || st.DupPuts != 1 {
		t.Errorf("Puts=%d DupPuts=%d after overwrite, want 2 and 1", st.Puts, st.DupPuts)
	}
}
