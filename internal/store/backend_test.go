package store

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestTransientReadErrorSurfaced is the sick-disk bugfix: an I/O failure
// reading an indexed entry must NOT degrade to a silent miss (which would
// re-simulate everything a sick disk holds) — it surfaces to the caller,
// counts in Stats.ReadErrors, and keeps the index entry for the next try.
func TestTransientReadErrorSurfaced(t *testing.T) {
	dir := t.TempDir()
	key := keyN(0)
	s := mustOpen(t, dir, Options{})
	if err := s.Put(ctx, key, testReport(1)); err != nil {
		t.Fatal(err)
	}
	// Replace the entry file with a directory: open succeeds, read fails
	// with EISDIR — an I/O error that is neither not-exist nor corruption.
	path := filepath.Join(dir, key+entrySuffix)
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(path, 0o755); err != nil {
		t.Fatal(err)
	}

	_, err := s.Get(ctx, key)
	if err == nil {
		t.Fatal("sick entry served as a hit")
	}
	if errors.Is(err, ErrMiss) {
		t.Fatalf("transient I/O error folded into a miss: %v", err)
	}
	st := s.Stats()
	if st.ReadErrors != 1 {
		t.Errorf("ReadErrors = %d, want 1", st.ReadErrors)
	}
	if st.Misses != 0 {
		t.Errorf("Misses = %d, want 0 (an I/O error is not a miss)", st.Misses)
	}
	if st.Quarantined != 0 {
		t.Errorf("Quarantined = %d, want 0 (nothing valid to quarantine)", st.Quarantined)
	}
	if st.Entries != 1 {
		t.Errorf("Entries = %d, want 1 (transient failure must keep the entry)", st.Entries)
	}

	// The disk recovers (entry bytes restored out-of-band by a sibling
	// store over the same directory): the kept index entry serves again.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	sibling := mustOpen(t, dir, Options{})
	if err := sibling.Put(ctx, key, testReport(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := getOK(t, s, key); !ok {
		t.Error("recovered entry not served")
	}
}

// TestVanishedFileIsCleanMiss: a file deleted behind the store's back is
// a plain miss (drop the entry, no quarantine, no error).
func TestVanishedFileIsCleanMiss(t *testing.T) {
	dir := t.TempDir()
	key := keyN(0)
	s := mustOpen(t, dir, Options{})
	if err := s.Put(ctx, key, testReport(1)); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, key+entrySuffix)); err != nil {
		t.Fatal(err)
	}
	if _, ok := getOK(t, s, key); ok {
		t.Fatal("vanished entry served as a hit")
	}
	st := s.Stats()
	if st.Misses != 1 || st.ReadErrors != 0 || st.Quarantined != 0 || st.Entries != 0 {
		t.Errorf("stats = %+v, want a clean dropped miss", st)
	}
}

// TestGetPutHonourContext: a cancelled context fails fast without
// touching counters or disk.
func TestGetPutHonourContext(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	key := keyN(0)
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Get(cctx, key); !errors.Is(err, context.Canceled) {
		t.Errorf("Get with cancelled ctx = %v, want context.Canceled", err)
	}
	if err := s.Put(cctx, key, testReport(1)); !errors.Is(err, context.Canceled) {
		t.Errorf("Put with cancelled ctx = %v, want context.Canceled", err)
	}
	if s.Len() != 0 {
		t.Error("cancelled Put wrote an entry")
	}
}

// TestMissErrorIsTyped: the miss error is errors.Is-able and corrupt or
// stale entries also read as misses (with their side effects intact).
func TestMissErrorIsTyped(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	_, err := s.Get(ctx, keyN(3))
	if !errors.Is(err, ErrMiss) {
		t.Fatalf("absent key error = %v, want ErrMiss", err)
	}
}
