package store

import (
	"context"
	"errors"

	"repro/internal/metrics"
)

// ErrMiss is the typed miss: the backend holds nothing for the key. Every
// Backend returns an error wrapping ErrMiss for a clean miss, so callers
// distinguish "simulate it" from "the backend is sick" with errors.Is
// instead of a lossy bool.
var ErrMiss = errors.New("store: miss")

// Backend is the storage seam every result store implements: the local
// disk store, the HTTP remote-shard client, and the consistent-hashed
// Sharded fleet view are interchangeable behind it.
//
// Contract:
//
//   - Get returns the report for key, an error wrapping ErrMiss when the
//     backend holds nothing, or another error when the backend could not
//     answer (sick disk, unreachable shard). A non-miss error means the
//     caller may re-simulate, but the failure must be surfaced and
//     counted — never folded into a silent miss.
//   - Put stores the report. Failures do not invalidate a previous entry.
//   - Implementations are safe for concurrent use and never mutate a
//     report after Put returns.
//   - Stats is a point-in-time snapshot of the backend's counters.
//   - Drain flushes or detaches whatever background machinery the backend
//     owns. Gets and Puts must keep working during and after Drain: the
//     repo-wide drain discipline is that executing simulations finish AND
//     persist.
type Backend interface {
	Get(ctx context.Context, key string) (*metrics.Report, error)
	Put(ctx context.Context, key string, rep *metrics.Report) error
	Stats() Stats
	Drain()
}

// Claimer is the optional fleet-wide anti-stampede seam: a Backend that
// can coordinate "who simulates this key" across every client of the
// fleet (the Sharded backend, via the owning shard's claim endpoint).
//
// Claim blocks until the caller either owns the simulation for key
// (owned=true: simulate, Put, and call release once if the Put never
// happens) or the result was produced by someone else meanwhile
// (owned=false: re-Get). release is always non-nil when owned and
// idempotent. An unreachable owner degrades to owned=true with a no-op
// release: duplicate simulation is wasted work, not wrong results,
// because keys are content-addressed.
type Claimer interface {
	Claim(ctx context.Context, key string) (owned bool, release func(), err error)
}
