// Package store is a persistent, content-addressed result store: one
// metrics.Report per simulation key (runner.KeyFor's SHA-256 hex), kept
// on disk so repeated sweep points cost a file read instead of a
// simulation — across process restarts and across clients of the icrd
// service.
//
// Guarantees:
//
//   - Versioned format: every entry carries the container format version
//     and the metrics.ReportSchemaVersion of its payload. A report-schema
//     change (or a runner.KeyFor change, which rotates every key)
//     invalidates old entries cleanly: they degrade to misses, never to
//     wrong hits.
//   - Atomic writes: entries are written to a temp file in the store
//     directory, fsynced, and renamed into place, so a crash mid-write
//     can never leave a half-visible entry.
//   - Corruption tolerance: a bad magic, truncated header, length
//     mismatch, or checksum failure is treated as a miss and the file is
//     quarantined (renamed aside) so it is never re-read and never served.
//   - Bounded size: total payload bytes respect a cap; least-recently-used
//     entries are evicted first. Recency survives restarts via file
//     mtimes.
//
// The store is safe for concurrent use by one process. It does not
// coordinate multiple writer processes; the daemon owns its directory.
package store

import (
	"bytes"
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
)

// FormatVersion is the on-disk container format. Bump on any header or
// layout change; readers reject other versions (miss + quarantine).
const FormatVersion = 1

// DefaultMaxBytes caps the store at 256 MiB of payload unless Options
// says otherwise — roughly half a million full-budget reports, far more
// than the complete §5 evaluation.
const DefaultMaxBytes int64 = 256 << 20

// magic identifies store entry files.
var magic = [4]byte{'I', 'C', 'R', 'S'}

// headerSize is the fixed entry prologue: magic, format u32, schema u32,
// payload length u64, SHA-256 of the payload.
const headerSize = 4 + 4 + 4 + 8 + sha256.Size

const (
	entrySuffix      = ".icr"
	quarantineSuffix = ".quarantine"
	tmpPrefix        = ".tmp-"
)

// Options configure Open.
type Options struct {
	// MaxBytes caps total payload bytes; 0 means DefaultMaxBytes,
	// negative means unlimited.
	MaxBytes int64

	// OnEvict, when non-nil, is called (under no lock) with the number of
	// entries evicted by a Put that exceeded the cap.
	OnEvict func(n int)
}

// Stats are cumulative since Open (or backend construction), plus current
// occupancy. One struct serves every Backend; fields that do not apply to
// a given implementation stay zero.
type Stats struct {
	Hits        uint64 // Get served a report
	Misses      uint64 // Get found nothing (including invalidated entries)
	Puts        uint64 // entries written
	DupPuts     uint64 // identical re-writes skipped (recency refreshed only)
	Evictions   uint64 // entries removed by the size cap
	Quarantined uint64 // corrupt files renamed aside
	SchemaStale uint64 // entries dropped for a format/schema version mismatch
	ReadErrors  uint64 // Gets that failed transiently (I/O error, unreachable shard) — surfaced, not misses
	PutErrors   uint64 // Puts that failed (sick disk, unreachable shard)
	HotKeys     int    // keys currently replicated beyond their owner (Sharded)
	ReplicaOps  uint64 // reads/writes served by a non-owner replica (Sharded)
	Claims      uint64 // fleet claims granted (Sharded client / shard server)
	ClaimWaits  uint64 // claim requests that waited on another claimant (Sharded)
	Entries     int    // resident entries
	Bytes       int64  // resident payload bytes
}

type entry struct {
	key  string
	size int64
	elem *list.Element
}

// Store is a disk-backed report cache. See the package comment for the
// guarantees.
type Store struct {
	dir     string
	max     int64
	onEvict func(int)

	mu    sync.Mutex
	index map[string]*entry
	lru   *list.List // front = most recently used; values are *entry
	bytes int64
	stats Stats
}

// Open creates (if needed) and loads the store rooted at dir. Existing
// entries are indexed by file mtime so eviction order survives restarts;
// contents are validated lazily on Get. Leftover temp files from a
// crashed writer are removed.
func Open(dir string, o Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	max := o.MaxBytes
	if max == 0 {
		max = DefaultMaxBytes
	}
	s := &Store{
		dir:     dir,
		max:     max,
		onEvict: o.OnEvict,
		index:   make(map[string]*entry),
		lru:     list.New(),
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	type seen struct {
		key   string
		size  int64
		mtime time.Time
	}
	var found []seen
	for _, de := range names {
		name := de.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			// A writer died mid-Put; the entry was never visible.
			os.Remove(filepath.Join(dir, name)) //icrvet:ignore droppederr best-effort cleanup of a crashed writer's temp file
			continue
		}
		key, ok := strings.CutSuffix(name, entrySuffix)
		if !ok || !ValidKey(key) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		size := info.Size() - headerSize
		if size < 0 {
			size = 0
		}
		found = append(found, seen{key: key, size: size, mtime: info.ModTime()})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime.Before(found[j].mtime) })
	for _, f := range found {
		e := &entry{key: f.key, size: f.size}
		e.elem = s.lru.PushFront(e) // later mtime = more recent
		s.index[f.key] = e
		s.bytes += f.size
	}
	s.stats.Entries = len(s.index)
	s.stats.Bytes = s.bytes
	return s, nil
}

// Backend conformance: the disk store is the reference implementation.
var _ Backend = (*Store)(nil)

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Drain implements Backend. The disk store has nothing to flush — every
// Put is already atomic and fsynced — and must keep serving Gets and Puts
// through a drain so executing simulations can persist.
func (s *Store) Drain() {}

// Len returns the number of resident entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Stats returns a snapshot of the store's counters and occupancy.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.index)
	st.Bytes = s.bytes
	return st
}

// Get returns the stored report for key, or an error wrapping ErrMiss on
// a miss. Invalidated entries are misses that are never consulted twice:
// corrupt files are quarantined, stale-schema ones removed, and an entry
// whose file vanished behind the store's back is dropped. A transient I/O
// failure (a sick disk: EIO, permissions) is NOT a miss — it is surfaced
// to the caller and counted in Stats.ReadErrors, with the index entry
// kept, so the caller can tell "re-simulate" from "this store is sick"
// and the daemon stops silently re-simulating everything.
func (s *Store) Get(ctx context.Context, key string) (*metrics.Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !ValidKey(key) {
		return nil, fmt.Errorf("store: invalid key %q: %w", key, ErrMiss)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[key]
	if !ok {
		s.stats.Misses++
		return nil, ErrMiss
	}
	rep, err := s.read(key)
	switch {
	case err == nil:
	case errors.Is(err, errStale):
		s.dropLocked(e)
		s.stats.SchemaStale++
		os.Remove(s.path(key)) //icrvet:ignore droppederr stale-schema entry: removal is best-effort, the index entry is already gone
		s.stats.Misses++
		return nil, fmt.Errorf("%w: %v", ErrMiss, err)
	case errors.Is(err, errCorrupt):
		s.dropLocked(e)
		s.quarantineLocked(key)
		s.stats.Misses++
		return nil, fmt.Errorf("%w: %v", ErrMiss, err)
	case errors.Is(err, fs.ErrNotExist):
		// The file was deleted externally: a clean miss, nothing to
		// quarantine.
		s.dropLocked(e)
		s.stats.Misses++
		return nil, ErrMiss
	default:
		// Transient I/O failure. Keep the entry — the next Get may
		// succeed — and surface the error instead of re-simulating.
		s.stats.ReadErrors++
		return nil, fmt.Errorf("store: reading %s: %w", key, err)
	}
	s.lru.MoveToFront(e.elem)
	now := time.Now()
	os.Chtimes(s.path(key), now, now) //icrvet:ignore droppederr recency mtime is a best-effort hint for the next Open
	s.stats.Hits++
	return rep, nil
}

// Put stores a report under key, atomically (write temp + rename), then
// evicts least-recently-used entries until the size cap is respected. A
// Put that fails leaves the previous entry (if any) intact.
//
// Re-putting identical bytes is detected and skipped (recency still
// refreshes). Content addressing makes this the common shape of a
// duplicate: at-least-once cluster execution or two processes sharing the
// directory produce byte-identical reports for the same key, and skipping
// the rewrite avoids both the write amplification and a quarantine window
// for concurrent readers.
func (s *Store) Put(ctx context.Context, key string, rep *metrics.Report) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if !ValidKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	if rep == nil {
		return errors.New("store: nil report")
	}
	payload, err := json.Marshal(rep)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	buf := make([]byte, headerSize, headerSize+len(payload))
	copy(buf[0:4], magic[:])
	binary.LittleEndian.PutUint32(buf[4:8], FormatVersion)
	binary.LittleEndian.PutUint32(buf[8:12], metrics.ReportSchemaVersion)
	binary.LittleEndian.PutUint64(buf[12:20], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(buf[20:20+sha256.Size], sum[:])
	buf = append(buf, payload...)

	s.mu.Lock()
	if old, ok := s.index[key]; ok && old.size == int64(len(payload)) {
		if cur, err := os.ReadFile(s.path(key)); err == nil && bytes.Equal(cur, buf) {
			s.lru.MoveToFront(old.elem)
			now := time.Now()
			os.Chtimes(s.path(key), now, now) //icrvet:ignore droppederr recency mtime is a best-effort hint for the next Open
			s.stats.DupPuts++
			s.mu.Unlock()
			return nil
		}
	}
	if err := s.writeAtomic(key, buf); err != nil {
		s.stats.PutErrors++
		s.mu.Unlock()
		return err
	}
	if old, ok := s.index[key]; ok {
		s.bytes -= old.size
		old.size = int64(len(payload))
		s.bytes += old.size
		s.lru.MoveToFront(old.elem)
	} else {
		e := &entry{key: key, size: int64(len(payload))}
		e.elem = s.lru.PushFront(e)
		s.index[key] = e
		s.bytes += e.size
	}
	s.stats.Puts++
	evicted := s.evictLocked()
	s.mu.Unlock()
	if evicted > 0 && s.onEvict != nil {
		s.onEvict(evicted)
	}
	return nil
}

// errStale marks an entry written under an older (or newer) format or
// report schema: invalid, but not corrupt.
var errStale = errors.New("store: stale format or schema version")

// errCorrupt marks an entry whose bytes were read fine but do not
// validate: bad magic, length mismatch, checksum failure, undecodable
// payload. Corrupt entries are quarantined; transient I/O errors (which
// never wrap errCorrupt) are surfaced instead.
var errCorrupt = errors.New("store: corrupt entry")

// read loads and validates one entry. Callers hold s.mu. A returned error
// wraps errStale (invalid but clean), errCorrupt (quarantine it), or is a
// raw I/O error from the filesystem (transient, caller decides).
func (s *Store) read(key string) (*metrics.Report, error) {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, err
	}
	if len(data) < headerSize || !bytes.Equal(data[0:4], magic[:]) {
		return nil, fmt.Errorf("%w: bad magic or truncated header", errCorrupt)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != FormatVersion {
		return nil, fmt.Errorf("%w: container format %d", errStale, v)
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != metrics.ReportSchemaVersion {
		return nil, fmt.Errorf("%w: report schema %d", errStale, v)
	}
	plen := binary.LittleEndian.Uint64(data[12:20])
	payload := data[headerSize:]
	if uint64(len(payload)) != plen {
		return nil, fmt.Errorf("%w: payload length %d, header says %d", errCorrupt, len(payload), plen)
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], data[20:20+sha256.Size]) {
		return nil, fmt.Errorf("%w: payload checksum mismatch", errCorrupt)
	}
	var rep metrics.Report
	if err := json.Unmarshal(payload, &rep); err != nil {
		if errors.Is(err, metrics.ErrReportSchema) {
			return nil, fmt.Errorf("%w: %v", errStale, err)
		}
		return nil, fmt.Errorf("%w: decoding payload: %v", errCorrupt, err)
	}
	return &rep, nil
}

// writeAtomic writes buf to key's path via a temp file and rename.
func (s *Store) writeAtomic(key string, buf []byte) error {
	f, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	cleanup := func() {
		f.Close()      //icrvet:ignore droppederr temp file is removed on the next line either way
		os.Remove(tmp) //icrvet:ignore droppederr best-effort removal of a failed write's temp file
	}
	if _, err := f.Write(buf); err != nil {
		cleanup()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp) //icrvet:ignore droppederr best-effort removal of a failed write's temp file
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, s.path(key)); err != nil {
		os.Remove(tmp) //icrvet:ignore droppederr best-effort removal of a failed write's temp file
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// evictLocked removes LRU entries until the cap is respected, returning
// how many were evicted. The most recent entry is never evicted, so a cap
// smaller than one report still serves the warm path.
func (s *Store) evictLocked() int {
	if s.max < 0 {
		return 0
	}
	n := 0
	for s.bytes > s.max && s.lru.Len() > 1 {
		back := s.lru.Back()
		e := back.Value.(*entry)
		s.dropLocked(e)
		os.Remove(s.path(e.key)) //icrvet:ignore droppederr eviction removal is best-effort; the index entry is already gone
		s.stats.Evictions++
		n++
	}
	return n
}

// dropLocked removes e from the index and LRU list.
func (s *Store) dropLocked(e *entry) {
	s.lru.Remove(e.elem)
	delete(s.index, e.key)
	s.bytes -= e.size
}

// quarantineLocked renames a corrupt entry aside so it is never re-read;
// quarantined files are ignored by Open and count toward nothing.
func (s *Store) quarantineLocked(key string) {
	os.Rename(s.path(key), s.path(key)+quarantineSuffix) //icrvet:ignore droppederr quarantine is best-effort: on failure the entry is already unindexed
	s.stats.Quarantined++
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+entrySuffix)
}

// ValidKey accepts lowercase-hex keys only (runner.Key.String()'s form),
// which also guarantees the key is a safe file name and a safe URL path
// segment for the shard protocol.
func ValidKey(key string) bool {
	if len(key) == 0 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
