package workload

import (
	"testing"

	"repro/internal/isa"
)

func TestAllProfilesValidate(t *testing.T) {
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	if len(Profiles()) != 8 {
		t.Fatalf("want 8 benchmark profiles (paper §4), got %d", len(Profiles()))
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("ByName(%q) returned %q", name, p.Name)
		}
	}
	if _, err := ByName("swim"); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestDeterminism(t *testing.T) {
	const n = 5000
	collect := func() []isa.Inst {
		g := MustNew(Vpr(), 7)
		out := make([]isa.Inst, 0, n)
		for i := 0; i < n; i++ {
			in, ok := g.Next()
			if !ok {
				t.Fatal("stream ended early")
			}
			out = append(out, in)
		}
		return out
	}
	a, b := collect(), collect()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Different seed must diverge.
	g2 := MustNew(Vpr(), 8)
	diverged := false
	for i := 0; i < n; i++ {
		in, _ := g2.Next()
		if in != a[i] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("different seeds should produce different streams")
	}
}

func TestInstructionMixRoughlyMatchesProfile(t *testing.T) {
	for _, p := range Profiles() {
		g := MustNew(p, 1)
		const n = 60000
		var loads, stores, branches, fps int
		for i := 0; i < n; i++ {
			in, ok := g.Next()
			if !ok {
				t.Fatalf("%s: stream ended", p.Name)
			}
			switch in.Op {
			case isa.OpLoad:
				loads++
			case isa.OpStore:
				stores++
			case isa.OpBranch, isa.OpJump, isa.OpCall, isa.OpReturn:
				branches++
			case isa.OpFPALU, isa.OpFPMul, isa.OpFPDiv:
				fps++
			}
		}
		lf := float64(loads) / n
		sf := float64(stores) / n
		// Terminators dilute the body mix; allow a generous band.
		if lf < p.LoadFrac*0.6 || lf > p.LoadFrac*1.2 {
			t.Errorf("%s: load frac %.3f vs profile %.3f", p.Name, lf, p.LoadFrac)
		}
		if sf < p.StoreFrac*0.6 || sf > p.StoreFrac*1.2 {
			t.Errorf("%s: store frac %.3f vs profile %.3f", p.Name, sf, p.StoreFrac)
		}
		bf := float64(branches) / n
		if bf < 0.05 || bf > 0.40 {
			t.Errorf("%s: control frac %.3f out of plausible band", p.Name, bf)
		}
		if p.FPFrac > 0.2 && fps == 0 {
			t.Errorf("%s: FP-heavy profile generated no FP ops", p.Name)
		}
	}
}

func TestValidInstructions(t *testing.T) {
	g := MustNew(Gcc(), 3)
	var prevNextPC uint64
	for i := 0; i < 30000; i++ {
		in, ok := g.Next()
		if !ok {
			t.Fatal("stream ended")
		}
		if !in.Op.Valid() {
			t.Fatalf("instruction %d has invalid op", i)
		}
		if in.Op.IsMem() {
			if in.Addr < dataBase {
				t.Fatalf("instruction %d: memory address %#x inside code", i, in.Addr)
			}
			if in.Size == 0 {
				t.Fatalf("instruction %d: zero access size", i)
			}
		}
		if in.Op.IsCtrl() && in.Taken && in.Target == 0 {
			t.Fatalf("instruction %d: taken control with zero target", i)
		}
		if in.PC < codeBase {
			t.Fatalf("instruction %d: PC %#x below code base", i, in.PC)
		}
		// Control flow consistency: each instruction must start where the
		// previous one said it would.
		if i > 0 && in.PC != prevNextPC {
			t.Fatalf("instruction %d: PC %#x, predecessor promised %#x", i, in.PC, prevNextPC)
		}
		prevNextPC = in.NextPC()
	}
}

func TestCallsAndReturnsBalance(t *testing.T) {
	g := MustNew(Vortex(), 5)
	depth := 0
	maxDepth := 0
	for i := 0; i < 100000; i++ {
		in, _ := g.Next()
		switch in.Op {
		case isa.OpCall:
			depth++
			if depth > maxDepth {
				maxDepth = depth
			}
		case isa.OpReturn:
			depth--
			if depth < 0 {
				t.Fatal("return without call")
			}
		}
	}
	if maxDepth == 0 {
		t.Error("no calls generated")
	}
	if maxDepth > 64 {
		t.Errorf("call depth %d implausible", maxDepth)
	}
}

func TestRegionKinds(t *testing.T) {
	for k, want := range map[RegionKind]string{
		Stream: "stream", Strided: "strided", Chase: "chase",
		Hot: "hot", Stack: "stack", RegionKind(99): "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("RegionKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestMcfChasesSerialize(t *testing.T) {
	// mcf's chase loads should frequently carry a dependence on the
	// previous chase load — the serialization that defines its behaviour.
	g := MustNew(Mcf(), 2)
	var chaseLoads, serialized int
	for i := 0; i < 50000; i++ {
		in, _ := g.Next()
		if in.Op == isa.OpLoad && in.Addr >= dataBase && in.Addr < dataBase+4*MB+1*MB {
			chaseLoads++
			if in.SrcDist1 > 0 && in.SrcDist1 < 512 {
				serialized++
			}
		}
	}
	if chaseLoads < 1000 {
		t.Fatalf("too few chase loads: %d", chaseLoads)
	}
	if float64(serialized)/float64(chaseLoads) < 0.8 {
		t.Errorf("only %d/%d chase loads serialized", serialized, chaseLoads)
	}
}

func TestWorkingSetDistinctness(t *testing.T) {
	// mcf must touch far more distinct blocks than mesa over the same
	// window: that is the locality contrast the paper's results rest on.
	distinct := func(p Profile) int {
		g := MustNew(p, 1)
		seen := map[uint64]bool{}
		for i := 0; i < 80000; i++ {
			in, _ := g.Next()
			if in.Op.IsMem() {
				seen[in.Addr/64] = true
			}
		}
		return len(seen)
	}
	m, s := distinct(Mcf()), distinct(Mesa())
	if m < 3*s {
		t.Errorf("mcf distinct blocks (%d) should dwarf mesa (%d)", m, s)
	}
}

func TestLayoutMatchesGeneratedAddresses(t *testing.T) {
	for _, p := range Profiles() {
		ranges := Layout(p)
		if len(ranges) != len(p.Regions) {
			t.Fatalf("%s: %d ranges for %d regions", p.Name, len(ranges), len(p.Regions))
		}
		// Ranges must be disjoint and ordered.
		for i := 1; i < len(ranges); i++ {
			if ranges[i].Start <= ranges[i-1].End {
				t.Errorf("%s: ranges %d and %d overlap", p.Name, i-1, i)
			}
		}
		// Every generated memory address must fall inside some region's
		// range (Stack/Hot stay within Size; Stream/Chase wrap within).
		g := MustNew(p, 1)
		inRange := func(a uint64) bool {
			for _, r := range ranges {
				if a >= r.Start && a < r.End {
					return true
				}
			}
			return false
		}
		for i := 0; i < 20000; i++ {
			in, _ := g.Next()
			if in.Op.IsMem() && !inRange(in.Addr) {
				t.Fatalf("%s: address %#x outside all region ranges", p.Name, in.Addr)
			}
		}
	}
}

func TestLayoutSeedIndependent(t *testing.T) {
	a := Layout(Vpr())
	b := Layout(Vpr())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Layout must be deterministic")
		}
	}
}

func TestInvalidProfiles(t *testing.T) {
	bad := []Profile{
		{},
		{Name: "x", LoadFrac: 0.8, StoreFrac: 0.3, CodeBlocks: 10, MeanBlockLen: 5,
			Regions: []RegionSpec{{Kind: Hot, Weight: 1, Size: KB}}, DepGeomP: 0.5},
		{Name: "x", LoadFrac: 0.2, StoreFrac: 0.1, CodeBlocks: 2, MeanBlockLen: 5,
			Regions: []RegionSpec{{Kind: Hot, Weight: 1, Size: KB}}, DepGeomP: 0.5},
		{Name: "x", LoadFrac: 0.2, StoreFrac: 0.1, CodeBlocks: 10, MeanBlockLen: 5,
			DepGeomP: 0.5},
		{Name: "x", LoadFrac: 0.2, StoreFrac: 0.1, CodeBlocks: 10, MeanBlockLen: 5,
			Regions: []RegionSpec{{Kind: Hot, Weight: 1, Size: KB}}, DepGeomP: 1.5},
	}
	for i, p := range bad {
		if _, err := New(p, 1); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}
