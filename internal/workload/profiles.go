package workload

import "fmt"

// KB is one kilobyte; MB one megabyte.
const (
	KB uint64 = 1 << 10
	MB uint64 = 1 << 20
)

// The region weights below are calibrated against the locality classes of
// the Spec2000 applications on the paper's 16KB 4-way dL1. Rules of thumb
// per access: a Chase region far larger than the cache misses ~90-95%; a
// Stream region misses ~1/8 (one block fill per eight 8-byte steps); a Hot
// region that fits in the cache misses ~1-2%; Stack misses ~0%.

// Gzip models the compression phases of 164.gzip: streaming I/O buffers,
// a hot set of frequency tables, tight loops, very predictable branches.
func Gzip() Profile {
	return Profile{
		Name:     "gzip",
		LoadFrac: 0.24, StoreFrac: 0.11,
		FPFrac: 0.0, MulFrac: 0.04, DivFrac: 0.005,
		CodeBlocks: 96, MeanBlockLen: 7, Funcs: 4,
		LoopFrac: 0.30, LoopMean: 12,
		CondBias: []float64{0.96, 0.04, 0.9, 0.98},
		Regions: []RegionSpec{
			{Kind: Stream, Weight: 0.16, Size: 128 * KB},
			{Kind: Hot, Weight: 0.58, Size: 6 * KB, ZipfS: 1.6, SetSpread: 28},
			{Kind: Stack, Weight: 0.24, Size: 2 * KB},
			{Kind: Spill, Weight: 0.02, Size: 32 * KB},
		},
		DepGeomP: 0.45, LoadUseProb: 0.90,
	}
}

// Vpr models 175.vpr (FPGA place & route): pointer work over the routing
// graph, a hot placement core, an occasional channel sweep.
func Vpr() Profile {
	return Profile{
		Name:     "vpr",
		LoadFrac: 0.27, StoreFrac: 0.10,
		FPFrac: 0.15, MulFrac: 0.05, DivFrac: 0.01,
		CodeBlocks: 160, MeanBlockLen: 6, Funcs: 6,
		LoopFrac: 0.24, LoopMean: 7,
		CondBias: []float64{0.94, 0.06, 0.97, 0.8},
		Regions: []RegionSpec{
			{Kind: Chase, Weight: 0.020, Size: 256 * KB},
			{Kind: Stream, Weight: 0.06, Size: 64 * KB},
			{Kind: Hot, Weight: 0.62, Size: 7 * KB, ZipfS: 1.5, SetSpread: 16},
			{Kind: Stack, Weight: 0.265, Size: 2 * KB},
			{Kind: Spill, Weight: 0.035, Size: 24 * KB},
		},
		DepGeomP: 0.45, LoadUseProb: 0.90,
	}
}

// Gcc models 176.gcc: a large code footprint (instruction-cache pressure),
// branchy control, mixed data locality over IR structures.
func Gcc() Profile {
	return Profile{
		Name:     "gcc",
		LoadFrac: 0.26, StoreFrac: 0.13,
		FPFrac: 0.0, MulFrac: 0.03, DivFrac: 0.004,
		CodeBlocks: 600, MeanBlockLen: 6, Funcs: 24,
		LoopFrac: 0.18, LoopMean: 5,
		CondBias: []float64{0.93, 0.07, 0.8, 0.2, 0.97},
		Regions: []RegionSpec{
			{Kind: Chase, Weight: 0.020, Size: 512 * KB},
			{Kind: Stream, Weight: 0.06, Size: 64 * KB},
			{Kind: Hot, Weight: 0.58, Size: 8 * KB, ZipfS: 1.45, SetSpread: 32},
			{Kind: Stack, Weight: 0.315, Size: 3 * KB},
			{Kind: Spill, Weight: 0.025, Size: 24 * KB},
		},
		DepGeomP: 0.48, LoadUseProb: 0.88,
	}
}

// Mcf models 181.mcf (network simplex): pointer chasing across a
// multi-megabyte arc/node graph with pathological locality; the paper
// notes its dL1 behaves so poorly that replication costs it nothing.
func Mcf() Profile {
	return Profile{
		Name:     "mcf",
		LoadFrac: 0.33, StoreFrac: 0.08,
		FPFrac: 0.0, MulFrac: 0.03, DivFrac: 0.002,
		CodeBlocks: 72, MeanBlockLen: 5, Funcs: 4,
		LoopFrac: 0.30, LoopMean: 18,
		CondBias: []float64{0.93, 0.1, 0.8},
		Regions: []RegionSpec{
			{Kind: Chase, Weight: 0.22, Size: 4 * MB},
			{Kind: Hot, Weight: 0.42, Size: 4 * KB, ZipfS: 1.6, SetSpread: 8},
			{Kind: Stack, Weight: 0.33, Size: 2 * KB},
			{Kind: Spill, Weight: 0.03, Size: 16 * KB},
		},
		DepGeomP: 0.55, LoadUseProb: 0.92,
	}
}

// Parser models 197.parser: dictionary lookups (pointer-ish) against a hot
// working set of grammar structures.
func Parser() Profile {
	return Profile{
		Name:     "parser",
		LoadFrac: 0.26, StoreFrac: 0.11,
		FPFrac: 0.0, MulFrac: 0.03, DivFrac: 0.003,
		CodeBlocks: 320, MeanBlockLen: 6, Funcs: 12,
		LoopFrac: 0.20, LoopMean: 6,
		CondBias: []float64{0.94, 0.06, 0.8, 0.97},
		Regions: []RegionSpec{
			{Kind: Chase, Weight: 0.025, Size: 512 * KB},
			{Kind: Stream, Weight: 0.07, Size: 32 * KB},
			{Kind: Hot, Weight: 0.56, Size: 7 * KB, ZipfS: 1.5, SetSpread: 28},
			{Kind: Stack, Weight: 0.32, Size: 2 * KB},
			{Kind: Spill, Weight: 0.025, Size: 24 * KB},
		},
		DepGeomP: 0.47, LoadUseProb: 0.88,
	}
}

// Mesa models 177.mesa (software OpenGL): floating-point heavy, streaming
// vertex data, extremely regular control — the most cache-friendly of the
// set.
func Mesa() Profile {
	return Profile{
		Name:     "mesa",
		LoadFrac: 0.25, StoreFrac: 0.13,
		FPFrac: 0.45, MulFrac: 0.14, DivFrac: 0.015,
		CodeBlocks: 200, MeanBlockLen: 8, Funcs: 8,
		LoopFrac: 0.30, LoopMean: 16,
		CondBias: []float64{0.96, 0.04, 0.9},
		Regions: []RegionSpec{
			{Kind: Stream, Weight: 0.10, Size: 32 * KB},
			{Kind: Hot, Weight: 0.60, Size: 7 * KB, ZipfS: 1.6},
			{Kind: Stack, Weight: 0.285, Size: 2 * KB},
			{Kind: Spill, Weight: 0.015, Size: 24 * KB},
		},
		DepGeomP: 0.40, LoadUseProb: 0.88,
	}
}

// Vortex models 255.vortex (OO database): store-heavy transactions over
// hot object sets with occasional cold traversals.
func Vortex() Profile {
	return Profile{
		Name:     "vortex",
		LoadFrac: 0.25, StoreFrac: 0.17,
		FPFrac: 0.0, MulFrac: 0.03, DivFrac: 0.003,
		CodeBlocks: 440, MeanBlockLen: 6, Funcs: 20,
		LoopFrac: 0.18, LoopMean: 5,
		CondBias: []float64{0.95, 0.05, 0.9, 0.8},
		Regions: []RegionSpec{
			{Kind: Chase, Weight: 0.015, Size: 256 * KB},
			{Kind: Stream, Weight: 0.05, Size: 64 * KB},
			{Kind: Hot, Weight: 0.535, Size: 8 * KB, ZipfS: 1.5, SetSpread: 24},
			{Kind: Stack, Weight: 0.36, Size: 3 * KB},
			{Kind: Spill, Weight: 0.04, Size: 32 * KB},
		},
		DepGeomP: 0.46, LoadUseProb: 0.88,
	}
}

// Bzip2 models 256.bzip2: block-sorting compression with large streaming
// buffers and strided suffix-array style sweeps.
func Bzip2() Profile {
	return Profile{
		Name:     "bzip2",
		LoadFrac: 0.26, StoreFrac: 0.12,
		FPFrac: 0.0, MulFrac: 0.04, DivFrac: 0.004,
		CodeBlocks: 112, MeanBlockLen: 7, Funcs: 4,
		LoopFrac: 0.32, LoopMean: 14,
		CondBias: []float64{0.94, 0.06, 0.85},
		Regions: []RegionSpec{
			{Kind: Stream, Weight: 0.25, Size: 256 * KB},
			{Kind: Strided, Weight: 0.012, Size: 128 * KB, Stride: 520},
			{Kind: Hot, Weight: 0.42, Size: 7 * KB, ZipfS: 1.5},
			{Kind: Stack, Weight: 0.298, Size: 2 * KB},
			{Kind: Spill, Weight: 0.02, Size: 32 * KB},
		},
		DepGeomP: 0.47, LoadUseProb: 0.88,
	}
}

// Flux is a phase-shifting workload: each ~240K-instruction period spends
// its first two thirds in a cache-resident hot regime (60% of memory work
// in a hot 6KB Zipf set — dead lines abound, replication is nearly free
// and the store-heavy hot set needs it) and its last third in a mixed
// adverse regime: the hot slots stream through a 192KB buffer while the
// warm slots sweep a 10KB array line by line. The warm sweep is the trap
// for any fixed decay window: its lines are re-touched every ~2-3K cycles,
// so a relaxed (~1000-cycle) window keeps declaring them dead between
// touches and a dead-first replicator keeps displacing them — every
// displacement buys a writeback, a refetch, and a miss — while a
// conservative (~4000-cycle) window never does. The hot regime pulls the
// other way: a conservative dead-only policy finds too little dead space
// to protect the store-heavy hot set. The boundary is jittered so phase
// flips never align with observation epochs or sampling windows. No single
// static ICR configuration suits both regimes, which is what the
// ICR-ADAPT controller exploits.
func Flux() Profile {
	return Profile{
		Name:     "flux",
		LoadFrac: 0.27, StoreFrac: 0.12,
		FPFrac: 0.05, MulFrac: 0.04, DivFrac: 0.005,
		CodeBlocks: 128, MeanBlockLen: 6, Funcs: 5,
		LoopFrac: 0.26, LoopMean: 9,
		CondBias: []float64{0.95, 0.05, 0.9},
		Regions: []RegionSpec{
			{Kind: Hot, Weight: 0.43, Size: 6 * KB, ZipfS: 1.6},
			{Kind: Strided, Weight: 0.18, Size: 6 * KB, Stride: 64},
			{Kind: Stream, Weight: 0.03, Size: 192 * KB},
			{Kind: Stack, Weight: 0.34, Size: 2 * KB},
			{Kind: Spill, Weight: 0.01, Size: 16 * KB},
		},
		DepGeomP: 0.46, LoadUseProb: 0.90,
		Phases: []PhaseSpec{
			{Start: 0, Map: []int{0, 0, 2, 3, 4}},
			{Start: 160_000, Jitter: 8_000, Map: []int{2, 1, 2, 3, 4}},
		},
		PhasePeriod: 240_000,
	}
}

// Drift is a one-shot phase shift: a hot-set regime for the first ~400K
// instructions, after which the hot-bound slots permanently stream over a
// 256KB buffer (a program moving from a compute phase into an output
// phase). Unlike Flux there is no recovery: a controller that ramped up
// must detect the regime change and back off once.
func Drift() Profile {
	return Profile{
		Name:     "drift",
		LoadFrac: 0.25, StoreFrac: 0.13,
		FPFrac: 0.0, MulFrac: 0.04, DivFrac: 0.004,
		CodeBlocks: 112, MeanBlockLen: 7, Funcs: 4,
		LoopFrac: 0.30, LoopMean: 12,
		CondBias: []float64{0.96, 0.04, 0.9},
		Regions: []RegionSpec{
			{Kind: Hot, Weight: 0.55, Size: 7 * KB, ZipfS: 1.6, SetSpread: 28},
			{Kind: Stream, Weight: 0.07, Size: 256 * KB},
			{Kind: Stack, Weight: 0.33, Size: 2 * KB},
			{Kind: Spill, Weight: 0.05, Size: 24 * KB},
		},
		DepGeomP: 0.46, LoadUseProb: 0.90,
		Phases: []PhaseSpec{
			{Start: 0, Map: []int{0, 1, 2, 3}},
			{Start: 400_000, Jitter: 20_000, Map: []int{1, 0, 2, 3}},
		},
	}
}

// Profiles returns the eight benchmark profiles in a stable order.
func Profiles() []Profile {
	return []Profile{
		Gzip(), Vpr(), Gcc(), Mcf(), Parser(), Mesa(), Vortex(), Bzip2(),
	}
}

// PhaseProfiles returns the phase-shifting workloads in a stable order.
// They are deliberately not part of Profiles: the paper's eight-benchmark
// sweeps (and their goldens) stay exactly as they were, and phase
// workloads are opted into by name.
func PhaseProfiles() []Profile {
	return []Profile{Flux(), Drift()}
}

// Names returns the benchmark names in the Profiles order.
func Names() []string {
	ps := Profiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// ByName resolves a profile by benchmark name, checking the eight paper
// benchmarks first and then the phase-shifting workloads.
func ByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	for _, p := range PhaseProfiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}
