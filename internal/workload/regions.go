package workload

import "math/rand"

// RegionKind classifies a data region's access pattern.
type RegionKind uint8

// Region kinds. Each models a locality class that dominates some of the
// Spec2000 applications the paper evaluates.
const (
	// Stream walks sequentially through a buffer in 8-byte steps
	// (compression input/output buffers; excellent spatial locality).
	Stream RegionKind = iota + 1
	// Strided walks with a large fixed stride (row/column sweeps; poor
	// spatial locality, conflict-prone).
	Strided
	// Chase follows a random permutation cycle over cache blocks
	// (pointer-chasing; near-zero locality, serialized loads — the mcf
	// pattern).
	Chase
	// Hot draws blocks from a Zipf distribution (a small set of hot
	// structures absorbs most references — the pattern that makes ICR
	// work: hot data replicates itself).
	Hot
	// Stack accesses a small frame region around a slowly moving stack
	// pointer (very high locality).
	Stack
	// Spill models written-then-reread temporaries over a region larger
	// than the cache: stores advance a write cursor and loads trail it by
	// a lag that exceeds the cache capacity, so spilled blocks are
	// written, evicted, and then re-read. This is the access pattern that
	// makes leftover replicas valuable on primary misses (§5.6).
	Spill
)

// String returns the kind name.
func (k RegionKind) String() string {
	switch k {
	case Stream:
		return "stream"
	case Strided:
		return "strided"
	case Chase:
		return "chase"
	case Hot:
		return "hot"
	case Stack:
		return "stack"
	case Spill:
		return "spill"
	default:
		return "unknown"
	}
}

// RegionSpec declares one data region of a benchmark profile.
type RegionSpec struct {
	Kind RegionKind
	// Weight is the relative probability a memory reference targets this
	// region.
	Weight float64
	// Size is the region's extent in bytes.
	Size uint64
	// Stride is the step for Strided regions (bytes).
	Stride uint64
	// ZipfS is the Zipf skew for Hot regions (must be > 1; larger =
	// hotter).
	ZipfS float64
	// SetSpread, for Hot regions, concentrates the region's blocks into
	// this many consecutive cache sets of a 64-set dL1 (0 = natural
	// layout). Real data structures often map unevenly onto sets; the
	// resulting conflict misses are what leftover replicas — placed
	// N/2 sets away, in colder sets — can serve (§5.6).
	SetSpread int
}

// region is the runtime state of a RegionSpec.
type region struct {
	spec RegionSpec
	base uint64
	pos  uint64
	// perm is the pointer-chase successor permutation over blocks.
	perm []uint32
	zipf *rand.Zipf
	// lastLoadAt is the dynamic instruction index of this region's most
	// recent load, used to serialize pointer chases.
	lastLoadAt uint64
}

const blockBytes = 64

// newRegion materializes a region at the given base address.
func newRegion(spec RegionSpec, base uint64, rng *rand.Rand) *region {
	r := &region{spec: spec, base: base}
	nblk := spec.Size / blockBytes
	if nblk == 0 {
		nblk = 1
	}
	switch spec.Kind {
	case Chase:
		// A single-cycle random permutation (Sattolo's algorithm) so the
		// chase visits every block before repeating.
		r.perm = make([]uint32, nblk)
		for i := range r.perm {
			r.perm[i] = uint32(i)
		}
		for i := len(r.perm) - 1; i > 0; i-- {
			j := rng.Intn(i)
			r.perm[i], r.perm[j] = r.perm[j], r.perm[i]
		}
	case Hot:
		s := spec.ZipfS
		if s <= 1 {
			s = 1.3
		}
		r.zipf = rand.NewZipf(rng, s, 1, nblk-1)
	}
	return r
}

// next produces the next address for this region. Only Spill regions
// distinguish loads from stores.
func (r *region) next(rng *rand.Rand, store bool) uint64 {
	nblk := r.spec.Size / blockBytes
	if nblk == 0 {
		nblk = 1
	}
	switch r.spec.Kind {
	case Stream:
		addr := r.base + r.pos
		r.pos += 8
		if r.pos >= r.spec.Size {
			r.pos = 0
		}
		return addr
	case Strided:
		stride := r.spec.Stride
		if stride == 0 {
			stride = 256
		}
		addr := r.base + r.pos
		r.pos += stride
		if r.pos >= r.spec.Size {
			r.pos = (r.pos + 8) % stride // rotate the lane on wrap
		}
		return addr
	case Chase:
		r.pos = uint64(r.perm[r.pos%uint64(len(r.perm))])
		return r.base + r.pos*blockBytes + uint64(rng.Intn(8))*8
	case Hot:
		blk := r.zipf.Uint64()
		off := uint64(rng.Intn(8)) * 8
		if s := uint64(r.spec.SetSpread); s > 0 {
			// Concentrate blocks into s consecutive sets: one block per
			// set per "layer", layers a full 64-set span apart.
			return r.base + (blk%s)*blockBytes + (blk/s)*(64*blockBytes) + off
		}
		return r.base + blk*blockBytes + off
	case Stack:
		// A frame pointer that drifts slowly within the region.
		drift := uint64(rng.Intn(33)) * 8
		if rng.Intn(16) == 0 {
			r.pos = (r.pos + 256) % r.spec.Size
		}
		return r.base + (r.pos+drift)%r.spec.Size
	case Spill:
		// Stores advance a write cursor; loads trail it by ~Size/2 (with
		// a little jitter), re-reading blocks long after eviction.
		if store {
			addr := r.base + r.pos
			r.pos = (r.pos + 8) % r.spec.Size
			return addr
		}
		lag := r.spec.Size/2 + uint64(rng.Intn(8))*64
		return r.base + (r.pos+r.spec.Size-lag%r.spec.Size)%r.spec.Size
	default:
		return r.base
	}
}
