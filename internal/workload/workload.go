// Package workload synthesizes deterministic instruction streams whose
// locality characteristics model the eight Spec2000 applications the paper
// evaluates (§4). The paper's results are driven by reference locality —
// hot blocks attract replicas, dead blocks make room for them — so each
// profile reproduces an application's locality class (working-set sizes,
// pointer-chasing vs. streaming, branch predictability, code footprint)
// rather than its computation.
//
// A generated program is a static set of functions made of basic blocks;
// every static instruction has a fixed op class, and every static memory
// slot is bound to a data region. The dynamic walk re-executes this static
// code with per-visit branch outcomes, loop trip counts, and region
// addresses, all drawn from a seeded RNG, so a given (profile, seed) pair
// always produces the identical stream.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/isa"
)

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	Name string

	// Instruction mix (fractions of non-terminator instructions; the
	// remainder is integer ALU work).
	LoadFrac  float64
	StoreFrac float64
	FPFrac    float64 // fraction of ALU work that is floating point
	MulFrac   float64 // fraction of ALU work that is multiply
	DivFrac   float64 // fraction of ALU work that is divide

	// Static code shape.
	CodeBlocks   int       // total basic blocks across all functions
	MeanBlockLen int       // mean instructions per block (excl. terminator)
	Funcs        int       // number of callable functions (>= 2)
	LoopFrac     float64   // fraction of blocks that are loop heads
	LoopMean     int       // mean dynamic trip count of a loop
	CondBias     []float64 // per-block taken-bias choices for if-branches

	// Data regions.
	Regions []RegionSpec

	// DepGeomP is the parameter of the geometric dependence-distance
	// distribution (larger = tighter dependences = less ILP).
	DepGeomP float64

	// LoadUseProb is the probability that the instruction following a
	// load consumes the load's result (distance-1 dependence). Real code
	// uses most load results within an instruction or two, which is what
	// exposes load-hit latency — the effect behind the paper's
	// BaseP-vs-BaseECC gap. Defaults to 0.55 when zero.
	LoadUseProb float64

	// Phases, when non-empty, makes the workload shift locality regime
	// mid-run: at each phase's start (in dynamic instructions) the static
	// code's region bindings are remapped through the phase's Map. Static
	// code is built once — a slot bound to region i at build time accesses
	// region Map[i] while the phase is active — so a shift instantly
	// redirects the whole access mix without perturbing code layout,
	// control flow, or any other RNG draw. Profiles without phases draw
	// nothing extra: their streams are byte-identical to pre-phase builds.
	Phases []PhaseSpec

	// PhasePeriod, when > 0, repeats the phase schedule cyclically every
	// PhasePeriod instructions. 0 runs the schedule once; the last phase
	// then persists to the end of the run.
	PhasePeriod uint64
}

// PhaseSpec is one locality regime in a phase schedule.
type PhaseSpec struct {
	// Start is the dynamic instruction count (within the period, when
	// PhasePeriod > 0) at which the phase begins.
	Start uint64
	// Jitter widens the start by a seeded draw in [0, Jitter), so phase
	// boundaries do not align with observation or sampling windows. The
	// draw happens once at generator construction.
	Jitter uint64
	// Map remaps static region bindings for the duration of the phase: a
	// slot bound to region i accesses region Map[i]. Must have exactly one
	// entry per profile region.
	Map []int
}

// Validate reports configuration errors.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile needs a name")
	case p.LoadFrac < 0 || p.StoreFrac < 0 || p.LoadFrac+p.StoreFrac > 0.9:
		return fmt.Errorf("workload %s: bad load/store mix", p.Name)
	case p.CodeBlocks < 4 || p.MeanBlockLen < 2:
		return fmt.Errorf("workload %s: code too small", p.Name)
	case len(p.Regions) == 0:
		return fmt.Errorf("workload %s: no data regions", p.Name)
	case p.DepGeomP <= 0 || p.DepGeomP >= 1:
		return fmt.Errorf("workload %s: DepGeomP out of range", p.Name)
	}
	for i, ph := range p.Phases {
		if len(ph.Map) != len(p.Regions) {
			return fmt.Errorf("workload %s: phase %d maps %d regions, profile has %d",
				p.Name, i, len(ph.Map), len(p.Regions))
		}
		for _, to := range ph.Map {
			if to < 0 || to >= len(p.Regions) {
				return fmt.Errorf("workload %s: phase %d maps to region %d (out of range)", p.Name, i, to)
			}
		}
		if i > 0 && ph.Start <= p.Phases[i-1].Start {
			return fmt.Errorf("workload %s: phase starts must be strictly increasing", p.Name)
		}
		if p.PhasePeriod > 0 && ph.Start+ph.Jitter >= p.PhasePeriod {
			return fmt.Errorf("workload %s: phase %d start+jitter reaches past the period", p.Name, i)
		}
	}
	return nil
}

// staticInst is one slot of static code.
type staticInst struct {
	op     isa.Op
	region int // memory region index for loads/stores
}

// block is a static basic block. Its final instruction is a terminator
// decided by kind.
type block struct {
	insts   []staticInst
	startPC uint64
	kind    blockKind
	bias    float64 // taken bias for condKind
	callee  int     // function index for callKind
	isLast  bool    // last block of its function
}

type blockKind uint8

const (
	plainKind blockKind = iota + 1 // falls through (no terminator emitted)
	condKind                       // conditional branch, may skip next block
	loopKind                       // loop back-edge branch
	callKind                       // calls callee, then falls through
)

type fn struct {
	blocks []int // indices into Generator.blocks
}

// Generator produces the dynamic instruction stream. It implements
// isa.Stream and never ends; wrap with isa.Limit.
type Generator struct {
	profile Profile
	rng     *rand.Rand
	blocks  []block
	funcs   []fn
	regions []*region

	// Dynamic state.
	stack      []frameState
	count      uint64 // dynamic instructions emitted
	loopLeft   map[int]int
	sinceLoad  int    // body instructions since the last load (0 = load itself)
	lastLoadAt uint64 // dynamic index of the most recent load

	// Phase state (see Profile.Phases). phaseStarts holds each phase's
	// jittered start offset; regionMap is the active remap (nil =
	// identity); nextPhaseAt is the absolute instruction count of the next
	// shift (^0 when the schedule is exhausted).
	phaseStarts []uint64
	phaseIdx    int
	cycleBase   uint64
	regionMap   []int
	nextPhaseAt uint64
}

type frameState struct {
	fn    int
	block int // position within fn.blocks
	inst  int // next instruction within the block (len == terminator)
}

var _ isa.Stream = (*Generator)(nil)

// codeBase is where generated code begins; dataBase is where regions are
// laid out (far apart so code and data never alias).
const (
	codeBase = 0x0040_0000
	dataBase = 0x1000_0000
)

// New builds a generator for the profile with the given seed. The same
// (profile, seed) pair always yields the same stream.
func New(p Profile, seed int64) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{
		profile:  p,
		rng:      rand.New(rand.NewSource(seed ^ 0x5eed)),
		loopLeft: make(map[int]int),
	}
	g.layoutRegions()
	g.buildCode()
	g.initPhases()
	return g, nil
}

// initPhases draws each phase's jittered start and arms the first shift.
// Profiles without phases make zero RNG draws here, keeping their streams
// byte-identical to builds that predate phase support.
func (g *Generator) initPhases() {
	g.nextPhaseAt = ^uint64(0)
	phases := g.profile.Phases
	if len(phases) == 0 {
		return
	}
	g.phaseStarts = make([]uint64, len(phases))
	for i, ph := range phases {
		start := ph.Start
		if ph.Jitter > 0 {
			start += uint64(g.rng.Int63n(int64(ph.Jitter)))
		}
		g.phaseStarts[i] = start
	}
	g.nextPhaseAt = g.phaseStarts[0]
}

// phaseCheck applies any phase shift due at the current instruction count.
// The common case (no phases, or between shifts) is one comparison.
func (g *Generator) phaseCheck() {
	for g.count >= g.nextPhaseAt {
		g.regionMap = g.profile.Phases[g.phaseIdx].Map
		g.phaseIdx++
		switch {
		case g.phaseIdx < len(g.phaseStarts):
			g.nextPhaseAt = g.cycleBase + g.phaseStarts[g.phaseIdx]
		case g.profile.PhasePeriod > 0:
			g.cycleBase += g.profile.PhasePeriod
			g.phaseIdx = 0
			g.nextPhaseAt = g.cycleBase + g.phaseStarts[0]
		default:
			g.nextPhaseAt = ^uint64(0)
		}
	}
}

// regionOf resolves a static region binding through the active phase map.
func (g *Generator) regionOf(idx int) *region {
	if g.regionMap != nil {
		idx = g.regionMap[idx]
	}
	return g.regions[idx]
}

// MustNew is New for static profiles known to be valid.
func MustNew(p Profile, seed int64) *Generator {
	g, err := New(p, seed)
	if err != nil {
		panic(err)
	}
	return g
}

func (g *Generator) layoutRegions() {
	for i, rr := range Layout(g.profile) {
		g.regions = append(g.regions, newRegion(g.profile.Regions[i], rr.Start, g.rng))
	}
}

// RegionRange is the placed byte-address extent of one data region.
type RegionRange struct {
	Kind       RegionKind
	Start, End uint64
}

// Layout returns the deterministic address range of each region in a
// profile, in declaration order. Region placement does not depend on the
// seed, so callers (e.g. software replication-hint policies) can compute
// it without building a generator.
func Layout(p Profile) []RegionRange {
	out := make([]RegionRange, 0, len(p.Regions))
	base := uint64(dataBase)
	for _, spec := range p.Regions {
		span := spec.Size
		if spec.Kind == Hot && spec.SetSpread > 0 {
			// Set-concentrated hot regions stretch across layers that are
			// a full 64-set span apart (see region.next).
			nblk := spec.Size / blockBytes
			s := uint64(spec.SetSpread)
			layers := (nblk + s - 1) / s
			span = layers * 64 * blockBytes
		}
		out = append(out, RegionRange{Kind: spec.Kind, Start: base, End: base + span})
		// Pad between regions to avoid accidental adjacency.
		base += span + 1<<20
	}
	return out
}

// pickRegion selects a region index by weight.
func (g *Generator) pickRegion() int {
	var total float64
	for _, r := range g.regions {
		total += r.spec.Weight
	}
	x := g.rng.Float64() * total
	for i, r := range g.regions {
		x -= r.spec.Weight
		if x <= 0 {
			return i
		}
	}
	return len(g.regions) - 1
}

// pickALU draws an ALU op class from the profile mix.
func (g *Generator) pickALU() isa.Op {
	p := &g.profile
	y := g.rng.Float64()
	fp := g.rng.Float64() < p.FPFrac
	switch {
	case y < p.DivFrac:
		if fp {
			return isa.OpFPDiv
		}
		return isa.OpIntDiv
	case y < p.DivFrac+p.MulFrac:
		if fp {
			return isa.OpFPMul
		}
		return isa.OpIntMul
	default:
		if fp {
			return isa.OpFPALU
		}
		return isa.OpIntALU
	}
}

// stochRound rounds x to an integer, rounding the fractional part up with
// probability equal to its value, so quotas are unbiased for short blocks.
func (g *Generator) stochRound(x float64) int {
	n := int(x)
	if g.rng.Float64() < x-float64(n) {
		n++
	}
	return n
}

// blockOps assigns op classes to a block's body using per-block quotas for
// loads and stores (stochastically rounded, then shuffled), which keeps the
// dynamic instruction mix close to the profile even for small code
// footprints.
func (g *Generator) blockOps(length int) []isa.Op {
	p := &g.profile
	nLoad := g.stochRound(float64(length) * p.LoadFrac)
	nStore := g.stochRound(float64(length) * p.StoreFrac)
	if nLoad+nStore > length {
		nStore = length - nLoad
		if nStore < 0 {
			nStore, nLoad = 0, length
		}
	}
	ops := make([]isa.Op, 0, length)
	for i := 0; i < nLoad; i++ {
		ops = append(ops, isa.OpLoad)
	}
	for i := 0; i < nStore; i++ {
		ops = append(ops, isa.OpStore)
	}
	for len(ops) < length {
		ops = append(ops, g.pickALU())
	}
	g.rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
	return ops
}

func (g *Generator) buildCode() {
	p := &g.profile
	nf := p.Funcs
	if nf < 2 {
		nf = 2
	}
	perFn := p.CodeBlocks / nf
	if perFn < 2 {
		perFn = 2
	}
	pc := uint64(codeBase)
	for f := 0; f < nf; f++ {
		var fb fn
		for b := 0; b < perFn; b++ {
			length := 1 + g.rng.Intn(2*p.MeanBlockLen-1) // mean ~= MeanBlockLen
			blk := block{startPC: pc, kind: plainKind}
			for _, op := range g.blockOps(length) {
				si := staticInst{op: op}
				if op.IsMem() {
					si.region = g.pickRegion()
				}
				blk.insts = append(blk.insts, si)
			}
			// Decide the terminator kind. The last block of a function
			// always returns (main loops instead).
			last := b == perFn-1
			blk.isLast = last
			if !last {
				switch r := g.rng.Float64(); {
				case r < p.LoopFrac:
					blk.kind = loopKind
				case f == 0 && b%2 == 0 && nf > 1:
					// Main alternates calls to the other functions.
					blk.kind = callKind
					blk.callee = 1 + g.rng.Intn(nf-1)
				case len(p.CondBias) > 0 && b+2 < perFn:
					blk.kind = condKind
					blk.bias = p.CondBias[g.rng.Intn(len(p.CondBias))]
				}
			}
			// Plain interior blocks fall through without a terminator
			// instruction; every other kind ends with one.
			termSlots := 0
			if blk.isLast || blk.kind != plainKind {
				termSlots = 1
			}
			pc += uint64(4 * (len(blk.insts) + termSlots))
			fb.blocks = append(fb.blocks, len(g.blocks))
			g.blocks = append(g.blocks, blk)
		}
		g.funcs = append(g.funcs, fb)
	}
}

// depDistance draws a dependence distance (0 = none).
func (g *Generator) depDistance() uint16 {
	if g.rng.Float64() < 0.15 {
		return 0
	}
	d := 1
	for g.rng.Float64() > g.profile.DepGeomP && d < 15 {
		d++
	}
	return uint16(d)
}

// Next implements isa.Stream. The stream is infinite.
func (g *Generator) Next() (isa.Inst, bool) {
	if len(g.stack) == 0 {
		g.stack = append(g.stack, frameState{fn: 0})
	}
	g.phaseCheck()
	for {
		top := &g.stack[len(g.stack)-1]
		f := &g.funcs[top.fn]
		bi := f.blocks[top.block]
		blk := &g.blocks[bi]

		if top.inst < len(blk.insts) {
			in := g.emitBody(blk, top.inst)
			top.inst++
			g.count++
			return in, true
		}
		// Terminator.
		in, advanced := g.emitTerminator(top, blk, bi)
		if advanced {
			g.count++
			return in, true
		}
		// plainKind emits no terminator instruction: fall through.
	}
}

// emitBody materializes a body instruction from its static slot.
func (g *Generator) emitBody(blk *block, idx int) isa.Inst {
	si := blk.insts[idx]
	in := isa.Inst{
		PC:       blk.startPC + uint64(4*idx),
		Op:       si.op,
		SrcDist1: g.depDistance(),
		SrcDist2: 0,
	}
	if g.rng.Float64() < 0.4 {
		in.SrcDist2 = g.depDistance()
	}
	// Loop-carried dependence: the first slot of a loop body models the
	// induction variable, depending on itself one iteration back. This
	// keeps successive iterations from being fully independent, as in
	// real loops.
	if blk.kind == loopKind && idx == 0 {
		iterLen := len(blk.insts) + 1 // body + back-edge branch
		if iterLen < 1<<16 {
			in.SrcDist1 = uint16(iterLen)
		}
	}
	// Load-use chains: consume a recent load's result directly. Most real
	// load results are used within one or two instructions, which is what
	// exposes load-hit latency.
	if g.sinceLoad == 1 {
		lup := g.profile.LoadUseProb
		if lup == 0 {
			lup = 0.55
		}
		if g.rng.Float64() < lup {
			in.SrcDist1 = 1
		}
	} else if g.sinceLoad == 2 && g.rng.Float64() < 0.35 {
		in.SrcDist2 = 2
	}
	if si.op == isa.OpLoad {
		g.sinceLoad = 0
	} else if g.sinceLoad < 1<<30 {
		g.sinceLoad++
	}
	if si.op.IsMem() {
		r := g.regionOf(si.region)
		in.Addr = r.next(g.rng, si.op == isa.OpStore)
		in.Size = 8
		if si.op == isa.OpLoad {
			// Pointer chases serialize: each chase load depends on the
			// previous load of the same region.
			if r.spec.Kind == Chase && r.lastLoadAt > 0 {
				gap := g.count - r.lastLoadAt
				if gap >= 1 && gap < 512 {
					in.SrcDist1 = uint16(gap)
				}
			} else if g.lastLoadAt > 0 && g.rng.Float64() < 0.55 {
				// Address chains: many loads compute their address from
				// an earlier load (field access through a pointer, array
				// index loaded from memory), making load latency
				// cumulative rather than overlappable.
				gap := g.count - g.lastLoadAt
				if gap >= 1 && gap < 256 {
					in.SrcDist1 = uint16(gap)
				}
			}
			r.lastLoadAt = g.count
			g.lastLoadAt = g.count
		}
	}
	return in
}

// emitTerminator handles the end of a block, updating the frame. It
// returns (inst, true) when a control instruction is emitted, or
// (zero, false) for a plain fall-through.
func (g *Generator) emitTerminator(top *frameState, blk *block, bi int) (isa.Inst, bool) {
	termPC := blk.startPC + uint64(4*len(blk.insts))
	f := &g.funcs[top.fn]

	switch {
	case blk.isLast:
		if top.fn == 0 {
			// Main loops forever: jump back to its first block.
			first := &g.blocks[f.blocks[0]]
			top.block, top.inst = 0, 0
			return isa.Inst{PC: termPC, Op: isa.OpJump, Taken: true, Target: first.startPC}, true
		}
		// Return to caller.
		g.stack = g.stack[:len(g.stack)-1]
		caller := &g.stack[len(g.stack)-1]
		cf := &g.funcs[caller.fn]
		cblk := &g.blocks[cf.blocks[caller.block]]
		retPC := cblk.startPC + uint64(4*len(cblk.insts)) + 4
		caller.block++ // resume at the next block
		caller.inst = 0
		return isa.Inst{PC: termPC, Op: isa.OpReturn, Taken: true, Target: retPC}, true

	case blk.kind == loopKind:
		left, ok := g.loopLeft[bi]
		if !ok {
			// Trip count drawn per loop entry: 1 + geometric around mean.
			mean := g.profile.LoopMean
			if mean < 1 {
				mean = 4
			}
			left = 1 + g.rng.Intn(2*mean-1)
		}
		left--
		if left > 0 {
			g.loopLeft[bi] = left
			top.inst = 0 // re-run this block
			return isa.Inst{PC: termPC, Op: isa.OpBranch, Taken: true, Target: blk.startPC}, true
		}
		delete(g.loopLeft, bi)
		top.block++
		top.inst = 0
		return isa.Inst{PC: termPC, Op: isa.OpBranch, Taken: false, Target: blk.startPC}, true

	case blk.kind == condKind:
		taken := g.rng.Float64() < blk.bias
		if taken && top.block+2 < len(f.blocks) {
			skip := &g.blocks[f.blocks[top.block+2]]
			top.block += 2
			top.inst = 0
			return isa.Inst{PC: termPC, Op: isa.OpBranch, Taken: true, Target: skip.startPC}, true
		}
		top.block++
		top.inst = 0
		return isa.Inst{PC: termPC, Op: isa.OpBranch, Taken: false}, true

	case blk.kind == callKind:
		callee := &g.funcs[blk.callee]
		first := &g.blocks[callee.blocks[0]]
		top.inst = len(blk.insts) + 1 // mark terminator consumed (cosmetic)
		g.stack = append(g.stack, frameState{fn: blk.callee})
		return isa.Inst{PC: termPC, Op: isa.OpCall, Taken: true, Target: first.startPC}, true

	default: // plainKind: fall through, no instruction
		top.block++
		top.inst = 0
		return isa.Inst{}, false
	}
}

// NextWarm is the functional-warming variant of Next: it produces the next
// instruction's op, PC, address, and branch outcome — everything a
// functional model needs to keep caches, replication state, and branch
// predictors warm — but skips the draws that only parameterize
// out-of-order timing (dependence distances and load-use chains), which
// dominate Next's cost. Control flow, trip counts, and address streams are
// drawn from the same RNG with the same distributions, so the warmed
// stream is statistically identical to the detailed one; it is NOT the
// same realization (the per-instruction RNG draw sequence differs), which
// is exactly the accuracy contract of sampled simulation.
func (g *Generator) NextWarm() (isa.Inst, bool) {
	if len(g.stack) == 0 {
		g.stack = append(g.stack, frameState{fn: 0})
	}
	g.phaseCheck()
	for {
		top := &g.stack[len(g.stack)-1]
		f := &g.funcs[top.fn]
		bi := f.blocks[top.block]
		blk := &g.blocks[bi]

		if top.inst < len(blk.insts) {
			si := blk.insts[top.inst]
			in := isa.Inst{
				PC: blk.startPC + uint64(4*top.inst),
				Op: si.op,
			}
			// Dependence bookkeeping (sinceLoad, lastLoadAt) is kept — it
			// is assignment-only and lets the first detailed window after a
			// warming stretch draw its load-use and address chains from
			// accurate state. Only the RNG draws are skipped.
			if si.op == isa.OpLoad {
				g.sinceLoad = 0
			} else if g.sinceLoad < 1<<30 {
				g.sinceLoad++
			}
			if si.op.IsMem() {
				r := g.regionOf(si.region)
				in.Addr = r.next(g.rng, si.op == isa.OpStore)
				in.Size = 8
				if si.op == isa.OpLoad {
					r.lastLoadAt = g.count
					g.lastLoadAt = g.count
				}
			}
			top.inst++
			g.count++
			return in, true
		}
		in, advanced := g.emitTerminator(top, blk, bi)
		if advanced {
			g.count++
			return in, true
		}
	}
}

// Count returns the number of instructions emitted so far.
func (g *Generator) Count() uint64 { return g.count }
