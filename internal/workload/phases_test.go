package workload

import (
	"testing"

	"repro/internal/isa"
)

func TestPhaseProfilesValidate(t *testing.T) {
	for _, p := range PhaseProfiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if len(p.Phases) == 0 {
			t.Errorf("%s: phase profile has no phases", p.Name)
		}
		if _, err := ByName(p.Name); err != nil {
			t.Errorf("ByName(%q): %v", p.Name, err)
		}
	}
	// Phase workloads must not leak into the paper's eight-benchmark set
	// (that would change every existing sweep and golden).
	for _, p := range Profiles() {
		if len(p.Phases) > 0 {
			t.Errorf("%s: paper benchmark carries phases", p.Name)
		}
	}
}

// TestPhaseStreamDeterminism pins the determinism contract the adaptive
// experiments rest on: the same (profile, seed) pair yields a
// byte-identical instruction stream — including the jittered phase
// boundaries — and a different seed diverges.
func TestPhaseStreamDeterminism(t *testing.T) {
	const n = 300_000 // long enough to cross Flux's jittered boundary twice
	for _, p := range PhaseProfiles() {
		collect := func(seed int64) []isa.Inst {
			g := MustNew(p, seed)
			out := make([]isa.Inst, 0, n)
			for i := 0; i < n; i++ {
				in, ok := g.Next()
				if !ok {
					t.Fatalf("%s: stream ended early", p.Name)
				}
				out = append(out, in)
			}
			return out
		}
		a, b := collect(7), collect(7)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: instruction %d differs under the same seed: %+v vs %+v",
					p.Name, i, a[i], b[i])
			}
		}
		c := collect(8)
		diverged := false
		for i := range a {
			if c[i] != a[i] {
				diverged = true
				break
			}
		}
		if !diverged {
			t.Errorf("%s: different seeds should produce different streams", p.Name)
		}
	}
}

// regionShare returns the fraction of the next n instructions' memory
// accesses that land in region ri of the profile's layout.
func regionShare(t *testing.T, g *Generator, layout []RegionRange, ri int, n int) float64 {
	t.Helper()
	var mem, hit int
	for i := 0; i < n; i++ {
		in, ok := g.Next()
		if !ok {
			t.Fatal("stream ended early")
		}
		if !in.Op.IsMem() {
			continue
		}
		mem++
		if in.Addr >= layout[ri].Start && in.Addr < layout[ri].End {
			hit++
		}
	}
	if mem == 0 {
		t.Fatal("no memory accesses observed")
	}
	return float64(hit) / float64(mem)
}

// TestPhaseShiftRedirectsAccesses drives Flux across its first boundary
// and checks the shift actually moves the access mix: the streaming region
// is barely touched in the hot phase and dominant in the adverse phase.
func TestPhaseShiftRedirectsAccesses(t *testing.T) {
	p := Flux()
	layout := Layout(p)
	const stream = 2 // region index of the 192KB Stream region
	g := MustNew(p, 3)

	hotShare := regionShare(t, g, layout, stream, 100_000)
	if hotShare > 0.10 {
		t.Errorf("hot phase sends %.1f%% of accesses to the stream region, want <10%%", 100*hotShare)
	}
	// Skip past the (jittered) boundary, then sample well inside phase B.
	for g.Count() < 180_000 {
		if _, ok := g.Next(); !ok {
			t.Fatal("stream ended early")
		}
	}
	advShare := regionShare(t, g, layout, stream, 50_000)
	if advShare < 0.40 {
		t.Errorf("adverse phase sends %.1f%% of accesses to the stream region, want >40%%", 100*advShare)
	}
}

// TestPhasesApplyDuringWarming checks NextWarm shifts phases too: a
// sampled adaptive run warms through phase boundaries, so the warmed
// address stream must track the same schedule.
func TestPhasesApplyDuringWarming(t *testing.T) {
	p := Drift()
	layout := Layout(p)
	const stream = 1 // region index of the 256KB Stream region
	g := MustNew(p, 3)
	var mem, hit int
	for g.Count() < 500_000 {
		in, ok := g.NextWarm()
		if !ok {
			t.Fatal("stream ended early")
		}
		if g.Count() > 450_000 && in.Op.IsMem() { // well past the one-shot shift
			mem++
			if in.Addr >= layout[stream].Start && in.Addr < layout[stream].End {
				hit++
			}
		}
	}
	if share := float64(hit) / float64(mem); share < 0.40 {
		t.Errorf("post-shift warming sends %.1f%% of accesses to the stream region, want >40%%", 100*share)
	}
}
