package cliflag

import (
	"flag"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
)

// RegisterVersion installs the -version flag shared by every ICR command.
// After flag parsing, callers do:
//
//	if *showVersion {
//		fmt.Println(cliflag.Version(name))
//		return nil
//	}
func RegisterVersion(fs *flag.FlagSet) *bool {
	return fs.Bool("version", false, "print version information and exit")
}

// Version renders the one-line -version output for the named command from
// the build metadata the Go toolchain embeds: module version when built
// via `go install mod@version`, VCS revision and time when built from a
// checkout, and always the toolchain and platform.
func Version(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %s %s/%s", name, moduleVersion(), runtime.Version(), runtime.GOOS, runtime.GOARCH)
	if rev, t, dirty := vcsStamp(); rev != "" {
		fmt.Fprintf(&b, " (%s", rev)
		if t != "" {
			fmt.Fprintf(&b, " %s", t)
		}
		if dirty {
			b.WriteString(" dirty")
		}
		b.WriteString(")")
	}
	return b.String()
}

// moduleVersion returns the main module's version, or "devel" when built
// from a working tree.
func moduleVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok || bi.Main.Version == "" || bi.Main.Version == "(devel)" {
		return "devel"
	}
	return bi.Main.Version
}

// vcsStamp extracts the embedded VCS revision (truncated), commit time,
// and dirty bit; empty strings when the build carries no VCS metadata
// (e.g. `go build` outside a repository, or tests).
func vcsStamp() (rev, when string, dirty bool) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "", "", false
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
			if len(rev) > 12 {
				rev = rev[:12]
			}
		case "vcs.time":
			when = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	return rev, when, dirty
}
