package cliflag

import (
	"flag"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/store"
)

func parse(t *testing.T, withCache bool, args ...string) Sim {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var s Sim
	s.Register(fs)
	if withCache {
		s.RegisterCache(fs)
	}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRegisterDefaults(t *testing.T) {
	s := parse(t, true)
	if s.Instructions != config.DefaultInstructions {
		t.Errorf("Instructions = %d, want default %d", s.Instructions, config.DefaultInstructions)
	}
	if s.Seed != 1 || s.Parallel < 1 || s.Timeout != 0 || s.Store != "" || s.NoCache {
		t.Errorf("unexpected defaults: %+v", s)
	}
}

func TestRegisterParses(t *testing.T) {
	s := parse(t, true,
		"-instructions", "5000", "-seed", "9", "-parallel", "3",
		"-timeout", "2s", "-store", "/tmp/x", "-nocache")
	want := Sim{Instructions: 5000, Seed: 9, Parallel: 3,
		Timeout: 2 * time.Second, Store: "/tmp/x", NoCache: true}
	if s != want {
		t.Errorf("parsed %+v, want %+v", s, want)
	}
}

func TestNewRunnerMemoryOnly(t *testing.T) {
	s := parse(t, true, "-parallel", "2")
	eng, st, err := s.NewRunner(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st != nil {
		t.Error("no -store flag should mean no disk store")
	}
	if eng.Workers() != 2 {
		t.Errorf("Workers = %d, want 2", eng.Workers())
	}
}

func TestNewRunnerWithStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	s := parse(t, true, "-store", dir)
	_, st, err := s.NewRunner(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st == nil {
		t.Fatal("-store should open a persistent store")
	}
	// -nocache wins over -store: memoization fully off.
	s2 := parse(t, true, "-store", dir, "-nocache")
	_, st2, err := s2.NewRunner(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st2 != nil {
		t.Error("-nocache should disable the disk store too")
	}
}

// TestParseStore pins the -store grammar every binary shares.
func TestParseStore(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    StoreSpec
		wantErr bool
	}{
		{in: "", want: StoreSpec{Kind: "none"}},
		{in: "  ", want: StoreSpec{Kind: "none"}},
		{in: "disk:/data/results", want: StoreSpec{Kind: "disk", Path: "/data/results"}},
		{in: "/data/results", want: StoreSpec{Kind: "disk", Path: "/data/results"}},
		{in: "./results", want: StoreSpec{Kind: "disk", Path: "./results"}},
		{in: "results", want: StoreSpec{Kind: "disk", Path: "results"}},
		{in: "shards:h1:8080", want: StoreSpec{Kind: "shards", Shards: []string{"h1:8080"}}},
		{
			in: "shards:h1:8080, h2:8080,http://h3:9000",
			want: StoreSpec{Kind: "shards",
				Shards: []string{"h1:8080", "h2:8080", "http://h3:9000"}},
		},
		{in: "disk:", wantErr: true},
		{in: "shards:", wantErr: true},
		{in: "shards: ,", wantErr: true},
		{in: "shard:h1:8080", wantErr: true}, // typo'd scheme, not a directory
		{in: "s3:bucket/results", wantErr: true},
	} {
		got, err := ParseStore(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseStore(%q) accepted, want error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseStore(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseStore(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

// TestNewRunnerShardBackend: a shards: spec builds the fleet client (no
// network traffic until it is used) and it doubles as the runner's
// fleet claimer.
func TestNewRunnerShardBackend(t *testing.T) {
	s := parse(t, true, "-store", "shards:127.0.0.1:1,127.0.0.1:2")
	_, backend, err := s.NewRunner(nil)
	if err != nil {
		t.Fatal(err)
	}
	sh, ok := backend.(*store.Sharded)
	if !ok {
		t.Fatalf("backend is %T, want *store.Sharded", backend)
	}
	if _, ok := store.Backend(sh).(store.Claimer); !ok {
		t.Error("sharded backend does not implement Claimer")
	}
	// Duplicate hosts are a config error surfaced at build time.
	s2 := parse(t, true, "-store", "shards:h1:8080,h1:8080")
	if _, _, err := s2.NewRunner(nil); err == nil {
		t.Error("duplicate shard hosts accepted")
	}
}

func TestSeeds(t *testing.T) {
	got, err := Seeds("1, 2,30")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 30 {
		t.Errorf("Seeds = %v, %v", got, err)
	}
	if got, err := Seeds(""); err != nil || got != nil {
		t.Errorf("empty Seeds = %v, %v, want nil, nil", got, err)
	}
	if _, err := Seeds("1,x"); err == nil {
		t.Error("bad seed should error")
	}
}

func TestInts(t *testing.T) {
	got, err := Ints("32, 16")
	if err != nil || len(got) != 2 || got[0] != 32 || got[1] != 16 {
		t.Errorf("Ints = %v, %v", got, err)
	}
	if _, err := Ints("a"); err == nil {
		t.Error("bad int should error")
	}
}
