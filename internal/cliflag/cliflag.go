// Package cliflag centralizes the command-line surface shared by the ICR
// commands. icrsim, icrbench, and icrd all spell -parallel, -timeout,
// -seed, and -instructions the same way, parse comma-separated lists the
// same way, and build their simulation runner (optionally backed by the
// persistent result store) from the same flag values — so behaviour like
// "-parallel 1 gives identical output" holds across every entry point by
// construction rather than by triplicated code.
package cliflag

import (
	"flag"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/store"
)

// Sim holds the simulation flags every command shares. Zero value +
// Register = the defaults each binary used before the flags were
// unified.
type Sim struct {
	// Instructions is the committed-instruction budget per simulation.
	Instructions uint64
	// Seed seeds workload generation.
	Seed int64
	// Parallel bounds concurrent simulations.
	Parallel int
	// Timeout bounds each individual simulation (0 = none).
	Timeout time.Duration
	// Sample is the raw -sample value; SampleConfig parses it
	// ("" = exact simulation).
	Sample string
	// StoreDir, when non-empty, backs the runner's cache with a
	// persistent result store in that directory (RegisterCache).
	StoreDir string
	// NoCache disables memoization entirely (RegisterCache).
	NoCache bool
}

// Register installs the four core flags on fs.
func (s *Sim) Register(fs *flag.FlagSet) {
	fs.Uint64Var(&s.Instructions, "instructions", config.DefaultInstructions,
		"committed instructions per simulation")
	fs.Int64Var(&s.Seed, "seed", 1, "workload seed")
	fs.IntVar(&s.Parallel, "parallel", runtime.NumCPU(),
		"concurrent simulations (1 = serial; results identical either way)")
	fs.DurationVar(&s.Timeout, "timeout", 0, "per-simulation timeout (0 = none)")
	fs.StringVar(&s.Sample, "sample", "",
		`SMARTS-style sampled simulation: "on" for the default geometry, or `+
			`"period=N[,detail=N][,warmup=N][,conf=90|95|99]" (empty = exact)`)
}

// SampleConfig parses the -sample flag value (config.ParseSample syntax).
func (s *Sim) SampleConfig() (config.SampleConfig, error) {
	return config.ParseSample(s.Sample)
}

// RegisterCache installs the cache-control flags (commands that memoize:
// icrbench, icrd).
func (s *Sim) RegisterCache(fs *flag.FlagSet) {
	fs.StringVar(&s.StoreDir, "store", "",
		"directory for the persistent result store (empty = in-memory cache only)")
	fs.BoolVar(&s.NoCache, "nocache", false,
		"disable memoization of repeated sweep points")
}

// NewRunner builds the command's simulation engine from the flag values:
// a worker pool of Parallel slots whose cache is an in-memory LRU,
// layered over a persistent store when -store is set. The returned Store
// is nil unless one was opened; the caller owns wiring it into shutdown
// paths (there is nothing to close — writes are atomic per Put).
//
// prog may be nil; the runner then allocates its own counters,
// reachable via Runner.Progress.
func (s *Sim) NewRunner(prog *metrics.Progress) (*runner.Runner, *store.Store, error) {
	return s.NewRunnerExecutor(prog, nil)
}

// NewRunnerExecutor is NewRunner with an execution backend: exec, when
// non-nil, replaces in-process simulation on every cache miss (icrd's
// cluster coordinator farming runs out to remote workers). The cache
// stack, worker pool, and ordering guarantees are identical either way —
// results stay byte-for-byte those of local execution.
func (s *Sim) NewRunnerExecutor(prog *metrics.Progress, exec runner.Executor) (*runner.Runner, *store.Store, error) {
	if prog == nil {
		prog = metrics.NewProgress()
	}
	cacheSize := 0
	if s.NoCache {
		cacheSize = -1
	}
	var st *store.Store
	var cache runner.Cache
	if s.StoreDir != "" && !s.NoCache {
		var err error
		st, err = store.Open(s.StoreDir, store.Options{
			OnEvict: func(n int) { prog.AddEviction(uint64(n)) },
		})
		if err != nil {
			return nil, nil, fmt.Errorf("opening result store: %w", err)
		}
		cache = runner.NewTiered(
			runner.NewMemoryCache(0, prog),
			runner.NewStoreCache(st),
		)
	}
	eng := runner.New(runner.Options{
		Workers:   s.Parallel,
		CacheSize: cacheSize,
		Cache:     cache,
		Timeout:   s.Timeout,
		Progress:  prog,
		Executor:  exec,
	})
	return eng, st, nil
}

// Seeds parses a comma-separated seed list ("" = nil).
func Seeds(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// Ints parses a comma-separated int list (replica distances).
func Ints(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
