// Package cliflag centralizes the command-line surface shared by the ICR
// commands. icrsim, icrbench, and icrd all spell -parallel, -timeout,
// -seed, and -instructions the same way, parse comma-separated lists the
// same way, and build their simulation runner (optionally backed by the
// persistent result store) from the same flag values — so behaviour like
// "-parallel 1 gives identical output" holds across every entry point by
// construction rather than by triplicated code.
package cliflag

import (
	"flag"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/adapt"
	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/store"
)

// Sim holds the simulation flags every command shares. Zero value +
// Register = the defaults each binary used before the flags were
// unified.
type Sim struct {
	// Instructions is the committed-instruction budget per simulation.
	Instructions uint64
	// Seed seeds workload generation.
	Seed int64
	// Parallel bounds concurrent simulations.
	Parallel int
	// Timeout bounds each individual simulation (0 = none).
	Timeout time.Duration
	// Sample is the raw -sample value; SampleConfig parses it
	// ("" = exact simulation).
	Sample string
	// Adapt is the raw -adapt value; AdaptConfig parses it
	// ("" = static replication).
	Adapt string
	// TwoTier is the raw -twotier value; TwoTierConfig parses it
	// ("" = plain timing L2).
	TwoTier string
	// Store is the raw -store backend spec; ParseStore parses it:
	// "disk:PATH" (or a bare path) for the local persistent store,
	// "shards:HOST1,HOST2,..." for a memcache-style shard fleet, "" for
	// the in-memory cache only (RegisterCache).
	Store string
	// NoCache disables memoization entirely (RegisterCache).
	NoCache bool
}

// Register installs the four core flags on fs.
func (s *Sim) Register(fs *flag.FlagSet) {
	fs.Uint64Var(&s.Instructions, "instructions", config.DefaultInstructions,
		"committed instructions per simulation")
	fs.Int64Var(&s.Seed, "seed", 1, "workload seed")
	fs.IntVar(&s.Parallel, "parallel", runtime.NumCPU(),
		"concurrent simulations (1 = serial; results identical either way)")
	fs.DurationVar(&s.Timeout, "timeout", 0, "per-simulation timeout (0 = none)")
	fs.StringVar(&s.Sample, "sample", "",
		`SMARTS-style sampled simulation: "on" for the default geometry, or `+
			`"period=N[,detail=N][,warmup=N][,conf=90|95|99]" (empty = exact)`)
	fs.StringVar(&s.Adapt, "adapt", "",
		`ICR-ADAPT runtime replication controller: "decay", "ehc", or `+
			`"predictor=decay|ehc[,epoch=N][,hysteresis=N][,maxreplicas=N]`+
			`[,minwindow=N][,maxwindow=N]" (empty = static replication)`)
	fs.StringVar(&s.TwoTier, "twotier", "",
		`second-tier protection: "parity", "ecc", "icr", "icr-ecc", or `+
			`"protect=P|ECC[,replicate=BOOL][,victim=NAME][,decay=N][,cross=BOOL]`+
			`[,latency=N][,fault=MODEL][,prob=F][,faultseed=N]" (empty = plain timing L2)`)
}

// SampleConfig parses the -sample flag value (config.ParseSample syntax).
func (s *Sim) SampleConfig() (config.SampleConfig, error) {
	return config.ParseSample(s.Sample)
}

// AdaptConfig parses the -adapt flag value (adapt.Parse syntax).
func (s *Sim) AdaptConfig() (adapt.Config, error) {
	return adapt.Parse(s.Adapt)
}

// TwoTierConfig parses the -twotier flag value (config.ParseTwoTier
// syntax).
func (s *Sim) TwoTierConfig() (config.TwoTier, error) {
	return config.ParseTwoTier(s.TwoTier)
}

// RegisterCache installs the cache-control flags (commands that memoize:
// icrbench, icrd).
func (s *Sim) RegisterCache(fs *flag.FlagSet) {
	fs.StringVar(&s.Store, "store", "",
		`result-store backend: "disk:PATH" or a bare directory path for the `+
			`local persistent store, "shards:HOST1,HOST2,..." for a shard `+
			`fleet (empty = in-memory cache only)`)
	fs.BoolVar(&s.NoCache, "nocache", false,
		"disable memoization of repeated sweep points")
}

// StoreSpec is a parsed -store value: which backend kind to build and its
// address (a directory for disk, a host list for shards).
type StoreSpec struct {
	// Kind is "none", "disk", or "shards".
	Kind string
	// Path is the store directory (Kind "disk").
	Path string
	// Shards are the fleet hosts (Kind "shards"), scheme-optional.
	Shards []string
}

// ParseStore parses a -store backend spec:
//
//	""                        in-memory cache only
//	"disk:/data/results"      local persistent store
//	"/data/results"           same (a bare path is the disk shorthand)
//	"shards:h1:8080,h2:8080"  memcache-style shard fleet
//
// An unknown "scheme:" prefix is an error, not a weird directory name, so
// a typo like "shard:h1" cannot silently become a local store.
func ParseStore(spec string) (StoreSpec, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return StoreSpec{Kind: "none"}, nil
	}
	switch {
	case strings.HasPrefix(spec, "disk:"):
		path := strings.TrimPrefix(spec, "disk:")
		if path == "" {
			return StoreSpec{}, fmt.Errorf("-store disk: needs a directory path")
		}
		return StoreSpec{Kind: "disk", Path: path}, nil
	case strings.HasPrefix(spec, "shards:"):
		var hosts []string
		for _, h := range strings.Split(strings.TrimPrefix(spec, "shards:"), ",") {
			if h = strings.TrimSpace(h); h != "" {
				hosts = append(hosts, h)
			}
		}
		if len(hosts) == 0 {
			return StoreSpec{}, fmt.Errorf("-store shards: needs at least one host")
		}
		return StoreSpec{Kind: "shards", Shards: hosts}, nil
	}
	// A bare path is the disk shorthand — but reject unknown scheme-like
	// prefixes ("shard:h1", "s3:bucket") instead of treating them as odd
	// directory names. Real paths ("/data", "./x", "results") never match.
	if i := strings.Index(spec, ":"); i > 0 && !strings.ContainsAny(spec[:i], "/\\.") {
		return StoreSpec{}, fmt.Errorf("-store %q: unknown backend scheme %q (want disk: or shards:)", spec, spec[:i])
	}
	return StoreSpec{Kind: "disk", Path: spec}, nil
}

// Backend opens the backend a StoreSpec names: nil for "none", the local
// persistent store for "disk", a Sharded fleet client for "shards".
func (sp StoreSpec) Backend(prog *metrics.Progress) (store.Backend, error) {
	switch sp.Kind {
	case "", "none":
		return nil, nil
	case "disk":
		st, err := store.Open(sp.Path, store.Options{
			OnEvict: func(n int) { prog.AddEviction(uint64(n)) },
		})
		if err != nil {
			return nil, fmt.Errorf("opening result store: %w", err)
		}
		return st, nil
	case "shards":
		shards := make([]store.Shard, len(sp.Shards))
		for i, h := range sp.Shards {
			shards[i] = store.NewRemote(h, nil)
		}
		sh, err := store.NewSharded(shards, store.ShardedOptions{})
		if err != nil {
			return nil, fmt.Errorf("building shard fleet: %w", err)
		}
		return sh, nil
	default:
		return nil, fmt.Errorf("unknown store backend kind %q", sp.Kind)
	}
}

// NewRunner builds the command's simulation engine from the flag values:
// a worker pool of Parallel slots whose cache is an in-memory LRU,
// layered over a persistent backend when -store is set (a local disk
// store or a shard fleet). The returned Backend is nil unless one was
// built; the caller owns wiring it into shutdown paths (Drain).
//
// prog may be nil; the runner then allocates its own counters,
// reachable via Runner.Progress.
func (s *Sim) NewRunner(prog *metrics.Progress) (*runner.Runner, store.Backend, error) {
	return s.NewRunnerExecutor(prog, nil)
}

// NewRunnerExecutor is NewRunner with an execution backend: exec, when
// non-nil, replaces in-process simulation on every cache miss (icrd's
// cluster coordinator farming runs out to remote workers). The cache
// stack, worker pool, and ordering guarantees are identical either way —
// results stay byte-for-byte those of local execution. When the backend
// is a shard fleet, its claim protocol extends the runner's singleflight
// fleet-wide.
func (s *Sim) NewRunnerExecutor(prog *metrics.Progress, exec runner.Executor) (*runner.Runner, store.Backend, error) {
	if prog == nil {
		prog = metrics.NewProgress()
	}
	cacheSize := 0
	if s.NoCache {
		cacheSize = -1
	}
	var backend store.Backend
	var cache runner.Cache
	var claimer store.Claimer
	if !s.NoCache {
		spec, err := ParseStore(s.Store)
		if err != nil {
			return nil, nil, err
		}
		backend, err = spec.Backend(prog)
		if err != nil {
			return nil, nil, err
		}
		if backend != nil {
			tier := runner.SourceDisk
			if spec.Kind == "shards" {
				tier = runner.SourceShard
			}
			cache = runner.NewTiered(
				runner.NewMemoryCache(0, prog),
				runner.NewStoreCache(backend, tier),
			)
			if c, ok := backend.(store.Claimer); ok {
				claimer = c
			}
		}
	}
	eng := runner.New(runner.Options{
		Workers:   s.Parallel,
		CacheSize: cacheSize,
		Cache:     cache,
		Timeout:   s.Timeout,
		Progress:  prog,
		Executor:  exec,
		Claimer:   claimer,
	})
	return eng, backend, nil
}

// Seeds parses a comma-separated seed list ("" = nil).
func Seeds(s string) ([]int64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// Ints parses a comma-separated int list (replica distances).
func Ints(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
