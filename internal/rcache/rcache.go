// Package rcache implements the comparison point the paper positions ICR
// against (Kim & Somani, ISCA 1999 — reference [11]): a small *separate*
// replication cache next to the dL1 that holds duplicates of recently used
// lines. A parity error in the dL1 is repaired from the r-cache on a hit.
//
// The paper's argument is that ICR gets the same "hot data is duplicated"
// effect without a separate array: "we do not need a separate cache for
// achieving this compared to that needed by [11]" (§5.2). This package
// exists so that claim can be measured rather than asserted: the simulator
// can attach an r-cache to a Base scheme and compare duplicate coverage,
// recovery, area, and energy against in-cache replication.
package rcache

import "fmt"

// Stats counts r-cache events.
type Stats struct {
	Puts      uint64
	PutHits   uint64 // puts that refreshed an existing duplicate
	Probes    uint64
	ProbeHits uint64
	Evictions uint64
}

// HitRate returns ProbeHits/Probes.
func (s *Stats) HitRate() float64 {
	if s.Probes == 0 {
		return 0
	}
	return float64(s.ProbeHits) / float64(s.Probes)
}

type line struct {
	valid     bool
	blockAddr uint64
	lru       uint64
	data      []byte
}

// Cache is a small set-associative duplication cache. Lines hold full
// copies of dL1 blocks; the array is assumed internally protected (it is
// small enough that ECC on it is cheap, per Kim & Somani).
type Cache struct {
	sets      int //icrvet:persistent geometry: fixed at construction
	assoc     int //icrvet:persistent geometry: fixed at construction
	blockSize int //icrvet:persistent geometry: fixed at construction
	lines     []line
	clock     uint64
	stats     Stats
}

// New builds an r-cache of the given total size. Geometry rules match the
// main caches: power-of-two sets.
func New(size, assoc, blockSize int) *Cache {
	if size <= 0 || assoc <= 0 || blockSize <= 0 {
		panic("rcache: size, assoc, and block size must be positive")
	}
	if size%(assoc*blockSize) != 0 {
		panic("rcache: size must be a multiple of assoc*blockSize")
	}
	sets := size / (assoc * blockSize)
	if sets&(sets-1) != 0 {
		panic("rcache: set count must be a power of two")
	}
	c := &Cache{
		sets:      sets,
		assoc:     assoc,
		blockSize: blockSize,
		lines:     make([]line, sets*assoc),
	}
	for i := range c.lines {
		c.lines[i].data = make([]byte, blockSize)
	}
	return c
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// Size returns the total data capacity in bytes.
func (c *Cache) Size() int { return c.sets * c.assoc * c.blockSize }

func (c *Cache) set(blockAddr uint64) int { return int(blockAddr & uint64(c.sets-1)) }

func (c *Cache) lookup(blockAddr uint64) *line {
	base := c.set(blockAddr) * c.assoc
	for w := 0; w < c.assoc; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.blockAddr == blockAddr {
			return ln
		}
	}
	return nil
}

// Put stores a duplicate of a block (called on dL1 fills and stores). The
// data is copied.
func (c *Cache) Put(blockAddr uint64, data []byte) {
	if len(data) != c.blockSize {
		//icrvet:ignore allocfree cold panic path: a size mismatch is a construction bug, never taken in a correct build
		panic(fmt.Sprintf("rcache: block size mismatch: %d != %d", len(data), c.blockSize))
	}
	c.clock++
	c.stats.Puts++
	if ln := c.lookup(blockAddr); ln != nil {
		c.stats.PutHits++
		copy(ln.data, data)
		ln.lru = c.clock
		return
	}
	base := c.set(blockAddr) * c.assoc
	victim := base
	for w := 0; w < c.assoc; w++ {
		ln := &c.lines[base+w]
		if !ln.valid {
			victim = base + w
			break
		}
		if ln.lru < c.lines[victim].lru {
			victim = base + w
		}
	}
	v := &c.lines[victim]
	if v.valid {
		c.stats.Evictions++
	}
	v.valid = true
	v.blockAddr = blockAddr
	v.lru = c.clock
	copy(v.data, data)
}

// Get probes for a duplicate of a block. The returned slice aliases the
// cache's internal storage: it is valid only until the next Put or Reset
// and must not be mutated. Probed on every dL1 load under the r-cache
// schemes, so it must not allocate.
func (c *Cache) Get(blockAddr uint64) ([]byte, bool) {
	c.stats.Probes++
	ln := c.lookup(blockAddr)
	if ln == nil {
		return nil, false
	}
	c.stats.ProbeHits++
	c.clock++
	ln.lru = c.clock
	return ln.data, true
}

// Contains reports residency without touching LRU or stats.
func (c *Cache) Contains(blockAddr uint64) bool { return c.lookup(blockAddr) != nil }

// Reset invalidates every line and zeroes the counters without
// reallocating the data arrays, making the cache indistinguishable from a
// freshly constructed one (invalid lines' stale payloads are unreachable:
// every fill overwrites the full block before the line turns valid).
func (c *Cache) Reset() {
	for i := range c.lines {
		l := &c.lines[i]
		l.valid = false
		l.blockAddr = 0
		l.lru = 0
	}
	c.clock = 0
	c.stats = Stats{}
}
