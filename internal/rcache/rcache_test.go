package rcache

import (
	"math/rand"
	"testing"
)

func mkData(seed byte) []byte {
	d := make([]byte, 64)
	for i := range d {
		d[i] = seed + byte(i)
	}
	return d
}

func TestPutGetRoundTrip(t *testing.T) {
	c := New(2<<10, 4, 64)
	d := mkData(7)
	c.Put(42, d)
	got, ok := c.Get(42)
	if !ok {
		t.Fatal("duplicate missing")
	}
	for i := range d {
		if got[i] != d[i] {
			t.Fatalf("byte %d: %d != %d", i, got[i], d[i])
		}
	}
	// Put copies its input: later mutation of the caller's buffer must
	// not reach the stored duplicate.
	d[1] = 0xee
	again, _ := c.Get(42)
	if again[1] == 0xee {
		t.Error("Put must copy")
	}
	// Get aliases the cache's internal storage (the probe runs on every
	// dL1 load, so it must not allocate): refreshing the block through
	// Put is visible through a previously returned slice.
	c.Put(42, mkData(9))
	if again[0] != 9 {
		t.Errorf("Get should alias the stored duplicate: got %d, want 9", again[0])
	}
}

func TestMissingBlock(t *testing.T) {
	c := New(2<<10, 4, 64)
	if _, ok := c.Get(99); ok {
		t.Error("empty cache should miss")
	}
	if c.Contains(99) {
		t.Error("Contains should be false")
	}
	s := c.Stats()
	if s.Probes != 1 || s.ProbeHits != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestPutRefreshesExisting(t *testing.T) {
	c := New(2<<10, 4, 64)
	c.Put(1, mkData(1))
	c.Put(1, mkData(2))
	got, _ := c.Get(1)
	if got[0] != 2 {
		t.Errorf("refresh failed: %d", got[0])
	}
	s := c.Stats()
	if s.Puts != 2 || s.PutHits != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2KB, 4-way, 64B blocks: 8 sets. Five blocks in one set.
	c := New(2<<10, 4, 64)
	for i := 0; i < 5; i++ {
		c.Put(uint64(i*8), mkData(byte(i))) // all map to set 0
	}
	if c.Contains(0) {
		t.Error("LRU duplicate should have been evicted")
	}
	for i := 1; i < 5; i++ {
		if !c.Contains(uint64(i * 8)) {
			t.Errorf("block %d lost", i)
		}
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", c.Stats().Evictions)
	}
}

func TestSizeAndHitRate(t *testing.T) {
	c := New(2<<10, 4, 64)
	if c.Size() != 2<<10 {
		t.Errorf("Size = %d", c.Size())
	}
	c.Put(1, mkData(0))
	c.Get(1)
	c.Get(2)
	s := c.Stats()
	if hr := s.HitRate(); hr != 0.5 {
		t.Errorf("HitRate = %g, want 0.5", hr)
	}
	var zero Stats
	if zero.HitRate() != 0 {
		t.Error("zero stats HitRate should be 0")
	}
}

func TestRandomizedConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := New(4<<10, 4, 64)
	shadow := map[uint64][]byte{}
	for i := 0; i < 2000; i++ {
		ba := uint64(rng.Intn(128))
		if rng.Intn(2) == 0 {
			d := mkData(byte(rng.Intn(256)))
			c.Put(ba, d)
			shadow[ba] = d
		} else if got, ok := c.Get(ba); ok {
			want := shadow[ba]
			if want == nil {
				t.Fatalf("cache holds block %d never put", ba)
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("block %d stale at byte %d", ba, j)
				}
			}
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("zero size", func() { New(0, 4, 64) })
	mustPanic("non-multiple", func() { New(1000, 4, 64) })
	mustPanic("non-pow2 sets", func() { New(3*4*64, 4, 64) })
	mustPanic("block mismatch on put", func() {
		c := New(2<<10, 4, 64)
		c.Put(1, make([]byte, 32))
	})
}
