// Package reliability converts the simulator's architectural-vulnerability
// measurements into the failure-rate estimates hardware designers quote:
// FIT (failures in 10^9 device-hours) and MTTF.
//
// The paper's §5.5 points out that realistic transient-error rates are far
// too low to measure by injection ("for 1/100000, the error rates even for
// BaseP tend to become zero"), so injected campaigns must use unrealistic
// rates. The complementary analytic route taken here: the simulator
// measures the fraction of line-cycles that are *vulnerable* (dirty data
// protected only by parity, internal/core), and this package multiplies
// that exposure by a technology soft-error rate to estimate real-world
// loss rates per scheme.
package reliability

import (
	"fmt"
	"math"
)

// Params describes the technology and deployment point.
type Params struct {
	// FITPerMbit is the raw single-bit soft-error rate of the SRAM in
	// FIT per megabit (failures per 10^9 hours per 2^20 bits).
	// Early-2000s planar SRAM is commonly quoted around 10^3 FIT/Mbit.
	FITPerMbit float64
	// ClockHz is the core clock (Table 1: 1ns cycle = 1 GHz).
	ClockHz float64
}

// DefaultParams returns a 2003-class technology point: 1000 FIT/Mbit at
// the paper's 1 GHz clock.
func DefaultParams() Params {
	return Params{FITPerMbit: 1000, ClockHz: 1e9}
}

// Validate reports nonsensical parameters.
func (p Params) Validate() error {
	if p.FITPerMbit <= 0 || p.ClockHz <= 0 {
		return fmt.Errorf("reliability: FITPerMbit and ClockHz must be positive")
	}
	return nil
}

const (
	hoursPerFITWindow = 1e9
	bitsPerMbit       = 1 << 20
)

// RawFlipRatePerHour returns the expected raw bit flips per hour across a
// structure of the given size: total FIT divided by the 10^9-hour window.
func (p Params) RawFlipRatePerHour(bits int) float64 {
	return p.FITPerMbit * float64(bits) / bitsPerMbit / hoursPerFITWindow
}

// lossFIT is the core conversion: a flip only causes an unrecoverable loss
// when it lands in a vulnerable bit, so the loss FIT is the structure's
// total raw FIT scaled by the time-averaged vulnerable fraction.
func lossFIT(vulnFrac float64, bits int, p Params) float64 {
	return p.FITPerMbit * float64(bits) / bitsPerMbit * vulnFrac
}

// Estimate is the reliability projection for one scheme.
type Estimate struct {
	Scheme string
	// VulnFrac is the measured time-averaged fraction of the data array
	// holding dirty, parity-only, unreplicated data.
	VulnFrac float64
	// LossFIT is the estimated unrecoverable-data-loss rate in FIT.
	LossFIT float64
	// MTTFHours is the mean time to an unrecoverable loss, in hours
	// (+Inf when the scheme is never vulnerable).
	MTTFHours float64
}

// Project computes the loss estimate for a scheme from its measured
// vulnerability fraction over a data array of the given size in bytes.
func Project(scheme string, vulnFrac float64, arrayBytes int, p Params) (Estimate, error) {
	if err := p.Validate(); err != nil {
		return Estimate{}, err
	}
	if vulnFrac < 0 || vulnFrac > 1 {
		return Estimate{}, fmt.Errorf("reliability: vulnerability fraction %g out of [0,1]", vulnFrac)
	}
	bits := arrayBytes * 8
	fit := lossFIT(vulnFrac, bits, p)
	mttf := math.Inf(1)
	if fit > 0 {
		mttf = hoursPerFITWindow / fit
	}
	return Estimate{
		Scheme:    scheme,
		VulnFrac:  vulnFrac,
		LossFIT:   fit,
		MTTFHours: mttf,
	}, nil
}

// MTTFYears converts the estimate's MTTF to years.
func (e Estimate) MTTFYears() float64 { return e.MTTFHours / (24 * 365) }

// String renders the estimate.
func (e Estimate) String() string {
	if math.IsInf(e.MTTFHours, 1) {
		return fmt.Sprintf("%-14s vuln=%.4f  loss=0 FIT  MTTF=inf", e.Scheme, e.VulnFrac)
	}
	return fmt.Sprintf("%-14s vuln=%.4f  loss=%.3g FIT  MTTF=%.3g years",
		e.Scheme, e.VulnFrac, e.LossFIT, e.MTTFYears())
}

// Improvement returns how many times longer b's MTTF is than a's.
func Improvement(a, b Estimate) float64 {
	if a.LossFIT == 0 {
		return 1
	}
	if b.LossFIT == 0 {
		return math.Inf(1)
	}
	return a.LossFIT / b.LossFIT
}
