package reliability

import (
	"math"
	"strings"
	"testing"
)

func TestRawFlipRate(t *testing.T) {
	p := Params{FITPerMbit: 1000, ClockHz: 1e9}
	// One Mbit at 1000 FIT/Mbit: 1000 failures per 1e9 hours = 1e-6/hour.
	got := p.RawFlipRatePerHour(1 << 20)
	if math.Abs(got-1e-6) > 1e-12 {
		t.Errorf("RawFlipRatePerHour = %g, want 1e-6", got)
	}
	// Double the bits, double the rate.
	if g2 := p.RawFlipRatePerHour(2 << 20); math.Abs(g2-2e-6) > 1e-12 {
		t.Errorf("rate not linear in bits: %g", g2)
	}
}

func TestProjectBasics(t *testing.T) {
	p := DefaultParams()
	const dl1Bytes = 16 << 10
	full, err := Project("BaseP", 1.0, dl1Bytes, p)
	if err != nil {
		t.Fatal(err)
	}
	half, err := Project("ICR", 0.5, dl1Bytes, p)
	if err != nil {
		t.Fatal(err)
	}
	if full.LossFIT <= 0 {
		t.Fatal("fully vulnerable array must have positive loss FIT")
	}
	if math.Abs(half.LossFIT-full.LossFIT/2) > 1e-12 {
		t.Errorf("loss FIT not linear in vulnerability: %g vs %g", half.LossFIT, full.LossFIT)
	}
	if half.MTTFHours <= full.MTTFHours {
		t.Error("lower vulnerability must raise MTTF")
	}
	// A 16KB array at 1000 FIT/Mbit fully vulnerable: 125 FIT => MTTF 8e6
	// hours (~913 years).
	wantFIT := 1000.0 * (16 * 8) / 1024
	if math.Abs(full.LossFIT-wantFIT) > 1e-9 {
		t.Errorf("full-array FIT = %g, want %g", full.LossFIT, wantFIT)
	}
}

func TestProjectZeroVulnerability(t *testing.T) {
	e, err := Project("BaseECC", 0, 16<<10, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if e.LossFIT != 0 || !math.IsInf(e.MTTFHours, 1) {
		t.Errorf("zero vulnerability should mean zero FIT / infinite MTTF: %+v", e)
	}
	if !strings.Contains(e.String(), "inf") {
		t.Errorf("String() = %q", e.String())
	}
}

func TestProjectValidation(t *testing.T) {
	if _, err := Project("x", -0.1, 16<<10, DefaultParams()); err == nil {
		t.Error("negative vulnerability should error")
	}
	if _, err := Project("x", 1.1, 16<<10, DefaultParams()); err == nil {
		t.Error("vulnerability > 1 should error")
	}
	if _, err := Project("x", 0.5, 16<<10, Params{}); err == nil {
		t.Error("zero params should error")
	}
}

func TestImprovement(t *testing.T) {
	p := DefaultParams()
	basep, _ := Project("BaseP", 0.8, 16<<10, p)
	icr, _ := Project("ICR", 0.08, 16<<10, p)
	ecc, _ := Project("BaseECC", 0, 16<<10, p)
	if got := Improvement(basep, icr); math.Abs(got-10) > 1e-9 {
		t.Errorf("Improvement = %g, want 10", got)
	}
	if !math.IsInf(Improvement(basep, ecc), 1) {
		t.Error("improvement over zero-FIT should be infinite")
	}
	if Improvement(ecc, basep) != 1 {
		t.Error("improvement from zero-FIT baseline defined as 1")
	}
}

func TestMTTFYears(t *testing.T) {
	e := Estimate{MTTFHours: 24 * 365 * 10}
	if got := e.MTTFYears(); math.Abs(got-10) > 1e-9 {
		t.Errorf("MTTFYears = %g, want 10", got)
	}
}

func TestStringRendering(t *testing.T) {
	e := Estimate{Scheme: "BaseP", VulnFrac: 0.5, LossFIT: 62.5, MTTFHours: 1.6e7}
	s := e.String()
	for _, want := range []string{"BaseP", "0.5", "FIT", "years"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}
