package fault

import (
	"math"
	"testing"
)

func TestModelString(t *testing.T) {
	for m, want := range map[Model]string{
		Direct: "direct", Adjacent: "adjacent", Column: "column", Random: "random",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
	if Model(9).String() == "" {
		t.Error("unknown model should stringify")
	}
}

func TestParseModel(t *testing.T) {
	for _, name := range []string{"direct", "adjacent", "column", "random"} {
		m, err := ParseModel(name)
		if err != nil {
			t.Errorf("ParseModel(%q) error: %v", name, err)
		}
		if m.String() != name {
			t.Errorf("round trip failed for %q", name)
		}
	}
	if _, err := ParseModel("bogus"); err == nil {
		t.Error("ParseModel should reject unknown names")
	}
}

func TestDisabledInjectorNeverFires(t *testing.T) {
	in := NewInjector(Random, 0, 8, 1)
	if in.Enabled() {
		t.Error("prob=0 injector should be disabled")
	}
	if got := in.NextAfter(100); got != math.MaxUint64 {
		t.Errorf("NextAfter = %d, want MaxUint64", got)
	}
}

func TestNextAfterGeometricMean(t *testing.T) {
	// Mean inter-arrival of a Bernoulli(p) process is 1/p; check the
	// sampled mean is within 10% for p = 1/100.
	p := 0.01
	in := NewInjector(Random, p, 8, 7)
	var sum float64
	const n = 20000
	now := uint64(0)
	for i := 0; i < n; i++ {
		next := in.NextAfter(now)
		sum += float64(next - now)
		now = next
	}
	mean := sum / n
	if mean < 90 || mean > 110 {
		t.Errorf("geometric mean gap = %.1f, want ~100", mean)
	}
}

func TestNextAfterAlwaysAdvances(t *testing.T) {
	in := NewInjector(Random, 0.9, 8, 3)
	now := uint64(5)
	for i := 0; i < 1000; i++ {
		next := in.NextAfter(now)
		if next <= now {
			t.Fatalf("NextAfter(%d) = %d did not advance", now, next)
		}
		now = next
	}
	// Certain injection advances exactly one cycle.
	in2 := NewInjector(Random, 1, 8, 3)
	if got := in2.NextAfter(10); got != 11 {
		t.Errorf("prob=1 NextAfter(10) = %d, want 11", got)
	}
}

func TestFlipsEmptyArray(t *testing.T) {
	in := NewInjector(Random, 0.5, 8, 1)
	if got := in.Flips(0, -1); got != nil {
		t.Errorf("Flips on empty array = %v, want nil", got)
	}
}

func TestFlipsPerModel(t *testing.T) {
	const words = 64
	cases := []struct {
		model     Model
		wantFlips int
	}{
		{Direct, 1}, {Adjacent, 2}, {Column, 2}, {Random, 1},
	}
	for _, c := range cases {
		in := NewInjector(c.model, 0.5, 8, 11)
		for trial := 0; trial < 200; trial++ {
			flips := in.Flips(words, 5)
			if len(flips) != c.wantFlips {
				t.Fatalf("%v: got %d flips, want %d", c.model, len(flips), c.wantFlips)
			}
			for _, f := range flips {
				if f.Word < 0 || f.Word >= words || f.Bit < 0 || f.Bit > 63 {
					t.Fatalf("%v: flip out of range: %+v", c.model, f)
				}
			}
		}
	}
}

func TestDirectTargetsLastAccessed(t *testing.T) {
	in := NewInjector(Direct, 0.5, 8, 2)
	for trial := 0; trial < 100; trial++ {
		flips := in.Flips(100, 42)
		if flips[0].Word != 42 {
			t.Fatalf("direct model hit word %d, want 42", flips[0].Word)
		}
	}
	// Without a last access it must still produce a valid word.
	flips := in.Flips(100, -1)
	if flips[0].Word < 0 || flips[0].Word >= 100 {
		t.Errorf("fallback word out of range: %d", flips[0].Word)
	}
}

func TestAdjacentBitsAreAdjacent(t *testing.T) {
	in := NewInjector(Adjacent, 0.5, 8, 4)
	for trial := 0; trial < 200; trial++ {
		flips := in.Flips(16, -1)
		if flips[0].Word != flips[1].Word {
			t.Fatal("adjacent model must stay within one word")
		}
		d := flips[0].Bit - flips[1].Bit
		if d != 1 && d != -1 {
			t.Fatalf("bits %d and %d are not adjacent", flips[0].Bit, flips[1].Bit)
		}
	}
}

func TestColumnSameBitDifferentWord(t *testing.T) {
	in := NewInjector(Column, 0.5, 8, 5)
	for trial := 0; trial < 200; trial++ {
		flips := in.Flips(64, -1)
		if len(flips) != 2 {
			t.Fatal("column model should produce two flips")
		}
		if flips[0].Bit != flips[1].Bit {
			t.Fatal("column flips must share the bit position")
		}
		if flips[0].Word == flips[1].Word {
			t.Fatal("column flips must hit different words")
		}
		if (flips[0].Word+8)%64 != flips[1].Word {
			t.Fatalf("column neighbour wrong: %d -> %d", flips[0].Word, flips[1].Word)
		}
	}
}

func TestColumnDegeneratesWithOneWord(t *testing.T) {
	in := NewInjector(Column, 0.5, 8, 6)
	flips := in.Flips(1, -1)
	if len(flips) != 1 {
		t.Errorf("single-word column injection should degrade to 1 flip, got %d", len(flips))
	}
}

func TestInjectedCounter(t *testing.T) {
	in := NewInjector(Random, 0.5, 8, 9)
	for i := 0; i < 5; i++ {
		in.Flips(10, -1)
	}
	if in.Injected() != 5 {
		t.Errorf("Injected = %d, want 5", in.Injected())
	}
}

func TestInvalidProbPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative probability should panic")
		}
	}()
	NewInjector(Random, -0.1, 8, 1)
}
