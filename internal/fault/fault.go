// Package fault implements the transient-error injection machinery of the
// paper's §5.5: errors are injected into the L1 data-cache array "at each
// clock cycle based on a constant probability", under the four spatial
// models of Kim & Somani (direct, adjacent, column, random).
//
// The per-cycle Bernoulli process is sampled with geometric skipping so a
// simulation does not pay a random draw per cycle: the gap to the next
// injection event is drawn directly from the geometric distribution.
package fault

import (
	"fmt"
	"math"
	"math/rand"
)

// Model selects the spatial pattern of an injected error.
type Model uint8

// Injection models (after Kim & Somani). All flip bits in the data array;
// where the flipped bits land differs:
const (
	// Direct flips one random bit of the most recently accessed word.
	Direct Model = iota + 1
	// Adjacent flips two horizontally adjacent bits in one random word
	// (a multi-bit upset within a word).
	Adjacent
	// Column flips the same bit position in two vertically adjacent words
	// of the array (a column upset spanning rows).
	Column
	// Random flips one random bit of one random word. This is the model
	// the paper reports results for (the others behave similarly, §5.5).
	Random
)

var modelNames = map[Model]string{
	Direct:   "direct",
	Adjacent: "adjacent",
	Column:   "column",
	Random:   "random",
}

// String returns the model's name.
func (m Model) String() string {
	if s, ok := modelNames[m]; ok {
		return s
	}
	return fmt.Sprintf("model(%d)", uint8(m))
}

// ParseModel converts a name ("direct", "adjacent", "column", "random")
// into a Model.
func ParseModel(s string) (Model, error) {
	for m, name := range modelNames {
		if name == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("fault: unknown model %q", s)
}

// Flip identifies one bit to invert: word index within the target array and
// bit index within that 64-bit word.
type Flip struct {
	Word int
	Bit  int
}

// Injector produces injection events for a cache data array.
type Injector struct {
	model Model
	prob  float64 // per-cycle injection probability
	// wordsPerRow is the number of 64-bit words in one physical array row
	// (used by the Column model to find the vertical neighbour).
	wordsPerRow int
	rng         *rand.Rand
	injected    uint64
	scratch     []Flip // backs Flips results (at most two flips per event)
}

// NewInjector returns an injector with the given model, per-cycle
// probability (0 disables injection), physical row width in 64-bit words,
// and RNG seed.
func NewInjector(model Model, prob float64, wordsPerRow int, seed int64) *Injector {
	if prob < 0 || prob > 1 {
		panic("fault: probability must be in [0,1]")
	}
	if wordsPerRow <= 0 {
		wordsPerRow = 1
	}
	return &Injector{
		model:       model,
		prob:        prob,
		wordsPerRow: wordsPerRow,
		rng:         rand.New(rand.NewSource(seed)),
		scratch:     make([]Flip, 0, 2),
	}
}

// Enabled reports whether the injector can ever fire.
func (in *Injector) Enabled() bool { return in.prob > 0 }

// Injected returns how many injection events have been generated.
func (in *Injector) Injected() uint64 { return in.injected }

// NextAfter returns the cycle of the next injection event strictly after
// now, drawn from the geometric inter-arrival distribution of a per-cycle
// Bernoulli(prob) process. If injection is disabled it returns the maximum
// uint64 (never).
func (in *Injector) NextAfter(now uint64) uint64 {
	if in.prob <= 0 {
		return math.MaxUint64
	}
	if in.prob >= 1 {
		return now + 1
	}
	// Geometric: P(gap = k) = (1-p)^(k-1) p, k >= 1.
	u := in.rng.Float64()
	for u == 0 {
		u = in.rng.Float64()
	}
	gap := uint64(math.Ceil(math.Log(u) / math.Log(1-in.prob)))
	if gap < 1 {
		gap = 1
	}
	return now + gap
}

// Flips generates the bit flips for one injection event against an array of
// wordCount valid 64-bit words. lastAccessed is the word index of the most
// recent access (-1 if none; the Direct model then falls back to a random
// word). It returns nil if the array is empty. The returned slice aliases
// the injector's scratch buffer: it is valid only until the next Flips
// call and must not be retained — injection runs on the simulated cycle
// loop, so the event must not allocate.
func (in *Injector) Flips(wordCount, lastAccessed int) []Flip {
	if wordCount <= 0 {
		return nil
	}
	in.injected++
	bit := in.rng.Intn(64)
	flips := in.scratch[:0]
	switch in.model {
	case Direct:
		w := lastAccessed
		if w < 0 || w >= wordCount {
			w = in.rng.Intn(wordCount)
		}
		flips = append(flips, Flip{Word: w, Bit: bit})
	case Adjacent:
		w := in.rng.Intn(wordCount)
		b2 := bit + 1
		if b2 > 63 {
			b2 = bit - 1
		}
		flips = append(flips, Flip{Word: w, Bit: bit}, Flip{Word: w, Bit: b2})
	case Column:
		w := in.rng.Intn(wordCount)
		w2 := (w + in.wordsPerRow) % wordCount
		flips = append(flips, Flip{Word: w, Bit: bit})
		if w2 != w {
			flips = append(flips, Flip{Word: w2, Bit: bit})
		}
	case Random:
		flips = append(flips, Flip{Word: in.rng.Intn(wordCount), Bit: bit})
	default:
		//icrvet:ignore allocfree cold panic path: an invalid model is a construction bug, never taken in a correct build
		panic(fmt.Sprintf("fault: invalid model %d", in.model))
	}
	in.scratch = flips
	return flips
}
