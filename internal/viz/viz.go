// Package viz renders experiment results as standalone SVG figures using
// only the standard library, so `icrbench -svg` can regenerate the paper's
// figures as images. Grouped vertical bars (the paper's dominant figure
// style) and polyline charts (for parameter sweeps) are supported.
package viz

import (
	"fmt"
	"html"
	"math"
	"strings"
)

// Series is one legend entry: a label and one value per x-tick.
type Series struct {
	Label  string
	Values []float64
}

// Spec describes a figure.
type Spec struct {
	Title  string
	XLabel string
	YLabel string
	XTicks []string
	Series []Series
	// Width and Height are the SVG canvas size in pixels (defaults
	// 960x420).
	Width, Height int
}

// palette holds distinguishable series colors (10 entries, matching the
// paper's 10 schemes).
var palette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
}

func (s *Spec) validate() error {
	if len(s.Series) == 0 {
		return fmt.Errorf("viz: no series")
	}
	if len(s.XTicks) == 0 {
		return fmt.Errorf("viz: no x ticks")
	}
	for _, sr := range s.Series {
		if len(sr.Values) != len(s.XTicks) {
			return fmt.Errorf("viz: series %q has %d values for %d ticks",
				sr.Label, len(sr.Values), len(s.XTicks))
		}
		for _, v := range sr.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("viz: series %q contains a non-finite value", sr.Label)
			}
		}
	}
	return nil
}

func (s *Spec) defaults() {
	if s.Width <= 0 {
		s.Width = 960
	}
	if s.Height <= 0 {
		s.Height = 420
	}
}

// maxValue returns the largest value across all series (at least a small
// epsilon so an all-zero chart still renders).
func (s *Spec) maxValue() float64 {
	m := 0.0
	for _, sr := range s.Series {
		for _, v := range sr.Values {
			if v > m {
				m = v
			}
		}
	}
	if m == 0 {
		m = 1
	}
	return m
}

// niceCeiling rounds up to a pleasant axis maximum (1/2/5 x 10^k).
func niceCeiling(v float64) float64 {
	if v <= 0 {
		return 1
	}
	exp := math.Floor(math.Log10(v))
	base := math.Pow(10, exp)
	frac := v / base
	switch {
	case frac <= 1:
		return base
	case frac <= 2:
		return 2 * base
	case frac <= 5:
		return 5 * base
	default:
		return 10 * base
	}
}

const (
	marginLeft   = 70.0
	marginRight  = 20.0
	marginTop    = 56.0
	marginBottom = 64.0
)

type canvas struct {
	b    strings.Builder
	spec *Spec
	w, h float64 // plot area
	yMax float64
}

func newCanvas(s *Spec) *canvas {
	c := &canvas{
		spec: s,
		w:    float64(s.Width) - marginLeft - marginRight,
		h:    float64(s.Height) - marginTop - marginBottom,
		yMax: niceCeiling(s.maxValue()),
	}
	fmt.Fprintf(&c.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		s.Width, s.Height, s.Width, s.Height)
	fmt.Fprintf(&c.b, `<rect width="%d" height="%d" fill="white"/>`+"\n", s.Width, s.Height)
	fmt.Fprintf(&c.b, `<text x="%g" y="24" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
		marginLeft, html.EscapeString(s.Title))
	return c
}

// y maps a data value to pixel space.
func (c *canvas) y(v float64) float64 {
	return marginTop + c.h - v/c.yMax*c.h
}

func (c *canvas) axes() {
	// Y grid lines and labels: 5 divisions.
	for i := 0; i <= 5; i++ {
		v := c.yMax * float64(i) / 5
		y := c.y(v)
		fmt.Fprintf(&c.b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`+"\n",
			marginLeft, y, marginLeft+c.w, y)
		fmt.Fprintf(&c.b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, y+4, formatTick(v))
	}
	// Axis lines.
	fmt.Fprintf(&c.b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#333"/>`+"\n",
		marginLeft, marginTop, marginLeft, marginTop+c.h)
	fmt.Fprintf(&c.b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#333"/>`+"\n",
		marginLeft, marginTop+c.h, marginLeft+c.w, marginTop+c.h)
	// Labels.
	if c.spec.YLabel != "" {
		fmt.Fprintf(&c.b, `<text x="16" y="%g" font-family="sans-serif" font-size="12" transform="rotate(-90 16 %g)" text-anchor="middle">%s</text>`+"\n",
			marginTop+c.h/2, marginTop+c.h/2, html.EscapeString(c.spec.YLabel))
	}
	if c.spec.XLabel != "" {
		fmt.Fprintf(&c.b, `<text x="%g" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
			marginLeft+c.w/2, float64(c.spec.Height)-8, html.EscapeString(c.spec.XLabel))
	}
}

func (c *canvas) xTickLabels() {
	n := len(c.spec.XTicks)
	for i, tick := range c.spec.XTicks {
		x := marginLeft + (float64(i)+0.5)/float64(n)*c.w
		fmt.Fprintf(&c.b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x, marginTop+c.h+16, html.EscapeString(tick))
	}
}

func (c *canvas) legend() {
	x := marginLeft
	y := 40.0
	for i, sr := range c.spec.Series {
		color := palette[i%len(palette)]
		fmt.Fprintf(&c.b, `<rect x="%g" y="%g" width="10" height="10" fill="%s"/>`+"\n", x, y-9, color)
		label := html.EscapeString(sr.Label)
		fmt.Fprintf(&c.b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11">%s</text>`+"\n", x+14, y, label)
		x += 14 + float64(7*len(sr.Label)) + 18
		if x > float64(c.spec.Width)-120 {
			x = marginLeft
			y += 14
		}
	}
}

func (c *canvas) finish() string {
	c.b.WriteString("</svg>\n")
	return c.b.String()
}

func formatTick(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v < 0.01:
		return fmt.Sprintf("%.2g", v)
	default:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", v), "0"), ".")
	}
}

// GroupedBarSVG renders a grouped vertical bar chart.
func GroupedBarSVG(s Spec) (string, error) {
	if err := s.validate(); err != nil {
		return "", err
	}
	s.defaults()
	c := newCanvas(&s)
	c.axes()
	c.xTickLabels()
	c.legend()

	nTicks := len(s.XTicks)
	nSeries := len(s.Series)
	groupW := c.w / float64(nTicks)
	barW := groupW * 0.8 / float64(nSeries)
	for si, sr := range s.Series {
		color := palette[si%len(palette)]
		for xi, v := range sr.Values {
			if v < 0 {
				v = 0
			}
			x := marginLeft + float64(xi)*groupW + groupW*0.1 + float64(si)*barW
			y := c.y(v)
			h := marginTop + c.h - y
			fmt.Fprintf(&c.b, `<rect x="%g" y="%g" width="%g" height="%g" fill="%s"><title>%s %s: %g</title></rect>`+"\n",
				x, y, barW, h, color,
				html.EscapeString(sr.Label), html.EscapeString(s.XTicks[xi]), v)
		}
	}
	return c.finish(), nil
}

// LineSVG renders each series as a polyline over the ticks.
func LineSVG(s Spec) (string, error) {
	if err := s.validate(); err != nil {
		return "", err
	}
	s.defaults()
	c := newCanvas(&s)
	c.axes()
	c.xTickLabels()
	c.legend()

	n := len(s.XTicks)
	for si, sr := range s.Series {
		color := palette[si%len(palette)]
		var pts []string
		for xi, v := range sr.Values {
			if v < 0 {
				v = 0
			}
			x := marginLeft + (float64(xi)+0.5)/float64(n)*c.w
			pts = append(pts, fmt.Sprintf("%g,%g", x, c.y(v)))
		}
		fmt.Fprintf(&c.b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), color)
		for xi, v := range sr.Values {
			if v < 0 {
				v = 0
			}
			x := marginLeft + (float64(xi)+0.5)/float64(n)*c.w
			fmt.Fprintf(&c.b, `<circle cx="%g" cy="%g" r="3" fill="%s"><title>%s %s: %g</title></circle>`+"\n",
				x, c.y(v), color,
				html.EscapeString(sr.Label), html.EscapeString(s.XTicks[xi]), sr.Values[xi])
		}
	}
	return c.finish(), nil
}
