package viz

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

func sampleSpec() Spec {
	return Spec{
		Title:  "demo <figure>",
		XLabel: "benchmark",
		YLabel: "normalized cycles",
		XTicks: []string{"gzip", "vpr & co"},
		Series: []Series{
			{Label: "BaseP", Values: []float64{1.0, 1.0}},
			{Label: "BaseECC", Values: []float64{1.2, 1.15}},
		},
	}
}

// wellFormed checks the SVG parses as XML.
func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG is not well-formed XML: %v\n%s", err, svg)
		}
	}
}

func TestGroupedBarSVG(t *testing.T) {
	svg, err := GroupedBarSVG(sampleSpec())
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, svg)
	// 2 series x 2 ticks = 4 data rects (plus background + 2 legend
	// swatches = 7 <rect total).
	if got := strings.Count(svg, "<rect"); got != 7 {
		t.Errorf("rect count = %d, want 7", got)
	}
	for _, want := range []string{"BaseP", "BaseECC", "gzip", "demo &lt;figure&gt;", "vpr &amp; co"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestLineSVG(t *testing.T) {
	svg, err := LineSVG(sampleSpec())
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, svg)
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("polyline count = %d, want 2", got)
	}
	if got := strings.Count(svg, "<circle"); got != 4 {
		t.Errorf("circle count = %d, want 4", got)
	}
}

func TestValidation(t *testing.T) {
	if _, err := GroupedBarSVG(Spec{}); err == nil {
		t.Error("empty spec should fail")
	}
	s := sampleSpec()
	s.Series[0].Values = []float64{1} // wrong length
	if _, err := GroupedBarSVG(s); err == nil {
		t.Error("ragged series should fail")
	}
	s2 := sampleSpec()
	s2.Series[0].Values[0] = math.NaN()
	if _, err := LineSVG(s2); err == nil {
		t.Error("NaN should fail")
	}
}

func TestAllZeroChartRenders(t *testing.T) {
	s := sampleSpec()
	for i := range s.Series {
		for j := range s.Series[i].Values {
			s.Series[i].Values[j] = 0
		}
	}
	svg, err := GroupedBarSVG(s)
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, svg)
}

func TestNiceCeiling(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0.7, 1}, {1.0, 1}, {1.3, 2}, {3.7, 5}, {7, 10}, {12, 20}, {130, 200}, {0.013, 0.02},
	}
	for _, c := range cases {
		if got := niceCeiling(c.in); math.Abs(got-c.want) > c.want*1e-9 {
			t.Errorf("niceCeiling(%g) = %g, want %g", c.in, got, c.want)
		}
	}
	if niceCeiling(0) != 1 {
		t.Error("niceCeiling(0) should be 1")
	}
}

func TestManySeriesUsePaletteModulo(t *testing.T) {
	s := Spec{
		Title:  "wide",
		XTicks: []string{"x"},
	}
	for i := 0; i < 12; i++ {
		s.Series = append(s.Series, Series{Label: "s", Values: []float64{float64(i)}})
	}
	svg, err := GroupedBarSVG(s)
	if err != nil {
		t.Fatal(err)
	}
	wellFormed(t, svg)
}
