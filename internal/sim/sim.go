// Package sim assembles a complete simulated machine — workload generator,
// out-of-order core, branch predictors, instruction L1, ICR data L1,
// unified L2, memory, energy meter, and fault injector — runs it, and
// produces a metrics.Report. This is the programmatic entry point every
// experiment, example, and CLI tool uses.
package sim

import (
	"context"
	"fmt"
	"math"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Simulate runs one benchmark × scheme configuration on the given machine
// and returns the full report.
func Simulate(m config.Machine, r config.Run) (*metrics.Report, error) {
	//icrvet:ignore ctxflow Simulate is the documented non-cancellable entry point; it roots its own context by design
	return SimulateContext(context.Background(), m, r)
}

// SimulateContext is Simulate with cooperative cancellation: when ctx is
// cancellable (ctx.Done() != nil), the core polls an atomic stop flag once
// per simulated cycle and the run aborts promptly with ctx's error. A
// non-cancellable context (context.Background) adds no per-cycle overhead,
// so the serial path is unchanged.
//
// The assembled machine (cache arenas, RUU, predictor tables) is drawn
// from a process-wide pool keyed by the run's shape (see shapeOf) and
// fully reset between runs, so steady-state batch submissions allocate
// only per-run state (the workload generator and fault injector). Results
// are byte-identical to a freshly built machine — the reset path is pinned
// to the equivalence goldens by TestPooledInstanceByteIdentical.
func SimulateContext(ctx context.Context, m config.Machine, r config.Run) (*metrics.Report, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	profile, err := workload.ByName(r.Benchmark)
	if err != nil {
		return nil, err
	}
	gen, err := workload.New(profile, r.Seed)
	if err != nil {
		return nil, err
	}
	if r.Adapt.Enabled() && !r.Scheme.HasReplication() {
		return nil, fmt.Errorf("sim: adaptive controller requires a replicating scheme, got %s", r.Scheme.Name())
	}
	if err := r.TwoTier.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	// Canonicalize before shapeOf so equal-after-defaulting configs share
	// a pool shape.
	r.Adapt = r.Adapt.Normalized()
	r.TwoTier = r.TwoTier.Normalized()
	if r.Instructions == 0 {
		r.Instructions = config.DefaultInstructions
	}
	if r.Energy == (energy.Params{}) {
		r.Energy = energy.DefaultParams()
	}

	shape, poolable := shapeOf(m, r)
	inst := defaultPool.get(shape)
	if inst == nil {
		inst = newInstance(m, r)
	}
	rep, err := inst.simulate(ctx, m, r, gen)
	if poolable {
		defaultPool.put(inst)
	}
	return rep, err
}

// assemble folds every component's counters into one report.
func assemble(
	r config.Run,
	cs cpu.Stats,
	ds core.Stats,
	is cache.Stats,
	ls cache.Stats,
	mem *cache.Memory,
	meter *energy.Meter,
	injector *fault.Injector,
) *metrics.Report {
	// Price the L2 and memory traffic now that the run is complete.
	// (Memory costs default to zero, so single-tier reports are
	// numerically unchanged.)
	meter.AddL2Read(ls.Reads + ls.Fetches)
	meter.AddL2Write(ls.Writes)
	meter.AddMemRead(mem.Reads() + mem.Fetches())
	meter.AddMemWrite(mem.Writes())

	rep := &metrics.Report{
		Benchmark:    r.Benchmark,
		Scheme:       r.Scheme.Name(),
		Instructions: cs.Instructions,
		Cycles:       cs.Cycles,

		DL1Reads: ds.Reads, DL1ReadHits: ds.ReadHits, DL1ReadMisses: ds.ReadMisses,
		DL1Writes: ds.Writes, DL1WriteHits: ds.WriteHits, DL1WriteMisses: ds.WriteMisses,
		DL1Writebacks: ds.Writebacks,

		L2Accesses:  ls.Accesses(),
		L2Misses:    ls.Misses(),
		MemAccesses: mem.Accesses(),

		IL1Fetches: is.Fetches,
		IL1Misses:  is.FetchMisses,

		Branches:    cs.Branches,
		Mispredicts: cs.Mispredicts,

		ReplAttempts:        ds.ReplAttempts,
		ReplSuccesses:       ds.ReplSuccesses,
		ReplDoubles:         ds.ReplDoubles,
		ReadHitsWithReplica: ds.ReadHitsWithReplica,
		ReplicaServedMisses: ds.ReplicaServedMisses,
		ReplicaEvictions:    ds.ReplicaEvictions,
		DeadEvictions:       ds.DeadEvictions,

		ErrorsDetected:        ds.ErrorsDetected,
		RecoveredByECC:        ds.RecoveredByECC,
		RecoveredByReplica:    ds.RecoveredByReplica,
		RecoveredByDuplicate:  ds.RecoveredByDuplicate,
		RecoveredByL2:         ds.RecoveredByL2,
		ReadHitsWithDuplicate: ds.ReadHitsWithDuplicate,
		UnrecoverableLoads:    ds.UnrecoverableLoads,
		SilentWritebacks:      ds.SilentWritebacks,
		VulnerableLineCycles:  ds.VulnerableLineCycles,

		EnergyL1:     meter.L1Energy(),
		EnergyL2:     meter.L2Energy(),
		EnergyChecks: meter.CheckEnergy(),
		EnergyRCache: meter.RCacheEnergy(),
	}
	if injector != nil {
		rep.ErrorsInjected = injector.Injected()
	}
	return rep
}

// SimulateAll runs one scheme configuration across every benchmark and
// returns the reports in workload.Names() order. The mutate callback (may
// be nil) customizes each run before it executes.
func SimulateAll(m config.Machine, scheme core.Scheme, mutate func(*config.Run)) ([]*metrics.Report, error) {
	names := workload.Names()
	out := make([]*metrics.Report, 0, len(names))
	for _, name := range names {
		r := config.NewRun(name, scheme)
		if mutate != nil {
			mutate(&r)
		}
		rep, err := Simulate(m, r)
		if err != nil {
			return nil, fmt.Errorf("sim: %s: %w", r.Name(), err)
		}
		out = append(out, rep)
	}
	return out, nil
}

// GeoMean returns the geometric mean of a slice of positive ratios — the
// aggregation the paper uses for "average across applications".
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
