// Package sim assembles a complete simulated machine — workload generator,
// out-of-order core, branch predictors, instruction L1, ICR data L1,
// unified L2, memory, energy meter, and fault injector — runs it, and
// produces a metrics.Report. This is the programmatic entry point every
// experiment, example, and CLI tool uses.
package sim

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/rcache"
	"repro/internal/workload"
)

// Simulate runs one benchmark × scheme configuration on the given machine
// and returns the full report.
func Simulate(m config.Machine, r config.Run) (*metrics.Report, error) {
	return SimulateContext(context.Background(), m, r)
}

// SimulateContext is Simulate with cooperative cancellation: when ctx is
// cancellable (ctx.Done() != nil), the core polls an atomic stop flag once
// per simulated cycle and the run aborts promptly with ctx's error. A
// non-cancellable context (context.Background) adds no per-cycle overhead,
// so the serial path is unchanged.
func SimulateContext(ctx context.Context, m config.Machine, r config.Run) (*metrics.Report, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	profile, err := workload.ByName(r.Benchmark)
	if err != nil {
		return nil, err
	}
	gen, err := workload.New(profile, r.Seed)
	if err != nil {
		return nil, err
	}
	if r.Instructions == 0 {
		r.Instructions = config.DefaultInstructions
	}
	if r.Energy == (energy.Params{}) {
		r.Energy = energy.DefaultParams()
	}

	// Memory hierarchy, bottom up. The L2 is unified: both L1s miss into
	// it, as in Table 1.
	mem := cache.NewMemory(m.MemLatency, m.DL1Block)
	l2 := cache.New(cache.Config{
		Name: "l2", Size: m.L2Size, Assoc: m.L2Assoc, BlockSize: m.L2Block,
		HitLatency: m.L2Latency, Policy: cache.WriteBack, Next: mem,
		// The L2 is single-banked: each access (demand fill, write-back,
		// or write-buffer drain) occupies it for a few cycles, so heavy
		// write-through traffic delays demand misses (§5.8).
		PortOccupancy: 4,
	})
	il1 := cache.New(cache.Config{
		Name: "il1", Size: m.IL1Size, Assoc: m.IL1Assoc, BlockSize: m.IL1Block,
		HitLatency: m.IL1Latency, Policy: cache.WriteBack, Next: l2,
	})

	meter := energy.NewMeter(r.Energy)
	var dups *rcache.Cache
	if r.DupCacheKB > 0 {
		dups = rcache.New(r.DupCacheKB<<10, 4, m.DL1Block)
	}
	dl1cfg := core.Config{
		Size: m.DL1Size, Assoc: m.DL1Assoc, BlockSize: m.DL1Block,
		HitLatency: m.DL1Latency,
		Scheme:     r.Scheme,
		Repl:       r.Repl,
		Next:       l2,
		Mem:        mem,
		Meter:      meter,
		Hints:      r.Hints,
	}
	dl1cfg.PrefetchIntoDead = r.Prefetch
	if dups != nil {
		dl1cfg.Duplicates = dups
	}
	if r.WriteThrough {
		dl1cfg.WritePolicy = cache.WriteThrough
		entries := r.WriteBufferEntries
		if entries <= 0 {
			entries = 8
		}
		dl1cfg.WriteBuf = cache.NewWriteBuffer(entries, m.L2Latency, l2)
	}
	dl1 := core.New(dl1cfg)

	cpucfg := m.CPU
	var hooks []func(uint64)
	var injector *fault.Injector
	if r.Fault.Prob > 0 {
		wordsPerRow := m.DL1Assoc * m.DL1Block / 8
		injector = fault.NewInjector(r.Fault.Model, r.Fault.Prob, wordsPerRow, r.Fault.Seed)
		next := injector.NextAfter(0)
		hooks = append(hooks, func(now uint64) {
			for now >= next {
				dl1.Inject(injector)
				next = injector.NextAfter(now)
			}
		})
	}
	if r.ScrubInterval > 0 {
		lines := r.ScrubLines
		if lines <= 0 {
			lines = 1
		}
		tick := newScrubTicker(r.ScrubInterval)
		hooks = append(hooks, func(now uint64) {
			if tick.due(now) {
				dl1.Scrub(now, lines)
			}
		})
	}
	switch len(hooks) {
	case 0:
	case 1:
		cpucfg.EachCycle = hooks[0]
	default:
		cpucfg.EachCycle = func(now uint64) {
			for _, h := range hooks {
				h(now)
			}
		}
	}

	if ctx.Done() != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var stop atomic.Bool
		cancelWatch := context.AfterFunc(ctx, func() { stop.Store(true) })
		defer cancelWatch()
		cpucfg.Halt = stop.Load
	}

	c := cpu.New(cpucfg, gen, il1, dl1)
	cstats := c.Run(r.Instructions)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cstats.Instructions < r.Instructions {
		return nil, fmt.Errorf("sim: stream ended after %d instructions", cstats.Instructions)
	}
	dl1.FinishVulnerability(cstats.Cycles)

	rep := assemble(r, cstats, dl1.Stats(), il1.Stats(), l2.Stats(), mem, meter, injector)
	scrub := dl1.ScrubStats()
	rep.ScrubChecks = scrub.Checks
	rep.ScrubErrors = scrub.Errors
	rep.ScrubRepaired = scrub.Repaired
	rep.ScrubLost = scrub.Lost
	return rep, nil
}

// assemble folds every component's counters into one report.
func assemble(
	r config.Run,
	cs cpu.Stats,
	ds core.Stats,
	is cache.Stats,
	ls cache.Stats,
	mem *cache.Memory,
	meter *energy.Meter,
	injector *fault.Injector,
) *metrics.Report {
	// Price the L2 traffic now that the run is complete.
	meter.AddL2Read(ls.Reads + ls.Fetches)
	meter.AddL2Write(ls.Writes)

	rep := &metrics.Report{
		Benchmark:    r.Benchmark,
		Scheme:       r.Scheme.Name(),
		Instructions: cs.Instructions,
		Cycles:       cs.Cycles,

		DL1Reads: ds.Reads, DL1ReadHits: ds.ReadHits, DL1ReadMisses: ds.ReadMisses,
		DL1Writes: ds.Writes, DL1WriteHits: ds.WriteHits, DL1WriteMisses: ds.WriteMisses,
		DL1Writebacks: ds.Writebacks,

		L2Accesses:  ls.Accesses(),
		L2Misses:    ls.Misses(),
		MemAccesses: mem.Accesses(),

		IL1Fetches: is.Fetches,
		IL1Misses:  is.FetchMisses,

		Branches:    cs.Branches,
		Mispredicts: cs.Mispredicts,

		ReplAttempts:        ds.ReplAttempts,
		ReplSuccesses:       ds.ReplSuccesses,
		ReplDoubles:         ds.ReplDoubles,
		ReadHitsWithReplica: ds.ReadHitsWithReplica,
		ReplicaServedMisses: ds.ReplicaServedMisses,
		ReplicaEvictions:    ds.ReplicaEvictions,
		DeadEvictions:       ds.DeadEvictions,

		ErrorsDetected:        ds.ErrorsDetected,
		RecoveredByECC:        ds.RecoveredByECC,
		RecoveredByReplica:    ds.RecoveredByReplica,
		RecoveredByDuplicate:  ds.RecoveredByDuplicate,
		RecoveredByL2:         ds.RecoveredByL2,
		ReadHitsWithDuplicate: ds.ReadHitsWithDuplicate,
		UnrecoverableLoads:    ds.UnrecoverableLoads,
		SilentWritebacks:      ds.SilentWritebacks,
		VulnerableLineCycles:  ds.VulnerableLineCycles,

		EnergyL1:     meter.L1Energy(),
		EnergyL2:     meter.L2Energy(),
		EnergyChecks: meter.CheckEnergy(),
		EnergyRCache: meter.RCacheEnergy(),
	}
	if injector != nil {
		rep.ErrorsInjected = injector.Injected()
	}
	return rep
}

// SimulateAll runs one scheme configuration across every benchmark and
// returns the reports in workload.Names() order. The mutate callback (may
// be nil) customizes each run before it executes.
func SimulateAll(m config.Machine, scheme core.Scheme, mutate func(*config.Run)) ([]*metrics.Report, error) {
	names := workload.Names()
	out := make([]*metrics.Report, 0, len(names))
	for _, name := range names {
		r := config.NewRun(name, scheme)
		if mutate != nil {
			mutate(&r)
		}
		rep, err := Simulate(m, r)
		if err != nil {
			return nil, fmt.Errorf("sim: %s: %w", r.Name(), err)
		}
		out = append(out, rep)
	}
	return out, nil
}

// GeoMean returns the geometric mean of a slice of positive ratios — the
// aggregation the paper uses for "average across applications".
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
