package sim

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/adapt"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/workload"
)

// identityMatrix covers every construction-relevant knob the instance pool
// must absorb: schemes with and without replication/ECC, fault injection,
// scrubbing, write-through with a buffer, the duplicate cache, prefetch,
// decay variants, and sampled mode.
func identityMatrix() []config.Run {
	machine := config.Default()
	sets := machine.DL1Sets()
	repl := core.ReplConfig{
		Distances:   core.VerticalDistances(sets),
		Replicas:    1,
		Victim:      core.DeadFirst,
		DecayWindow: 1000,
	}
	runs := []config.Run{
		config.NewRun("gzip", core.BaseP()),
		config.NewRun("vpr", core.BaseECC(true)),
	}
	r := config.NewRun("gzip", core.ICR(core.ParityProt, core.LookupSerial, core.ReplStores))
	r.Repl = repl
	runs = append(runs, r)

	r = config.NewRun("vpr", core.ICR(core.ECCProt, core.LookupParallel, core.ReplLoadsStores))
	r.Repl = repl
	r.Repl.LeaveReplicas = true
	runs = append(runs, r)

	r = config.NewRun("gzip", core.ICR(core.ParityProt, core.LookupSerial, core.ReplStores))
	r.Repl = repl
	r.Repl.Decay = core.Adaptive
	r.Fault = config.FaultConfig{Model: fault.Random, Prob: 1e-3, Seed: 7}
	runs = append(runs, r)

	r = config.NewRun("vpr", core.ICR(core.ECCProt, core.LookupSerial, core.ReplStores))
	r.Repl = repl
	r.Fault = config.FaultConfig{Model: fault.Direct, Prob: 1e-3, Seed: 11}
	r.ScrubInterval = 5000
	r.ScrubLines = 2
	runs = append(runs, r)

	r = config.NewRun("gzip", core.BaseP())
	r.WriteThrough = true
	r.WriteBufferEntries = 4
	runs = append(runs, r)

	r = config.NewRun("vpr", core.BaseECC(false))
	r.DupCacheKB = 8
	r.Prefetch = true
	runs = append(runs, r)

	r = config.NewRun("gzip", core.ICR(core.ECCProt, core.LookupParallel, core.ReplLoadsStores))
	r.Repl = repl
	r.Sample = config.SampleConfig{Period: 20_000, Detail: 1_000, Warmup: 400}
	runs = append(runs, r)

	// An ICR-ADAPT run on a phase-shifting workload: the controller's own
	// state (ladder level, streaks, hold embargo, trajectory) must reset
	// with the arena, and its epoch-by-epoch retuning must replay
	// identically on a pooled instance.
	r = config.NewRun("flux", core.ICR(core.ParityProt, core.LookupSerial, core.ReplStores))
	r.Repl = core.ReplConfig{
		Distances:   core.Power2Distances(sets, 2),
		Replicas:    1,
		Victim:      core.DeadOnly,
		DecayWindow: adapt.DefaultMaxWindow,
	}
	r.Adapt = adapt.Config{Predictor: adapt.PredictorDecay}
	runs = append(runs, r)

	// Two-tier runs: a protected tier under a replicating L1 with
	// cross-tier placement both ways and faults injected at both tiers,
	// and a plain ECC tier under a base L1. The tier's arena (lines,
	// parity, ECC bytes, guest state) must reset with the instance, and
	// the tier fault injector is per-run state the shape key must ignore.
	r = config.NewRun("gzip", core.ICR(core.ParityProt, core.LookupSerial, core.ReplStores))
	r.Repl = repl
	r.Fault = config.FaultConfig{Model: fault.Random, Prob: 1e-3, Seed: 7}
	r.TwoTier = config.TwoTier{
		Protect: core.ParityProt, Replicate: true, Victim: core.DeadFirst,
		DecayWindow: 1000, CrossTier: true,
		Fault: config.FaultConfig{Model: fault.Random, Prob: 1e-3, Seed: 13},
	}
	runs = append(runs, r)

	r = config.NewRun("vpr", core.BaseECC(false))
	r.TwoTier = config.TwoTier{Protect: core.ECCProt, ExtraLatency: 20}
	runs = append(runs, r)

	for i := range runs {
		runs[i].Instructions = 120_000
	}
	return runs
}

// freshReport simulates r on a freshly built, never-pooled instance — the
// oracle the pooled path must match byte for byte.
func freshReport(t *testing.T, m config.Machine, r config.Run) []byte {
	t.Helper()
	profile, err := workload.ByName(r.Benchmark)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.New(profile, r.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if r.Energy == (energy.Params{}) {
		r.Energy = energy.DefaultParams()
	}
	rep, err := newInstance(m, r).simulate(context.Background(), m, r, gen)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestPooledInstanceByteIdentical pins the arena-reuse contract: a report
// produced on a pooled, reset instance is byte-identical to one from a
// fresh build. Each config runs once to populate the pool and once
// reusing it; both are compared against a never-pooled oracle.
func TestPooledInstanceByteIdentical(t *testing.T) {
	m := config.Default()
	for _, r := range identityMatrix() {
		r := r
		t.Run(r.Name(), func(t *testing.T) {
			want := freshReport(t, m, r)
			for pass := 0; pass < 2; pass++ {
				rep, err := Simulate(m, r)
				if err != nil {
					t.Fatal(err)
				}
				got, err := json.Marshal(rep)
				if err != nil {
					t.Fatal(err)
				}
				if string(got) != string(want) {
					t.Fatalf("pass %d diverged from fresh-instance oracle:\n got: %s\nwant: %s", pass, got, want)
				}
			}
		})
	}
}

// TestShapeOf pins the poolability rules: hinted runs never pool, and any
// construction-relevant knob must change the shape key.
func TestShapeOf(t *testing.T) {
	m := config.Default()
	base := config.NewRun("gzip", core.ICR(core.ParityProt, core.LookupSerial, core.ReplStores))

	if _, ok := shapeOf(m, base); !ok {
		t.Fatal("plain run should be poolable")
	}
	hinted := base
	hinted.Hints = core.ReplicateAll{}
	if _, ok := shapeOf(m, hinted); ok {
		t.Error("hinted run must not be poolable")
	}

	s0, _ := shapeOf(m, base)
	mutants := []func(*config.Machine, *config.Run){
		func(m *config.Machine, r *config.Run) { m.DL1Size *= 2 },
		func(m *config.Machine, r *config.Run) { m.L2Latency++ },
		func(m *config.Machine, r *config.Run) { m.MemLatency++ },
		func(m *config.Machine, r *config.Run) { r.Scheme = core.BaseECC(true) },
		func(m *config.Machine, r *config.Run) { r.Repl.Distances = []int{1, 2} },
		func(m *config.Machine, r *config.Run) { r.Repl.Replicas = 2 },
		func(m *config.Machine, r *config.Run) { r.Repl.Victim = core.DeadFirst },
		func(m *config.Machine, r *config.Run) { r.Repl.DecayWindow = 4096 },
		func(m *config.Machine, r *config.Run) { r.Repl.LeaveReplicas = true },
		func(m *config.Machine, r *config.Run) { r.Repl.Decay = core.Adaptive },
		func(m *config.Machine, r *config.Run) { r.Adapt = adapt.Config{Predictor: adapt.PredictorDecay} },
		func(m *config.Machine, r *config.Run) { r.WriteThrough = true },
		func(m *config.Machine, r *config.Run) { r.DupCacheKB = 8 },
		func(m *config.Machine, r *config.Run) { r.Prefetch = true },
		func(m *config.Machine, r *config.Run) { r.TwoTier = config.TwoTier{Protect: core.ParityProt} },
		func(m *config.Machine, r *config.Run) {
			r.TwoTier = config.TwoTier{Protect: core.ParityProt, Replicate: true, CrossTier: true}
		},
		func(m *config.Machine, r *config.Run) {
			r.TwoTier = config.TwoTier{Protect: core.ECCProt, ExtraLatency: 20}
		},
	}
	for i, mut := range mutants {
		mm, rr := m, base
		mut(&mm, &rr)
		if s, _ := shapeOf(mm, rr); s == s0 {
			t.Errorf("mutant %d did not change the shape key", i)
		}
	}

	// Per-run state must NOT change the shape: these are absorbed by reset.
	same := []func(*config.Run){
		func(r *config.Run) { r.Benchmark = "vpr" },
		func(r *config.Run) { r.Seed = 99 },
		func(r *config.Run) { r.Instructions = 1 },
		func(r *config.Run) { r.Fault = config.FaultConfig{Model: fault.Direct, Prob: 0.5, Seed: 3} },
		func(r *config.Run) { r.ScrubInterval = 100 },
		func(r *config.Run) { r.Sample = config.SampleConfig{Period: 1000} },
		// Tier fault injection is per-run state: differently-seeded
		// injection runs must share one arena.
		func(r *config.Run) { r.TwoTier.Fault = config.FaultConfig{Model: fault.Direct, Prob: 0.5, Seed: 3} },
	}
	for i, mut := range same {
		rr := base
		mut(&rr)
		if s, _ := shapeOf(m, rr); s != s0 {
			t.Errorf("per-run mutant %d changed the shape key", i)
		}
	}
}

// TestInstancePoolBounds exercises the pool directly: shape matching,
// LIFO reuse, the idle cap, and the non-poolable drop path.
func TestInstancePoolBounds(t *testing.T) {
	p := &instancePool{max: 2}
	a := &instance{shape: "A"}
	b := &instance{shape: "B"}
	c := &instance{shape: "A"}

	if got := p.get("A"); got != nil {
		t.Fatal("empty pool returned an instance")
	}
	p.put(a)
	p.put(b)
	if got := p.get("A"); got != a {
		t.Fatalf("get(A) = %v, want a", got)
	}
	p.put(a)
	p.put(c) // over cap: evicts the oldest (b)
	if got := p.get("B"); got != nil {
		t.Error("evicted instance still retrievable")
	}
	if got := p.get("A"); got != c {
		t.Error("newest A not returned first")
	}
	p.put(&instance{shape: ""}) // non-poolable: dropped
	if got := p.get(""); got != nil {
		t.Error("non-poolable shape must never be served")
	}
}

// TestSimulateSteadyStateAllocs pins the arena-reuse win: once the pool is
// warm, a run allocates only its per-run state (workload generator, fault
// injector, hooks, report) — the cache arenas, RUU, and predictor tables
// are reused. Building the arena alone costs ~800 allocations (and
// megabytes), so the bound below fails if pooling silently stops working.
func TestSimulateSteadyStateAllocs(t *testing.T) {
	m := config.Default()
	cases := []struct {
		name  string
		run   config.Run
		bound float64
	}{
		{"basep", config.NewRun("gzip", core.BaseP()), 700},
		{"icr", config.NewRun("vpr", core.ICR(core.ECCProt, core.LookupParallel, core.ReplLoadsStores)), 1000},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := tc.run
			r.Instructions = 50_000
			if _, err := Simulate(m, r); err != nil {
				t.Fatal(err)
			}
			n := testing.AllocsPerRun(5, func() {
				if _, err := Simulate(m, r); err != nil {
					t.Fatal(err)
				}
			})
			if n > tc.bound {
				t.Errorf("steady-state Simulate allocates %.0f objects/run, want <= %.0f "+
					"(did the instance pool stop reusing arenas?)", n, tc.bound)
			}
		})
	}
}

// TestPoolReuseAcrossNewKnobConfigs pins the hazard resetcoverage exists
// to prevent: two configs that differ only in a recently added knob
// (sampling, scrubbing — both deliberately absent from the shape key)
// share a pool slot, so a Reset that misses the knob's per-run state
// would leak the first config's behaviour into the second. The A-B-A
// pattern forces one arena through both configs and compares every
// report against a never-pooled oracle.
func TestPoolReuseAcrossNewKnobConfigs(t *testing.T) {
	m := config.Default()
	base := config.NewRun("gzip", core.ICR(core.ECCProt, core.LookupParallel, core.ReplLoadsStores))
	base.Instructions = 120_000

	cases := []struct {
		name string
		mut  func(*config.Run)
	}{
		{"sample", func(r *config.Run) {
			r.Sample = config.SampleConfig{Period: 20_000, Detail: 1_000, Warmup: 400}
		}},
		{"scrub", func(r *config.Run) {
			r.ScrubInterval = 5_000
			r.ScrubLines = 2
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			a, b := base, base
			tc.mut(&b)
			sa, okA := shapeOf(m, a)
			sb, okB := shapeOf(m, b)
			if !okA || !okB || sa != sb {
				t.Fatalf("configs must share a pool shape for this test to bite: %q vs %q", sa, sb)
			}
			wantA := freshReport(t, m, a)
			wantB := freshReport(t, m, b)
			steps := []struct {
				label string
				run   config.Run
				want  []byte
			}{
				{"A-first", a, wantA},
				{"B-on-A's-arena", b, wantB},
				{"A-on-B's-arena", a, wantA},
			}
			for _, step := range steps {
				rep, err := Simulate(m, step.run)
				if err != nil {
					t.Fatal(err)
				}
				got, err := json.Marshal(rep)
				if err != nil {
					t.Fatal(err)
				}
				if string(got) != string(step.want) {
					t.Fatalf("%s diverged from the fresh-instance oracle:\n got: %s\nwant: %s",
						step.label, got, step.want)
				}
			}
		})
	}
}
