//go:build race

package sim

// raceDetectorEnabled reports whether this test binary was built with
// -race. The sampling validation matrix shrinks under the detector: see
// samplingMatrix.
const raceDetectorEnabled = true
