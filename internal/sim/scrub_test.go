package sim

import "testing"

// With a stride-1 clock (how the core actually drives EachCycle) the ticker
// fires exactly once per interval boundary — identical to the old loop.
func TestScrubTickerStrideOne(t *testing.T) {
	tick := newScrubTicker(100)
	fired := 0
	for now := uint64(0); now <= 1000; now++ {
		if tick.due(now) {
			fired++
			if now%100 != 0 || now == 0 {
				t.Errorf("fired at %d, want multiples of 100 only", now)
			}
		}
	}
	if fired != 10 {
		t.Errorf("fired %d times over 1000 cycles, want 10", fired)
	}
}

// Regression test for the burst bug: a clock that jumps far past many due
// times (e.g. a hook observing a huge stall) must trigger exactly ONE
// catch-up pass, and the schedule must realign past now — not replay one
// pass per missed interval at the same timestamp.
func TestScrubTickerLargeJumpSingleCatchUp(t *testing.T) {
	tick := newScrubTicker(100)

	// Jump straight to cycle 10_000: 100 intervals elapsed.
	fired := 0
	for i := 0; i < 5; i++ { // repeated calls at the same now must not re-fire
		if tick.due(10_000) {
			fired++
		}
	}
	if fired != 1 {
		t.Fatalf("fired %d times at the jump, want exactly 1 catch-up", fired)
	}

	// The schedule realigned: next fire is the first boundary after 10_000.
	if tick.due(10_050) {
		t.Error("fired before the next boundary after the jump")
	}
	if !tick.due(10_100) {
		t.Error("did not fire at the realigned boundary 10100")
	}
	if tick.due(10_100) {
		t.Error("double-fired at the same boundary")
	}
}

// A jump that lands exactly on a boundary is one pass, then resumes the
// normal cadence.
func TestScrubTickerJumpOntoBoundary(t *testing.T) {
	tick := newScrubTicker(7)
	if !tick.due(70) {
		t.Fatal("no pass at boundary 70")
	}
	if tick.due(76) {
		t.Error("fired before next boundary")
	}
	if !tick.due(77) {
		t.Error("did not resume cadence at 77")
	}
}
