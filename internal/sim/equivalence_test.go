package sim

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fault"
)

// The kernel-equivalence goldens pin the exact metrics.Report JSON the
// simulator produced *before* the hot-path optimizations (scratch buffers,
// O(1) RUU lookups, copy-free memory fetches). Any optimization that
// changes a single reported number — a counter, a latency, an energy
// figure — fails this test. Regenerate only when a deliberate
// model-behaviour change is being made:
//
//	go test ./internal/sim -run TestKernelEquivalenceGoldens -update-equivalence
var updateEquivalence = flag.Bool("update-equivalence", false,
	"rewrite the kernel equivalence goldens from the current simulator")

// equivInstrs keeps the 10-scheme × 3-seed × 2-benchmark matrix around a
// second of wall time while still reaching steady-state cache behaviour.
const equivInstrs = 40_000

// equivalenceRuns is the scheme matrix: all ten §3.2 schemes, three
// workload seeds, two benchmarks, with a modest fault-injection rate so
// the verify/recovery paths (parity checks, replica repair, ECC
// correction, L2 refill) execute and their counters are pinned too.
func equivalenceRuns() []config.Run {
	var runs []config.Run
	for _, bench := range []string{"gzip", "vpr"} {
		for _, s := range core.AllSchemes() {
			for seed := int64(1); seed <= 3; seed++ {
				r := config.NewRun(bench, s)
				r.Instructions = equivInstrs
				r.Seed = seed
				r.Fault = config.FaultConfig{Model: fault.Random, Prob: 1e-4, Seed: seed}
				runs = append(runs, r)
			}
		}
	}
	return runs
}

// goldenName maps a run to its golden file name (scheme names contain
// parentheses; keep the files shell-friendly).
func goldenName(r *config.Run) string {
	s := strings.NewReplacer("(", "-", ")", "").Replace(r.Scheme.Name())
	return fmt.Sprintf("%s_%s_seed%d.json", r.Benchmark, s, r.Seed)
}

func TestKernelEquivalenceGoldens(t *testing.T) {
	dir := filepath.Join("testdata", "equivalence")
	if *updateEquivalence {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range equivalenceRuns() {
		r := r
		t.Run(fmt.Sprintf("%s/seed%d", r.Name(), r.Seed), func(t *testing.T) {
			rep, err := Simulate(config.Default(), r)
			if err != nil {
				t.Fatal(err)
			}
			got, err := rep.MarshalJSON()
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join(dir, goldenName(&r))
			if *updateEquivalence {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update-equivalence): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("report diverged from the pre-optimization kernel\n got: %s\nwant: %s", got, want)
			}
		})
	}
}
