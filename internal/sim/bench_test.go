package sim

import (
	"testing"

	"repro/internal/adapt"
	"repro/internal/config"
	"repro/internal/core"
)

// benchInstrs is the single-thread throughput yardstick: the issue's
// "≥1.5× sim.Simulate at 100k instructions" target is measured on these
// benchmarks (scripts/bench.sh turns ns/op into instr/sec).
const benchInstrs = 100_000

func benchSimulate(b *testing.B, scheme core.Scheme) {
	b.Helper()
	r := config.NewRun("gzip", scheme)
	r.Instructions = benchInstrs
	m := config.Default()
	// One untimed run reaches steady state (instance pool populated,
	// architectural memory's lazy block store faulted in) so allocs/op is
	// the deterministic per-run figure the CI gate pins, at any benchtime.
	if _, err := Simulate(m, r); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(m, r); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchInstrs)*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
}

func BenchmarkSimulateBaseP(b *testing.B) {
	benchSimulate(b, core.BaseP())
}

func BenchmarkSimulateBaseECC(b *testing.B) {
	benchSimulate(b, core.BaseECC(false))
}

func BenchmarkSimulateICRPPSS(b *testing.B) {
	benchSimulate(b, core.ICR(core.ParityProt, core.LookupSerial, core.ReplStores))
}

func BenchmarkSimulateICRECCPPLS(b *testing.B) {
	benchSimulate(b, core.ICR(core.ECCProt, core.LookupParallel, core.ReplLoadsStores))
}

// BenchmarkSimulateICRAdaptDecay prices the runtime controller: the same
// ICR run as BenchmarkSimulateICRPPSS plus the per-epoch census and
// retuning on the flux phase-shifting workload. The epoch hook must stay
// allocation-free, so allocs/op here pins the whole adaptive overhead.
func BenchmarkSimulateICRAdaptDecay(b *testing.B) {
	r := config.NewRun("flux", core.ICR(core.ParityProt, core.LookupSerial, core.ReplStores))
	r.Instructions = benchInstrs
	m := config.Default()
	sets := m.DL1Sets()
	r.Repl = core.ReplConfig{
		Distances:   core.Power2Distances(sets, 2),
		Replicas:    1,
		Victim:      core.DeadOnly,
		DecayWindow: adapt.DefaultMaxWindow,
	}
	r.Adapt = adapt.Config{Predictor: adapt.PredictorDecay}
	if _, err := Simulate(m, r); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(m, r); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchInstrs)*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
}

// sampledBenchInstrs matches the committed validation table: at the
// default 50k/1k/400 geometry an 8M budget yields 160 measured windows
// and sub-percent IPC error (see EXPERIMENTS.md). The benchmarks report
// effective instr/s — total committed instructions (warmed + detailed)
// over wall time — which is the figure the ≥10M instr/s target in
// ISSUE.md refers to.
const sampledBenchInstrs = 8_000_000

func benchSampled(b *testing.B, bench string, scheme core.Scheme) {
	b.Helper()
	r := config.NewRun(bench, scheme)
	r.Instructions = sampledBenchInstrs
	r.Sample = config.SampleConfig{
		Period: config.DefaultSamplePeriod,
		Detail: config.DefaultSampleDetail,
		Warmup: config.DefaultSampleWarmup,
	}
	m := config.Default()
	// One untimed full-length run reaches steady state (instance pool
	// populated, memory block store faulted in to the workload's whole
	// footprint) so the few, long timed iterations measure steady-state
	// sampling and allocs/op stays deterministic at any benchtime.
	if _, err := Simulate(m, r); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(m, r); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sampledBenchInstrs)*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
}

func BenchmarkSampledBasePGzip(b *testing.B) {
	benchSampled(b, "gzip", core.BaseP())
}

func BenchmarkSampledBasePVpr(b *testing.B) {
	benchSampled(b, "vpr", core.BaseP())
}

func BenchmarkSampledICRECCPPLSVpr(b *testing.B) {
	benchSampled(b, "vpr", core.ICR(core.ECCProt, core.LookupParallel, core.ReplLoadsStores))
}
