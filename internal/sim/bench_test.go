package sim

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
)

// benchInstrs is the single-thread throughput yardstick: the issue's
// "≥1.5× sim.Simulate at 100k instructions" target is measured on these
// benchmarks (scripts/bench.sh turns ns/op into instr/sec).
const benchInstrs = 100_000

func benchSimulate(b *testing.B, scheme core.Scheme) {
	b.Helper()
	r := config.NewRun("gzip", scheme)
	r.Instructions = benchInstrs
	m := config.Default()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(m, r); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchInstrs)*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
}

func BenchmarkSimulateBaseP(b *testing.B) {
	benchSimulate(b, core.BaseP())
}

func BenchmarkSimulateBaseECC(b *testing.B) {
	benchSimulate(b, core.BaseECC(false))
}

func BenchmarkSimulateICRPPSS(b *testing.B) {
	benchSimulate(b, core.ICR(core.ParityProt, core.LookupSerial, core.ReplStores))
}

func BenchmarkSimulateICRECCPPLS(b *testing.B) {
	benchSimulate(b, core.ICR(core.ECCProt, core.LookupParallel, core.ReplLoadsStores))
}
