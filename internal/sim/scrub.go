package sim

// scrubTicker schedules the periodic scrub passes driven from the core's
// per-cycle hook. The first pass is due at `interval` and then every
// `interval` cycles.
//
// When the observed clock jumps past several due times at once (a hook
// driven with large strides, e.g. a long stall that batches cycle
// callbacks), exactly one catch-up pass runs and the schedule realigns to
// the next interval boundary after now. The naive `for now >= next` loop
// instead burst one pass per missed interval — all at the same timestamp,
// scrubbing far more lines per cycle than the configured engine could.
type scrubTicker struct {
	interval uint64
	next     uint64
}

func newScrubTicker(interval uint64) *scrubTicker {
	if interval == 0 {
		interval = 1
	}
	return &scrubTicker{interval: interval, next: interval}
}

// due reports whether a scrub pass should run at cycle now, advancing the
// schedule. At most one pass is due per call, however far the clock moved.
func (s *scrubTicker) due(now uint64) bool {
	if now < s.next {
		return false
	}
	s.next += s.interval
	if s.next <= now {
		// The clock jumped past at least one more due time: realign to
		// the first boundary strictly after now instead of replaying
		// every missed interval.
		s.next = now - now%s.interval + s.interval
	}
	return true
}
