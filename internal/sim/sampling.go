package sim

import (
	"math"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/metrics"
)

// segKind labels one stretch of a sampled run's schedule.
type segKind uint8

const (
	// segWarm is functional warming: every cache access, replication
	// decision, decay update, and predictor update happens, but
	// out-of-order timing is skipped and the clock advances at the
	// estimated CPI.
	segWarm segKind = iota + 1
	// segWarmup is a detailed window run cycle-accurately to refill the
	// pipeline, fetch queue, and other timing-only state, but excluded
	// from the timing estimate.
	segWarmup
	// segMeasure is a detailed window whose cycles and instructions feed
	// the CPI/IPC estimate.
	segMeasure
)

// segment is one schedule entry: n instructions in the given mode.
type segment struct {
	kind segKind
	n    uint64
}

// planWindows tiles an instruction budget into the SMARTS-style schedule
// for the given sampling configuration: per sampling unit, functional
// warming for (Period - Warmup - Detail) instructions, then a detailed
// warm-up of Warmup, then a measured window of Detail. A trailing partial
// unit runs as pure warming, so every committed instruction is inside
// exactly one segment and segment lengths always sum to budget.
//
// It returns nil — meaning exact (unsampled) simulation — when sampling is
// disabled or the geometry is degenerate: a period with no room for its
// detailed windows (Period <= Warmup + Detail) or a budget smaller than
// one full unit. Degradation beats guessing: a schedule with zero measured
// windows or one that alters the run length would be silently wrong.
func planWindows(budget uint64, s config.SampleConfig) []segment {
	s = s.Normalized()
	if !s.Enabled() {
		return nil
	}
	detailed := s.Warmup + s.Detail
	if detailed < s.Warmup { // overflow
		return nil
	}
	if s.Period <= detailed || budget < s.Period {
		return nil
	}
	units := budget / s.Period
	rem := budget % s.Period
	warm := s.Period - detailed
	segs := make([]segment, 0, 3*units+1)
	for u := uint64(0); u < units; u++ {
		segs = append(segs,
			segment{segWarm, warm},
			segment{segWarmup, s.Warmup},
			segment{segMeasure, s.Detail},
		)
	}
	if rem > 0 {
		segs = append(segs, segment{segWarm, rem})
	}
	return segs
}

// runSampled drives the core through the schedule and gathers the
// per-window measurements. The returned stats are the core's cumulative
// counters (the caller detects early termination — halt or stream end —
// exactly as in exact mode, by Instructions < budget); the SamplingStats
// carries the interval estimates. Warming segments are paced at the CPI
// measured so far (1.0 before the first measured window), so cycle-driven
// machinery sees a clock consistent with the final estimate.
func runSampled(c *cpu.Core, dl1 *core.Cache, plan []segment, s config.SampleConfig) (cpu.Stats, *metrics.SamplingStats) {
	var (
		cum       uint64
		ipcs      []float64
		missRates []float64
		sumCycles uint64 // over measured windows
		sumInstrs uint64
		warmed    uint64
		discarded uint64
	)
	for _, seg := range plan {
		cum += seg.n
		switch seg.kind {
		case segWarm:
			before := c.Stats().Instructions
			c.RunWarming(cum, sumCycles, sumInstrs)
			warmed += c.Stats().Instructions - before
		case segWarmup:
			before := c.Stats().Instructions
			c.Run(cum)
			discarded += c.Stats().Instructions - before
		case segMeasure:
			cb, db := c.Stats(), dl1.Stats()
			c.Run(cum)
			ca, da := c.Stats(), dl1.Stats()
			dc := ca.Cycles - cb.Cycles
			di := ca.Instructions - cb.Instructions
			if di > 0 && dc > 0 {
				ipcs = append(ipcs, float64(di)/float64(dc))
				sumCycles += dc
				sumInstrs += di
			}
			acc := (da.Reads + da.Writes) - (db.Reads + db.Writes)
			if acc > 0 {
				miss := (da.ReadMisses + da.WriteMisses) - (db.ReadMisses + db.WriteMisses)
				missRates = append(missRates, float64(miss)/float64(acc))
			}
		}
		if c.Stats().Instructions < cum {
			// Halted or stream ended mid-segment; the caller turns the
			// shortfall into the usual error/cancellation result.
			break
		}
	}

	s = s.Normalized()
	ipcMean, ipcHalf := metrics.MeanCI(ipcs, s.Confidence)
	mrMean, mrHalf := metrics.MeanCI(missRates, s.Confidence)
	return c.Stats(), &metrics.SamplingStats{
		Period:               s.Period,
		Detail:               s.Detail,
		Warmup:               s.Warmup,
		Confidence:           s.Confidence,
		Windows:              len(ipcs),
		WarmedInstructions:   warmed,
		WarmupDiscarded:      discarded,
		MeasuredInstructions: sumInstrs,
		MeasuredCycles:       sumCycles,
		IPCMean:              ipcMean,
		IPCHalfCI:            ipcHalf,
		MissRateMean:         mrMean,
		MissRateHalfCI:       mrHalf,
	}
}

// extrapolatedCycles converts the measured CPI into a whole-run cycle
// estimate: instructions × (measured cycles / measured instructions),
// rounded to the nearest cycle. With nothing measured it falls back to the
// core's own (warming-paced) clock, which is the same estimate the pacing
// was built from.
func extrapolatedCycles(instructions uint64, st *metrics.SamplingStats, fallback uint64) uint64 {
	if st.MeasuredInstructions == 0 || st.MeasuredCycles == 0 {
		return fallback
	}
	cpi := float64(st.MeasuredCycles) / float64(st.MeasuredInstructions)
	return uint64(math.Round(float64(instructions) * cpi))
}
