package sim

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fault"
)

// TestTwoTierReportGating pins the schema contract: the TwoTier block (and
// with it report schema 4) appears only when the run protects the tier or
// prices memory traffic — every pre-existing run marshals exactly as
// before.
func TestTwoTierReportGating(t *testing.T) {
	m := config.Default()
	r := config.NewRun("gzip", core.BaseP())
	r.Instructions = 50_000

	rep, err := Simulate(m, r)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TwoTier != nil {
		t.Fatal("single-tier run grew a TwoTier block")
	}

	// Memory pricing alone is enough: the block carries the memory-tier
	// accounting even over a plain timing L2.
	priced := r
	priced.Energy = priced.Energy.WithMemoryCosts(18.0, 19.5)
	rep, err = Simulate(m, priced)
	if err != nil {
		t.Fatal(err)
	}
	tt := rep.TwoTier
	if tt == nil {
		t.Fatal("memory-priced run has no TwoTier block")
	}
	if tt.Tier != "off" {
		t.Errorf("tier name = %q, want \"off\" (plain timing L2)", tt.Tier)
	}
	// A short run may never write back a dirty L2 line, so only the read
	// side is guaranteed traffic.
	if tt.MemReads == 0 || tt.EnergyMem == 0 {
		t.Errorf("memory accounting empty: %d reads / %.1f nJ", tt.MemReads, tt.EnergyMem)
	}
	if got := rep.TotalEnergy(); got <= rep.EnergyL1+rep.EnergyL2+rep.EnergyChecks+rep.EnergyRCache-1e-9 {
		t.Error("TotalEnergy does not include the memory tier")
	}
}

// TestTwoTierProtectedRun drives a fully protected tier — replication,
// cross-tier placement, faults injected at both tiers — and checks the
// block's reliability ledger is live and internally consistent.
func TestTwoTierProtectedRun(t *testing.T) {
	m := config.Default()
	sets := m.DL1Sets()
	r := config.NewRun("gzip", core.ICR(core.ParityProt, core.LookupSerial, core.ReplStores))
	r.Instructions = 200_000
	r.Repl = core.ReplConfig{
		Distances:   core.VerticalDistances(sets),
		Replicas:    1,
		Victim:      core.DeadFirst,
		DecayWindow: 1000,
	}
	r.Fault = config.FaultConfig{Model: fault.Random, Prob: 1e-3, Seed: 7}
	r.TwoTier = config.TwoTier{
		Protect: core.ParityProt, Replicate: true, Victim: core.DeadFirst,
		DecayWindow: 1000, CrossTier: true,
		Fault: config.FaultConfig{Model: fault.Random, Prob: 1e-3, Seed: 13},
	}

	rep, err := Simulate(m, r)
	if err != nil {
		t.Fatal(err)
	}
	tt := rep.TwoTier
	if tt == nil {
		t.Fatal("protected run has no TwoTier block")
	}
	if tt.Tier != "ICR-P+x" {
		t.Errorf("tier name = %q, want \"ICR-P+x\"", tt.Tier)
	}
	if tt.ReplAttempts == 0 {
		t.Error("tier never attempted replication")
	}
	if tt.ErrorsInjected == 0 {
		t.Error("no tier errors injected at prob 1e-3")
	}
	recovered := tt.RecoveredByReplica + tt.RecoveredByECC + tt.RecoveredByCross + tt.RecoveredByMem
	if tt.ErrorsDetected != recovered+tt.UnrecoverableDirty {
		t.Errorf("recovery ledger does not balance: detected %d, recovered %d, lost %d",
			tt.ErrorsDetected, recovered, tt.UnrecoverableDirty)
	}
	if tt.CrossAccepted > tt.CrossOffers {
		t.Errorf("cross accepts (%d) exceed offers (%d)", tt.CrossAccepted, tt.CrossOffers)
	}

	// Determinism: the identical run replays to the identical block.
	rep2, err := Simulate(m, r)
	if err != nil {
		t.Fatal(err)
	}
	if *rep2.TwoTier != *tt {
		t.Errorf("two-tier run not deterministic:\n got %+v\nwant %+v", *rep2.TwoTier, *tt)
	}
}

// TestTwoTierValidation: malformed tier configs are rejected before any
// simulation happens.
func TestTwoTierValidation(t *testing.T) {
	m := config.Default()
	r := config.NewRun("gzip", core.BaseP())
	r.TwoTier = config.TwoTier{Replicate: true} // replication needs a detector
	if _, err := Simulate(m, r); err == nil {
		t.Error("replicate-without-protect accepted")
	}
}

// BenchmarkSimulateTwoTierICR prices the protected tier end to end: an
// ICR L1 over an ICR-P tier with cross-tier placement and fault injection
// at both levels — the most loaded configuration the twotier sweep runs.
func BenchmarkSimulateTwoTierICR(b *testing.B) {
	m := config.Default()
	sets := m.DL1Sets()
	r := config.NewRun("gzip", core.ICR(core.ParityProt, core.LookupSerial, core.ReplStores))
	r.Instructions = benchInstrs
	r.Repl = core.ReplConfig{
		Distances:   core.VerticalDistances(sets),
		Replicas:    1,
		Victim:      core.DeadFirst,
		DecayWindow: 1000,
	}
	r.Fault = config.FaultConfig{Model: fault.Random, Prob: 1e-3, Seed: 7}
	r.TwoTier = config.TwoTier{
		Protect: core.ParityProt, Replicate: true, Victim: core.DeadFirst,
		DecayWindow: 1000, CrossTier: true,
		Fault: config.FaultConfig{Model: fault.Random, Prob: 1e-3, Seed: 13},
	}
	if _, err := Simulate(m, r); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(m, r); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchInstrs)*float64(b.N)/b.Elapsed().Seconds(), "instr/s")
}
