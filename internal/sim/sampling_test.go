package sim

import (
	"math"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
)

// samplingBudget keeps the 60-config validation matrix (10 schemes × 2
// benchmarks × 3 seeds, each run exact AND sampled) around a minute of
// CPU time. 2M instructions gives 40 measured windows at the default
// geometry; the committed validation table in EXPERIMENTS.md uses 8M
// (160 windows), where errors are ~2× smaller.
const samplingBudget = 2_000_000

// Error bounds for the matrix below. The simulator is deterministic, so
// these are regression pins with headroom over the observed worst case
// (IPC 7.6%, miss rate 1.6%), not statistical gambles. Fault-event counts
// are small (tens of events at P=1e-4) and their injection times shift
// with the warming clock, so they are bounded by absolute count, not
// ratio.
const (
	maxIPCErr      = 0.10 // per-config worst case
	maxMeanIPCErr  = 0.03 // mean over the matrix (observed 0.017)
	maxMissRateErr = 0.03 // per-config worst case (observed 0.016)
	maxFaultDelta  = 40   // |sampled - exact| detected or recovered events
	minCICoverage  = 0.60 // fraction of configs whose exact IPC lies in the 95% CI
)

func samplingMatrix() []config.Run {
	schemes := core.AllSchemes()
	seeds := []int64{1, 2, 3}
	if raceDetectorEnabled {
		// The detector slows the 120 two-Minstr simulations past any
		// reasonable package timeout and adds nothing to a statistical
		// validation of a deterministic simulator. Keep two corners of
		// the matrix so the sampled path — and its concurrent use of
		// the instance pool via t.Parallel — still runs under -race;
		// the matrix-wide statistics are skipped on the reduced set.
		schemes = []core.Scheme{schemes[0], schemes[len(schemes)-1]}
		seeds = seeds[:1]
	}
	var runs []config.Run
	for _, bench := range []string{"gzip", "vpr"} {
		for _, s := range schemes {
			for _, seed := range seeds {
				r := config.NewRun(bench, s)
				r.Instructions = samplingBudget
				r.Seed = seed
				r.Fault = config.FaultConfig{Model: fault.Random, Prob: 1e-4, Seed: seed}
				runs = append(runs, r)
			}
		}
	}
	return runs
}

func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / want
}

func absDelta(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

// TestSampledMatchesExact validates SMARTS-style sampling against
// full-detail simulation over the full scheme matrix: per-config error
// bounds on IPC, dL1 miss rate, and fault detection/recovery counts, plus
// matrix-wide bounds on the mean IPC error and the confidence-interval
// coverage rate. Every subtest also checks the accounting invariants: all
// counters cumulative over the full budget, instruction modes tiling the
// budget exactly, and the planned number of measured windows.
func TestSampledMatchesExact(t *testing.T) {
	m := config.Default()
	runs := samplingMatrix()

	type outcome struct {
		ipcErr  float64
		covered bool
	}
	results := make([]outcome, len(runs))

	t.Run("matrix", func(t *testing.T) {
		for i, r := range runs {
			i, r := i, r
			t.Run(r.Name(), func(t *testing.T) {
				t.Parallel()
				exact, err := Simulate(m, r)
				if err != nil {
					t.Fatal(err)
				}
				if exact.Sampling != nil {
					t.Fatal("exact run carries a Sampling block")
				}

				rs := r
				rs.Sample = config.SampleConfig{
					Period: config.DefaultSamplePeriod,
					Detail: config.DefaultSampleDetail,
					Warmup: config.DefaultSampleWarmup,
				}
				samp, err := Simulate(m, rs)
				if err != nil {
					t.Fatal(err)
				}
				st := samp.Sampling
				if st == nil {
					t.Fatal("sampled run missing its Sampling block")
				}

				// Accounting invariants.
				if samp.Instructions != r.Instructions || exact.Instructions != r.Instructions {
					t.Fatalf("instruction counts: sampled %d exact %d want %d",
						samp.Instructions, exact.Instructions, r.Instructions)
				}
				wantWindows := int(r.Instructions / config.DefaultSamplePeriod)
				if st.Windows != wantWindows {
					t.Errorf("measured windows = %d, want %d", st.Windows, wantWindows)
				}
				if total := st.WarmedInstructions + st.WarmupDiscarded + st.MeasuredInstructions; total != r.Instructions {
					t.Errorf("modes do not tile the budget: warm %d + warmup %d + measured %d = %d, want %d",
						st.WarmedInstructions, st.WarmupDiscarded, st.MeasuredInstructions, total, r.Instructions)
				}

				// Timing accuracy.
				ipcErr := relErr(samp.IPC(), exact.IPC())
				if ipcErr > maxIPCErr {
					t.Errorf("IPC error %.4f > %.2f (sampled %.4f, exact %.4f)",
						ipcErr, maxIPCErr, samp.IPC(), exact.IPC())
				}
				if mrErr := relErr(samp.DL1MissRate(), exact.DL1MissRate()); mrErr > maxMissRateErr {
					t.Errorf("miss-rate error %.4f > %.2f (sampled %.5f, exact %.5f)",
						mrErr, maxMissRateErr, samp.DL1MissRate(), exact.DL1MissRate())
				}

				// Fault-event accuracy: warming performs every access, so
				// detection/recovery still happens; only the injection clock
				// shifts. Counts are small, so bound the absolute delta.
				if d := absDelta(samp.ErrorsDetected, exact.ErrorsDetected); d > maxFaultDelta {
					t.Errorf("detected-errors delta %d > %d (sampled %d, exact %d)",
						d, maxFaultDelta, samp.ErrorsDetected, exact.ErrorsDetected)
				}
				recovered := func(r *metrics.Report) uint64 {
					return r.RecoveredByECC + r.RecoveredByReplica + r.RecoveredByDuplicate + r.RecoveredByL2
				}
				if d := absDelta(recovered(samp), recovered(exact)); d > maxFaultDelta {
					t.Errorf("recovered-errors delta %d > %d (sampled %d, exact %d)",
						d, maxFaultDelta, recovered(samp), recovered(exact))
				}

				covered := exact.IPC() >= st.IPCMean-st.IPCHalfCI && exact.IPC() <= st.IPCMean+st.IPCHalfCI
				if st.IPCHalfCI <= 0 {
					t.Errorf("IPCHalfCI = %v, want > 0 with %d windows", st.IPCHalfCI, st.Windows)
				}
				results[i] = outcome{ipcErr: ipcErr, covered: covered}
			})
		}
	})

	if raceDetectorEnabled {
		return // matrix-wide statistics need the full matrix
	}

	var sum float64
	cov := 0
	for _, o := range results {
		sum += o.ipcErr
		if o.covered {
			cov++
		}
	}
	if mean := sum / float64(len(results)); mean > maxMeanIPCErr {
		t.Errorf("mean IPC error over the matrix = %.4f, want <= %.2f", mean, maxMeanIPCErr)
	}
	if rate := float64(cov) / float64(len(results)); rate < minCICoverage {
		t.Errorf("CI coverage = %d/%d (%.2f), want >= %.2f — intervals are too narrow for their confidence level",
			cov, len(results), rate, minCICoverage)
	}
}

// FuzzWindowSchedule property-tests the sampling schedule: for any
// geometry, planWindows either declines (nil ⇒ the run falls back to
// exact simulation) or produces a schedule whose segments exactly tile
// the budget with at least one measured window — and it never panics.
func FuzzWindowSchedule(f *testing.F) {
	f.Add(uint64(1_000_000), uint64(50_000), uint64(1_000), uint64(400))
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0))
	f.Add(uint64(100), uint64(50_000), uint64(1_000), uint64(400)) // budget < period
	f.Add(uint64(1_000_000), uint64(1_000), uint64(1_000), uint64(400))
	f.Add(uint64(1_000_000), uint64(1), uint64(0), uint64(0))
	f.Add(^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0))
	f.Add(uint64(1_000_000), uint64(50_000), ^uint64(0), uint64(2)) // warmup+detail overflows
	f.Fuzz(func(t *testing.T, budget, period, detail, warmup uint64) {
		s := config.SampleConfig{Period: period, Detail: detail, Warmup: warmup}
		plan := planWindows(budget, s)
		if plan == nil {
			return // exact fallback: always legal
		}
		var total uint64
		measured := 0
		for _, seg := range plan {
			if seg.n == 0 {
				t.Fatalf("zero-length segment in plan for budget=%d %+v", budget, s)
			}
			next := total + seg.n
			if next < total {
				t.Fatalf("schedule overflows uint64 for budget=%d %+v", budget, s)
			}
			total = next
			if seg.kind == segMeasure {
				measured++
			}
		}
		if total != budget {
			t.Fatalf("segments sum to %d, want budget %d (%+v)", total, budget, s)
		}
		if measured == 0 {
			t.Fatalf("non-nil plan with zero measured windows for budget=%d %+v", budget, s)
		}
	})
}
