//go:build !race

package sim

const raceDetectorEnabled = false
