package sim

import (
	"math"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fault"
)

const testInstrs = 150_000

func TestSimulateBasicSanity(t *testing.T) {
	r := config.NewRun("gzip", core.BaseP())
	r.Instructions = testInstrs
	rep, err := Simulate(config.Default(), r)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Instructions != testInstrs {
		t.Errorf("instructions = %d, want %d", rep.Instructions, testInstrs)
	}
	if rep.Cycles == 0 || rep.IPC() <= 0 || rep.IPC() > 4 {
		t.Errorf("cycles/IPC implausible: %d / %.3f", rep.Cycles, rep.IPC())
	}
	if rep.DL1Reads == 0 || rep.DL1Writes == 0 {
		t.Error("no data-cache traffic")
	}
	if rep.DL1MissRate() <= 0 || rep.DL1MissRate() > 0.5 {
		t.Errorf("miss rate %.4f implausible", rep.DL1MissRate())
	}
	if rep.L2Accesses == 0 || rep.MemAccesses == 0 {
		t.Error("no lower-hierarchy traffic")
	}
	if rep.TotalEnergy() <= 0 {
		t.Error("no energy accounted")
	}
	if rep.Branches == 0 || rep.MispredictRate() <= 0 || rep.MispredictRate() > 0.4 {
		t.Errorf("branch behaviour implausible: %d branches, rate %.3f", rep.Branches, rep.MispredictRate())
	}
}

func TestDeterminism(t *testing.T) {
	r := config.NewRun("vpr", core.ICR(core.ParityProt, core.LookupSerial, core.ReplStores))
	r.Instructions = testInstrs
	a, err := Simulate(config.Default(), r)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(config.Default(), r)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("identical runs diverged:\n%v\n%v", a, b)
	}
}

func TestBaseECCSlowerThanBaseP(t *testing.T) {
	for _, bench := range []string{"gzip", "mesa"} {
		rp := config.NewRun(bench, core.BaseP())
		rp.Instructions = testInstrs
		p, err := Simulate(config.Default(), rp)
		if err != nil {
			t.Fatal(err)
		}
		re := config.NewRun(bench, core.BaseECC(false))
		re.Instructions = testInstrs
		e, err := Simulate(config.Default(), re)
		if err != nil {
			t.Fatal(err)
		}
		if e.Cycles <= p.Cycles {
			t.Errorf("%s: BaseECC (%d) must be slower than BaseP (%d)", bench, e.Cycles, p.Cycles)
		}
		// Speculative ECC closes most of the gap.
		rs := config.NewRun(bench, core.BaseECC(true))
		rs.Instructions = testInstrs
		s, err := Simulate(config.Default(), rs)
		if err != nil {
			t.Fatal(err)
		}
		if s.Cycles >= e.Cycles {
			t.Errorf("%s: speculative BaseECC (%d) should beat plain BaseECC (%d)", bench, s.Cycles, e.Cycles)
		}
	}
}

func TestICROrderingMatchesPaper(t *testing.T) {
	// The §5.2 ordering: BaseP <= ICR-P-PS(S) < ICR-*-PP ~ BaseECC.
	bench := "gzip"
	cycles := map[string]uint64{}
	for _, s := range []core.Scheme{
		core.BaseP(),
		core.BaseECC(false),
		core.ICR(core.ParityProt, core.LookupSerial, core.ReplStores),
		core.ICR(core.ParityProt, core.LookupParallel, core.ReplStores),
	} {
		r := config.NewRun(bench, s)
		r.Instructions = testInstrs
		rep, err := Simulate(config.Default(), r)
		if err != nil {
			t.Fatal(err)
		}
		cycles[s.Name()] = rep.Cycles
	}
	if cycles["ICR-P-PS(S)"] < cycles["BaseP"] {
		t.Errorf("ICR-P-PS(S) cannot beat BaseP without leave-replicas: %v", cycles)
	}
	if float64(cycles["ICR-P-PS(S)"]) > float64(cycles["BaseP"])*1.08 {
		t.Errorf("ICR-P-PS(S) should be within a few %% of BaseP: %v", cycles)
	}
	if float64(cycles["ICR-P-PP(S)"]) < float64(cycles["BaseECC"])*0.9 {
		t.Errorf("ICR-P-PP should be comparable to BaseECC: %v", cycles)
	}
}

func TestLSReplicatesMoreThanS(t *testing.T) {
	mk := func(trigger core.ReplTrigger) (ability, lwr float64, miss float64) {
		r := config.NewRun("vortex", core.ICR(core.ParityProt, core.LookupSerial, trigger))
		r.Instructions = testInstrs
		rep, err := Simulate(config.Default(), r)
		if err != nil {
			t.Fatal(err)
		}
		return rep.ReplAbility(), rep.LoadsWithReplica(), rep.DL1MissRate()
	}
	sAb, sLWR, sMiss := mk(core.ReplStores)
	lsAb, lsLWR, lsMiss := mk(core.ReplLoadsStores)
	if lsAb <= sAb {
		t.Errorf("LS ability (%.3f) should exceed S (%.3f) — Fig 6", lsAb, sAb)
	}
	if lsLWR <= sLWR {
		t.Errorf("LS loads-with-replica (%.3f) should exceed S (%.3f) — Fig 7", lsLWR, sLWR)
	}
	if sLWR < 0.5 {
		t.Errorf("S loads-with-replica %.3f too low (paper: >65%%)", sLWR)
	}
	if lsLWR < 0.85 {
		t.Errorf("LS loads-with-replica %.3f too low (paper: >90%%)", lsLWR)
	}
	if lsMiss <= sMiss {
		t.Errorf("LS misses (%.4f) should exceed S (%.4f) — Fig 8", lsMiss, sMiss)
	}
}

func TestFaultInjectionOutcomes(t *testing.T) {
	mk := func(s core.Scheme) *reportOut {
		r := config.NewRun("vortex", s)
		r.Instructions = testInstrs
		r.Fault = config.FaultConfig{Model: fault.Random, Prob: 0.01, Seed: 7}
		rep, err := Simulate(config.Default(), r)
		if err != nil {
			t.Fatal(err)
		}
		return &reportOut{rep.ErrorsInjected, rep.UnrecoverableLoads, rep.RecoveredByECC, rep.RecoveredByReplica, rep.RecoveredByL2}
	}
	basep := mk(core.BaseP())
	baseecc := mk(core.BaseECC(false))
	icr := mk(core.ICR(core.ParityProt, core.LookupSerial, core.ReplStores))

	if basep.injected == 0 {
		t.Fatal("no errors injected")
	}
	// BaseECC corrects every single-bit error; at this (deliberately
	// extreme) rate some words accumulate two flips between accesses,
	// which SEC-DED can only detect — so a small residue is physical.
	if baseecc.unrecoverable*10 > basep.unrecoverable {
		t.Errorf("BaseECC unrecoverable (%d) should be far below BaseP (%d)",
			baseecc.unrecoverable, basep.unrecoverable)
	}
	if baseecc.ecc == 0 {
		t.Error("BaseECC should have corrected some errors")
	}
	if basep.unrecoverable == 0 {
		t.Error("BaseP at this error rate should lose some dirty data (Fig 14)")
	}
	if icr.unrecoverable >= basep.unrecoverable {
		t.Errorf("ICR (%d unrecoverable) must beat BaseP (%d) — Fig 14",
			icr.unrecoverable, basep.unrecoverable)
	}
	if icr.replica == 0 {
		t.Error("ICR should have recovered some loads from replicas")
	}
}

type reportOut struct {
	injected, unrecoverable, ecc, replica, l2 uint64
}

func TestWriteThroughComparison(t *testing.T) {
	// §5.8: write-through BaseP vs write-back ICR-P-PS(S).
	wt := config.NewRun("vortex", core.BaseP())
	wt.Instructions = testInstrs
	wt.WriteThrough = true
	wtRep, err := Simulate(config.Default(), wt)
	if err != nil {
		t.Fatal(err)
	}
	wb := config.NewRun("vortex", core.ICR(core.ParityProt, core.LookupSerial, core.ReplStores))
	wb.Instructions = testInstrs
	wbRep, err := Simulate(config.Default(), wb)
	if err != nil {
		t.Fatal(err)
	}
	if wtRep.L2Accesses <= wbRep.L2Accesses {
		t.Errorf("write-through L2 traffic (%d) should exceed write-back (%d)",
			wtRep.L2Accesses, wbRep.L2Accesses)
	}
	if wtRep.EnergyL2 <= wbRep.EnergyL2 {
		t.Errorf("write-through L2 energy (%.0f) should exceed write-back (%.0f)",
			wtRep.EnergyL2, wbRep.EnergyL2)
	}
	if wtRep.Cycles <= wbRep.Cycles {
		t.Errorf("write-through (%d cycles) should be slower than ICR write-back (%d) — Fig 16a",
			wtRep.Cycles, wbRep.Cycles)
	}
}

func TestLeaveReplicasImprovesOnDrop(t *testing.T) {
	mk := func(leave bool) (uint64, uint64) {
		r := config.NewRun("vpr", core.ICR(core.ParityProt, core.LookupSerial, core.ReplStores))
		r.Instructions = testInstrs
		r.Repl.LeaveReplicas = leave
		rep, err := Simulate(config.Default(), r)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Cycles, rep.ReplicaServedMisses
	}
	dropCycles, dropServed := mk(false)
	leaveCycles, leaveServed := mk(true)
	if dropServed != 0 {
		t.Errorf("drop mode must not serve misses from replicas, got %d", dropServed)
	}
	if leaveServed == 0 {
		t.Error("leave mode should serve some misses from replicas (§5.6)")
	}
	if leaveCycles > dropCycles {
		t.Errorf("leave-replicas (%d cycles) should not be slower than drop (%d)", leaveCycles, dropCycles)
	}
}

func TestSimulateAllCoversBenchmarks(t *testing.T) {
	reports, err := SimulateAll(config.Default(), core.BaseP(), func(r *config.Run) {
		r.Instructions = 40_000
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 8 {
		t.Fatalf("got %d reports, want 8", len(reports))
	}
	seen := map[string]bool{}
	for _, rep := range reports {
		seen[rep.Benchmark] = true
		if rep.Instructions != 40_000 {
			t.Errorf("%s: %d instructions", rep.Benchmark, rep.Instructions)
		}
	}
	if len(seen) != 8 {
		t.Errorf("duplicate benchmarks in reports: %v", seen)
	}
}

func TestScrubberIntegration(t *testing.T) {
	r := config.NewRun("vortex", core.BaseP())
	r.Instructions = testInstrs
	r.Fault = config.FaultConfig{Model: fault.Random, Prob: 1e-3, Seed: 7}
	r.ScrubInterval = 500
	r.ScrubLines = 4
	rep, err := Simulate(config.Default(), r)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ScrubChecks == 0 {
		t.Fatal("scrubber never ran")
	}
	if rep.ScrubErrors == 0 {
		t.Error("scrubber found no errors at this injection rate")
	}
	if rep.ScrubRepaired+rep.ScrubLost != rep.ScrubErrors {
		t.Errorf("scrub accounting: %d repaired + %d lost != %d errors",
			rep.ScrubRepaired, rep.ScrubLost, rep.ScrubErrors)
	}
	// Scrubbing should not increase demand-load loss.
	r2 := r
	r2.ScrubInterval = 0
	rep2, err := Simulate(config.Default(), r2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UnrecoverableLoads > rep2.UnrecoverableLoads {
		t.Errorf("scrubbing increased demand loss: %d vs %d",
			rep.UnrecoverableLoads, rep2.UnrecoverableLoads)
	}
}

func TestDupCacheIntegration(t *testing.T) {
	r := config.NewRun("vortex", core.BaseP())
	r.Instructions = testInstrs
	r.DupCacheKB = 2
	r.Fault = config.FaultConfig{Model: fault.Random, Prob: 1e-3, Seed: 7}
	rep, err := Simulate(config.Default(), r)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReadHitsWithDuplicate == 0 {
		t.Error("duplication cache covered no loads")
	}
	if rep.EnergyRCache == 0 {
		t.Error("duplication-cache energy not priced")
	}
	// It must reduce loss vs bare BaseP.
	r2 := r
	r2.DupCacheKB = 0
	rep2, err := Simulate(config.Default(), r2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.UnrecoverableLoads >= rep2.UnrecoverableLoads {
		t.Errorf("r-cache should cut loss: %d vs %d",
			rep.UnrecoverableLoads, rep2.UnrecoverableLoads)
	}
	if rep.RecoveredByDuplicate == 0 {
		t.Error("no duplicate recoveries recorded")
	}
}

func TestVulnerabilityIntegration(t *testing.T) {
	m := config.Default()
	lines := m.DL1Sets() * m.DL1Assoc
	mk := func(s core.Scheme) float64 {
		r := config.NewRun("vortex", s)
		r.Instructions = testInstrs
		if s.HasReplication() {
			r.Repl.DecayWindow = 1000
			r.Repl.Victim = core.DeadFirst
		}
		rep, err := Simulate(config.Default(), r)
		if err != nil {
			t.Fatal(err)
		}
		return rep.VulnerabilityPerLine(lines)
	}
	basep := mk(core.BaseP())
	icr := mk(core.ICR(core.ParityProt, core.LookupSerial, core.ReplStores))
	baseecc := mk(core.BaseECC(false))
	if baseecc != 0 {
		t.Errorf("BaseECC vulnerability = %g, want 0", baseecc)
	}
	if basep <= 0 || basep > 1 {
		t.Errorf("BaseP vulnerability %g out of range", basep)
	}
	if icr >= basep/2 {
		t.Errorf("ICR vulnerability (%g) should be far below BaseP (%g)", icr, basep)
	}
}

func TestSimulateRejectsUnknownBenchmark(t *testing.T) {
	r := config.NewRun("swim", core.BaseP())
	if _, err := Simulate(config.Default(), r); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("GeoMean(2,8) = %g, want 4", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("GeoMean(nil) = %g, want 0", g)
	}
	if g := GeoMean([]float64{1, 0}); g != 0 {
		t.Errorf("GeoMean with nonpositive = %g, want 0", g)
	}
}
