package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/adapt"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/rcache"
	"repro/internal/tier"
	"repro/internal/workload"
)

// instance is one assembled simulated machine: the full memory hierarchy,
// energy meter, and core, reusable across runs of the same shape. The
// workload generator and fault injector are per-run (they are cheap and
// seed-dependent); everything here is the expensive arena — cache line
// arrays with their data/check-bit payloads, the RUU, predictor tables —
// that used to be reallocated for every task the runner executed.
//
//icrvet:pooled the shape-keyed arena handed out by instancePool
type instance struct {
	// shape is the pool key ("" = not poolable, e.g. a run carrying a
	// HintPolicy).
	shape string //icrvet:persistent the pool key itself: construction-determined, identical for every run sharing the instance

	mem   *cache.Memory
	l2    *cache.Cache    // plain timing L2; nil when the run protects the tier
	tier  *tier.Protected // protected second tier; nil for single-tier shapes
	il1   *cache.Cache
	meter *energy.Meter
	dups  *rcache.Cache
	wbuf  *cache.WriteBuffer
	dl1   *core.Cache
	ctrl  *adapt.Controller // ICR-ADAPT runtime controller; nil for static shapes
	core  *cpu.Core         //icrvet:persistent reset separately in simulate: core.Reset needs the per-run cpu.Config and generator
}

// shapeOf fingerprints everything that determines an instance's
// construction: the memory-hierarchy geometry and the dl1 configuration
// knobs (scheme, replication, write policy, duplicate cache, prefetching).
// Deliberately absent — absorbed by per-run resets — are the benchmark and
// seed (fresh generator each run), the instruction budget, sampling and
// scrubbing parameters, fault injection, energy parameters
// (meter.Reset takes new ones), and the whole cpu.Config (core.Reset
// takes it wholesale). ok is false when the run cannot share an instance:
// a HintPolicy is baked into the dl1 at construction and is an open
// interface, so hinted runs always build fresh.
func shapeOf(m config.Machine, r config.Run) (string, bool) {
	if r.Hints != nil {
		return "", false
	}
	// Scheme, Repl, Adapt, and TwoTier are fingerprinted wholesale (%+v
	// covers every field, including the slice of distances) so a new knob
	// on any of them can never silently collide two different
	// constructions. The tier's fault config is zeroed first: the tier
	// injector is per-run, exactly like the L1's, so differently-seeded
	// injection runs still share an arena.
	tt := r.TwoTier
	tt.Fault = config.FaultConfig{}
	return fmt.Sprintf("%d/%d/%d/%d|%d/%d/%d/%d|%d/%d/%d/%d|%d|%+v|%+v|%t/%d|%d|%t|%+v|%+v",
		m.IL1Size, m.IL1Assoc, m.IL1Block, m.IL1Latency,
		m.DL1Size, m.DL1Assoc, m.DL1Block, m.DL1Latency,
		m.L2Size, m.L2Assoc, m.L2Block, m.L2Latency,
		m.MemLatency,
		r.Scheme, r.Repl,
		r.WriteThrough, r.WriteBufferEntries,
		r.DupCacheKB,
		r.Prefetch,
		r.Adapt,
		tt,
	), true
}

// newInstance assembles a machine for the given shape-determining inputs,
// mirroring what Simulate historically built inline.
func newInstance(m config.Machine, r config.Run) *instance {
	shape, ok := shapeOf(m, r)
	if !ok {
		shape = ""
	}

	// Memory hierarchy, bottom up. The L2 is unified: both L1s miss into
	// it, as in Table 1. When the run protects the second tier, a
	// tier.Protected replaces the plain timing L2 at the same position in
	// the hierarchy — same geometry, same hit latency, same single-banked
	// port — and carries its own parity/ECC, decay replication, and
	// cross-tier hooks.
	mem := cache.NewMemory(m.MemLatency, m.DL1Block)
	meter := energy.NewMeter(r.Energy)
	var l2 *cache.Cache
	var prot *tier.Protected
	var l2level cache.Level
	if r.TwoTier.Enabled() {
		prot = tier.New(tier.Config{
			Size: m.L2Size, Assoc: m.L2Assoc, BlockSize: m.L2Block,
			HitLatency:   m.L2Latency,
			ExtraLatency: r.TwoTier.ExtraLatency,
			// Single-banked like the plain L2 (§5.8).
			PortOccupancy: 4,
			Protect:       r.TwoTier.Protect,
			Replicate:     r.TwoTier.Replicate,
			Victim:        r.TwoTier.Victim,
			DecayWindow:   r.TwoTier.DecayWindow,
			Next:          mem,
			Mem:           mem,
			Meter:         meter,
		})
		l2level = prot
	} else {
		l2 = cache.New(cache.Config{
			Name: "l2", Size: m.L2Size, Assoc: m.L2Assoc, BlockSize: m.L2Block,
			HitLatency: m.L2Latency, Policy: cache.WriteBack, Next: mem,
			// The L2 is single-banked: each access (demand fill, write-back,
			// or write-buffer drain) occupies it for a few cycles, so heavy
			// write-through traffic delays demand misses (§5.8).
			PortOccupancy: 4,
		})
		l2level = l2
	}
	il1 := cache.New(cache.Config{
		Name: "il1", Size: m.IL1Size, Assoc: m.IL1Assoc, BlockSize: m.IL1Block,
		HitLatency: m.IL1Latency, Policy: cache.WriteBack, Next: l2level,
	})

	var dups *rcache.Cache
	if r.DupCacheKB > 0 {
		dups = rcache.New(r.DupCacheKB<<10, 4, m.DL1Block)
	}
	dl1cfg := core.Config{
		Size: m.DL1Size, Assoc: m.DL1Assoc, BlockSize: m.DL1Block,
		HitLatency: m.DL1Latency,
		Scheme:     r.Scheme,
		Repl:       r.Repl,
		Next:       l2level,
		Mem:        mem,
		Meter:      meter,
		Hints:      r.Hints,
	}
	if prot != nil && r.TwoTier.CrossTier {
		dl1cfg.CrossTier = prot
	}
	dl1cfg.PrefetchIntoDead = r.Prefetch
	if dups != nil {
		dl1cfg.Duplicates = dups
	}
	var wbuf *cache.WriteBuffer
	if r.WriteThrough {
		dl1cfg.WritePolicy = cache.WriteThrough
		entries := r.WriteBufferEntries
		if entries <= 0 {
			entries = 8
		}
		wbuf = cache.NewWriteBuffer(entries, m.L2Latency, l2level)
		dl1cfg.WriteBuf = wbuf
	}
	dl1 := core.New(dl1cfg)
	if prot != nil && r.TwoTier.CrossTier {
		// Both directions: the dl1 spills replicas into the tier (wired
		// above) and the tier parks shortfall replicas in the dl1.
		prot.SetCross(dl1)
	}

	var ctrl *adapt.Controller
	if r.Adapt.Enabled() {
		ctrl = adapt.NewController(r.Adapt)
	}

	return &instance{
		shape: shape,
		mem:   mem,
		l2:    l2,
		tier:  prot,
		il1:   il1,
		meter: meter,
		dups:  dups,
		wbuf:  wbuf,
		dl1:   dl1,
		ctrl:  ctrl,
		core:  cpu.New(m.CPU, nil, il1, dl1),
	}
}

// reset restores every pooled component to its post-construction state.
// It runs on fresh instances too (where it is a cheap no-op beyond array
// clears), so the pooled and unpooled paths execute identical code.
func (in *instance) reset(r config.Run) {
	in.mem.Reset()
	if in.tier != nil {
		in.tier.Reset()
	} else {
		in.l2.Reset()
	}
	in.il1.Reset()
	in.dl1.Reset()
	in.meter.Reset(r.Energy)
	if in.dups != nil {
		in.dups.Reset()
	}
	if in.wbuf != nil {
		in.wbuf.Reset()
	}
	if in.ctrl != nil {
		in.ctrl.Reset()
	}
}

// simulate executes one run on the instance. r must match the instance's
// shape; the caller has already normalized the budget and energy params.
func (in *instance) simulate(ctx context.Context, m config.Machine, r config.Run, gen *workload.Generator) (*metrics.Report, error) {
	in.reset(r)

	cpucfg := m.CPU
	var hooks []func(uint64)
	var injector *fault.Injector
	if r.Fault.Prob > 0 {
		wordsPerRow := m.DL1Assoc * m.DL1Block / 8
		injector = fault.NewInjector(r.Fault.Model, r.Fault.Prob, wordsPerRow, r.Fault.Seed)
		next := injector.NextAfter(0)
		dl1 := in.dl1
		//icrvet:hot installed behind Config.EachCycle, which the call graph cannot follow
		hooks = append(hooks, func(now uint64) {
			for now >= next {
				dl1.Inject(injector)
				next = injector.NextAfter(now)
			}
		})
	}
	var tierInjector *fault.Injector
	if in.tier != nil && r.TwoTier.Fault.Prob > 0 {
		f := r.TwoTier.Fault
		wordsPerRow := m.L2Assoc * m.L2Block / 8
		tierInjector = fault.NewInjector(f.Model, f.Prob, wordsPerRow, f.Seed)
		tnext := tierInjector.NextAfter(0)
		prot := in.tier
		inj := tierInjector
		//icrvet:hot installed behind Config.EachCycle, which the call graph cannot follow
		hooks = append(hooks, func(now uint64) {
			for now >= tnext {
				prot.Inject(inj)
				tnext = inj.NextAfter(now)
			}
		})
	}
	if r.ScrubInterval > 0 {
		lines := r.ScrubLines
		if lines <= 0 {
			lines = 1
		}
		tick := newScrubTicker(r.ScrubInterval)
		dl1 := in.dl1
		//icrvet:hot installed behind Config.EachCycle, which the call graph cannot follow
		hooks = append(hooks, func(now uint64) {
			if tick.due(now) {
				dl1.Scrub(now, lines)
			}
		})
	}
	if in.ctrl != nil {
		in.ctrl.Attach(in.dl1)
		epoch := newScrubTicker(in.ctrl.EpochCycles())
		ctrl := in.ctrl
		//icrvet:hot installed behind Config.EachCycle, which the call graph cannot follow
		hooks = append(hooks, func(now uint64) {
			if epoch.due(now) {
				ctrl.Epoch(now)
			}
		})
	}
	switch len(hooks) {
	case 0:
	case 1:
		cpucfg.EachCycle = hooks[0]
	default:
		//icrvet:hot the fan-out hook installed behind Config.EachCycle
		cpucfg.EachCycle = func(now uint64) {
			for _, h := range hooks {
				h(now)
			}
		}
	}

	if ctx.Done() != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var stop atomic.Bool
		cancelWatch := context.AfterFunc(ctx, func() { stop.Store(true) })
		defer cancelWatch()
		cpucfg.Halt = stop.Load
	}

	c := in.core
	c.Reset(cpucfg, gen)
	var cstats cpu.Stats
	var sampling *metrics.SamplingStats
	if plan := planWindows(r.Instructions, r.Sample); plan != nil {
		cstats, sampling = runSampled(c, in.dl1, plan, r.Sample)
	} else {
		cstats = c.Run(r.Instructions)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cstats.Instructions < r.Instructions {
		return nil, fmt.Errorf("sim: stream ended after %d instructions", cstats.Instructions)
	}
	in.dl1.FinishVulnerability(cstats.Cycles)

	lsStats := func() cache.Stats {
		if in.tier != nil {
			// The tier's demand-stream counters have cache.Stats shape, so
			// L2 accounting and energy pricing are tier-agnostic.
			return in.tier.CacheStats()
		}
		return in.l2.Stats()
	}()
	rep := assemble(r, cstats, in.dl1.Stats(), in.il1.Stats(), lsStats, in.mem, in.meter, injector)
	if tt := twoTierBlock(r, in, tierInjector); tt != nil {
		rep.TwoTier = tt
	}
	if sampling != nil {
		// Timing is the one estimated quantity: every event counter in the
		// report is cumulative over the full stream (warming performs all
		// accesses), but Cycles is extrapolated from the measured windows.
		rep.Cycles = extrapolatedCycles(cstats.Instructions, sampling, cstats.Cycles)
		rep.Sampling = sampling
	}
	scrub := in.dl1.ScrubStats()
	rep.ScrubChecks = scrub.Checks
	rep.ScrubErrors = scrub.Errors
	rep.ScrubRepaired = scrub.Repaired
	rep.ScrubLost = scrub.Lost
	if in.ctrl != nil {
		// Adaptive runs report under the ICR-ADAPT-* family: the static
		// scheme name would misattribute results whose knobs moved mid-run.
		rep.Scheme = r.Adapt.SchemeName()
		rep.Adaptive = in.ctrl.Stats()
	}
	return rep, nil
}

// twoTierBlock builds the optional Report.TwoTier block. It is non-nil —
// and the report therefore marshals under schema version 4 — only when
// the run actually engages the two-tier machinery: a protected tier, or
// non-zero memory-tier energy pricing. Plain single-tier runs return nil
// so their wire encoding stays byte-identical to older writers (the
// equivalence goldens pin this).
func twoTierBlock(r config.Run, in *instance, tierInjector *fault.Injector) *metrics.TwoTierStats {
	if !r.TwoTier.Enabled() && r.Energy.MemRead == 0 && r.Energy.MemWrite == 0 {
		return nil
	}
	tt := &metrics.TwoTierStats{
		Tier:         r.TwoTier.Name(),
		ExtraLatency: r.TwoTier.ExtraLatency,
		MemReads:     in.mem.Reads() + in.mem.Fetches(),
		MemWrites:    in.mem.Writes(),
		EnergyMem:    in.meter.MemEnergy(),
	}
	l1cross := in.dl1.CrossTierStats()
	tt.L1CrossRepaired = l1cross.Repaired
	if in.tier != nil {
		ts := in.tier.TierStats()
		tt.ReplAttempts = ts.ReplAttempts
		tt.ReplSuccesses = ts.ReplSuccesses
		tt.ReplicaEvictions = ts.ReplicaEvictions
		tt.DeadEvictions = ts.DeadEvictions
		tt.ErrorsDetected = ts.ErrorsDetected
		tt.RecoveredByReplica = ts.RecoveredByReplica
		tt.RecoveredByECC = ts.RecoveredByECC
		tt.RecoveredByCross = ts.RecoveredByCross
		tt.RecoveredByMem = ts.RecoveredByMem
		tt.UnrecoverableDirty = ts.UnrecoverableDirty
		tt.SilentWritebacks = ts.SilentWritebacks
		// Each direction's client-side view: the dl1 offering into the
		// tier, and the tier parking shortfall replicas in the dl1.
		tt.CrossOffers = l1cross.Offers + ts.Cross.Offers
		tt.CrossAccepted = l1cross.Accepted + ts.Cross.Accepted
		tt.CrossRepairs = l1cross.Repairs + ts.Cross.Repairs
		tt.CrossRepaired = l1cross.Repaired + ts.Cross.Repaired
	}
	if tierInjector != nil {
		tt.ErrorsInjected = tierInjector.Injected()
	}
	return tt
}

// instancePool keeps idle instances for reuse, newest first per shape.
// The bound caps idle memory (each instance holds the full cache arena,
// on the order of a megabyte); a sweep running W-wide keeps at most W
// instances in flight plus max idle here.
type instancePool struct {
	mu   sync.Mutex
	idle []*instance
	max  int
}

var defaultPool = &instancePool{max: runtime.GOMAXPROCS(0) + 2}

// get returns an idle instance of the given shape, or nil.
func (p *instancePool) get(shape string) *instance {
	if shape == "" {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := len(p.idle) - 1; i >= 0; i-- {
		if p.idle[i].shape == shape {
			inst := p.idle[i]
			p.idle = append(p.idle[:i], p.idle[i+1:]...)
			return inst
		}
	}
	return nil
}

// put parks an instance for reuse, evicting the oldest idle one past the
// cap. Non-poolable instances are dropped.
func (p *instancePool) put(inst *instance) {
	if inst == nil || inst.shape == "" {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.idle) >= p.max {
		copy(p.idle, p.idle[1:])
		p.idle = p.idle[:len(p.idle)-1]
	}
	p.idle = append(p.idle, inst)
}
