package experiments

import (
	"context"

	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/workload"
)

// fig9 — normalized execution cycles for all ten schemes under aggressive
// (window 0, dead-only) dead-block prediction. Every bar is normalized to
// BaseP per benchmark; a geometric-mean column is appended.
func fig9(ctx context.Context, o Options) (*Result, error) {
	return normalizedCycles(ctx, o, "fig9",
		"Normalized execution cycles, all schemes (aggressive dead-block prediction)",
		"paper: BaseECC ~+30%, ICR-P-PS(S) +3.6%, ICR-ECC-PS(S) +21%, ICR-*-PP ~ BaseECC",
		aggressiveRepl, false)
}

// fig12 — normalized execution cycles with the relaxed (1000-cycle window,
// dead-first) prediction.
func fig12(ctx context.Context, o Options) (*Result, error) {
	return normalizedCycles(ctx, o, "fig12",
		"Normalized execution cycles, 1000-cycle decay window (dead-first)",
		"paper: BaseECC +30.9%, ICR-P-PS(S) +2.4%, ICR-ECC-PS(S) +10.2%",
		relaxedRepl, false)
}

// fig15 — normalized execution cycles when replicas are left in the cache
// on primary eviction and may serve later misses (§5.6 performance mode).
func fig15(ctx context.Context, o Options) (*Result, error) {
	return normalizedCycles(ctx, o, "fig15",
		"Normalized execution cycles with replicas left on primary eviction",
		"paper: ICR-*-PS(S) match or beat BaseP (up to 24% better on mcf/vpr)",
		relaxedRepl, true)
}

// normalizedCycles is the shared driver for Figures 9, 12, and 15.
func normalizedCycles(ctx context.Context, o Options, id, title, notes string, repl func(int) core.ReplConfig, leave bool) (*Result, error) {
	m := o.machine()
	sets := m.DL1Sets()
	schemes := []core.Scheme{core.BaseECC(false)}
	if id == "fig15" {
		// §5.6 focuses on the two recommended schemes vs the bases.
		schemes = append(schemes,
			core.ICR(core.ParityProt, core.LookupSerial, core.ReplStores),
			core.ICR(core.ECCProt, core.LookupSerial, core.ReplStores),
		)
	} else {
		schemes = append(schemes, core.AllSchemes()[2:]...)
	}
	baseP := submitAll(ctx, o, core.BaseP(), nil)
	pendings := make([][]*runner.Pending, len(schemes))
	for i, s := range schemes {
		s := s
		pendings[i] = submitAll(ctx, o, s, func(r *config.Run) {
			if s.HasReplication() {
				r.Repl = repl(sets)
				r.Repl.LeaveReplicas = leave
			}
		})
	}
	base, err := collect(baseP)
	if err != nil {
		return nil, err
	}
	result := &Result{
		ID:     id,
		Title:  title,
		XLabel: "benchmark",
		XTicks: benchTicks(),
		Notes:  notes,
		Series: []Series{{Label: "BaseP", Values: withGeoMean(ratios(base, base, cycles))}},
	}
	result.Reports = append(result.Reports, base...)
	for i, s := range schemes {
		reports, err := collect(pendings[i])
		if err != nil {
			return nil, err
		}
		result.Series = append(result.Series, Series{
			Label:  s.Name(),
			Values: withGeoMean(ratios(reports, base, cycles)),
		})
		result.Reports = append(result.Reports, reports...)
	}
	return result, nil
}

// decayWindows is the §5.3 sweep.
var decayWindows = []uint64{0, 500, 1000, 5000, 10000}

// fig10 — replication ability and loads-with-replica vs decay window for
// vpr, ICR-P-PS(S).
func fig10(ctx context.Context, o Options) (*Result, error) {
	m := o.machine()
	sets := m.DL1Sets()
	pendings := make([]*runner.Pending, 0, len(decayWindows))
	ticks := make([]string, 0, len(decayWindows))
	for _, w := range decayWindows {
		w := w
		pendings = append(pendings, submitOne(ctx, o, "vpr", icrPS(core.ReplStores), func(r *config.Run) {
			r.Repl = aggressiveRepl(sets)
			r.Repl.DecayWindow = w
		}))
		ticks = append(ticks, fmt.Sprintf("%d", w))
	}
	all, err := collect(pendings)
	if err != nil {
		return nil, err
	}
	var ability, lwr []float64
	for _, rep := range all {
		ability = append(ability, rep.ReplAbility())
		lwr = append(lwr, rep.LoadsWithReplica())
	}
	return &Result{
		ID:     "fig10",
		Sweep:  true,
		Title:  "Replication ability and loads-with-replica vs decay window (vpr, ICR-P-PS(S))",
		XLabel: "window (cycles)",
		XTicks: ticks,
		Series: []Series{
			{Label: "replication ability", Values: ability},
			{Label: "loads with replica", Values: lwr},
		},
		Notes:   "paper: ability falls with window size, loads-with-replica barely moves",
		Reports: all,
	}, nil
}

// fig11 — normalized execution cycles vs decay window for vpr,
// ICR-P-PS(S) and ICR-ECC-PS(S), normalized to BaseP.
func fig11(ctx context.Context, o Options) (*Result, error) {
	m := o.machine()
	sets := m.DL1Sets()
	basePending := submitOne(ctx, o, "vpr", core.BaseP(), nil)
	schemes := []core.Scheme{
		core.ICR(core.ParityProt, core.LookupSerial, core.ReplStores),
		core.ICR(core.ECCProt, core.LookupSerial, core.ReplStores),
	}
	pendings := make([][]*runner.Pending, len(schemes))
	for i, s := range schemes {
		for _, w := range decayWindows {
			w := w
			pendings[i] = append(pendings[i], submitOne(ctx, o, "vpr", s, func(r *config.Run) {
				r.Repl = aggressiveRepl(sets)
				r.Repl.DecayWindow = w
			}))
		}
	}
	base, err := basePending.Wait()
	if err != nil {
		return nil, err
	}
	result := &Result{
		ID:      "fig11",
		Sweep:   true,
		Title:   "Normalized execution cycles vs decay window (vpr)",
		XLabel:  "window (cycles)",
		Notes:   "paper: ICR-P-PS(S) <4% over BaseP at window 1000, ~1.7% at 10000",
		Reports: []*metrics.Report{base},
	}
	for _, w := range decayWindows {
		result.XTicks = append(result.XTicks, fmt.Sprintf("%d", w))
	}
	for i, s := range schemes {
		reports, err := collect(pendings[i])
		if err != nil {
			return nil, err
		}
		var vals []float64
		for _, rep := range reports {
			vals = append(vals, float64(rep.Cycles)/float64(base.Cycles))
			result.Reports = append(result.Reports, rep)
		}
		result.Series = append(result.Series, Series{Label: s.Name(), Values: vals})
	}
	return result, nil
}

// fig13 — replication ability and loads-with-replica at decay windows 1000
// and 0 across all benchmarks, ICR-P-PS(S).
func fig13(ctx context.Context, o Options) (*Result, error) {
	m := o.machine()
	sets := m.DL1Sets()
	mkRepl := func(w uint64) func(*config.Run) {
		return func(r *config.Run) {
			r.Repl = relaxedRepl(sets)
			r.Repl.DecayWindow = w
		}
	}
	w0P := submitAll(ctx, o, icrPS(core.ReplStores), mkRepl(0))
	w1000P := submitAll(ctx, o, icrPS(core.ReplStores), mkRepl(1000))
	w0, err := collect(w0P)
	if err != nil {
		return nil, err
	}
	w1000, err := collect(w1000P)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "fig13",
		Title:  "Replication ability / loads-with-replica at decay windows 0 and 1000",
		XLabel: "benchmark",
		XTicks: workload.Names(),
		Series: []Series{
			{Label: "ability w=0", Values: values(w0, func(r *metrics.Report) float64 { return r.ReplAbility() })},
			{Label: "ability w=1000", Values: values(w1000, func(r *metrics.Report) float64 { return r.ReplAbility() })},
			{Label: "loads w/repl w=0", Values: values(w0, func(r *metrics.Report) float64 { return r.LoadsWithReplica() })},
			{Label: "loads w/repl w=1000", Values: values(w1000, func(r *metrics.Report) float64 { return r.LoadsWithReplica() })},
		},
		Notes:   "paper: loads-with-replica is insensitive to the window",
		Reports: append(w0, w1000...),
	}, nil
}
