package experiments

import (
	"context"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Memory-tier per-access energies for the two-tier sweep (nJ, DRAM
// interface class for the paper's 0.18um generation). The defaults are
// zero — the paper's energy study stops at the L2 — so only this driver
// prices the traffic that escapes the protected hierarchy.
const (
	twoTierMemRead  = 18.0
	twoTierMemWrite = 19.5
)

// twoTierPoints returns the swept tier configurations, least to most
// protected: an unprotected timing L2, parity detection, SEC-DED ECC,
// in-tier ICR replication over parity, and ICR with cross-tier replica
// placement against the L1.
func twoTierPoints() []config.TwoTier {
	fc := config.FaultConfig{Model: fault.Random, Prob: 1e-3, Seed: 11}
	return []config.TwoTier{
		{},
		{Protect: core.ParityProt, Fault: fc},
		{Protect: core.ECCProt, Fault: fc},
		{Protect: core.ParityProt, Replicate: true, Victim: core.DeadFirst, DecayWindow: 1000, Fault: fc},
		{Protect: core.ParityProt, Replicate: true, Victim: core.DeadFirst, DecayWindow: 1000, CrossTier: true, Fault: fc},
	}
}

// twoTierScore folds the three axes the sweep trades into one scalar,
// lower is better: the L1 vulnerability and cycle/energy overheads of
// adaptiveScore, plus the tier hazard — the fraction of detected tier
// errors the configuration failed to recover (unrecoverable-dirty loads
// plus silently corrupt write-backs over injected errors). An unprotected
// tier detects nothing at all, so its hazard is 1 by definition.
func twoTierScore(r *metrics.Report, base *metrics.Report, lines int) float64 {
	score := adaptiveScore(r, base, lines)
	hazard := 1.0
	if tt := r.TwoTier; tt != nil && tt.Tier != "off" {
		hazard = 0
		if tt.ErrorsInjected > 0 {
			hazard = float64(tt.UnrecoverableDirty+tt.SilentWritebacks) / float64(tt.ErrorsInjected)
		}
	}
	return score + hazard
}

// twoTierShootout — driver "twotier": per-tier protection choices (none,
// parity, ECC, in-tier ICR, ICR with cross-tier placement) against three
// L1 schemes, with transient errors injected at both tiers and the
// memory-tier traffic priced. Each cell is the geometric mean across the
// benchmarks of the combined reliability + performance + energy score,
// anchored to the (BaseP, unprotected-tier) run of the same workload.
func twoTierShootout(ctx context.Context, o Options) (*Result, error) {
	m := o.machine()
	sets := m.DL1Sets()
	lines := sets * m.DL1Assoc
	benches := workload.Names()
	points := twoTierPoints()
	l1Fault := config.FaultConfig{Model: fault.Random, Prob: 1e-3, Seed: 7}

	l1Schemes := []core.Scheme{core.BaseP(), core.BaseECC(false), icrPS(core.ReplStores)}

	ticks := make([]string, len(points))
	for i, tt := range points {
		ticks[i] = tt.Name()
	}

	submitPoint := func(scheme core.Scheme, tt config.TwoTier) []*runner.Pending {
		ps := make([]*runner.Pending, len(benches))
		for i, bench := range benches {
			ps[i] = submitOne(ctx, o, bench, scheme, func(r *config.Run) {
				if scheme.HasReplication() {
					r.Repl = relaxedRepl(sets)
				}
				r.Fault = l1Fault
				r.TwoTier = tt
				r.Energy = r.Energy.WithMemoryCosts(twoTierMemRead, twoTierMemWrite)
			})
		}
		return ps
	}

	// Submit everything before collecting anything, so the whole grid
	// shares the worker pool. entries[scheme][point] = per-benchmark runs.
	entries := make([][][]*runner.Pending, len(l1Schemes))
	for si, scheme := range l1Schemes {
		entries[si] = make([][]*runner.Pending, len(points))
		for pi, tt := range points {
			entries[si][pi] = submitPoint(scheme, tt)
		}
	}

	// The anchor: BaseP over the unprotected tier, same workload and
	// injection, memory traffic priced the same way.
	base, err := collect(entries[0][0])
	if err != nil {
		return nil, err
	}

	result := &Result{
		ID:     "twotier",
		Title:  "Per-tier protection: L1 scheme x L2/remote tier scheme",
		XLabel: "tier protection",
		XTicks: ticks,
		Notes: "geomean across benchmarks of (vulnerable line-cycle fraction + cycle overhead + " +
			"energy overhead + unrecovered tier-error fraction) vs BaseP over an unprotected tier; lower is better",
	}
	for si, scheme := range l1Schemes {
		vals := make([]float64, len(points))
		for pi := range points {
			reports := base
			if si != 0 || pi != 0 {
				if reports, err = collect(entries[si][pi]); err != nil {
					return nil, err
				}
			}
			scores := make([]float64, len(reports))
			for j, r := range reports {
				scores[j] = twoTierScore(r, base[j], lines)
			}
			vals[pi] = sim.GeoMean(scores)
			result.Reports = append(result.Reports, reports...)
		}
		result.Series = append(result.Series, Series{Label: scheme.Name(), Values: vals})
	}
	return result, nil
}
