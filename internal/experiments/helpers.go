package experiments

import (
	"context"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/workload"
)

// icrPS returns the workhorse ICR-P-PS scheme with the given trigger.
func icrPS(trigger core.ReplTrigger) core.Scheme {
	return core.ICR(core.ParityProt, core.LookupSerial, trigger)
}

// aggressiveRepl is the §5.1-5.2 replication setup: decay window 0 (a block
// is dead as soon as its access completes) with the dead-only victim
// policy and a single vertical (distance N/2) attempt.
func aggressiveRepl(sets int) core.ReplConfig {
	return core.ReplConfig{
		Distances:   core.VerticalDistances(sets),
		Replicas:    1,
		Victim:      core.DeadOnly,
		DecayWindow: 0,
	}
}

// relaxedRepl is the §5.4+ setup: 1000-cycle decay window with the
// dead-first victim policy.
func relaxedRepl(sets int) core.ReplConfig {
	return core.ReplConfig{
		Distances:   core.VerticalDistances(sets),
		Replicas:    1,
		Victim:      core.DeadFirst,
		DecayWindow: 1000,
	}
}

// submitOne enqueues one benchmark × configuration on the experiment's
// runner and returns its pending handle. The run is fully materialized
// (mutate applied) before submission, so driver closures never execute on
// worker goroutines.
func submitOne(ctx context.Context, o Options, bench string, scheme core.Scheme, mutate func(*config.Run)) *runner.Pending {
	r := config.NewRun(bench, scheme)
	o.apply(&r)
	if mutate != nil {
		mutate(&r)
	}
	return o.runner().Submit(ctx, o.machine(), r)
}

// submitAll enqueues one run per benchmark (workload.Names() order) and
// returns the pendings in that order.
func submitAll(ctx context.Context, o Options, scheme core.Scheme, mutate func(*config.Run)) []*runner.Pending {
	names := workload.Names()
	out := make([]*runner.Pending, len(names))
	for i, name := range names {
		out[i] = submitOne(ctx, o, name, scheme, mutate)
	}
	return out
}

// collect waits for submitted runs and returns their reports in
// submission order (runner.Collect's determinism guarantee).
func collect(pendings []*runner.Pending) ([]*metrics.Report, error) {
	return runner.Collect(pendings)
}

// runAll simulates one scheme configuration across the eight benchmarks.
// Drivers that sweep several configurations should prefer submitAll for
// each configuration first and collect afterwards, so the whole sweep
// shares the worker pool.
func runAll(ctx context.Context, o Options, scheme core.Scheme, mutate func(*config.Run)) ([]*metrics.Report, error) {
	return collect(submitAll(ctx, o, scheme, mutate))
}

// runOne simulates one benchmark under one configuration.
func runOne(ctx context.Context, o Options, bench string, scheme core.Scheme, mutate func(*config.Run)) (*metrics.Report, error) {
	return submitOne(ctx, o, bench, scheme, mutate).Wait()
}

// values extracts one metric per report.
func values(reports []*metrics.Report, f func(*metrics.Report) float64) []float64 {
	out := make([]float64, len(reports))
	for i, r := range reports {
		out[i] = f(r)
	}
	return out
}

// ratios divides each report's metric by the matching baseline report's.
func ratios(reports, base []*metrics.Report, f func(*metrics.Report) float64) []float64 {
	out := make([]float64, len(reports))
	for i := range reports {
		b := f(base[i])
		if b != 0 {
			out[i] = f(reports[i]) / b
		}
	}
	return out
}

// benchTicks returns the benchmark names plus a trailing geometric-mean
// column label.
func benchTicks() []string {
	return append(workload.Names(), "geomean")
}

// withGeoMean appends the geometric mean to a per-benchmark value slice.
func withGeoMean(vals []float64) []float64 {
	return append(vals, sim.GeoMean(vals))
}

func cycles(r *metrics.Report) float64 { return float64(r.Cycles) }
