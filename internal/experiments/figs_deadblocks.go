package experiments

import (
	"context"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/workload"
)

// decayPredictors — ablation of the dead-block prediction mechanism: the
// paper's fixed-window decay counters (ref [10]) at two windows vs the
// timekeeping-style adaptive predictor (ref [7]), under ICR-P-PS(S).
func decayPredictors(ctx context.Context, o Options) (*Result, error) {
	m := o.machine()
	sets := m.DL1Sets()
	type variant struct {
		label string
		mut   func(*config.Run)
	}
	variants := []variant{
		{"window 0", func(r *config.Run) {
			r.Repl = aggressiveRepl(sets)
		}},
		{"window 1000", func(r *config.Run) {
			r.Repl = relaxedRepl(sets)
		}},
		{"adaptive", func(r *config.Run) {
			r.Repl = relaxedRepl(sets)
			r.Repl.Decay = core.Adaptive
		}},
	}
	result := &Result{
		ID:     "decaypred",
		Title:  "Dead-block predictor ablation: fixed decay windows vs adaptive timekeeping",
		XLabel: "benchmark",
		XTicks: workload.Names(),
		Notes:  "adaptive needs no window parameter; compare coverage and miss cost",
	}
	pendings := make([][]*runner.Pending, len(variants))
	for i, v := range variants {
		pendings[i] = submitAll(ctx, o, icrPS(core.ReplStores), v.mut)
	}
	for i, v := range variants {
		reports, err := collect(pendings[i])
		if err != nil {
			return nil, err
		}
		result.Series = append(result.Series,
			Series{Label: v.label + " lwr", Values: values(reports, func(r *metrics.Report) float64 { return r.LoadsWithReplica() })},
			Series{Label: v.label + " miss", Values: values(reports, func(r *metrics.Report) float64 { return r.DL1MissRate() })},
		)
		result.Reports = append(result.Reports, reports...)
	}
	return result, nil
}

// prefetch — the other use of dead lines (refs [14], [7]): next-block
// prefetching into dead ways, alone and composed with ICR. Dead real
// estate can buy performance (prefetch) or reliability (replicas); this
// table shows both sides and the combination.
func prefetch(ctx context.Context, o Options) (*Result, error) {
	m := o.machine()
	sets := m.DL1Sets()
	type variant struct {
		label    string
		scheme   core.Scheme
		prefetch bool
	}
	variants := []variant{
		{"BaseP", core.BaseP(), false},
		{"BaseP+prefetch", core.BaseP(), true},
		{"ICR-P-PS(S)", icrPS(core.ReplStores), false},
		{"ICR+prefetch", icrPS(core.ReplStores), true},
	}
	var base []*metrics.Report
	result := &Result{
		ID:     "prefetch",
		Title:  "Dead-line real estate: prefetch vs replicate vs both (normalized cycles)",
		XLabel: "benchmark",
		XTicks: benchTicks(),
		Notes:  "prefetch buys performance from dead lines; replication buys reliability; they compose",
	}
	pendings := make([][]*runner.Pending, len(variants))
	for i, v := range variants {
		v := v
		pendings[i] = submitAll(ctx, o, v.scheme, func(r *config.Run) {
			if v.scheme.HasReplication() {
				r.Repl = relaxedRepl(sets)
			}
			r.Prefetch = v.prefetch
		})
	}
	for i, v := range variants {
		reports, err := collect(pendings[i])
		if err != nil {
			return nil, err
		}
		if base == nil {
			base = reports
		}
		result.Series = append(result.Series, Series{
			Label:  v.label,
			Values: withGeoMean(ratios(reports, base, cycles)),
		})
		result.Reports = append(result.Reports, reports...)
	}
	return result, nil
}
