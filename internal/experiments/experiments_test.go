package experiments

import (
	"context"
	"math"
	"strings"
	"testing"
)

// fastOpts keeps experiment smoke tests quick.
var fastOpts = Options{Instructions: 30_000, Seed: 1}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig16", "fig17", "faultmodels", "sensitivity", "victims", "swhints",
		"rcache", "scrub", "vulnerability", "mttf", "decaypred", "prefetch",
		"adaptive",
	}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("missing experiment %q", id)
		}
	}
	if !Valid("fig1") {
		t.Error("fig1 should be a valid experiment id")
	}
	if Valid("nope") {
		t.Error("unknown id should be invalid")
	}
	if _, err := Run(context.Background(), "nope", Options{}); err == nil {
		t.Error("Run with an unknown id should error")
	}
}

func TestResultRendering(t *testing.T) {
	r := &Result{
		ID: "figX", Title: "demo", XLabel: "bench",
		XTicks: []string{"a", "b"},
		Series: []Series{{Label: "s1", Values: []float64{1, 2}}},
		Notes:  "note",
	}
	table := r.Table()
	for _, want := range []string{"figX", "demo", "note", "s1", "1.0000", "2.0000"} {
		if !strings.Contains(table, want) {
			t.Errorf("Table() missing %q:\n%s", want, table)
		}
	}
	csv := r.CSV()
	if !strings.HasPrefix(csv, "bench,a,b\n") {
		t.Errorf("CSV header wrong: %s", csv)
	}
	if !strings.Contains(csv, "s1,1,2") {
		t.Errorf("CSV row wrong: %s", csv)
	}
}

func TestChartRendering(t *testing.T) {
	r := &Result{
		ID: "figX", Title: "demo", XLabel: "bench",
		XTicks: []string{"a", "b"},
		Series: []Series{{Label: "s1", Values: []float64{1, 2}}},
	}
	chart := r.Chart()
	for _, want := range []string{"figX", "a", "b", "s1", "####", "2.0000"} {
		if !strings.Contains(chart, want) {
			t.Errorf("Chart() missing %q:\n%s", want, chart)
		}
	}
	empty := &Result{ID: "e", XTicks: []string{"x"}, Series: []Series{{Label: "s", Values: []float64{0}}}}
	if empty.Chart() == "" {
		t.Error("all-zero chart should still render")
	}
}

func TestMultiSeedAverages(t *testing.T) {
	// A synthetic driver returning the seed as its single value: the
	// aggregate must be the mean.
	d := func(ctx context.Context, o Options) (*Result, error) {
		return &Result{
			ID: "seedtest", XTicks: []string{"x"},
			Series: []Series{{Label: "v", Values: []float64{float64(o.Seed)}}},
		}, nil
	}
	res, err := multiSeed(context.Background(), d, Options{}, []int64{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Series[0].Values[0]; got != 4 {
		t.Errorf("mean = %g, want 4", got)
	}
	if !strings.Contains(res.Notes, "3 seeds") {
		t.Errorf("notes should mention seed count: %q", res.Notes)
	}
	// Empty seed list falls through to a single run.
	res2, err := multiSeed(context.Background(), d, Options{Seed: 9}, nil)
	if err != nil || res2.Series[0].Values[0] != 9 {
		t.Errorf("nil seeds: %v %v", res2, err)
	}
	// The exported MultiSeed validates the id before running anything.
	if _, err := MultiSeed(context.Background(), "nope", Options{}, nil); err == nil {
		t.Error("MultiSeed with an unknown id should error")
	}
}

func TestFig1MultiAttemptNotWorse(t *testing.T) {
	res, err := fig1(context.Background(), fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 || len(res.Series[0].Values) != 8 {
		t.Fatalf("unexpected shape: %+v", res.Series)
	}
	var singleSum, multiSum float64
	for i := range res.Series[0].Values {
		singleSum += res.Series[0].Values[i]
		multiSum += res.Series[1].Values[i]
	}
	if multiSum < singleSum*0.98 {
		t.Errorf("multi-attempt ability (%f) should not trail single (%f)", multiSum, singleSum)
	}
}

func TestFig4MissRatesOrdered(t *testing.T) {
	res, err := fig4(context.Background(), fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	// base <= 1 replica <= 2 replicas (summed across benchmarks).
	sum := func(s Series) (v float64) {
		for _, x := range s.Values {
			v += x
		}
		return
	}
	base, one, two := sum(res.Series[0]), sum(res.Series[1]), sum(res.Series[2])
	if one < base {
		t.Errorf("replication should not reduce misses: base %f one %f", base, one)
	}
	if two < one*0.98 {
		t.Errorf("two replicas should not miss less than one: %f vs %f", two, one)
	}
}

func TestFig7LSAboveS(t *testing.T) {
	res, err := fig7(context.Background(), fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Series[0].Values {
		ls, s := res.Series[0].Values[i], res.Series[1].Values[i]
		if ls+0.02 < s {
			t.Errorf("%s: LS loads-with-replica (%f) below S (%f)", res.XTicks[i], ls, s)
		}
	}
}

func TestFig9BasePIsUnity(t *testing.T) {
	res, err := fig9(context.Background(), Options{Instructions: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Series[0].Label != "BaseP" {
		t.Fatalf("first series should be BaseP, got %s", res.Series[0].Label)
	}
	for i, v := range res.Series[0].Values {
		if v != 1 {
			t.Errorf("BaseP normalized value %d = %f, want 1", i, v)
		}
	}
	// BaseECC must be above 1 everywhere.
	for i, v := range res.Series[1].Values {
		if v <= 1 {
			t.Errorf("BaseECC normalized value %s = %f, want > 1", res.XTicks[i], v)
		}
	}
	if len(res.Series) != 10 {
		t.Errorf("fig9 should carry 10 schemes, got %d", len(res.Series))
	}
	if res.XTicks[len(res.XTicks)-1] != "geomean" {
		t.Error("fig9 should append a geomean column")
	}
}

func TestFig10AbilityFallsWithWindow(t *testing.T) {
	res, err := fig10(context.Background(), fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	ability := res.Series[0].Values
	if ability[0] < ability[len(ability)-1] {
		t.Errorf("ability should not grow with window: %v", ability)
	}
	lwr := res.Series[1].Values
	if lwr[len(lwr)-1] < lwr[0]*0.7 {
		t.Errorf("loads-with-replica should be window-insensitive: %v", lwr)
	}
}

func TestFig14ICRBeatsBaseP(t *testing.T) {
	res, err := fig14(context.Background(), Options{Instructions: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	// At the highest error rate: BaseP > ICR-P-PS(S) >= ~BaseECC.
	basep := res.Series[0].Values[0]
	icr := res.Series[1].Values[0]
	if basep <= icr {
		t.Errorf("BaseP unrecoverable frac (%g) must exceed ICR (%g)", basep, icr)
	}
}

func TestFig16WriteThroughCostsMore(t *testing.T) {
	res, err := fig16(context.Background(), fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Energy ratio (series b) geomean > 1.
	b := res.Series[1].Values
	if b[len(b)-1] <= 1 {
		t.Errorf("write-through energy ratio should exceed 1, geomean %f", b[len(b)-1])
	}
}

func TestFig17Shapes(t *testing.T) {
	res, err := fig17(context.Background(), fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("fig17 should have 3 series, got %d", len(res.Series))
	}
	// Energy at 10:30 (c) must be >= energy at 15:30 (b) for the spec-ECC
	// scheme relative to ICR: cheaper parity widens ICR's advantage.
	bG := res.Series[1].Values[len(res.Series[1].Values)-1]
	cG := res.Series[2].Values[len(res.Series[2].Values)-1]
	if cG < bG*0.99 {
		t.Errorf("ratio at 10:30 (%f) should not be below 15:30 (%f)", cG, bG)
	}
}

// TestAdaptiveBeatsBestStaticOnDrift pins this repo's headline adaptive
// claim at the committed budget (the EXPERIMENTS.md record): on the drift
// phase-shifting workload, the decay-driven ICR-ADAPT controller undercuts
// every static scheme — including both baselines — on the swept
// vulnerability + cycle-overhead + energy-overhead score. Drift's one-way
// regime flip (cache-resident mix to streaming) is exactly the case a
// static configuration cannot straddle: the relaxed static point keeps
// paying false-dead displacements in the streaming half, while the
// controller retreats to the conservative window and keeps the replication
// benefit without the churn.
func TestAdaptiveBeatsBestStaticOnDrift(t *testing.T) {
	res, err := adaptiveShootout(context.Background(), Options{Instructions: 480_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	di := -1
	for i, tick := range res.XTicks {
		if tick == "drift" {
			di = i
		}
	}
	if di < 0 {
		t.Fatalf("drift missing from ticks %v", res.XTicks)
	}
	bestStatic, bestName := math.Inf(1), ""
	adaptive := math.Inf(1)
	for _, s := range res.Series {
		v := s.Values[di]
		if strings.HasPrefix(s.Label, "ICR-ADAPT-") {
			if s.Label == "ICR-ADAPT-decay" {
				adaptive = v
			}
			continue
		}
		if v < bestStatic {
			bestStatic, bestName = v, s.Label
		}
	}
	if adaptive >= bestStatic {
		t.Errorf("ICR-ADAPT-decay drift score %.4f does not beat best static %s %.4f",
			adaptive, bestName, bestStatic)
	}
}

func TestSensitivityRuns(t *testing.T) {
	res, err := sensitivity(context.Background(), fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.XTicks) != 5 || len(res.Series) != 3 {
		t.Fatalf("unexpected shape: %d ticks, %d series", len(res.XTicks), len(res.Series))
	}
}

func TestVictimPoliciesRuns(t *testing.T) {
	res, err := victimPolicies(context.Background(), fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 8 {
		t.Fatalf("expected 8 series (4 policies x 2 metrics), got %d", len(res.Series))
	}
}

func TestSoftwareHintsTrimMissRate(t *testing.T) {
	res, err := softwareHints(context.Background(), fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	var blanket, hinted float64
	for i := range res.Series[0].Values {
		blanket += res.Series[0].Values[i]
		hinted += res.Series[1].Values[i]
	}
	if hinted > blanket*1.02 {
		t.Errorf("hinted miss rate (%f) should not exceed blanket (%f)", hinted, blanket)
	}
}

func TestRCacheComparison(t *testing.T) {
	res, err := rCache(context.Background(), Options{Instructions: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 5 {
		t.Fatalf("rcache should have 5 series, got %d", len(res.Series))
	}
	// Both approaches must cover a meaningful share of loads somewhere.
	var icrCov, rcCov float64
	for i := range res.Series[0].Values {
		icrCov += res.Series[0].Values[i]
		rcCov += res.Series[1].Values[i]
	}
	if icrCov == 0 || rcCov == 0 {
		t.Errorf("coverage missing: icr %f rc %f", icrCov, rcCov)
	}
}

func TestScrubReducesLoss(t *testing.T) {
	res, err := scrub(context.Background(), Options{Instructions: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	// BaseP: the fastest scrub (last tick) should not lose more than no
	// scrubbing (first tick).
	basep := res.Series[0].Values
	if basep[len(basep)-1] > basep[0] {
		t.Errorf("aggressive scrubbing should not increase loss: %v", basep)
	}
}

func TestVulnerabilityOrdering(t *testing.T) {
	res, err := vulnerability(context.Background(), Options{Instructions: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	sum := func(s Series) (v float64) {
		for _, x := range s.Values {
			v += x
		}
		return
	}
	basep, icrS, baseecc := sum(res.Series[0]), sum(res.Series[1]), sum(res.Series[3])
	if baseecc != 0 {
		t.Errorf("BaseECC vulnerability must be 0, got %f", baseecc)
	}
	if icrS >= basep {
		t.Errorf("ICR vulnerability (%f) must be below BaseP (%f)", icrS, basep)
	}
}

func TestDecayPredictorsRuns(t *testing.T) {
	res, err := decayPredictors(context.Background(), fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 6 {
		t.Fatalf("expected 6 series (3 variants x 2 metrics), got %d", len(res.Series))
	}
	// The adaptive predictor must achieve meaningful coverage without a
	// tuned window.
	var adaptiveLWR float64
	for _, v := range res.Series[4].Values {
		adaptiveLWR += v
	}
	if adaptiveLWR/8 < 0.3 {
		t.Errorf("adaptive coverage too low: %f", adaptiveLWR/8)
	}
}

func TestPrefetchHelpsBaseP(t *testing.T) {
	res, err := prefetch(context.Background(), fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	// BaseP+prefetch geomean should not be slower than BaseP by more
	// than noise (it usually wins on streaming benchmarks).
	g := func(i int) float64 {
		v := res.Series[i].Values
		return v[len(v)-1]
	}
	if g(1) > g(0)*1.03 {
		t.Errorf("prefetch slowed BaseP: %f vs %f", g(1), g(0))
	}
}

func TestMTTFProjection(t *testing.T) {
	res, err := mttf(context.Background(), Options{Instructions: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	// BaseECC FIT must be 0 everywhere; BaseP positive somewhere.
	var basepSum, eccSum float64
	for i := range res.Series[0].Values {
		basepSum += res.Series[0].Values[i]
		eccSum += res.Series[3].Values[i]
	}
	if eccSum != 0 {
		t.Errorf("BaseECC FIT = %f, want 0", eccSum)
	}
	if basepSum <= 0 {
		t.Errorf("BaseP FIT should be positive, got %f", basepSum)
	}
}

func TestFaultModelsRuns(t *testing.T) {
	res, err := faultModels(context.Background(), fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.XTicks) != 4 {
		t.Fatalf("expected 4 models, got %d", len(res.XTicks))
	}
}
