// Package experiments contains one driver per table/figure of the paper's
// evaluation (§5). Each driver sweeps the relevant parameters, runs the
// full simulator, and returns the same rows/series the paper plots, so the
// whole evaluation can be regenerated with `icrbench`, served by `icrd`,
// or replayed by the benchmark harness.
//
// The entire surface is one uniform entry point:
//
//	res, err := experiments.Run(ctx, "fig14", experiments.Options{...})
//
// dispatched through an ordered registry (IDs lists the valid ids).
// Cancellation flows through the ctx argument — Options carries only
// simulation parameters — so every caller (CLI flag, HTTP deadline,
// SIGTERM drain) propagates deadlines the same way.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/viz"
)

// Options control an experiment run.
type Options struct {
	// Instructions per simulation (0 = config.DefaultInstructions).
	Instructions uint64
	// Seed for workload generation.
	Seed int64
	// Machine overrides the Table 1 machine when non-nil.
	Machine *config.Machine
	// Sample, when enabled, switches every simulation the drivers issue
	// to SMARTS-style sampled mode (config.SampleConfig); counters stay
	// exact, timing is extrapolated from the measured windows.
	Sample config.SampleConfig
	// Runner executes the simulations. Nil uses a process-wide shared
	// runner with GOMAXPROCS workers and memoization, so independent
	// sweep points run concurrently and repeated ones simulate once.
	Runner *runner.Runner
}

// defaultRunner is the process-wide engine used when Options.Runner is
// nil: every driver fans out across GOMAXPROCS workers and shares one
// memo cache, so baselines reused between figures simulate once.
var defaultRunner = runner.New(runner.Options{})

func (o *Options) runner() *runner.Runner {
	if o.Runner != nil {
		return o.Runner
	}
	return defaultRunner
}

func (o *Options) machine() config.Machine {
	if o.Machine != nil {
		return *o.Machine
	}
	return config.Default()
}

func (o *Options) apply(r *config.Run) {
	if o.Instructions > 0 {
		r.Instructions = o.Instructions
	}
	if o.Seed != 0 {
		r.Seed = o.Seed
	}
	if o.Sample.Enabled() {
		r.Sample = o.Sample
	}
}

// Series is one plotted line/bar group: a label and one value per x-point.
type Series struct {
	Label  string
	Values []float64
}

// Result is a regenerated table/figure.
type Result struct {
	ID      string
	Title   string
	XLabel  string
	XTicks  []string
	Series  []Series
	Notes   string
	Sweep   bool              // true when the x axis is a parameter sweep (rendered as lines)
	Reports []*metrics.Report // raw per-run data, in execution order
}

// Table renders the result as an aligned text table.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	if r.Notes != "" {
		fmt.Fprintf(&b, "  (%s)\n", r.Notes)
	}
	w := 12
	for _, s := range r.Series {
		if len(s.Label) > w {
			w = len(s.Label)
		}
	}
	fmt.Fprintf(&b, "%-*s", w+2, r.XLabel)
	for _, x := range r.XTicks {
		fmt.Fprintf(&b, "%10s", x)
	}
	b.WriteByte('\n')
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%-*s", w+2, s.Label)
		for _, v := range s.Values {
			fmt.Fprintf(&b, "%10.4f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the result as comma-separated rows (header: xlabel + ticks).
func (r *Result) CSV() string {
	var b strings.Builder
	b.WriteString(r.XLabel)
	for _, x := range r.XTicks {
		b.WriteByte(',')
		b.WriteString(x)
	}
	b.WriteByte('\n')
	for _, s := range r.Series {
		b.WriteString(s.Label)
		for _, v := range s.Values {
			b.WriteByte(',')
			b.WriteString(strconv.FormatFloat(v, 'g', 8, 64))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Chart renders the result as grouped horizontal ASCII bars, one group
// per x-tick, scaled to the largest value in the result.
func (r *Result) Chart() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	maxVal := 0.0
	labelW := 0
	for _, s := range r.Series {
		if len(s.Label) > labelW {
			labelW = len(s.Label)
		}
		for _, v := range s.Values {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	const barW = 40
	for xi, tick := range r.XTicks {
		fmt.Fprintf(&b, "%s\n", tick)
		for _, s := range r.Series {
			if xi >= len(s.Values) {
				continue
			}
			v := s.Values[xi]
			n := int(v / maxVal * barW)
			if n < 0 {
				n = 0
			}
			fmt.Fprintf(&b, "  %-*s |%s %.4f\n", labelW, s.Label, strings.Repeat("#", n), v)
		}
	}
	return b.String()
}

// SVG renders the result as a standalone figure: grouped bars for
// per-benchmark results, lines for parameter sweeps.
func (r *Result) SVG() (string, error) {
	spec := viz.Spec{
		Title:  fmt.Sprintf("%s — %s", r.ID, r.Title),
		XLabel: r.XLabel,
		XTicks: r.XTicks,
	}
	for _, s := range r.Series {
		spec.Series = append(spec.Series, viz.Series{Label: s.Label, Values: s.Values})
	}
	if r.Sweep {
		return viz.LineSVG(spec)
	}
	return viz.GroupedBarSVG(spec)
}

// driver is an experiment implementation. Drivers are unexported: the
// only way in is Run, so every caller shares one calling convention and
// one registry.
type driver func(ctx context.Context, o Options) (*Result, error)

// Run executes the experiment registered under id. A nil ctx means
// context.Background(); cancelling ctx aborts in-flight simulations and
// returns promptly.
func Run(ctx context.Context, id string, o Options) (*Result, error) {
	d, err := byID(id)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background() //icrvet:ignore ctxflow nil-ctx compatibility seam: Run's documented default for non-cancellable callers
	}
	return d(ctx, o)
}

// MultiSeed runs an experiment once per seed and returns a Result whose
// series values are the element-wise means — the cheap way to damp
// workload-generation noise. The per-run raw reports are concatenated.
func MultiSeed(ctx context.Context, id string, opts Options, seeds []int64) (*Result, error) {
	d, err := byID(id)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background() //icrvet:ignore ctxflow nil-ctx compatibility seam: MultiSeed's documented default for non-cancellable callers
	}
	return multiSeed(ctx, d, opts, seeds)
}

func multiSeed(ctx context.Context, d driver, opts Options, seeds []int64) (*Result, error) {
	if len(seeds) == 0 {
		return d(ctx, opts)
	}
	var agg *Result
	for i, seed := range seeds {
		o := opts
		o.Seed = seed
		res, err := d(ctx, o)
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", seed, err)
		}
		if i == 0 {
			agg = res
			continue
		}
		if len(res.Series) != len(agg.Series) {
			return nil, fmt.Errorf("seed %d: series shape changed", seed)
		}
		for si := range res.Series {
			if len(res.Series[si].Values) != len(agg.Series[si].Values) {
				return nil, fmt.Errorf("seed %d: value shape changed", seed)
			}
			for vi, v := range res.Series[si].Values {
				agg.Series[si].Values[vi] += v
			}
		}
		agg.Reports = append(agg.Reports, res.Reports...)
	}
	n := float64(len(seeds))
	for si := range agg.Series {
		for vi := range agg.Series[si].Values {
			agg.Series[si].Values[vi] /= n
		}
	}
	agg.Notes = fmt.Sprintf("%s [mean of %d seeds]", agg.Notes, len(seeds))
	return agg, nil
}

// registration binds an experiment id to its driver. The registry is an
// ordered slice, not a map: ids must never be enumerated in map-iteration
// order, or `icrbench -fig all` output would shuffle run to run.
type registration struct {
	ID  string
	Run driver
}

// registry lists every experiment. Order here is the registration order;
// IDs sorts, so appending new experiments anywhere is fine.
var registry = []registration{
	{"fig1", fig1},
	{"fig2", fig2},
	{"fig3", fig3},
	{"fig4", fig4},
	{"fig5", fig5},
	{"fig6", fig6},
	{"fig7", fig7},
	{"fig8", fig8},
	{"fig9", fig9},
	{"fig10", fig10},
	{"fig11", fig11},
	{"fig12", fig12},
	{"fig13", fig13},
	{"fig14", fig14},
	{"fig15", fig15},
	{"fig16", fig16},
	{"fig17", fig17},
	{"faultmodels", faultModels},
	{"sensitivity", sensitivity},
	{"victims", victimPolicies},
	{"swhints", softwareHints},
	{"rcache", rCache},
	{"scrub", scrub},
	{"vulnerability", vulnerability},
	{"mttf", mttf},
	{"decaypred", decayPredictors},
	{"prefetch", prefetch},
	{"adaptive", adaptiveShootout},
	{"twotier", twoTierShootout},
}

// IDs returns the registered experiment ids in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for _, e := range registry {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

// Valid reports whether id names a registered experiment — the cheap
// pre-flight check for CLIs and the HTTP service, which want to reject a
// bad id before spending simulation time.
func Valid(id string) bool {
	_, err := byID(id)
	return err == nil
}

// byID resolves an experiment by id ("fig1" ... "fig17", "sensitivity").
func byID(id string) (driver, error) {
	for _, e := range registry {
		if e.ID == id {
			return e.Run, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)",
		id, strings.Join(IDs(), ", "))
}
