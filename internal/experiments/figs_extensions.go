package experiments

import (
	"context"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// softwareHints — the paper's §6 future work, implemented and evaluated:
// software exempts the streaming/pointer-chase regions (no reuse worth
// protecting, and their one-touch blocks pollute replica sites) from
// replication. Compares blanket ICR-P-PS(S) against the hinted variant.
func softwareHints(ctx context.Context, o Options) (*Result, error) {
	m := o.machine()
	sets := m.DL1Sets()
	blanketP := submitAll(ctx, o, icrPS(core.ReplStores), func(r *config.Run) {
		r.Repl = relaxedRepl(sets)
	})
	hintedP := submitAll(ctx, o, icrPS(core.ReplStores), func(r *config.Run) {
		r.Repl = relaxedRepl(sets)
		profile, err := workload.ByName(r.Benchmark)
		if err != nil {
			return // unreachable for registry benchmarks
		}
		var ranges []core.AddrRange
		for _, rr := range workload.Layout(profile) {
			if rr.Kind == workload.Stream || rr.Kind == workload.Strided || rr.Kind == workload.Chase {
				ranges = append(ranges, core.AddrRange{
					Start: rr.Start, End: rr.End,
					Hint: core.Hint{Replicate: false},
				})
			}
		}
		r.Hints = core.NewRangePolicy(ranges...)
	})
	blanket, err := collect(blanketP)
	if err != nil {
		return nil, err
	}
	hinted, err := collect(hintedP)
	if err != nil {
		return nil, err
	}
	miss := func(r *metrics.Report) float64 { return r.DL1MissRate() }
	lwr := func(r *metrics.Report) float64 { return r.LoadsWithReplica() }
	return &Result{
		ID:     "swhints",
		Title:  "Software-directed replication: exempting streaming/chase data",
		XLabel: "benchmark",
		XTicks: workload.Names(),
		Series: []Series{
			{Label: "blanket miss", Values: values(blanket, miss)},
			{Label: "hinted miss", Values: values(hinted, miss)},
			{Label: "blanket lwr", Values: values(blanket, lwr)},
			{Label: "hinted lwr", Values: values(hinted, lwr)},
		},
		Notes:   "§6 future work: hints should trim miss-rate overhead while keeping hot-data coverage",
		Reports: append(blanket, hinted...),
	}, nil
}
