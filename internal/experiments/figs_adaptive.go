package experiments

import (
	"context"

	"repro/internal/adapt"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/workload"
)

// adaptiveRepl is the replication envelope ICR-ADAPT runs start from: two
// power-2 distance attempts so the controller's top rung can actually
// place a second replica, the conservative decay window, and the dead-only
// victim policy. The controller retunes every knob except Distances at
// runtime.
func adaptiveRepl(sets int) core.ReplConfig {
	return core.ReplConfig{
		Distances:   core.Power2Distances(sets, 2),
		Replicas:    1,
		Victim:      core.DeadOnly,
		DecayWindow: adapt.DefaultMaxWindow,
	}
}

// adaptiveScore is the swept reliability-cost scalar: the vulnerable
// fraction of line-cycles plus the cycle and energy overheads relative to
// the unprotected BaseP run of the same workload. Lower is better. The
// three terms are the axes the paper itself trades (§5: vulnerability,
// performance, power): BaseP scores its full vulnerability at zero
// overhead, BaseECC its full latency cost at zero vulnerability, always-on
// replication its full install-energy cost — and a phase-aware policy
// should undercut every static point by spending protection only where a
// regime rewards it.
func adaptiveScore(r *metrics.Report, base *metrics.Report, lines int) float64 {
	score := r.VulnerabilityPerLine(lines)
	if base.Cycles > 0 {
		score += float64(r.Cycles)/float64(base.Cycles) - 1
	}
	if be := base.TotalEnergy(); be > 0 {
		score += r.TotalEnergy()/be - 1
	}
	return score
}

// adaptiveConfigs returns the two shipped ICR-ADAPT controller variants.
func adaptiveConfigs() []adapt.Config {
	return []adapt.Config{
		{Predictor: adapt.PredictorDecay},
		{Predictor: adapt.PredictorEHC},
	}
}

// adaptiveShootout — driver "adaptive": every §3.2 static scheme against
// the ICR-ADAPT controllers on the phase-shifting workloads (the locality
// regime flips mid-run, so any fixed replication setting is wrong in at
// least one phase). Static ICR schemes run the §5.4 relaxed replication
// setup; adaptive runs start from the conservative rung of the same
// envelope and retune per epoch.
func adaptiveShootout(ctx context.Context, o Options) (*Result, error) {
	m := o.machine()
	sets := m.DL1Sets()
	lines := sets * m.DL1Assoc
	phases := workload.PhaseProfiles()
	statics := core.AllSchemes()

	ticks := make([]string, len(phases))
	for i, p := range phases {
		ticks[i] = p.Name
	}

	type entry struct {
		label    string
		pendings []*runner.Pending
	}
	var entries []entry
	submitPhases := func(label string, scheme core.Scheme, mutate func(*config.Run)) {
		ps := make([]*runner.Pending, len(phases))
		for i, p := range phases {
			ps[i] = submitOne(ctx, o, p.Name, scheme, mutate)
		}
		entries = append(entries, entry{label, ps})
	}
	for _, s := range statics {
		s := s
		submitPhases(s.Name(), s, func(r *config.Run) {
			if s.HasReplication() {
				r.Repl = relaxedRepl(sets)
			}
		})
	}
	for _, ac := range adaptiveConfigs() {
		ac := ac
		submitPhases(ac.SchemeName(), icrPS(core.ReplStores), func(r *config.Run) {
			r.Repl = adaptiveRepl(sets)
			r.Adapt = ac
		})
	}

	// BaseP is entries[0]: its per-workload cycle counts anchor the
	// overhead term of every score.
	base, err := collect(entries[0].pendings)
	if err != nil {
		return nil, err
	}
	result := &Result{
		ID:     "adaptive",
		Title:  "Adaptive vs static replication on phase-shifting workloads",
		XLabel: "workload",
		XTicks: ticks,
		Notes:  "score = vulnerable line-cycle fraction + cycle overhead + energy overhead vs BaseP; lower is better",
	}
	for i, e := range entries {
		reports := base
		if i > 0 {
			if reports, err = collect(e.pendings); err != nil {
				return nil, err
			}
		}
		vals := make([]float64, len(reports))
		for j, r := range reports {
			vals[j] = adaptiveScore(r, base[j], lines)
		}
		result.Series = append(result.Series, Series{Label: e.label, Values: vals})
		result.Reports = append(result.Reports, reports...)
	}
	return result, nil
}
