package experiments

import (
	"context"

	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/workload"
)

// errorProbs is the §5.5 per-cycle injection-probability sweep. The paper
// notes these rates are deliberately unrealistic ("intense error
// behaviour") to make differences visible; at 1e-5 even BaseP tends to
// zero.
var errorProbs = []float64{1e-2, 1e-3, 1e-4, 1e-5}

// fig14 — fraction of unrecoverable loads vs per-cycle error probability
// (random injection model) for vortex under BaseP, ICR-P-PS(S),
// ICR-ECC-PS(S), and BaseECC.
func fig14(ctx context.Context, o Options) (*Result, error) {
	m := o.machine()
	sets := m.DL1Sets()
	schemes := []core.Scheme{
		core.BaseP(),
		core.ICR(core.ParityProt, core.LookupSerial, core.ReplStores),
		core.ICR(core.ECCProt, core.LookupSerial, core.ReplStores),
		core.BaseECC(false),
	}
	result := &Result{
		ID:     "fig14",
		Sweep:  true,
		Title:  "Unrecoverable loads vs per-cycle error probability (vortex, random model)",
		XLabel: "P(error)/cycle",
		Notes:  "paper: ICR schemes are far more resilient than BaseP; BaseECC corrects all single-bit errors",
	}
	for _, p := range errorProbs {
		result.XTicks = append(result.XTicks, fmt.Sprintf("%g", p))
	}
	pendings := make([][]*runner.Pending, len(schemes))
	for i, s := range schemes {
		s := s
		for _, p := range errorProbs {
			p := p
			pendings[i] = append(pendings[i], submitOne(ctx, o, "vortex", s, func(r *config.Run) {
				if s.HasReplication() {
					r.Repl = relaxedRepl(sets)
				}
				r.Fault = config.FaultConfig{Model: fault.Random, Prob: p, Seed: 7}
			}))
		}
	}
	for i, s := range schemes {
		reports, err := collect(pendings[i])
		if err != nil {
			return nil, err
		}
		var vals []float64
		for _, rep := range reports {
			vals = append(vals, rep.UnrecoverableFrac())
			result.Reports = append(result.Reports, rep)
		}
		result.Series = append(result.Series, Series{Label: s.Name(), Values: vals})
	}
	return result, nil
}

// faultModels — a companion sweep over the four §5.5 injection models at a
// fixed probability, showing the paper's claim that the models behave
// similarly.
func faultModels(ctx context.Context, o Options) (*Result, error) {
	m := o.machine()
	sets := m.DL1Sets()
	models := []fault.Model{fault.Direct, fault.Adjacent, fault.Column, fault.Random}
	schemes := []core.Scheme{
		core.BaseP(),
		core.ICR(core.ParityProt, core.LookupSerial, core.ReplStores),
	}
	result := &Result{
		ID:     "faultmodels",
		Title:  "Unrecoverable loads per injection model (vortex, P=1e-3)",
		XLabel: "model",
		Notes:  "paper §5.5: overall results are similar across error models",
	}
	for _, md := range models {
		result.XTicks = append(result.XTicks, md.String())
	}
	pendings := make([][]*runner.Pending, len(schemes))
	for i, s := range schemes {
		s := s
		for _, md := range models {
			md := md
			pendings[i] = append(pendings[i], submitOne(ctx, o, "vortex", s, func(r *config.Run) {
				if s.HasReplication() {
					r.Repl = relaxedRepl(sets)
				}
				r.Fault = config.FaultConfig{Model: md, Prob: 1e-3, Seed: 7}
			}))
		}
	}
	for i, s := range schemes {
		reports, err := collect(pendings[i])
		if err != nil {
			return nil, err
		}
		var vals []float64
		for _, rep := range reports {
			vals = append(vals, rep.UnrecoverableFrac())
			result.Reports = append(result.Reports, rep)
		}
		result.Series = append(result.Series, Series{Label: s.Name(), Values: vals})
	}
	return result, nil
}

// fig16 — the §5.8 write-through comparison: BaseP with a write-through
// dL1 (8-entry coalescing write buffer), normalized against ICR-P-PS(S)
// with a write-back dL1. Series (a) execution cycles, (b) L1+L2 energy.
func fig16(ctx context.Context, o Options) (*Result, error) {
	m := o.machine()
	sets := m.DL1Sets()
	icrP := submitAll(ctx, o, icrPS(core.ReplStores), func(r *config.Run) {
		r.Repl = relaxedRepl(sets)
	})
	wtP := submitAll(ctx, o, core.BaseP(), func(r *config.Run) {
		r.WriteThrough = true
		r.WriteBufferEntries = 8
	})
	icr, err := collect(icrP)
	if err != nil {
		return nil, err
	}
	wt, err := collect(wtP)
	if err != nil {
		return nil, err
	}
	energyL1L2 := func(r *metrics.Report) float64 { return r.EnergyL1 + r.EnergyL2 }
	return &Result{
		ID:     "fig16",
		Title:  "Write-through BaseP normalized to write-back ICR-P-PS(S)",
		XLabel: "benchmark",
		XTicks: benchTicks(),
		Series: []Series{
			{Label: "(a) cycles WT/ICR", Values: withGeoMean(ratios(wt, icr, cycles))},
			{Label: "(b) energy WT/ICR", Values: withGeoMean(ratios(wt, icr, energyL1L2))},
		},
		Notes:   "paper: ICR ~5.7% faster; write-through spends >2x the L1+L2 energy",
		Reports: append(icr, wt...),
	}, nil
}

// fig17 — the §5.9 speculative-ECC comparison: BaseECC with 1-cycle
// speculative loads, normalized to the performance-optimized ICR-P-PS(S)
// (replicas left in place). Series: (a) execution cycles, (b) energy with
// parity:ECC = 15%:30% of an L1 access, (c) energy with 10%:30%.
func fig17(ctx context.Context, o Options) (*Result, error) {
	m := o.machine()
	sets := m.DL1Sets()
	submit := func(s core.Scheme, parityFrac, eccFrac float64, leave bool) []*runner.Pending {
		return submitAll(ctx, o, s, func(r *config.Run) {
			if s.HasReplication() {
				r.Repl = relaxedRepl(sets)
				r.Repl.LeaveReplicas = leave
			}
			r.Energy = r.Energy.WithCheckCosts(parityFrac, eccFrac)
		})
	}
	icrBP := submit(icrPS(core.ReplStores), 0.15, 0.30, true)
	specBP := submit(core.BaseECC(true), 0.15, 0.30, false)
	icrCP := submit(icrPS(core.ReplStores), 0.10, 0.30, true)
	specCP := submit(core.BaseECC(true), 0.10, 0.30, false)
	icrB, err := collect(icrBP)
	if err != nil {
		return nil, err
	}
	specB, err := collect(specBP)
	if err != nil {
		return nil, err
	}
	icrC, err := collect(icrCP)
	if err != nil {
		return nil, err
	}
	specC, err := collect(specCP)
	if err != nil {
		return nil, err
	}
	energyL1L2 := func(r *metrics.Report) float64 {
		return r.EnergyL1 + r.EnergyL2 + r.EnergyChecks
	}
	return &Result{
		ID:     "fig17",
		Title:  "Speculative BaseECC normalized to performance-optimized ICR-P-PS(S)",
		XLabel: "benchmark",
		XTicks: benchTicks(),
		Series: []Series{
			{Label: "(a) cycles spec/ICR", Values: withGeoMean(ratios(specB, icrB, cycles))},
			{Label: "(b) energy 15:30", Values: withGeoMean(ratios(specB, icrB, energyL1L2))},
			{Label: "(c) energy 10:30", Values: withGeoMean(ratios(specC, icrC, energyL1L2))},
		},
		Notes:   "paper: ICR ~2.5% faster on average (30.8% on mcf); energy ~parity at 15:30, ~+3.1% for spec ECC at 10:30",
		Reports: append(append(append(icrB, specB...), icrC...), specC...),
	}, nil
}

// sensitivity — the §5.7 cache-geometry sweep: replication ability and
// loads-with-replica for ICR-P-PS(S) across dL1 sizes and associativities.
func sensitivity(ctx context.Context, o Options) (*Result, error) {
	type point struct {
		label string
		size  int
		assoc int
	}
	points := []point{
		{"8KB/4w", 8 << 10, 4},
		{"16KB/2w", 16 << 10, 2},
		{"16KB/4w", 16 << 10, 4},
		{"16KB/8w", 16 << 10, 8},
		{"32KB/4w", 32 << 10, 4},
	}
	result := &Result{
		ID:     "sensitivity",
		Title:  "sensitivity to dL1 geometry (gzip+vpr mean, ICR-P-PS(S))",
		XLabel: "geometry",
		Notes:  "paper §5.7: ability grows with cache size; loads-with-replica barely moves",
	}
	pendings := make([][]*runner.Pending, len(points))
	for i, pt := range points {
		m := o.machine()
		m.DL1Size = pt.size
		m.DL1Assoc = pt.assoc
		sets := m.DL1Sets()
		opts := o
		opts.Machine = &m
		for _, bench := range []string{"gzip", "vpr"} {
			pendings[i] = append(pendings[i], submitOne(ctx, opts, bench, icrPS(core.ReplStores), func(r *config.Run) {
				r.Repl = aggressiveRepl(sets)
			}))
		}
	}
	var ability, lwr, miss []float64
	for i, pt := range points {
		reports, err := collect(pendings[i])
		if err != nil {
			return nil, err
		}
		var a, l, ms float64
		for _, rep := range reports {
			a += rep.ReplAbility() / 2
			l += rep.LoadsWithReplica() / 2
			ms += rep.DL1MissRate() / 2
			result.Reports = append(result.Reports, rep)
		}
		ability = append(ability, a)
		lwr = append(lwr, l)
		miss = append(miss, ms)
		result.XTicks = append(result.XTicks, pt.label)
	}
	result.Series = []Series{
		{Label: "replication ability", Values: ability},
		{Label: "loads with replica", Values: lwr},
		{Label: "dL1 miss rate", Values: miss},
	}
	return result, nil
}

// victimPolicies — an ablation over the §3.1 victim policies (not a paper
// figure; DESIGN.md design-decision 3).
func victimPolicies(ctx context.Context, o Options) (*Result, error) {
	m := o.machine()
	sets := m.DL1Sets()
	policies := []core.VictimPolicy{core.DeadOnly, core.DeadFirst, core.ReplicaFirst, core.ReplicaOnly}
	result := &Result{
		ID:     "victims",
		Title:  "Victim-policy ablation (ICR-P-PS(S), window 1000)",
		XLabel: "benchmark",
		XTicks: workload.Names(),
		Notes:  "dead-only is reliability-biased; replica-first preserves miss rate",
	}
	pendings := make([][]*runner.Pending, len(policies))
	for i, pol := range policies {
		pol := pol
		pendings[i] = submitAll(ctx, o, icrPS(core.ReplStores), func(r *config.Run) {
			r.Repl = relaxedRepl(sets)
			r.Repl.Victim = pol
		})
	}
	for i, pol := range policies {
		reports, err := collect(pendings[i])
		if err != nil {
			return nil, err
		}
		result.Series = append(result.Series, Series{
			Label:  pol.String() + " lwr",
			Values: values(reports, func(r *metrics.Report) float64 { return r.LoadsWithReplica() }),
		})
		result.Series = append(result.Series, Series{
			Label:  pol.String() + " miss",
			Values: values(reports, func(r *metrics.Report) float64 { return r.DL1MissRate() }),
		})
		result.Reports = append(result.Reports, reports...)
	}
	return result, nil
}
