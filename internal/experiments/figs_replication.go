package experiments

import (
	"context"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/workload"
)

// fig1 — replication ability for single-attempt (distance N/2) vs
// multi-attempt (N/2 then N/4) placement, ICR-P-PS(S), aggressive decay.
func fig1(ctx context.Context, o Options) (*Result, error) {
	m := o.machine()
	sets := m.DL1Sets()
	singleP := submitAll(ctx, o, icrPS(core.ReplStores), func(r *config.Run) {
		r.Repl = aggressiveRepl(sets)
	})
	multiP := submitAll(ctx, o, icrPS(core.ReplStores), func(r *config.Run) {
		r.Repl = aggressiveRepl(sets)
		r.Repl.Distances = []int{sets / 2, sets / 4}
	})
	single, err := collect(singleP)
	if err != nil {
		return nil, err
	}
	multi, err := collect(multiP)
	if err != nil {
		return nil, err
	}
	ability := func(r *metrics.Report) float64 { return r.ReplAbility() }
	return &Result{
		ID:     "fig1",
		Title:  "Replication ability: single vs multiple placement attempts, ICR-P-PS(S)",
		XLabel: "benchmark",
		XTicks: workload.Names(),
		Series: []Series{
			{Label: "single (N/2)", Values: values(single, ability)},
			{Label: "multi (N/2,N/4)", Values: values(multi, ability)},
		},
		Notes:   "paper: multiple attempts raise replication ability",
		Reports: append(single, multi...),
	}, nil
}

// fig2 — loads with replica for the same two configurations as fig1.
func fig2(ctx context.Context, o Options) (*Result, error) {
	m := o.machine()
	sets := m.DL1Sets()
	singleP := submitAll(ctx, o, icrPS(core.ReplStores), func(r *config.Run) {
		r.Repl = aggressiveRepl(sets)
	})
	multiP := submitAll(ctx, o, icrPS(core.ReplStores), func(r *config.Run) {
		r.Repl = aggressiveRepl(sets)
		r.Repl.Distances = []int{sets / 2, sets / 4}
	})
	single, err := collect(singleP)
	if err != nil {
		return nil, err
	}
	multi, err := collect(multiP)
	if err != nil {
		return nil, err
	}
	lwr := func(r *metrics.Report) float64 { return r.LoadsWithReplica() }
	return &Result{
		ID:     "fig2",
		Title:  "Loads with replica: single vs multiple placement attempts, ICR-P-PS(S)",
		XLabel: "benchmark",
		XTicks: workload.Names(),
		Series: []Series{
			{Label: "single (N/2)", Values: values(single, lwr)},
			{Label: "multi (N/2,N/4)", Values: values(multi, lwr)},
		},
		Notes:   "paper: negligible improvement from multiple attempts",
		Reports: append(single, multi...),
	}, nil
}

// fig3 — replication ability when maintaining one replica vs two replicas
// (first at N/2, second at N/4), ICR-P-PS(S).
func fig3(ctx context.Context, o Options) (*Result, error) {
	m := o.machine()
	sets := m.DL1Sets()
	oneP := submitAll(ctx, o, icrPS(core.ReplStores), func(r *config.Run) {
		r.Repl = aggressiveRepl(sets)
	})
	twoP := submitAll(ctx, o, icrPS(core.ReplStores), func(r *config.Run) {
		r.Repl = aggressiveRepl(sets)
		r.Repl.Distances = []int{sets / 2, sets / 4}
		r.Repl.Replicas = 2
	})
	one, err := collect(oneP)
	if err != nil {
		return nil, err
	}
	two, err := collect(twoP)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "fig3",
		Title:  "Replication ability: one replica vs two replicas, ICR-P-PS(S)",
		XLabel: "benchmark",
		XTicks: workload.Names(),
		Series: []Series{
			{Label: "1 replica (N/2)", Values: values(one, func(r *metrics.Report) float64 { return r.ReplAbility() })},
			{Label: ">=1 of 2 replicas", Values: values(two, func(r *metrics.Report) float64 { return r.ReplAbility() })},
			{Label: "2 replicas achieved", Values: values(two, func(r *metrics.Report) float64 { return r.ReplDoubleAbility() })},
		},
		Notes:   "paper: two replicas achievable ~12% of the time on average",
		Reports: append(one, two...),
	}, nil
}

// fig4 — dL1 miss rates when maintaining one vs two replicas.
func fig4(ctx context.Context, o Options) (*Result, error) {
	m := o.machine()
	sets := m.DL1Sets()
	baseP := submitAll(ctx, o, core.BaseP(), nil)
	oneP := submitAll(ctx, o, icrPS(core.ReplStores), func(r *config.Run) {
		r.Repl = aggressiveRepl(sets)
	})
	twoP := submitAll(ctx, o, icrPS(core.ReplStores), func(r *config.Run) {
		r.Repl = aggressiveRepl(sets)
		r.Repl.Distances = []int{sets / 2, sets / 4}
		r.Repl.Replicas = 2
	})
	base, err := collect(baseP)
	if err != nil {
		return nil, err
	}
	one, err := collect(oneP)
	if err != nil {
		return nil, err
	}
	two, err := collect(twoP)
	if err != nil {
		return nil, err
	}
	miss := func(r *metrics.Report) float64 { return r.DL1MissRate() }
	return &Result{
		ID:     "fig4",
		Title:  "dL1 miss rate: single vs two replicas, ICR-P-PS(S)",
		XLabel: "benchmark",
		XTicks: workload.Names(),
		Series: []Series{
			{Label: "BaseP", Values: values(base, miss)},
			{Label: "1 replica", Values: values(one, miss)},
			{Label: "2 replicas", Values: values(two, miss)},
		},
		Notes:   "paper: extra copies evict useful blocks and worsen miss rates",
		Reports: append(append(base, one...), two...),
	}, nil
}

// fig5 — loads with replica under vertical (distance N/2) vs horizontal
// (distance 0) replication, ICR-P-PS(S).
func fig5(ctx context.Context, o Options) (*Result, error) {
	m := o.machine()
	sets := m.DL1Sets()
	verticalP := submitAll(ctx, o, icrPS(core.ReplStores), func(r *config.Run) {
		r.Repl = aggressiveRepl(sets)
	})
	horizontalP := submitAll(ctx, o, icrPS(core.ReplStores), func(r *config.Run) {
		r.Repl = aggressiveRepl(sets)
		r.Repl.Distances = core.HorizontalDistances()
	})
	vertical, err := collect(verticalP)
	if err != nil {
		return nil, err
	}
	horizontal, err := collect(horizontalP)
	if err != nil {
		return nil, err
	}
	lwr := func(r *metrics.Report) float64 { return r.LoadsWithReplica() }
	return &Result{
		ID:     "fig5",
		Title:  "Loads with replica: vertical (N/2) vs horizontal (0) replication, ICR-P-PS(S)",
		XLabel: "benchmark",
		XTicks: workload.Names(),
		Series: []Series{
			{Label: "vertical (N/2)", Values: values(vertical, lwr)},
			{Label: "horizontal (0)", Values: values(horizontal, lwr)},
		},
		Notes:   "paper: little difference between the two placements",
		Reports: append(vertical, horizontal...),
	}, nil
}

// fig6 — replication ability for the LS vs S triggers.
func fig6(ctx context.Context, o Options) (*Result, error) {
	m := o.machine()
	sets := m.DL1Sets()
	triggers := []core.ReplTrigger{core.ReplLoadsStores, core.ReplStores}
	pendings := make([][]*runner.Pending, len(triggers))
	for i, trigger := range triggers {
		pendings[i] = submitAll(ctx, o, icrPS(trigger), func(r *config.Run) {
			r.Repl = aggressiveRepl(sets)
		})
	}
	var series []Series
	var all []*metrics.Report
	for i, trigger := range triggers {
		reports, err := collect(pendings[i])
		if err != nil {
			return nil, err
		}
		series = append(series, Series{
			Label:  "ICR-*(" + trigger.String() + ")",
			Values: values(reports, func(r *metrics.Report) float64 { return r.ReplAbility() }),
		})
		all = append(all, reports...)
	}
	return &Result{
		ID:      "fig6",
		Title:   "Replication ability: ICR-*(LS) vs ICR-*(S)",
		XLabel:  "benchmark",
		XTicks:  workload.Names(),
		Series:  series,
		Notes:   "paper: LS replicates more data than S",
		Reports: all,
	}, nil
}

// fig7 — loads with replica for the LS vs S triggers.
func fig7(ctx context.Context, o Options) (*Result, error) {
	m := o.machine()
	sets := m.DL1Sets()
	triggers := []core.ReplTrigger{core.ReplLoadsStores, core.ReplStores}
	pendings := make([][]*runner.Pending, len(triggers))
	for i, trigger := range triggers {
		pendings[i] = submitAll(ctx, o, icrPS(trigger), func(r *config.Run) {
			r.Repl = aggressiveRepl(sets)
		})
	}
	var series []Series
	var all []*metrics.Report
	for i, trigger := range triggers {
		reports, err := collect(pendings[i])
		if err != nil {
			return nil, err
		}
		series = append(series, Series{
			Label:  "ICR-*(" + trigger.String() + ")",
			Values: values(reports, func(r *metrics.Report) float64 { return r.LoadsWithReplica() }),
		})
		all = append(all, reports...)
	}
	return &Result{
		ID:      "fig7",
		Title:   "Loads with replica: ICR-*(LS) vs ICR-*(S)",
		XLabel:  "benchmark",
		XTicks:  workload.Names(),
		Series:  series,
		Notes:   "paper: >65% for S, >90% for LS; near-total duplication in mcf",
		Reports: all,
	}, nil
}

// fig8 — dL1 miss rates for the Base schemes vs ICR with LS and S triggers.
func fig8(ctx context.Context, o Options) (*Result, error) {
	m := o.machine()
	sets := m.DL1Sets()
	baseP := submitAll(ctx, o, core.BaseP(), nil)
	lsP := submitAll(ctx, o, icrPS(core.ReplLoadsStores), func(r *config.Run) {
		r.Repl = aggressiveRepl(sets)
	})
	sP := submitAll(ctx, o, icrPS(core.ReplStores), func(r *config.Run) {
		r.Repl = aggressiveRepl(sets)
	})
	base, err := collect(baseP)
	if err != nil {
		return nil, err
	}
	ls, err := collect(lsP)
	if err != nil {
		return nil, err
	}
	s, err := collect(sP)
	if err != nil {
		return nil, err
	}
	miss := func(r *metrics.Report) float64 { return r.DL1MissRate() }
	return &Result{
		ID:     "fig8",
		Title:  "dL1 miss rates: Base vs ICR-*(LS) vs ICR-*(S)",
		XLabel: "benchmark",
		XTicks: workload.Names(),
		Series: []Series{
			{Label: "Base*", Values: values(base, miss)},
			{Label: "ICR-*(LS)", Values: values(ls, miss)},
			{Label: "ICR-*(S)", Values: values(s, miss)},
		},
		Notes:   "paper: both triggers raise misses, LS more than S",
		Reports: append(append(base, ls...), s...),
	}, nil
}
