package experiments

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/sim"
)

// determinismDrivers are the figure drivers the parallel-vs-serial
// equivalence is asserted over: a plain per-benchmark sweep (fig1), a
// multi-configuration performance comparison (fig10), a fault-injection
// probability sweep built from single submissions (fig14), and the
// adaptive shootout (runs whose knobs retune mid-flight under the
// ICR-ADAPT controller). Between them they cover every submission pattern
// the drivers use.
var determinismDrivers = []struct {
	name   string
	driver driver
}{
	{"fig1", fig1},
	{"fig10", fig10},
	{"fig14", fig14},
	{"adaptive", adaptiveShootout},
}

// serialOracle reproduces the pre-runner code path: every simulation is a
// direct sim.Simulate call, executed one at a time in submission order,
// with no memoization, no cancellation plumbing, and no worker pool.
func serialOracle() *runner.Runner {
	return runner.New(runner.Options{
		Workers:   1,
		CacheSize: -1,
		Simulate: func(_ context.Context, m config.Machine, r config.Run) (*metrics.Report, error) {
			return sim.Simulate(m, r)
		},
	})
}

// TestParallelMatchesSerial is the determinism guarantee end to end: for
// each driver, the parallel runner (8 workers), the single-worker runner,
// and the pre-runner serial path must produce byte-identical CSV output and
// deep-equal series.
func TestParallelMatchesSerial(t *testing.T) {
	configs := []struct {
		name string
		mk   func() *runner.Runner
	}{
		{"serial-oracle", serialOracle},
		{"workers=1", func() *runner.Runner {
			return runner.New(runner.Options{Workers: 1, CacheSize: -1})
		}},
		{"workers=8", func() *runner.Runner {
			return runner.New(runner.Options{Workers: 8, CacheSize: -1})
		}},
		{"workers=8+memo", func() *runner.Runner {
			return runner.New(runner.Options{Workers: 8})
		}},
	}
	for _, d := range determinismDrivers {
		t.Run(d.name, func(t *testing.T) {
			var goldenCSV string
			var golden *Result
			for _, cfg := range configs {
				res, err := d.driver(context.Background(), Options{
					Instructions: 20_000,
					Runner:       cfg.mk(),
				})
				if err != nil {
					t.Fatalf("%s: %v", cfg.name, err)
				}
				csv := res.CSV()
				if golden == nil {
					golden, goldenCSV = res, csv
					continue
				}
				if csv != goldenCSV {
					t.Errorf("%s: CSV diverged from %s:\n%s\nvs\n%s",
						cfg.name, configs[0].name, csv, goldenCSV)
				}
				if !reflect.DeepEqual(res.Series, golden.Series) {
					t.Errorf("%s: series values diverged from %s", cfg.name, configs[0].name)
				}
				if !reflect.DeepEqual(res.XTicks, golden.XTicks) {
					t.Errorf("%s: x-ticks diverged", cfg.name)
				}
			}
		})
	}
}

// TestRepeatedParallelRunsIdentical: the same driver twice on the same
// shared runner (memo hits the second time) yields identical results —
// cached reports are indistinguishable from fresh ones.
func TestRepeatedParallelRunsIdentical(t *testing.T) {
	eng := runner.New(runner.Options{Workers: 8})
	opts := Options{Instructions: 20_000, Runner: eng}
	first, err := fig1(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := fig1(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.CSV() != second.CSV() {
		t.Error("memoized rerun produced different CSV output")
	}
	if !reflect.DeepEqual(first.Series, second.Series) {
		t.Error("memoized rerun produced different series")
	}
	if snap := eng.Progress().Snapshot(); snap.MemoHits == 0 {
		t.Error("second run should have hit the memo cache")
	}
}

// TestDriverCancellation: cancelling the experiment context mid-driver
// surfaces the cancellation as an error rather than a partial Result.
func TestDriverCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, "fig1", Options{
		Instructions: 20_000,
		Runner:       runner.New(runner.Options{Workers: 2, CacheSize: -1}),
	})
	if err == nil {
		t.Fatal("cancelled context should fail the driver")
	}
}
