package experiments

import (
	"context"

	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/reliability"
	"repro/internal/runner"
	"repro/internal/workload"
)

// rCache — ICR vs the Kim & Somani separate duplication cache (the
// paper's reference [11], its §1/§5.2 comparison point): duplicate
// coverage of loads, unrecoverable loads under injection, and total
// energy, for ICR-P-PS(S) against BaseP plus a 2KB r-cache.
func rCache(ctx context.Context, o Options) (*Result, error) {
	m := o.machine()
	sets := m.DL1Sets()
	const prob = 1e-3

	icrP := submitAll(ctx, o, icrPS(core.ReplStores), func(r *config.Run) {
		r.Repl = relaxedRepl(sets)
		r.Fault = config.FaultConfig{Model: fault.Random, Prob: prob, Seed: 7}
	})
	dupP := submitAll(ctx, o, core.BaseP(), func(r *config.Run) {
		r.DupCacheKB = 2
		r.Fault = config.FaultConfig{Model: fault.Random, Prob: prob, Seed: 7}
	})
	icr, err := collect(icrP)
	if err != nil {
		return nil, err
	}
	dup, err := collect(dupP)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:     "rcache",
		Title:  "ICR-P-PS(S) vs BaseP + 2KB duplication cache (Kim & Somani [11])",
		XLabel: "benchmark",
		XTicks: workload.Names(),
		Series: []Series{
			{Label: "ICR loads covered", Values: values(icr, func(r *metrics.Report) float64 { return r.LoadsWithReplica() })},
			{Label: "r-cache loads covered", Values: values(dup, func(r *metrics.Report) float64 { return r.LoadsWithDuplicate() })},
			{Label: "ICR unrecov frac", Values: values(icr, func(r *metrics.Report) float64 { return r.UnrecoverableFrac() })},
			{Label: "r-cache unrecov frac", Values: values(dup, func(r *metrics.Report) float64 { return r.UnrecoverableFrac() })},
			{Label: "energy rc/ICR", Values: ratios(dup, icr, func(r *metrics.Report) float64 { return r.TotalEnergy() })},
		},
		Notes:   "paper: ICR duplicates hot data without a separate array probed on every load",
		Reports: append(icr, dup...),
	}, nil
}

// scrub — unrecoverable loads vs scrub interval for BaseP and
// ICR-P-PS(S) under random injection (composing the paper's scheme with
// Saleh-style scrubbing, reference [21]).
func scrub(ctx context.Context, o Options) (*Result, error) {
	m := o.machine()
	sets := m.DL1Sets()
	intervals := []uint64{0, 10000, 1000, 100}
	schemes := []core.Scheme{core.BaseP(), icrPS(core.ReplStores)}
	result := &Result{
		ID:     "scrub",
		Sweep:  true,
		Title:  "Unrecoverable loads vs scrub interval (vortex, P=1e-3, random model)",
		XLabel: "scrub interval",
		Notes:  "0 = no scrubbing; faster sweeps catch errors before demand loads do",
	}
	for _, iv := range intervals {
		if iv == 0 {
			result.XTicks = append(result.XTicks, "off")
		} else {
			result.XTicks = append(result.XTicks, fmt.Sprintf("%d", iv))
		}
	}
	pendings := make([][]*runner.Pending, len(schemes))
	for i, s := range schemes {
		s := s
		for _, iv := range intervals {
			iv := iv
			pendings[i] = append(pendings[i], submitOne(ctx, o, "vortex", s, func(r *config.Run) {
				if s.HasReplication() {
					r.Repl = relaxedRepl(sets)
				}
				r.Fault = config.FaultConfig{Model: fault.Random, Prob: 1e-3, Seed: 7}
				r.ScrubInterval = iv
				r.ScrubLines = 4
			}))
		}
	}
	for i, s := range schemes {
		reports, err := collect(pendings[i])
		if err != nil {
			return nil, err
		}
		var vals []float64
		for _, rep := range reports {
			vals = append(vals, rep.UnrecoverableFrac())
			result.Reports = append(result.Reports, rep)
		}
		result.Series = append(result.Series, Series{Label: s.Name(), Values: vals})
	}
	return result, nil
}

// mttf — projects the measured vulnerability fractions to real-world
// failure rates (internal/reliability): estimated unrecoverable-loss FIT
// for the dL1 at a 2003-class raw soft-error rate (1000 FIT/Mbit). This is
// the analytic complement to Fig 14's injection campaign: the paper notes
// realistic rates are unmeasurable by injection (§5.5), but the exposure
// argument still quantifies them.
func mttf(ctx context.Context, o Options) (*Result, error) {
	vuln, err := vulnerability(ctx, o)
	if err != nil {
		return nil, err
	}
	m := o.machine()
	params := reliability.DefaultParams()
	result := &Result{
		ID:     "mttf",
		Title:  "Estimated dL1 loss rate (FIT) at 1000 FIT/Mbit, from measured vulnerability",
		XLabel: "benchmark",
		XTicks: vuln.XTicks,
		Notes:  "analytic projection of the vulnerability experiment; BaseECC is 0 by construction",
	}
	for _, s := range vuln.Series {
		vals := make([]float64, len(s.Values))
		for i, v := range s.Values {
			est, err := reliability.Project(s.Label, v, m.DL1Size, params)
			if err != nil {
				return nil, err
			}
			vals[i] = est.LossFIT
		}
		result.Series = append(result.Series, Series{Label: s.Label + " FIT", Values: vals})
	}
	result.Reports = vuln.Reports
	return result, nil
}

// vulnerability — injection-free architectural vulnerability: the average
// fraction of time a dL1 line spends holding dirty data whose only
// protection is parity, per scheme. This is the quantity ICR exists to
// shrink without paying ECC's latency.
func vulnerability(ctx context.Context, o Options) (*Result, error) {
	m := o.machine()
	sets := m.DL1Sets()
	lines := sets * m.DL1Assoc
	schemes := []core.Scheme{
		core.BaseP(),
		icrPS(core.ReplStores),
		icrPS(core.ReplLoadsStores),
		core.BaseECC(false),
	}
	result := &Result{
		ID:     "vulnerability",
		Title:  "Dirty-and-parity-only line residency (fraction of line-cycles)",
		XLabel: "benchmark",
		XTicks: workload.Names(),
		Notes:  "lower is safer; BaseECC is 0 by construction, ICR approaches it at parity cost",
	}
	pendings := make([][]*runner.Pending, len(schemes))
	for i, s := range schemes {
		s := s
		pendings[i] = submitAll(ctx, o, s, func(r *config.Run) {
			if s.HasReplication() {
				r.Repl = relaxedRepl(sets)
			}
		})
	}
	for i, s := range schemes {
		reports, err := collect(pendings[i])
		if err != nil {
			return nil, err
		}
		result.Series = append(result.Series, Series{
			Label: s.Name(),
			Values: values(reports, func(r *metrics.Report) float64 {
				return r.VulnerabilityPerLine(lines)
			}),
		})
		result.Reports = append(result.Reports, reports...)
	}
	return result, nil
}
