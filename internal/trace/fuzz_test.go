package trace

import (
	"bytes"
	"testing"
)

// FuzzReader asserts the trace decoder never panics on arbitrary input and
// either yields valid instructions or stops with an error.
func FuzzReader(f *testing.F) {
	// Seed with a valid one-record trace.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	g := sample(3)
	for _, in := range g {
		_ = w.Write(in)
	}
	_ = w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte("ICRT"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // malformed header rejected: fine
		}
		for i := 0; i < 10000; i++ {
			in, ok := r.Next()
			if !ok {
				break
			}
			if !in.Op.Valid() {
				t.Fatalf("decoder emitted invalid op %d", in.Op)
			}
		}
	})
}
