// Package trace provides a compact binary on-disk format for instruction
// streams, so workloads can be captured once and replayed across
// experiments (or exchanged with other tools). A trace file is a fixed
// header followed by fixed-width little-endian records; readers implement
// isa.Stream.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/isa"
)

// Magic identifies a trace file; Version is the format revision.
const (
	Magic   = "ICRT"
	Version = uint16(1)
)

// headerLen is magic + version + reserved count field.
const headerLen = 4 + 2 + 8

// recordLen is the fixed encoded size of one instruction.
const recordLen = 8 + 8 + 8 + 1 + 1 + 1 + 2 + 2 // PC, Addr, Target, Op, Size, Flags, SrcDist1, SrcDist2

const flagTaken = 1 << 0

// Writer encodes instructions to an output stream.
type Writer struct {
	w     *bufio.Writer
	count uint64
	buf   [recordLen]byte
}

// NewWriter writes a trace header to w and returns a Writer. Call Flush
// when done.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, fmt.Errorf("trace: writing magic: %w", err)
	}
	var hdr [2 + 8]byte
	binary.LittleEndian.PutUint16(hdr[0:2], Version)
	// The count field is reserved (zero): streams are typically written
	// incrementally and readers stop at EOF.
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one instruction record.
func (w *Writer) Write(in isa.Inst) error {
	b := w.buf[:]
	binary.LittleEndian.PutUint64(b[0:8], in.PC)
	binary.LittleEndian.PutUint64(b[8:16], in.Addr)
	binary.LittleEndian.PutUint64(b[16:24], in.Target)
	b[24] = byte(in.Op)
	b[25] = in.Size
	b[26] = 0
	if in.Taken {
		b[26] |= flagTaken
	}
	binary.LittleEndian.PutUint16(b[27:29], in.SrcDist1)
	binary.LittleEndian.PutUint16(b[29:31], in.SrcDist2)
	if _, err := w.w.Write(b); err != nil {
		return fmt.Errorf("trace: writing record: %w", err)
	}
	w.count++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() uint64 { return w.count }

// Flush drains buffered records to the underlying writer.
func (w *Writer) Flush() error {
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// Reader decodes a trace and implements isa.Stream.
type Reader struct {
	r    *bufio.Reader
	err  error
	buf  [recordLen]byte
	read uint64
}

var _ isa.Stream = (*Reader)(nil)

// ErrBadHeader reports a malformed or mismatched trace header.
var ErrBadHeader = errors.New("trace: bad header")

// NewReader validates the header of r and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [headerLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	if string(hdr[0:4]) != Magic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadHeader, hdr[0:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != Version {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrBadHeader, v, Version)
	}
	return &Reader{r: br}, nil
}

// Next implements isa.Stream. It returns false at EOF or on a decode
// error (inspect Err).
func (r *Reader) Next() (isa.Inst, bool) {
	if r.err != nil {
		return isa.Inst{}, false
	}
	if _, err := io.ReadFull(r.r, r.buf[:]); err != nil {
		if err != io.EOF {
			//icrvet:ignore allocfree cold decode-error path: taken at most once per stream, which then terminates
			r.err = fmt.Errorf("trace: reading record %d: %w", r.read, err)
		}
		return isa.Inst{}, false
	}
	b := r.buf[:]
	in := isa.Inst{
		PC:       binary.LittleEndian.Uint64(b[0:8]),
		Addr:     binary.LittleEndian.Uint64(b[8:16]),
		Target:   binary.LittleEndian.Uint64(b[16:24]),
		Op:       isa.Op(b[24]),
		Size:     b[25],
		Taken:    b[26]&flagTaken != 0,
		SrcDist1: binary.LittleEndian.Uint16(b[27:29]),
		SrcDist2: binary.LittleEndian.Uint16(b[29:31]),
	}
	if !in.Op.Valid() {
		//icrvet:ignore allocfree cold decode-error path: taken at most once per stream, which then terminates
		r.err = fmt.Errorf("trace: record %d: invalid op %d", r.read, b[24])
		return isa.Inst{}, false
	}
	r.read++
	return in, true
}

// Err returns the first decode error, if any (EOF is not an error).
func (r *Reader) Err() error { return r.err }

// Read returns the number of records decoded so far.
func (r *Reader) Read() uint64 { return r.read }

// Summary aggregates instruction-mix statistics over a stream.
type Summary struct {
	Total    uint64
	PerOp    [isa.NumOps + 1]uint64
	Loads    uint64
	Stores   uint64
	Branches uint64
	Taken    uint64
	// DistinctBlocks is the number of distinct 64-byte data blocks touched.
	DistinctBlocks int
}

// Summarize consumes up to max instructions from a stream (0 = all) and
// returns mix statistics.
func Summarize(s isa.Stream, max uint64) Summary {
	var sum Summary
	blocks := make(map[uint64]struct{})
	for max == 0 || sum.Total < max {
		in, ok := s.Next()
		if !ok {
			break
		}
		sum.Total++
		sum.PerOp[in.Op]++
		switch {
		case in.Op == isa.OpLoad:
			sum.Loads++
		case in.Op == isa.OpStore:
			sum.Stores++
		case in.Op.IsCtrl():
			sum.Branches++
			if in.Taken {
				sum.Taken++
			}
		}
		if in.Op.IsMem() {
			blocks[in.Addr/64] = struct{}{}
		}
	}
	sum.DistinctBlocks = len(blocks)
	return sum
}

// String renders the summary.
func (s Summary) String() string {
	if s.Total == 0 {
		return "empty trace"
	}
	f := func(n uint64) float64 { return float64(n) / float64(s.Total) }
	return fmt.Sprintf(
		"instructions %d\n loads %.3f stores %.3f ctrl %.3f (taken %.3f)\n distinct 64B blocks %d",
		s.Total, f(s.Loads), f(s.Stores), f(s.Branches),
		func() float64 {
			if s.Branches == 0 {
				return 0
			}
			return float64(s.Taken) / float64(s.Branches)
		}(),
		s.DistinctBlocks)
}
