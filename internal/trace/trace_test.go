package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/workload"
)

func sample(n int) []isa.Inst {
	g := workload.MustNew(workload.Vpr(), 3)
	out := make([]isa.Inst, 0, n)
	for i := 0; i < n; i++ {
		in, _ := g.Next()
		out = append(out, in)
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	insts := sample(5000)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range insts {
		if err := w.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(insts)) {
		t.Errorf("Count = %d, want %d", w.Count(), len(insts))
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range insts {
		got, ok := r.Next()
		if !ok {
			t.Fatalf("record %d: stream ended early (err %v)", i, r.Err())
		}
		if got != want {
			t.Fatalf("record %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, ok := r.Next(); ok {
		t.Error("stream should be exhausted")
	}
	if r.Err() != nil {
		t.Errorf("clean EOF should not set Err: %v", r.Err())
	}
	if r.Read() != uint64(len(insts)) {
		t.Errorf("Read = %d, want %d", r.Read(), len(insts))
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(strings.NewReader("NOPE..........")); err == nil {
		t.Error("bad magic should be rejected")
	}
}

func TestTruncatedHeader(t *testing.T) {
	if _, err := NewReader(strings.NewReader("IC")); err == nil {
		t.Error("truncated header should be rejected")
	}
}

func TestWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Flush()
	b := buf.Bytes()
	b[4] = 0xff // corrupt version
	if _, err := NewReader(bytes.NewReader(b)); err == nil {
		t.Error("wrong version should be rejected")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(isa.Inst{PC: 4, Op: isa.OpIntALU})
	w.Flush()
	b := buf.Bytes()
	r, err := NewReader(bytes.NewReader(b[:len(b)-3]))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Error("truncated record should fail")
	}
	if r.Err() == nil {
		t.Error("truncation should set Err")
	}
}

func TestInvalidOpRejected(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(isa.Inst{PC: 4, Op: isa.OpIntALU})
	w.Flush()
	b := buf.Bytes()
	b[headerLen+24] = 0xee // corrupt the op byte
	r, err := NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Error("invalid op should fail")
	}
	if r.Err() == nil {
		t.Error("invalid op should set Err")
	}
}

func TestSummarize(t *testing.T) {
	insts := sample(20000)
	sum := Summarize(isa.NewSliceStream(insts), 0)
	if sum.Total != 20000 {
		t.Errorf("Total = %d", sum.Total)
	}
	if sum.Loads == 0 || sum.Stores == 0 || sum.Branches == 0 {
		t.Errorf("summary missing classes: %+v", sum)
	}
	if sum.DistinctBlocks == 0 {
		t.Error("no distinct blocks")
	}
	s := sum.String()
	if !strings.Contains(s, "instructions 20000") {
		t.Errorf("String() = %q", s)
	}
	// Bounded summarize.
	sum2 := Summarize(isa.NewSliceStream(insts), 100)
	if sum2.Total != 100 {
		t.Errorf("bounded Total = %d, want 100", sum2.Total)
	}
	var empty Summary
	if empty.String() != "empty trace" {
		t.Error("empty summary string wrong")
	}
}
